#include "energy/energy_model.hh"

namespace finereg
{

EnergyBreakdown
EnergyModel::compute(const StatGroup &stats, Cycle cycles,
                     unsigned num_sms) const
{
    EnergyBreakdown out;

    // Off-chip DRAM: every byte of every traffic class.
    const double dram_bytes =
        static_cast<double>(stats.counterValue("dram.bytes_data") +
                            stats.counterValue("dram.bytes_cta_context") +
                            stats.counterValue("dram.bytes_bitvec"));
    out.dramDyn = dram_bytes * coeffs_.dramByteEnergy;

    // Main register file (ACRF or baseline RF).
    const double rf_accesses =
        static_cast<double>(stats.counterValue("sm.rf_reads") +
                            stats.counterValue("sm.rf_writes"));
    out.rfDyn = rf_accesses * coeffs_.rfAccessEnergy;

    // Everything else dynamic: issue, caches, shared memory.
    double cache_accesses = 0.0;
    for (const auto &name : stats.counterNames()) {
        if (name.starts_with("l1_") || name.starts_with("l2.")) {
            if (name.ends_with(".hits") || name.ends_with(".misses")) {
                const double energy = name.starts_with("l2.")
                                          ? coeffs_.l2AccessEnergy
                                          : coeffs_.l1AccessEnergy;
                cache_accesses +=
                    static_cast<double>(stats.counterValue(name)) * energy;
            }
        }
    }
    out.othersDyn =
        static_cast<double>(stats.counterValue("sm.issued")) *
            coeffs_.issueEnergy +
        static_cast<double>(stats.counterValue("sm.shared_accesses")) *
            coeffs_.sharedAccessEnergy +
        cache_accesses;

    // Static leakage over the run.
    out.leakage = static_cast<double>(cycles) * num_sms *
                  coeffs_.leakagePerSmCycle;

    // FineReg scheduling resources: bit-vector cache + RMU gathers.
    out.fineregOverhead =
        static_cast<double>(stats.counterValue("bitvec_cache.hits") +
                            stats.counterValue("bitvec_cache.misses")) *
            coeffs_.bitvecAccessEnergy +
        static_cast<double>(stats.counterValue("rmu.gathers")) *
            coeffs_.rmuGatherEnergy;

    // CTA switching: PCRF entry movement + switch control logic.
    out.ctaSwitching =
        static_cast<double>(stats.counterValue("pcrf.reads") +
                            stats.counterValue("pcrf.writes")) *
            coeffs_.pcrfAccessEnergy +
        static_cast<double>(stats.counterValue("pcrf.stored_ctas") +
                            stats.counterValue("pcrf.restored_ctas")) *
            coeffs_.switchEnergy;

    return out;
}

} // namespace finereg
