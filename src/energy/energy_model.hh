/**
 * @file
 * Event-based energy model in the spirit of GPUWattch [24] / register file
 * virtualization [12]: each architectural event (RF access, cache access,
 * DRAM byte, issued instruction) costs a fixed energy, plus per-SM-cycle
 * leakage. The breakdown mirrors Fig. 16's stacks: DRAM_Dyn, RF_Dyn,
 * Others_Dyn, Leakage, FineReg scheduling resources, and CTA switching.
 * Units are arbitrary ("energy units"); only relative comparisons between
 * configurations are meaningful, matching the paper's normalized plot.
 */

#ifndef FINEREG_ENERGY_ENERGY_MODEL_HH
#define FINEREG_ENERGY_ENERGY_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace finereg
{

struct EnergyCoefficients
{
    double rfAccessEnergy = 1.6;     ///< Per warp-operand RF read/write.
    double pcrfAccessEnergy = 0.4;   ///< Per PCRF entry read/write
                                     ///  (small single-bank SRAM vs the
                                     ///  banked, operand-collected RF).
    double bitvecAccessEnergy = 0.1; ///< Per bit-vector cache probe.
    double rmuGatherEnergy = 1.0;    ///< Per RMU gather operation.
    double switchEnergy = 2.0;       ///< Per CTA switch (control logic).
    double l1AccessEnergy = 3.0;     ///< Per L1 transaction.
    double l2AccessEnergy = 7.0;     ///< Per L2 transaction.
    double sharedAccessEnergy = 2.0; ///< Per shared-memory access.
    double dramByteEnergy = 0.35;    ///< Per byte moved off-chip.
    double issueEnergy = 3.0;        ///< Per issued warp instruction
                                     ///  (fetch/decode/execute lumped).
    double leakagePerSmCycle = 34.0; ///< Static energy per SM per cycle.
};

/** Fig. 16 component stack. */
struct EnergyBreakdown
{
    double dramDyn = 0.0;
    double rfDyn = 0.0;
    double othersDyn = 0.0;
    double leakage = 0.0;
    double fineregOverhead = 0.0; ///< RMU + status monitor activity.
    double ctaSwitching = 0.0;    ///< PCRF traffic + switch logic.

    double
    total() const
    {
        return dramDyn + rfDyn + othersDyn + leakage + fineregOverhead +
               ctaSwitching;
    }
};

class EnergyModel
{
  public:
    explicit EnergyModel(EnergyCoefficients coeffs = {})
        : coeffs_(coeffs)
    {}

    /**
     * Evaluate a finished run from its stat group.
     *
     * @param stats  the simulation's stat group (SM, cache, DRAM, PCRF
     *               counters).
     * @param cycles total executed cycles.
     * @param num_sms SM count (leakage scales with it).
     */
    EnergyBreakdown compute(const StatGroup &stats, Cycle cycles,
                            unsigned num_sms) const;

    const EnergyCoefficients &coefficients() const { return coeffs_; }

  private:
    EnergyCoefficients coeffs_;
};

} // namespace finereg

#endif // FINEREG_ENERGY_ENERGY_MODEL_HH
