#include "sm/warp_exec.hh"

#include <algorithm>

#include "sm/cta.hh"
#include "sm/kernel_context.hh"

namespace finereg
{

BranchOutcome
warpExecBranch(Warp &warp, const Instruction &instr)
{
    const KernelContext &context = warp.context();
    const Kernel &kernel = context.kernel();
    const Pc target_pc = kernel.blockStartPc(instr.targetBlock);
    const Pc fall_pc = warp.pc() + kInstrBytes;

    if (instr.isLoopBranch()) {
        const int loop = context.loopId(instr.index);
        unsigned remaining = warp.loopRemaining(loop);
        if (remaining == 0)
            remaining = instr.tripCount; // entering the loop
        --remaining;
        warp.setLoopRemaining(loop, remaining);
        warp.setPc(remaining > 0 ? target_pc : fall_pc);
        return {};
    }

    const bool can_diverge = warp.activeLanes() > 1;
    if (can_diverge && warp.rng().chance(instr.divergeProb)) {
        // Split the active mask into two non-empty groups.
        const std::uint32_t mask = warp.activeMask();
        std::uint32_t taken =
            static_cast<std::uint32_t>(warp.rng().next()) & mask;
        if (taken == 0 || taken == mask) {
            // Fallback: lowest active lane takes the branch.
            taken = mask & (~mask + 1);
        }
        warp.diverge(target_pc, taken, fall_pc,
                     context.reconvergencePc(instr.index));
        return {.diverged = true};
    }

    warp.setPc(warp.rng().chance(instr.takenProb) ? target_pc : fall_pc);
    return {};
}

Addr
warpGenerateAddress(Warp &warp, const Instruction &instr)
{
    const KernelContext &context = warp.context();
    const Kernel &kernel = context.kernel();
    const MemPattern &mp = instr.mem;
    const int mem_id = context.memId(instr.index);
    const std::uint32_t k = warp.memExecCount(mem_id);

    if (k > 0 && mp.reuse > 0.0 && warp.rng().chance(mp.reuse)) {
        warp.bumpMemExecCount(mem_id);
        return warp.lastMemAddr(mem_id);
    }

    const Addr region_base = static_cast<Addr>(mp.region) << 40;
    const std::uint64_t total_warps =
        std::uint64_t(kernel.gridCtas()) * kernel.warpsPerCta();
    // Shared structures are walked identically by every warp; private
    // data is partitioned into per-warp slices.
    const std::uint64_t warp_index =
        mp.shared ? 0
                  : std::uint64_t(warp.cta()->gridId()) *
                            kernel.warpsPerCta() +
                        warp.id();
    std::uint64_t slice =
        mp.shared ? 0
                  : mp.footprint / std::max<std::uint64_t>(total_warps, 1);
    slice = mp.shared ? 0
                      : std::max<std::uint64_t>(slice & ~std::uint64_t(127),
                                                128);

    std::uint64_t offset =
        (warp_index * slice + std::uint64_t(k) * mp.stride) % mp.footprint;
    offset &= ~std::uint64_t(127);

    const Addr addr = region_base + offset;
    warp.setLastMemAddr(mem_id, addr);
    warp.bumpMemExecCount(mem_id);
    return addr;
}

} // namespace finereg
