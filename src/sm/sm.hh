/**
 * @file
 * Streaming multiprocessor. Models the issue stage (4 GTO schedulers), the
 * functional units (ALU/SFU/LDST with a per-cycle memory port budget), the
 * scoreboard-driven stall-on-use semantics, CTA barriers, and the CTA
 * residency mechanisms (launch/suspend/resume) the register-management
 * policies orchestrate. Register *allocation* is policy business; the SM
 * enforces only the scheduler-slot limits (Table I) and shared memory.
 */

#ifndef FINEREG_SM_SM_HH
#define FINEREG_SM_SM_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/event_wheel.hh"
#include "mem/mem_hierarchy.hh"
#include "sm/cta.hh"
#include "sm/kernel_context.hh"
#include "sm/warp_scheduler.hh"

namespace finereg
{

struct SmConfig
{
    unsigned maxCtas = 32;       ///< CTA scheduler slots (active CTAs).
    unsigned maxWarps = 64;      ///< Warp scheduler slots (active warps).
    unsigned maxThreads = 2048;  ///< Thread slots (active threads).
    unsigned numSchedulers = 4;
    SchedKind sched = SchedKind::GTO;

    std::uint64_t regFileBytes = 256 * 1024;
    std::uint64_t shmemBytes = 96 * 1024;

    unsigned memPortsPerCycle = 1; ///< Warp memory instructions issued/cycle.
    unsigned aluLatency = 4;
    unsigned sfuLatency = 16;
    unsigned sharedLatency = 26;
    unsigned branchLatency = 2;

    /** FineReg residency caps (Sec. V-F: up to 128 CTAs / 512 warps). */
    unsigned maxResidentCtas = 128;
    unsigned maxResidentWarps = 512;
};

class Sm
{
  public:
    Sm(SmId id, const SmConfig &config, const KernelContext &context,
       MemHierarchy &mem, StatGroup &stats, std::uint64_t seed);

    SmId id() const { return id_; }
    const SmConfig &config() const { return config_; }
    const KernelContext &context() const { return *context_; }
    MemHierarchy &mem() { return *mem_; }
    Rng &rng() { return rng_; }

    /**
     * Base seed for per-warp RNG streams. Must be identical across SMs
     * (the Gpu passes its grid-level seed) so a CTA's execution path does
     * not depend on which SM it lands on.
     */
    void setCtaSeedBase(std::uint64_t base) { ctaSeedBase_ = base; }

    // Cycle execution ---------------------------------------------------------

    /**
     * Run one issue cycle: each scheduler attempts to issue one instruction.
     *
     * @return number of instructions issued.
     */
    unsigned tick(Cycle now);

    /**
     * Earliest future cycle at which any active warp may become issuable
     * (kNoCycle if none). Valid immediately after a tick that issued 0.
     */
    Cycle nextWakeCycle(Cycle now) const;

    /** Add @p delta cycles' worth of occupancy-weighted statistics. */
    void accumulateOccupancy(Cycle delta);

    // CTA residency mechanisms -----------------------------------------------

    /** Active-slot headroom check against the scheduler limits. */
    bool canActivateCta() const;

    /** Free shared-memory bytes. */
    std::uint64_t shmemFree() const { return config_.shmemBytes - shmemUsed_; }

    /** Allocated shared-memory bytes (auditor introspection). */
    std::uint64_t shmemUsed() const { return shmemUsed_; }

    /** Occupied warp scheduler slots (auditor introspection). */
    unsigned activeWarpSlotsUsed() const { return activeWarpSlots_; }

    /** Occupied thread slots (auditor introspection). */
    unsigned activeThreadSlotsUsed() const { return activeThreadSlots_; }

    /** Resident CTA/warp headroom (FineReg's 128/512 caps). */
    bool hasResidencyHeadroom() const;

    /**
     * Create an Active CTA for grid CTA @p grid_id. The caller must have
     * verified canActivateCta(), shared memory, and register space.
     */
    Cta *launchCta(GridCtaId grid_id, Cycle now);

    /** Move an active CTA to Pending: deschedule its warps. */
    void suspendCta(Cta &cta, Cycle now);

    /**
     * Reactivate a pending CTA; its warps may issue from
     * now + @p wake_latency.
     */
    void resumeCta(Cta &cta, Cycle now, Cycle wake_latency);

    /** Resident CTAs (all states). */
    std::vector<std::unique_ptr<Cta>> &residentCtas() { return ctas_; }
    const std::vector<std::unique_ptr<Cta>> &residentCtas() const
    {
        return ctas_;
    }

    /**
     * Active CTAs in residentCtas() order (launch-sequence sorted) —
     * the policies' per-tick stall scans iterate this instead of
     * filtering the full resident set. Maintained at every state
     * transition; the invariant auditor cross-checks it.
     */
    const std::vector<Cta *> &activeCtaList() const { return activeList_; }

    /** Pending CTAs in residentCtas() order (launch-sequence sorted). */
    const std::vector<Cta *> &pendingCtaList() const { return pendingList_; }

    unsigned activeCtaCount() const { return activeCtas_; }

    /** Pending CTA count, maintained incrementally (hot path: policy
     * saturation checks run it once per stalled CTA per tick). */
    unsigned pendingCtaCount() const { return pendingCtas_; }

    /** Resident warp count, maintained incrementally. */
    unsigned residentWarpCount() const { return residentWarps_; }

    /** Unfinished warps of Active CTAs (occupancy accounting). */
    unsigned activeLiveWarps() const { return activeLiveWarps_; }

    // O(resident) reference scans for the incremental counters above;
    // the invariant auditor cross-checks them every audit.
    unsigned scanPendingCtaCount() const;
    unsigned scanResidentWarpCount() const;
    unsigned scanActiveLiveWarps() const;

    /** CTAs that finished during the last tick; caller takes ownership of
     * the notification (the CTA objects remain resident until destroy). */
    std::vector<Cta *> takeFinished();

    /** Remove a Done CTA from the resident set. */
    void destroyCta(Cta &cta);

    /** Last cycle any warp of @p cta issued. */
    Cycle ctaLastIssue(const Cta &cta) const;

    // Probes ------------------------------------------------------------------

    /** Enable the Fig. 5 register-usage window tracker. */
    void enableUsageTracking(bool on) { usageTracking_ = on; }

    /** Enable the Table III stall-episode probe. */
    void enableStallProbe(bool on) { stallProbe_ = on; }

    /** Attach functional value trackers to CTAs launched from now on
     * (differential/golden end-state capture; no timing effect). */
    void enableValueTracking(bool on) { trackValues_ = on; }

    std::uint64_t issuedInstrs() const { return issuedTotal_; }

    /** Issued during the most recent tick. */
    unsigned issuedLastTick() const { return issuedLastTick_; }

    StatGroup &stats() { return *stats_; }

    /**
     * Attach the Gpu's idle-skip event wheel. Warps are bound at launch;
     * the SM itself announces scoreboard writeback completions and retire
     * chains.
     */
    void setEventWheel(EventWheel *wheel) { wheel_ = wheel; }

    /**
     * True when a CTA state transition (launch, suspend, resume, whole-CTA
     * finish) happened since the last call; consumed by the sampled
     * invariant auditor to audit every transition edge.
     */
    bool
    takeStateEdge()
    {
        const bool edge = stateEdge_;
        stateEdge_ = false;
        return edge;
    }

  private:
    bool warpIssuable(Warp *warp, Cycle now);
    void issueInstr(Warp &warp, Cycle now);
    void execBranch(Warp &warp, const Instruction &instr, Cycle now);
    void execMemory(Warp &warp, const Instruction &instr, Cycle now);
    void execExit(Warp &warp, Cycle now);
    void finishWarp(Warp &warp, Cycle now);
    void addWarpToSchedulers(Cta &cta);
    void removeWarpFromSchedulers(Cta &cta);

    void
    scheduleWake(Cycle cycle)
    {
        if (wheel_)
            wheel_->schedule(cycle);
    }
    void trackUsage(const Warp &warp, const Instruction &instr);
    void checkStallEpisodes(Cycle now);

    SmId id_;
    SmConfig config_;
    const KernelContext *context_;
    MemHierarchy *mem_;
    StatGroup *stats_;
    Rng rng_;

    /** Insert @p cta into launch-seq-sorted @p list / remove it. */
    static void listInsert(std::vector<Cta *> &list, Cta *cta);
    static void listRemove(std::vector<Cta *> &list, Cta *cta);

    std::vector<WarpScheduler> schedulers_;
    std::vector<std::unique_ptr<Cta>> ctas_;
    std::vector<Cta *> finished_;
    std::vector<Cta *> activeList_;
    std::vector<Cta *> pendingList_;

    unsigned activeCtas_ = 0;
    unsigned activeWarpSlots_ = 0;
    unsigned activeThreadSlots_ = 0;
    unsigned pendingCtas_ = 0;
    unsigned residentWarps_ = 0;
    unsigned activeLiveWarps_ = 0;
    std::uint64_t shmemUsed_ = 0;
    unsigned launchSeq_ = 0;
    bool stateEdge_ = false;
    EventWheel *wheel_ = nullptr;

    unsigned memIssuedThisCycle_ = 0;
    unsigned issuedLastTick_ = 0;
    std::uint64_t issuedTotal_ = 0;
    std::uint64_t ctaSeedBase_ = 0;

    // Fig. 5 usage tracking: distinct warp-registers touched per
    // 1000-issued-instruction window vs. statically allocated regs.
    bool usageTracking_ = false;
    std::unordered_set<std::uint64_t> touchedRegs_;
    std::uint64_t windowIssued_ = 0;

    bool stallProbe_ = false;
    bool trackValues_ = false;

    Counter *issuedCtr_;
    Counter *rfReads_;
    Counter *rfWrites_;
    Counter *sharedAccesses_;
    Counter *divergences_;
    Counter *barriersHit_;
    Counter *residentCtaCycles_;
    Counter *activeCtaCycles_;
    Counter *activeThreadCycles_;
    Counter *occupancyCycles_;
    Distribution *usageWindow_;
    Distribution *stallEpisode_;
};

} // namespace finereg

#endif // FINEREG_SM_SM_HH
