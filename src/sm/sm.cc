#include "sm/sm.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hh"
#include "ref/cta_values.hh"
#include "sm/warp_exec.hh"

namespace finereg
{

Sm::Sm(SmId id, const SmConfig &config, const KernelContext &context,
       MemHierarchy &mem, StatGroup &stats, std::uint64_t seed)
    : id_(id), config_(config), context_(&context), mem_(&mem),
      stats_(&stats), rng_(seed),
      issuedCtr_(&stats.counter("sm.issued")),
      rfReads_(&stats.counter("sm.rf_reads")),
      rfWrites_(&stats.counter("sm.rf_writes")),
      sharedAccesses_(&stats.counter("sm.shared_accesses")),
      divergences_(&stats.counter("sm.divergences")),
      barriersHit_(&stats.counter("sm.barriers")),
      residentCtaCycles_(&stats.counter("sm.resident_cta_cycles")),
      activeCtaCycles_(&stats.counter("sm.active_cta_cycles")),
      activeThreadCycles_(&stats.counter("sm.active_thread_cycles")),
      occupancyCycles_(&stats.counter("sm.occupancy_cycles")),
      usageWindow_(&stats.distribution("sm.rf_usage_window")),
      stallEpisode_(&stats.distribution("sm.stall_episode_cycles"))
{
    schedulers_.reserve(config_.numSchedulers);
    for (unsigned s = 0; s < config_.numSchedulers; ++s)
        schedulers_.emplace_back(config_.sched, s);
}

bool
Sm::canActivateCta() const
{
    const Kernel &kernel = context_->kernel();
    return activeCtas_ + 1 <= config_.maxCtas &&
           activeWarpSlots_ + kernel.warpsPerCta() <= config_.maxWarps &&
           activeThreadSlots_ + kernel.threadsPerCta() <= config_.maxThreads;
}

bool
Sm::hasResidencyHeadroom() const
{
    const Kernel &kernel = context_->kernel();
    return ctas_.size() + 1 <= config_.maxResidentCtas &&
           residentWarps_ + kernel.warpsPerCta() <= config_.maxResidentWarps;
}

unsigned
Sm::scanPendingCtaCount() const
{
    unsigned n = 0;
    for (const auto &cta : ctas_)
        n += cta->state() == CtaState::Pending ? 1 : 0;
    return n;
}

unsigned
Sm::scanResidentWarpCount() const
{
    unsigned n = 0;
    for (const auto &cta : ctas_)
        n += cta->numWarps();
    return n;
}

unsigned
Sm::scanActiveLiveWarps() const
{
    unsigned n = 0;
    for (const auto &cta : ctas_) {
        if (cta->state() == CtaState::Active)
            n += cta->numWarps() - cta->finishedWarps();
    }
    return n;
}

void
Sm::listInsert(std::vector<Cta *> &list, Cta *cta)
{
    const auto it = std::lower_bound(
        list.begin(), list.end(), cta, [](const Cta *a, const Cta *b) {
            return a->launchSeq() < b->launchSeq();
        });
    list.insert(it, cta);
}

void
Sm::listRemove(std::vector<Cta *> &list, Cta *cta)
{
    const auto it = std::lower_bound(
        list.begin(), list.end(), cta, [](const Cta *a, const Cta *b) {
            return a->launchSeq() < b->launchSeq();
        });
    if (it == list.end() || *it != cta)
        FINEREG_PANIC("CTA ", cta->gridId(), " missing from state list");
    list.erase(it);
}

Cta *
Sm::launchCta(GridCtaId grid_id, Cycle now)
{
    const Kernel &kernel = context_->kernel();
    if (!canActivateCta())
        FINEREG_PANIC("launchCta without active slots on SM ", id_);
    if (shmemFree() < kernel.shmemPerCta())
        FINEREG_PANIC("launchCta without shared memory on SM ", id_);

    // Seed the CTA's warp RNG streams from the grid CTA id alone so that
    // the executed path is invariant to placement and launch timing.
    const std::uint64_t cta_seed =
        ctaSeedBase_ + 0x9e3779b97f4a7c15ull * (std::uint64_t(grid_id) + 1);
    auto cta =
        std::make_unique<Cta>(grid_id, launchSeq_++, *context_, cta_seed);
    Cta *raw = cta.get();
    if (trackValues_)
        raw->enableValueTracking();
    ctas_.push_back(std::move(cta));
    activeList_.push_back(raw); // launchSeq grows monotonically: stays sorted

    shmemUsed_ += kernel.shmemPerCta();
    ++activeCtas_;
    activeWarpSlots_ += kernel.warpsPerCta();
    activeThreadSlots_ += kernel.threadsPerCta();
    residentWarps_ += kernel.warpsPerCta();
    activeLiveWarps_ += kernel.warpsPerCta();
    stateEdge_ = true;

    for (auto &warp : raw->warps()) {
        warp->bindEventWheel(wheel_);
        warp->setEarliestIssue(now + 1);
    }
    addWarpToSchedulers(*raw);
    raw->startExecutionEpisode(now);
    return raw;
}

void
Sm::suspendCta(Cta &cta, Cycle now)
{
    if (cta.state() != CtaState::Active)
        FINEREG_PANIC("suspend of non-active CTA ", cta.gridId());
    const Kernel &kernel = context_->kernel();
    removeWarpFromSchedulers(cta);
    cta.setState(CtaState::Pending);
    listRemove(activeList_, &cta);
    listInsert(pendingList_, &cta);
    --activeCtas_;
    ++pendingCtas_;
    activeWarpSlots_ -= kernel.warpsPerCta();
    activeThreadSlots_ -= kernel.threadsPerCta();
    activeLiveWarps_ -= cta.numWarps() - cta.finishedWarps();
    stateEdge_ = true;

    if (stallProbe_) {
        const Cycle episode = cta.closeExecutionEpisode(now);
        if (episode > 0)
            stallEpisode_->sample(static_cast<double>(episode));
    } else {
        cta.closeExecutionEpisode(now);
    }
}

void
Sm::resumeCta(Cta &cta, Cycle now, Cycle wake_latency)
{
    if (cta.state() != CtaState::Pending)
        FINEREG_PANIC("resume of non-pending CTA ", cta.gridId());
    if (!canActivateCta())
        FINEREG_PANIC("resume without active slots on SM ", id_);
    const Kernel &kernel = context_->kernel();
    cta.setState(CtaState::Active);
    listRemove(pendingList_, &cta);
    listInsert(activeList_, &cta);
    ++activeCtas_;
    --pendingCtas_;
    activeWarpSlots_ += kernel.warpsPerCta();
    activeThreadSlots_ += kernel.threadsPerCta();
    activeLiveWarps_ += cta.numWarps() - cta.finishedWarps();
    stateEdge_ = true;
    for (auto &warp : cta.warps()) {
        if (!warp->finished())
            warp->setEarliestIssue(now + wake_latency);
    }
    addWarpToSchedulers(cta);
    cta.startExecutionEpisode(now + wake_latency);
}

std::vector<Cta *>
Sm::takeFinished()
{
    std::vector<Cta *> out;
    out.swap(finished_);
    return out;
}

void
Sm::destroyCta(Cta &cta)
{
    if (cta.state() != CtaState::Done)
        FINEREG_PANIC("destroying CTA ", cta.gridId(), " that is not Done");
    const auto it = std::find_if(
        ctas_.begin(), ctas_.end(),
        [&](const std::unique_ptr<Cta> &p) { return p.get() == &cta; });
    if (it == ctas_.end())
        FINEREG_PANIC("destroyCta: CTA not resident on SM ", id_);
    residentWarps_ -= cta.numWarps();
    ctas_.erase(it);
}

Cycle
Sm::ctaLastIssue(const Cta &cta) const
{
    return cta.lastIssueCycle();
}

void
Sm::addWarpToSchedulers(Cta &cta)
{
    for (auto &warp : cta.warps()) {
        if (warp->finished())
            continue;
        const unsigned slot =
            (cta.launchSeq() * cta.numWarps() + warp->id()) %
            config_.numSchedulers;
        schedulers_[slot].addWarp(warp.get());
    }
}

void
Sm::removeWarpFromSchedulers(Cta &cta)
{
    for (auto &warp : cta.warps()) {
        for (auto &sched : schedulers_)
            sched.removeWarp(warp.get());
    }
}

bool
Sm::warpIssuable(Warp *warp, Cycle now)
{
    if (warp->finished() || warp->atBarrier())
        return false;
    if (warp->earliestIssue() > now)
        return false;
    if (warp->pastEnd())
        return true; // will be retired at issue
    const Instruction &instr = warp->currentInstr();
    if (isMemory(instr.op) && isGlobalMemory(instr.op) &&
        memIssuedThisCycle_ >= config_.memPortsPerCycle) {
        return false;
    }
    return warp->scoreboard().ready(instr, now);
}

unsigned
Sm::tick(Cycle now)
{
    memIssuedThisCycle_ = 0;
    issuedLastTick_ = 0;

    for (auto &sched : schedulers_) {
        Warp *warp =
            sched.pick([&](Warp *w) { return warpIssuable(w, now); });
        if (!warp)
            continue;
        if (warp->pastEnd()) {
            finishWarp(*warp, now);
            continue;
        }
        issueInstr(*warp, now);
        ++issuedLastTick_;
    }

    issuedTotal_ += issuedLastTick_;
    issuedCtr_->inc(issuedLastTick_);

    if (stallProbe_)
        checkStallEpisodes(now);

    return issuedLastTick_;
}

void
Sm::checkStallEpisodes(Cycle now)
{
    for (auto &cta : ctas_) {
        if (cta->state() != CtaState::Active)
            continue;
        if (ctaLastIssue(*cta) == now)
            continue; // issued this cycle; not stalled
        if (cta->fullyStalledOnMemory(now)) {
            const Cycle episode = cta->closeExecutionEpisode(now);
            if (episode > 0)
                stallEpisode_->sample(static_cast<double>(episode));
        }
    }
}

void
Sm::issueInstr(Warp &warp, Cycle now)
{
    const Instruction &instr = warp.currentInstr();

    // Capture before the switch: control ops rewrite the SIMT stack.
    const std::uint32_t active_mask = warp.activeMask();
    CtaValues *values = warp.cta()->values();
    if (values)
        values->noteRetire(warp.id(), active_mask);

    // If a stall episode was closed by the probe, the first issue after the
    // stall opens a new one.
    warp.cta()->startExecutionEpisodeIfClosed(now);

    warp.bumpIssuedInstrs();
    warp.setLastIssueCycle(now);
    warp.cta()->noteIssue(now);
    warp.setEarliestIssue(now + 1);

    // Register file activity for the energy model.
    unsigned reads = 0;
    for (int src : instr.srcs)
        reads += src >= 0 ? 1 : 0;
    rfReads_->inc(reads);
    if (instr.dst >= 0)
        rfWrites_->inc();

    if (usageTracking_)
        trackUsage(warp, instr);

    switch (funcUnitOf(instr.op)) {
      case FuncUnit::ALU:
        if (values)
            values->execAlu(warp.id(), active_mask, instr);
        if (instr.dst >= 0) {
            warp.scoreboard().recordWrite(
                static_cast<RegIndex>(instr.dst), now + config_.aluLatency,
                false);
            scheduleWake(now + config_.aluLatency);
        }
        warp.setPc(warp.pc() + kInstrBytes);
        break;
      case FuncUnit::SFU:
        if (values)
            values->execAlu(warp.id(), active_mask, instr);
        if (instr.dst >= 0) {
            warp.scoreboard().recordWrite(
                static_cast<RegIndex>(instr.dst), now + config_.sfuLatency,
                false);
            scheduleWake(now + config_.sfuLatency);
        }
        warp.setPc(warp.pc() + kInstrBytes);
        break;
      case FuncUnit::MEM:
        execMemory(warp, instr, now);
        warp.setPc(warp.pc() + kInstrBytes);
        break;
      case FuncUnit::CTRL:
        switch (instr.op) {
          case Opcode::BRA:
            execBranch(warp, instr, now);
            break;
          case Opcode::JMP:
            warp.setPc(context_->kernel().blockStartPc(instr.targetBlock));
            warp.setEarliestIssue(now + config_.branchLatency);
            break;
          case Opcode::BAR: {
            barriersHit_->inc();
            warp.setAtBarrier(true);
            warp.setPc(warp.pc() + kInstrBytes);
            if (warp.cta()->arriveAtBarrier()) {
                for (auto &w : warp.cta()->warps()) {
                    if (!w->finished()) {
                        w->setAtBarrier(false);
                        w->setEarliestIssue(now + 1);
                    }
                }
                warp.cta()->releaseBarrier();
            }
            break;
          }
          case Opcode::EXIT:
            execExit(warp, now);
            break;
          default:
            FINEREG_PANIC("unhandled control op");
        }
        break;
    }

    if (!warp.finished())
        warp.reconvergeIfNeeded();
}

void
Sm::execBranch(Warp &warp, const Instruction &instr, Cycle now)
{
    warp.setEarliestIssue(now + config_.branchLatency);
    // The architectural outcome (PC, SIMT stack, loop counters, RNG draws)
    // is shared with the reference executor via warp_exec.
    if (warpExecBranch(warp, instr).diverged)
        divergences_->inc();
}

void
Sm::execMemory(Warp &warp, const Instruction &instr, Cycle now)
{
    CtaValues *values = warp.cta()->values();
    if (!isGlobalMemory(instr.op)) {
        sharedAccesses_->inc();
        if (values)
            values->execShared(warp.id(), warp.activeMask(), instr);
        if (isLoad(instr.op) && instr.dst >= 0) {
            warp.scoreboard().recordWrite(
                static_cast<RegIndex>(instr.dst),
                now + config_.sharedLatency, false);
            scheduleWake(now + config_.sharedLatency);
        }
        return;
    }

    ++memIssuedThisCycle_;
    const Addr addr = warpGenerateAddress(warp, instr);
    if (values)
        values->execGlobal(warp.id(), warp.activeMask(), instr, addr);

    // Scale the transaction count by the active-lane fraction.
    const unsigned lanes = warp.activeLanes();
    unsigned txns = std::max(
        1u, static_cast<unsigned>(std::ceil(
                instr.mem.transactions * (lanes / double(kWarpSize)))));

    const bool is_write = isStore(instr.op);
    const MemAccessResult result =
        mem_->warpAccess(id_, addr, txns, is_write, now);

    if (isLoad(instr.op) && instr.dst >= 0) {
        warp.scoreboard().recordWrite(static_cast<RegIndex>(instr.dst),
                                      result.completeCycle, true);
        scheduleWake(result.completeCycle);
    }
}

void
Sm::execExit(Warp &warp, Cycle now)
{
    warp.exitCurrentPath();
    if (warp.finished())
        finishWarp(warp, now);
}

void
Sm::finishWarp(Warp &warp, Cycle now)
{
    Cta *cta = warp.cta();
    for (auto &sched : schedulers_)
        sched.removeWarp(&warp);

    if (!warp.finished()) {
        // Retired via pastEnd(): mark done.
        warp.exitCurrentPath();
    }
    cta->noteWarpFinished();
    --activeLiveWarps_; // finishing warps are always on an Active CTA
    if (wheel_) {
        // Retire chains (further pastEnd warps, released barriers, the
        // policy reacting to a finished CTA) need a tick right after.
        wheel_->schedule(now + 1);
    }

    // A warp leaving can release a barrier the rest of the CTA waits on.
    if (!cta->allWarpsFinished()) {
        unsigned waiting = 0;
        unsigned live = 0;
        for (auto &w : cta->warps()) {
            if (w->finished())
                continue;
            ++live;
            waiting += w->atBarrier() ? 1 : 0;
        }
        if (live > 0 && waiting == live) {
            for (auto &w : cta->warps()) {
                if (!w->finished()) {
                    w->setAtBarrier(false);
                    w->setEarliestIssue(now + 1);
                }
            }
            cta->releaseBarrier();
        }
        return;
    }

    // Whole CTA done.
    const Kernel &kernel = context_->kernel();
    if (cta->state() == CtaState::Active) {
        --activeCtas_;
        activeWarpSlots_ -= kernel.warpsPerCta();
        activeThreadSlots_ -= kernel.threadsPerCta();
        listRemove(activeList_, cta);
    } else if (cta->state() == CtaState::Pending) {
        listRemove(pendingList_, cta);
    }
    removeWarpFromSchedulers(*cta);
    cta->setState(CtaState::Done);
    shmemUsed_ -= kernel.shmemPerCta();
    stateEdge_ = true;
    finished_.push_back(cta);
}

Cycle
Sm::nextWakeCycle(Cycle now) const
{
    Cycle wake = kNoCycle;
    for (const auto &cta : ctas_) {
        if (cta->state() != CtaState::Active)
            continue;
        for (const auto &warp : cta->warps()) {
            if (warp->finished() || warp->atBarrier())
                continue;
            Cycle candidate = warp->earliestIssue();
            if (candidate <= now && !warp->pastEnd()) {
                // Blocked on the scoreboard; wake when operands land.
                Scoreboard &sb = const_cast<Scoreboard &>(warp->scoreboard());
                candidate = sb.readyCycle(warp->currentInstr(), now);
                if (candidate <= now)
                    return now + 1; // issuable immediately
            }
            wake = std::min(wake, candidate);
        }
    }
    return wake;
}

void
Sm::accumulateOccupancy(Cycle delta)
{
    const std::uint64_t resident = ctas_.size();
    const std::uint64_t active_threads =
        std::uint64_t(activeLiveWarps_) * kWarpSize;
    residentCtaCycles_->inc(resident * delta);
    activeCtaCycles_->inc(std::uint64_t(activeCtas_) * delta);
    activeThreadCycles_->inc(active_threads * delta);
    occupancyCycles_->inc(delta);
}

void
Sm::trackUsage(const Warp &warp, const Instruction &instr)
{
    // Key: (cta launch seq, warp id, reg) -> one warp-register.
    auto touch = [&](int reg) {
        if (reg < 0)
            return;
        const std::uint64_t key =
            (std::uint64_t(warp.cta()->launchSeq()) << 24) |
            (std::uint64_t(warp.id()) << 8) | std::uint64_t(reg);
        touchedRegs_.insert(key);
    };
    touch(instr.dst);
    for (int src : instr.srcs)
        touch(src);

    if (++windowIssued_ >= 1000) {
        // Allocated warp-registers across resident CTAs.
        std::uint64_t allocated = 0;
        for (const auto &cta : ctas_) {
            if (cta->state() == CtaState::Done)
                continue;
            allocated += context_->kernel().warpRegsPerCta();
        }
        if (allocated > 0) {
            // CTAs that retired mid-window leave touches without a
            // matching allocation at window close; clamp to 100%.
            usageWindow_->sample(std::min(
                1.0, static_cast<double>(touchedRegs_.size()) /
                         static_cast<double>(allocated)));
        }
        touchedRegs_.clear();
        windowIssued_ = 0;
    }
}

} // namespace finereg
