#include "sm/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace finereg
{

Gpu::Gpu(const GpuConfig &config, const Kernel &kernel,
         std::unique_ptr<Policy> policy)
    : config_(config), stats_("gpu"),
      context_(std::make_unique<KernelContext>(kernel)),
      mem_(std::make_unique<MemHierarchy>(config.mem, config.numSms,
                                          stats_)),
      dispatcher_(kernel.gridCtas()),
      policy_(policy ? std::move(policy) : makePolicy(config)),
      cyclesCtr_(&stats_.counter("gpu.cycles")),
      depletionStallCycles_(&stats_.counter("gpu.depletion_stall_cycles"))
{
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(
            SmId(s), config_.sm, *context_, *mem_, stats_,
            config_.seed + 0x1000ull * (s + 1)));
        sms_.back()->enableUsageTracking(config_.usageTracking);
        sms_.back()->enableStallProbe(config_.stallProbe);
    }
    policy_->bind(*this);
}

Gpu::~Gpu() = default;

GpuRunResult
Gpu::run()
{
    GpuRunResult result;
    now_ = 0;
    Cycle idle_streak = 0;

    while (!dispatcher_.allComplete()) {
        if (now_ >= config_.maxCycles) {
            FINEREG_WARN("kernel ", context_->kernel().name(),
                         " hit the cycle cap at ", now_, " with ",
                         dispatcher_.completed(), "/",
                         dispatcher_.gridCtas(), " CTAs done");
            result.hitCycleLimit = true;
            break;
        }

        unsigned issued = 0;
        for (auto &sm : sms_)
            issued += sm->tick(now_);

        // Retire CTAs that finished this cycle.
        for (auto &sm : sms_) {
            for (Cta *cta : sm->takeFinished()) {
                policy_->onCtaFinished(*sm, *cta, now_);
                dispatcher_.noteCompleted();
                sm->destroyCta(*cta);
            }
        }

        // Policy decisions: launches, stall detection, switches.
        for (auto &sm : sms_)
            policy_->tick(*sm, now_);

        // Decide how far to advance.
        Cycle next = now_ + 1;
        if (issued == 0) {
            Cycle wake = kNoCycle;
            for (auto &sm : sms_) {
                wake = std::min(wake, sm->nextWakeCycle(now_));
                wake = std::min(wake, policy_->nextEventCycle(*sm, now_));
            }
            if (wake == kNoCycle) {
                // No scheduled event: advance conservatively; the policy
                // may unblock on a later tick (e.g., via new grid work).
                next = now_ + 1000;
                ++idle_streak;
                if (idle_streak > 10000) {
                    FINEREG_PANIC("no forward progress on kernel ",
                                  context_->kernel().name(), " at cycle ",
                                  now_);
                }
            } else {
                next = std::max(now_ + 1, wake);
                idle_streak = 0;
            }
        } else {
            idle_streak = 0;
        }

        const Cycle delta = next - now_;
        for (auto &sm : sms_) {
            sm->accumulateOccupancy(delta);
            // Fig. 14: cycles where the SM sits idle purely because the
            // register scheme ran out of space.
            if (sm->issuedLastTick() == 0 &&
                policy_->rfDepletionBlocked(*sm, now_)) {
                depletionStallCycles_->inc(delta);
            }
        }
        cyclesCtr_->inc(delta);
        now_ = next;
    }

    result.cycles = now_;
    result.completedCtas = dispatcher_.completed();
    for (auto &sm : sms_)
        result.instructions += sm->issuedInstrs();
    return result;
}

} // namespace finereg
