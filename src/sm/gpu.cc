#include "sm/gpu.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/log.hh"
#include "ref/cta_values.hh"
#include "verify/invariant_auditor.hh"
#include "verify/sim_error.hh"
#include "verify/watchdog.hh"

namespace finereg
{

Gpu::Gpu(const GpuConfig &config, const Kernel &kernel,
         std::unique_ptr<Policy> policy)
    : config_(config), stats_("gpu"),
      context_(std::make_unique<KernelContext>(kernel)),
      mem_(std::make_unique<MemHierarchy>(config.mem, config.numSms,
                                          stats_)),
      dispatcher_(kernel.gridCtas()),
      fault_(config.verify.fault.enabled()
                 ? std::make_unique<FaultInjector>(config.verify.fault,
                                                   stats_)
                 : nullptr),
      policy_(policy ? std::move(policy) : makePolicy(config)),
      cyclesCtr_(&stats_.counter("gpu.cycles")),
      depletionStallCycles_(&stats_.counter("gpu.depletion_stall_cycles")),
      loopIterations_(&stats_.counter("gpu.loop_iterations")),
      skippedCycles_(&stats_.counter("gpu.skipped_cycles")),
      fullAudits_(&stats_.counter("verify.full_audits")),
      edgeAudits_(&stats_.counter("verify.edge_audits"))
{
    mem_->setFaultInjector(fault_.get());
    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(
            SmId(s), config_.sm, *context_, *mem_, stats_,
            config_.seed + 0x1000ull * (s + 1)));
        // The CTA seed base must not depend on the SM index: a CTA's
        // execution path stays identical no matter where it lands.
        sms_.back()->setCtaSeedBase(config_.seed);
        sms_.back()->enableUsageTracking(config_.usageTracking);
        sms_.back()->enableStallProbe(config_.stallProbe);
        sms_.back()->enableValueTracking(config_.trackValues);
        // Scan/step modes reproduce the pre-wheel path exactly: no unit
        // announces events, so the wheel stays empty and free.
        if (config_.idleSkip == IdleSkipMode::Wheel)
            sms_.back()->setEventWheel(&wheel_);
    }
    if (config_.trackValues) {
        archState_ = std::make_shared<ArchState>();
        archState_->kernelName = kernel.name();
        archState_->regsPerThread = kernel.regsPerThread();
        archState_->threadsPerCta = kernel.threadsPerCta();
        archState_->ctas.resize(kernel.gridCtas());
    }
    policy_->bind(*this);
}

Gpu::~Gpu() = default;

GpuRunResult
Gpu::run()
{
    GpuRunResult result;
    now_ = 0;
    Cycle idle_streak = 0;

    DeadlockWatchdog watchdog(config_.verify.watchdogCycles);
    InvariantAuditor auditor(config_.verify.auditInterval);
    Cycle next_audit = auditor.enabled() ? auditor.interval() : kNoCycle;
    const unsigned edge_period =
        auditor.edgeSamplePeriod(config_.verify.auditEdgeEvery);
    std::uint64_t edges_seen = 0;
    const bool use_wheel = config_.idleSkip == IdleSkipMode::Wheel;

    const std::shared_ptr<CancelToken> &cancel = config_.verify.cancel;

    // Host-level fault sites, drawn once at dispatch. The injected
    // exception aborts the run before any simulated work; the injected
    // hang burns wall-clock time in cancel-polled slices and then lets
    // the run proceed, so simulated results are never perturbed.
    if (fault_ && fault_->forceWorkerException()) {
        throw std::runtime_error(
            "injected worker-job exception at dispatch (fault seed " +
            std::to_string(fault_->config().seed) + ")");
    }
    if (fault_ && fault_->forceJobHang()) {
        const auto slice = std::chrono::duration<double, std::milli>(
            std::max(0.1, fault_->config().jobHangSliceMs));
        const auto hang_start = std::chrono::steady_clock::now();
        const auto hang_cap = std::chrono::duration<double, std::milli>(
            fault_->config().jobHangMaxMs);
        while (!(cancel && cancel->cancelled()) &&
               std::chrono::steady_clock::now() - hang_start < hang_cap) {
            std::this_thread::sleep_for(slice);
        }
    }

    while (!dispatcher_.allComplete()) {
        if (cancel && cancel->cancelled()) {
            const std::string what =
                "kernel " + context_->kernel().name() + " cancelled at cycle " +
                std::to_string(now_) + " with " +
                std::to_string(dispatcher_.completed()) + "/" +
                std::to_string(dispatcher_.gridCtas()) + " CTAs done";
            if (cancel->reason() == CancelToken::kTimeout) {
                raiseTimeout("wall-clock deadline expired: " + what, now_,
                             buildStallDiagnostic(*this, now_,
                                                  watchdog.lastProgress()));
            }
            raiseCancelled(what, now_);
        }
        if (now_ >= config_.maxCycles) {
            FINEREG_WARN("kernel ", context_->kernel().name(),
                         " hit the cycle cap at ", now_, " with ",
                         dispatcher_.completed(), "/",
                         dispatcher_.gridCtas(), " CTAs done");
            result.hitCycleLimit = true;
            result.stallDiagnostic =
                buildStallDiagnostic(*this, now_, watchdog.lastProgress());
            break;
        }

        // Discard wake events at or before this cycle: the tick below
        // observes the state they announced, so only future events matter.
        if (use_wheel)
            wheel_.beginTick(now_);

        unsigned issued = 0;
        for (auto &sm : sms_)
            issued += sm->tick(now_);

        // Retire CTAs that finished this cycle.
        bool retired = false;
        for (auto &sm : sms_) {
            for (Cta *cta : sm->takeFinished()) {
                policy_->onCtaFinished(*sm, *cta, now_);
                dispatcher_.noteCompleted();
                // Absorb the architectural end state before the CTA (and
                // its value tracker) is destroyed.
                if (archState_ && cta->values()) {
                    cta->values()->mergeGlobalInto(archState_->globalStores);
                    archState_->ctas[cta->gridId()] =
                        cta->values()->takeEndState();
                }
                sm->destroyCta(*cta);
                retired = true;
            }
        }

        // Policy decisions: launches, stall detection, switches.
        for (auto &sm : sms_)
            policy_->tick(*sm, now_);

        // Progress = an instruction issued or a CTA retired this tick.
        if (issued > 0 || retired)
            watchdog.noteProgress(now_);
        else
            watchdog.check(*this, now_);

        if (now_ >= next_audit) {
            auditor.audit(*this, now_);
            fullAudits_->inc();
            next_audit = now_ + auditor.interval();
        }

        // Sampled edge auditing: CTA state transitions (launch, suspend,
        // resume, finish) are where switching invariants break, so each
        // marks its SM and every edge_period-th mark triggers a targeted
        // audit here — after the policy tick, at a consistent state point.
        if (auditor.enabled()) {
            for (auto &sm : sms_) {
                if (sm->takeStateEdge() && ++edges_seen % edge_period == 0) {
                    auditor.auditSm(*this, *sm, now_);
                    edgeAudits_->inc();
                }
            }
        }

        // Decide how far to advance.
        Cycle next = now_ + 1;
        if (issued == 0) {
            Cycle wake = kNoCycle;
            if (use_wheel) {
                // Every scan-visible wake was announced to the wheel when
                // it was recorded, so the wheel's earliest future event is
                // never later than the scan's answer; extra (stale) wheel
                // events only cause harmless no-op ticks.
                wake = wheel_.nextEvent();
                for (auto &sm : sms_)
                    wake = std::min(wake,
                                    policy_->nextEventCycle(*sm, now_));
#ifndef NDEBUG
                Cycle scan = kNoCycle;
                for (auto &sm : sms_) {
                    scan = std::min(scan, sm->nextWakeCycle(now_));
                    scan = std::min(scan,
                                    policy_->nextEventCycle(*sm, now_));
                }
                if (scan != kNoCycle && wake > scan) {
                    FINEREG_PANIC("event wheel missed a wake: wheel says ",
                                  wake, " but a scan finds ", scan,
                                  " at cycle ", now_);
                }
#endif
            } else {
                for (auto &sm : sms_) {
                    wake = std::min(wake, sm->nextWakeCycle(now_));
                    wake = std::min(wake,
                                    policy_->nextEventCycle(*sm, now_));
                }
            }
            if (wake == kNoCycle) {
                // No scheduled event: advance conservatively; the policy
                // may unblock on a later tick (e.g., via new grid work).
                next = now_ + 1000;
                ++idle_streak;
                if (idle_streak > 10000) {
                    raiseDeadlock(
                        "no forward progress on kernel " +
                            context_->kernel().name() + " at cycle " +
                            std::to_string(now_),
                        now_,
                        buildStallDiagnostic(*this, now_,
                                             watchdog.lastProgress()));
                }
            } else {
                // StepEveryCycle is the reference mode: a scheduled wake
                // exists, but advance a single cycle anyway so every tick
                // runs. (The no-event 1000-cycle jump above is kept in all
                // modes — stepping it by 1 would defeat deadlock
                // detection.)
                if (config_.idleSkip == IdleSkipMode::StepEveryCycle)
                    next = now_ + 1;
                else
                    next = std::max(now_ + 1, wake);
                idle_streak = 0;
            }
        } else {
            idle_streak = 0;
        }

        const Cycle delta = next - now_;
        for (auto &sm : sms_) {
            sm->accumulateOccupancy(delta);
            // Fig. 14: cycles where the SM sits idle purely because the
            // register scheme ran out of space.
            if (sm->issuedLastTick() == 0 &&
                policy_->rfDepletionBlocked(*sm, now_)) {
                depletionStallCycles_->inc(delta);
            }
        }
        cyclesCtr_->inc(delta);
        loopIterations_->inc();
        skippedCycles_->inc(delta - 1);
        now_ = next;
    }

    stats_.counter("gpu.wheel_pushes").inc(wheel_.pushes());
    stats_.counter("gpu.wheel_pops").inc(wheel_.pops());

    result.cycles = now_;
    result.completedCtas = dispatcher_.completed();
    for (auto &sm : sms_)
        result.instructions += sm->issuedInstrs();
    return result;
}

} // namespace finereg
