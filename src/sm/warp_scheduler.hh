/**
 * @file
 * Warp schedulers. Each SM has several (Table I: 4); every resident active
 * warp is statically assigned to one. GTO (greedy-then-oldest, the paper's
 * configuration) keeps issuing from the same warp until it stalls, then
 * falls back to the oldest schedulable warp; LRR round-robins.
 */

#ifndef FINEREG_SM_WARP_SCHEDULER_HH
#define FINEREG_SM_WARP_SCHEDULER_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"
#include "sm/cta.hh"
#include "sm/warp.hh"

namespace finereg
{

enum class SchedKind : unsigned char { GTO, LRR };

class WarpScheduler
{
  public:
    WarpScheduler(SchedKind kind, unsigned id) : kind_(kind), id_(id) {}

    unsigned id() const { return id_; }

    void
    addWarp(Warp *warp)
    {
        warps_.push_back(warp);
    }

    void
    removeWarp(Warp *warp)
    {
        warps_.erase(std::remove(warps_.begin(), warps_.end(), warp),
                     warps_.end());
        if (greedy_ == warp)
            greedy_ = nullptr;
        if (rrIndex_ >= warps_.size())
            rrIndex_ = 0;
    }

    const std::vector<Warp *> &warps() const { return warps_; }

    /**
     * Pick a warp to issue from. @p issuable is a predicate invoked on
     * candidate warps; the first satisfying warp under the policy's
     * priority order wins.
     */
    template <typename Pred>
    Warp *
    pick(Pred &&issuable)
    {
        if (warps_.empty())
            return nullptr;

        if (kind_ == SchedKind::GTO) {
            // Greedy: stick with the last issuer while it can go.
            if (greedy_ && issuable(greedy_))
                return greedy_;
            // Then-oldest: earliest CTA launch, then lowest warp id.
            Warp *best = nullptr;
            for (Warp *w : warps_) {
                if (!issuable(w))
                    continue;
                if (!best || olderThan(w, best))
                    best = w;
            }
            greedy_ = best ? best : greedy_;
            return best;
        }

        // LRR: rotate through the list starting after the last pick.
        const std::size_t n = warps_.size();
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t i = (rrIndex_ + 1 + k) % n;
            if (issuable(warps_[i])) {
                rrIndex_ = i;
                return warps_[i];
            }
        }
        return nullptr;
    }

  private:
    static bool
    olderThan(const Warp *a, const Warp *b)
    {
        const unsigned sa = a->cta()->launchSeq();
        const unsigned sb = b->cta()->launchSeq();
        if (sa != sb)
            return sa < sb;
        return a->id() < b->id();
    }

    SchedKind kind_;
    unsigned id_;
    std::vector<Warp *> warps_;
    Warp *greedy_ = nullptr;
    std::size_t rrIndex_ = 0;
};

} // namespace finereg

#endif // FINEREG_SM_WARP_SCHEDULER_HH
