/**
 * @file
 * Architectural warp execution semantics shared by the cycle-level SM and
 * the untimed reference executor (src/ref). The executed instruction stream
 * of a warp is a pure function of (kernel, warp seed): branch outcomes,
 * divergence masks, and memory addresses are drawn from the warp's private
 * RNG in a fixed order. Both executors MUST consume that stream through
 * these functions — any extra or missing draw desynchronizes the paths and
 * every differential comparison becomes meaningless.
 */

#ifndef FINEREG_SM_WARP_EXEC_HH
#define FINEREG_SM_WARP_EXEC_HH

#include "common/types.hh"
#include "isa/instruction.hh"
#include "sm/warp.hh"

namespace finereg
{

struct BranchOutcome
{
    /** The branch split the active mask (SIMT divergence). */
    bool diverged = false;
};

/**
 * Execute a BRA architecturally: update the warp's PC / SIMT stack / loop
 * counters and consume the warp RNG exactly as the issue stage does.
 * Timing side effects (branch latency) are the caller's business.
 */
BranchOutcome warpExecBranch(Warp &warp, const Instruction &instr);

/**
 * Deterministic warp address for a global memory instruction: the pattern
 * descriptor plus the warp's per-instruction execution count and reuse
 * draws yield a 128-byte-aligned base address. Advances the warp's
 * per-instruction memory state (and possibly its RNG).
 */
Addr warpGenerateAddress(Warp &warp, const Instruction &instr);

} // namespace finereg

#endif // FINEREG_SM_WARP_EXEC_HH
