#include "sm/warp.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "sm/cta.hh"

namespace finereg
{

void
Warp::setEarliestIssue(Cycle c)
{
    earliestIssue_ = std::max(earliestIssue_, c);
    cta_->invalidateStallCache();
    if (wheel_)
        wheel_->schedule(c);
}

Warp::Warp(Cta *cta, WarpId id, const KernelContext &context,
           std::uint64_t seed)
    : cta_(cta), id_(id), context_(&context),
      loopRemaining_(context.numLoops(), 0),
      memExec_(context.numMemInstrs(), 0),
      lastAddr_(context.numMemInstrs(), 0), rng_(seed)
{
    stack_.push_back({0, 0xffffffffu, context.endPc()});
}

unsigned
Warp::activeLanes() const
{
    return std::popcount(stack_.back().mask);
}

void
Warp::diverge(Pc taken_pc, std::uint32_t taken_mask, Pc fall_pc,
              Pc reconv_pc)
{
    StackEntry &current = stack_.back();
    const std::uint32_t full_mask = current.mask;
    const std::uint32_t fall_mask = full_mask & ~taken_mask;

    if (taken_mask == 0 || fall_mask == 0)
        FINEREG_PANIC("diverge() without an actual lane split");

    // Current entry becomes the reconvergence continuation.
    current.pc = reconv_pc;

    // Fall-through path below, taken path on top (executes first).
    stack_.push_back({fall_pc, fall_mask, reconv_pc});
    stack_.push_back({taken_pc, taken_mask, reconv_pc});
}

void
Warp::reconvergeIfNeeded()
{
    while (stack_.size() > 1 && stack_.back().pc == stack_.back().reconvPc)
        stack_.pop_back();
}

void
Warp::exitCurrentPath()
{
    if (stack_.size() > 1) {
        stack_.pop_back();
    } else {
        finished_ = true;
    }
}

const Instruction &
Warp::currentInstr() const
{
    return context_->kernel().instrAt(pc());
}

} // namespace finereg
