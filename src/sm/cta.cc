#include "sm/cta.hh"

#include <algorithm>

#include "common/log.hh"
#include "ref/cta_values.hh"

namespace finereg
{

Cta::Cta(GridCtaId grid_id, unsigned launch_seq, const KernelContext &context,
         std::uint64_t seed_base)
    : gridId_(grid_id), launchSeq_(launch_seq), context_(&context)
{
    const unsigned n_warps = context.kernel().warpsPerCta();
    warps_.reserve(n_warps);
    for (unsigned w = 0; w < n_warps; ++w) {
        const std::uint64_t warp_seed =
            seed_base + 0x9e3779b97f4a7c15ull * (w + 1);
        warps_.push_back(
            std::make_unique<Warp>(this, WarpId(w), context, warp_seed));
    }
}

Cta::~Cta() = default;

void
Cta::enableValueTracking()
{
    if (!values_)
        values_ = std::make_unique<CtaValues>(gridId_, *context_);
}

bool
Cta::arriveAtBarrier()
{
    ++barrierCount_;
    const unsigned live = numWarps() - finishedWarps_;
    return barrierCount_ >= live;
}

bool
Cta::fullyStalledOnMemory(Cycle now) const
{
    return fullyStalledUntil(now) > now;
}

Cycle
Cta::fullyStalledUntil(Cycle now) const
{
    bool any_mem_blocked = false;
    Cycle until = kNoCycle;
    for (const auto &warp : warps_) {
        if (warp->finished())
            continue;
        if (warp->atBarrier()) {
            // A barrier-parked warp neither runs nor blocks switching:
            // whether the CTA is stalled depends on the warps still
            // executing toward the barrier.
            continue;
        }
        if (warp->earliestIssue() > now)
            return 0; // still in its issue shadow; not a stall
        const Instruction &instr = warp->currentInstr();
        if (!warp->scoreboard().blockedOnMemory(instr, now))
            return 0;
        any_mem_blocked = true;
        // The warp stays blocked until its operands land.
        Scoreboard &sb = const_cast<Scoreboard &>(warp->scoreboard());
        until = std::min(until, sb.readyCycle(instr, now));
    }
    if (!any_mem_blocked)
        return 0;
    return std::max(until, now + 1);
}

bool
Cta::rescanStall(Cycle now) const
{
    // Rescan, and record how long the verdict holds absent a mutation
    // (mutations reset stallHorizon_ to 0, forcing the next call here).
    stallStalled_ = false;
    stallHorizon_ = kNoCycle;
    bool any_mem_blocked = false;
    Cycle until = kNoCycle;
    for (const auto &warp : warps_) {
        if (warp->finished() || warp->atBarrier())
            continue;
        if (warp->earliestIssue() > now) {
            // Issue shadow: not a stall until the shadow expires.
            stallHorizon_ = warp->earliestIssue();
            return false;
        }
        const Instruction &instr = warp->currentInstr();
        if (!warp->scoreboard().blockedOnMemory(instr, now)) {
            // An issuable (or non-memory-blocked) warp stays that way
            // until it issues — which invalidates the memo.
            return false;
        }
        any_mem_blocked = true;
        Scoreboard &sb = const_cast<Scoreboard &>(warp->scoreboard());
        until = std::min(until, sb.readyCycle(instr, now));
    }
    if (!any_mem_blocked)
        return false;
    stallStalled_ = true;
    stallHorizon_ = std::max(until, now + 1);
    return true;
}

Cycle
Cta::estimateReadyCycle(Cycle now) const
{
    std::vector<Cycle> wake;
    for (const auto &warp : warps_) {
        if (warp->finished() || warp->atBarrier())
            continue;
        wake.push_back(warp->scoreboard().lastPendingCycle(now));
    }
    if (wake.empty())
        return now;
    std::sort(wake.begin(), wake.end());
    // Ready when half the blocked warps can run again.
    return wake[(wake.size() - 1) / 2];
}

Cycle
Cta::closeExecutionEpisode(Cycle now)
{
    if (!episodeOpen_)
        return 0;
    episodeOpen_ = false;
    return now > episodeStart_ ? now - episodeStart_ : 0;
}

} // namespace finereg
