/**
 * @file
 * Per-launch derived kernel state shared by every SM running the kernel:
 * CFG analysis (reconvergence PCs), the compiler's live-register table, and
 * dense side tables (loop ids, memory-instruction ids) the warps index.
 */

#ifndef FINEREG_SM_KERNEL_CONTEXT_HH
#define FINEREG_SM_KERNEL_CONTEXT_HH

#include <vector>

#include "compiler/cfg_analysis.hh"
#include "compiler/live_info.hh"
#include "isa/kernel.hh"

namespace finereg
{

class KernelContext
{
  public:
    explicit KernelContext(const Kernel &kernel);

    const Kernel &kernel() const { return kernel_; }
    const CfgAnalysis &cfg() const { return cfg_; }
    const LiveRegisterTable &liveTable() const { return liveTable_; }

    /** Loop index of a loop back-edge instruction, or -1. */
    int loopId(unsigned instr_index) const { return loopId_[instr_index]; }

    /** Memory-instruction index of a load/store, or -1. */
    int memId(unsigned instr_index) const { return memId_[instr_index]; }

    unsigned numLoops() const { return numLoops_; }
    unsigned numMemInstrs() const { return numMemInstrs_; }

    /** Reconvergence PC for the branch at @p instr_index. */
    Pc reconvergencePc(unsigned instr_index) const
    {
        return reconvPc_[instr_index];
    }

    /** PC one past the last instruction (SIMT-stack sentinel). */
    Pc endPc() const { return endPc_; }

  private:
    const Kernel &kernel_;
    CfgAnalysis cfg_;
    LiveRegisterTable liveTable_;
    std::vector<int> loopId_;
    std::vector<int> memId_;
    std::vector<Pc> reconvPc_;
    unsigned numLoops_ = 0;
    unsigned numMemInstrs_ = 0;
    Pc endPc_ = 0;
};

} // namespace finereg

#endif // FINEREG_SM_KERNEL_CONTEXT_HH
