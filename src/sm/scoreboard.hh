/**
 * @file
 * Per-warp scoreboard: tracks in-flight register writes so dependent
 * instructions stall until their operands land (stall-on-use). It also
 * remembers which pending writes come from global memory — the signal the
 * CTA-stall detector uses to classify a warp as memory-blocked.
 */

#ifndef FINEREG_SM_SCOREBOARD_HH
#define FINEREG_SM_SCOREBOARD_HH

#include <array>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace finereg
{

class Scoreboard
{
  public:
    /** Record that @p reg is written and becomes readable at @p ready. */
    void
    recordWrite(RegIndex reg, Cycle ready, bool from_global_mem)
    {
        readyAt_[reg] = ready;
        pending_.set(reg);
        if (from_global_mem)
            fromMem_.set(reg);
        else
            fromMem_.reset(reg);
    }

    /** True when every operand of @p instr is available at @p now. */
    bool
    ready(const Instruction &instr, Cycle now)
    {
        return readyCycle(instr, now) <= now;
    }

    /**
     * Earliest cycle at which @p instr can issue: the latest ready time of
     * its sources (RAW) and destination (WAW). Expires settled entries as a
     * side effect.
     */
    Cycle
    readyCycle(const Instruction &instr, Cycle now)
    {
        Cycle latest = 0;
        auto consider = [&](int reg) {
            if (reg < 0)
                return;
            const auto r = static_cast<RegIndex>(reg);
            if (!pending_.test(r))
                return;
            if (readyAt_[r] <= now) {
                pending_.reset(r);
                fromMem_.reset(r);
                return;
            }
            latest = std::max(latest, readyAt_[r]);
        };
        for (int src : instr.srcs)
            consider(src);
        consider(instr.dst);
        return latest;
    }

    /**
     * True when @p instr cannot issue at @p now *and* at least one blocking
     * operand is an outstanding global-memory load.
     */
    bool
    blockedOnMemory(const Instruction &instr, Cycle now) const
    {
        bool blocked_mem = false;
        auto consider = [&](int reg) {
            if (reg < 0)
                return;
            const auto r = static_cast<RegIndex>(reg);
            if (pending_.test(r) && readyAt_[r] > now && fromMem_.test(r))
                blocked_mem = true;
        };
        for (int src : instr.srcs)
            consider(src);
        consider(instr.dst);
        return blocked_mem;
    }

    /** Latest outstanding-write completion, or @p now when none pending. */
    Cycle
    lastPendingCycle(Cycle now) const
    {
        Cycle latest = now;
        pending_.forEach([&](RegIndex r) {
            if (readyAt_[r] > now)
                latest = std::max(latest, readyAt_[r]);
        });
        return latest;
    }

    void
    clear()
    {
        readyAt_.fill(0);
        pending_.clear();
        fromMem_.clear();
    }

    // Auditor introspection --------------------------------------------------

    /** Registers with a recorded in-flight write (may include writes that
     * already settled but were not yet lazily expired). */
    const RegBitVec &pendingMask() const { return pending_; }

    /** Subset of pendingMask() whose writes come from global memory. */
    const RegBitVec &memPendingMask() const { return fromMem_; }

    /** Recorded completion cycle of the last write to @p reg. */
    Cycle readyAtOf(RegIndex reg) const { return readyAt_[reg]; }

  private:
    std::array<Cycle, kMaxRegsPerThread> readyAt_{};
    RegBitVec pending_;
    RegBitVec fromMem_;
};

} // namespace finereg

#endif // FINEREG_SM_SCOREBOARD_HH
