#include "sm/cta_dispatcher.hh"

#include "common/log.hh"

namespace finereg
{

GridCtaId
CtaDispatcher::pop()
{
    if (!hasWork())
        FINEREG_PANIC("CtaDispatcher::pop with empty grid");
    return next_++;
}

} // namespace finereg
