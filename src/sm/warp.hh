/**
 * @file
 * Warp: 32 threads executing in lockstep. Carries the SIMT reconvergence
 * stack (PDOM divergence handling), the scoreboard, loop trip counters, and
 * per-memory-instruction execution counts used for deterministic address
 * generation.
 */

#ifndef FINEREG_SM_WARP_HH
#define FINEREG_SM_WARP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "core/event_wheel.hh"
#include "sm/kernel_context.hh"
#include "sm/scoreboard.hh"

namespace finereg
{

class Cta;

/** Why a warp cannot issue right now. */
enum class BlockReason : unsigned char
{
    None,      ///< Issuable.
    Execution, ///< Scoreboard dependence on a short-latency op.
    Memory,    ///< Scoreboard dependence on a global-memory load.
    Barrier,   ///< Waiting at a CTA barrier.
    Finished,  ///< All lanes exited.
};

class Warp
{
  public:
    /**
     * @p seed drives this warp's private stochastic stream (branch
     * outcomes, divergence masks, address reuse). Seeding per warp from
     * the grid CTA id makes the executed instruction sequence a pure
     * function of the kernel and seed — independent of issue timing, CTA
     * placement, and injected faults.
     */
    Warp(Cta *cta, WarpId id, const KernelContext &context,
         std::uint64_t seed = 0);

    Cta *cta() const { return cta_; }
    WarpId id() const { return id_; }

    /** Private deterministic RNG for this warp's execution randomness. */
    Rng &rng() { return rng_; }

    // SIMT stack ------------------------------------------------------------

    struct StackEntry
    {
        Pc pc;
        std::uint32_t mask;
        Pc reconvPc;
    };

    Pc pc() const { return stack_.back().pc; }
    void setPc(Pc pc) { stack_.back().pc = pc; }
    std::uint32_t activeMask() const { return stack_.back().mask; }
    unsigned activeLanes() const;

    const std::vector<StackEntry> &simtStack() const { return stack_; }

    /**
     * Diverge at the current PC: the current entry becomes the
     * reconvergence entry, and the two path entries are pushed (taken path
     * on top, so it executes first).
     */
    void diverge(Pc taken_pc, std::uint32_t taken_mask, Pc fall_pc,
                 Pc reconv_pc);

    /** Pop reconverged entries; returns true if the warp is mid-divergence
     * and just merged. */
    void reconvergeIfNeeded();

    /** Mark the current stack entry's lanes as exited. */
    void exitCurrentPath();

    bool finished() const { return finished_; }

    // Scheduling state -------------------------------------------------------

    Scoreboard &scoreboard() { return scoreboard_; }
    const Scoreboard &scoreboard() const { return scoreboard_; }

    /** Earliest cycle the front end may issue from this warp. Announces
     * the wake to the bound event wheel and drops the parent CTA's stall
     * memo (defined in warp.cc: Cta is incomplete here). */
    Cycle earliestIssue() const { return earliestIssue_; }
    void setEarliestIssue(Cycle c);

    /**
     * Attach the SM's idle-skip event wheel: every earliest-issue update
     * — the single choke point for warp wake times — is announced to it.
     */
    void bindEventWheel(EventWheel *wheel) { wheel_ = wheel; }

    bool atBarrier() const { return atBarrier_; }
    void setAtBarrier(bool v) { atBarrier_ = v; }

    /** Last cycle this warp issued (GTO greediness / age tiebreaks). */
    Cycle lastIssueCycle() const { return lastIssueCycle_; }
    void setLastIssueCycle(Cycle c) { lastIssueCycle_ = c; }

    // Loop and memory side state ---------------------------------------------

    /** Remaining iterations of loop @p loop_id (0 = counter idle). */
    unsigned loopRemaining(int loop_id) const { return loopRemaining_[loop_id]; }
    void setLoopRemaining(int loop_id, unsigned n) { loopRemaining_[loop_id] = n; }

    /** Dynamic execution count of memory instruction @p mem_id. */
    std::uint32_t memExecCount(int mem_id) const { return memExec_[mem_id]; }
    void bumpMemExecCount(int mem_id) { ++memExec_[mem_id]; }

    Addr lastMemAddr(int mem_id) const { return lastAddr_[mem_id]; }
    void setLastMemAddr(int mem_id, Addr a) { lastAddr_[mem_id] = a; }

    /** Dynamic instructions this warp has issued. */
    std::uint64_t issuedInstrs() const { return issuedInstrs_; }
    void bumpIssuedInstrs() { ++issuedInstrs_; }

    const KernelContext &context() const { return *context_; }

    /** Next instruction this warp will execute; finished() must be false. */
    const Instruction &currentInstr() const;

    /** True when the current PC has run past the kernel end. */
    bool pastEnd() const { return pc() >= context_->endPc(); }

  private:
    Cta *cta_;
    WarpId id_;
    const KernelContext *context_;

    std::vector<StackEntry> stack_;
    bool finished_ = false;
    bool atBarrier_ = false;

    Scoreboard scoreboard_;
    Cycle earliestIssue_ = 0;
    Cycle lastIssueCycle_ = 0;
    EventWheel *wheel_ = nullptr;

    std::vector<unsigned> loopRemaining_;
    std::vector<std::uint32_t> memExec_;
    std::vector<Addr> lastAddr_;
    std::uint64_t issuedInstrs_ = 0;
    Rng rng_;
};

} // namespace finereg

#endif // FINEREG_SM_WARP_HH
