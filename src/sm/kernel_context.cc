#include "sm/kernel_context.hh"

namespace finereg
{

KernelContext::KernelContext(const Kernel &kernel)
    : kernel_(kernel), cfg_(kernel), liveTable_(kernel)
{
    const auto &instrs = kernel.instrs();
    loopId_.assign(instrs.size(), -1);
    memId_.assign(instrs.size(), -1);
    reconvPc_.assign(instrs.size(), 0);

    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (instr.isLoopBranch())
            loopId_[i] = static_cast<int>(numLoops_++);
        if (isMemory(instr.op))
            memId_[i] = static_cast<int>(numMemInstrs_++);
        if (instr.op == Opcode::BRA) {
            const int block = kernel.blockOfInstr(static_cast<unsigned>(i));
            reconvPc_[i] = cfg_.reconvergencePc(block);
        }
    }
    endPc_ = static_cast<Pc>(instrs.size() * kInstrBytes);
}

} // namespace finereg
