/**
 * @file
 * Cooperative thread array: the unit FineReg's register management operates
 * on. A CTA is Active (warps schedulable, registers in the ACRF), Pending
 * (evicted from the pipeline, live registers in the PCRF / DRAM depending on
 * policy), or Done. The Cta tracks barrier state, stall detection, and the
 * timing probes Table III and Fig. 12 need.
 */

#ifndef FINEREG_SM_CTA_HH
#define FINEREG_SM_CTA_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "sm/warp.hh"

namespace finereg
{

class CtaValues;

enum class CtaState : unsigned char
{
    Active,  ///< Executing: context in pipeline, registers in ACRF.
    Pending, ///< Stalled and evicted; awaiting reactivation.
    Done,    ///< All warps finished.
};

class Cta
{
  public:
    /**
     * @p seed_base seeds the warps' private RNG streams (warp w draws from
     * seed_base mixed with w). Callers derive it from the grid CTA id so
     * the execution path is independent of placement and timing.
     */
    Cta(GridCtaId grid_id, unsigned launch_seq, const KernelContext &context,
        std::uint64_t seed_base = 0);
    ~Cta();

    GridCtaId gridId() const { return gridId_; }

    /** Monotone launch sequence on this SM (GTO "oldest" order). */
    unsigned launchSeq() const { return launchSeq_; }

    CtaState state() const { return state_; }
    void
    setState(CtaState s)
    {
        state_ = s;
        invalidateStallCache();
    }

    std::vector<std::unique_ptr<Warp>> &warps() { return warps_; }
    const std::vector<std::unique_ptr<Warp>> &warps() const { return warps_; }

    unsigned numWarps() const { return warps_.size(); }

    unsigned finishedWarps() const { return finishedWarps_; }
    void
    noteWarpFinished()
    {
        ++finishedWarps_;
        invalidateStallCache();
    }
    bool allWarpsFinished() const { return finishedWarps_ == warps_.size(); }

    const KernelContext &context() const { return *context_; }

    // Barrier ---------------------------------------------------------------

    /**
     * A warp arrived at a barrier.
     *
     * @retval true when this arrival releases the barrier (all live warps
     *         arrived); the caller must then wake the waiting warps.
     */
    bool arriveAtBarrier();
    void
    releaseBarrier()
    {
        barrierCount_ = 0;
        invalidateStallCache();
    }

    // Stall detection and probes ---------------------------------------------

    /**
     * True when every unfinished warp is blocked on global memory — the
     * condition that makes the CTA a switch candidate (Sec. IV-A).
     */
    bool fullyStalledOnMemory(Cycle now) const;

    /**
     * Stall check with memoization support: returns the cycle until which
     * the CTA is guaranteed to remain fully stalled (the earliest warp
     * wake-up), or 0 when the CTA is not fully stalled. Policies cache
     * the result to avoid rescanning warps every cycle.
     */
    Cycle fullyStalledUntil(Cycle now) const;

    /** Last cycle any warp of this CTA issued (O(1), kept by the SM). */
    Cycle lastIssueCycle() const { return lastIssue_; }
    void
    noteIssue(Cycle now)
    {
        lastIssue_ = now;
        invalidateStallCache();
    }

    /**
     * Memoised fullyStalledOnMemory: the last scan's verdict is reused
     * while no warp of this CTA mutated and @p now is before the cached
     * horizon (earliest wake for a stalled CTA, issue-shadow expiry for
     * a not-yet-issuable one, forever for a CTA with an issuable warp —
     * time alone can never turn an issuable warp into a blocked one).
     * Every mutation path (issue, earliest-issue wake, barrier traffic,
     * warp finish, state change) resets the horizon, so the cached
     * verdict is always identical to a fresh warp scan.
     */
    bool
    stalledOnMemoryCached(Cycle now) const
    {
        if (now < stallHorizon_)
            return stallStalled_; // memo hit: the hot path
        return rescanStall(now);
    }

    /** Drop the stall memo after a warp-visible state change. */
    void invalidateStallCache() { stallHorizon_ = 0; }

    /**
     * Cycle at which the CTA is worth reactivating: when at least half of
     * its blocked warps have their operands back.
     */
    Cycle estimateReadyCycle(Cycle now) const;

    /** Start (or restart after resume) the Table III stall-episode timer. */
    void startExecutionEpisode(Cycle now) { episodeStart_ = now; episodeOpen_ = true; }

    /** Open a new episode on the first issue after a closed one. */
    void
    startExecutionEpisodeIfClosed(Cycle now)
    {
        if (!episodeOpen_)
            startExecutionEpisode(now);
    }

    /** Close the episode at full stall; returns its length, or 0 if no
     * episode was open. */
    Cycle closeExecutionEpisode(Cycle now);

    // Value tracking ---------------------------------------------------------

    /**
     * Attach a functional value tracker (ref/cta_values.hh). Off by
     * default: the timing model never reads values, so tracking is pure
     * observation enabled only for differential/golden runs.
     */
    void enableValueTracking();

    /** The value tracker, or nullptr when tracking is off. */
    CtaValues *values() { return values_.get(); }
    const CtaValues *values() const { return values_.get(); }

    /** Registers-in-ACRF bookkeeping handle for policies. */
    unsigned regAllocHandle = kInvalidId;

    /**
     * Pending-ready mirror for single-tier policies: the estimated
     * operand-ready cycle while this CTA is tracked as Pending, kNoCycle
     * when untracked. Shadows the owning policy's PendingReadySet (kept
     * in lockstep at every set/erase) so the per-tick restore scans read
     * a field instead of probing a hash map.
     */
    Cycle policyReadyCycle = kNoCycle;

  private:
    GridCtaId gridId_;
    unsigned launchSeq_;
    const KernelContext *context_;
    CtaState state_ = CtaState::Active;
    std::vector<std::unique_ptr<Warp>> warps_;
    unsigned finishedWarps_ = 0;
    unsigned barrierCount_ = 0;

    std::unique_ptr<CtaValues> values_;

    Cycle episodeStart_ = 0;
    bool episodeOpen_ = false;
    /** Slow path of stalledOnMemoryCached: scan warps, refresh memo. */
    bool rescanStall(Cycle now) const;

    Cycle lastIssue_ = 0;

    // Stall memo (see stalledOnMemoryCached). Horizon 0 = invalid.
    mutable Cycle stallHorizon_ = 0;
    mutable bool stallStalled_ = false;
};

} // namespace finereg

#endif // FINEREG_SM_CTA_HH
