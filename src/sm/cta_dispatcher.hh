/**
 * @file
 * Grid cursor: hands out the next CTA of the launched grid to whichever
 * SM/policy asks, and tracks completion for simulation termination.
 */

#ifndef FINEREG_SM_CTA_DISPATCHER_HH
#define FINEREG_SM_CTA_DISPATCHER_HH

#include "common/types.hh"

namespace finereg
{

class CtaDispatcher
{
  public:
    explicit CtaDispatcher(unsigned grid_ctas) : gridCtas_(grid_ctas) {}

    /** CTAs not yet handed to any SM. */
    bool hasWork() const { return next_ < gridCtas_; }

    unsigned remaining() const { return gridCtas_ - next_; }

    /** Take the next CTA id; hasWork() must be true. */
    GridCtaId pop();

    void noteCompleted() { ++completed_; }
    bool allComplete() const { return completed_ >= gridCtas_; }
    unsigned completed() const { return completed_; }
    unsigned gridCtas() const { return gridCtas_; }

  private:
    unsigned gridCtas_;
    unsigned next_ = 0;
    unsigned completed_ = 0;
};

} // namespace finereg

#endif // FINEREG_SM_CTA_DISPATCHER_HH
