/**
 * @file
 * Gpu: the full device — SMs, shared memory hierarchy, CTA dispatcher, and
 * the management policy. Runs the kernel to completion with event-driven
 * cycle skipping (idle stretches where every warp waits on memory are
 * fast-forwarded to the next wake-up, with occupancy stats accumulated
 * across the gap).
 */

#ifndef FINEREG_SM_GPU_HH
#define FINEREG_SM_GPU_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/event_wheel.hh"
#include "core/gpu_config.hh"
#include "mem/mem_hierarchy.hh"
#include "policies/policy.hh"
#include "ref/arch_state.hh"
#include "sm/cta_dispatcher.hh"
#include "sm/kernel_context.hh"
#include "sm/sm.hh"
#include "verify/fault_injection.hh"

namespace finereg
{

struct GpuRunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    unsigned completedCtas = 0;
    bool hitCycleLimit = false;

    /** Watchdog-style stall summary, filled when the cycle cap is hit. */
    std::string stallDiagnostic;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

class Gpu
{
  public:
    /**
     * Build a device for @p kernel under @p config with the given policy
     * (pass nullptr to use makePolicy(config)).
     */
    Gpu(const GpuConfig &config, const Kernel &kernel,
        std::unique_ptr<Policy> policy = nullptr);
    ~Gpu();

    /** Execute the grid to completion (or the cycle cap). */
    GpuRunResult run();

    const GpuConfig &config() const { return config_; }
    const KernelContext &context() const { return *context_; }
    CtaDispatcher &dispatcher() { return dispatcher_; }
    MemHierarchy &mem() { return *mem_; }
    StatGroup &stats() { return stats_; }
    Policy &policy() { return *policy_; }

    std::vector<std::unique_ptr<Sm>> &sms() { return sms_; }

    Cycle nowCycle() const { return now_; }

    /** Active fault injector, or nullptr when fault injection is off. */
    FaultInjector *faultInjector() { return fault_.get(); }

    /**
     * The architectural end state accumulated from retired CTAs (null
     * unless config.trackValues). CTAs that never retired — cycle cap,
     * aborted run — stay !completed() in the returned state.
     */
    std::shared_ptr<const ArchState> takeArchState()
    {
        return std::move(archState_);
    }

  private:
    GpuConfig config_;
    StatGroup stats_;
    std::unique_ptr<KernelContext> context_;
    std::unique_ptr<MemHierarchy> mem_;
    std::vector<std::unique_ptr<Sm>> sms_;
    CtaDispatcher dispatcher_;
    std::unique_ptr<FaultInjector> fault_;
    std::unique_ptr<Policy> policy_;
    std::shared_ptr<ArchState> archState_;
    EventWheel wheel_;
    Cycle now_ = 0;

    Counter *cyclesCtr_;
    Counter *depletionStallCycles_;
    Counter *loopIterations_;
    Counter *skippedCycles_;
    Counter *fullAudits_;
    Counter *edgeAudits_;
};

} // namespace finereg

#endif // FINEREG_SM_GPU_HH
