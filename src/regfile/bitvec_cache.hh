/**
 * @file
 * Live-register bit-vector cache inside the RMU (Sec. V-C, Fig. 10): a
 * small direct-mapped cache of per-PC 64-bit live vectors. Hits avoid the
 * off-chip fetch of the compiler-generated table. 32 entries, indexed by a
 * 5-bit hash of the PC, 12-byte lines (4 B PC tag + 8 B vector).
 */

#ifndef FINEREG_REGFILE_BITVEC_CACHE_HH
#define FINEREG_REGFILE_BITVEC_CACHE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace finereg
{

class BitvecCache
{
  public:
    BitvecCache(unsigned entries, StatGroup &stats);

    /**
     * Probe for the vector of @p pc; fills the line on a miss.
     *
     * @retval true on hit (vector served on-chip), false on miss (caller
     *         pays the off-chip fetch).
     */
    bool access(Pc pc);

    /** Probe without fill (tests). */
    bool probe(Pc pc) const;

    unsigned numEntries() const { return lines_.size(); }

    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }

    /** SRAM bits: 12-byte entries (Sec. V-F: 384 B for 32 entries). */
    std::uint64_t storageBits() const
    {
        return std::uint64_t(lines_.size()) * 12 * 8;
    }

    void clear();

  private:
    struct Line
    {
        Pc tag = 0;
        bool valid = false;
    };

    std::size_t indexOf(Pc pc) const;

    std::vector<Line> lines_;
    Counter *hits_;
    Counter *misses_;
};

} // namespace finereg

#endif // FINEREG_REGFILE_BITVEC_CACHE_HH
