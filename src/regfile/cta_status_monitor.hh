/**
 * @file
 * CTA status monitor (Sec. V-B, Table IV): for every resident CTA, two
 * 2-bit fields track where the pipeline context lives (not launched /
 * shared memory / pipeline) and where the registers live (not launched /
 * PCRF / ACRF). A CTA is active only when both fields read 2. The monitor
 * also implements the paper's switch-candidate prioritization: first CTAs
 * with context=1 & regs=2 (context parked but registers still in the ACRF),
 * then CTAs with both fields 1.
 */

#ifndef FINEREG_REGFILE_CTA_STATUS_MONITOR_HH
#define FINEREG_REGFILE_CTA_STATUS_MONITOR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace finereg
{

/** Table IV encodings. */
enum class ContextLocation : unsigned char
{
    NotLaunched = 0,
    SharedMemory = 1,
    Pipeline = 2,
};

enum class RegisterLocation : unsigned char
{
    NotLaunched = 0,
    Pcrf = 1,
    Acrf = 2,
};

class CtaStatusMonitor
{
  public:
    explicit CtaStatusMonitor(unsigned max_ctas = 128);

    /** Register a newly launched CTA as fully active. */
    void onLaunch(GridCtaId cta);

    void setContext(GridCtaId cta, ContextLocation loc);
    void setRegisters(GridCtaId cta, RegisterLocation loc);

    ContextLocation contextOf(GridCtaId cta) const;
    RegisterLocation registersOf(GridCtaId cta) const;

    /** Table IV: active means both fields encode 2. */
    bool isActive(GridCtaId cta) const;

    /** Remove a finished CTA. */
    void onRetire(GridCtaId cta);

    unsigned numTracked() const { return status_.size(); }
    unsigned maxCtas() const { return maxCtas_; }

    /**
     * Switch-candidate priority (Sec. V-B): among @p candidates return the
     * best pending CTA — first context=SharedMemory & regs=Acrf, then
     * context=SharedMemory & regs=Pcrf. nullopt when none qualify.
     */
    std::optional<GridCtaId>
    pickResumeCandidate(const std::vector<GridCtaId> &candidates) const;

    /** SRAM bits: 2 fields x 2 bits x maxCtas (Sec. V-F: 512 bits). */
    std::uint64_t storageBits() const { return std::uint64_t(maxCtas_) * 4; }

  private:
    struct Fields
    {
        ContextLocation context = ContextLocation::NotLaunched;
        RegisterLocation regs = RegisterLocation::NotLaunched;
    };

    unsigned maxCtas_;
    std::unordered_map<GridCtaId, Fields> status_;
};

} // namespace finereg

#endif // FINEREG_REGFILE_CTA_STATUS_MONITOR_HH
