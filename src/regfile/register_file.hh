/**
 * @file
 * Counting register-file allocator. The allocation granule is one
 * warp-register (32 lanes x 4 B = 128 B), the same granule as PCRF entries.
 * The baseline RF, the ACRF, VT's whole-RF pool, and RegMutex's BRS/SRP
 * partitions are all instances of this allocator.
 */

#ifndef FINEREG_REGFILE_REGISTER_FILE_HH
#define FINEREG_REGFILE_REGISTER_FILE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace finereg
{

class RegFileAllocator
{
  public:
    RegFileAllocator(std::string name, std::uint64_t bytes);

    const std::string &name() const { return name_; }

    unsigned capacityWarpRegs() const { return capacity_; }
    unsigned usedWarpRegs() const { return used_; }
    unsigned freeWarpRegs() const { return capacity_ - used_; }

    bool canAllocate(unsigned warp_regs) const
    {
        return used_ + warp_regs <= capacity_;
    }

    /**
     * Reserve @p warp_regs registers.
     *
     * @return an allocation handle for free(); panics when out of space
     *         (callers must check canAllocate()).
     */
    unsigned allocate(unsigned warp_regs);

    /** Release a prior allocation. */
    void free(unsigned handle);

    /** Warp-registers held by @p handle. */
    unsigned allocationSize(unsigned handle) const;

    /** Number of outstanding allocations. */
    std::size_t numAllocations() const { return live_; }

    /** Resize capacity (sensitivity sweeps); requires used() to fit. */
    void resize(std::uint64_t bytes);

  private:
    /** Slot value marking a freed handle (an allocation can never hold
     * this many warp-regs; capacities are far smaller). */
    static constexpr unsigned kFreedSlot = ~0u;

    std::string name_;
    unsigned capacity_;
    unsigned used_ = 0;

    /**
     * Allocation sizes indexed by handle - 1. Handles are monotonic and
     * never reused — the auditor's rf-handle teeth depend on a dangling
     * handle staying detectable for the whole run — so the table is an
     * append-only slab with freed slots tombstoned: O(1) allocate/free/
     * size with no hashing on the CTA-switch hot path.
     */
    std::vector<unsigned> slots_;
    std::size_t live_ = 0;
};

} // namespace finereg

#endif // FINEREG_REGFILE_REGISTER_FILE_HH
