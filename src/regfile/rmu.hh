/**
 * @file
 * Register management unit (Sec. V-C, Fig. 10). On a CTA switch the RMU
 * looks up each stalled warp's PC in the live-register bit-vector cache;
 * misses fetch the 12-byte table entry from off-chip memory (TrafficClass::
 * BitVector). The decoded register indices drive the ACRF<->PCRF transfer,
 * whose chain walk is pipelined at one entry per cycle after a fixed
 * tag+register access delay.
 */

#ifndef FINEREG_REGFILE_RMU_HH
#define FINEREG_REGFILE_RMU_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_hierarchy.hh"
#include "regfile/bitvec_cache.hh"
#include "regfile/pcrf.hh"
#include "sm/cta.hh"
#include "sm/kernel_context.hh"

namespace finereg
{

struct RmuConfig
{
    unsigned bitvecCacheEntries = 32;
    Cycle pcrfAccessLatency = 4;

    /** Ablation: treat every allocated register as live. */
    bool fullContextBackup = false;

    /** Test hook: deliberately drop this register from every gathered
     * liveness mask (-1 = off); see PolicyConfig::dropLiveReg. */
    int dropLiveReg = -1;
};

class FaultInjector;

class Rmu
{
  public:
    /** @p fault (optional) can force bit-vector cache hits to miss. */
    Rmu(const RmuConfig &config, const KernelContext &context,
        MemHierarchy &mem, StatGroup &stats, FaultInjector *fault = nullptr);

    struct Gather
    {
        /**
         * Live-register mask per warp, indexed by warp id (finished warps
         * hold an empty mask). The 64-bit word form flows end-to-end:
         * the PCRF stores chains straight from it and CTA eviction uses
         * it as the value keep-mask, with no per-register vector built
         * in between.
         */
        std::vector<RegBitVec> warpLive;

        /** Sum of warpLive popcounts (chain length of the backup). */
        unsigned totalRegs = 0;

        /** Cycle at which all needed bit vectors are on-chip. */
        Cycle bitvecReadyCycle = 0;

        unsigned cacheMisses = 0;

        /**
         * Visit every live (warp, reg) pair warp-major in ascending
         * register order — the chain order of the old vector encoding.
         */
        template <typename Fn>
        void
        forEachReg(Fn &&fn) const
        {
            for (std::size_t w = 0; w < warpLive.size(); ++w)
                warpLive[w].forEach([&](RegIndex r) {
                    fn(static_cast<WarpId>(w), r);
                });
        }

        /** Materialize the chain-order LiveReg vector (tests, cold paths). */
        std::vector<LiveReg>
        toVector() const
        {
            std::vector<LiveReg> regs;
            regs.reserve(totalRegs);
            forEachReg([&](WarpId w, RegIndex r) { regs.push_back({w, r}); });
            return regs;
        }
    };

    /**
     * Determine the live register set of a stalled CTA. For warps that are
     * mid-divergence the union of liveness over all SIMT-stack PCs is used
     * (every path's registers must survive).
     *
     * Returns a reference to an internal scratch Gather, valid until the
     * next call: the switch loop probes a gather per stalled CTA per tick,
     * and reusing the buffer keeps the hot path allocation-free.
     */
    const Gather &gatherLiveRegs(const Cta &cta, Cycle now);

    /**
     * Latency of moving @p n_regs through the PCRF port: one fixed
     * tag+register access, then pipelined one entry per cycle (Sec. V-E).
     */
    Cycle
    transferLatency(unsigned n_regs) const
    {
        if (n_regs == 0)
            return config_.pcrfAccessLatency;
        return config_.pcrfAccessLatency + n_regs;
    }

    BitvecCache &cache() { return cache_; }
    const RmuConfig &config() const { return config_; }

    /** RMU SRAM bits: bit-vector cache + pointer-table contribution is
     * reported by the Pcrf; here only the cache. */
    std::uint64_t storageBits() const { return cache_.storageBits(); }

  private:
    RmuConfig config_;
    const KernelContext *context_;
    MemHierarchy *mem_;
    BitvecCache cache_;
    FaultInjector *fault_;
    Counter *gathers_;
    Counter *wordOps_;
    Gather scratch_;
};

} // namespace finereg

#endif // FINEREG_REGFILE_RMU_HH
