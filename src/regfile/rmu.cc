#include "regfile/rmu.hh"

#include <algorithm>

#include "verify/fault_injection.hh"

namespace finereg
{

Rmu::Rmu(const RmuConfig &config, const KernelContext &context,
         MemHierarchy &mem, StatGroup &stats, FaultInjector *fault)
    : config_(config), context_(&context), mem_(&mem),
      cache_(config.bitvecCacheEntries, stats), fault_(fault),
      gathers_(&stats.counter("rmu.gathers")),
      wordOps_(&stats.counter("rmu.bitvec_word_ops"))
{
}

const Rmu::Gather &
Rmu::gatherLiveRegs(const Cta &cta, Cycle now)
{
    gathers_->inc();
    Gather &out = scratch_;
    out.totalRegs = 0;
    out.cacheMisses = 0;
    out.bitvecReadyCycle = now;
    out.warpLive.assign(cta.warps().size(), RegBitVec{});

    const unsigned regs_per_thread =
        context_->kernel().regsPerThread();
    std::uint64_t word_ops = 0;

    for (const auto &warp : cta.warps()) {
        if (warp->finished())
            continue;

        RegBitVec live;
        if (config_.fullContextBackup) {
            for (unsigned r = 0; r < regs_per_thread; ++r)
                live.set(static_cast<RegIndex>(r));
        } else {
            // Union of liveness over every SIMT-stack level: diverged
            // paths each need their registers preserved.
            for (const auto &entry : warp->simtStack()) {
                live |= context_->liveTable().lookup(entry.pc);
                ++word_ops; // one 64-bit union per stack level
                bool hit = cache_.access(entry.pc);
                if (hit && fault_ && fault_->forceBitvecMiss())
                    hit = false; // injected fault: treat the hit as a miss
                if (!hit) {
                    ++out.cacheMisses;
                    // 12-byte table entry fetched from off-chip memory.
                    const Cycle done = mem_->offchipTransfer(
                        now, 12, TrafficClass::BitVector);
                    out.bitvecReadyCycle =
                        std::max(out.bitvecReadyCycle, done);
                }
            }
        }

        if (config_.dropLiveReg >= 0 &&
            config_.dropLiveReg < int(regs_per_thread)) {
            // Deliberately broken liveness (test hook): the register is
            // dropped from the backup set even when the program still
            // needs it.
            live.reset(static_cast<RegIndex>(config_.dropLiveReg));
        }

        out.warpLive[warp->id()] = live;
        out.totalRegs += live.count();
        ++word_ops; // one popcount per warp mask
    }

    wordOps_->inc(word_ops);
    return out;
}

} // namespace finereg
