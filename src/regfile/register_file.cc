#include "regfile/register_file.hh"

#include <sstream>

#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

template <typename... Parts>
[[noreturn]] void
failAllocator(const char *invariant, const Parts &...parts)
{
    std::ostringstream oss;
    (oss << ... << parts);
    raiseInvariant(invariant, oss.str());
}

} // namespace

RegFileAllocator::RegFileAllocator(std::string name, std::uint64_t bytes)
    : name_(std::move(name)),
      capacity_(static_cast<unsigned>(bytes / kBytesPerWarpReg))
{
}

unsigned
RegFileAllocator::allocate(unsigned warp_regs)
{
    if (!canAllocate(warp_regs)) {
        failAllocator("rf-capacity", name_, ": allocation of ", warp_regs,
                      " warp-regs exceeds free space ", freeWarpRegs());
    }
    used_ += warp_regs;
    slots_.push_back(warp_regs);
    ++live_;
    return static_cast<unsigned>(slots_.size()); // handle = index + 1
}

void
RegFileAllocator::free(unsigned handle)
{
    if (handle == 0 || handle > slots_.size() ||
        slots_[handle - 1] == kFreedSlot)
        failAllocator("rf-handle", name_, ": free of unknown handle ", handle);
    used_ -= slots_[handle - 1];
    slots_[handle - 1] = kFreedSlot;
    --live_;
}

unsigned
RegFileAllocator::allocationSize(unsigned handle) const
{
    if (handle == 0 || handle > slots_.size() ||
        slots_[handle - 1] == kFreedSlot) {
        failAllocator("rf-handle", name_, ": size query of unknown handle ",
                      handle);
    }
    return slots_[handle - 1];
}

void
RegFileAllocator::resize(std::uint64_t bytes)
{
    const auto new_capacity =
        static_cast<unsigned>(bytes / kBytesPerWarpReg);
    if (new_capacity < used_)
        failAllocator("rf-capacity", name_, ": resize below current usage");
    capacity_ = new_capacity;
}

} // namespace finereg
