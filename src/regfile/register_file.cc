#include "regfile/register_file.hh"

#include <sstream>

#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

template <typename... Parts>
[[noreturn]] void
failAllocator(const char *invariant, const Parts &...parts)
{
    std::ostringstream oss;
    (oss << ... << parts);
    raiseInvariant(invariant, oss.str());
}

} // namespace

RegFileAllocator::RegFileAllocator(std::string name, std::uint64_t bytes)
    : name_(std::move(name)),
      capacity_(static_cast<unsigned>(bytes / kBytesPerWarpReg))
{
}

unsigned
RegFileAllocator::allocate(unsigned warp_regs)
{
    if (!canAllocate(warp_regs)) {
        failAllocator("rf-capacity", name_, ": allocation of ", warp_regs,
                      " warp-regs exceeds free space ", freeWarpRegs());
    }
    used_ += warp_regs;
    const unsigned handle = nextHandle_++;
    allocations_[handle] = warp_regs;
    return handle;
}

void
RegFileAllocator::free(unsigned handle)
{
    const auto it = allocations_.find(handle);
    if (it == allocations_.end())
        failAllocator("rf-handle", name_, ": free of unknown handle ", handle);
    used_ -= it->second;
    allocations_.erase(it);
}

unsigned
RegFileAllocator::allocationSize(unsigned handle) const
{
    const auto it = allocations_.find(handle);
    if (it == allocations_.end()) {
        failAllocator("rf-handle", name_, ": size query of unknown handle ",
                      handle);
    }
    return it->second;
}

void
RegFileAllocator::resize(std::uint64_t bytes)
{
    const auto new_capacity =
        static_cast<unsigned>(bytes / kBytesPerWarpReg);
    if (new_capacity < used_)
        failAllocator("rf-capacity", name_, ": resize below current usage");
    capacity_ = new_capacity;
}

} // namespace finereg
