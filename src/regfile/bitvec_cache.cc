#include "regfile/bitvec_cache.hh"

#include "verify/sim_error.hh"

namespace finereg
{

BitvecCache::BitvecCache(unsigned entries, StatGroup &stats)
    : lines_(entries),
      hits_(&stats.counter("bitvec_cache.hits")),
      misses_(&stats.counter("bitvec_cache.misses"))
{
    if (entries == 0)
        raiseConfigError("bit-vector cache needs at least one entry");
}

std::size_t
BitvecCache::indexOf(Pc pc) const
{
    // Hash 5 bits of the instruction-granular PC (Sec. V-C): fold the word
    // address so nearby PCs spread across the sets.
    const Pc word = pc / kInstrBytes;
    return (word ^ (word >> 5) ^ (word >> 10)) % lines_.size();
}

bool
BitvecCache::access(Pc pc)
{
    Line &line = lines_[indexOf(pc)];
    if (line.valid && line.tag == pc) {
        hits_->inc();
        return true;
    }
    misses_->inc();
    line.valid = true;
    line.tag = pc;
    return false;
}

bool
BitvecCache::probe(Pc pc) const
{
    const Line &line = lines_[indexOf(pc)];
    return line.valid && line.tag == pc;
}

void
BitvecCache::clear()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace finereg
