#include "regfile/pcrf.hh"

#include "common/log.hh"

namespace finereg
{

Pcrf::Pcrf(std::uint64_t bytes, StatGroup &stats)
    : entries_(bytes / kBytesPerWarpReg),
      occupied_(bytes / kBytesPerWarpReg),
      writes_(&stats.counter("pcrf.writes")),
      reads_(&stats.counter("pcrf.reads")),
      storedCtas_(&stats.counter("pcrf.stored_ctas")),
      restoredCtas_(&stats.counter("pcrf.restored_ctas"))
{
}

unsigned
Pcrf::liveCountOf(GridCtaId cta) const
{
    const auto it = pointerTable_.find(cta);
    return it == pointerTable_.end() ? 0 : it->second.count;
}

void
Pcrf::storeCta(GridCtaId cta, const std::vector<LiveReg> &regs)
{
    if (holds(cta))
        FINEREG_PANIC("PCRF already holds CTA ", cta);
    if (!canStore(regs.size()))
        FINEREG_PANIC("PCRF overflow storing ", regs.size(),
                      " registers with ", freeEntries(), " free");

    storedCtas_->inc();
    PointerLine line{0, static_cast<unsigned>(regs.size())};

    unsigned prev = kInvalidId;
    for (std::size_t i = 0; i < regs.size(); ++i) {
        const std::size_t slot = occupied_.firstClear();
        occupied_.set(slot);
        Entry &entry = entries_[slot];
        entry.valid = true;
        entry.end = (i + 1 == regs.size());
        entry.next = 0;
        entry.warp = regs[i].warp;
        entry.reg = regs[i].reg;
        writes_->inc();

        if (i == 0)
            line.head = static_cast<unsigned>(slot);
        else
            entries_[prev].next = static_cast<unsigned>(slot);
        prev = static_cast<unsigned>(slot);
    }

    pointerTable_[cta] = line;
}

std::vector<LiveReg>
Pcrf::restoreCta(GridCtaId cta)
{
    const auto it = pointerTable_.find(cta);
    if (it == pointerTable_.end())
        FINEREG_PANIC("PCRF restore of absent CTA ", cta);

    restoredCtas_->inc();
    std::vector<LiveReg> regs;
    regs.reserve(it->second.count);

    unsigned slot = it->second.head;
    for (unsigned i = 0; i < it->second.count; ++i) {
        Entry &entry = entries_[slot];
        if (!entry.valid)
            FINEREG_PANIC("PCRF chain of CTA ", cta,
                          " walked into invalid entry ", slot);
        reads_->inc();
        regs.push_back({entry.warp, entry.reg});
        entry.valid = false;
        occupied_.reset(slot);
        const bool at_end = entry.end;
        slot = entry.next;
        if (at_end && i + 1 != it->second.count)
            FINEREG_PANIC("PCRF chain of CTA ", cta, " ended early");
    }

    pointerTable_.erase(it);
    return regs;
}

std::vector<unsigned>
Pcrf::chainOf(GridCtaId cta) const
{
    std::vector<unsigned> chain;
    const auto it = pointerTable_.find(cta);
    if (it == pointerTable_.end())
        return chain;
    unsigned slot = it->second.head;
    for (unsigned i = 0; i < it->second.count; ++i) {
        chain.push_back(slot);
        slot = entries_[slot].next;
    }
    return chain;
}

std::uint64_t
Pcrf::pointerTableBits() const
{
    // Sec. V-F: 128 lines of 10-bit pointer + 6-bit live count.
    return std::uint64_t(128) * (10 + 6);
}

void
Pcrf::clear()
{
    for (auto &entry : entries_)
        entry.valid = false;
    occupied_.clearAll();
    pointerTable_.clear();
}

} // namespace finereg
