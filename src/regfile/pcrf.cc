#include "regfile/pcrf.hh"

#include <algorithm>
#include <sstream>

#include "verify/sim_error.hh"

namespace finereg
{

Pcrf::Pcrf(std::uint64_t bytes, StatGroup &stats)
    : entries_(bytes / kBytesPerWarpReg),
      occupied_(bytes / kBytesPerWarpReg),
      writes_(&stats.counter("pcrf.writes")),
      reads_(&stats.counter("pcrf.reads")),
      storedCtas_(&stats.counter("pcrf.stored_ctas")),
      restoredCtas_(&stats.counter("pcrf.restored_ctas"))
{
}

unsigned
Pcrf::liveCountOf(GridCtaId cta) const
{
    const auto it = pointerTable_.find(cta);
    return it == pointerTable_.end() ? 0 : it->second.count;
}

void
Pcrf::storeCta(GridCtaId cta, const std::vector<LiveReg> &regs)
{
    if (holds(cta))
        raiseInvariant("pcrf-chain", "PCRF already holds a chain for this CTA",
                       cta);
    if (!canStore(regs.size())) {
        std::ostringstream oss;
        oss << "PCRF overflow storing " << regs.size() << " registers with "
            << freeEntries() << " free";
        raiseInvariant("pcrf-capacity", oss.str(), cta);
    }

    storedCtas_->inc();
    PointerLine line{0, static_cast<unsigned>(regs.size())};

    unsigned prev = kInvalidId;
    for (std::size_t i = 0; i < regs.size(); ++i) {
        const std::size_t slot = occupied_.firstClear();
        occupied_.set(slot);
        Entry &entry = entries_[slot];
        entry.valid = true;
        entry.end = (i + 1 == regs.size());
        entry.next = 0;
        entry.warp = regs[i].warp;
        entry.reg = regs[i].reg;
        writes_->inc();

        if (i == 0)
            line.head = static_cast<unsigned>(slot);
        else
            entries_[prev].next = static_cast<unsigned>(slot);
        prev = static_cast<unsigned>(slot);
    }

    pointerTable_[cta] = line;
}

void
Pcrf::storeCta(GridCtaId cta, const std::vector<RegBitVec> &warp_live,
               unsigned total_regs)
{
    if (holds(cta))
        raiseInvariant("pcrf-chain", "PCRF already holds a chain for this CTA",
                       cta);
    if (!canStore(total_regs)) {
        std::ostringstream oss;
        oss << "PCRF overflow storing " << total_regs << " registers with "
            << freeEntries() << " free";
        raiseInvariant("pcrf-capacity", oss.str(), cta);
    }

    storedCtas_->inc();
    PointerLine line{0, total_regs};

    unsigned prev = kInvalidId;
    unsigned placed = 0;
    for (std::size_t w = 0; w < warp_live.size(); ++w) {
        warp_live[w].forEach([&](RegIndex reg) {
            const std::size_t slot = occupied_.firstClear();
            occupied_.set(slot);
            Entry &entry = entries_[slot];
            entry.valid = true;
            entry.end = (++placed == total_regs);
            entry.next = 0;
            entry.warp = static_cast<WarpId>(w);
            entry.reg = reg;
            writes_->inc();

            if (placed == 1)
                line.head = static_cast<unsigned>(slot);
            else
                entries_[prev].next = static_cast<unsigned>(slot);
            prev = static_cast<unsigned>(slot);
        });
    }
    if (placed != total_regs) {
        std::ostringstream oss;
        oss << "PCRF store count mismatch: masks hold " << placed
            << " registers, caller claimed " << total_regs;
        raiseInvariant("pcrf-chain", oss.str(), cta);
    }

    pointerTable_[cta] = line;
}

std::vector<LiveReg>
Pcrf::restoreCta(GridCtaId cta)
{
    const auto it = pointerTable_.find(cta);
    if (it == pointerTable_.end())
        raiseInvariant("pcrf-chain", "PCRF restore of absent CTA", cta);

    restoredCtas_->inc();
    std::vector<LiveReg> regs;
    regs.reserve(it->second.count);

    unsigned slot = it->second.head;
    for (unsigned i = 0; i < it->second.count; ++i) {
        Entry &entry = entries_[slot];
        if (!entry.valid) {
            std::ostringstream oss;
            oss << "PCRF chain walked into invalid entry " << slot;
            raiseInvariant("pcrf-chain", oss.str(), cta);
        }
        reads_->inc();
        regs.push_back({entry.warp, entry.reg});
        entry.valid = false;
        occupied_.reset(slot);
        const bool at_end = entry.end;
        slot = entry.next;
        if (at_end && i + 1 != it->second.count)
            raiseInvariant("pcrf-chain", "PCRF chain ended early", cta);
    }

    pointerTable_.erase(it);
    return regs;
}

void
Pcrf::restoreCtaLastPositions(GridCtaId cta, std::vector<unsigned> &last_pos)
{
    std::fill(last_pos.begin(), last_pos.end(), 0u);

    const auto it = pointerTable_.find(cta);
    if (it == pointerTable_.end())
        raiseInvariant("pcrf-chain", "PCRF restore of absent CTA", cta);

    restoredCtas_->inc();
    unsigned slot = it->second.head;
    for (unsigned i = 0; i < it->second.count; ++i) {
        Entry &entry = entries_[slot];
        if (!entry.valid) {
            std::ostringstream oss;
            oss << "PCRF chain walked into invalid entry " << slot;
            raiseInvariant("pcrf-chain", oss.str(), cta);
        }
        reads_->inc();
        if (entry.warp < last_pos.size())
            last_pos[entry.warp] = i + 1;
        entry.valid = false;
        occupied_.reset(slot);
        const bool at_end = entry.end;
        slot = entry.next;
        if (at_end && i + 1 != it->second.count)
            raiseInvariant("pcrf-chain", "PCRF chain ended early", cta);
    }

    pointerTable_.erase(it);
}

std::vector<unsigned>
Pcrf::chainOf(GridCtaId cta) const
{
    std::vector<unsigned> chain;
    const auto it = pointerTable_.find(cta);
    if (it == pointerTable_.end())
        return chain;
    unsigned slot = it->second.head;
    for (unsigned i = 0; i < it->second.count; ++i) {
        chain.push_back(slot);
        slot = entries_[slot].next;
    }
    return chain;
}

std::uint64_t
Pcrf::pointerTableBits() const
{
    // Sec. V-F: 128 lines of 10-bit pointer + 6-bit live count.
    return std::uint64_t(128) * (10 + 6);
}

void
Pcrf::clear()
{
    for (auto &entry : entries_)
        entry.valid = false;
    occupied_.clearAll();
    pointerTable_.clear();
}

PcrfIntegrityError
Pcrf::auditIntegrity() const
{
    DynBitSet visited(entries_.size());
    std::size_t walked = 0;

    auto broken = [](const char *invariant, GridCtaId cta,
                     const auto &...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        return PcrfIntegrityError{invariant, oss.str(), cta};
    };

    for (const auto &[cta, line] : pointerTable_) {
        if (line.count > entries_.size()) {
            return broken("pcrf-chain", cta, "live count ", line.count,
                          " exceeds the ", entries_.size(), "-entry PCRF");
        }
        unsigned slot = line.head;
        for (unsigned i = 0; i < line.count; ++i) {
            if (slot >= entries_.size()) {
                return broken("pcrf-chain", cta, "chain pointer ", slot,
                              " out of range at hop ", i);
            }
            if (visited.test(slot)) {
                return broken("pcrf-chain", cta, "chain revisits entry ",
                              slot, " (cycle or cross-chain alias)");
            }
            visited.set(slot);
            ++walked;

            const Entry &entry = entries_[slot];
            if (!entry.valid) {
                return broken("pcrf-chain", cta, "chain entry ", slot,
                              " has the valid bit clear");
            }
            if (!occupied_.test(slot)) {
                return broken("pcrf-occupancy", cta, "chain entry ", slot,
                              " is not marked occupied");
            }
            const bool last = i + 1 == line.count;
            if (entry.end != last) {
                return entry.end
                           ? broken("pcrf-chain", cta, "end bit set at hop ",
                                    i, " of a ", line.count, "-entry chain")
                           : broken("pcrf-chain", cta,
                                    "chain unterminated after ", line.count,
                                    " entries");
            }
            slot = entry.next;
        }
    }

    if (walked != occupied_.count()) {
        return broken("pcrf-occupancy", kInvalidId, occupied_.count(),
                      " entries marked occupied but ", walked,
                      " reachable from pointer-table chains");
    }
    return {};
}

void
Pcrf::testSetEntryNext(unsigned slot, unsigned next)
{
    entries_.at(slot).next = next;
}

void
Pcrf::testSetEntryEnd(unsigned slot, bool end)
{
    entries_.at(slot).end = end;
}

void
Pcrf::testSetEntryValid(unsigned slot, bool valid)
{
    entries_.at(slot).valid = valid;
}

void
Pcrf::testSetOccupied(unsigned slot, bool occupied)
{
    if (occupied)
        occupied_.set(slot);
    else
        occupied_.reset(slot);
}

void
Pcrf::testSetLiveCount(GridCtaId cta, unsigned count)
{
    pointerTable_.at(cta).count = count;
}

} // namespace finereg
