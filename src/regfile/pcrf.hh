/**
 * @file
 * Pending-CTA register file (Sec. V-D/V-E, Fig. 11). Each entry holds one
 * 128-byte warp-register plus a tag (valid, end, 10-bit next pointer, 5-bit
 * warp id, 6-bit register index). A pending CTA's live registers form a
 * chain: the PCRF pointer table maps CTA -> (head entry, live count), each
 * entry's next pointer links to the following live register, and the end
 * bit terminates the walk. A free-space monitor (one occupancy flag per
 * entry) provides free-slot lookup and counting.
 */

#ifndef FINEREG_REGFILE_PCRF_HH
#define FINEREG_REGFILE_PCRF_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace finereg
{

/** One live warp-register of a pending CTA. */
struct LiveReg
{
    WarpId warp = 0;
    RegIndex reg = 0;
};

/** Result of a PCRF integrity walk; intact() when nothing is broken. */
struct PcrfIntegrityError
{
    std::string invariant; ///< e.g. "pcrf-chain", "pcrf-occupancy".
    std::string message;
    GridCtaId cta = kInvalidId;

    bool intact() const { return invariant.empty(); }
};

class Pcrf
{
  public:
    /** Tag bits per entry: valid(1) + end(1) + next(10) + warp(5) +
     * reg(6) ~= 21 bits + data-ready flag, matching Sec. V-F. */
    static constexpr unsigned kTagBits = 21;

    Pcrf(std::uint64_t bytes, StatGroup &stats);

    unsigned numEntries() const { return entries_.size(); }

    /** Free entries, aggregated from the free-space monitor. */
    unsigned freeEntries() const
    {
        return static_cast<unsigned>(occupied_.countClear());
    }

    bool canStore(unsigned n_regs) const { return n_regs <= freeEntries(); }

    /** True when the PCRF holds a chain for @p cta. */
    bool holds(GridCtaId cta) const { return pointerTable_.count(cta) > 0; }

    /** Live-register count stored for @p cta. */
    unsigned liveCountOf(GridCtaId cta) const;

    /** Number of pending CTAs with chains in the PCRF. */
    unsigned numPendingCtas() const { return pointerTable_.size(); }

    /**
     * Store the live registers of a newly pending CTA as a linked chain.
     * canStore(regs.size()) must hold; an empty register list is recorded
     * as a zero-length chain (the CTA has no live registers).
     */
    void storeCta(GridCtaId cta, const std::vector<LiveReg> &regs);

    /**
     * Hot-path store: the same chain, built straight from per-warp live
     * masks (indexed by warp id) without materializing a LiveReg vector.
     * Registers enter the chain warp-major in ascending register order —
     * exactly the order the vector form receives from the RMU — so slot
     * assignment and chain layout are bit-identical to storeCta(regs).
     * @p total_regs must equal the sum of the mask popcounts.
     */
    void storeCta(GridCtaId cta, const std::vector<RegBitVec> &warp_live,
                  unsigned total_regs);

    /**
     * Walk the chain of @p cta, restore its registers to the ACRF, and
     * free the entries.
     *
     * @return the registers in chain order.
     */
    std::vector<LiveReg> restoreCta(GridCtaId cta);

    /**
     * Hot-path restore: frees the chain of @p cta exactly like
     * restoreCta(), but instead of materializing the register vector it
     * records, per warp, the 1-based chain position of the warp's last
     * register (0 = the warp has none in the chain) — the only datum the
     * wake-latency model consumes. @p last_pos is zeroed and must already
     * be sized to the CTA's warp count.
     */
    void restoreCtaLastPositions(GridCtaId cta,
                                 std::vector<unsigned> &last_pos);

    /** Chain entry indices of @p cta in traversal order (for tests). */
    std::vector<unsigned> chainOf(GridCtaId cta) const;

    /** Tag SRAM overhead in bits (Sec. V-F: 21 bits x entries). */
    std::uint64_t tagOverheadBits() const
    {
        return std::uint64_t(kTagBits) * numEntries();
    }

    /** Pointer-table SRAM in bits: 10-bit head + 6-bit count per line. */
    std::uint64_t pointerTableBits() const;

    /** Drop all chains (between experiments). */
    void clear();

    /**
     * Integrity walk for the invariant auditor: every pointer-table chain
     * must traverse exactly its live count of valid, occupied, mutually
     * disjoint entries with the end bit set on the last entry only, and
     * the occupancy monitor must mark exactly the union of walked entries.
     * Costs O(live entries + entries/64).
     */
    PcrfIntegrityError auditIntegrity() const;

    // Test hooks: deliberately corrupt state to exercise the auditor. ------

    void testSetEntryNext(unsigned slot, unsigned next);
    void testSetEntryEnd(unsigned slot, bool end);
    void testSetEntryValid(unsigned slot, bool valid);
    void testSetOccupied(unsigned slot, bool occupied);
    void testSetLiveCount(GridCtaId cta, unsigned count);

  private:
    struct Entry
    {
        bool valid = false;
        bool end = false;
        unsigned next = 0;
        WarpId warp = 0;
        RegIndex reg = 0;
    };

    struct PointerLine
    {
        unsigned head = 0;
        unsigned count = 0;
    };

    std::vector<Entry> entries_;
    DynBitSet occupied_;
    std::unordered_map<GridCtaId, PointerLine> pointerTable_;

    Counter *writes_;
    Counter *reads_;
    Counter *storedCtas_;
    Counter *restoredCtas_;
};

} // namespace finereg

#endif // FINEREG_REGFILE_PCRF_HH
