#include "regfile/cta_status_monitor.hh"

#include <sstream>

#include "verify/sim_error.hh"

namespace finereg
{

CtaStatusMonitor::CtaStatusMonitor(unsigned max_ctas) : maxCtas_(max_ctas)
{
}

void
CtaStatusMonitor::onLaunch(GridCtaId cta)
{
    if (status_.count(cta))
        raiseInvariant("monitor-state", "status monitor: CTA launched twice",
                       cta);
    if (status_.size() >= maxCtas_) {
        std::ostringstream oss;
        oss << "status monitor: exceeding " << maxCtas_ << " tracked CTAs";
        raiseInvariant("monitor-capacity", oss.str(), cta);
    }
    status_[cta] = {ContextLocation::Pipeline, RegisterLocation::Acrf};
}

void
CtaStatusMonitor::setContext(GridCtaId cta, ContextLocation loc)
{
    const auto it = status_.find(cta);
    if (it == status_.end())
        raiseInvariant("monitor-state",
                       "status monitor: context update for unknown CTA", cta);
    it->second.context = loc;
}

void
CtaStatusMonitor::setRegisters(GridCtaId cta, RegisterLocation loc)
{
    const auto it = status_.find(cta);
    if (it == status_.end())
        raiseInvariant("monitor-state",
                       "status monitor: register update for unknown CTA", cta);
    it->second.regs = loc;
}

ContextLocation
CtaStatusMonitor::contextOf(GridCtaId cta) const
{
    const auto it = status_.find(cta);
    return it == status_.end() ? ContextLocation::NotLaunched
                               : it->second.context;
}

RegisterLocation
CtaStatusMonitor::registersOf(GridCtaId cta) const
{
    const auto it = status_.find(cta);
    return it == status_.end() ? RegisterLocation::NotLaunched
                               : it->second.regs;
}

bool
CtaStatusMonitor::isActive(GridCtaId cta) const
{
    const auto it = status_.find(cta);
    return it != status_.end() &&
           it->second.context == ContextLocation::Pipeline &&
           it->second.regs == RegisterLocation::Acrf;
}

void
CtaStatusMonitor::onRetire(GridCtaId cta)
{
    status_.erase(cta);
}

std::optional<GridCtaId>
CtaStatusMonitor::pickResumeCandidate(
    const std::vector<GridCtaId> &candidates) const
{
    // Priority 1: context parked in shared memory, registers still in ACRF.
    for (GridCtaId cta : candidates) {
        if (contextOf(cta) == ContextLocation::SharedMemory &&
            registersOf(cta) == RegisterLocation::Acrf) {
            return cta;
        }
    }
    // Priority 2: both context and registers backed up (shared mem + PCRF).
    for (GridCtaId cta : candidates) {
        if (contextOf(cta) == ContextLocation::SharedMemory &&
            registersOf(cta) == RegisterLocation::Pcrf) {
            return cta;
        }
    }
    return std::nullopt;
}

} // namespace finereg
