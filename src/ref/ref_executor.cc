#include "ref/ref_executor.hh"

#include <string>

#include "ref/cta_values.hh"
#include "sm/cta.hh"
#include "sm/kernel_context.hh"
#include "sm/warp_exec.hh"
#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

/**
 * Run one warp to completion, mirroring Sm::issueInstr's architectural
 * effects (and nothing else): every instruction retires for its active
 * lanes, ALU/SFU/memory update the value state, control flow updates the
 * SIMT stack. BAR is a timing fence with no value effect; scoreboards,
 * latencies, and the memory hierarchy do not exist here.
 */
void
runWarp(Warp &warp, CtaValues &values, std::uint64_t max_instrs)
{
    std::uint64_t executed = 0;
    while (!warp.finished() && !warp.pastEnd()) {
        if (++executed > max_instrs) {
            raiseDeadlock("reference executor exceeded " +
                              std::to_string(max_instrs) +
                              " instructions in one warp of kernel " +
                              warp.context().kernel().name(),
                          0, "");
        }
        const Instruction &instr = warp.currentInstr();
        const std::uint32_t mask = warp.activeMask();
        values.noteRetire(warp.id(), mask);

        switch (funcUnitOf(instr.op)) {
          case FuncUnit::ALU:
          case FuncUnit::SFU:
            values.execAlu(warp.id(), mask, instr);
            warp.setPc(warp.pc() + kInstrBytes);
            break;
          case FuncUnit::MEM:
            if (isGlobalMemory(instr.op)) {
                const Addr addr = warpGenerateAddress(warp, instr);
                values.execGlobal(warp.id(), mask, instr, addr);
            } else {
                values.execShared(warp.id(), mask, instr);
            }
            warp.setPc(warp.pc() + kInstrBytes);
            break;
          case FuncUnit::CTRL:
            switch (instr.op) {
              case Opcode::BRA:
                warpExecBranch(warp, instr);
                break;
              case Opcode::JMP:
                warp.setPc(warp.context().kernel().blockStartPc(
                    instr.targetBlock));
                break;
              case Opcode::BAR:
                warp.setPc(warp.pc() + kInstrBytes);
                break;
              case Opcode::EXIT:
                warp.exitCurrentPath();
                break;
              default:
                raiseInvariant("ref-executor",
                               "unhandled control opcode in reference "
                               "executor");
            }
            break;
        }

        if (!warp.finished())
            warp.reconvergeIfNeeded();
    }
}

} // namespace

namespace
{

ArchState
executeImpl(const Kernel &kernel, std::uint64_t seed, ValueObservation *obs,
            std::uint64_t max_instrs_per_warp)
{
    const KernelContext context(kernel);

    ArchState out;
    out.kernelName = kernel.name();
    out.regsPerThread = kernel.regsPerThread();
    out.threadsPerCta = kernel.threadsPerCta();
    out.ctas.resize(kernel.gridCtas());

    for (GridCtaId grid_id = 0; grid_id < kernel.gridCtas(); ++grid_id) {
        // Same per-CTA seed derivation as Sm::launchCta: the warps' RNG
        // streams — and thus the executed paths — match the timed run.
        const std::uint64_t cta_seed =
            seed + 0x9e3779b97f4a7c15ull * (std::uint64_t(grid_id) + 1);
        Cta cta(grid_id, 0, context, cta_seed);
        cta.enableValueTracking();
        CtaValues &values = *cta.values();
        values.setObserver(obs);

        for (auto &warp : cta.warps())
            runWarp(*warp, values, max_instrs_per_warp);

        values.mergeGlobalInto(out.globalStores);
        out.ctas[grid_id] = values.takeEndState();
    }
    return out;
}

} // namespace

ArchState
RefExecutor::execute(const Kernel &kernel, std::uint64_t seed,
                     std::uint64_t max_instrs_per_warp)
{
    return executeImpl(kernel, seed, nullptr, max_instrs_per_warp);
}

ArchState
RefExecutor::execute(const Kernel &kernel, std::uint64_t seed,
                     ValueObservation &obs,
                     std::uint64_t max_instrs_per_warp)
{
    return executeImpl(kernel, seed, &obs, max_instrs_per_warp);
}

} // namespace finereg
