/**
 * @file
 * Canonical architectural end state of one kernel execution: the final
 * register values of every retired thread, per-thread retired-instruction
 * counts, and the final global/shared store images. Produced both by the
 * functional reference executor (src/ref/ref_executor.hh) and by the
 * cycle-level simulator's value-tracking layer; the differential oracle
 * compares the two.
 */

#ifndef FINEREG_REF_ARCH_STATE_HH
#define FINEREG_REF_ARCH_STATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace finereg
{

/** Final state of one thread at CTA retirement. */
struct ThreadEndState
{
    /** Final architectural register values, index 0..regsPerThread-1. */
    std::vector<std::uint32_t> regs;

    /**
     * Bit r set: register r was dropped as dead at a CTA swap-out and
     * never rewritten — its value is undefined by design and excluded
     * from differential comparison. Always 0 in reference executions.
     */
    std::uint64_t poison = 0;

    /** Dynamic instructions retired with this thread's lane active. */
    std::uint64_t retired = 0;
};

/** Final state of one CTA at retirement. */
struct CtaEndState
{
    std::vector<ThreadEndState> threads; // warp-major: warp * 32 + lane

    /** Final shared-memory store image: word offset -> accumulated value.
     * Words never stored to are absent. */
    std::map<std::uint32_t, std::uint32_t> sharedStores;

    bool completed() const { return !threads.empty(); }
};

/** Canonical end state of a whole grid. */
struct ArchState
{
    std::string kernelName;
    unsigned regsPerThread = 0;
    unsigned threadsPerCta = 0;

    /** Indexed by grid CTA id; a CTA that never retired is !completed(). */
    std::vector<CtaEndState> ctas;

    /** Final global-memory store image: word address -> accumulated value. */
    std::map<Addr, std::uint32_t> globalStores;

    unsigned completedCtas() const;

    /** Order-independent FNV-1a digest of the full state (golden tests). */
    std::uint64_t fingerprint() const;

    /** Small human-readable summary (CTAs, store words, sample digest). */
    std::string summary() const;
};

} // namespace finereg

#endif // FINEREG_REF_ARCH_STATE_HH
