/**
 * @file
 * Functional, untimed architectural reference executor. Interprets any
 * isa::Kernel directly — warp by warp, in grid order, with no caches, no
 * scheduling, and no register-file policy — and produces the canonical
 * ArchState the differential oracle compares cycle-level runs against.
 *
 * The executor replays exactly the instruction stream the cycle simulator
 * executes: per-warp control flow and addresses are drawn from the same
 * per-warp RNG streams through the shared sm/warp_exec.hh functions, and
 * the per-warp seeds derive from (seed, grid CTA id, warp id) with the
 * same mixing the Gpu/Sm/Cta chain uses. Warps can run sequentially to
 * completion because the value semantics (ref/value_semantics.hh) make
 * final state independent of inter-warp interleaving: loads never observe
 * stores, and stores accumulate commutatively. Barriers are therefore
 * timing-only and execute as no-ops here.
 */

#ifndef FINEREG_REF_REF_EXECUTOR_HH
#define FINEREG_REF_REF_EXECUTOR_HH

#include <cstdint>

#include "isa/kernel.hh"
#include "ref/arch_state.hh"

namespace finereg
{

class ValueObservation;

class RefExecutor
{
  public:
    /**
     * Execute @p kernel under grid seed @p seed (the GpuConfig::seed the
     * simulated runs use).
     *
     * @param max_instrs_per_warp runaway guard; exceeding it raises a
     *        Deadlock-kind SimException (a valid finalized kernel cannot
     *        loop forever, so this only fires on ISA/CFG bugs).
     */
    static ArchState execute(const Kernel &kernel, std::uint64_t seed,
                             std::uint64_t max_instrs_per_warp = 4'000'000);

    /**
     * As above, additionally streaming every written value and generated
     * address into @p obs (shared across all CTAs) for static-analysis
     * cross-validation. Observation never perturbs the executed paths, so
     * the returned ArchState is identical to the plain overload's.
     */
    static ArchState execute(const Kernel &kernel, std::uint64_t seed,
                             ValueObservation &obs,
                             std::uint64_t max_instrs_per_warp = 4'000'000);
};

} // namespace finereg

#endif // FINEREG_REF_REF_EXECUTOR_HH
