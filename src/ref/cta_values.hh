/**
 * @file
 * Per-CTA functional value state: the architectural register file contents,
 * shared/global store images, and retired-instruction counts of one CTA,
 * updated instruction by instruction under the value semantics of
 * value_semantics.hh. The cycle-level SM drives one instance per CTA when
 * value tracking is enabled; the untimed reference executor drives the same
 * code, so the two executors cannot disagree on what an instruction
 * computes — only on which instructions execute and which register values
 * survive a CTA swap.
 */

#ifndef FINEREG_REF_CTA_VALUES_HH
#define FINEREG_REF_CTA_VALUES_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "ref/arch_state.hh"
#include "sm/kernel_context.hh"

namespace finereg
{

class ValueObservation;

class CtaValues
{
  public:
    CtaValues(GridCtaId grid_id, const KernelContext &context);

    GridCtaId gridId() const { return gridId_; }

    /**
     * Stream written values/addresses into @p obs (shared across CTAs by
     * the reference executor's cross-validation mode; null = off).
     * Observation-only: never touches RNG streams or value state.
     */
    void setObserver(ValueObservation *obs) { observer_ = obs; }

    /** Count one retired instruction for every lane in @p mask. */
    void noteRetire(WarpId warp, std::uint32_t mask);

    /** Apply an ALU/SFU instruction's value effect for the active lanes. */
    void execAlu(WarpId warp, std::uint32_t mask, const Instruction &instr);

    /** Apply a global load/store at warp base address @p addr (128-byte
     * aligned; lane i touches word addr + 4i). */
    void execGlobal(WarpId warp, std::uint32_t mask,
                    const Instruction &instr, Addr addr);

    /** Apply a shared load/store; the offset derives from a private
     * per-(warp, instruction) counter, so it needs no RNG. */
    void execShared(WarpId warp, std::uint32_t mask,
                    const Instruction &instr);

    /**
     * CTA swap-out dropped every register outside @p keep: scramble the
     * dropped values and mark them poisoned. A later write by an active
     * lane clears the poison; poisoned registers are excluded from
     * differential comparison (their values are undefined by design).
     */
    void dropDeadRegs(WarpId warp, const RegBitVec &keep);

    // Introspection (tests) ---------------------------------------------------

    std::uint32_t reg(unsigned thread, unsigned r) const;
    std::uint64_t poisonMask(unsigned thread) const;
    std::uint64_t retired(unsigned thread) const;

    /** Move this CTA's end state out (called once, at CTA retirement). */
    CtaEndState takeEndState();

    /** Accumulate this CTA's global stores into a grid-wide image. */
    void mergeGlobalInto(std::map<Addr, std::uint32_t> &image) const;

  private:
    std::uint32_t readSrc(unsigned thread, int src) const;
    std::uint32_t sharedBaseOffset(WarpId warp, const Instruction &instr);

    GridCtaId gridId_;
    const KernelContext *context_;
    unsigned regsPerThread_;
    unsigned numThreads_;

    std::vector<std::uint32_t> regs_;    // [thread * regsPerThread + r]
    std::vector<std::uint64_t> poison_;  // per-thread bit mask
    std::vector<std::uint64_t> retired_; // per-thread count

    /** Per-(warp, mem instruction) shared-access counters. */
    std::vector<std::uint32_t> sharedExec_;

    std::map<std::uint32_t, std::uint32_t> sharedStores_;
    std::map<Addr, std::uint32_t> globalStores_;

    ValueObservation *observer_ = nullptr;
};

} // namespace finereg

#endif // FINEREG_REF_CTA_VALUES_HH
