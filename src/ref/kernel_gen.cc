#include "ref/kernel_gen.hh"

#include <algorithm>
#include <sstream>

#include "analysis/lint.hh"
#include "isa/kernel_builder.hh"

namespace finereg
{

namespace
{

/** Deterministic generator RNG, independent of the simulator's PRNG. */
class GenRng
{
  public:
    explicit GenRng(std::uint64_t seed) : state_(seed ^ 0x2545f4914f6cdd1dull)
    {
    }

    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi]. */
    unsigned
    range(unsigned lo, unsigned hi)
    {
        return lo + static_cast<unsigned>(next() % (hi - lo + 1));
    }

    bool chance(double p) { return double(next() >> 11) * 0x1p-53 < p; }

    template <typename T, std::size_t N>
    T
    pick(const T (&options)[N])
    {
        return options[next() % N];
    }

  private:
    std::uint64_t state_;
};

GenOp
randomAlu(GenRng &rng, unsigned regs)
{
    static const Opcode kAluOps[] = {Opcode::IADD, Opcode::IMUL, Opcode::FADD,
                                     Opcode::FMUL, Opcode::FFMA, Opcode::MOV,
                                     Opcode::SFU};
    GenOp op;
    op.kind = GenOp::Kind::Alu;
    op.op = rng.pick(kAluOps);
    op.dst = static_cast<int>(rng.range(0, regs - 1));
    op.srcA = static_cast<int>(rng.range(0, regs - 1));
    op.srcB = op.op == Opcode::MOV || op.op == Opcode::SFU
                  ? -1
                  : static_cast<int>(rng.range(0, regs - 1));
    op.srcC = op.op == Opcode::FFMA
                  ? static_cast<int>(rng.range(0, regs - 1))
                  : -1;
    return op;
}

MemPattern
randomPattern(GenRng &rng, bool shared)
{
    static const std::uint64_t kFootprints[] = {64 << 10, 1 << 20};
    static const unsigned kTransactions[] = {1u, 2u, 4u};
    static const std::uint64_t kStrides[] = {128, 256, 4096};
    static const double kReuse[] = {0.0, 0.0, 0.5};

    MemPattern mem;
    mem.region = rng.range(0, 3);
    mem.footprint = rng.pick(kFootprints);
    mem.transactions = rng.pick(kTransactions);
    mem.stride = rng.pick(kStrides);
    mem.reuse = rng.pick(kReuse);
    mem.shared = shared;
    return mem;
}

GenOp
randomMem(GenRng &rng, unsigned regs, bool allow_shared)
{
    GenOp op;
    const bool is_load = rng.chance(0.65);
    const bool shared = allow_shared && rng.chance(0.3);
    op.mem = randomPattern(rng, shared);
    op.srcA = static_cast<int>(rng.range(0, regs - 1)); // address register
    if (is_load) {
        op.kind = GenOp::Kind::Load;
        op.op = shared ? Opcode::LD_SHARED : Opcode::LD_GLOBAL;
        op.dst = static_cast<int>(rng.range(0, regs - 1));
        // Bias toward load-then-use: the dependent consumer stalls the
        // warp, which is what drives CTA switching in the swap policies.
        op.dependentUse = rng.chance(0.7);
    } else {
        op.kind = GenOp::Kind::Store;
        op.op = shared ? Opcode::ST_SHARED : Opcode::ST_GLOBAL;
        op.srcB = static_cast<int>(rng.range(0, regs - 1)); // data register
    }
    return op;
}

std::vector<GenOp>
randomOps(GenRng &rng, unsigned count, unsigned regs, bool allow_shared)
{
    std::vector<GenOp> ops;
    ops.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        if (rng.chance(0.35))
            ops.push_back(randomMem(rng, regs, allow_shared));
        else
            ops.push_back(randomAlu(rng, regs));
    }
    return ops;
}

/** Emit one GenOp (and a load's dependent consumer) into the builder. */
void
emitOp(KernelBuilder &b, const GenOp &op, unsigned regs, unsigned shmem)
{
    // Shared accesses wrap inside the CTA's allocation, and the executor
    // and timing model both ignore the footprint for them — clamp it so
    // the declared pattern matches what actually happens.
    MemPattern mem = op.mem;
    if (op.op == Opcode::LD_SHARED || op.op == Opcode::ST_SHARED)
        mem.footprint = std::min<std::uint64_t>(mem.footprint,
                                                std::max(shmem, 1u));
    switch (op.kind) {
      case GenOp::Kind::Alu:
        b.alu(op.op, op.dst, op.srcA, op.srcB, op.srcC);
        break;
      case GenOp::Kind::Load:
        b.load(op.op, op.dst, op.srcA, mem);
        if (op.dependentUse) {
            const int consumer = (op.dst + 1) % static_cast<int>(regs);
            b.alu(Opcode::IADD, consumer, op.dst, op.dst);
        }
        break;
      case GenOp::Kind::Store:
        b.store(op.op, op.srcA, op.srcB, mem);
        break;
    }
}

unsigned
opsInstrCount(const std::vector<GenOp> &ops)
{
    unsigned n = 0;
    for (const GenOp &op : ops)
        n += op.kind == GenOp::Kind::Load && op.dependentUse ? 2 : 1;
    return n;
}

} // namespace

std::unique_ptr<Kernel>
KernelSpec::build() const
{
    std::ostringstream name;
    name << "gen-" << std::hex << seed;

    KernelBuilder b(name.str());
    b.regsPerThread(regs)
        .threadsPerCta(threads)
        .gridCtas(grid)
        .shmemPerCta(shmem);

    // Block indices are assigned in creation order and non-terminated
    // blocks fall through to the next index, so each segment can compute
    // its branch targets before the target blocks exist.
    int cur = b.newBlock();
    bool cur_empty = true;
    const bool bar = barriers && shmem > 0;

    bool first_seg = true;
    for (const GenSegment &seg : segments) {
        if (!first_seg && bar) {
            b.barrier();
            cur_empty = false;
        }
        first_seg = false;
        const bool thin = seg.ops.size() < 2;
        if (seg.kind == GenSegment::Kind::Straight ||
            (seg.kind == GenSegment::Kind::Diamond && thin)) {
            // Thin diamonds degrade to straight code: a one-op diamond
            // would leave an arm block empty, which finalize() rejects.
            for (const GenOp &op : seg.ops)
                emitOp(b, op, regs, shmem);
            cur_empty = cur_empty && seg.ops.empty();
            continue;
        }

        if (seg.kind == GenSegment::Kind::Loop) {
            // The body must start a block (it is the back-edge target);
            // reuse the current block if nothing was emitted into it yet.
            const int body = cur_empty ? cur : b.newBlock();
            if (seg.ops.empty())
                b.mov(0, 0); // blocks may not be empty
            for (const GenOp &op : seg.ops)
                emitOp(b, op, regs, shmem);
            b.loopBranch(body, /*cond_src=*/0, std::max(seg.trips, 1u),
                         seg.divergeProb);
            cur = b.newBlock(); // loop exit falls through here
            cur_empty = true;
            continue;
        }

        // Diamond: [cur: BRA -> then] [else] [then] [join]. The BRA falls
        // through to the else arm; the then arm falls through to join; the
        // else arm jumps over it.
        const std::size_t split = seg.ops.size() / 2;
        const int then_blk = cur + 2;
        const int join_blk = cur + 3;
        b.branch(then_blk, /*cond_src=*/0, seg.takenProb, seg.divergeProb);
        b.newBlock(); // else arm == cur + 1
        for (std::size_t i = 0; i < split; ++i)
            emitOp(b, seg.ops[i], regs, shmem);
        b.jump(join_blk);
        b.newBlock(); // then arm == cur + 2
        for (std::size_t i = split; i < seg.ops.size(); ++i)
            emitOp(b, seg.ops[i], regs, shmem);
        cur = b.newBlock(); // join == cur + 3
        cur_empty = true;
    }

    if (bar)
        b.barrier();

    // Observability epilogue: fold the observed registers into R0 and
    // store it, so no tracked register can be corrupted silently.
    if (observeRegs.empty()) {
        for (unsigned r = 1; r < regs; ++r)
            b.alu(Opcode::IADD, 0, 0, static_cast<int>(r));
    } else {
        for (unsigned r : observeRegs) {
            if (r != 0 && r < regs)
                b.alu(Opcode::IADD, 0, 0, static_cast<int>(r));
        }
    }
    MemPattern out;
    out.region = 7; // result region, disjoint from generated access regions
    out.footprint = 1 << 20;
    b.store(Opcode::ST_GLOBAL, 0, 0, out);
    if (shmem > 0) {
        MemPattern shout;
        shout.shared = true;
        shout.footprint = shmem;
        b.store(Opcode::ST_SHARED, 0, 0, shout);
    }
    b.exit();
    auto kernel = b.finalize();
    analysis::assertLintClean(*kernel, "kernel_gen");
    return kernel;
}

unsigned
KernelSpec::instrCount() const
{
    return build()->staticInstrs();
}

std::string
KernelSpec::describe() const
{
    std::ostringstream oss;
    oss << "seed=0x" << std::hex << seed << std::dec << " regs=" << regs
        << " threads=" << threads << " grid=" << grid << " shmem=" << shmem
        << " segments=" << segments.size() << " [";
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const GenSegment &seg = segments[i];
        if (i)
            oss << " ";
        switch (seg.kind) {
          case GenSegment::Kind::Straight:
            oss << "straight:" << opsInstrCount(seg.ops);
            break;
          case GenSegment::Kind::Loop:
            oss << "loop(x" << seg.trips << "):" << opsInstrCount(seg.ops);
            break;
          case GenSegment::Kind::Diamond:
            oss << "diamond(t=" << seg.takenProb << ",d=" << seg.divergeProb
                << "):" << opsInstrCount(seg.ops);
            break;
        }
    }
    oss << "] instrs=" << instrCount();
    return oss.str();
}

KernelSpec
generateKernelSpec(std::uint64_t seed, const GenOptions &options)
{
    static const unsigned kThreads[] = {64u, 128u, 256u};
    static const unsigned kShmem[] = {0u, 2048u, 8192u};
    static const double kTaken[] = {0.2, 0.5, 0.8};
    static const double kDiverge[] = {0.0, 0.3, 0.7};

    GenRng rng(seed);
    KernelSpec spec;
    spec.seed = seed;
    spec.regs = rng.range(8, 24);
    spec.threads = rng.pick(kThreads);
    spec.grid = rng.range(8, 24);
    spec.shmem = rng.pick(kShmem);
    spec.barriers = options.emitBarriers;

    const unsigned nsegs = rng.range(2, 5);
    for (unsigned i = 0; i < nsegs; ++i) {
        GenSegment seg;
        switch (rng.range(0, 3)) {
          case 0:
            seg.kind = GenSegment::Kind::Loop;
            seg.trips = rng.range(2, 6);
            break;
          case 1:
            seg.kind = GenSegment::Kind::Diamond;
            seg.takenProb = rng.pick(kTaken);
            seg.divergeProb = rng.pick(kDiverge);
            break;
          default:
            seg.kind = GenSegment::Kind::Straight;
            break;
        }
        seg.ops = randomOps(rng, rng.range(2, 6), spec.regs, spec.shmem > 0);
        spec.segments.push_back(std::move(seg));
    }

    if (options.observeAllRegs) {
        for (unsigned r = 0; r < spec.regs; ++r)
            spec.observeRegs.push_back(r);
    } else {
        for (unsigned r = 0; r < spec.regs; ++r) {
            if (rng.chance(0.5))
                spec.observeRegs.push_back(r);
        }
        if (spec.observeRegs.empty())
            spec.observeRegs.push_back(0);
    }
    return spec;
}

std::vector<KernelSpec>
shrinkCandidates(const KernelSpec &spec)
{
    std::vector<KernelSpec> out;

    // Drop whole segments first (largest reduction).
    if (spec.segments.size() > 1) {
        for (std::size_t i = 0; i < spec.segments.size(); ++i) {
            KernelSpec c = spec;
            c.segments.erase(c.segments.begin() +
                             static_cast<std::ptrdiff_t>(i));
            out.push_back(std::move(c));
        }
    }

    // Halve each segment's body (keep the first half).
    for (std::size_t i = 0; i < spec.segments.size(); ++i) {
        if (spec.segments[i].ops.size() > 1) {
            KernelSpec c = spec;
            c.segments[i].ops.resize(c.segments[i].ops.size() / 2);
            out.push_back(std::move(c));
        }
    }

    // Flatten structured segments into straight code.
    for (std::size_t i = 0; i < spec.segments.size(); ++i) {
        if (spec.segments[i].kind != GenSegment::Kind::Straight) {
            KernelSpec c = spec;
            c.segments[i].kind = GenSegment::Kind::Straight;
            out.push_back(std::move(c));
        }
    }

    // Halve the register count (remapping operands), which also shrinks
    // the fold epilogue — minimized counterexamples need this to get small.
    if (spec.regs > 4) {
        KernelSpec c = spec;
        const unsigned nr = std::max(4u, c.regs / 2);
        c.regs = nr;
        const auto remap = [nr](int r) {
            return r < 0 ? r : r % static_cast<int>(nr);
        };
        for (GenSegment &seg : c.segments) {
            for (GenOp &op : seg.ops) {
                op.dst = remap(op.dst);
                op.srcA = remap(op.srcA);
                op.srcB = remap(op.srcB);
                op.srcC = remap(op.srcC);
            }
        }
        std::vector<unsigned> observe;
        for (unsigned r : c.observeRegs) {
            const unsigned m = r % nr;
            if (std::find(observe.begin(), observe.end(), m) ==
                observe.end())
                observe.push_back(m);
        }
        c.observeRegs = std::move(observe);
        out.push_back(std::move(c));
    }

    // Shrink launch geometry and loop depth.
    if (spec.grid > 2) {
        KernelSpec c = spec;
        c.grid = std::max(2u, c.grid / 2);
        out.push_back(std::move(c));
    }
    if (spec.threads > 2 * kWarpSize) {
        KernelSpec c = spec;
        c.threads = std::max(kWarpSize, c.threads / 2);
        out.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < spec.segments.size(); ++i) {
        if (spec.segments[i].kind == GenSegment::Kind::Loop &&
            spec.segments[i].trips > 2) {
            KernelSpec c = spec;
            c.segments[i].trips /= 2;
            out.push_back(std::move(c));
        }
    }
    if (spec.barriers) {
        KernelSpec c = spec;
        c.barriers = false;
        out.push_back(std::move(c));
    }
    if (spec.shmem > 0) {
        KernelSpec c = spec;
        c.shmem = 0;
        // Shared-memory ops need shmem; retarget them at global memory.
        for (GenSegment &seg : c.segments) {
            for (GenOp &op : seg.ops) {
                if (op.op == Opcode::LD_SHARED)
                    op.op = Opcode::LD_GLOBAL;
                else if (op.op == Opcode::ST_SHARED)
                    op.op = Opcode::ST_GLOBAL;
                op.mem.shared = false;
            }
        }
        out.push_back(std::move(c));
    }

    // Last resort: drop the dependent consumers of loads. This usually
    // removes the stall that provokes CTA switching, so it is tried only
    // after everything else.
    bool any_dep = false;
    for (const GenSegment &seg : spec.segments) {
        for (const GenOp &op : seg.ops)
            any_dep = any_dep ||
                      (op.kind == GenOp::Kind::Load && op.dependentUse);
    }
    if (any_dep) {
        KernelSpec c = spec;
        for (GenSegment &seg : c.segments) {
            for (GenOp &op : seg.ops)
                op.dependentUse = false;
        }
        out.push_back(std::move(c));
    }
    return out;
}

KernelSpec
minimizeSpec(KernelSpec spec,
             const std::function<bool(const KernelSpec &)> &reproduces,
             unsigned budget)
{
    bool progress = true;
    while (progress && budget > 0) {
        progress = false;
        for (KernelSpec &cand : shrinkCandidates(spec)) {
            if (budget == 0)
                break;
            --budget;
            if (reproduces(cand)) {
                spec = std::move(cand);
                progress = true;
                break;
            }
        }
    }
    return spec;
}

} // namespace finereg
