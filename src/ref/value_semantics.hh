/**
 * @file
 * Architectural value semantics shared by the functional reference executor
 * and the cycle-level simulator's value-tracking layer. The simulator is a
 * *performance* model — it has no program inputs — so "what a kernel
 * computes" is defined axiomatically here:
 *
 *  - every register starts with a deterministic hash of (cta, thread, reg);
 *  - loads return a pure hash of the loaded address (stores do not feed
 *    loads), so load results are independent of timing and warp order;
 *  - stores accumulate commutatively (wrapping 32-bit add) into a word-
 *    granular memory image, so the final image is independent of store
 *    order;
 *  - ALU/SFU opcodes are interpreted as fixed integer mixing functions
 *    (NOT IEEE arithmetic) chosen to be distinct per opcode and to
 *    propagate every operand bit.
 *
 * Under these semantics the final architectural state is a pure function
 * of (kernel, seed): any divergence between two executors is a real
 * execution-path or register-preservation bug, never a scheduling
 * artifact. What this deliberately does NOT check: memory ordering,
 * load/store forwarding, and FP numerics (see DESIGN.md "Correctness
 * methodology").
 */

#ifndef FINEREG_REF_VALUE_SEMANTICS_HH
#define FINEREG_REF_VALUE_SEMANTICS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace finereg
{

namespace detail
{

/** SplitMix64 finalizer: the avalanche everything below is built on. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

} // namespace detail

/** Initial value of register @p reg of thread @p thread in CTA @p cta. */
constexpr std::uint32_t
initRegValue(GridCtaId cta, unsigned thread, unsigned reg)
{
    return static_cast<std::uint32_t>(detail::mix64(
        (std::uint64_t(cta) << 32) ^ (std::uint64_t(thread) << 8) ^ reg ^
        0x1ec5ull << 48));
}

/** Value a load observes at global word address @p word_addr. */
constexpr std::uint32_t
loadGlobalValue(Addr word_addr)
{
    return static_cast<std::uint32_t>(
        detail::mix64(word_addr ^ 0x6c0adull << 44));
}

/** Value a load observes at shared-memory word @p word_off of CTA @p cta. */
constexpr std::uint32_t
loadSharedValue(GridCtaId cta, std::uint32_t word_off)
{
    return static_cast<std::uint32_t>(detail::mix64(
        (std::uint64_t(cta) << 32) ^ word_off ^ 0x54aedull << 44));
}

/**
 * Scramble written over a register dropped as dead at CTA swap-out. A
 * liveness bug that drops a *live* register propagates this (deterministic)
 * garbage into downstream state, which the differential oracle then flags.
 */
constexpr std::uint32_t
poisonValue(GridCtaId cta, unsigned thread, unsigned reg)
{
    return static_cast<std::uint32_t>(detail::mix64(
        (std::uint64_t(cta) << 32) ^ (std::uint64_t(thread) << 8) ^ reg ^
        0xdeadull << 48));
}

/**
 * Interpreted result of an ALU/SFU opcode over its operand values. Every
 * opcode is a distinct total function on uint32 so value-transport bugs
 * cannot cancel out; unused operand slots must be passed as 0.
 */
constexpr std::uint32_t
aluEval(Opcode op, std::uint32_t a, std::uint32_t b, std::uint32_t c)
{
    switch (op) {
      case Opcode::IADD:
        return a + b;
      case Opcode::IMUL:
        return a * (b | 1u); // |1 keeps the map sensitive to a when b == 0
      case Opcode::FADD:
        return (a ^ detail::rotl32(b, 7)) + 0x9e3779b9u;
      case Opcode::FMUL:
        return (a * 0x85ebca6bu) ^ detail::rotl32(b, 19);
      case Opcode::FFMA:
        return a * (b | 1u) + c;
      case Opcode::MOV:
        return a;
      case Opcode::SFU:
        return detail::rotl32(a * 0xc2b2ae35u, 13) ^ 0x27d4eb2fu;
      default:
        return 0;
    }
}

} // namespace finereg

#endif // FINEREG_REF_VALUE_SEMANTICS_HH
