#include "ref/value_validator.hh"

#include <cstdio>
#include <string>

#include "analysis/compressibility.hh"
#include "analysis/mem_access.hh"
#include "analysis/value_range.hh"
#include "ref/ref_executor.hh"
#include "ref/value_observe.hh"

namespace finereg
{

namespace
{

using analysis::DiagKind;

std::string
hex(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Saturating @p bound * @p warps (the per-warp bound is grid-wide). */
std::uint64_t
gridBound(std::uint64_t bound, std::uint64_t warps)
{
    if (warps != 0 && bound > ~0ull / warps)
        return ~0ull;
    return bound * warps;
}

} // namespace

XCheckReport
crossValidate(analysis::AnalysisManager &manager, const Kernel &kernel,
              std::uint64_t seed)
{
    XCheckReport report;

    const auto *vr = manager.resultOf<analysis::ValueRangeResult>(
        kernel, analysis::ValueRangeResult::kName);
    const auto *mem = manager.resultOf<analysis::MemAccessResult>(
        kernel, analysis::MemAccessResult::kName);
    const auto *comp = manager.resultOf<analysis::CompressibilityResult>(
        kernel, analysis::CompressibilityResult::kName);
    if (vr == nullptr || mem == nullptr || comp == nullptr) {
        // Passes gated on an unsound CFG made no claims to validate (and
        // executing a malformed kernel would be meaningless anyway).
        report.skipped = true;
        return report;
    }

    ValueObservation obs(kernel);
    RefExecutor::execute(kernel, seed, obs);

    const unsigned max_diags = manager.options().maxDiagsPerPass;
    const auto capped = [&report, max_diags] {
        return report.diags.size() >= max_diags;
    };

    // Per-instruction: written values and uniformity vs the def intervals.
    for (unsigned i = 0; i < kernel.staticInstrs(); ++i) {
        const InstrObservation &io = obs.instrs()[i];
        if (!io.wroteValue)
            continue;
        ++report.checkedDefs;
        const int block = kernel.blockOfInstr(i);
        const int dst = kernel.instrs()[i].dst;
        const analysis::Interval &iv = vr->defInterval[i];
        if (!capped() &&
            (!iv.contains(io.valueMin) || !iv.contains(io.valueMax))) {
            report.diags.add(
                DiagKind::ValueRangeUnsound, kernel.name(), block, int(i),
                dst,
                "observed def values [" + hex(io.valueMin) + ", " +
                    hex(io.valueMax) + "] escape the static interval " +
                    iv.toString());
        }
        if (!capped() && io.sawNonUniform && vr->defUniform[i]) {
            report.diags.add(
                DiagKind::ValueRangeUnsound, kernel.name(), block, int(i),
                dst,
                "def claimed warp-uniform but active lanes observed "
                "different values");
        }
    }

    // Per-register: the join over all defs, and the compiler width claim.
    for (unsigned r = 0; r < kernel.regsPerThread(); ++r) {
        const RegObservation &ro = obs.regs()[r];
        if (!ro.wrote)
            continue;
        const analysis::Interval &join = vr->regJoin[r];
        if (!capped() &&
            (!join.contains(ro.valueMin) || !join.contains(ro.valueMax))) {
            report.diags.add(
                DiagKind::ValueRangeUnsound, kernel.name(), -1, -1, int(r),
                "observed register values [" + hex(ro.valueMin) + ", " +
                    hex(ro.valueMax) + "] escape the per-register join " +
                    join.toString());
        }
        const unsigned observed_bits =
            analysis::Interval::constant(ro.valueMax).bitsNeeded();
        if (!capped() && observed_bits > comp->claimedBits[r]) {
            report.diags.add(
                DiagKind::CompressionWidthUnsound, kernel.name(), -1, -1,
                int(r),
                "observed value " + hex(ro.valueMax) + " needs " +
                    std::to_string(observed_bits) +
                    " bits but the compiler claims " +
                    std::to_string(comp->claimedBits[r]));
        }
    }

    // Per-memory-op: addresses vs affine forms, executions vs bounds.
    const std::uint64_t total_warps =
        std::uint64_t(kernel.warpsPerCta()) * kernel.gridCtas();
    for (const auto &op : mem->ops) {
        const InstrObservation &io = obs.instrs()[op.instr];
        const int block = kernel.blockOfInstr(op.instr);
        ++report.checkedOps;
        if (io.sawGlobal && !capped() &&
            (!op.lanes.containsLaneAddr(io.globalMin) ||
             !op.lanes.containsLaneAddr(io.globalMax))) {
            report.diags.add(
                DiagKind::AddressBoundUnsound, kernel.name(), block,
                int(op.instr), -1,
                "observed global words [" + hex(io.globalMin) + ", " +
                    hex(io.globalMax) + "] escape the affine form [" +
                    hex(op.lanes.baseLo) + ", " + hex(op.lanes.laneMax()) +
                    "]");
        }
        if (io.sawShared && !capped() &&
            (!op.lanes.containsLaneAddr(io.sharedWordMin) ||
             !op.lanes.containsLaneAddr(io.sharedWordMax) ||
             io.sharedWordMin % 4 != 0 || io.sharedWordMax % 4 != 0)) {
            report.diags.add(
                DiagKind::AddressBoundUnsound, kernel.name(), block,
                int(op.instr), -1,
                "observed shared words [" + hex(io.sharedWordMin) + ", " +
                    hex(io.sharedWordMax) +
                    "] escape the region wrap (or misalign) " +
                    hex(op.lanes.wrap));
        }
        if (op.execBound != analysis::MemAccessResult::kUnboundedExecs &&
            !capped() && io.execs > gridBound(op.execBound, total_warps)) {
            report.diags.add(
                DiagKind::AddressBoundUnsound, kernel.name(), block,
                int(op.instr), -1,
                "observed " + std::to_string(io.execs) +
                    " warp executions but the static bound allows " +
                    std::to_string(op.execBound) + " per warp x " +
                    std::to_string(total_warps) + " warps");
        }
    }

    // Every observed instruction must respect its block's proven bound
    // (noteExec covers ALU/SFU and memory ops; control flow is untracked).
    for (unsigned i = 0; i < kernel.staticInstrs(); ++i) {
        const InstrObservation &io = obs.instrs()[i];
        if (io.execs == 0 || capped())
            continue;
        const int block = kernel.blockOfInstr(i);
        const std::uint64_t bound = mem->blockExecBound[block];
        if (bound != analysis::MemAccessResult::kUnboundedExecs &&
            io.execs > gridBound(bound, total_warps)) {
            report.diags.add(
                DiagKind::AddressBoundUnsound, kernel.name(), block, int(i),
                -1,
                "observed " + std::to_string(io.execs) +
                    " warp executions but the block bound allows " +
                    std::to_string(bound) + " per warp x " +
                    std::to_string(total_warps) + " warps");
        }
    }

    return report;
}

} // namespace finereg
