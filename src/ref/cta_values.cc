#include "ref/cta_values.hh"

#include <algorithm>

#include "ref/value_observe.hh"
#include "ref/value_semantics.hh"

namespace finereg
{

CtaValues::CtaValues(GridCtaId grid_id, const KernelContext &context)
    : gridId_(grid_id), context_(&context),
      regsPerThread_(context.kernel().regsPerThread()),
      numThreads_(context.kernel().threadsPerCta()),
      regs_(std::size_t(numThreads_) * regsPerThread_),
      poison_(numThreads_, 0), retired_(numThreads_, 0),
      sharedExec_(std::size_t(context.kernel().warpsPerCta()) *
                      std::max(1u, context.numMemInstrs()),
                  0)
{
    for (unsigned t = 0; t < numThreads_; ++t)
        for (unsigned r = 0; r < regsPerThread_; ++r)
            regs_[std::size_t(t) * regsPerThread_ + r] =
                initRegValue(gridId_, t, r);
}

void
CtaValues::noteRetire(WarpId warp, std::uint32_t mask)
{
    const unsigned base = warp * kWarpSize;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (mask >> lane & 1)
            ++retired_[base + lane];
    }
}

std::uint32_t
CtaValues::readSrc(unsigned thread, int src) const
{
    if (src < 0)
        return 0;
    return regs_[std::size_t(thread) * regsPerThread_ + src];
}

void
CtaValues::execAlu(WarpId warp, std::uint32_t mask, const Instruction &instr)
{
    if (instr.dst < 0)
        return;
    const unsigned base = warp * kWarpSize;
    std::uint32_t vmin = 0xffffffffu, vmax = 0;
    bool differ = false, first = true;
    std::uint32_t first_v = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(mask >> lane & 1))
            continue;
        const unsigned t = base + lane;
        const std::uint32_t v =
            aluEval(instr.op, readSrc(t, instr.srcs[0]),
                    readSrc(t, instr.srcs[1]), readSrc(t, instr.srcs[2]));
        regs_[std::size_t(t) * regsPerThread_ + instr.dst] = v;
        poison_[t] &= ~(1ull << instr.dst);
        vmin = v < vmin ? v : vmin;
        vmax = v > vmax ? v : vmax;
        differ = differ || (!first && v != first_v);
        first_v = first ? v : first_v;
        first = false;
    }
    if (observer_ != nullptr) {
        observer_->noteExec(instr.index);
        if (!first)
            observer_->noteWrite(instr.index, unsigned(instr.dst), vmin,
                                 vmax, differ);
    }
}

void
CtaValues::execGlobal(WarpId warp, std::uint32_t mask,
                      const Instruction &instr, Addr addr)
{
    const unsigned base = warp * kWarpSize;
    const bool load = isLoad(instr.op);
    if (observer_ != nullptr)
        observer_->noteExec(instr.index);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(mask >> lane & 1))
            continue;
        const unsigned t = base + lane;
        const Addr word = addr + 4ull * lane;
        if (observer_ != nullptr)
            observer_->noteGlobalLane(instr.index, word);
        if (load) {
            if (instr.dst < 0)
                continue;
            const std::uint32_t v = loadGlobalValue(word);
            regs_[std::size_t(t) * regsPerThread_ + instr.dst] = v;
            poison_[t] &= ~(1ull << instr.dst);
            if (observer_ != nullptr)
                observer_->noteWrite(instr.index, unsigned(instr.dst), v, v,
                                     false);
        } else {
            // srcs[1] is the data operand of a store (srcs[0] addresses).
            globalStores_[word] += readSrc(t, instr.srcs[1]);
        }
    }
}

std::uint32_t
CtaValues::sharedBaseOffset(WarpId warp, const Instruction &instr)
{
    const int mem_id = context_->memId(instr.index);
    const std::uint32_t k =
        sharedExec_[std::size_t(warp) * std::max(1u, context_->numMemInstrs()) +
                    mem_id]++;
    // Walk the CTA's shared region in stride steps per execution, with a
    // per-warp 128-byte phase; wrap to the (128-byte-rounded) region size.
    const std::uint32_t region = std::max<std::uint32_t>(
        (context_->kernel().shmemPerCta() + 127u) & ~127u, 128u);
    const std::uint64_t stride = std::max<std::uint64_t>(instr.mem.stride, 4);
    return static_cast<std::uint32_t>(
        (std::uint64_t(warp) * 128 + k * stride) % region & ~3ull);
}

void
CtaValues::execShared(WarpId warp, std::uint32_t mask,
                      const Instruction &instr)
{
    const std::uint32_t region = std::max<std::uint32_t>(
        (context_->kernel().shmemPerCta() + 127u) & ~127u, 128u);
    const std::uint32_t off = sharedBaseOffset(warp, instr);
    const unsigned base = warp * kWarpSize;
    const bool load = isLoad(instr.op);
    if (observer_ != nullptr)
        observer_->noteExec(instr.index);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(mask >> lane & 1))
            continue;
        const unsigned t = base + lane;
        const std::uint32_t word = (off + 4u * lane) % region;
        if (observer_ != nullptr)
            observer_->noteSharedLane(instr.index, word);
        if (load) {
            if (instr.dst < 0)
                continue;
            const std::uint32_t v = loadSharedValue(gridId_, word);
            regs_[std::size_t(t) * regsPerThread_ + instr.dst] = v;
            poison_[t] &= ~(1ull << instr.dst);
            if (observer_ != nullptr)
                observer_->noteWrite(instr.index, unsigned(instr.dst), v, v,
                                     false);
        } else {
            sharedStores_[word] += readSrc(t, instr.srcs[1]);
        }
    }
}

void
CtaValues::dropDeadRegs(WarpId warp, const RegBitVec &keep)
{
    const unsigned base = warp * kWarpSize;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        const unsigned t = base + lane;
        for (unsigned r = 0; r < regsPerThread_; ++r) {
            if (keep.test(static_cast<RegIndex>(r)))
                continue;
            regs_[std::size_t(t) * regsPerThread_ + r] =
                poisonValue(gridId_, t, r);
            poison_[t] |= 1ull << r;
        }
    }
}

std::uint32_t
CtaValues::reg(unsigned thread, unsigned r) const
{
    return regs_[std::size_t(thread) * regsPerThread_ + r];
}

std::uint64_t
CtaValues::poisonMask(unsigned thread) const
{
    return poison_[thread];
}

std::uint64_t
CtaValues::retired(unsigned thread) const
{
    return retired_[thread];
}

CtaEndState
CtaValues::takeEndState()
{
    CtaEndState out;
    out.threads.resize(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        ThreadEndState &ts = out.threads[t];
        ts.regs.assign(regs_.begin() + std::size_t(t) * regsPerThread_,
                       regs_.begin() + std::size_t(t + 1) * regsPerThread_);
        ts.poison = poison_[t];
        ts.retired = retired_[t];
    }
    out.sharedStores = std::move(sharedStores_);
    return out;
}

void
CtaValues::mergeGlobalInto(std::map<Addr, std::uint32_t> &image) const
{
    for (const auto &[addr, val] : globalStores_)
        image[addr] += val;
}

} // namespace finereg
