/**
 * @file
 * Seeded property-based kernel generator for the differential oracle.
 * Emits random-but-valid kernels through KernelBuilder — structured control
 * flow (straight runs, counted loops, diamonds with probabilistic
 * divergence), register pressure, and global/shared memory patterns biased
 * toward load-then-use stalls so CTAs actually get swapped. Every kernel
 * ends in an observability epilogue that folds registers into a global
 * store, so a corrupted register cannot retire silently.
 *
 * Failures minimize via greedy shrinking: candidate reductions (drop a
 * segment, halve its body, shrink the grid/threads/trip counts) are
 * re-tested and applied while the divergence still reproduces.
 */

#ifndef FINEREG_REF_KERNEL_GEN_HH
#define FINEREG_REF_KERNEL_GEN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace finereg
{

/** One generated instruction (plus the dependent consumer of a load). */
struct GenOp
{
    enum class Kind : unsigned char { Alu, Load, Store };

    Kind kind = Kind::Alu;
    Opcode op = Opcode::IADD;
    int dst = 0;
    int srcA = 0;
    int srcB = 0;
    int srcC = -1;

    MemPattern mem;

    /** Loads: emit an ALU consumer of dst right after (stall-on-use). */
    bool dependentUse = false;
};

/** A structured control-flow region of the generated kernel. */
struct GenSegment
{
    enum class Kind : unsigned char { Straight, Loop, Diamond };

    Kind kind = Kind::Straight;
    unsigned trips = 0;       ///< Loop: body executes this many times.
    double takenProb = 0.5;   ///< Diamond: warp-wide taken probability.
    double divergeProb = 0.0; ///< Diamond: SIMT divergence probability.
    std::vector<GenOp> ops;
};

/**
 * A declarative kernel recipe: cheap to copy, mutate (shrinking), and
 * rebuild into an immutable Kernel.
 */
struct KernelSpec
{
    std::uint64_t seed = 0;
    unsigned regs = 16;
    unsigned threads = 128;
    unsigned grid = 8;
    unsigned shmem = 0;

    /** Emit a BAR between top-level segments (and before the epilogue)
     * when the kernel uses shared memory. Barriers at segment boundaries
     * are safe for the timed simulator — every warp passes every boundary
     * — and give the shmem-race-check real sync intervals to partition. */
    bool barriers = false;

    std::vector<GenSegment> segments;

    /** Epilogue observability: which registers fold into the final store.
     * Empty means all of them. */
    std::vector<unsigned> observeRegs;

    /** Build the kernel (finalized and validated by KernelBuilder). */
    std::unique_ptr<Kernel> build() const;

    /** Static instructions of the built kernel. */
    unsigned instrCount() const;

    /** One-line parameter summary for failure reports. */
    std::string describe() const;
};

struct GenOptions
{
    /** Fold every register in the epilogue (guarantees any dropped live
     * register is observed; used by the broken-liveness self check). */
    bool observeAllRegs = false;

    /** Set KernelSpec::barriers (used by the self-check paths so the
     * barrier-removal defect class has barriers to remove; default off to
     * keep the golden end-state snapshots stable). */
    bool emitBarriers = false;
};

/** Deterministically generate a kernel recipe from @p seed. */
KernelSpec generateKernelSpec(std::uint64_t seed,
                              const GenOptions &options = {});

/**
 * One-step reductions of @p spec, most aggressive first. Every candidate
 * builds a valid kernel.
 */
std::vector<KernelSpec> shrinkCandidates(const KernelSpec &spec);

/**
 * Greedy shrink: repeatedly apply the first candidate reduction for which
 * @p reproduces returns true, until none does (or @p budget test runs are
 * spent). Returns the minimized spec.
 */
KernelSpec minimizeSpec(KernelSpec spec,
                        const std::function<bool(const KernelSpec &)>
                            &reproduces,
                        unsigned budget = 200);

} // namespace finereg

#endif // FINEREG_REF_KERNEL_GEN_HH
