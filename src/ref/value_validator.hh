/**
 * @file
 * Dynamic soundness cross-validation for the abstract-interpretation
 * passes: execute a kernel under the reference executor with value
 * observation enabled, then assert every observed fact lies inside its
 * static abstraction — written values inside the value-range pass's def
 * intervals and per-register joins, uniformity claims never contradicted
 * by divergent lane values, generated addresses inside the mem-access
 * pass's affine forms, dynamic execution counts within the proven bounds,
 * and observed register widths within the compressibility claim. Any
 * violation is an Error-severity diagnostic: either a transfer function
 * is unsound or the executor changed underneath the analyses, and both
 * must fail CI. The mirror of the liveness-check contract, for values.
 */

#ifndef FINEREG_REF_VALUE_VALIDATOR_HH
#define FINEREG_REF_VALUE_VALIDATOR_HH

#include <cstdint>

#include "analysis/pass.hh"
#include "isa/kernel.hh"

namespace finereg
{

struct XCheckReport
{
    analysis::DiagnosticSet diags;

    /** Instruction-level def observations checked against intervals. */
    std::uint64_t checkedDefs = 0;

    /** Memory-op observations checked against affine forms/bounds. */
    std::uint64_t checkedOps = 0;

    /** Static passes were gated on an unsound CFG; nothing to check. */
    bool skipped = false;

    bool clean() const { return !diags.hasErrors(); }
};

/**
 * Run @p kernel under grid seed @p seed with observation and validate
 * the observations against the (cached-or-computed) static results in
 * @p manager. The manager's options apply — including the narrow-claim
 * corruption hooks, which this validator must catch.
 */
XCheckReport crossValidate(analysis::AnalysisManager &manager,
                           const Kernel &kernel, std::uint64_t seed);

} // namespace finereg

#endif // FINEREG_REF_VALUE_VALIDATOR_HH
