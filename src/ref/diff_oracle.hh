/**
 * @file
 * Differential correctness oracle. Runs the cycle-level simulator with
 * value tracking under a register-management policy and diffs the captured
 * architectural end state against the untimed reference execution of the
 * same kernel. Any divergence — a register value, a store image word, a
 * retired-instruction count — means the policy altered what the program
 * computed, which FineReg's swap path must never do (PAPER.md §IV).
 */

#ifndef FINEREG_REF_DIFF_ORACLE_HH
#define FINEREG_REF_DIFF_ORACLE_HH

#include <string>
#include <vector>

#include "core/simulator.hh"
#include "isa/kernel.hh"
#include "ref/arch_state.hh"

namespace finereg
{

/** First point where a simulated end state departs from the reference. */
struct Divergence
{
    enum class Kind : unsigned char
    {
        None,         ///< States identical (modulo poisoned registers).
        RunFailure,   ///< The simulated run failed or did not complete.
        Shape,        ///< Grid/CTA dimensions disagree (harness bug).
        RetiredCount, ///< A thread retired a different instruction count.
        RegValue,     ///< A final register value differs.
        SharedMem,    ///< A CTA's shared store image differs.
        GlobalMem,    ///< The global store image differs.
    };

    Kind kind = Kind::None;
    PolicyKind policy = PolicyKind::Baseline;

    GridCtaId cta = kInvalidId;
    unsigned thread = 0;  ///< Thread index within the CTA (warp * 32 + lane).
    int reg = -1;         ///< Register index for RegValue.
    Addr addr = 0;        ///< Word address (GlobalMem) or offset (SharedMem).

    std::uint64_t refValue = 0;
    std::uint64_t simValue = 0;

    /** Failure reason / context for RunFailure and map-shape mismatches. */
    std::string detail;

    bool any() const { return kind != Kind::None; }

    /** One-line report naming the first divergent location and values. */
    std::string toString() const;
};

class DiffOracle
{
  public:
    /**
     * Compare a simulated end state against the reference in canonical
     * order (CTAs ascending, then threads, then registers; then shared
     * images; then the global image). Registers the simulated run marked
     * poisoned (dropped as dead at a swap) are excluded — their values
     * are undefined by design. Returns the first divergence.
     */
    static Divergence compare(const ArchState &ref, const ArchState &sim);

    /**
     * Run @p kernel under @p policy (value tracking forced on) and diff
     * against @p ref. Incomplete or failed runs report Kind::RunFailure.
     */
    static Divergence checkPolicy(const Kernel &kernel,
                                  const GpuConfig &config, PolicyKind policy,
                                  const ArchState &ref);

    struct Report
    {
        /** One entry per checked policy, Kind::None when it matched. */
        std::vector<Divergence> results;

        bool pass() const;
        std::string toString() const;
    };

    /**
     * Reference-execute @p kernel once, then check every policy in
     * @p policies (all five when empty) under @p config.
     */
    static Report
    checkAllPolicies(const Kernel &kernel, const GpuConfig &config,
                     const std::vector<PolicyKind> &policies = {});
};

} // namespace finereg

#endif // FINEREG_REF_DIFF_ORACLE_HH
