#include "ref/arch_state.hh"

#include <sstream>

namespace finereg
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void
fnv(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

} // namespace

unsigned
ArchState::completedCtas() const
{
    unsigned n = 0;
    for (const CtaEndState &cta : ctas)
        n += cta.completed() ? 1 : 0;
    return n;
}

std::uint64_t
ArchState::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    fnv(h, regsPerThread);
    fnv(h, threadsPerCta);
    fnv(h, ctas.size());
    for (std::size_t c = 0; c < ctas.size(); ++c) {
        const CtaEndState &cta = ctas[c];
        fnv(h, cta.completed() ? c + 1 : 0);
        for (const ThreadEndState &t : cta.threads) {
            fnv(h, t.poison);
            fnv(h, t.retired);
            for (std::size_t r = 0; r < t.regs.size(); ++r) {
                // Poisoned registers hold undefined values; fold only the
                // defined ones so the digest is policy-comparable.
                if (!(t.poison >> r & 1))
                    fnv(h, t.regs[r]);
            }
        }
        for (const auto &[off, val] : cta.sharedStores) {
            fnv(h, off);
            fnv(h, val);
        }
    }
    for (const auto &[addr, val] : globalStores) {
        fnv(h, addr);
        fnv(h, val);
    }
    return h;
}

std::string
ArchState::summary() const
{
    std::uint64_t shared_words = 0;
    for (const CtaEndState &cta : ctas)
        shared_words += cta.sharedStores.size();
    std::ostringstream oss;
    oss << kernelName << ": " << completedCtas() << "/" << ctas.size()
        << " CTAs, " << globalStores.size() << " global store words, "
        << shared_words << " shared store words, fingerprint 0x" << std::hex
        << fingerprint();
    return oss.str();
}

} // namespace finereg
