#include "ref/diff_oracle.hh"

#include <sstream>

#include "ref/ref_executor.hh"

namespace finereg
{

namespace
{

const char *
kindName(Divergence::Kind kind)
{
    switch (kind) {
      case Divergence::Kind::None:
        return "none";
      case Divergence::Kind::RunFailure:
        return "run-failure";
      case Divergence::Kind::Shape:
        return "shape";
      case Divergence::Kind::RetiredCount:
        return "retired-count";
      case Divergence::Kind::RegValue:
        return "reg-value";
      case Divergence::Kind::SharedMem:
        return "shared-mem";
      case Divergence::Kind::GlobalMem:
        return "global-mem";
    }
    return "?";
}

/**
 * First difference between two word->value maps; missing words are
 * reported with the present side's value and a note in @p where.
 */
template <typename Map>
bool
diffStoreImage(const Map &ref, const Map &sim, Addr &addr,
               std::uint64_t &ref_value, std::uint64_t &sim_value,
               std::string &where)
{
    auto ri = ref.begin();
    auto si = sim.begin();
    while (ri != ref.end() || si != sim.end()) {
        if (si == sim.end() || (ri != ref.end() && ri->first < si->first)) {
            addr = ri->first;
            ref_value = ri->second;
            sim_value = 0;
            where = "word missing from the simulated image";
            return true;
        }
        if (ri == ref.end() || si->first < ri->first) {
            addr = si->first;
            ref_value = 0;
            sim_value = si->second;
            where = "word missing from the reference image";
            return true;
        }
        if (ri->second != si->second) {
            addr = ri->first;
            ref_value = ri->second;
            sim_value = si->second;
            where.clear();
            return true;
        }
        ++ri;
        ++si;
    }
    return false;
}

} // namespace

std::string
Divergence::toString() const
{
    std::ostringstream oss;
    oss << "divergence[" << kindName(kind) << "] policy="
        << policyKindName(policy);
    switch (kind) {
      case Kind::None:
        return "no divergence";
      case Kind::RunFailure:
      case Kind::Shape:
        oss << ": " << detail;
        break;
      case Kind::RetiredCount:
        oss << " cta=" << cta << " thread=" << thread << " (warp "
            << thread / kWarpSize << " lane " << thread % kWarpSize
            << "): retired " << simValue << " instructions, reference "
            << refValue;
        break;
      case Kind::RegValue:
        oss << " cta=" << cta << " thread=" << thread << " (warp "
            << thread / kWarpSize << " lane " << thread % kWarpSize
            << ") reg=r" << reg << ": sim=0x" << std::hex << simValue
            << " ref=0x" << refValue;
        break;
      case Kind::SharedMem:
        oss << " cta=" << cta << " shared word offset=0x" << std::hex
            << addr << ": sim=0x" << simValue << " ref=0x" << refValue;
        break;
      case Kind::GlobalMem:
        oss << " global word addr=0x" << std::hex << addr << ": sim=0x"
            << simValue << " ref=0x" << refValue;
        break;
    }
    if ((kind == Kind::SharedMem || kind == Kind::GlobalMem) &&
        !detail.empty()) {
        oss << " (" << detail << ")";
    }
    return oss.str();
}

Divergence
DiffOracle::compare(const ArchState &ref, const ArchState &sim)
{
    Divergence d;
    if (ref.ctas.size() != sim.ctas.size() ||
        ref.regsPerThread != sim.regsPerThread ||
        ref.threadsPerCta != sim.threadsPerCta) {
        d.kind = Divergence::Kind::Shape;
        d.detail = "grid dimensions disagree: ref " +
                   std::to_string(ref.ctas.size()) + " CTAs x " +
                   std::to_string(ref.threadsPerCta) + " threads x " +
                   std::to_string(ref.regsPerThread) + " regs, sim " +
                   std::to_string(sim.ctas.size()) + " x " +
                   std::to_string(sim.threadsPerCta) + " x " +
                   std::to_string(sim.regsPerThread);
        return d;
    }

    for (std::size_t c = 0; c < ref.ctas.size(); ++c) {
        const CtaEndState &rc = ref.ctas[c];
        const CtaEndState &sc = sim.ctas[c];
        if (rc.completed() != sc.completed()) {
            d.kind = Divergence::Kind::Shape;
            d.cta = static_cast<GridCtaId>(c);
            d.detail = "CTA " + std::to_string(c) +
                       (sc.completed() ? " completed only in the simulation"
                                       : " never retired in the simulation");
            return d;
        }
        if (!rc.completed())
            continue;

        for (unsigned t = 0; t < rc.threads.size(); ++t) {
            const ThreadEndState &rt = rc.threads[t];
            const ThreadEndState &st = sc.threads[t];
            if (rt.retired != st.retired) {
                d.kind = Divergence::Kind::RetiredCount;
                d.cta = static_cast<GridCtaId>(c);
                d.thread = t;
                d.refValue = rt.retired;
                d.simValue = st.retired;
                return d;
            }
            for (unsigned r = 0; r < rt.regs.size(); ++r) {
                if (st.poison >> r & 1)
                    continue; // dropped as dead: undefined by design
                if (rt.regs[r] != st.regs[r]) {
                    d.kind = Divergence::Kind::RegValue;
                    d.cta = static_cast<GridCtaId>(c);
                    d.thread = t;
                    d.reg = static_cast<int>(r);
                    d.refValue = rt.regs[r];
                    d.simValue = st.regs[r];
                    return d;
                }
            }
        }

        if (diffStoreImage(rc.sharedStores, sc.sharedStores, d.addr,
                           d.refValue, d.simValue, d.detail)) {
            d.kind = Divergence::Kind::SharedMem;
            d.cta = static_cast<GridCtaId>(c);
            return d;
        }
    }

    if (diffStoreImage(ref.globalStores, sim.globalStores, d.addr,
                       d.refValue, d.simValue, d.detail)) {
        d.kind = Divergence::Kind::GlobalMem;
        return d;
    }
    return d;
}

Divergence
DiffOracle::checkPolicy(const Kernel &kernel, const GpuConfig &config_in,
                        PolicyKind policy, const ArchState &ref)
{
    GpuConfig config = config_in;
    config.policy.kind = policy;
    config.trackValues = true;

    const SimResult result = Simulator::run(config, kernel);

    Divergence d;
    d.policy = policy;
    if (result.failed) {
        d.kind = Divergence::Kind::RunFailure;
        d.detail = result.failureReason;
        return d;
    }
    if (result.hitCycleLimit ||
        result.completedCtas != kernel.gridCtas()) {
        d.kind = Divergence::Kind::RunFailure;
        d.detail = "run incomplete: " +
                   std::to_string(result.completedCtas) + "/" +
                   std::to_string(kernel.gridCtas()) + " CTAs at cycle " +
                   std::to_string(result.cycles) +
                   (result.hitCycleLimit ? " (cycle cap)" : "");
        return d;
    }
    if (!result.archState) {
        d.kind = Divergence::Kind::RunFailure;
        d.detail = "simulation produced no architectural state even though "
                   "trackValues was set";
        return d;
    }

    d = compare(ref, *result.archState);
    d.policy = policy;
    return d;
}

bool
DiffOracle::Report::pass() const
{
    for (const Divergence &d : results) {
        if (d.any())
            return false;
    }
    return !results.empty();
}

std::string
DiffOracle::Report::toString() const
{
    std::ostringstream oss;
    for (const Divergence &d : results) {
        oss << policyKindName(d.policy) << ": "
            << (d.any() ? d.toString() : "ok") << "\n";
    }
    return oss.str();
}

DiffOracle::Report
DiffOracle::checkAllPolicies(const Kernel &kernel, const GpuConfig &config,
                             const std::vector<PolicyKind> &policies)
{
    static const std::vector<PolicyKind> kAll{
        PolicyKind::Baseline, PolicyKind::VirtualThread, PolicyKind::RegDram,
        PolicyKind::RegMutex, PolicyKind::FineReg};

    const ArchState ref = RefExecutor::execute(kernel, config.seed);

    Report report;
    for (PolicyKind policy : policies.empty() ? kAll : policies)
        report.results.push_back(checkPolicy(kernel, config, policy, ref));
    return report;
}

} // namespace finereg
