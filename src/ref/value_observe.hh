/**
 * @file
 * Observed-execution record for the static-analysis soundness contract:
 * while the reference executor runs a kernel, CtaValues streams every
 * written register value, generated memory address, and warp-level
 * execution into one ValueObservation keyed by static instruction. The
 * cross-validator (ref/value_validator.hh) then asserts each observation
 * lies inside its static abstraction — the dynamic half of the same
 * discipline that lets liveness-check police compiler/liveness.cc.
 * Recording is observation-only: it never draws from the warps' RNG
 * streams, so enabling it cannot perturb executed paths.
 */

#ifndef FINEREG_REF_VALUE_OBSERVE_HH
#define FINEREG_REF_VALUE_OBSERVE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/kernel.hh"

namespace finereg
{

struct InstrObservation
{
    /** Warp-level executions across every warp of every CTA. */
    std::uint64_t execs = 0;

    // Written register values (defs: ALU/SFU and loads) ---------------------
    bool wroteValue = false;
    std::uint32_t valueMin = 0xffffffffu;
    std::uint32_t valueMax = 0;

    /** Some execution wrote different values to different active lanes. */
    bool sawNonUniform = false;

    // Generated addresses ---------------------------------------------------
    bool sawGlobal = false;
    Addr globalMin = ~Addr(0);
    Addr globalMax = 0;

    bool sawShared = false;
    std::uint32_t sharedWordMin = 0xffffffffu;
    std::uint32_t sharedWordMax = 0;
};

struct RegObservation
{
    bool wrote = false;
    std::uint32_t valueMin = 0xffffffffu;
    std::uint32_t valueMax = 0;
};

class ValueObservation
{
  public:
    explicit ValueObservation(const Kernel &kernel)
        : instrs_(kernel.staticInstrs()), regs_(kernel.regsPerThread())
    {}

    void
    noteExec(unsigned instr)
    {
        ++instrs_[instr].execs;
    }

    /** One warp execution wrote @p dst: lane-value envelope and whether
     * the active lanes disagreed. */
    void
    noteWrite(unsigned instr, unsigned dst, std::uint32_t lane_min,
              std::uint32_t lane_max, bool lanes_differ)
    {
        InstrObservation &io = instrs_[instr];
        io.wroteValue = true;
        io.valueMin = lane_min < io.valueMin ? lane_min : io.valueMin;
        io.valueMax = lane_max > io.valueMax ? lane_max : io.valueMax;
        io.sawNonUniform = io.sawNonUniform || lanes_differ;

        RegObservation &ro = regs_[dst];
        ro.wrote = true;
        ro.valueMin = lane_min < ro.valueMin ? lane_min : ro.valueMin;
        ro.valueMax = lane_max > ro.valueMax ? lane_max : ro.valueMax;
    }

    void
    noteGlobalLane(unsigned instr, Addr word_addr)
    {
        InstrObservation &io = instrs_[instr];
        io.sawGlobal = true;
        io.globalMin = word_addr < io.globalMin ? word_addr : io.globalMin;
        io.globalMax = word_addr > io.globalMax ? word_addr : io.globalMax;
    }

    void
    noteSharedLane(unsigned instr, std::uint32_t word_off)
    {
        InstrObservation &io = instrs_[instr];
        io.sawShared = true;
        io.sharedWordMin =
            word_off < io.sharedWordMin ? word_off : io.sharedWordMin;
        io.sharedWordMax =
            word_off > io.sharedWordMax ? word_off : io.sharedWordMax;
    }

    const std::vector<InstrObservation> &instrs() const { return instrs_; }
    const std::vector<RegObservation> &regs() const { return regs_; }

  private:
    std::vector<InstrObservation> instrs_;
    std::vector<RegObservation> regs_;
};

} // namespace finereg

#endif // FINEREG_REF_VALUE_OBSERVE_HH
