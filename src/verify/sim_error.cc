#include "verify/sim_error.hh"

#include <sstream>
#include <utility>

namespace finereg
{

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::None:
        return "none";
      case SimErrorKind::Config:
        return "config";
      case SimErrorKind::InvariantViolation:
        return "invariant-violation";
      case SimErrorKind::Deadlock:
        return "deadlock";
      case SimErrorKind::WorkerException:
        return "worker-exception";
      case SimErrorKind::Cancelled:
        return "cancelled";
      case SimErrorKind::Timeout:
        return "timeout";
      case SimErrorKind::RetriesExhausted:
        return "retries-exhausted";
      case SimErrorKind::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

std::string
SimError::toString() const
{
    std::ostringstream oss;
    oss << simErrorKindName(kind);
    if (!invariant.empty())
        oss << "/" << invariant;
    oss << ": " << message;
    bool first = true;
    auto tag = [&](const char *name, std::uint64_t value, bool show) {
        if (!show)
            return;
        oss << (first ? " (" : ", ") << name << " " << value;
        first = false;
    };
    tag("cta", cta, cta != kInvalidId);
    tag("sm", sm, sm != kInvalidId);
    tag("cycle", cycle, cycle != 0);
    if (!first)
        oss << ")";
    return oss.str();
}

SimException::SimException(SimError error)
    : std::runtime_error(error.toString()), error_(std::move(error))
{
}

void
raiseConfigError(std::string message)
{
    SimError error;
    error.kind = SimErrorKind::Config;
    error.message = std::move(message);
    throw SimException(std::move(error));
}

void
raiseInvariant(std::string invariant, std::string message, GridCtaId cta,
               std::uint32_t sm, Cycle cycle)
{
    SimError error;
    error.kind = SimErrorKind::InvariantViolation;
    error.invariant = std::move(invariant);
    error.message = std::move(message);
    error.cta = cta;
    error.sm = sm;
    error.cycle = cycle;
    throw SimException(std::move(error));
}

void
raiseDeadlock(std::string message, Cycle cycle, std::string diagnostic)
{
    SimError error;
    error.kind = SimErrorKind::Deadlock;
    error.message = std::move(message);
    error.cycle = cycle;
    error.diagnostic = std::move(diagnostic);
    throw SimException(std::move(error));
}

void
raiseTimeout(std::string message, Cycle cycle, std::string diagnostic)
{
    SimError error;
    error.kind = SimErrorKind::Timeout;
    error.message = std::move(message);
    error.cycle = cycle;
    error.diagnostic = std::move(diagnostic);
    throw SimException(std::move(error));
}

void
raiseCancelled(std::string message, Cycle cycle)
{
    SimError error;
    error.kind = SimErrorKind::Cancelled;
    error.message = std::move(message);
    error.cycle = cycle;
    throw SimException(std::move(error));
}

} // namespace finereg
