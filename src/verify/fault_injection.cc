#include "verify/fault_injection.hh"

namespace finereg
{

FaultInjector::FaultInjector(const FaultConfig &config, StatGroup &stats)
    : config_(config), rng_(config.seed),
      hostRng_(config.seed ^ 0xc4a0541abf13ull),
      dramDelays_(&stats.counter("fault.dram_delays")),
      pcrfFulls_(&stats.counter("fault.pcrf_fulls")),
      bitvecMisses_(&stats.counter("fault.bitvec_misses")),
      workerExceptions_(&stats.counter("fault.worker_exceptions")),
      jobHangs_(&stats.counter("fault.job_hangs"))
{
}

Cycle
FaultInjector::dramDelay()
{
    if (!enabled() || config_.dramDelayProb <= 0.0 ||
        !rng_.chance(config_.dramDelayProb)) {
        return 0;
    }
    dramDelays_->inc();
    return config_.dramDelayCycles;
}

bool
FaultInjector::forcePcrfFull()
{
    if (!enabled() || config_.pcrfFullProb <= 0.0 ||
        !rng_.chance(config_.pcrfFullProb)) {
        return false;
    }
    pcrfFulls_->inc();
    return true;
}

bool
FaultInjector::forceBitvecMiss()
{
    if (!enabled() || config_.bitvecMissProb <= 0.0 ||
        !rng_.chance(config_.bitvecMissProb)) {
        return false;
    }
    bitvecMisses_->inc();
    return true;
}

bool
FaultInjector::forceWorkerException()
{
    if (!enabled() || config_.workerExceptionProb <= 0.0 ||
        !hostRng_.chance(config_.workerExceptionProb)) {
        return false;
    }
    workerExceptions_->inc();
    return true;
}

bool
FaultInjector::forceJobHang()
{
    if (!enabled() || config_.jobHangProb <= 0.0 ||
        !hostRng_.chance(config_.jobHangProb)) {
        return false;
    }
    jobHangs_->inc();
    return true;
}

} // namespace finereg
