/**
 * @file
 * Typed, recoverable simulation errors. Library code that detects a broken
 * bookkeeping invariant, an illegal configuration, or a wedged simulation
 * throws SimException instead of aborting the process; Simulator::run
 * catches it and surfaces the SimError on the SimResult so embedders and
 * the bench harness get a structured report instead of a dead process.
 */

#ifndef FINEREG_VERIFY_SIM_ERROR_HH
#define FINEREG_VERIFY_SIM_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace finereg
{

enum class SimErrorKind : unsigned char
{
    None,               ///< No error (default state on SimResult).
    Config,             ///< Illegal configuration or parameters.
    InvariantViolation, ///< Simulator state failed a bookkeeping invariant.
    Deadlock,           ///< Watchdog: no forward progress for too long.
    WorkerException,    ///< Non-SimException escaped a parallel job.
    Cancelled,          ///< Job cancelled (fail-fast or an external kill).
    Timeout,            ///< Wall-clock deadline expired (JobGuard monitor).
    RetriesExhausted,   ///< Every JobGuard attempt failed.
    Quarantined,        ///< Job skipped: its key is on the quarantine list.
};

const char *simErrorKindName(SimErrorKind kind);

/** Structured description of a failed run. */
struct SimError
{
    SimErrorKind kind = SimErrorKind::None;

    /** Human-readable one-line description. */
    std::string message;

    /** Short invariant identifier (e.g. "pcrf-chain", "acrf-accounting");
     * empty for non-invariant errors. */
    std::string invariant;

    /** Grid CTA the violation names, or kInvalidId. */
    GridCtaId cta = kInvalidId;

    /** SM the violation names, or kInvalidId. */
    std::uint32_t sm = kInvalidId;

    /** Simulated cycle at which the error was raised (0 for config
     * errors thrown before simulation starts). */
    Cycle cycle = 0;

    /** Multi-line diagnostic dump (watchdog stall summary); may be empty. */
    std::string diagnostic;

    /** One-line rendering: "kind[/invariant]: message (cta N, sm M, cycle C)". */
    std::string toString() const;
};

/** Carrier exception for SimError. what() returns error().toString(). */
class SimException : public std::runtime_error
{
  public:
    explicit SimException(SimError error);

    const SimError &error() const { return error_; }

  private:
    SimError error_;
};

/** Throw a Config-kind SimException. */
[[noreturn]] void raiseConfigError(std::string message);

/**
 * Throw an InvariantViolation-kind SimException naming @p invariant and
 * (optionally) the CTA/SM/cycle involved.
 */
[[noreturn]] void raiseInvariant(std::string invariant, std::string message,
                                 GridCtaId cta = kInvalidId,
                                 std::uint32_t sm = kInvalidId,
                                 Cycle cycle = 0);

/** Throw a Deadlock-kind SimException carrying a diagnostic dump. */
[[noreturn]] void raiseDeadlock(std::string message, Cycle cycle,
                                std::string diagnostic);

/** Throw a Timeout-kind SimException (cooperative wall-clock cancel). */
[[noreturn]] void raiseTimeout(std::string message, Cycle cycle,
                               std::string diagnostic = {});

/** Throw a Cancelled-kind SimException (external kill, not fail-fast). */
[[noreturn]] void raiseCancelled(std::string message, Cycle cycle);

} // namespace finereg

#endif // FINEREG_VERIFY_SIM_ERROR_HH
