/**
 * @file
 * Configuration for the hardened-core verification layer: the invariant
 * auditor, the deadlock/livelock watchdog, and the deterministic
 * fault-injection harness. Lives in GpuConfig::verify.
 */

#ifndef FINEREG_VERIFY_VERIFY_CONFIG_HH
#define FINEREG_VERIFY_VERIFY_CONFIG_HH

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace finereg
{

/**
 * Cooperative cancellation token shared between a running simulation and
 * whoever supervises it (the JobGuard deadline monitor, the chaos
 * harness's killer thread). The Gpu run loop polls the token once per
 * iteration and aborts the run with a typed Timeout/Cancelled SimError.
 * The first requester wins; later requests are ignored.
 */
class CancelToken
{
  public:
    enum Reason : int
    {
        kNone = 0,
        kTimeout = 1, ///< Wall-clock deadline expired.
        kKilled = 2,  ///< External kill (chaos, shutdown).
    };

    /** Flag a deadline expiry; no-op if already cancelled. */
    void
    requestTimeout()
    {
        int expected = kNone;
        reason_.compare_exchange_strong(expected, kTimeout,
                                        std::memory_order_acq_rel);
    }

    /** Flag an external kill; no-op if already cancelled. */
    void
    requestKill()
    {
        int expected = kNone;
        reason_.compare_exchange_strong(expected, kKilled,
                                        std::memory_order_acq_rel);
    }

    int reason() const { return reason_.load(std::memory_order_acquire); }
    bool cancelled() const { return reason() != kNone; }

  private:
    std::atomic<int> reason_{kNone};
};

/**
 * Deterministic fault injection (seeded from the simulator's Rng). A zero
 * seed disables every injection point; with a nonzero seed each point
 * fires with its configured probability, and the injected schedule is a
 * pure function of the seed and the (deterministic) simulation, so the
 * same seed always produces the same faults.
 */
struct FaultConfig
{
    /** Master switch: 0 disables all injection. */
    std::uint64_t seed = 0;

    /** P(extra delay) per DRAM transfer, and the delay applied. Delaying
     * individual transfers while others proceed also reorders response
     * completion relative to the fault-free schedule. */
    double dramDelayProb = 0.01;
    Cycle dramDelayCycles = 400;

    /** P(the PCRF reports itself full) per canStore query during a CTA
     * switch — forces FineReg onto its PCRF-full fallback paths. */
    double pcrfFullProb = 0.02;

    /** P(a bit-vector cache hit is turned into a miss) per lookup —
     * forces the off-chip 12-byte table fetch. */
    double bitvecMissProb = 0.05;

    // Host-level fault sites (resilience testing). Both are drawn once
    // per run from a side RNG stream so enabling them never perturbs the
    // in-simulation fault schedule above, and neither ever changes
    // simulated results: the dispatch exception aborts the run before any
    // work, and the hang burns wall-clock time only.

    /** P(the worker job throws a plain std::exception at dispatch, before
     * the first simulated cycle) — exercises the WorkerException capture
     * and retry paths. */
    double workerExceptionProb = 0.0;

    /** P(the run hangs at dispatch) — the run loop busy-waits in
     * jobHangSliceMs slices until its cancel token fires or jobHangMaxMs
     * elapse, then continues normally. Exercises deadline enforcement:
     * with a JobGuard timeout the run dies with Timeout; without one it
     * completes with bit-identical results after the stall. */
    double jobHangProb = 0.0;

    /** Sleep granularity of an injected hang (cancel-poll interval). */
    double jobHangSliceMs = 1.0;

    /** Upper bound on an injected hang so unguarded runs always finish. */
    double jobHangMaxMs = 2000.0;

    bool enabled() const { return seed != 0; }

    /** True when either host-level (dispatch-time) fault site is armed. */
    bool
    hostFaultsArmed() const
    {
        return enabled() && (workerExceptionProb > 0.0 || jobHangProb > 0.0);
    }
};

struct VerifyConfig
{
    /**
     * Invariant-auditor period in cycles; 0 disables. With N > 0 the
     * auditor walks the full simulator state at least once every N
     * simulated cycles (at run-loop granularity) and throws a typed
     * SimError on the first violated invariant.
     */
    Cycle auditInterval = 0;

    /**
     * Edge-audit sampling: with auditing enabled, every CTA state
     * transition (launch/suspend/resume/finish) marks its SM for a
     * targeted audit after the policy tick, and every Nth such edge per
     * SM actually runs one. 0 = auto: every edge in Debug builds, every
     * 64th in Release. auditInterval == 1 always audits every edge
     * (full-rate), matching --audit-interval 1 semantics. Transition
     * edges are where the switching invariants can break; the periodic
     * full audit still bounds how long any corruption can hide.
     */
    unsigned auditEdgeEvery = 0;

    /**
     * Deadlock watchdog: fail the run with a structured diagnostic when
     * no instruction issues and no CTA completes for this many cycles.
     * 0 disables. The default fires far below the 20M-cycle safety cap;
     * no legitimate workload idles the whole device this long.
     */
    Cycle watchdogCycles = 2'000'000;

    FaultConfig fault;

    /**
     * Cooperative cancellation token, polled once per run-loop iteration.
     * Null (the default) disables the check. Installed per attempt by the
     * JobGuard deadline monitor; runtime-only, excluded from config
     * fingerprints.
     */
    std::shared_ptr<CancelToken> cancel;
};

} // namespace finereg

#endif // FINEREG_VERIFY_VERIFY_CONFIG_HH
