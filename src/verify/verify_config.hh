/**
 * @file
 * Configuration for the hardened-core verification layer: the invariant
 * auditor, the deadlock/livelock watchdog, and the deterministic
 * fault-injection harness. Lives in GpuConfig::verify.
 */

#ifndef FINEREG_VERIFY_VERIFY_CONFIG_HH
#define FINEREG_VERIFY_VERIFY_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace finereg
{

/**
 * Deterministic fault injection (seeded from the simulator's Rng). A zero
 * seed disables every injection point; with a nonzero seed each point
 * fires with its configured probability, and the injected schedule is a
 * pure function of the seed and the (deterministic) simulation, so the
 * same seed always produces the same faults.
 */
struct FaultConfig
{
    /** Master switch: 0 disables all injection. */
    std::uint64_t seed = 0;

    /** P(extra delay) per DRAM transfer, and the delay applied. Delaying
     * individual transfers while others proceed also reorders response
     * completion relative to the fault-free schedule. */
    double dramDelayProb = 0.01;
    Cycle dramDelayCycles = 400;

    /** P(the PCRF reports itself full) per canStore query during a CTA
     * switch — forces FineReg onto its PCRF-full fallback paths. */
    double pcrfFullProb = 0.02;

    /** P(a bit-vector cache hit is turned into a miss) per lookup —
     * forces the off-chip 12-byte table fetch. */
    double bitvecMissProb = 0.05;

    bool enabled() const { return seed != 0; }
};

struct VerifyConfig
{
    /**
     * Invariant-auditor period in cycles; 0 disables. With N > 0 the
     * auditor walks the full simulator state at least once every N
     * simulated cycles (at run-loop granularity) and throws a typed
     * SimError on the first violated invariant.
     */
    Cycle auditInterval = 0;

    /**
     * Deadlock watchdog: fail the run with a structured diagnostic when
     * no instruction issues and no CTA completes for this many cycles.
     * 0 disables. The default fires far below the 20M-cycle safety cap;
     * no legitimate workload idles the whole device this long.
     */
    Cycle watchdogCycles = 2'000'000;

    FaultConfig fault;
};

} // namespace finereg

#endif // FINEREG_VERIFY_VERIFY_CONFIG_HH
