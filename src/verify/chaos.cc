#include "verify/chaos.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/rng.hh"

namespace finereg
{

namespace
{

constexpr std::uint64_t kVictimSeed = 0xdeadc0de5eedull;

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

enum class ChaosFault
{
    None,
    Exception, ///< Worker throws at dispatch; retried clean.
    Hang,      ///< Short benign hang at dispatch; run then proceeds.
};

/** Pure function of (seed, key, attempt): the whole fault schedule. Faults
 * land on attempt 0 only, so any retry budget >= 1 converges. */
ChaosFault
decideFault(const ChaosOptions &options, const std::string &key,
            unsigned attempt)
{
    if (attempt != 0)
        return ChaosFault::None;
    Rng rng(options.seed ^ fnv1a(key) ^ 0x9e3779b97f4a7c15ull);
    const double draw = rng.uniform();
    if (draw < options.exceptionProb)
        return ChaosFault::Exception;
    if (draw < options.exceptionProb + options.hangProb)
        return ChaosFault::Hang;
    return ChaosFault::None;
}

/**
 * Make the host-level fault sites armable without enabling the in-sim
 * injection points: FaultConfig's master switch is its seed, and the
 * default in-sim probabilities are nonzero, so a config that had faults
 * off needs them explicitly zeroed when we flip the seed on.
 */
void
armHostFaults(GpuConfig &config, std::uint64_t seed)
{
    FaultConfig &fault = config.verify.fault;
    if (fault.enabled())
        return;
    fault.seed = seed | 1;
    fault.dramDelayProb = 0.0;
    fault.pcrfFullProb = 0.0;
    fault.bitvecMissProb = 0.0;
}

bool
sameDouble(double a, double b)
{
    // Bit comparison: the contract is bit-identity, not closeness.
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
sleepMs(double ms)
{
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

} // namespace

std::string
compareSimResults(const SimResult &a, const SimResult &b)
{
    std::ostringstream oss;
    auto diff = [&oss](const char *field, auto va, auto vb) {
        oss << field << ": " << va << " vs " << vb;
    };

#define FINEREG_CMP_INT(field)                                              \
    if (a.field != b.field) {                                               \
        diff(#field, a.field, b.field);                                     \
        return oss.str();                                                   \
    }
#define FINEREG_CMP_DBL(field)                                              \
    if (!sameDouble(a.field, b.field)) {                                    \
        diff(#field, a.field, b.field);                                     \
        return oss.str();                                                   \
    }

    FINEREG_CMP_INT(kernelName)
    FINEREG_CMP_INT(policyName)
    FINEREG_CMP_INT(failed)
    FINEREG_CMP_INT(cycles)
    FINEREG_CMP_INT(instructions)
    FINEREG_CMP_DBL(ipc)
    FINEREG_CMP_INT(hitCycleLimit)
    FINEREG_CMP_INT(completedCtas)
    FINEREG_CMP_DBL(avgResidentCtas)
    FINEREG_CMP_DBL(avgActiveCtas)
    FINEREG_CMP_DBL(avgActiveThreads)
    FINEREG_CMP_INT(dramBytesData)
    FINEREG_CMP_INT(dramBytesCtaContext)
    FINEREG_CMP_INT(dramBytesBitvec)
    FINEREG_CMP_DBL(depletionStallFraction)
    FINEREG_CMP_INT(l1Hits)
    FINEREG_CMP_INT(l1Misses)
    FINEREG_CMP_DBL(rfUsageMean)
    FINEREG_CMP_DBL(rfUsageMin)
    FINEREG_CMP_DBL(rfUsageMax)
    FINEREG_CMP_DBL(stallEpisodeMean)
    FINEREG_CMP_INT(stallEpisodes)
    FINEREG_CMP_DBL(energy.dramDyn)
    FINEREG_CMP_DBL(energy.rfDyn)
    FINEREG_CMP_DBL(energy.othersDyn)
    FINEREG_CMP_DBL(energy.leakage)
    FINEREG_CMP_DBL(energy.fineregOverhead)
    FINEREG_CMP_DBL(energy.ctaSwitching)
    FINEREG_CMP_INT(policyStorageBits)

#undef FINEREG_CMP_INT
#undef FINEREG_CMP_DBL
    return {};
}

std::string
ChaosReport::summary() const
{
    std::ostringstream oss;
    oss << (passed ? "chaos soak PASSED" : "chaos soak FAILED") << ": "
        << totalJobs << " jobs/sweep, " << killedJobs << " killed, "
        << replayedJobs << " replayed from journal on resume, "
        << injectedFaults << " faults injected, " << timeouts
        << " deadline timeouts, " << retries << " retries";
    if (!mismatches.empty()) {
        oss << "; " << mismatches.size() << " failure(s):";
        for (const std::string &m : mismatches)
            oss << "\n  - " << m;
    }
    return oss.str();
}

ChaosReport
runChaosSoak(const ChaosOptions &options)
{
    ChaosReport report;
    const auto &apps = Suite::all();

    std::vector<GpuConfig> configs;
    configs.reserve(options.policies.size());
    for (const PolicyKind kind : options.policies)
        configs.push_back(Experiment::configFor(kind));
    report.totalJobs =
        static_cast<unsigned>(configs.size() * apps.size());

    // Ground truth: clean, serial, unguarded.
    const auto baseline =
        Experiment::runSweep(configs, options.gridScale, /*jobs=*/1);

    std::atomic<unsigned> injected{0};
    auto chaos_hook = [opts = options, &injected](GpuConfig &cfg,
                                                  const std::string &key,
                                                  unsigned attempt) {
        const ChaosFault fault = decideFault(opts, key, attempt);
        if (fault == ChaosFault::None)
            return;
        injected.fetch_add(1, std::memory_order_relaxed);
        armHostFaults(cfg, opts.seed ^ fnv1a(key));
        if (fault == ChaosFault::Exception) {
            cfg.verify.fault.workerExceptionProb = 1.0;
        } else {
            cfg.verify.fault.jobHangProb = 1.0;
            cfg.verify.fault.jobHangSliceMs = 1.0;
            cfg.verify.fault.jobHangMaxMs = opts.benignHangMs;
        }
    };

    GuardOptions guard_options;
    guard_options.retries = options.retries;
    guard_options.backoffBaseMs = 0.5;
    guard_options.backoffMaxMs = 2.0;

    // Start from a clean journal: the soak owns this path.
    std::remove(options.journalPath.c_str());

    // Interrupted rounds: kill the sweep mid-flight (stop flag drops
    // pending jobs, killAll() aborts in-flight attempts), each round
    // reloading the journal from disk exactly like a --resume would.
    for (unsigned round = 0; round < options.rounds; ++round) {
        std::string error;
        auto journal = SweepJournal::open(options.journalPath, error);
        if (!journal) {
            report.mismatches.push_back("round " + std::to_string(round) +
                                        ": " + error);
            return report;
        }

        auto stop = std::make_shared<std::atomic<bool>>(false);
        JobGuard guard(guard_options);

        GuardedSweepOptions sweep;
        sweep.gridScale = options.gridScale;
        sweep.jobs = options.jobs;
        sweep.journal = journal.get();
        sweep.guardInstance = &guard;
        sweep.stop = stop;
        sweep.perAttempt = chaos_hook;

        GuardedSweepOutcome outcome;
        std::thread runner(
            [&] { outcome = Experiment::runGuardedSweep(configs, sweep); });
        sleepMs(options.killDelayMs * (round + 1));
        stop->store(true);
        guard.killAll();
        runner.join();

        report.killedJobs += outcome.cancelled;
        report.retries += outcome.guardStats.retriesScheduled;
        report.timeouts += outcome.guardStats.timeouts;
    }

    // Final round: resume from the journal and run to completion.
    {
        std::string error;
        auto journal = SweepJournal::open(options.journalPath, error);
        if (!journal) {
            report.mismatches.push_back("final resume: " + error);
            return report;
        }
        GuardedSweepOptions sweep;
        sweep.gridScale = options.gridScale;
        sweep.jobs = options.jobs;
        sweep.guard = guard_options;
        sweep.journal = journal.get();
        sweep.perAttempt = chaos_hook;

        const GuardedSweepOutcome final_outcome =
            Experiment::runGuardedSweep(configs, sweep);
        report.replayedJobs = final_outcome.replayed;
        report.retries += final_outcome.guardStats.retriesScheduled;
        report.timeouts += final_outcome.guardStats.timeouts;

        for (std::size_t c = 0; c < configs.size(); ++c) {
            for (std::size_t a = 0; a < apps.size(); ++a) {
                const SimResult &got = final_outcome.results[c][a];
                const std::string cell = apps[a].abbrev + "/" +
                                         policyKindName(configs[c].policy.kind);
                if (got.failed) {
                    report.mismatches.push_back(
                        cell + " failed after resume: " +
                        got.error.toString());
                    continue;
                }
                const std::string diff =
                    compareSimResults(got, baseline[c][a]);
                if (!diff.empty())
                    report.mismatches.push_back(
                        cell + " diverged from clean serial run (" + diff +
                        ")");
            }
        }
    }

    // Timeout victim: first attempt hangs far past the deadline, dies with
    // a typed Timeout, and the clean retry must be bit-exact.
    if (options.victimTimeoutMs > 0.0) {
        GuardOptions victim_guard = guard_options;
        victim_guard.jobTimeoutMs = options.victimTimeoutMs;
        victim_guard.retries = 1;
        JobGuard guard(victim_guard);

        const auto kernel =
            Suite::makeKernel(apps.front(), options.gridScale);
        const GpuConfig &config = configs.front();
        const SimResult got = guard.runGuarded(
            "chaos-timeout-victim",
            [&](unsigned attempt, std::shared_ptr<CancelToken> token) {
                GpuConfig cfg = config;
                cfg.verify.cancel = std::move(token);
                if (attempt == 0) {
                    armHostFaults(cfg, options.seed);
                    cfg.verify.fault.jobHangProb = 1.0;
                    cfg.verify.fault.jobHangSliceMs = 1.0;
                    cfg.verify.fault.jobHangMaxMs = 600'000.0;
                }
                return Simulator::run(cfg, *kernel);
            });
        report.timeouts += guard.stats().timeouts;
        ++report.injectedFaults;
        if (guard.stats().timeouts == 0)
            report.mismatches.push_back(
                "timeout victim: deadline never tripped");
        if (got.failed)
            report.mismatches.push_back(
                "timeout victim failed terminally: " + got.error.toString());
        else if (got.attempts != 2)
            report.mismatches.push_back(
                "timeout victim: expected 2 attempts, saw " +
                std::to_string(got.attempts));
        else {
            const std::string diff =
                compareSimResults(got, baseline[0][0]);
            if (!diff.empty())
                report.mismatches.push_back(
                    "timeout victim diverged after retry (" + diff + ")");
        }
    }

    // Quarantine isolation: a poisoned config row fails every attempt and
    // must quarantine; its duplicate row is skipped outright; a healthy
    // sibling row stays bit-exact. Serial, so row order is deterministic.
    if (options.quarantineCheck) {
        GpuConfig victim = configs.front();
        victim.seed = kVictimSeed; // distinct key identity for the row
        GuardedSweepOptions sweep;
        sweep.gridScale = options.gridScale;
        sweep.jobs = 1;
        sweep.guard = guard_options;
        sweep.guard.retries = 1;
        sweep.perAttempt = [seed = options.seed](GpuConfig &cfg,
                                                 const std::string &,
                                                 unsigned) {
            if (cfg.seed == kVictimSeed) {
                armHostFaults(cfg, seed);
                cfg.verify.fault.workerExceptionProb = 1.0;
            }
        };
        const GuardedSweepOutcome iso = Experiment::runGuardedSweep(
            {configs.front(), victim, victim}, sweep);
        for (std::size_t a = 0; a < apps.size(); ++a) {
            if (iso.results[0][a].failed) {
                report.mismatches.push_back(
                    "quarantine check: healthy row app " + apps[a].abbrev +
                    " failed: " + iso.results[0][a].error.toString());
                continue;
            }
            const std::string diff =
                compareSimResults(iso.results[0][a], baseline[0][a]);
            if (!diff.empty())
                report.mismatches.push_back(
                    "quarantine check: healthy row app " + apps[a].abbrev +
                    " diverged (" + diff + ")");
            if (iso.results[1][a].error.kind !=
                SimErrorKind::RetriesExhausted)
                report.mismatches.push_back(
                    "quarantine check: poisoned row app " + apps[a].abbrev +
                    " expected retries-exhausted, saw " +
                    std::string(simErrorKindName(
                        iso.results[1][a].error.kind)));
            if (iso.results[2][a].error.kind != SimErrorKind::Quarantined)
                report.mismatches.push_back(
                    "quarantine check: duplicate poisoned row app " +
                    apps[a].abbrev + " expected quarantined skip, saw " +
                    std::string(simErrorKindName(
                        iso.results[2][a].error.kind)));
        }
        report.injectedFaults +=
            static_cast<unsigned>(2 * apps.size());
    }

    report.injectedFaults += injected.load(std::memory_order_relaxed);
    report.passed = report.mismatches.empty();
    return report;
}

} // namespace finereg
