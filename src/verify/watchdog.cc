#include "verify/watchdog.hh"

#include <algorithm>
#include <sstream>

#include "policies/finereg_policy.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

/** Why a warp cannot issue right now, for the diagnostic histogram. */
enum class WarpStall : unsigned
{
    Issuable,
    Finished,
    Barrier,
    IssueShadow, ///< earliestIssue() still in the future (latency/switch).
    Memory,      ///< Scoreboard blocked on a global-memory load.
    Execution,   ///< Scoreboard blocked on a short-latency dependence.
    kCount,
};

const char *const kStallNames[] = {"issuable",     "finished", "barrier",
                                   "issue-shadow", "memory",   "execution"};

WarpStall
classifyWarp(const Warp &warp, Cycle now)
{
    if (warp.finished())
        return WarpStall::Finished;
    if (warp.atBarrier())
        return WarpStall::Barrier;
    if (warp.earliestIssue() > now)
        return WarpStall::IssueShadow;
    if (warp.pastEnd())
        return WarpStall::Issuable; // retires at next pick
    const Instruction &instr = warp.currentInstr();
    Scoreboard &sb = const_cast<Scoreboard &>(warp.scoreboard());
    if (sb.readyCycle(instr, now) <= now)
        return WarpStall::Issuable;
    return warp.scoreboard().blockedOnMemory(instr, now)
               ? WarpStall::Memory
               : WarpStall::Execution;
}

} // namespace

std::string
buildStallDiagnostic(Gpu &gpu, Cycle now, Cycle last_progress)
{
    std::ostringstream oss;
    const CtaDispatcher &disp = gpu.dispatcher();
    oss << "=== stall diagnostic @ cycle " << now << " ===\n";
    oss << "last forward progress: cycle " << last_progress << " ("
        << now - last_progress << " cycles ago)\n";
    oss << "dispatcher: " << disp.completed() << "/" << disp.gridCtas()
        << " CTAs complete, " << disp.remaining() << " undispatched\n";

    const auto *finereg =
        dynamic_cast<const FineRegPolicy *>(&gpu.policy());

    for (auto &sm : gpu.sms()) {
        oss << "sm " << sm->id() << ": " << sm->activeCtaCount()
            << " active / " << sm->pendingCtaCount() << " pending / "
            << sm->residentCtas().size() << " resident CTAs";
        if (gpu.policy().rfDepletionBlocked(*sm, now))
            oss << " [rf-depletion-blocked]";
        oss << "\n";

        unsigned counts[static_cast<unsigned>(WarpStall::kCount)] = {};
        Cycle earliest_wake = kNoCycle;
        unsigned mem_blocked_warps = 0;
        for (const auto &cta : sm->residentCtas()) {
            if (cta->state() != CtaState::Active)
                continue;
            for (const auto &warp : cta->warps()) {
                const WarpStall reason = classifyWarp(*warp, now);
                ++counts[static_cast<unsigned>(reason)];
                if (reason == WarpStall::Memory) {
                    ++mem_blocked_warps;
                    earliest_wake = std::min(
                        earliest_wake,
                        warp->scoreboard().lastPendingCycle(now));
                } else if (reason == WarpStall::IssueShadow) {
                    earliest_wake =
                        std::min(earliest_wake, warp->earliestIssue());
                }
            }
        }
        oss << "  active warps:";
        for (unsigned r = 0; r < static_cast<unsigned>(WarpStall::kCount);
             ++r) {
            if (counts[r] > 0)
                oss << " " << kStallNames[r] << "=" << counts[r];
        }
        if (mem_blocked_warps > 0 && earliest_wake != kNoCycle) {
            oss << " (earliest operand return: cycle " << earliest_wake
                << ")";
        }
        oss << "\n";

        if (finereg) {
            const Pcrf &pcrf = finereg->pcrfOf(*sm);
            const RegFileAllocator &acrf = finereg->acrfOf(*sm);
            oss << "  acrf: " << acrf.usedWarpRegs() << "/"
                << acrf.capacityWarpRegs() << " warp-regs, pcrf: "
                << pcrf.numEntries() - pcrf.freeEntries() << "/"
                << pcrf.numEntries() << " entries over "
                << pcrf.numPendingCtas() << " chains\n";
        }
        for (const auto &cta : sm->residentCtas()) {
            if (cta->state() != CtaState::Pending)
                continue;
            oss << "  pending cta " << cta->gridId();
            if (finereg) {
                oss << ": " << finereg->pcrfOf(*sm).liveCountOf(cta->gridId())
                    << " live regs in pcrf, ready at cycle "
                    << finereg->pendingReadyOf(*sm, cta->gridId());
            }
            oss << "\n";
        }
    }
    return oss.str();
}

void
DeadlockWatchdog::check(Gpu &gpu, Cycle now) const
{
    if (!enabled() || now < lastProgress_ || now - lastProgress_ < threshold_)
        return;
    std::ostringstream msg;
    msg << "no instruction issued and no CTA completed for "
        << now - lastProgress_ << " cycles (threshold " << threshold_ << ")";
    raiseDeadlock(msg.str(), now,
                  buildStallDiagnostic(gpu, now, lastProgress_));
}

} // namespace finereg
