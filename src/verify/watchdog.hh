/**
 * @file
 * Deadlock/livelock watchdog. Tracks the last cycle at which the device
 * made forward progress (an instruction issued or a CTA completed); when
 * the gap exceeds the configured threshold it builds a structured stall
 * diagnostic (per-SM warp block reasons, register-file occupancy, pending
 * CTA queues, dispatcher state) and fails the run with a typed Deadlock
 * SimError instead of silently running to the cycle cap.
 */

#ifndef FINEREG_VERIFY_WATCHDOG_HH
#define FINEREG_VERIFY_WATCHDOG_HH

#include <string>

#include "common/types.hh"

namespace finereg
{

class Gpu;

/**
 * Render a multi-line stall summary of the whole device: why each SM's
 * warps cannot issue, where every resident CTA's registers live, and what
 * the dispatcher still owes. Shared by the watchdog (deadlock reports) and
 * the cycle-limit path (partial-run reports).
 */
std::string buildStallDiagnostic(Gpu &gpu, Cycle now, Cycle last_progress);

class DeadlockWatchdog
{
  public:
    /** @p threshold_cycles of no progress trigger the watchdog; 0 off. */
    explicit DeadlockWatchdog(Cycle threshold_cycles)
        : threshold_(threshold_cycles)
    {
    }

    bool enabled() const { return threshold_ > 0; }

    /** Record forward progress (instruction issue / CTA completion). */
    void noteProgress(Cycle now) { lastProgress_ = now; }

    Cycle lastProgress() const { return lastProgress_; }

    /**
     * Throw a Deadlock SimException (with diagnostic) when @p now is more
     * than the threshold past the last recorded progress.
     */
    void check(Gpu &gpu, Cycle now) const;

  private:
    Cycle threshold_;
    Cycle lastProgress_ = 0;
};

} // namespace finereg

#endif // FINEREG_VERIFY_WATCHDOG_HH
