/**
 * @file
 * Chaos harness: end-to-end proof that the resilience stack (JobGuard,
 * SweepJournal, cancel tokens, host-level fault sites) preserves sweep
 * correctness under adversity. A soak runs the same policy sweep twice:
 *
 *  1. a clean, serial, unguarded run — the ground truth;
 *  2. a guarded run beaten up with deterministic chaos — injected
 *     worker exceptions and dispatch hangs on early attempts, a forced
 *     hang-past-deadline timeout victim, and mid-sweep kills that abort
 *     in-flight jobs and drop pending ones — journaled throughout, then
 *     resumed until complete.
 *
 * The harness asserts the final merged results are bit-identical to the
 * clean run, field by field. Every chaos decision is a pure function of
 * (seed, job key, attempt), so a failing soak reproduces exactly.
 */

#ifndef FINEREG_VERIFY_CHAOS_HH
#define FINEREG_VERIFY_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace finereg
{

struct ChaosOptions
{
    /** Master seed for every chaos decision (fault placement). */
    std::uint64_t seed = 0xc4a05u;

    /** Interrupted (killed mid-sweep) rounds before the final resume. */
    unsigned rounds = 2;

    /** Policies swept (each over the full 18-app suite). */
    std::vector<PolicyKind> policies{PolicyKind::Baseline,
                                     PolicyKind::FineReg};

    /** Grid scale for every run (small keeps the soak fast). */
    double gridScale = 0.04;

    /** Worker count for chaos rounds (the baseline is always serial). */
    unsigned jobs = 4;

    /** Retries per job; must exceed the attempts chaos faults (faults are
     * injected on attempt 0 only, so >= 1 guarantees convergence). */
    unsigned retries = 2;

    /** P(injected worker exception on attempt 0) per job. */
    double exceptionProb = 0.3;

    /** P(benign short dispatch hang on attempt 0) per job. */
    double hangProb = 0.15;

    /** Duration of a benign injected hang (well under any deadline). */
    double benignHangMs = 20.0;

    /** Wall-clock delay before each round's mid-sweep kill. */
    double killDelayMs = 50.0;

    /** Per-attempt deadline for the timeout-victim check; the victim's
     * first attempt hangs far past it and must die with Timeout, then
     * succeed bit-exactly on the clean retry. 0 skips the check. */
    double victimTimeoutMs = 1500.0;

    /** Journal path for the killed/resumed rounds (a .sweep.jsonl file;
     * deleted and recreated at soak start). */
    std::string journalPath = "chaos.sweep.jsonl";

    /** Also verify quarantine isolation: a poisoned config row that fails
     * every attempt must quarantine without disturbing its siblings. */
    bool quarantineCheck = true;
};

struct ChaosReport
{
    bool passed = false;

    unsigned totalJobs = 0;     ///< Cells per sweep (configs x apps).
    unsigned killedJobs = 0;    ///< Cancelled results across chaos rounds.
    unsigned replayedJobs = 0;  ///< Journal replays in the final round.
    unsigned injectedFaults = 0;///< Host faults armed across all attempts.
    std::uint64_t timeouts = 0; ///< Deadlines tripped (victim check).
    std::uint64_t retries = 0;  ///< Retries scheduled across all rounds.

    /** Human-readable failures; empty when passed. */
    std::vector<std::string> mismatches;

    /** One-paragraph outcome for logs. */
    std::string summary() const;
};

/** Run the full soak described above. Deterministic per options. */
ChaosReport runChaosSoak(const ChaosOptions &options);

/**
 * Field-by-field comparison of two results, ignoring resilience metadata
 * (attempts, fromJournal) and wall-clock artefacts. Returns an empty
 * string when bit-identical, else a "field: a vs b" description.
 */
std::string compareSimResults(const SimResult &a, const SimResult &b);

} // namespace finereg

#endif // FINEREG_VERIFY_CHAOS_HH
