/**
 * @file
 * Invariant auditor: a configurable-period walk over the full simulator
 * state that cross-checks the bookkeeping the register-management schemes
 * depend on. Generic checks (CTA/warp/slot accounting, shared-memory sums,
 * scoreboard sanity, dispatcher conservation) live here; policy-specific
 * checks (PCRF chain integrity, ACRF accounting, CTA-status-monitor
 * legality) are delegated to Policy::audit. The first violated invariant
 * raises a typed InvariantViolation SimError naming the CTA and invariant.
 */

#ifndef FINEREG_VERIFY_INVARIANT_AUDITOR_HH
#define FINEREG_VERIFY_INVARIANT_AUDITOR_HH

#include "common/types.hh"

namespace finereg
{

class Gpu;
class Sm;

class InvariantAuditor
{
  public:
    /** @p interval_cycles between audits; 0 disables. */
    explicit InvariantAuditor(Cycle interval_cycles)
        : interval_(interval_cycles)
    {
    }

    bool enabled() const { return interval_ > 0; }
    Cycle interval() const { return interval_; }

    /**
     * Walk the whole device and throw an InvariantViolation SimException
     * on the first broken invariant. Also callable with a disabled
     * auditor (tests audit final state explicitly).
     */
    void audit(Gpu &gpu, Cycle now) const;

    /**
     * Audit one SM (and its policy state) only — the targeted check the
     * sampled edge auditor runs after a CTA state transition, without
     * paying for a whole-device walk.
     */
    void auditSm(Gpu &gpu, Sm &sm, Cycle now) const;

    /**
     * Effective edge-audit sampling period (see
     * VerifyConfig::auditEdgeEvery): every edge at interval 1 or in Debug
     * builds, every 64th edge in Release unless overridden.
     */
    unsigned
    edgeSamplePeriod(unsigned configured) const
    {
        if (interval_ == 1)
            return 1;
        if (configured > 0)
            return configured;
#ifndef NDEBUG
        return 1;
#else
        return 64;
#endif
    }

  private:
    void auditDispatcher(Gpu &gpu, Cycle now) const;

    Cycle interval_;
};

} // namespace finereg

#endif // FINEREG_VERIFY_INVARIANT_AUDITOR_HH
