/**
 * @file
 * Invariant auditor: a configurable-period walk over the full simulator
 * state that cross-checks the bookkeeping the register-management schemes
 * depend on. Generic checks (CTA/warp/slot accounting, shared-memory sums,
 * scoreboard sanity, dispatcher conservation) live here; policy-specific
 * checks (PCRF chain integrity, ACRF accounting, CTA-status-monitor
 * legality) are delegated to Policy::audit. The first violated invariant
 * raises a typed InvariantViolation SimError naming the CTA and invariant.
 */

#ifndef FINEREG_VERIFY_INVARIANT_AUDITOR_HH
#define FINEREG_VERIFY_INVARIANT_AUDITOR_HH

#include "common/types.hh"

namespace finereg
{

class Gpu;
class Sm;

class InvariantAuditor
{
  public:
    /** @p interval_cycles between audits; 0 disables. */
    explicit InvariantAuditor(Cycle interval_cycles)
        : interval_(interval_cycles)
    {
    }

    bool enabled() const { return interval_ > 0; }
    Cycle interval() const { return interval_; }

    /**
     * Walk the whole device and throw an InvariantViolation SimException
     * on the first broken invariant. Also callable with a disabled
     * auditor (tests audit final state explicitly).
     */
    void audit(Gpu &gpu, Cycle now) const;

  private:
    void auditSm(Gpu &gpu, Sm &sm, Cycle now) const;
    void auditDispatcher(Gpu &gpu, Cycle now) const;

    Cycle interval_;
};

} // namespace finereg

#endif // FINEREG_VERIFY_INVARIANT_AUDITOR_HH
