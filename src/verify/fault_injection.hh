/**
 * @file
 * Deterministic fault-injection harness. One FaultInjector per Gpu, shared
 * by every injection point (DRAM delay, forced PCRF-full, forced bit-vector
 * cache miss). All draws come from a single Rng seeded with
 * FaultConfig::seed; because the simulator itself is deterministic, the
 * sequence of injection-point queries — and therefore the injected fault
 * schedule — is a pure function of the seed.
 */

#ifndef FINEREG_VERIFY_FAULT_INJECTION_HH
#define FINEREG_VERIFY_FAULT_INJECTION_HH

#include "common/rng.hh"
#include "common/stats.hh"
#include "verify/verify_config.hh"

namespace finereg
{

class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &config, StatGroup &stats);

    bool enabled() const { return config_.enabled(); }

    /** Extra DRAM latency for this transfer: 0 or dramDelayCycles. */
    Cycle dramDelay();

    /** True when this canStore query must report the PCRF full. */
    bool forcePcrfFull();

    /** True when this bit-vector cache hit must be treated as a miss. */
    bool forceBitvecMiss();

    // Host-level sites (drawn once per run, at dispatch). These consume a
    // separate RNG stream derived from the seed, so arming them never
    // shifts the in-simulation fault schedule above.

    /** True when this run must throw a plain exception at dispatch. */
    bool forceWorkerException();

    /** True when this run must hang at dispatch (deadline testing). */
    bool forceJobHang();

    const FaultConfig &config() const { return config_; }

    /** Injection counts (also exported as fault.* stats counters). */
    std::uint64_t injectedDramDelays() const { return dramDelays_->value(); }
    std::uint64_t injectedPcrfFulls() const { return pcrfFulls_->value(); }
    std::uint64_t injectedBitvecMisses() const
    {
        return bitvecMisses_->value();
    }
    std::uint64_t injectedWorkerExceptions() const
    {
        return workerExceptions_->value();
    }
    std::uint64_t injectedJobHangs() const { return jobHangs_->value(); }

  private:
    FaultConfig config_;
    Rng rng_;
    Rng hostRng_; ///< Separate stream for the dispatch-time sites.

    Counter *dramDelays_;
    Counter *pcrfFulls_;
    Counter *bitvecMisses_;
    Counter *workerExceptions_;
    Counter *jobHangs_;
};

} // namespace finereg

#endif // FINEREG_VERIFY_FAULT_INJECTION_HH
