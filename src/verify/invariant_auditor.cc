#include "verify/invariant_auditor.hh"

#include <sstream>

#include "policies/policy.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

[[noreturn]] void
fail(const char *invariant, const std::string &message, GridCtaId cta,
     std::uint32_t sm, Cycle now)
{
    raiseInvariant(invariant, message, cta, sm, now);
}

} // namespace

void
InvariantAuditor::audit(Gpu &gpu, Cycle now) const
{
    for (auto &sm : gpu.sms())
        auditSm(gpu, *sm, now);
    auditDispatcher(gpu, now);
}

void
InvariantAuditor::auditSm(Gpu &gpu, Sm &sm, Cycle now) const
{
    const Kernel &kernel = sm.context().kernel();
    const SmConfig &cfg = sm.config();
    const std::uint32_t sm_id = sm.id();

    unsigned active = 0;
    std::uint64_t shmem_expected = 0;
    for (const auto &cta : sm.residentCtas()) {
        if (cta->state() == CtaState::Done) {
            fail("cta-state",
                 "Done CTA still resident after the retire stage",
                 cta->gridId(), sm_id, now);
        }
        if (cta->state() == CtaState::Active)
            ++active;
        shmem_expected += kernel.shmemPerCta();

        unsigned finished = 0;
        for (const auto &warp : cta->warps())
            finished += warp->finished() ? 1 : 0;
        if (finished != cta->finishedWarps()) {
            std::ostringstream oss;
            oss << "finished-warp counter reads " << cta->finishedWarps()
                << " but " << finished << " warps are finished";
            fail("warp-accounting", oss.str(), cta->gridId(), sm_id, now);
        }

        for (const auto &warp : cta->warps()) {
            const Scoreboard &sb = warp->scoreboard();
            bool bad_reg = false;
            bool mem_not_pending = false;
            sb.pendingMask().forEach([&](RegIndex r) {
                if (r >= kernel.regsPerThread())
                    bad_reg = true;
            });
            sb.memPendingMask().forEach([&](RegIndex r) {
                if (!sb.pendingMask().test(r))
                    mem_not_pending = true;
            });
            if (bad_reg) {
                std::ostringstream oss;
                oss << "warp " << warp->id()
                    << " scoreboard tracks a register >= regsPerThread ("
                    << kernel.regsPerThread() << ")";
                fail("scoreboard-range", oss.str(), cta->gridId(), sm_id,
                     now);
            }
            if (mem_not_pending) {
                std::ostringstream oss;
                oss << "warp " << warp->id()
                    << " scoreboard marks a memory write that is not "
                       "pending";
                fail("scoreboard-mem", oss.str(), cta->gridId(), sm_id, now);
            }
        }
    }

    if (active != sm.activeCtaCount()) {
        std::ostringstream oss;
        oss << "active-CTA counter reads " << sm.activeCtaCount() << " but "
            << active << " resident CTAs are Active";
        fail("cta-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (sm.activeWarpSlotsUsed() != active * kernel.warpsPerCta()) {
        std::ostringstream oss;
        oss << "warp-slot counter reads " << sm.activeWarpSlotsUsed()
            << " but " << active << " active CTAs need "
            << active * kernel.warpsPerCta();
        fail("slot-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (sm.activeThreadSlotsUsed() != active * kernel.threadsPerCta()) {
        std::ostringstream oss;
        oss << "thread-slot counter reads " << sm.activeThreadSlotsUsed()
            << " but " << active << " active CTAs need "
            << active * kernel.threadsPerCta();
        fail("slot-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (sm.shmemUsed() != shmem_expected) {
        std::ostringstream oss;
        oss << "shared-memory counter reads " << sm.shmemUsed()
            << " B but resident CTAs account for " << shmem_expected << " B";
        fail("shmem-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (active > cfg.maxCtas ||
        sm.activeWarpSlotsUsed() > cfg.maxWarps ||
        sm.activeThreadSlotsUsed() > cfg.maxThreads) {
        fail("slot-limits", "active CTA/warp/thread slots exceed Table I "
                            "scheduler limits",
             kInvalidId, sm_id, now);
    }
    if (sm.residentCtas().size() > cfg.maxResidentCtas ||
        sm.residentWarpCount() > cfg.maxResidentWarps) {
        fail("residency-limits",
             "resident CTAs/warps exceed the residency caps", kInvalidId,
             sm_id, now);
    }

    // The hot path trusts incrementally maintained counters; re-derive
    // each from a full scan so drift is caught at the next audit.
    if (sm.pendingCtaCount() != sm.scanPendingCtaCount()) {
        std::ostringstream oss;
        oss << "pending-CTA counter reads " << sm.pendingCtaCount()
            << " but " << sm.scanPendingCtaCount()
            << " resident CTAs are Pending";
        fail("cta-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (sm.residentWarpCount() != sm.scanResidentWarpCount()) {
        std::ostringstream oss;
        oss << "resident-warp counter reads " << sm.residentWarpCount()
            << " but resident CTAs hold " << sm.scanResidentWarpCount()
            << " warps";
        fail("warp-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (sm.activeLiveWarps() != sm.scanActiveLiveWarps()) {
        std::ostringstream oss;
        oss << "active-live-warp counter reads " << sm.activeLiveWarps()
            << " but active CTAs hold " << sm.scanActiveLiveWarps()
            << " unfinished warps";
        fail("warp-accounting", oss.str(), kInvalidId, sm_id, now);
    }

    // The policies' per-tick scans iterate the compact state lists; they
    // must mirror residentCtas() filtered by state, in the same order.
    {
        std::size_t a = 0, p = 0;
        const auto &alist = sm.activeCtaList();
        const auto &plist = sm.pendingCtaList();
        bool list_ok = true;
        for (const auto &cta : sm.residentCtas()) {
            if (cta->state() == CtaState::Active)
                list_ok = list_ok && a < alist.size() &&
                          alist[a++] == cta.get();
            else if (cta->state() == CtaState::Pending)
                list_ok = list_ok && p < plist.size() &&
                          plist[p++] == cta.get();
        }
        if (!list_ok || a != alist.size() || p != plist.size()) {
            fail("cta-accounting",
                 "active/pending CTA lists diverge from resident set",
                 kInvalidId, sm_id, now);
        }
    }

    // Policy-specific invariants: PCRF chains, ACRF accounting, monitor
    // legality, SRP holdings — whatever the bound scheme maintains.
    gpu.policy().audit(sm, now);
}

void
InvariantAuditor::auditDispatcher(Gpu &gpu, Cycle now) const
{
    const CtaDispatcher &disp = gpu.dispatcher();
    const unsigned popped = disp.gridCtas() - disp.remaining();
    unsigned resident = 0;
    for (auto &sm : gpu.sms())
        resident += sm->residentCtas().size();
    if (disp.completed() > disp.gridCtas() ||
        popped != disp.completed() + resident) {
        std::ostringstream oss;
        oss << "grid accounting broken: " << popped << " CTAs dispatched, "
            << disp.completed() << " completed, " << resident
            << " resident";
        fail("dispatch-conservation", oss.str(), kInvalidId, kInvalidId,
             now);
    }
}

} // namespace finereg
