#include "core/cli_options.hh"

#include <sstream>

#include "workloads/suite.hh"

namespace finereg
{

namespace
{

/** Split "a,b,c" into tokens. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty())
            out.push_back(token);
    }
    return out;
}

ParseResult
fail(const std::string &message)
{
    ParseResult result;
    result.error = message;
    return result;
}

} // namespace

std::optional<PolicyKind>
parsePolicyName(const std::string &name)
{
    if (name == "baseline" || name == "base")
        return PolicyKind::Baseline;
    if (name == "vt" || name == "virtualthread" || name == "virtual-thread")
        return PolicyKind::VirtualThread;
    if (name == "regdram" || name == "reg+dram" || name == "zorua")
        return PolicyKind::RegDram;
    if (name == "regmutex" || name == "vt+regmutex")
        return PolicyKind::RegMutex;
    if (name == "finereg")
        return PolicyKind::FineReg;
    return std::nullopt;
}

ParseResult
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions options;

    auto need_value = [&](std::size_t i,
                          const std::string &flag) -> std::optional<std::string> {
        if (i + 1 >= args.size())
            return std::nullopt;
        (void)flag;
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];

        if (arg == "--help" || arg == "-h") {
            options.help = true;
        } else if (arg == "--list-apps") {
            options.listApps = true;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--diff-check") {
            options.diffCheck = true;
        } else if (arg == "--unified-memory") {
            options.config.policy.unifiedMemory = true;
        } else if (arg == "--app") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--app needs a value");
            ++i;
            for (const auto &name : splitList(*value)) {
                bool known = false;
                for (const auto &app : Suite::all())
                    known = known || app.abbrev == name;
                if (!known)
                    return fail("unknown app '" + name +
                                "' (see --list-apps)");
                options.apps.push_back(name);
            }
        } else if (arg == "--policy") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--policy needs a value");
            ++i;
            options.policies.clear();
            for (const auto &name : splitList(*value)) {
                if (name == "all") {
                    options.policies = {
                        PolicyKind::Baseline, PolicyKind::VirtualThread,
                        PolicyKind::RegDram, PolicyKind::RegMutex,
                        PolicyKind::FineReg};
                    continue;
                }
                const auto kind = parsePolicyName(name);
                if (!kind)
                    return fail("unknown policy '" + name + "'");
                options.policies.push_back(*kind);
            }
            if (options.policies.empty())
                return fail("--policy selected nothing");
        } else if (arg == "--scale") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--scale needs a value");
            ++i;
            options.gridScale = std::atof(value->c_str());
            if (options.gridScale <= 0.0)
                return fail("--scale must be positive");
        } else if (arg == "--jobs") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--jobs needs a value");
            ++i;
            const int jobs = std::atoi(value->c_str());
            if (jobs <= 0)
                return fail("--jobs must be positive");
            options.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--sms") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--sms needs a value");
            ++i;
            const int sms = std::atoi(value->c_str());
            if (sms <= 0)
                return fail("--sms must be positive");
            options.config.numSms = static_cast<unsigned>(sms);
        } else if (arg == "--acrf" || arg == "--pcrf") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail(arg + " needs a value (KB)");
            ++i;
            const long kb = std::atol(value->c_str());
            if (kb <= 0)
                return fail(arg + " must be positive KB");
            if (arg == "--acrf")
                options.config.policy.acrfBytes = kb * 1024ull;
            else
                options.config.policy.pcrfBytes = kb * 1024ull;
        } else if (arg == "--srp-ratio") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--srp-ratio needs a value");
            ++i;
            const double ratio = std::atof(value->c_str());
            if (ratio < 0.0 || ratio >= 1.0)
                return fail("--srp-ratio must be in [0, 1)");
            options.config.policy.srpRatio = ratio;
        } else if (arg == "--growth-factor") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--growth-factor needs a value");
            ++i;
            options.config.policy.pendingGrowthFactor =
                std::atof(value->c_str());
        } else if (arg == "--sched") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--sched needs gto or lrr");
            ++i;
            if (*value == "gto")
                options.config.sm.sched = SchedKind::GTO;
            else if (*value == "lrr")
                options.config.sm.sched = SchedKind::LRR;
            else
                return fail("--sched must be gto or lrr");
        } else if (arg == "--seed") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--seed needs a value");
            ++i;
            options.config.seed =
                static_cast<std::uint64_t>(std::atoll(value->c_str()));
        } else if (arg == "--max-cycles") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--max-cycles needs a value");
            ++i;
            const long long cap = std::atoll(value->c_str());
            if (cap <= 0)
                return fail("--max-cycles must be positive");
            options.config.maxCycles = static_cast<Cycle>(cap);
        } else if (arg == "--audit-interval") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--audit-interval needs a value");
            ++i;
            const long long interval = std::atoll(value->c_str());
            if (interval < 0)
                return fail("--audit-interval must be >= 0");
            options.config.verify.auditInterval =
                static_cast<Cycle>(interval);
        } else if (arg == "--audit-edge-every") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--audit-edge-every needs a value");
            ++i;
            const long long every = std::atoll(value->c_str());
            if (every < 0)
                return fail("--audit-edge-every must be >= 0");
            options.config.verify.auditEdgeEvery =
                static_cast<unsigned>(every);
        } else if (arg == "--idle-skip") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--idle-skip needs wheel, scan, or step");
            ++i;
            if (*value == "wheel")
                options.config.idleSkip = IdleSkipMode::Wheel;
            else if (*value == "scan")
                options.config.idleSkip = IdleSkipMode::LegacyScan;
            else if (*value == "step")
                options.config.idleSkip = IdleSkipMode::StepEveryCycle;
            else
                return fail("--idle-skip must be wheel, scan, or step");
        } else if (arg == "--watchdog-cycles") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--watchdog-cycles needs a value");
            ++i;
            const long long cycles = std::atoll(value->c_str());
            if (cycles < 0)
                return fail("--watchdog-cycles must be >= 0");
            options.config.verify.watchdogCycles =
                static_cast<Cycle>(cycles);
        } else if (arg == "--fault-seed") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--fault-seed needs a value");
            ++i;
            options.config.verify.fault.seed =
                static_cast<std::uint64_t>(std::atoll(value->c_str()));
        } else if (arg == "--fault-dram" || arg == "--fault-pcrf" ||
                   arg == "--fault-bitvec") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail(arg + " needs a probability");
            ++i;
            const double prob = std::atof(value->c_str());
            if (prob < 0.0 || prob > 1.0)
                return fail(arg + " must be in [0, 1]");
            if (arg == "--fault-dram")
                options.config.verify.fault.dramDelayProb = prob;
            else if (arg == "--fault-pcrf")
                options.config.verify.fault.pcrfFullProb = prob;
            else
                options.config.verify.fault.bitvecMissProb = prob;
        } else if (arg == "--fault-worker" || arg == "--fault-hang") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail(arg + " needs a probability");
            ++i;
            const double prob = std::atof(value->c_str());
            if (prob < 0.0 || prob > 1.0)
                return fail(arg + " must be in [0, 1]");
            if (arg == "--fault-worker")
                options.config.verify.fault.workerExceptionProb = prob;
            else
                options.config.verify.fault.jobHangProb = prob;
        } else if (arg == "--job-timeout-ms") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--job-timeout-ms needs a value");
            ++i;
            const double ms = std::atof(value->c_str());
            if (ms < 0.0)
                return fail("--job-timeout-ms must be >= 0");
            options.jobTimeoutMs = ms;
        } else if (arg == "--retries") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--retries needs a value");
            ++i;
            const int retries = std::atoi(value->c_str());
            if (retries < 0)
                return fail("--retries must be >= 0");
            options.retries = static_cast<unsigned>(retries);
        } else if (arg == "--retry-backoff-ms") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--retry-backoff-ms needs a value");
            ++i;
            const double ms = std::atof(value->c_str());
            if (ms <= 0.0)
                return fail("--retry-backoff-ms must be positive");
            options.retryBackoffMs = ms;
        } else if (arg == "--resume") {
            const auto value = need_value(i, arg);
            if (!value)
                return fail("--resume needs a journal path");
            ++i;
            options.resumePath = *value;
        } else {
            return fail("unknown flag '" + arg + "' (see --help)");
        }
    }

    // FineReg's split must stay consistent with the register file when
    // only one side was overridden.
    const auto rf = options.config.sm.regFileBytes;
    auto &policy = options.config.policy;
    if (policy.acrfBytes + policy.pcrfBytes != rf) {
        if (policy.acrfBytes < rf)
            policy.pcrfBytes = rf - policy.acrfBytes;
        else
            return fail("--acrf must be smaller than the register file");
    }

    ParseResult result;
    result.options = std::move(options);
    return result;
}

std::string
cliUsage()
{
    return "finereg_sim — run the FineReg GPU simulator\n"
           "\n"
           "usage: finereg_sim [flags]\n"
           "  --app NAME[,..]     suite apps to run (default: all 18)\n"
           "  --policy NAME[,..]  baseline|vt|regdram|regmutex|finereg|all\n"
           "                      (default: baseline,finereg)\n"
           "  --scale X           grid scale factor (default 1.0)\n"
           "  --jobs N            parallel simulation jobs (default:\n"
           "                      FINEREG_JOBS env, then hardware threads)\n"
           "  --sms N             number of SMs (default 16)\n"
           "  --acrf KB           FineReg ACRF size (PCRF = RF - ACRF)\n"
           "  --pcrf KB           FineReg PCRF size\n"
           "  --srp-ratio X       RegMutex shared-pool fraction\n"
           "  --growth-factor X   pending-growth damper\n"
           "  --sched gto|lrr     warp scheduler (default gto)\n"
           "  --unified-memory    pool PCRF/shmem/L1 (Sec. VI-G3)\n"
           "  --seed N            simulation seed\n"
           "  --max-cycles N      safety cap\n"
           "  --audit-interval N  run the invariant auditor every N cycles\n"
           "                      (0 = off, default)\n"
           "  --audit-edge-every N  audit every Nth CTA state-transition\n"
           "                      edge (0 = auto: every edge in Debug,\n"
           "                      every 64th in Release; interval 1 always\n"
           "                      audits every edge)\n"
           "  --idle-skip MODE    idle-cycle skipper: wheel (event wheel,\n"
           "                      default), scan (legacy full scan), or\n"
           "                      step (step every cycle); all modes are\n"
           "                      bit-identical\n"
           "  --watchdog-cycles N deadlock watchdog threshold (0 = off,\n"
           "                      default 2000000)\n"
           "  --fault-seed N      enable deterministic fault injection\n"
           "                      (0 = off, default)\n"
           "  --fault-dram P      injected DRAM-delay probability\n"
           "  --fault-pcrf P      injected PCRF-full probability\n"
           "  --fault-bitvec P    injected bit-vector-cache-miss probability\n"
           "  --fault-worker P    injected dispatch-exception probability\n"
           "                      (host-level; never changes sim results)\n"
           "  --fault-hang P      injected dispatch-hang probability\n"
           "                      (host-level; never changes sim results)\n"
           "  --job-timeout-ms MS per-attempt wall-clock deadline enforced\n"
           "                      by the job guard (0 = off, default)\n"
           "  --retries N         retry budget for transient job failures\n"
           "                      (timeouts, worker exceptions; default 0)\n"
           "  --retry-backoff-ms MS  base of the seeded exponential retry\n"
           "                      backoff (default 5)\n"
           "  --resume FILE       journal completed jobs to FILE (created\n"
           "                      if missing) and replay jobs already\n"
           "                      recorded there instead of re-running\n"
           "  --csv               CSV output (one row per run)\n"
           "  --diff-check        diff every run's architectural end state\n"
           "                      against the reference executor\n"
           "  --list-apps         print the benchmark suite and exit\n"
           "  --verbose           enable status logging\n"
           "  --help              this text\n";
}

} // namespace finereg
