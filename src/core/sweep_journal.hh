/**
 * @file
 * SweepJournal: a durable, append-only record of sweep execution. Each
 * completed job is appended as one JSON line keyed by
 * (kernel-hash, config-hash, policy, seed); on startup a resumed sweep
 * loads the journal, replays finished jobs from their recorded results
 * (bit-identical: every double round-trips through %.17g) and re-runs
 * only missing, failed, or cancelled jobs. The key scheme is
 * content-addressed — the same (kernel, config, policy, seed) always maps
 * to the same key — which is exactly the dedup a resident sweep service
 * needs for its result cache.
 *
 * File format (extension .sweep.jsonl):
 *   line 1   {"schema":"finereg-sweep-journal","version":1}
 *   line 2.. one flat JSON object per completed job
 * A version mismatch is rejected with a clear error, never misparsed;
 * trailing garbage (a line torn by a crash mid-append) is dropped with a
 * warning, keeping every intact entry before it.
 */

#ifndef FINEREG_CORE_SWEEP_JOURNAL_HH
#define FINEREG_CORE_SWEEP_JOURNAL_HH

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/simulator.hh"

namespace finereg
{

class Kernel;
struct GpuConfig;

/** Stable FNV-1a fingerprint of a finalized kernel: launch geometry plus
 * every static instruction (opcode, operands, control flow, memory
 * pattern). Two kernels with the same fingerprint run identically. */
std::uint64_t kernelFingerprint(const Kernel &kernel);

/**
 * Stable FNV-1a fingerprint over every result-affecting GpuConfig knob
 * EXCEPT the policy kind and the seed (those are separate key parts) and
 * the runtime-only members (the cancel token, host-level fault sites —
 * dispatch exceptions and hangs never change simulated results).
 */
std::uint64_t configFingerprint(const GpuConfig &config);

/** The content-addressed identity of one sweep job. */
struct SweepJobKey
{
    std::uint64_t kernelHash = 0;
    std::uint64_t configHash = 0;
    std::string policy;
    std::uint64_t seed = 0;

    /** "k<hex>-c<hex>-<policy>-s<hex>" — the journal's key string. */
    std::string toString() const;
};

/** Build the key for running @p kernel under @p config. */
SweepJobKey makeSweepJobKey(const Kernel &kernel, const GpuConfig &config);

/** One journal line. */
struct JournalEntry
{
    std::string key;
    std::string app;    ///< Suite abbreviation (repro convenience).
    std::string status; ///< "ok", "failed", or "quarantined".
    double wallMs = 0.0;
    SimResult result; ///< Full condensed result (archState excluded).

    bool ok() const { return status == "ok"; }
};

class SweepJournal
{
  public:
    static constexpr unsigned kVersion = 1;
    static constexpr const char *kSchema = "finereg-sweep-journal";

    /**
     * Open @p path for resume + append: load any existing entries
     * (validating the schema header) and position for appending. Creates
     * the file with a fresh header when it does not exist. Returns null
     * and sets @p error on a stale/foreign/corrupt header.
     */
    static std::unique_ptr<SweepJournal> open(const std::string &path,
                                              std::string &error);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    const std::string &path() const { return path_; }

    /** Latest entry for @p key, or nullptr. Thread-safe. */
    const JournalEntry *find(const std::string &key) const;

    /** Append one entry and flush it to disk. Thread-safe; later entries
     * for the same key supersede earlier ones on future loads. */
    void append(const JournalEntry &entry);

    /** Number of distinct keys loaded + appended so far. */
    std::size_t size() const;

    /** Distinct keys whose latest status is "ok". */
    std::size_t completedCount() const;

    /** All current entries (latest per key), unordered. */
    std::vector<JournalEntry> entries() const;

  private:
    SweepJournal(std::string path, std::FILE *file);

    std::string path_;
    std::FILE *file_;

    mutable std::mutex mutex_;
    std::map<std::string, JournalEntry> latest_;
};

/** Serialize one entry as a single JSON line (no trailing newline). */
std::string journalEntryToJson(const JournalEntry &entry);

/** Parse one journal line; nullopt on malformed input. */
std::optional<JournalEntry> journalEntryFromJson(const std::string &line);

} // namespace finereg

#endif // FINEREG_CORE_SWEEP_JOURNAL_HH
