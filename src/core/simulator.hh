/**
 * @file
 * Simulator: the library's main entry point. Wraps Gpu construction and
 * execution, applies unified-on-chip-memory (UM) config transforms
 * (Sec. VI-G3), and condenses a finished run's stat group into a SimResult
 * that benches and tests consume directly.
 */

#ifndef FINEREG_CORE_SIMULATOR_HH
#define FINEREG_CORE_SIMULATOR_HH

#include <memory>
#include <string>

#include "core/gpu_config.hh"
#include "energy/energy_model.hh"
#include "isa/kernel.hh"
#include "policies/policy.hh"
#include "verify/sim_error.hh"

namespace finereg
{

struct ArchState;

/** Condensed outcome of one kernel execution. */
struct SimResult
{
    std::string kernelName;
    std::string policyName;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    bool hitCycleLimit = false;
    unsigned completedCtas = 0;

    /** Time-averaged per-SM occupancy. */
    double avgResidentCtas = 0.0;
    double avgActiveCtas = 0.0;
    double avgActiveThreads = 0.0;

    /** Off-chip traffic split (Fig. 15). */
    std::uint64_t dramBytesData = 0;
    std::uint64_t dramBytesCtaContext = 0;
    std::uint64_t dramBytesBitvec = 0;
    std::uint64_t dramBytesTotal() const
    {
        return dramBytesData + dramBytesCtaContext + dramBytesBitvec;
    }

    /** Fraction of cycles stalled on RF depletion (Fig. 14). */
    double depletionStallFraction = 0.0;

    /** L1 behaviour (aggregated over SMs). */
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;

    /** Fig. 5 register-usage window stats (when usageTracking was on). */
    double rfUsageMean = 0.0;
    double rfUsageMin = 0.0;
    double rfUsageMax = 0.0;

    /** Table III stall-episode stats (when stallProbe was on). */
    double stallEpisodeMean = 0.0;
    std::uint64_t stallEpisodes = 0;

    /** Fig. 16 energy stack. */
    EnergyBreakdown energy;

    /** Scheme storage overhead (Sec. V-F), bits. */
    std::uint64_t policyStorageBits = 0;

    /**
     * Host-side performance counters: where the simulator's own wall
     * time went, not simulated behaviour. All informational — none of
     * these affect simulated cycles, and bench_diff.py ignores them when
     * comparing against goldens.
     */
    struct HostPerf
    {
        std::uint64_t loopIterations = 0; ///< Run-loop ticks executed.
        std::uint64_t skippedCycles = 0;  ///< Cycles the event wheel skipped.
        std::uint64_t wheelPushes = 0;    ///< EventWheel schedule() announcements.
        std::uint64_t wheelPops = 0;      ///< EventWheel heap drains.
        std::uint64_t arenaAllocs = 0;    ///< PCRF chain-entry writes (arena slots).
        std::uint64_t arenaBytes = 0;     ///< Modelled bytes through the arena.
        std::uint64_t bitvecWordOps = 0;  ///< 64-bit bitvector word operations.
        std::uint64_t fullAudits = 0;     ///< Periodic full-state audit invocations.
        std::uint64_t edgeAudits = 0;     ///< State-transition-edge audit invocations.
    };
    HostPerf hostPerf;

    /** Attempts it took to produce this result (JobGuard retries; 1 for
     * unguarded runs and first-try successes). */
    unsigned attempts = 1;

    /** True when this result was replayed from a sweep journal instead of
     * being re-simulated (--resume). */
    bool fromJournal = false;

    /** True when the run aborted with a typed SimError (see error). */
    bool failed = false;

    /** The error that aborted the run; kind is None on success. */
    SimError error;

    /** Human-readable failure summary, empty on success. */
    std::string failureReason;

    /** Watchdog-style stall dump when the cycle cap was hit. */
    std::string stallDiagnostic;

    /** Architectural end state (null unless config.trackValues was set). */
    std::shared_ptr<const ArchState> archState;
};

class Simulator
{
  public:
    /**
     * Run @p kernel under @p config to completion.
     *
     * @param policy optional pre-built policy (nullptr selects from
     *               config.policy.kind).
     */
    static SimResult run(const GpuConfig &config, const Kernel &kernel,
                         std::unique_ptr<Policy> policy = nullptr);

    /**
     * The UM transform applied to a config before construction: carves the
     * 272 KB pooled store into shared memory, (for FineReg) PCRF, and L1
     * according to the kernel's declared demand.
     */
    static GpuConfig applyUnifiedMemory(GpuConfig config,
                                        const Kernel &kernel);
};

} // namespace finereg

#endif // FINEREG_CORE_SIMULATOR_HH
