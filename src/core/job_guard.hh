/**
 * @file
 * JobGuard: the resilience layer around ParallelRunner jobs. Wraps each
 * job with
 *
 *  - a wall-clock deadline, enforced by one shared monitor thread that
 *    trips the attempt's CancelToken when the deadline passes (the Gpu
 *    run loop polls the token and aborts with a typed Timeout error — the
 *    same cooperative hook the watchdog and cycle cap use);
 *  - a bounded retry policy with seeded exponential backoff. Only a
 *    configurable set of SimErrorKinds is retried (transient host-side
 *    faults: timeouts, worker exceptions — deterministic simulation
 *    errors would fail identically every time). Each attempt rebuilds the
 *    Gpu from the same config, so per-warp RNGs are reseeded and a
 *    retried run is bit-exact with a clean one;
 *  - a quarantine list: a job whose key exhausts every attempt is
 *    recorded and later submissions of the same key are skipped
 *    immediately with SimErrorKind::Quarantined, so one poisoned
 *    (app, policy, config) cell can never take the rest of a sweep down.
 */

#ifndef FINEREG_CORE_JOB_GUARD_HH
#define FINEREG_CORE_JOB_GUARD_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_runner.hh"
#include "verify/verify_config.hh"

namespace finereg
{

/** Bit for @p kind in GuardOptions::retryOn. */
constexpr unsigned
retryMask(SimErrorKind kind)
{
    return 1u << static_cast<unsigned>(kind);
}

/** Knobs for one JobGuard instance (shared by every wrapped job). */
struct GuardOptions
{
    /** Per-attempt wall-clock deadline in milliseconds; 0 disables. */
    double jobTimeoutMs = 0.0;

    /** Extra attempts after the first (0 = never retry). */
    unsigned retries = 0;

    /** Exponential backoff before attempt k: base * 2^(k-1), jittered to
     * [0.5x, 1.5x) by a per-(key, attempt) seeded draw, capped at max. */
    double backoffBaseMs = 5.0;
    double backoffMaxMs = 250.0;

    /** Seed of the backoff jitter stream (mixed with the job key). */
    std::uint64_t backoffSeed = 0x5eedbacc0ffull;

    /** Bitmask (retryMask) of error kinds worth retrying. Everything else
     * fails immediately: deterministic errors (Config,
     * InvariantViolation, Deadlock) would reproduce bit-exactly, and
     * Cancelled is an external decision. */
    unsigned retryOn = retryMask(SimErrorKind::Timeout) |
                       retryMask(SimErrorKind::WorkerException);

    /** Record keys that exhaust every attempt and skip them on later
     * submissions. */
    bool quarantine = true;
};

/** One quarantined job key and why it got there. */
struct QuarantineEntry
{
    std::string key;
    unsigned attempts = 0;
    SimError lastError;
};

class JobGuard
{
  public:
    /**
     * One retryable unit of work. The guard calls it once per attempt
     * with the attempt index (0-based) and the CancelToken the deadline
     * monitor will trip; the attempt must install the token into its
     * GpuConfig (config.verify.cancel) for the deadline to be
     * enforceable.
     */
    using Attempt =
        std::function<SimResult(unsigned attempt,
                                std::shared_ptr<CancelToken> cancel)>;

    explicit JobGuard(GuardOptions options = {});
    ~JobGuard();

    JobGuard(const JobGuard &) = delete;
    JobGuard &operator=(const JobGuard &) = delete;

    /**
     * Wrap @p attempt into a ParallelRunner::Job that applies the
     * deadline/retry/quarantine policy. @p key identifies the job for
     * quarantine and backoff seeding (use SweepJobKey::toString()).
     * The returned result carries the attempt count on
     * SimResult::attempts.
     */
    ParallelRunner::Job wrap(std::string key, Attempt attempt);

    /** Convenience: wrap and run a single attempt inline. */
    SimResult runGuarded(const std::string &key, Attempt attempt);

    /** Trip every in-flight attempt's CancelToken with kKilled (the
     * chaos harness's mid-sweep kill). Pending pool jobs are skipped via
     * ParallelOptions::stop, not here. */
    void killAll();

    /** True when @p key is on the quarantine list. */
    bool isQuarantined(const std::string &key) const;

    /** Snapshot of the quarantine list (stable order: first-quarantined
     * first). */
    std::vector<QuarantineEntry> quarantined() const;

    /** Pre-seed the quarantine list (journal resume). */
    void quarantineKey(const std::string &key, unsigned attempts,
                       SimError last_error);

    /** Totals across every wrapped job so far. */
    struct Stats
    {
        std::uint64_t attemptsStarted = 0;
        std::uint64_t retriesScheduled = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t quarantineSkips = 0;
    };
    Stats stats() const;

    const GuardOptions &options() const { return options_; }

  private:
    struct Deadline
    {
        std::chrono::steady_clock::time_point expires;
        std::shared_ptr<CancelToken> token;
    };

    /** Register @p token to be timed out at now + jobTimeoutMs; returns a
     * lease id for release(). Starts the monitor thread on first use. */
    std::uint64_t watch(std::shared_ptr<CancelToken> token);
    void release(std::uint64_t lease);

    void monitorLoop();

    SimResult quarantinedResult(const std::string &key) const;

    GuardOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Deadline> inflight_;
    std::uint64_t nextLease_ = 1;
    bool shutdown_ = false;
    std::thread monitor_;
    bool monitorStarted_ = false;

    std::vector<QuarantineEntry> quarantine_;
    Stats stats_;
};

} // namespace finereg

#endif // FINEREG_CORE_JOB_GUARD_HH
