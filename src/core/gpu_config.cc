#include "core/gpu_config.hh"

#include <sstream>

namespace finereg
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline: return "Baseline";
      case PolicyKind::VirtualThread: return "VirtualThread";
      case PolicyKind::RegDram: return "Reg+DRAM";
      case PolicyKind::RegMutex: return "VT+RegMutex";
      case PolicyKind::FineReg: return "FineReg";
    }
    return "?";
}

GpuConfig
GpuConfig::gtx980()
{
    GpuConfig config;
    config.numSms = 16;
    config.clockGhz = 1.126;

    config.sm.maxCtas = 32;
    config.sm.maxWarps = 64;
    config.sm.maxThreads = 2048;
    config.sm.numSchedulers = 4;
    config.sm.sched = SchedKind::GTO;
    config.sm.regFileBytes = 256 * 1024;
    config.sm.shmemBytes = 96 * 1024;

    config.mem.l1 = CacheConfig{48 * 1024, 8, 128, 28, 64};
    config.mem.l2 = CacheConfig{2048 * 1024, 8, 128, 300, 256, true};
    // 352.5 GB/s at 1.126 GHz core clock.
    config.mem.dram.bytesPerCycle = 352.5e9 / 1.126e9;
    config.mem.dram.accessLatency = 500;
    return config;
}

std::string
GpuConfig::toString() const
{
    std::ostringstream oss;
    oss << "# of SMs                    " << numSms << '\n'
        << "Clock frequency             " << clockGhz * 1000 << "MHz\n"
        << "SIMD width                  " << kWarpSize << '\n'
        << "Max # of warps per SM       " << sm.maxWarps << '\n'
        << "Max # of threads per SM     " << sm.maxThreads << '\n'
        << "Max CTAs per SM             " << sm.maxCtas << '\n'
        << "# of warp schedulers per SM " << sm.numSchedulers << '\n'
        << "Warp scheduling             "
        << (sm.sched == SchedKind::GTO ? "Greedy-then-oldest (GTO)"
                                       : "Loose round-robin (LRR)")
        << '\n'
        << "Register file size per SM   " << sm.regFileBytes / 1024 << "KB\n"
        << "Shared memory size per SM   " << sm.shmemBytes / 1024 << "KB\n"
        << "L1 cache size per SM        " << mem.l1.sizeBytes / 1024 << "KB, "
        << mem.l1.assoc << "-way\n"
        << "L2 shared cache size        " << mem.l2.sizeBytes / 1024 << "KB, "
        << mem.l2.assoc << "-way\n"
        << "Off-chip DRAM bandwidth     "
        << mem.dram.bytesPerCycle * clockGhz << "GB/s\n"
        << "Policy                      " << policyKindName(policy.kind)
        << '\n';
    return oss.str();
}

} // namespace finereg
