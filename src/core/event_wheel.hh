/**
 * @file
 * EventWheel: the next-wakeup priority queue behind the simulator's idle
 * cycle skipper. Every timing source that can make a stalled GPU
 * schedulable again (warp earliest-issue updates, scoreboard writeback
 * completions, retire chains) pushes its absolute wake cycle here; when a
 * tick issues nothing, Gpu::run advances the clock straight to the
 * earliest future event instead of stepping cycle by cycle.
 *
 * Soundness contract (see DESIGN.md §14): the wheel wake time is always
 * <= the exact scan (Sm::nextWakeCycle) wake time, because every value
 * the scan can report was pushed at the moment it was set. Extra or
 * stale wakes are harmless — a tick where nothing is schedulable mutates
 * no simulated state — so end states are bit-identical to stepping every
 * cycle.
 */

#ifndef FINEREG_CORE_EVENT_WHEEL_HH
#define FINEREG_CORE_EVENT_WHEEL_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace finereg
{

class EventWheel
{
  public:
    /**
     * Start a tick at @p now. Events at or before @p now are dropped:
     * the tick underway observes the state they announced. Called once
     * per run-loop iteration, before any unit can schedule().
     */
    void
    beginTick(Cycle now)
    {
        now_ = now;
        immediate_ = false;
        while (!heap_.empty() && heap_.front() <= now_) {
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
            heap_.pop_back();
            ++pops_;
        }
    }

    /** Announce that something may become schedulable at absolute @p cycle. */
    void
    schedule(Cycle cycle)
    {
        if (cycle <= now_)
            return; // covered by the tick in progress
        ++pushes_;
        if (cycle == now_ + 1) {
            // The overwhelmingly common case (issue at now, retry at
            // now+1) never touches the heap.
            immediate_ = true;
            return;
        }
        // Dedupe against recent heap pushes. A ring entry > now_ is
        // still in the heap (beginTick only drains entries <= now), so
        // a duplicate push cannot change nextEvent() and is skipped.
        // Fixed-latency units pushing now+L every tick make duplicates
        // the norm, not the exception.
        for (Cycle recent : recent_)
            if (recent == cycle)
                return;
        recent_[recentAt_] = cycle;
        recentAt_ = (recentAt_ + 1) % kRecent;
        heap_.push_back(cycle);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }

    /**
     * Earliest scheduled event strictly after the tick begun by
     * beginTick(); kNoCycle if none. beginTick() drained everything at
     * or before now, so the heap minimum is already in the future.
     */
    Cycle
    nextEvent() const
    {
        if (immediate_)
            return now_ + 1;
        return heap_.empty() ? kNoCycle : heap_.front();
    }

    void
    clear()
    {
        heap_.clear();
        immediate_ = false;
        now_ = 0;
        recent_.fill(0);
        recentAt_ = 0;
    }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::size_t pendingEvents() const { return heap_.size() + immediate_; }

  private:
    // Min-heap of absolute cycles (lazily drained at beginTick). Stale
    // entries — for warps that were suspended or retired after pushing —
    // are fine: they produce no-op ticks, never missed wakes.
    std::vector<Cycle> heap_;
    Cycle now_ = 0;
    bool immediate_ = false;
    // Last few heap pushes, for duplicate suppression. Zero-initialised
    // entries never match (schedule() rejects cycle <= now_ first).
    static constexpr std::size_t kRecent = 8;
    std::array<Cycle, kRecent> recent_{};
    std::size_t recentAt_ = 0;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
};

} // namespace finereg

#endif // FINEREG_CORE_EVENT_WHEEL_HH
