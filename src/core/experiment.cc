#include "core/experiment.hh"

#include <chrono>
#include <iterator>

#include "common/log.hh"
#include "core/parallel_runner.hh"

namespace finereg
{

SimResult
Experiment::runApp(const std::string &abbrev, const GpuConfig &config,
                   double grid_scale)
{
    const SuiteEntry &app = Suite::byName(abbrev);
    const auto kernel = Suite::makeKernel(app, grid_scale);
    return Simulator::run(config, *kernel);
}

std::vector<SimResult>
Experiment::runSuite(const GpuConfig &config, double grid_scale,
                     unsigned jobs)
{
    auto sweep = runSweep({config}, grid_scale, jobs);
    return std::move(sweep.front());
}

std::vector<std::vector<SimResult>>
Experiment::runSweep(const std::vector<GpuConfig> &configs,
                     double grid_scale, unsigned jobs)
{
    const auto &apps = Suite::all();
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(configs.size() * apps.size());
    for (const auto &config : configs) {
        for (const auto &app : apps) {
            matrix.push_back([config, abbrev = app.abbrev, grid_scale] {
                return runApp(abbrev, config, grid_scale);
            });
        }
    }

    ParallelRunner runner({.jobs = jobs, .failFast = false, .stop = {}});
    std::vector<SimResult> flat = runner.run(std::move(matrix));

    std::vector<std::vector<SimResult>> out(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        out[c].assign(
            std::make_move_iterator(flat.begin() + c * apps.size()),
            std::make_move_iterator(flat.begin() + (c + 1) * apps.size()));
    }
    return out;
}

ParallelRunner::Job
Experiment::makeGuardedJob(
    std::shared_ptr<const Kernel> kernel, const GpuConfig &config,
    std::string app, std::string key, JobGuard &guard,
    SweepJournal *journal,
    std::function<void(GpuConfig &, const std::string &, unsigned)>
        per_attempt)
{
    using MsClock = std::chrono::steady_clock;

    if (journal) {
        const JournalEntry *prev = journal->find(key);
        if (prev && prev->ok())
            return [result = prev->result] { return result; };
    }

    JobGuard::Attempt run_attempt =
        [config, kernel = std::move(kernel), key,
         per_attempt = std::move(per_attempt)](
            unsigned attempt,
            std::shared_ptr<CancelToken> token) -> SimResult {
        GpuConfig cfg = config;
        cfg.verify.cancel = std::move(token);
        if (per_attempt)
            per_attempt(cfg, key, attempt);
        return Simulator::run(cfg, *kernel);
    };

    return [guarded = guard.wrap(key, std::move(run_attempt)),
            key = std::move(key), app = std::move(app), journal] {
        const auto start = MsClock::now();
        SimResult result = guarded();
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   MsClock::now() - start)
                                   .count();
        if (journal) {
            JournalEntry entry;
            entry.key = key;
            entry.app = app;
            entry.status = !result.failed ? "ok"
                           : result.error.kind == SimErrorKind::Quarantined
                               ? "quarantined"
                               : "failed";
            entry.wallMs = wall_ms;
            entry.result = result;
            // Journal entries carry condensed stats only.
            entry.result.archState.reset();
            entry.result.stallDiagnostic.clear();
            journal->append(entry);
        }
        return result;
    };
}

GuardedSweepOutcome
Experiment::runGuardedSweep(const std::vector<GpuConfig> &configs,
                            const GuardedSweepOptions &options)
{
    const auto &apps = Suite::all();

    GuardedSweepOutcome out;
    out.results.resize(configs.size());
    out.keys.assign(configs.size(),
                    std::vector<std::string>(apps.size()));

    // Build each kernel once; kernels are immutable after finalization and
    // shared across configs, attempts, and journal-key computation.
    std::vector<std::shared_ptr<const Kernel>> kernels;
    kernels.reserve(apps.size());
    for (const auto &app : apps)
        kernels.push_back(Suite::makeKernel(app, options.gridScale));

    std::unique_ptr<JobGuard> owned;
    JobGuard *guard = options.guardInstance;
    if (!guard) {
        owned = std::make_unique<JobGuard>(options.guard);
        guard = owned.get();
    }

    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(configs.size() * apps.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const std::string key =
                makeSweepJobKey(*kernels[a], configs[c]).toString();
            out.keys[c][a] = key;
            matrix.push_back(makeGuardedJob(kernels[a], configs[c],
                                            apps[a].abbrev, key, *guard,
                                            options.journal,
                                            options.perAttempt));
        }
    }

    ParallelRunner runner(
        {.jobs = options.jobs, .failFast = false, .stop = options.stop});
    std::vector<SimResult> flat = runner.run(std::move(matrix));

    for (const SimResult &result : flat) {
        if (result.fromJournal) {
            ++out.replayed;
            continue;
        }
        if (!result.failed) {
            ++out.executed;
            continue;
        }
        ++out.failed;
        if (result.error.kind == SimErrorKind::Cancelled)
            ++out.cancelled;
        else if (result.error.kind == SimErrorKind::Quarantined)
            ++out.quarantined;
    }
    out.guardStats = guard->stats();
    out.quarantine = guard->quarantined();

    for (std::size_t c = 0; c < configs.size(); ++c) {
        out.results[c].assign(
            std::make_move_iterator(flat.begin() + c * apps.size()),
            std::make_move_iterator(flat.begin() + (c + 1) * apps.size()));
    }
    return out;
}

GuardedSweepOutcome
Experiment::runGuardedSuite(const GpuConfig &config,
                            const GuardedSweepOptions &options)
{
    return runGuardedSweep({config}, options);
}

std::map<std::string, double>
Experiment::normalizedIpc(const std::vector<SimResult> &results,
                          const std::vector<SimResult> &baseline)
{
    std::map<std::string, double> out;
    for (const auto &result : results) {
        for (const auto &base : baseline) {
            if (base.kernelName == result.kernelName) {
                out[result.kernelName] = speedup(result, base);
                break;
            }
        }
    }
    return out;
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values)
{
    std::vector<double> v;
    v.reserve(values.size());
    for (const auto &[app, value] : values)
        v.push_back(value);
    return mean(v);
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values,
                         const std::vector<std::string> &apps)
{
    std::vector<double> v;
    for (const auto &app : apps) {
        const auto it = values.find(app);
        if (it != values.end())
            v.push_back(it->second);
    }
    return mean(v);
}

GpuConfig
Experiment::configFor(PolicyKind kind)
{
    GpuConfig config = GpuConfig::gtx980();
    config.policy.kind = kind;
    return config;
}

} // namespace finereg
