#include "core/experiment.hh"

#include <iterator>

#include "common/log.hh"
#include "core/parallel_runner.hh"

namespace finereg
{

SimResult
Experiment::runApp(const std::string &abbrev, const GpuConfig &config,
                   double grid_scale)
{
    const SuiteEntry &app = Suite::byName(abbrev);
    const auto kernel = Suite::makeKernel(app, grid_scale);
    return Simulator::run(config, *kernel);
}

std::vector<SimResult>
Experiment::runSuite(const GpuConfig &config, double grid_scale,
                     unsigned jobs)
{
    auto sweep = runSweep({config}, grid_scale, jobs);
    return std::move(sweep.front());
}

std::vector<std::vector<SimResult>>
Experiment::runSweep(const std::vector<GpuConfig> &configs,
                     double grid_scale, unsigned jobs)
{
    const auto &apps = Suite::all();
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(configs.size() * apps.size());
    for (const auto &config : configs) {
        for (const auto &app : apps) {
            matrix.push_back([config, abbrev = app.abbrev, grid_scale] {
                return runApp(abbrev, config, grid_scale);
            });
        }
    }

    ParallelRunner runner({.jobs = jobs, .failFast = false});
    std::vector<SimResult> flat = runner.run(std::move(matrix));

    std::vector<std::vector<SimResult>> out(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        out[c].assign(
            std::make_move_iterator(flat.begin() + c * apps.size()),
            std::make_move_iterator(flat.begin() + (c + 1) * apps.size()));
    }
    return out;
}

std::map<std::string, double>
Experiment::normalizedIpc(const std::vector<SimResult> &results,
                          const std::vector<SimResult> &baseline)
{
    std::map<std::string, double> out;
    for (const auto &result : results) {
        for (const auto &base : baseline) {
            if (base.kernelName == result.kernelName) {
                out[result.kernelName] = speedup(result, base);
                break;
            }
        }
    }
    return out;
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values)
{
    std::vector<double> v;
    v.reserve(values.size());
    for (const auto &[app, value] : values)
        v.push_back(value);
    return mean(v);
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values,
                         const std::vector<std::string> &apps)
{
    std::vector<double> v;
    for (const auto &app : apps) {
        const auto it = values.find(app);
        if (it != values.end())
            v.push_back(it->second);
    }
    return mean(v);
}

GpuConfig
Experiment::configFor(PolicyKind kind)
{
    GpuConfig config = GpuConfig::gtx980();
    config.policy.kind = kind;
    return config;
}

} // namespace finereg
