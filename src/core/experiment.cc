#include "core/experiment.hh"

#include "common/log.hh"

namespace finereg
{

SimResult
Experiment::runApp(const std::string &abbrev, const GpuConfig &config,
                   double grid_scale)
{
    const SuiteEntry &app = Suite::byName(abbrev);
    const auto kernel = Suite::makeKernel(app, grid_scale);
    return Simulator::run(config, *kernel);
}

std::vector<SimResult>
Experiment::runSuite(const GpuConfig &config, double grid_scale)
{
    std::vector<SimResult> results;
    results.reserve(Suite::all().size());
    for (const auto &app : Suite::all())
        results.push_back(runApp(app.abbrev, config, grid_scale));
    return results;
}

std::map<std::string, double>
Experiment::normalizedIpc(const std::vector<SimResult> &results,
                          const std::vector<SimResult> &baseline)
{
    std::map<std::string, double> out;
    for (const auto &result : results) {
        for (const auto &base : baseline) {
            if (base.kernelName == result.kernelName) {
                out[result.kernelName] = speedup(result, base);
                break;
            }
        }
    }
    return out;
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values)
{
    std::vector<double> v;
    v.reserve(values.size());
    for (const auto &[app, value] : values)
        v.push_back(value);
    return mean(v);
}

double
Experiment::meanOverApps(const std::map<std::string, double> &values,
                         const std::vector<std::string> &apps)
{
    std::vector<double> v;
    for (const auto &app : apps) {
        const auto it = values.find(app);
        if (it != values.end())
            v.push_back(it->second);
    }
    return mean(v);
}

GpuConfig
Experiment::configFor(PolicyKind kind)
{
    GpuConfig config = GpuConfig::gtx980();
    config.policy.kind = kind;
    return config;
}

} // namespace finereg
