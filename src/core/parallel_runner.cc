#include "core/parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "verify/sim_error.hh"

namespace finereg
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/**
 * One worker's job queue. The owner pops from the front (FIFO over its
 * round-robin share); thieves steal from the back to minimize contention
 * with the owner. A mutex per queue is plenty here: jobs are whole
 * simulator runs (milliseconds to seconds each), so queue operations are
 * nowhere near the critical path.
 */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> indices;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (indices.empty())
            return false;
        out = indices.front();
        indices.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (indices.empty())
            return false;
        out = indices.back();
        indices.pop_back();
        return true;
    }
};

SimResult
cancelledResult(const char *why)
{
    SimResult out;
    out.failed = true;
    out.error.kind = SimErrorKind::Cancelled;
    out.error.message = why;
    out.failureReason = out.error.toString();
    return out;
}

} // namespace

SimResult
ParallelRunner::runCaptured(const Job &job)
{
    try {
        return job();
    } catch (const SimException &e) {
        SimResult out;
        out.failed = true;
        out.error = e.error();
        out.failureReason = out.error.toString();
        return out;
    } catch (const std::exception &e) {
        SimResult out;
        out.failed = true;
        out.error.kind = SimErrorKind::WorkerException;
        out.error.message = e.what();
        out.failureReason = out.error.toString();
        return out;
    } catch (...) {
        SimResult out;
        out.failed = true;
        out.error.kind = SimErrorKind::WorkerException;
        out.error.message = "unknown exception escaped a parallel job";
        out.failureReason = out.error.toString();
        return out;
    }
}

ParallelRunner::ParallelRunner(ParallelOptions options) : options_(options)
{
}

unsigned
ParallelRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("FINEREG_JOBS")) {
        const long parsed = std::atol(env);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelRunner::Outcome
ParallelRunner::runAll(std::vector<Job> jobs)
{
    const auto batch_start = Clock::now();

    Outcome outcome;
    outcome.results.resize(jobs.size());
    outcome.wallMs.assign(jobs.size(), 0.0);
    outcome.jobsUsed =
        std::min<std::size_t>(resolveJobs(options_.jobs),
                              std::max<std::size_t>(jobs.size(), 1));
    if (jobs.empty()) {
        outcome.totalWallMs = elapsedMs(batch_start);
        return outcome;
    }

    std::atomic<bool> cancel{false};
    const bool fail_fast = options_.failFast;
    const std::shared_ptr<const std::atomic<bool>> stop = options_.stop;

    auto run_at = [&](std::size_t index) {
        if (fail_fast && cancel.load(std::memory_order_acquire)) {
            outcome.results[index] = cancelledResult(
                "cancelled by fail-fast after an earlier failure");
            return;
        }
        if (stop && stop->load(std::memory_order_acquire)) {
            outcome.results[index] =
                cancelledResult("cancelled by an external stop request");
            return;
        }
        const auto start = Clock::now();
        SimResult result = runCaptured(jobs[index]);
        outcome.wallMs[index] = elapsedMs(start);
        if (fail_fast && result.failed)
            cancel.store(true, std::memory_order_release);
        outcome.results[index] = std::move(result);
    };

    if (outcome.jobsUsed <= 1) {
        // Degenerate serial path: same wrapper, same ordering, no threads.
        for (std::size_t i = 0; i < jobs.size(); ++i)
            run_at(i);
    } else {
        const unsigned workers = outcome.jobsUsed;
        std::vector<WorkQueue> queues(workers);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            queues[i % workers].indices.push_back(i);

        auto worker_loop = [&](unsigned self) {
            std::size_t index = 0;
            for (;;) {
                bool found = queues[self].popFront(index);
                for (unsigned delta = 1; !found && delta < workers;
                     ++delta)
                    found = queues[(self + delta) % workers]
                                .stealBack(index);
                if (!found)
                    return;
                run_at(index);
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(workers - 1);
        for (unsigned w = 1; w < workers; ++w)
            threads.emplace_back(worker_loop, w);
        worker_loop(0);
        for (auto &thread : threads)
            thread.join();
    }

    outcome.cancelled =
        (fail_fast && cancel.load(std::memory_order_acquire)) ||
        (stop && stop->load(std::memory_order_acquire));
    outcome.totalWallMs = elapsedMs(batch_start);
    return outcome;
}

std::vector<SimResult>
ParallelRunner::run(std::vector<Job> jobs)
{
    return runAll(std::move(jobs)).results;
}

} // namespace finereg
