#include "core/sweep_journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "core/gpu_config.hh"
#include "isa/kernel.hh"

namespace finereg
{

namespace
{

// ---- FNV-1a hashing --------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void
mixDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix(h, bits);
}

void
mixString(std::uint64_t &h, const std::string &s)
{
    mix(h, s.size());
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

// ---- Minimal flat JSON -----------------------------------------------------

/**
 * Scanner for the exact JSON subset the journal writes: one flat object
 * of string keys mapping to strings, numbers, or booleans. Number tokens
 * are kept as raw text so integer round-trips are exact (we wrote them,
 * we re-read them — no double conversion in between).
 */
class FlatJson
{
  public:
    static std::optional<std::map<std::string, std::string>>
    parse(const std::string &line)
    {
        FlatJson p(line);
        std::map<std::string, std::string> out;
        p.ws();
        if (!p.eat('{'))
            return std::nullopt;
        p.ws();
        if (p.eat('}'))
            return out;
        for (;;) {
            p.ws();
            std::string key;
            if (!p.string(key))
                return std::nullopt;
            p.ws();
            if (!p.eat(':'))
                return std::nullopt;
            p.ws();
            std::string value;
            if (p.peek() == '"') {
                if (!p.string(value))
                    return std::nullopt;
            } else if (!p.scalar(value)) {
                return std::nullopt;
            }
            out[key] = value;
            p.ws();
            if (p.eat(','))
                continue;
            if (p.eat('}'))
                return out;
            return std::nullopt;
        }
    }

  private:
    explicit FlatJson(const std::string &s) : s_(s) {}

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++i_;
        return true;
    }

    void
    ws()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r'))
            ++i_;
    }

    bool
    string(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (i_ < s_.size()) {
            const char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (i_ >= s_.size())
                    return false;
                const char e = s_[i_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;
    }

    bool
    scalar(std::string &out)
    {
        const std::size_t start = i_;
        while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' &&
               s_[i_] != ' ' && s_[i_] != '\t')
            ++i_;
        out = s_.substr(start, i_ - start);
        return !out.empty();
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            // Drop other control characters rather than emit invalid JSON.
            if (static_cast<unsigned char>(c) >= 0x20)
                out += c;
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::uint64_t
getU64(const std::map<std::string, std::string> &m, const char *key)
{
    const auto it = m.find(key);
    return it == m.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

double
getDouble(const std::map<std::string, std::string> &m, const char *key)
{
    const auto it = m.find(key);
    return it == m.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

bool
getBool(const std::map<std::string, std::string> &m, const char *key)
{
    const auto it = m.find(key);
    return it != m.end() && it->second == "true";
}

std::string
getString(const std::map<std::string, std::string> &m, const char *key)
{
    const auto it = m.find(key);
    return it == m.end() ? std::string() : it->second;
}

SimErrorKind
parseErrorKind(const std::string &name)
{
    static constexpr SimErrorKind kKinds[] = {
        SimErrorKind::None,
        SimErrorKind::Config,
        SimErrorKind::InvariantViolation,
        SimErrorKind::Deadlock,
        SimErrorKind::WorkerException,
        SimErrorKind::Cancelled,
        SimErrorKind::Timeout,
        SimErrorKind::RetriesExhausted,
        SimErrorKind::Quarantined,
    };
    for (const SimErrorKind kind : kKinds) {
        if (name == simErrorKindName(kind))
            return kind;
    }
    return SimErrorKind::None;
}

} // namespace

// ---- Fingerprints ----------------------------------------------------------

std::uint64_t
kernelFingerprint(const Kernel &kernel)
{
    std::uint64_t h = kFnvOffset;
    mixString(h, kernel.name());
    mix(h, kernel.regsPerThread());
    mix(h, kernel.threadsPerCta());
    mix(h, kernel.shmemPerCta());
    mix(h, kernel.gridCtas());
    mix(h, kernel.instrs().size());
    for (const Instruction &in : kernel.instrs()) {
        mix(h, static_cast<std::uint64_t>(in.op));
        mix(h, static_cast<std::uint64_t>(in.dst));
        for (const int src : in.srcs)
            mix(h, static_cast<std::uint64_t>(src));
        mix(h, static_cast<std::uint64_t>(in.targetBlock));
        mixDouble(h, in.divergeProb);
        mixDouble(h, in.takenProb);
        mix(h, in.tripCount);
        mix(h, in.mem.region);
        mix(h, in.mem.footprint);
        mix(h, in.mem.transactions);
        mix(h, in.mem.stride);
        mixDouble(h, in.mem.reuse);
        mix(h, in.mem.shared ? 1 : 0);
    }
    mix(h, kernel.blocks().size());
    for (const BasicBlock &b : kernel.blocks()) {
        mix(h, b.firstInstr);
        mix(h, b.numInstrs);
        for (const int s : b.succs)
            mix(h, static_cast<std::uint64_t>(s));
    }
    return h;
}

std::uint64_t
configFingerprint(const GpuConfig &config)
{
    std::uint64_t h = kFnvOffset;
    mix(h, config.numSms);
    mixDouble(h, config.clockGhz);
    mix(h, config.maxCycles);
    mix(h, config.usageTracking ? 1 : 0);
    mix(h, config.stallProbe ? 1 : 0);
    mix(h, config.trackValues ? 1 : 0);

    const SmConfig &sm = config.sm;
    mix(h, sm.maxCtas);
    mix(h, sm.maxWarps);
    mix(h, sm.maxThreads);
    mix(h, sm.numSchedulers);
    mix(h, static_cast<std::uint64_t>(sm.sched));
    mix(h, sm.regFileBytes);
    mix(h, sm.shmemBytes);
    mix(h, sm.memPortsPerCycle);
    mix(h, sm.aluLatency);
    mix(h, sm.sfuLatency);
    mix(h, sm.sharedLatency);
    mix(h, sm.branchLatency);
    mix(h, sm.maxResidentCtas);
    mix(h, sm.maxResidentWarps);

    auto mix_cache = [&](const CacheConfig &c) {
        mix(h, c.sizeBytes);
        mix(h, c.assoc);
        mix(h, c.lineBytes);
        mix(h, c.hitLatency);
        mix(h, c.mshrEntries);
        mix(h, c.writeAllocate ? 1 : 0);
    };
    mix_cache(config.mem.l1);
    mix_cache(config.mem.l2);
    mixDouble(h, config.mem.dram.bytesPerCycle);
    mix(h, config.mem.dram.accessLatency);
    mixDouble(h, config.mem.l2TransactionsPerCycle);

    const PolicyConfig &p = config.policy;
    mix(h, p.acrfBytes);
    mix(h, p.pcrfBytes);
    mix(h, p.bitvecCacheEntries);
    mix(h, p.pcrfAccessLatency);
    mix(h, p.switchBaseLatency);
    mix(h, p.fullContextBackup ? 1 : 0);
    mix(h, p.zeroSwitchLatency ? 1 : 0);
    mixDouble(h, p.pendingGrowthFactor);
    mixDouble(h, p.srpRatio);
    mixDouble(h, p.brsFraction);
    mix(h, p.maxDramPendingCtas);
    mix(h, p.unifiedMemory ? 1 : 0);
    mix(h, p.umBytes);
    mix(h, static_cast<std::uint64_t>(p.dropLiveReg));

    // Verification knobs that perturb simulated behaviour. The host-level
    // fault sites (workerExceptionProb, jobHang*) are deliberately
    // excluded: a dispatch exception aborts before any work and a hang
    // burns wall-clock only, so results are identical with or without
    // them — and retried attempts must map to the same key.
    const VerifyConfig &v = config.verify;
    mix(h, v.auditInterval);
    mix(h, v.watchdogCycles);
    mix(h, v.fault.seed);
    mixDouble(h, v.fault.dramDelayProb);
    mix(h, v.fault.dramDelayCycles);
    mixDouble(h, v.fault.pcrfFullProb);
    mixDouble(h, v.fault.bitvecMissProb);
    return h;
}

std::string
SweepJobKey::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "k%016" PRIx64 "-c%016" PRIx64 "-%s-s%" PRIx64,
                  kernelHash, configHash, policy.c_str(), seed);
    return buf;
}

SweepJobKey
makeSweepJobKey(const Kernel &kernel, const GpuConfig &config)
{
    SweepJobKey key;
    key.kernelHash = kernelFingerprint(kernel);
    key.configHash = configFingerprint(config);
    key.policy = policyKindName(config.policy.kind);
    key.seed = config.seed;
    return key;
}

// ---- Entry <-> JSON --------------------------------------------------------

std::string
journalEntryToJson(const JournalEntry &entry)
{
    const SimResult &r = entry.result;
    std::ostringstream oss;
    oss << "{\"key\":\"" << escape(entry.key) << '"'
        << ",\"app\":\"" << escape(entry.app) << '"'
        << ",\"status\":\"" << escape(entry.status) << '"'
        << ",\"wall_ms\":" << fmtDouble(entry.wallMs)
        << ",\"kernel\":\"" << escape(r.kernelName) << '"'
        << ",\"policy\":\"" << escape(r.policyName) << '"'
        << ",\"attempts\":" << r.attempts
        << ",\"cycles\":" << r.cycles
        << ",\"instructions\":" << r.instructions
        << ",\"ipc\":" << fmtDouble(r.ipc)
        << ",\"hit_cycle_limit\":" << (r.hitCycleLimit ? "true" : "false")
        << ",\"completed_ctas\":" << r.completedCtas
        << ",\"avg_resident_ctas\":" << fmtDouble(r.avgResidentCtas)
        << ",\"avg_active_ctas\":" << fmtDouble(r.avgActiveCtas)
        << ",\"avg_active_threads\":" << fmtDouble(r.avgActiveThreads)
        << ",\"dram_bytes_data\":" << r.dramBytesData
        << ",\"dram_bytes_cta\":" << r.dramBytesCtaContext
        << ",\"dram_bytes_bitvec\":" << r.dramBytesBitvec
        << ",\"depletion_stall_fraction\":"
        << fmtDouble(r.depletionStallFraction)
        << ",\"l1_hits\":" << r.l1Hits
        << ",\"l1_misses\":" << r.l1Misses
        << ",\"rf_usage_mean\":" << fmtDouble(r.rfUsageMean)
        << ",\"rf_usage_min\":" << fmtDouble(r.rfUsageMin)
        << ",\"rf_usage_max\":" << fmtDouble(r.rfUsageMax)
        << ",\"stall_episode_mean\":" << fmtDouble(r.stallEpisodeMean)
        << ",\"stall_episodes\":" << r.stallEpisodes
        << ",\"energy_dram_dyn\":" << fmtDouble(r.energy.dramDyn)
        << ",\"energy_rf_dyn\":" << fmtDouble(r.energy.rfDyn)
        << ",\"energy_others_dyn\":" << fmtDouble(r.energy.othersDyn)
        << ",\"energy_leakage\":" << fmtDouble(r.energy.leakage)
        << ",\"energy_finereg\":" << fmtDouble(r.energy.fineregOverhead)
        << ",\"energy_cta_switching\":" << fmtDouble(r.energy.ctaSwitching)
        << ",\"policy_storage_bits\":" << r.policyStorageBits
        << ",\"failed\":" << (r.failed ? "true" : "false")
        << ",\"error_kind\":\"" << simErrorKindName(r.error.kind) << '"'
        << ",\"error_message\":\"" << escape(r.error.message) << "\"}";
    return oss.str();
}

std::optional<JournalEntry>
journalEntryFromJson(const std::string &line)
{
    const auto fields = FlatJson::parse(line);
    if (!fields || fields->find("key") == fields->end() ||
        fields->find("status") == fields->end())
        return std::nullopt;
    const auto &m = *fields;

    JournalEntry entry;
    entry.key = getString(m, "key");
    entry.app = getString(m, "app");
    entry.status = getString(m, "status");
    entry.wallMs = getDouble(m, "wall_ms");

    SimResult &r = entry.result;
    r.kernelName = getString(m, "kernel");
    r.policyName = getString(m, "policy");
    r.attempts = static_cast<unsigned>(getU64(m, "attempts"));
    r.cycles = getU64(m, "cycles");
    r.instructions = getU64(m, "instructions");
    r.ipc = getDouble(m, "ipc");
    r.hitCycleLimit = getBool(m, "hit_cycle_limit");
    r.completedCtas = static_cast<unsigned>(getU64(m, "completed_ctas"));
    r.avgResidentCtas = getDouble(m, "avg_resident_ctas");
    r.avgActiveCtas = getDouble(m, "avg_active_ctas");
    r.avgActiveThreads = getDouble(m, "avg_active_threads");
    r.dramBytesData = getU64(m, "dram_bytes_data");
    r.dramBytesCtaContext = getU64(m, "dram_bytes_cta");
    r.dramBytesBitvec = getU64(m, "dram_bytes_bitvec");
    r.depletionStallFraction = getDouble(m, "depletion_stall_fraction");
    r.l1Hits = getU64(m, "l1_hits");
    r.l1Misses = getU64(m, "l1_misses");
    r.rfUsageMean = getDouble(m, "rf_usage_mean");
    r.rfUsageMin = getDouble(m, "rf_usage_min");
    r.rfUsageMax = getDouble(m, "rf_usage_max");
    r.stallEpisodeMean = getDouble(m, "stall_episode_mean");
    r.stallEpisodes = getU64(m, "stall_episodes");
    r.energy.dramDyn = getDouble(m, "energy_dram_dyn");
    r.energy.rfDyn = getDouble(m, "energy_rf_dyn");
    r.energy.othersDyn = getDouble(m, "energy_others_dyn");
    r.energy.leakage = getDouble(m, "energy_leakage");
    r.energy.fineregOverhead = getDouble(m, "energy_finereg");
    r.energy.ctaSwitching = getDouble(m, "energy_cta_switching");
    r.policyStorageBits = getU64(m, "policy_storage_bits");
    r.failed = getBool(m, "failed");
    r.error.kind = parseErrorKind(getString(m, "error_kind"));
    r.error.message = getString(m, "error_message");
    if (r.failed)
        r.failureReason = r.error.toString();
    r.fromJournal = true;
    return entry;
}

// ---- SweepJournal ----------------------------------------------------------

SweepJournal::SweepJournal(std::string path, std::FILE *file)
    : path_(std::move(path)), file_(file)
{
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

std::unique_ptr<SweepJournal>
SweepJournal::open(const std::string &path, std::string &error)
{
    error.clear();
    std::map<std::string, JournalEntry> loaded;

    std::ifstream in(path);
    const bool exists = in.good();
    if (exists) {
        std::string line;
        if (!std::getline(in, line)) {
            error = "journal " + path + " is empty (missing schema header)";
            return nullptr;
        }
        const auto header = FlatJson::parse(line);
        if (!header) {
            error = "journal " + path +
                    " has an unparsable header line; refusing to misparse "
                    "it — delete the file or pass a fresh --resume path";
            return nullptr;
        }
        if (getString(*header, "schema") != kSchema) {
            error = "journal " + path + " has schema '" +
                    getString(*header, "schema") + "', expected '" +
                    kSchema + "'";
            return nullptr;
        }
        const std::uint64_t version = getU64(*header, "version");
        if (version != kVersion) {
            error = "journal " + path + " was written with schema version " +
                    std::to_string(version) + "; this build expects version " +
                    std::to_string(kVersion) +
                    " — stale journals are rejected, start a fresh sweep";
            return nullptr;
        }
        std::size_t line_no = 1;
        while (std::getline(in, line)) {
            ++line_no;
            if (line.empty())
                continue;
            auto entry = journalEntryFromJson(line);
            if (!entry) {
                // A torn final line (crash mid-append) is expected; keep
                // every intact entry before it.
                FINEREG_WARN("journal ", path, ": dropping malformed line ",
                             line_no);
                continue;
            }
            loaded[entry->key] = std::move(*entry);
        }
        in.close();
    }

    std::FILE *file = std::fopen(path.c_str(), exists ? "a" : "w");
    if (!file) {
        error = "cannot open journal " + path + " for append: " +
                std::strerror(errno);
        return nullptr;
    }
    if (!exists) {
        std::fprintf(file, "{\"schema\":\"%s\",\"version\":%u}\n", kSchema,
                     kVersion);
        std::fflush(file);
    }

    std::unique_ptr<SweepJournal> journal(
        new SweepJournal(path, file));
    journal->latest_ = std::move(loaded);
    return journal;
}

const JournalEntry *
SweepJournal::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = latest_.find(key);
    return it == latest_.end() ? nullptr : &it->second;
}

void
SweepJournal::append(const JournalEntry &entry)
{
    const std::string line = journalEntryToJson(entry);
    std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);
    latest_[entry.key] = entry;
}

std::size_t
SweepJournal::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latest_.size();
}

std::size_t
SweepJournal::completedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[key, entry] : latest_)
        n += entry.ok() ? 1 : 0;
    return n;
}

std::vector<JournalEntry>
SweepJournal::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JournalEntry> out;
    out.reserve(latest_.size());
    for (const auto &[key, entry] : latest_)
        out.push_back(entry);
    return out;
}

} // namespace finereg
