#include "core/job_guard.hh"

#include <algorithm>

#include "common/rng.hh"

namespace finereg
{

namespace
{

using Clock = std::chrono::steady_clock;

/** FNV-1a over a string, for mixing job keys into the backoff stream. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

JobGuard::JobGuard(GuardOptions options) : options_(options)
{
}

JobGuard::~JobGuard()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    if (monitor_.joinable())
        monitor_.join();
}

std::uint64_t
JobGuard::watch(std::shared_ptr<CancelToken> token)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t lease = nextLease_++;
    Deadline deadline;
    deadline.expires =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options_.jobTimeoutMs));
    deadline.token = std::move(token);
    inflight_.emplace(lease, std::move(deadline));
    if (!monitorStarted_) {
        monitorStarted_ = true;
        monitor_ = std::thread([this] { monitorLoop(); });
    }
    cv_.notify_all();
    return lease;
}

void
JobGuard::release(std::uint64_t lease)
{
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(lease);
}

void
JobGuard::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!shutdown_) {
        // Sleep until the earliest registered deadline (or forever when
        // idle); registrations and shutdown notify the cv.
        auto earliest = Clock::time_point::max();
        for (const auto &[lease, deadline] : inflight_)
            earliest = std::min(earliest, deadline.expires);
        if (earliest == Clock::time_point::max()) {
            cv_.wait(lock);
            continue;
        }
        cv_.wait_until(lock, earliest);
        const auto now = Clock::now();
        for (auto it = inflight_.begin(); it != inflight_.end();) {
            if (it->second.expires <= now) {
                it->second.token->requestTimeout();
                ++stats_.timeouts;
                it = inflight_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void
JobGuard::killAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[lease, deadline] : inflight_)
        deadline.token->requestKill();
    inflight_.clear();
}

bool
JobGuard::isQuarantined(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::any_of(quarantine_.begin(), quarantine_.end(),
                       [&](const QuarantineEntry &e) { return e.key == key; });
}

std::vector<QuarantineEntry>
JobGuard::quarantined() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_;
}

void
JobGuard::quarantineKey(const std::string &key, unsigned attempts,
                        SimError last_error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::any_of(quarantine_.begin(), quarantine_.end(),
                    [&](const QuarantineEntry &e) { return e.key == key; }))
        return;
    quarantine_.push_back({key, attempts, std::move(last_error)});
}

JobGuard::Stats
JobGuard::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

SimResult
JobGuard::quarantinedResult(const std::string &key) const
{
    SimResult out;
    out.failed = true;
    out.error.kind = SimErrorKind::Quarantined;
    out.error.message =
        "job " + key + " skipped: quarantined after earlier failures";
    out.failureReason = out.error.toString();
    out.attempts = 0;
    return out;
}

ParallelRunner::Job
JobGuard::wrap(std::string key, Attempt attempt)
{
    return [this, key = std::move(key),
            attempt = std::move(attempt)]() -> SimResult {
        if (options_.quarantine && isQuarantined(key)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.quarantineSkips;
            }
            return quarantinedResult(key);
        }

        const unsigned max_attempts = options_.retries + 1;
        SimResult result;
        for (unsigned a = 0; a < max_attempts; ++a) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.attemptsStarted;
            }
            auto token = std::make_shared<CancelToken>();
            std::uint64_t lease = 0;
            if (options_.jobTimeoutMs > 0.0)
                lease = watch(token);
            result = ParallelRunner::runCaptured(
                [&] { return attempt(a, token); });
            if (lease != 0)
                release(lease);
            result.attempts = a + 1;
            if (!result.failed)
                return result;

            const bool retryable =
                (options_.retryOn & retryMask(result.error.kind)) != 0;
            if (!retryable || a + 1 >= max_attempts)
                break;

            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.retriesScheduled;
            }
            // Seeded exponential backoff: deterministic per (key,
            // attempt) so sweeps stay replayable, jittered so a batch of
            // failing jobs does not retry in lockstep.
            const double base =
                options_.backoffBaseMs * static_cast<double>(1u << a);
            Rng jitter(options_.backoffSeed ^ fnv1a(key) ^
                       (0x9e3779b97f4a7c15ull * (a + 1)));
            const double sleep_ms = std::min(
                options_.backoffMaxMs, base * (0.5 + jitter.uniform()));
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
        }

        // Every attempt failed. Quarantine the key (so sibling or future
        // submissions skip it) and report the terminal error, preserving
        // the underlying cause in the message. Externally cancelled jobs
        // are NOT quarantined: they did not fail on their own, and a
        // resumed sweep must re-run them.
        if (options_.quarantine &&
            result.error.kind != SimErrorKind::Cancelled)
            quarantineKey(key, result.attempts, result.error);
        if (result.attempts > 1) {
            SimResult out = result;
            out.error.kind = SimErrorKind::RetriesExhausted;
            out.error.message =
                "job " + key + " failed " + std::to_string(result.attempts) +
                " attempts; last error: " + result.error.toString();
            out.failureReason = out.error.toString();
            return out;
        }
        return result;
    };
}

SimResult
JobGuard::runGuarded(const std::string &key, Attempt attempt)
{
    return wrap(key, std::move(attempt))();
}

} // namespace finereg
