/**
 * @file
 * Top-level GPU configuration: the Table I GTX-980-like baseline plus the
 * knobs of every register-management policy the paper evaluates.
 */

#ifndef FINEREG_CORE_GPU_CONFIG_HH
#define FINEREG_CORE_GPU_CONFIG_HH

#include <string>

#include "common/types.hh"
#include "mem/mem_hierarchy.hh"
#include "sm/sm.hh"
#include "verify/verify_config.hh"

namespace finereg
{

/** Register-file management schemes compared in the evaluation. */
enum class PolicyKind : unsigned char
{
    Baseline,      ///< Conventional GPU: static limits, no CTA switching.
    VirtualThread, ///< VT [45]: fill RF with extra CTAs, on-chip switching.
    RegDram,       ///< Zorua-like [39]: VT + pending CTA contexts in DRAM.
    RegMutex,      ///< RegMutex [17] merged with VT (BRS + shared SRP).
    FineReg,       ///< This paper: ACRF/PCRF with live-register backup.
};

const char *policyKindName(PolicyKind kind);

/**
 * How Gpu::run advances the clock across ticks where nothing issued.
 * Runtime-only (host wall-clock knob): excluded from config fingerprints
 * like VerifyConfig::cancel, because every mode produces bit-identical
 * simulated end states — the determinism suite pins this.
 */
enum class IdleSkipMode : unsigned char
{
    Wheel,          ///< O(log n) event-wheel skip (default).
    LegacyScan,     ///< Exact per-warp nextWakeCycle scan.
    StepEveryCycle, ///< No skipping: advance one cycle at a time.
};

struct PolicyConfig
{
    PolicyKind kind = PolicyKind::Baseline;

    // FineReg ---------------------------------------------------------------

    /** ACRF size; ACRF+PCRF must equal the baseline register file. */
    std::uint64_t acrfBytes = 128 * 1024;

    /** PCRF size (Sec. VI-A: 128 KB, half the baseline RF). */
    std::uint64_t pcrfBytes = 128 * 1024;

    /** Live-register bit-vector cache entries (Sec. V-C: 32). */
    unsigned bitvecCacheEntries = 32;

    /** PCRF tag+register access latency, pipelined (Sec. V-E: >= 4). */
    Cycle pcrfAccessLatency = 4;

    /** Fixed overhead of initiating a CTA switch. */
    Cycle switchBaseLatency = 20;

    /** Ablation: store full contexts in the PCRF instead of live regs. */
    bool fullContextBackup = false;

    /** Ablation: make CTA switching free (latency sensitivity). */
    bool zeroSwitchLatency = false;

    /**
     * Growth damper: stop introducing brand-new CTAs once the pending set
     * exceeds this multiple of the active set. Enough pending CTAs to
     * refill every active slot is sufficient to hide stalls; growing
     * further only enlarges the cache working set. Growth is always also
     * bounded by PCRF space and the 128-CTA residency cap (Sec. V-F).
     */
    double pendingGrowthFactor = 2.5;

    // RegMutex ---------------------------------------------------------------

    /** Fraction of the register file designated as the shared pool (SRP). */
    double srpRatio = 0.281;

    /** Fraction of each warp's registers kept in its base register set;
     * the rest are served on demand from the SRP. Independent of the
     * pool split, as in the original RegMutex. */
    double brsFraction = 0.719;

    // Reg+DRAM ---------------------------------------------------------------

    /** Cap on DRAM-resident pending CTAs per SM (tuned per app, Sec. VI-A). */
    unsigned maxDramPendingCtas = 8;

    // Unified on-chip local memory (Sec. VI-G3) -------------------------------

    /** Pool PCRF/backing store + shared memory + L1 into one UM store. */
    bool unifiedMemory = false;

    /** UM pool size (paper: 128 + 96 + 48 = 272 KB). */
    std::uint64_t umBytes = 272 * 1024;

    // Test hooks --------------------------------------------------------------

    /**
     * Deliberately clear this register's bit in every liveness mask the
     * RMU gathers (-1 = off). A FineReg swap then drops the register even
     * when it is live — the class of bug the differential oracle exists to
     * catch. Never set outside correctness tests.
     */
    int dropLiveReg = -1;
};

struct GpuConfig
{
    unsigned numSms = 16;
    double clockGhz = 1.126;
    SmConfig sm{};
    MemHierarchyConfig mem{};
    PolicyConfig policy{};

    /** Simulation safety cap. */
    Cycle maxCycles = 20'000'000;

    std::uint64_t seed = 0x5eedf00d;

    /** Enable the Fig. 5 register-usage window tracker. */
    bool usageTracking = false;

    /** Enable the Table III stall-episode probe. */
    bool stallProbe = false;

    /**
     * Track architectural register/memory values and capture the end state
     * on SimResult::archState (differential oracle, golden snapshots).
     * Pure observation: cycle counts and stats are unaffected.
     */
    bool trackValues = false;

    /** Hardening knobs: invariant auditor, watchdog, fault injection. */
    VerifyConfig verify{};

    /** Idle-cycle advancement strategy (runtime-only; see IdleSkipMode). */
    IdleSkipMode idleSkip = IdleSkipMode::Wheel;

    /** The paper's Table I setup. */
    static GpuConfig gtx980();

    /** Render Table I for bench_table1_config. */
    std::string toString() const;
};

} // namespace finereg

#endif // FINEREG_CORE_GPU_CONFIG_HH
