#include "core/simulator.hh"

#include <algorithm>

#include "common/log.hh"
#include "sm/gpu.hh"

namespace finereg
{

GpuConfig
Simulator::applyUnifiedMemory(GpuConfig config, const Kernel &kernel)
{
    const std::uint64_t pool = config.policy.umBytes; // 272 KB default

    // Demand-driven shared-memory budget: what the active CTA estimate
    // actually needs, 4 KB floor when the kernel uses shared memory at all.
    const unsigned active_estimate = std::max(
        1u,
        std::min({config.sm.maxCtas,
                  config.sm.maxThreads / kernel.threadsPerCta(),
                  config.sm.maxWarps / kernel.warpsPerCta()}));
    std::uint64_t shmem = std::uint64_t(kernel.shmemPerCta()) *
                          active_estimate;
    shmem = std::min<std::uint64_t>(shmem, 96 * 1024);
    if (kernel.shmemPerCta() > 0)
        shmem = std::max<std::uint64_t>(shmem, 4 * 1024);

    if (config.policy.kind == PolicyKind::FineReg) {
        // ACRF stays a dedicated 128 KB; PCRF joins the pool and grows
        // into whatever shared memory does not claim, leaving at least
        // the baseline 48 KB to the L1.
        config.sm.regFileBytes = config.policy.acrfBytes;
        const std::uint64_t l1_floor = 48 * 1024;
        std::uint64_t pcrf = pool > shmem + l1_floor
                                 ? pool - shmem - l1_floor
                                 : 64 * 1024;
        pcrf = std::clamp<std::uint64_t>(pcrf, 64 * 1024, 192 * 1024);
        config.policy.pcrfBytes = pcrf;
        config.sm.shmemBytes = shmem;
        config.mem.l1.sizeBytes =
            pool > shmem + pcrf ? pool - shmem - pcrf : l1_floor;
    } else {
        // UM-only / VT+UM: the register file is untouched; shared memory
        // and L1 share a 144 KB pool, so shmem-light kernels enjoy a
        // large L1 (the AT/BI/KM/SY2 effect in Fig. 19).
        const std::uint64_t sub_pool = 144 * 1024;
        config.sm.shmemBytes = std::min(shmem, sub_pool - 16 * 1024);
        config.mem.l1.sizeBytes = sub_pool - config.sm.shmemBytes;
    }
    return config;
}

SimResult
Simulator::run(const GpuConfig &config_in, const Kernel &kernel,
               std::unique_ptr<Policy> policy)
{
    GpuConfig config = config_in;
    if (config.policy.unifiedMemory)
        config = applyUnifiedMemory(config, kernel);

    SimResult out;
    out.kernelName = kernel.name();
    out.policyName = policyKindName(config.policy.kind);

    std::unique_ptr<Gpu> gpu_holder;
    GpuRunResult run;
    try {
        gpu_holder = std::make_unique<Gpu>(config, kernel,
                                           std::move(policy));
        run = gpu_holder->run();
    } catch (const SimException &e) {
        out.failed = true;
        out.error = e.error();
        out.failureReason = e.error().toString();
        return out;
    }
    Gpu &gpu = *gpu_holder;

    out.policyName = gpu.policy().name();
    out.archState = gpu.takeArchState();
    out.cycles = run.cycles;
    out.instructions = run.instructions;
    out.ipc = run.ipc();
    out.hitCycleLimit = run.hitCycleLimit;
    out.completedCtas = run.completedCtas;
    out.stallDiagnostic = run.stallDiagnostic;

    const StatGroup &stats = gpu.stats();
    const double cycles = std::max<double>(1.0, static_cast<double>(
        stats.counterValue("gpu.cycles")));
    const double sm_cycle_product = cycles * config.numSms;

    out.avgResidentCtas =
        stats.counterValue("sm.resident_cta_cycles") / sm_cycle_product;
    out.avgActiveCtas =
        stats.counterValue("sm.active_cta_cycles") / sm_cycle_product;
    out.avgActiveThreads =
        stats.counterValue("sm.active_thread_cycles") / sm_cycle_product;

    out.dramBytesData = stats.counterValue("dram.bytes_data");
    out.dramBytesCtaContext = stats.counterValue("dram.bytes_cta_context");
    out.dramBytesBitvec = stats.counterValue("dram.bytes_bitvec");

    out.depletionStallFraction =
        stats.counterValue("gpu.depletion_stall_cycles") /
        sm_cycle_product;

    for (unsigned s = 0; s < config.numSms; ++s) {
        out.l1Hits += stats.counterValue("l1_" + std::to_string(s) +
                                         ".hits");
        out.l1Misses += stats.counterValue("l1_" + std::to_string(s) +
                                           ".misses");
    }

    // Probe outputs (zero when the probes were off).
    {
        // Distributions are not exposed by name-value lookup; re-derive
        // from the group's distribution objects.
        auto &group = const_cast<StatGroup &>(stats);
        const auto &usage = group.distribution("sm.rf_usage_window");
        out.rfUsageMean = usage.mean();
        out.rfUsageMin = usage.min();
        out.rfUsageMax = usage.max();
        const auto &episode = group.distribution("sm.stall_episode_cycles");
        out.stallEpisodeMean = episode.mean();
        out.stallEpisodes = episode.count();
    }

    const EnergyModel energy_model;
    out.energy = energy_model.compute(stats, run.cycles, config.numSms);
    out.policyStorageBits = gpu.policy().storageOverheadBits();

    // Host-side perf counters (informational; simulated behaviour is
    // pinned by the metrics above, these only explain wall time).
    out.hostPerf.loopIterations = stats.counterValue("gpu.loop_iterations");
    out.hostPerf.skippedCycles = stats.counterValue("gpu.skipped_cycles");
    out.hostPerf.wheelPushes = stats.counterValue("gpu.wheel_pushes");
    out.hostPerf.wheelPops = stats.counterValue("gpu.wheel_pops");
    out.hostPerf.arenaAllocs = stats.counterValue("pcrf.writes");
    // Each arena slot is one PCRF chain entry: a 128-bit register value
    // plus tag/next metadata, accounted as 16 B of payload.
    out.hostPerf.arenaBytes = out.hostPerf.arenaAllocs * 16;
    out.hostPerf.bitvecWordOps = stats.counterValue("rmu.bitvec_word_ops");
    out.hostPerf.fullAudits = stats.counterValue("verify.full_audits");
    out.hostPerf.edgeAudits = stats.counterValue("verify.edge_audits");
    return out;
}

} // namespace finereg
