/**
 * @file
 * ParallelRunner: a work-stealing thread pool that fans independent
 * simulation jobs across hardware threads. Each job is a self-contained
 * closure returning a SimResult; results are keyed by submission index, so
 * the output vector is bit-identical regardless of worker count or
 * completion order. Exceptions escaping a job are captured into
 * SimResult::failed (typed SimError), and an optional fail-fast mode
 * cancels not-yet-started jobs after the first fatal failure.
 */

#ifndef FINEREG_CORE_PARALLEL_RUNNER_HH
#define FINEREG_CORE_PARALLEL_RUNNER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/simulator.hh"

namespace finereg
{

/** Knobs for one ParallelRunner::runAll invocation. */
struct ParallelOptions
{
    /**
     * Worker count. 0 resolves via ParallelRunner::resolveJobs (the
     * FINEREG_JOBS environment variable, then hardware concurrency);
     * 1 runs every job inline on the calling thread.
     */
    unsigned jobs = 0;

    /**
     * When true, the first job that produces a failed SimResult (or
     * throws) cancels every job that has not started yet; cancelled jobs
     * report SimErrorKind::Cancelled. Running jobs finish normally.
     */
    bool failFast = false;

    /**
     * External kill switch: when non-null and set, jobs that have not
     * started yet are skipped with SimErrorKind::Cancelled (like
     * fail-fast, but triggered from outside the batch — the chaos
     * harness's mid-sweep kill). Running jobs are not interrupted here;
     * interrupt those via their CancelToken (JobGuard::killAll).
     */
    std::shared_ptr<const std::atomic<bool>> stop;
};

class ParallelRunner
{
  public:
    using Job = std::function<SimResult()>;

    /** Everything runAll learns about one batch. */
    struct Outcome
    {
        /** One entry per job, in submission order. */
        std::vector<SimResult> results;

        /** Per-job wall-clock milliseconds (0 for cancelled jobs). */
        std::vector<double> wallMs;

        /** Worker count actually used. */
        unsigned jobsUsed = 0;

        /** True when fail-fast tripped and pending jobs were cancelled. */
        bool cancelled = false;

        /** Wall-clock milliseconds for the whole batch. */
        double totalWallMs = 0.0;
    };

    explicit ParallelRunner(ParallelOptions options = {});

    /**
     * Execute @p jobs and return per-job results plus timing. The results
     * vector is ordered by job index, never by completion order.
     */
    Outcome runAll(std::vector<Job> jobs);

    /** Convenience wrapper returning only the ordered results. */
    std::vector<SimResult> run(std::vector<Job> jobs);

    /**
     * Resolve a worker count: @p requested when positive, else the
     * FINEREG_JOBS environment variable when set to a positive integer,
     * else std::thread::hardware_concurrency() (at least 1).
     */
    static unsigned resolveJobs(unsigned requested = 0);

    /**
     * Run @p job, converting any escaping exception into a failed
     * SimResult (SimException keeps its typed error; anything else
     * becomes WorkerException). This is the exact per-job wrapper runAll
     * applies; JobGuard reuses it so retry attempts see the same failure
     * taxonomy whether or not they run on the pool.
     */
    static SimResult runCaptured(const Job &job);

    const ParallelOptions &options() const { return options_; }

  private:
    ParallelOptions options_;
};

} // namespace finereg

#endif // FINEREG_CORE_PARALLEL_RUNNER_HH
