/**
 * @file
 * Command-line options for the finereg_sim driver. Parsing is a library
 * function (no exit/abort on bad input) so it is unit-testable; the
 * driver turns ParseResult errors into usage output.
 */

#ifndef FINEREG_CORE_CLI_OPTIONS_HH
#define FINEREG_CORE_CLI_OPTIONS_HH

#include <optional>
#include <string>
#include <vector>

#include "core/gpu_config.hh"

namespace finereg
{

struct CliOptions
{
    /** Suite abbreviations to run; empty selects the whole suite. */
    std::vector<std::string> apps;

    /** Policies to run (default: baseline and FineReg). */
    std::vector<PolicyKind> policies{PolicyKind::Baseline,
                                     PolicyKind::FineReg};

    double gridScale = 1.0;

    /** Parallel worker count (0 = FINEREG_JOBS env, then hardware). */
    unsigned jobs = 0;

    /** The device configuration after applying overrides. */
    GpuConfig config = GpuConfig::gtx980();

    bool verbose = false;
    bool listApps = false;
    bool help = false;

    /** Emit one CSV row per run instead of the ASCII table. */
    bool csv = false;

    /**
     * Differential mode: instead of reporting performance, diff each run's
     * architectural end state against the untimed reference executor and
     * fail on any divergence.
     */
    bool diffCheck = false;

    // Resilience knobs (JobGuard + SweepJournal).

    /** Per-attempt wall-clock deadline in ms; 0 disables (default). */
    double jobTimeoutMs = 0.0;

    /** Retry budget per job for transient failures (timeouts, worker
     * exceptions); 0 never retries (default). */
    unsigned retries = 0;

    /** Base of the seeded exponential retry backoff, in ms. */
    double retryBackoffMs = 5.0;

    /** Sweep journal path: completed jobs are recorded as they finish and
     * jobs already recorded "ok" are replayed instead of re-run. Empty
     * (default) disables journaling. */
    std::string resumePath;
};

struct ParseResult
{
    std::optional<CliOptions> options; ///< set on success
    std::string error;                 ///< set on failure

    bool ok() const { return options.has_value(); }
};

/**
 * Parse argv into CliOptions.
 *
 * Supported flags:
 *   --app NAME[,NAME...]      suite apps to run (default: all)
 *   --policy NAME[,NAME...]   baseline|vt|regdram|regmutex|finereg|all
 *   --scale X                 grid scale factor (default 1.0)
 *   --jobs N                  parallel simulation jobs (default:
 *                             FINEREG_JOBS env, then hardware threads)
 *   --sms N                   number of SMs
 *   --acrf KB / --pcrf KB     FineReg register file split
 *   --srp-ratio X             RegMutex shared-pool fraction
 *   --growth-factor X         pending-growth damper
 *   --sched gto|lrr           warp scheduler
 *   --unified-memory          enable the UM configuration (Sec. VI-G3)
 *   --seed N                  simulation seed
 *   --max-cycles N            simulation cycle cap
 *   --audit-interval N        invariant auditor period (0 = off)
 *   --watchdog-cycles N       deadlock watchdog threshold (0 = off)
 *   --fault-seed N            deterministic fault injection (0 = off)
 *   --fault-dram P            injected DRAM-delay probability
 *   --fault-pcrf P            injected PCRF-full probability
 *   --fault-bitvec P          injected bit-vector-cache-miss probability
 *   --fault-worker P          injected dispatch-exception probability
 *   --fault-hang P            injected dispatch-hang probability
 *   --job-timeout-ms MS       per-attempt wall-clock deadline (0 = off)
 *   --retries N               retry budget for transient job failures
 *   --retry-backoff-ms MS     seeded exponential backoff base
 *   --resume FILE             journal completed jobs to FILE and replay
 *                             any already recorded there
 *   --diff-check              diff end states against the reference executor
 *   --csv                     machine-readable output
 *   --verbose                 enable inform() logging
 *   --list-apps               print the suite and exit
 *   --help                    print usage and exit
 */
ParseResult parseCliOptions(const std::vector<std::string> &args);

/** The usage text --help prints. */
std::string cliUsage();

/** Parse a policy name ("finereg", "vt", ...); nullopt when unknown. */
std::optional<PolicyKind> parsePolicyName(const std::string &name);

} // namespace finereg

#endif // FINEREG_CORE_CLI_OPTIONS_HH
