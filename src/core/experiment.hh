/**
 * @file
 * Experiment helpers shared by the bench harnesses: run an application (or
 * the whole suite) under a configuration, normalize against a baseline,
 * and compute the aggregate means the paper reports.
 */

#ifndef FINEREG_CORE_EXPERIMENT_HH
#define FINEREG_CORE_EXPERIMENT_HH

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/job_guard.hh"
#include "core/simulator.hh"
#include "core/sweep_journal.hh"
#include "workloads/suite.hh"

namespace finereg
{

/** Knobs for Experiment::runGuardedSweep / runGuardedSuite. */
struct GuardedSweepOptions
{
    double gridScale = 1.0;

    /** Worker count (ParallelRunner semantics: 0 = auto, 1 = serial). */
    unsigned jobs = 0;

    /** Deadline/retry/quarantine policy applied to every job. */
    GuardOptions guard;

    /**
     * Optional journal. Jobs whose key has an "ok" entry are replayed from
     * it (bit-identical, SimResult::fromJournal set) instead of being
     * re-simulated; every job that does run is appended as it completes.
     * Missing, failed, quarantined, and cancelled entries all re-run.
     */
    SweepJournal *journal = nullptr;

    /** Optional external guard (the chaos harness needs killAll() on the
     * live instance); when null the sweep owns a private one. */
    JobGuard *guardInstance = nullptr;

    /** External kill switch forwarded to ParallelOptions::stop: pending
     * jobs are skipped as Cancelled once set. */
    std::shared_ptr<const std::atomic<bool>> stop;

    /**
     * Per-attempt config hook, called after the cancel token is installed
     * and before the Gpu is built. The chaos harness uses it to arm
     * host-level fault sites on selected (key, attempt) pairs; the hook
     * must only touch knobs excluded from configFingerprint or resumed
     * sweeps lose their key identity.
     */
    std::function<void(GpuConfig &config, const std::string &key,
                       unsigned attempt)>
        perAttempt;
};

/** Everything a guarded sweep learns, beyond the result matrix. */
struct GuardedSweepOutcome
{
    /** results[c][a] = app a under configs[c], suite order (same contract
     * as Experiment::runSweep, including failed/cancelled annotations). */
    std::vector<std::vector<SimResult>> results;

    /** keys[c][a] = journal key of that cell (repro + resume identity). */
    std::vector<std::vector<std::string>> keys;

    unsigned replayed = 0; ///< Cells served from the journal.
    unsigned executed = 0; ///< Cells that ran and succeeded.
    unsigned failed = 0;   ///< Cells with a terminal failure (any kind).
    unsigned cancelled = 0;    ///< Failed cells killed externally.
    unsigned quarantined = 0;  ///< Failed cells skipped via quarantine.

    JobGuard::Stats guardStats;
    std::vector<QuarantineEntry> quarantine;

    bool allOk() const { return failed == 0; }
};

class Experiment
{
  public:
    /** Run one suite application under @p config. */
    static SimResult runApp(const std::string &abbrev,
                            const GpuConfig &config,
                            double grid_scale = 1.0);

    /**
     * Run every suite application under @p config, fanning the
     * independent runs across a ParallelRunner pool.
     *
     * @param grid_scale shrinks the grids for sweep-heavy experiments.
     * @param jobs worker count (0 = FINEREG_JOBS env, then hardware
     *             concurrency; 1 = serial). Results are bit-identical
     *             for every worker count.
     * @return results keyed by abbreviation, in suite order.
     */
    static std::vector<SimResult> runSuite(const GpuConfig &config,
                                           double grid_scale = 1.0,
                                           unsigned jobs = 0);

    /**
     * Run every suite application under every config in @p configs as one
     * flat job matrix on a single worker pool (so a 5-policy sweep keeps
     * all workers busy across config boundaries).
     *
     * @return out[c][a] = result of app a under configs[c], suite order.
     */
    static std::vector<std::vector<SimResult>>
    runSweep(const std::vector<GpuConfig> &configs, double grid_scale = 1.0,
             unsigned jobs = 0);

    /**
     * runSweep with the resilience layer: every job runs under a JobGuard
     * (wall-clock deadline, bounded retry with seeded backoff, quarantine)
     * and is optionally journaled/resumed. The sweep always completes: a
     * failing cell is annotated in place, never fatal to its siblings.
     */
    static GuardedSweepOutcome
    runGuardedSweep(const std::vector<GpuConfig> &configs,
                    const GuardedSweepOptions &options);

    /** Single-config convenience wrapper over runGuardedSweep. */
    static GuardedSweepOutcome
    runGuardedSuite(const GpuConfig &config,
                    const GuardedSweepOptions &options);

    /**
     * Build one guarded, journaled pool job for (kernel, config): replays
     * from @p journal when an "ok" entry exists for @p key, otherwise
     * wraps a Simulator::run attempt in @p guard and appends the outcome
     * to the journal as the job completes. This is the building block
     * under runGuardedSweep, shared by the CLI drivers (which fan custom
     * app x policy matrices rather than the full suite).
     */
    static ParallelRunner::Job makeGuardedJob(
        std::shared_ptr<const Kernel> kernel, const GpuConfig &config,
        std::string app, std::string key, JobGuard &guard,
        SweepJournal *journal,
        std::function<void(GpuConfig &, const std::string &, unsigned)>
            per_attempt = {});

    /** Per-app IPC of @p results divided by @p baseline (paired by
     * kernel name). */
    static std::map<std::string, double>
    normalizedIpc(const std::vector<SimResult> &results,
                  const std::vector<SimResult> &baseline);

    /** Ratio helper for a single app pair. */
    static double speedup(const SimResult &result,
                          const SimResult &baseline)
    {
        return baseline.ipc > 0 ? result.ipc / baseline.ipc : 0.0;
    }

    /** Arithmetic mean of per-app normalized values (the paper's
     * "average" bars). */
    static double meanOverApps(const std::map<std::string, double> &values);

    /** Mean restricted to a subset of app names. */
    static double meanOverApps(const std::map<std::string, double> &values,
                               const std::vector<std::string> &apps);

    /** A GTX-980 config preset with the policy set. */
    static GpuConfig configFor(PolicyKind kind);
};

} // namespace finereg

#endif // FINEREG_CORE_EXPERIMENT_HH
