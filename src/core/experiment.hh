/**
 * @file
 * Experiment helpers shared by the bench harnesses: run an application (or
 * the whole suite) under a configuration, normalize against a baseline,
 * and compute the aggregate means the paper reports.
 */

#ifndef FINEREG_CORE_EXPERIMENT_HH
#define FINEREG_CORE_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "workloads/suite.hh"

namespace finereg
{

class Experiment
{
  public:
    /** Run one suite application under @p config. */
    static SimResult runApp(const std::string &abbrev,
                            const GpuConfig &config,
                            double grid_scale = 1.0);

    /**
     * Run every suite application under @p config, fanning the
     * independent runs across a ParallelRunner pool.
     *
     * @param grid_scale shrinks the grids for sweep-heavy experiments.
     * @param jobs worker count (0 = FINEREG_JOBS env, then hardware
     *             concurrency; 1 = serial). Results are bit-identical
     *             for every worker count.
     * @return results keyed by abbreviation, in suite order.
     */
    static std::vector<SimResult> runSuite(const GpuConfig &config,
                                           double grid_scale = 1.0,
                                           unsigned jobs = 0);

    /**
     * Run every suite application under every config in @p configs as one
     * flat job matrix on a single worker pool (so a 5-policy sweep keeps
     * all workers busy across config boundaries).
     *
     * @return out[c][a] = result of app a under configs[c], suite order.
     */
    static std::vector<std::vector<SimResult>>
    runSweep(const std::vector<GpuConfig> &configs, double grid_scale = 1.0,
             unsigned jobs = 0);

    /** Per-app IPC of @p results divided by @p baseline (paired by
     * kernel name). */
    static std::map<std::string, double>
    normalizedIpc(const std::vector<SimResult> &results,
                  const std::vector<SimResult> &baseline);

    /** Ratio helper for a single app pair. */
    static double speedup(const SimResult &result,
                          const SimResult &baseline)
    {
        return baseline.ipc > 0 ? result.ipc / baseline.ipc : 0.0;
    }

    /** Arithmetic mean of per-app normalized values (the paper's
     * "average" bars). */
    static double meanOverApps(const std::map<std::string, double> &values);

    /** Mean restricted to a subset of app names. */
    static double meanOverApps(const std::map<std::string, double> &values,
                               const std::vector<std::string> &apps);

    /** A GTX-980 config preset with the policy set. */
    static GpuConfig configFor(PolicyKind kind);
};

} // namespace finereg

#endif // FINEREG_CORE_EXPERIMENT_HH
