#include "workloads/workload.hh"

#include <algorithm>

#include "analysis/lint.hh"
#include "common/log.hh"
#include "isa/kernel_builder.hh"

namespace finereg
{

namespace
{

/**
 * Register-index layout within a workload kernel:
 *   [0, P)            persistent registers (P = persistentRegs)
 *   [P, P+L)          load destination registers (L = loadsPerIter)
 *   [P+L, P+L+C)      compute scratch registers
 *   [R-cold, R)       cold registers (written once, never read)
 * The compute scratch region is whatever remains.
 */
struct RegLayout
{
    unsigned persistent;
    unsigned loads;
    unsigned scratchBegin;
    unsigned scratchCount;
    unsigned coldBegin;
    unsigned coldCount;

    int p(unsigned i) const { return static_cast<int>(i % persistent); }
    int l(unsigned i) const { return static_cast<int>(persistent + i % loads); }
    int s(unsigned i) const
    {
        return static_cast<int>(scratchBegin + i % scratchCount);
    }
};

RegLayout
makeLayout(const WorkloadParams &params)
{
    const unsigned regs = params.regsPerThread;
    RegLayout layout{};
    layout.persistent = std::max(1u, std::min(params.persistentRegs, regs));
    layout.loads =
        std::max(1u, std::min(params.loadsPerIter,
                              regs - layout.persistent > 0
                                  ? regs - layout.persistent
                                  : 1u));
    const unsigned used = layout.persistent + layout.loads;
    if (used >= regs) {
        // Degenerate small-register kernel: overlap scratch with loads.
        layout.scratchBegin = layout.persistent;
        layout.scratchCount = std::max(1u, regs - layout.persistent);
        layout.coldBegin = regs;
        layout.coldCount = 0;
        return layout;
    }
    const unsigned cold = std::min(params.coldRegs, regs - used - 1);
    layout.scratchBegin = used;
    layout.scratchCount = std::max(1u, regs - used - cold);
    layout.coldBegin = regs - cold;
    layout.coldCount = cold;
    return layout;
}

} // namespace

std::unique_ptr<Kernel>
buildWorkloadKernel(const WorkloadParams &params)
{
    if (params.regsPerThread < 4)
        FINEREG_FATAL("workload ", params.name, " needs >= 4 registers");

    KernelBuilder builder(params.name);
    builder.regsPerThread(params.regsPerThread)
        .threadsPerCta(params.threadsPerCta)
        .shmemPerCta(params.shmemPerCta)
        .gridCtas(params.gridCtas);

    const RegLayout layout = makeLayout(params);
    const bool diamond = params.divergeProb > 0.0;

    // Block indices are assigned in creation order; compute them up front
    // so branches can reference forward blocks.
    // B0 prologue, B1 body, [B2 else, B3 then, B4 tail], B_latch, B_epi.
    const int b_body = 1;
    const int b_then = diamond ? 3 : -1;
    const int b_tail = diamond ? 4 : -1;
    const int b_latch = diamond ? 5 : 2;
    const int b_epi = b_latch + 1;

    // --- B0: prologue -------------------------------------------------------
    builder.newBlock();
    // Seed the first persistent register (thread id surrogate), then chain.
    builder.alu(Opcode::MOV, layout.p(0), layout.p(0));
    for (unsigned i = 1; i < layout.persistent; ++i)
        builder.alu(Opcode::IADD, layout.p(i), layout.p(i - 1), layout.p(0));
    // Cold registers: defined, never used again.
    for (unsigned i = 0; i < layout.coldCount; ++i) {
        builder.alu(Opcode::MOV, static_cast<int>(layout.coldBegin + i),
                    layout.p(0));
    }

    // --- B1: loop body ------------------------------------------------------
    builder.newBlock();
    // Issue all loads back-to-back (memory-level parallelism), then the
    // compute chain consumes them: the first consumer is the stall PC.
    // Load 0 streams the primary region; the rest read cached secondary
    // structures. Each static load gets a distinct region (no aliasing).
    for (unsigned l = 0; l < params.loadsPerIter; ++l) {
        MemPattern pattern =
            l == 0 ? params.pattern : params.secondaryPattern;
        pattern.region += l;
        builder.load(Opcode::LD_GLOBAL, layout.l(l), layout.p(0), pattern);
    }

    unsigned scratch_cursor = 0;
    const unsigned compute_ops =
        params.computePerLoad * std::max(1u, params.loadsPerIter);
    for (unsigned c = 0; c < compute_ops; ++c) {
        const int dst = layout.s(scratch_cursor++);
        const int src0 = layout.l(c); // consume loaded values round-robin
        const int src1 = layout.p(c);
        if (c % 3 == 2)
            builder.alu(Opcode::FFMA, dst, src0, src1, layout.s(c));
        else
            builder.alu(c % 2 ? Opcode::FMUL : Opcode::FADD, dst, src0,
                        src1);
    }
    for (unsigned s = 0; s < params.sfuPerIter; ++s)
        builder.sfu(layout.s(scratch_cursor++), layout.s(s));
    // Fold the iteration's result into a persistent accumulator so the
    // persistent set stays live across the loop.
    builder.alu(Opcode::FADD, layout.p(1 % layout.persistent),
                layout.p(1 % layout.persistent), layout.s(0));

    if (diamond) {
        builder.branch(b_then, layout.s(0), 0.5, params.divergeProb);

        // --- B2: fall-through (else) path -----------------------------------
        builder.newBlock();
        builder.alu(Opcode::IADD, layout.s(1), layout.s(1), layout.p(0));
        builder.jump(b_tail);

        // --- B3: taken (then) path, falls through to the tail ----------------
        builder.newBlock();
        builder.alu(Opcode::IMUL, layout.s(1), layout.s(1), layout.p(0));

        // --- B4: reconvergence tail (immediate post-dominator of B1) ---------
        builder.newBlock();
        builder.alu(Opcode::FADD, layout.s(2), layout.s(1), layout.p(0));
    }

    // --- B_latch: shared ops, stores, loop back-edge -------------------------
    builder.newBlock();
    for (unsigned s = 0; s < params.sharedOpsPerIter; ++s) {
        MemPattern shared_pattern;
        shared_pattern.footprint = std::max(params.shmemPerCta, 256u);
        if (s % 2 == 0)
            builder.store(Opcode::ST_SHARED, layout.p(0), layout.s(s),
                          shared_pattern);
        else
            builder.load(Opcode::LD_SHARED, layout.s(scratch_cursor++),
                         layout.p(0), shared_pattern);
    }
    for (unsigned s = 0; s < params.storesPerIter; ++s) {
        MemPattern pattern = params.pattern;
        pattern.region += 16 + s;
        builder.store(Opcode::ST_GLOBAL, layout.p(0), layout.s(s), pattern);
    }
    if (params.barrierPerIter)
        builder.barrier();
    // Advance the streaming pointer.
    builder.alu(Opcode::IADD, layout.p(0), layout.p(0),
                layout.p(layout.persistent - 1));
    builder.loopBranch(b_body, layout.p(0), params.loopTrips);

    // --- B_epi: consume persistents, store results, exit ---------------------
    builder.newBlock();
    for (unsigned i = 0; i < layout.persistent; ++i) {
        MemPattern pattern = params.pattern;
        pattern.region += 24;
        builder.store(Opcode::ST_GLOBAL, layout.p(0), layout.p(i), pattern);
    }
    builder.exit();

    (void)b_epi;
    auto kernel = builder.finalize();
    analysis::assertLintClean(*kernel, "workload suite");
    return kernel;
}

} // namespace finereg
