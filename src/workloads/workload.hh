/**
 * @file
 * Synthetic workload generator. Each of the paper's 18 applications
 * (Table II) is represented by a parameterized kernel whose knobs control
 * exactly the observables FineReg's behaviour depends on:
 *
 *  - static resource footprint (registers/thread, threads/CTA, shared
 *    memory/CTA, grid size) -> which limit binds (Type-S vs Type-R,
 *    Figs. 2/3),
 *  - memory intensity, footprint, coalescing, reuse -> stall frequency and
 *    duration (Table III) and cache/DRAM behaviour (Fig. 15),
 *  - register lifetime structure (persistent / loaded / scratch / cold
 *    registers) -> live-register fraction at stall PCs (Fig. 5),
 *  - divergence and loop shape -> compiler traversal paths (Fig. 9).
 *
 * The generated CFG is: prologue -> loop { loads, compute, optional
 * divergent diamond, optional shared ops } -> epilogue stores -> EXIT.
 */

#ifndef FINEREG_WORKLOADS_WORKLOAD_HH
#define FINEREG_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>

#include "isa/kernel.hh"

namespace finereg
{

struct WorkloadParams
{
    std::string name;

    /** Type-R = bounded by register file / shared memory (Table II). */
    bool typeR = false;

    // Static resources --------------------------------------------------------

    unsigned regsPerThread = 16;
    unsigned threadsPerCta = 64;
    unsigned shmemPerCta = 0;
    unsigned gridCtas = 512;

    // Register lifetime structure ---------------------------------------------

    /** Registers live across the whole loop (defined in the prologue,
     * consumed in the epilogue, updated in the loop). */
    unsigned persistentRegs = 4;

    /** Registers written in the prologue and never read again (allocated
     * but dead — the inefficiency Fig. 5 measures). */
    unsigned coldRegs = 2;

    // Loop shape --------------------------------------------------------------

    unsigned loopTrips = 10;
    unsigned loadsPerIter = 2;
    unsigned computePerLoad = 4;
    unsigned sfuPerIter = 0;
    unsigned sharedOpsPerIter = 0;
    unsigned storesPerIter = 0;
    bool barrierPerIter = false;

    /** Probability a per-iteration branch diverges (0 disables the
     * diamond entirely). */
    double divergeProb = 0.0;

    // Memory behaviour ---------------------------------------------------------

    /** Primary (streaming) pattern: used by the first load and by global
     * stores. Sub-line strides (e.g. 64 B) make consecutive iterations
     * share a 128 B line, halving DRAM transactions per iteration. */
    MemPattern pattern{};

    /** Secondary pattern for the remaining loads: small footprint that
     * settles into the L2 (or L1 with reuse), modelling the cached data
     * structures real kernels read besides their streaming input. */
    MemPattern secondaryPattern{8, 384 * 1024, 1, 128, 0.3, true};
};

/** Build the kernel for @p params. */
std::unique_ptr<Kernel> buildWorkloadKernel(const WorkloadParams &params);

} // namespace finereg

#endif // FINEREG_WORKLOADS_WORKLOAD_HH
