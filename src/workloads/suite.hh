/**
 * @file
 * The benchmark suite: the paper's 18 applications (Table II), each mapped
 * to a synthetic kernel whose parameters reproduce its published
 * characteristics — Type-S/Type-R classification, per-CTA footprint
 * (Fig. 3), live-register band (Fig. 5), and stall cadence (Table III).
 */

#ifndef FINEREG_WORKLOADS_SUITE_HH
#define FINEREG_WORKLOADS_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace finereg
{

struct SuiteEntry
{
    std::string abbrev;   ///< Paper abbreviation (BF, BI, ...).
    std::string fullName; ///< e.g. "Breadth-First Search".
    std::string origin;   ///< Source suite in the paper (Rodinia, ...).
    WorkloadParams params;

    bool typeR() const { return params.typeR; }
};

class Suite
{
  public:
    /** All 18 applications in the paper's Table II order. */
    static const std::vector<SuiteEntry> &all();

    /** Lookup by abbreviation; fatal on unknown names. */
    static const SuiteEntry &byName(const std::string &abbrev);

    /** Build the kernel for an entry, optionally scaling the grid. */
    static std::unique_ptr<Kernel> makeKernel(const SuiteEntry &entry,
                                              double grid_scale = 1.0);

    /** Abbreviations of all Type-S (scheduler-limited) applications. */
    static std::vector<std::string> typeS();

    /** Abbreviations of all Type-R (register/shmem-limited) applications. */
    static std::vector<std::string> typeRNames();
};

} // namespace finereg

#endif // FINEREG_WORKLOADS_SUITE_HH
