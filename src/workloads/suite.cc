#include "workloads/suite.hh"

#include <algorithm>

#include "common/log.hh"

namespace finereg
{

namespace
{

constexpr std::uint64_t kMiB = 1024ull * 1024ull;

/** Shorthand for assembling a suite entry. */
SuiteEntry
entry(std::string abbrev, std::string full, std::string origin,
      WorkloadParams params)
{
    params.name = abbrev;
    return SuiteEntry{std::move(abbrev), std::move(full), std::move(origin),
                      std::move(params)};
}

std::vector<SuiteEntry>
buildSuite()
{
    std::vector<SuiteEntry> suite;

    // ---------------- Type-S: scheduler-limited (Table II, top) -----------

    {
        // Breadth-First Search: irregular graph traversal; scattered loads
        // stall CTAs almost immediately (Table III: 193 cycles), heavily
        // memory-bound so extra CTAs convert poorly into IPC (Fig. 13).
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 12;
        p.threadsPerCta = 64;
        p.gridCtas = 4096;
        p.persistentRegs = 2;
        p.coldRegs = 2;
        p.loopTrips = 8;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.divergeProb = 0.25;
        p.pattern = {0, 64 * kMiB, 1, 256, 0.0};
        suite.push_back(entry("BF", "Breadth-First Search", "Rodinia", p));
    }
    {
        // BiCGStab: sparse linear algebra with a balanced compute/memory
        // mix; responds strongly to extra CTAs (>60% with 2x, Fig. 13).
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 16;
        p.threadsPerCta = 64;
        p.gridCtas = 3072;
        p.persistentRegs = 3;
        p.coldRegs = 2;
        p.loopTrips = 12;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("BI", "BiCGStab", "PolyBench", p));
    }
    {
        // Convolution Separable: the Fig. 4 case study; coalesced loads
        // with halo reuse, modest shared-memory staging.
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 16;
        p.threadsPerCta = 128;
        p.shmemPerCta = 2 * 1024;
        p.gridCtas = 2048;
        p.persistentRegs = 4;
        p.coldRegs = 2;
        p.loopTrips = 10;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.sharedOpsPerIter = 2;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("CS", "Convolution Separable", "CUDA SDK", p));
    }
    {
        // Fluid Dynamics: long-running CTAs (Table III: 2018 cycles),
        // streaming stencils; one of the Fig. 15 traffic cases.
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 14;
        p.threadsPerCta = 64;
        p.gridCtas = 3072;
        p.persistentRegs = 3;
        p.coldRegs = 1;
        p.loopTrips = 16;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.storesPerIter = 0;
        p.pattern = {0, 48 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("FD", "Fluid Dynamics", "PolyBench", p));
    }
    {
        // Kmeans: centroid distance scans; streaming, memory-bound, so
        // 2.5x CTAs yield <40% IPC (Sec. VI-C).
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 10;
        p.threadsPerCta = 64;
        p.gridCtas = 4096;
        p.persistentRegs = 2;
        p.coldRegs = 2;
        p.loopTrips = 10;
        p.loadsPerIter = 2;
        p.computePerLoad = 2;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("KM", "Kmeans", "Rodinia", p));
    }
    {
        // Monte Carlo: SFU-heavy path simulation; tiny persistent state,
        // hence the <15% live-register floor in Fig. 5.
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 14;
        p.threadsPerCta = 64;
        p.gridCtas = 2048;
        p.persistentRegs = 1;
        p.coldRegs = 4;
        p.loopTrips = 12;
        p.loadsPerIter = 1;
        p.computePerLoad = 3;
        p.sfuPerIter = 1;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("MC", "Monte Carlo", "Parboil", p));
    }
    {
        // Needleman-Wunsch: wavefront dynamic programming; short bursts
        // (Table III: 311), divergent, low live fraction.
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 12;
        p.threadsPerCta = 64;
        p.shmemPerCta = 2 * 1024;
        p.gridCtas = 3072;
        p.persistentRegs = 1;
        p.coldRegs = 3;
        p.loopTrips = 6;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.divergeProb = 0.2;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("NW", "Needleman-Wunsch", "Rodinia", p));
    }
    {
        // Stencil: 7-point streaming stencil; Fig. 15 traffic case.
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 16;
        p.threadsPerCta = 64;
        p.gridCtas = 2048;
        p.persistentRegs = 3;
        p.coldRegs = 1;
        p.loopTrips = 12;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.storesPerIter = 0;
        p.pattern = {0, 48 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("ST", "Stencil", "Parboil", p));
    }
    {
        // Symmetric Rank-2k update: memory-intensive BLAS-3 variant
        // (listed with KM/BF in the Fig. 14 stall study).
        WorkloadParams p;
        p.typeR = false;
        p.regsPerThread = 16;
        p.threadsPerCta = 64;
        p.gridCtas = 3072;
        p.persistentRegs = 3;
        p.coldRegs = 2;
        p.loopTrips = 14;
        p.loadsPerIter = 2;
        p.computePerLoad = 1;
        p.pattern = {0, 32 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("SY2", "Symmetric Rank 2k", "PolyBench", p));
    }

    // ---------------- Type-R: register/shmem-limited (Table II, bottom) ----

    {
        // Transpose Vector Multiply (atax): register-heavy with strong
        // reuse — a main beneficiary of the UM configuration (Fig. 19).
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 40;
        p.threadsPerCta = 64;
        p.gridCtas = 1536;
        p.persistentRegs = 10;
        p.coldRegs = 6;
        p.loopTrips = 10;
        p.loadsPerIter = 2;
        p.computePerLoad = 3;
        p.pattern = {0, 16 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("AT", "Transpose Vector Multiply",
                              "PolyBench", p));
    }
    {
        // CFD Solver: the Fig. 7 liveness example; wide register working
        // set, streaming flux computation.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 48;
        p.threadsPerCta = 64;
        p.gridCtas = 1536;
        p.persistentRegs = 8;
        p.coldRegs = 6;
        p.loopTrips = 10;
        p.loadsPerIter = 3;
        p.computePerLoad = 2;
        p.pattern = {0, 32 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("CF", "CFD Solver", "Rodinia", p));
    }
    {
        // Hotspot: thermal stencil with shared-memory tiles.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 36;
        p.threadsPerCta = 128;
        p.shmemPerCta = 4 * 1024;
        p.gridCtas = 768;
        p.persistentRegs = 5;
        p.coldRegs = 4;
        p.loopTrips = 8;
        p.loadsPerIter = 2;
        p.computePerLoad = 3;
        p.sharedOpsPerIter = 2;
        p.barrierPerIter = true;
        p.pattern = {0, 16 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("HS", "Hotspot", "Rodinia", p));
    }
    {
        // LIBOR: market-rate path simulation; many registers allocated,
        // few simultaneously live (<15% floor in Fig. 5).
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 56;
        p.threadsPerCta = 64;
        p.gridCtas = 1536;
        p.persistentRegs = 5;
        p.coldRegs = 10;
        p.loopTrips = 12;
        p.loadsPerIter = 1;
        p.computePerLoad = 5;
        p.sfuPerIter = 1;
        p.pattern = {0, 16 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("LI", "LIBOR", "GPGPU-Sim", p));
    }
    {
        // Lattice-Boltzmann: enormous streaming working set, wide
        // register allocation.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 44;
        p.threadsPerCta = 64;
        p.gridCtas = 1536;
        p.persistentRegs = 10;
        p.coldRegs = 4;
        p.loopTrips = 8;
        p.loadsPerIter = 3;
        p.computePerLoad = 2;
        p.storesPerIter = 2;
        p.pattern = {0, 48 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("LB", "Lattice-Boltzmann", "Parboil", p));
    }
    {
        // SGEMM: blocked matrix multiply; the longest stall-free bursts
        // (Table III: 2299 cycles), barrier-synchronized tiles.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 40;
        p.threadsPerCta = 128;
        p.shmemPerCta = 4 * 1024;
        p.gridCtas = 768;
        p.persistentRegs = 6;
        p.coldRegs = 4;
        p.loopTrips = 16;
        p.loadsPerIter = 2;
        p.computePerLoad = 2;
        p.sharedOpsPerIter = 4;
        p.barrierPerIter = true;
        p.pattern = {0, 16 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("SG", "SGEMM", "PolyBench", p));
    }
    {
        // Sradv2: speckle-reducing anisotropic diffusion; divergent,
        // low live fraction despite a wide allocation.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 36;
        p.threadsPerCta = 64;
        p.gridCtas = 1536;
        p.persistentRegs = 3;
        p.coldRegs = 8;
        p.loopTrips = 8;
        p.loadsPerIter = 2;
        p.computePerLoad = 2;
        p.divergeProb = 0.15;
        p.pattern = {0, 16 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("SR2", "Sradv2", "Rodinia", p));
    }
    {
        // Two Point Angular correlation: shared-memory histograms deplete
        // shmem so thoroughly that no scheme can add CTAs (Sec. VI-C).
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 32;
        p.threadsPerCta = 128;
        p.shmemPerCta = 32 * 1024;
        p.gridCtas = 768;
        p.persistentRegs = 6;
        p.coldRegs = 6;
        p.loopTrips = 10;
        p.loadsPerIter = 2;
        p.computePerLoad = 3;
        p.sharedOpsPerIter = 4;
        p.barrierPerIter = true;
        p.pattern = {0, 16 * kMiB, 1, 32, 0.0};
        suite.push_back(entry("TA", "Two Point Angular", "Parboil", p));
    }
    {
        // Transpose: bandwidth-bound tile transpose with partially
        // uncoalesced accesses.
        WorkloadParams p;
        p.typeR = true;
        p.regsPerThread = 34;
        p.threadsPerCta = 256;
        p.shmemPerCta = 8 * 1024;
        p.gridCtas = 768;
        p.persistentRegs = 8;
        p.coldRegs = 4;
        p.loopTrips = 6;
        p.loadsPerIter = 2;
        p.computePerLoad = 2;
        p.storesPerIter = 2;
        p.barrierPerIter = true;
        p.pattern = {0, 24 * kMiB, 1, 64, 0.0};
        suite.push_back(entry("TR", "Transpose", "CUDA SDK", p));
    }

    return suite;
}

} // namespace

const std::vector<SuiteEntry> &
Suite::all()
{
    static const std::vector<SuiteEntry> suite = buildSuite();
    return suite;
}

const SuiteEntry &
Suite::byName(const std::string &abbrev)
{
    for (const auto &app : all()) {
        if (app.abbrev == abbrev)
            return app;
    }
    FINEREG_FATAL("unknown benchmark '", abbrev, "'");
}

std::unique_ptr<Kernel>
Suite::makeKernel(const SuiteEntry &app, double grid_scale)
{
    WorkloadParams params = app.params;
    params.gridCtas = std::max(
        1u, static_cast<unsigned>(params.gridCtas * grid_scale));
    return buildWorkloadKernel(params);
}

std::vector<std::string>
Suite::typeS()
{
    std::vector<std::string> names;
    for (const auto &app : all()) {
        if (!app.typeR())
            names.push_back(app.abbrev);
    }
    return names;
}

std::vector<std::string>
Suite::typeRNames()
{
    std::vector<std::string> names;
    for (const auto &app : all()) {
        if (app.typeR())
            names.push_back(app.abbrev);
    }
    return names;
}

} // namespace finereg
