/**
 * @file
 * Pass framework for static kernel analysis. Passes are named analyses
 * over an immutable isa::Kernel CFG; the AnalysisManager schedules them
 * topologically over their declared dependencies, runs each at most once
 * per kernel, and caches both the result object and the diagnostics the
 * pass emitted. Passes that require a structurally sound CFG are gated on
 * the cfg-check pass so dataflow never walks a malformed graph.
 */

#ifndef FINEREG_ANALYSIS_PASS_HH
#define FINEREG_ANALYSIS_PASS_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/kernel.hh"

namespace finereg::analysis
{

class AnalysisManager;

/** Knobs for a lint run, shared by every pass through AnalysisContext. */
struct LintOptions
{
    /**
     * Test hook mirroring RmuConfig::dropLiveReg: remove this register
     * from every compiler bit vector before cross-validation (-1 = off).
     * The cross-validator must reject the result as unsound, exactly as
     * the dynamic oracle catches the RMU-level hook.
     */
    int dropLiveReg = -1;

    /**
     * Test hook mirroring RmuConfig::fullContextBackup: validate against
     * all-allocated-registers-live vectors. Sound but grossly
     * over-approximate; the validator must warn.
     */
    bool fullLiveMask = false;

    /** Mean (compiler live bits / derived live bits) above which the
     * over-approximation warning fires. */
    double overApproxMeanRatio = 1.5;

    /** ... and the mean surplus live registers per instruction it also
     * requires, so tiny kernels cannot trip the ratio on noise. */
    double overApproxMeanSlack = 2.0;

    /** Cap on diagnostics emitted per pass per kernel. */
    unsigned maxDiagsPerPass = 64;

    /**
     * Per-warp dynamic instruction budget the mem-access pass proves
     * against; matches RefExecutor's default runaway guard. A kernel whose
     * provable loop-trip product exceeds it draws a LoopBudgetExceeded
     * warning before it can hang an executor.
     */
    std::uint64_t warpInstrBudget = 4'000'000;

    /**
     * Test hook mirroring dropLiveReg for the compressibility claim: force
     * the compiler's claimed width for this register down to
     * narrowClaimBits (-1 = off). The static comparison must warn and the
     * dynamic cross-validator must reject the claim as unsound.
     */
    int narrowClaimReg = -1;
    unsigned narrowClaimBits = 0;
};

/** Base class for cached per-kernel pass results. */
class AnalysisResultBase
{
  public:
    virtual ~AnalysisResultBase() = default;
};

/** Everything a pass sees while running. */
struct AnalysisContext
{
    const Kernel &kernel;
    const LintOptions &options;

    /** Sink for this pass's findings (cached with the result). */
    DiagnosticSet &diags;

    /** For fetching dependency results (already scheduled). */
    AnalysisManager &manager;
};

class Pass
{
  public:
    virtual ~Pass() = default;

    virtual std::string_view name() const = 0;

    /** Pass names that must run (and be cached) before this one. */
    virtual std::vector<std::string_view> dependsOn() const { return {}; }

    /**
     * When true (the default), the manager skips this pass on kernels the
     * cfg-check pass found structurally unsound — dataflow over a corrupt
     * CFG would be meaningless or out-of-bounds.
     */
    virtual bool requiresSoundCfg() const { return true; }

    virtual std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) = 0;
};

/** Outcome of running (or skipping) one pass on one kernel. */
struct PassOutcome
{
    /** Null when the pass was skipped (gated on an unsound CFG). */
    std::unique_ptr<AnalysisResultBase> result;

    /** Diagnostics the pass emitted when it ran. */
    DiagnosticSet diags;

    bool skipped = false;
};

/**
 * Owns the registered passes and a per-kernel cache of their outcomes.
 * One manager is bound to one LintOptions value; results computed under
 * different options must not share a manager.
 */
class AnalysisManager
{
  public:
    explicit AnalysisManager(LintOptions options = {});
    ~AnalysisManager();

    AnalysisManager(const AnalysisManager &) = delete;
    AnalysisManager &operator=(const AnalysisManager &) = delete;

    /** A manager pre-loaded with the full default pass pipeline. */
    static std::unique_ptr<AnalysisManager>
    withDefaultPasses(LintOptions options = {});

    /** Register @p pass; names must be unique. */
    void registerPass(std::unique_ptr<Pass> pass);

    /** Registered pass names in registration (= topological-friendly)
     * order. */
    std::vector<std::string_view> passNames() const;

    /**
     * Ensure @p pass_name (and, transitively, its dependencies) has run on
     * @p kernel, computing and caching on first request. Fatal on unknown
     * names or dependency cycles.
     */
    const PassOutcome &ensure(const Kernel &kernel,
                              std::string_view pass_name);

    /**
     * Typed access to a cached-or-computed result; nullptr when the pass
     * was skipped.
     */
    template <typename T>
    const T *
    resultOf(const Kernel &kernel, std::string_view pass_name)
    {
        return dynamic_cast<const T *>(ensure(kernel, pass_name).result.get());
    }

    /** Drop all cached outcomes for @p kernel. */
    void invalidate(const Kernel &kernel);

    const LintOptions &options() const { return options_; }

  private:
    Pass *findPass(std::string_view name);

    LintOptions options_;
    std::vector<std::unique_ptr<Pass>> passes_;

    /** kernel -> pass name -> outcome. */
    std::map<const Kernel *,
             std::map<std::string, PassOutcome, std::less<>>>
        cache_;

    /** Pass names currently running on behalf of a kernel (cycle guard). */
    std::vector<std::string> inFlight_;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_PASS_HH
