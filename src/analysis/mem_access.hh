/**
 * @file
 * Memory-access pass: abstract-evaluates the executors' deterministic
 * address generators (sm/warp_exec.hh warpGenerateAddress and
 * ref/cta_values.cc sharedBaseOffset) into affine lane-address forms,
 * proves per-warp dynamic execution bounds from structured loop trip
 * counts, and derives from them:
 *
 *  - a static coalescing classification per kernel (worst declared
 *    transactions over the global ops),
 *  - a whole-grid DRAM-transaction upper bound,
 *  - a proven shared-memory bank-conflict degree per op (replacing the
 *    region-scan heuristic shared_mem_check used before this pass),
 *  - a proven per-warp instruction bound checked against the executor's
 *    runaway budget (LintOptions::warpInstrBudget).
 *
 * Bounds degrade to "unbounded" (kUnboundedExecs) on probabilistic
 * backward edges, never silently wrong: the dynamic cross-validator
 * asserts every observed address and execution count against these
 * abstractions.
 */

#ifndef FINEREG_ANALYSIS_MEM_ACCESS_HH
#define FINEREG_ANALYSIS_MEM_ACCESS_HH

#include "analysis/abstract_interp.hh"
#include "analysis/pass.hh"

namespace finereg::analysis
{

struct MemAccessResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "mem-access";

    /** Execution-bound value meaning "no static bound provable". */
    static constexpr std::uint64_t kUnboundedExecs = ~0ull;

    struct OpInfo
    {
        unsigned instr = 0;
        bool shared = false;
        bool load = false;

        /** Abstract lane-address set (byte addresses; shared ops are
         * region-relative offsets with wrap = region). */
        AffineForm lanes;

        /** Per-warp dynamic executions upper bound. */
        std::uint64_t execBound = 0;

        unsigned transactions = 1;

        /** Shared ops: proven worst lanes-per-bank (1 = conflict-free). */
        unsigned bankDegree = 0;

        /** Shared ops: stride preserves the 128-byte warp phase. */
        bool strideAligned = true;
    };

    std::vector<OpInfo> ops;

    /** Per-block per-warp execution upper bound (kUnboundedExecs when a
     * probabilistic backward edge makes the block's trip unprovable). */
    std::vector<std::uint64_t> blockExecBound;

    /** Proven per-warp dynamic instruction bound over the whole kernel. */
    std::uint64_t warpInstrBound = 0;
    bool warpInstrBoundKnown = true;

    /** Whole-grid 128-byte DRAM transaction upper bound (global ops). */
    std::uint64_t dramTransactionBound = 0;
    bool dramBoundKnown = true;

    /** "none" | "coalesced" | "strided" | "scattered". */
    std::string coalescing = "none";

    unsigned provenConflictFreeOps = 0;
    unsigned possiblyConflictingOps = 0;

    /** Lookup by flat instruction index; nullptr for non-mem instrs. */
    const OpInfo *
    opAt(unsigned instr_index) const
    {
        for (const OpInfo &op : ops) {
            if (op.instr == instr_index)
                return &op;
        }
        return nullptr;
    }
};

/** The region size the executors wrap shared addresses into. */
std::uint32_t sharedRegionBytes(const Kernel &kernel);

class MemAccessPass : public Pass
{
  public:
    std::string_view name() const override { return MemAccessResult::kName; }

    std::vector<std::string_view>
    dependsOn() const override
    {
        return {CfgCheckResult::kName};
    }

    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_MEM_ACCESS_HH
