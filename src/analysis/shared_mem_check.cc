#include "analysis/shared_mem_check.hh"

#include <sstream>

#include "analysis/mem_access.hh"
#include "common/log.hh"

namespace finereg::analysis
{

std::vector<std::string_view>
SharedMemCheckPass::dependsOn() const
{
    return {MemAccessResult::kName};
}

std::unique_ptr<AnalysisResultBase>
SharedMemCheckPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    auto result = std::make_unique<SharedMemCheckResult>();

    // The bank-conflict verdict comes from the mem-access pass's affine
    // lane-address forms: a proof per op, not a region heuristic.
    const auto *mem = ctx.manager.resultOf<MemAccessResult>(
        kernel, MemAccessResult::kName);

    const std::uint32_t region = sharedRegionBytes(kernel);

    unsigned emitted = 0;
    auto report = [&](DiagKind kind, unsigned i, std::string message) {
        if (emitted++ < ctx.options.maxDiagsPerPass) {
            ctx.diags.add(kind, kernel.name(),
                          kernel.blockOfInstr(i), static_cast<int>(i), -1,
                          std::move(message));
        }
    };

    const auto &instrs = kernel.instrs();
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (instr.op != Opcode::LD_SHARED && instr.op != Opcode::ST_SHARED)
            continue;
        ++result->sharedOps;

        const MemAccessResult::OpInfo *op =
            mem != nullptr ? mem->opAt(i) : nullptr;
        const unsigned degree = op != nullptr ? op->bankDegree : kWarpSize;
        result->maxBankConflictDegree =
            std::max(result->maxBankConflictDegree, degree);

        if (kernel.shmemPerCta() == 0) {
            ++result->opsWithoutShmem;
            report(DiagKind::SharedOpWithoutShmem, i,
                   "shared access in a kernel declaring no shared memory; "
                   "the executor wraps it into the minimum 128-byte region");
        } else if (instr.mem.footprint > region) {
            ++result->footprintViolations;
            std::ostringstream oss;
            oss << "declared footprint of " << instr.mem.footprint
                << " bytes exceeds the CTA's " << region
                << "-byte shared region; the address walk silently wraps";
            report(DiagKind::SharedFootprintExceedsShmem, i, oss.str());
        }

        if (instr.mem.transactions > 1) {
            ++result->ignoredTransactionOps;
            std::ostringstream oss;
            oss << "declares " << instr.mem.transactions
                << " transactions, but the shared path models one fixed "
                   "latency regardless; the extra transactions cost nothing";
            report(DiagKind::SharedTransactionsIgnored, i, oss.str());
        }

        if (degree > 1) {
            std::ostringstream oss;
            oss << "lane addresses statically collide " << degree
                << "-way in a bank; the timing model does not serialize "
                   "shared conflicts";
            report(DiagKind::SharedBankConflict, i, oss.str());
        }
    }

    return result;
}

} // namespace finereg::analysis
