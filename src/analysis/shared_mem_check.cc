#include "analysis/shared_mem_check.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/log.hh"

namespace finereg::analysis
{

namespace
{

constexpr unsigned kNumBanks = 32;
constexpr unsigned kBankWidth = 4;

/** The region size the executor wraps shared addresses into. */
std::uint32_t
sharedRegion(const Kernel &kernel)
{
    return std::max<std::uint32_t>((kernel.shmemPerCta() + 127u) & ~127u,
                                   128u);
}

/**
 * Worst lanes-per-bank degree over every 4-aligned base offset. Lane l
 * touches word (base + 4*l) mod region; bank = word / 4 mod 32. When
 * region/4 is a multiple of 32 the mapping is offset-invariant and the
 * full scan collapses to one offset.
 */
unsigned
worstBankDegree(std::uint32_t region)
{
    const std::uint32_t words = region / kBankWidth;
    const std::uint32_t offsets = words % kNumBanks == 0 ? 1 : words;
    unsigned worst = 0;
    for (std::uint32_t o = 0; o < offsets; ++o) {
        std::array<unsigned, kNumBanks> lanes_per_bank{};
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const std::uint32_t word = (o + lane) % words;
            ++lanes_per_bank[word % kNumBanks];
        }
        worst = std::max(worst,
                         *std::max_element(lanes_per_bank.begin(),
                                           lanes_per_bank.end()));
    }
    return worst;
}

} // namespace

std::unique_ptr<AnalysisResultBase>
SharedMemCheckPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    auto result = std::make_unique<SharedMemCheckResult>();

    const std::uint32_t region = sharedRegion(kernel);
    const unsigned degree = worstBankDegree(region);

    unsigned emitted = 0;
    auto report = [&](DiagKind kind, unsigned i, std::string message) {
        if (emitted++ < ctx.options.maxDiagsPerPass) {
            ctx.diags.add(kind, kernel.name(),
                          kernel.blockOfInstr(i), static_cast<int>(i), -1,
                          std::move(message));
        }
    };

    const auto &instrs = kernel.instrs();
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (instr.op != Opcode::LD_SHARED && instr.op != Opcode::ST_SHARED)
            continue;
        ++result->sharedOps;
        result->maxBankConflictDegree =
            std::max(result->maxBankConflictDegree, degree);

        if (kernel.shmemPerCta() == 0) {
            ++result->opsWithoutShmem;
            report(DiagKind::SharedOpWithoutShmem, i,
                   "shared access in a kernel declaring no shared memory; "
                   "the executor wraps it into the minimum 128-byte region");
        } else if (instr.mem.footprint > region) {
            ++result->footprintViolations;
            std::ostringstream oss;
            oss << "declared footprint of " << instr.mem.footprint
                << " bytes exceeds the CTA's " << region
                << "-byte shared region; the address walk silently wraps";
            report(DiagKind::SharedFootprintExceedsShmem, i, oss.str());
        }

        if (instr.mem.transactions > 1) {
            ++result->ignoredTransactionOps;
            std::ostringstream oss;
            oss << "declares " << instr.mem.transactions
                << " transactions, but the shared path models one fixed "
                   "latency regardless; the extra transactions cost nothing";
            report(DiagKind::SharedTransactionsIgnored, i, oss.str());
        }

        if (degree > 1) {
            std::ostringstream oss;
            oss << "lane addresses statically collide " << degree
                << "-way in a bank; the timing model does not serialize "
                   "shared conflicts";
            report(DiagKind::SharedBankConflict, i, oss.str());
        }
    }

    return result;
}

} // namespace finereg::analysis
