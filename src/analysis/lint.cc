#include "analysis/lint.hh"

#include <atomic>

#include "analysis/liveness_check.hh"
#include "analysis/shared_mem_check.hh"
#include "common/log.hh"

namespace finereg::analysis
{

LintResult
lintKernel(AnalysisManager &manager, const Kernel &kernel)
{
    LintResult result;
    for (const std::string_view pass_name : manager.passNames()) {
        const PassOutcome &outcome = manager.ensure(kernel, pass_name);
        result.diags.append(outcome.diags);
    }

    result.stats.staticInstrs = kernel.staticInstrs();
    result.stats.numBlocks = static_cast<unsigned>(kernel.blocks().size());

    if (const auto *live = manager.resultOf<LivenessCheckResult>(
            kernel, LivenessCheckResult::kName)) {
        result.stats.maxLive = live->maxLive;
        result.stats.meanLive = live->meanLive;
        result.stats.liveRatio = live->liveRatio;
        result.stats.deadDefs = live->deadDefCount;
    }
    if (const auto *shared = manager.resultOf<SharedMemCheckResult>(
            kernel, SharedMemCheckResult::kName)) {
        result.stats.sharedOps = shared->sharedOps;
        result.stats.maxBankConflict = shared->maxBankConflictDegree;
    }
    return result;
}

LintResult
lintKernel(const Kernel &kernel, const LintOptions &options)
{
    auto manager = AnalysisManager::withDefaultPasses(options);
    return lintKernel(*manager, kernel);
}

namespace
{

std::atomic<bool> lint_enforcement{true};

} // namespace

bool
setLintEnforcement(bool enabled)
{
    return lint_enforcement.exchange(enabled);
}

bool
lintEnforcementEnabled()
{
    return lint_enforcement.load();
}

LintResult
assertLintClean(const Kernel &kernel, std::string_view origin)
{
    if (!lint_enforcement.load())
        return {};
    LintResult result = lintKernel(kernel);
    if (result.diags.hasErrors()) {
        FINEREG_FATAL(origin, " produced kernel '", kernel.name(),
                      "' with ", result.diags.errors(),
                      " lint error(s):\n",
                      result.diags.renderText(16));
    }
    return result;
}

} // namespace finereg::analysis
