#include "analysis/lint.hh"

#include <atomic>

#include "analysis/compressibility.hh"
#include "analysis/liveness_check.hh"
#include "analysis/mem_access.hh"
#include "analysis/shared_mem_check.hh"
#include "analysis/shmem_race.hh"
#include "analysis/value_range.hh"
#include "common/log.hh"

namespace finereg::analysis
{

LintResult
lintKernel(AnalysisManager &manager, const Kernel &kernel)
{
    LintResult result;
    for (const std::string_view pass_name : manager.passNames()) {
        const PassOutcome &outcome = manager.ensure(kernel, pass_name);
        result.diags.append(outcome.diags);
    }

    result.stats.staticInstrs = kernel.staticInstrs();
    result.stats.numBlocks = static_cast<unsigned>(kernel.blocks().size());

    if (const auto *live = manager.resultOf<LivenessCheckResult>(
            kernel, LivenessCheckResult::kName)) {
        result.stats.maxLive = live->maxLive;
        result.stats.meanLive = live->meanLive;
        result.stats.liveRatio = live->liveRatio;
        result.stats.deadDefs = live->deadDefCount;
    }
    if (const auto *shared = manager.resultOf<SharedMemCheckResult>(
            kernel, SharedMemCheckResult::kName)) {
        result.stats.sharedOps = shared->sharedOps;
        result.stats.maxBankConflict = shared->maxBankConflictDegree;
    }
    if (const auto *vr = manager.resultOf<ValueRangeResult>(
            kernel, ValueRangeResult::kName)) {
        result.stats.constFoldableDefs = vr->constFoldableDefs;
        result.stats.overflowDefs = vr->overflowDefs;
    }
    if (const auto *mem = manager.resultOf<MemAccessResult>(
            kernel, MemAccessResult::kName)) {
        result.stats.coalescing = mem->coalescing;
        result.stats.dramTransactionBound = mem->dramTransactionBound;
        result.stats.dramBoundKnown = mem->dramBoundKnown;
    }
    if (const auto *comp = manager.resultOf<CompressibilityResult>(
            kernel, CompressibilityResult::kName)) {
        result.stats.narrowRegs = comp->narrowRegs;
        result.stats.uniformRegs = comp->uniformRegCount;
        result.stats.meanBitsPerDef = comp->meanBitsPerDef;
        result.stats.predictedCompressionRatio = comp->predictedRatio;
    }
    if (const auto *race = manager.resultOf<ShmemRaceCheckResult>(
            kernel, ShmemRaceCheckResult::kName)) {
        result.stats.raceVerdict = race->verdict;
    }
    return result;
}

LintResult
lintKernel(const Kernel &kernel, const LintOptions &options)
{
    auto manager = AnalysisManager::withDefaultPasses(options);
    return lintKernel(*manager, kernel);
}

namespace
{

std::atomic<bool> lint_enforcement{true};

} // namespace

bool
setLintEnforcement(bool enabled)
{
    return lint_enforcement.exchange(enabled);
}

bool
lintEnforcementEnabled()
{
    return lint_enforcement.load();
}

LintResult
assertLintClean(const Kernel &kernel, std::string_view origin)
{
    if (!lint_enforcement.load())
        return {};
    LintResult result = lintKernel(kernel);
    if (result.diags.hasErrors()) {
        FINEREG_FATAL(origin, " produced kernel '", kernel.name(),
                      "' with ", result.diags.errors(),
                      " lint error(s):\n",
                      result.diags.renderText(16));
    }
    return result;
}

} // namespace finereg::analysis
