/**
 * @file
 * Liveness cross-validator. Re-derives per-instruction live-in sets with
 * an instruction-level backward worklist over the cfg-check pass's derived
 * edges — deliberately a different granularity, traversal order, and code
 * path than src/compiler/liveness.cc's block-level fixpoint — and proves
 * the compiler's bit vectors are a sound over-approximation: every
 * register the derived solution needs must be present in the compiler
 * vector the RMU consumes. A missing register is an error (the RMU would
 * skip saving a register a resumed warp still reads — silent corruption,
 * the exact failure RmuConfig::dropLiveReg injects dynamically). Gross
 * over-approximation is a warning: sound, but it erodes the fine-grained
 * saving the paper's Fig. 5 (~55% mean occupancy) builds on. The pass
 * also reports dead definitions and the per-kernel static live ratio.
 *
 * Both solvers compute the least fixpoint of the same dataflow equations,
 * so on a well-formed kernel the vectors must agree exactly; `exactMatch`
 * records that for the test suite.
 */

#ifndef FINEREG_ANALYSIS_LIVENESS_CHECK_HH
#define FINEREG_ANALYSIS_LIVENESS_CHECK_HH

#include <vector>

#include "analysis/pass.hh"
#include "common/bitvec.hh"

namespace finereg::analysis
{

struct LivenessCheckResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "liveness-check";

    /** Independently derived live-in vector per flat instruction. */
    std::vector<RegBitVec> derivedLiveIn;

    /** (instr, reg) pairs the compiler vector was missing. */
    unsigned unsoundCount = 0;

    /** Definitions whose value no path ever reads. */
    unsigned deadDefCount = 0;

    /** Compiler vectors equal the derived ones at every instruction. */
    bool exactMatch = false;

    /** True when the over-approximation warning fired. */
    bool overApprox = false;

    // Static occupancy statistics (derived solution) ------------------------

    unsigned maxLive = 0;
    double meanLive = 0.0;

    /** meanLive / regsPerThread — the paper's Fig. 5 static story. */
    double liveRatio = 0.0;

    // Compiler-side statistics (after LintOptions hooks) ---------------------

    unsigned compilerMaxLive = 0;
    double compilerMeanLive = 0.0;
};

class LivenessCheckPass : public Pass
{
  public:
    std::string_view name() const override { return LivenessCheckResult::kName; }
    std::vector<std::string_view> dependsOn() const override;
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_LIVENESS_CHECK_HH
