/**
 * @file
 * Shared-memory static checks, mirroring the executor's address model
 * (CtaValues::sharedBaseOffset/execShared): accesses walk a region of
 * max(roundup(shmemPerCta, 128), 128) bytes, each lane touching the
 * 4-byte word (base + 4*lane) mod region. The pass flags shared ops in
 * kernels that declare no shared memory, declared footprints larger than
 * the CTA's allocation (the walk silently wraps), and per-warp
 * transaction counts the fixed-latency shared path ignores. The
 * bank-conflict verdict is consumed from the mem-access pass's affine
 * lane-address forms, which prove the common case conflict-free per op
 * rather than scanning the region heuristically.
 */

#ifndef FINEREG_ANALYSIS_SHARED_MEM_CHECK_HH
#define FINEREG_ANALYSIS_SHARED_MEM_CHECK_HH

#include "analysis/pass.hh"

namespace finereg::analysis
{

struct SharedMemCheckResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "shared-mem";

    unsigned sharedOps = 0;

    /**
     * Worst-case lanes mapped to one bank across all shared ops and
     * 4-aligned base offsets; 1 = provably conflict-free, 0 = no shared
     * ops.
     */
    unsigned maxBankConflictDegree = 0;

    unsigned footprintViolations = 0;
    unsigned opsWithoutShmem = 0;
    unsigned ignoredTransactionOps = 0;
};

class SharedMemCheckPass : public Pass
{
  public:
    std::string_view name() const override { return SharedMemCheckResult::kName; }

    std::vector<std::string_view> dependsOn() const override;

    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_SHARED_MEM_CHECK_HH
