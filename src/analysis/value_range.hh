/**
 * @file
 * Value-range pass: per-register intervals at every program point via the
 * abstract-interpretation engine (abstract_interp.hh), with the interval
 * transfer of the architectural value semantics. Launch values and loads
 * are hashes (top); constant chains fold exactly; loop-carried growth is
 * widened. The pass publishes one def interval per static instruction and
 * the per-register join over all reachable defs, flags provably-wrapping
 * IADD/FFMA defs and constant-foldable defs, and claims per-def warp
 * uniformity for purely constant-derived values. Every claim is checked
 * dynamically by ref/value_validator.hh.
 */

#ifndef FINEREG_ANALYSIS_VALUE_RANGE_HH
#define FINEREG_ANALYSIS_VALUE_RANGE_HH

#include "analysis/abstract_interp.hh"
#include "analysis/pass.hh"

namespace finereg::analysis
{

struct ValueRangeResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "value-range";

    /**
     * Interval the def at each static instruction writes; bottom for
     * non-defs and statically unreachable instructions.
     */
    std::vector<Interval> defInterval;

    /** Per-def uniformity claim: all active lanes write the same value. */
    std::vector<char> defUniform;

    /**
     * Per-register join over every reachable def's interval — the value
     * set a register can ever hold *after some def* (launch values are
     * separate and always full-width). Bottom = never defined.
     */
    std::vector<Interval> regJoin;

    /** Every reachable def of the register carries the uniformity claim. */
    std::vector<char> regUniform;

    unsigned constFoldableDefs = 0;
    unsigned overflowDefs = 0;
    unsigned fixpointIterations = 0;
};

class ValueRangePass : public Pass
{
  public:
    std::string_view name() const override { return ValueRangeResult::kName; }

    std::vector<std::string_view>
    dependsOn() const override
    {
        return {CfgCheckResult::kName};
    }

    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_VALUE_RANGE_HH
