/**
 * @file
 * Reconvergence cross-check: re-derives immediate post-dominators
 * independently (postdomtree pass, CHK over the reversed derived-edge
 * graph) and compares them against the compiler's CfgAnalysis ipdoms —
 * the values the SIMT stack actually uses for reconvergence PCs. Any
 * disagreement is an error: a wrong reconvergence point silently corrupts
 * divergent execution. Only runs on kernels where every block is
 * reachable, because CfgAnalysis itself fatals on unreachable blocks.
 */

#ifndef FINEREG_ANALYSIS_RECONV_CHECK_HH
#define FINEREG_ANALYSIS_RECONV_CHECK_HH

#include "analysis/pass.hh"

namespace finereg::analysis
{

struct ReconvCheckResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "reconv-check";

    /** True when the comparison ran (all blocks reachable). */
    bool compared = false;

    /** Blocks whose ipdom matched (when compared). */
    unsigned matches = 0;
    unsigned mismatches = 0;
};

class ReconvCheckPass : public Pass
{
  public:
    std::string_view name() const override { return ReconvCheckResult::kName; }
    std::vector<std::string_view> dependsOn() const override;
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_RECONV_CHECK_HH
