/**
 * @file
 * Abstract-interpretation core for the semantic analysis passes: an
 * unsigned interval domain abstracting the architectural value semantics
 * (ref/value_semantics.hh aluEval), affine lane-address forms abstracting
 * the executors' address generators, and a worklist fixpoint engine over
 * the cfg-check-derived CFG with widening and bounded narrowing for
 * loops. The domain contract every client relies on:
 *
 *  - evalInterval is EXACT on all-singleton operands (it delegates to
 *    aluEval), so constant chains fold to constants;
 *  - on wider operands it returns a sound superset of the concrete
 *    results, degrading to top where the mixing semantics destroy
 *    interval structure (FADD/FMUL/SFU on non-constants);
 *  - every static claim derived from these abstractions is checked
 *    against observed execution by ref/value_validator.hh, so an unsound
 *    transfer function cannot survive CI.
 */

#ifndef FINEREG_ANALYSIS_ABSTRACT_INTERP_HH
#define FINEREG_ANALYSIS_ABSTRACT_INTERP_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg_check.hh"
#include "common/log.hh"
#include "isa/kernel.hh"

namespace finereg::analysis
{

/**
 * Unsigned 32-bit interval [lo, hi], plus an explicit bottom (no value —
 * unreachable code or a register before any def we track). Top is
 * [0, 0xffffffff].
 */
struct Interval
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xffffffffu;
    bool bot = false;

    static constexpr Interval
    top()
    {
        return Interval{0, 0xffffffffu, false};
    }

    static constexpr Interval
    bottom()
    {
        return Interval{0, 0, true};
    }

    static constexpr Interval
    constant(std::uint32_t v)
    {
        return Interval{v, v, false};
    }

    /** [lo, hi]; callers must pass lo <= hi. */
    static constexpr Interval
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return Interval{lo, hi, false};
    }

    constexpr bool isBottom() const { return bot; }
    constexpr bool isTop() const { return !bot && lo == 0 && hi == 0xffffffffu; }
    constexpr bool isSingleton() const { return !bot && lo == hi; }

    constexpr bool
    contains(std::uint32_t v) const
    {
        return !bot && lo <= v && v <= hi;
    }

    /** Superset-or-equal (bottom is a subset of everything). */
    constexpr bool
    covers(const Interval &other) const
    {
        if (other.bot)
            return true;
        return !bot && lo <= other.lo && other.hi <= hi;
    }

    constexpr Interval
    join(const Interval &other) const
    {
        if (bot)
            return other;
        if (other.bot)
            return *this;
        return Interval{lo < other.lo ? lo : other.lo,
                        hi > other.hi ? hi : other.hi, false};
    }

    /**
     * Classic interval widening of @p next relative to this (the previous
     * iterate): any bound still moving jumps straight to its extreme, which
     * bounds every ascending chain at two steps per register.
     */
    constexpr Interval
    widen(const Interval &next) const
    {
        if (bot)
            return next;
        if (next.bot)
            return *this;
        return Interval{next.lo < lo ? 0u : lo,
                        next.hi > hi ? 0xffffffffu : hi, false};
    }

    /**
     * Bits needed to represent every member value (the Angerd static-
     * compression width): bit_width(hi). Bottom needs none; the singleton
     * zero also needs none (the all-zero compression class).
     */
    constexpr unsigned
    bitsNeeded() const
    {
        return bot ? 0u : unsigned(std::bit_width(hi));
    }

    constexpr bool operator==(const Interval &) const = default;

    std::string toString() const;
};

/**
 * Per-register abstract value: an interval plus a warp-uniformity claim.
 * "uniform" asserts that in any single dynamic execution, every active
 * lane of the writing warp holds the same value — true only for values
 * derived purely from constants. Launch values and loads are per-lane
 * hashes, so they are never uniform; divergence can interleave per-lane
 * writes from different paths, so a join only preserves uniformity when
 * both sides are provably the same single value.
 */
struct ValueAbs
{
    Interval iv = Interval::bottom();
    bool uniform = true;

    static constexpr ValueAbs
    bottom()
    {
        return ValueAbs{Interval::bottom(), true};
    }

    constexpr ValueAbs
    join(const ValueAbs &other) const
    {
        ValueAbs out;
        out.iv = iv.join(other.iv);
        if (iv.isBottom())
            out.uniform = other.uniform;
        else if (other.iv.isBottom())
            out.uniform = uniform;
        else
            out.uniform = uniform && other.uniform && iv == other.iv &&
                          iv.isSingleton();
        return out;
    }

    constexpr ValueAbs
    widen(const ValueAbs &next) const
    {
        ValueAbs out = join(next); // resolves the uniformity claim soundly
        out.iv = iv.widen(next.iv);
        return out;
    }

    constexpr bool operator==(const ValueAbs &) const = default;
};

/**
 * Interval transfer function for one ALU/SFU opcode. Exact (delegates to
 * aluEval) when every operand is a singleton; otherwise sound interval
 * arithmetic for IADD/IMUL/FFMA/MOV and top for the hash-mixing opcodes.
 * Unused operand slots must be passed as Interval::constant(0), mirroring
 * the executor's readSrc contract.
 */
Interval evalInterval(Opcode op, const Interval &a, const Interval &b,
                      const Interval &c);

/**
 * True when an IADD/FFMA over these operand intervals provably wraps
 * around 2^32 on every concrete instance (the value-range pass's
 * provable-overflow diagnostic; for FFMA pass the product interval as
 * @p a).
 */
bool provenAddWrap(const Interval &a, const Interval &b);

/**
 * Abstract lane-address set of one memory instruction: the warp-base
 * byte-address interval [baseLo, baseHi], a per-lane stride, and an
 * optional wrap modulus (shared ops wrap into the CTA region; 0 = no
 * wrap). Lane l touches [base + stride*l] (mod wrap when wrapping), so
 * without wrap the touched bytes lie in [baseLo, laneMax()].
 */
struct AffineForm
{
    std::uint64_t baseLo = 0;
    std::uint64_t baseHi = 0;
    std::uint32_t laneStride = 4;
    std::uint64_t wrap = 0;

    std::uint64_t
    laneMax() const
    {
        const std::uint64_t top =
            baseHi + std::uint64_t(laneStride) * (kWarpSize - 1);
        return wrap ? wrap - 1 : top;
    }

    bool
    containsLaneAddr(std::uint64_t addr) const
    {
        if (wrap)
            return addr < wrap;
        return addr >= baseLo && addr <= laneMax();
    }
};

/**
 * Worklist fixpoint engine, forward over the cfg-check-derived edges.
 * The Domain supplies:
 *
 *   using State = ...;                       // block-entry abstract state
 *   State boundary() const;                  // entry-block input
 *   State bottomState() const;               // everything-unreached
 *   State transfer(int block, State) const;  // block-exit from block-entry
 *   static State join(const State &, const State &);
 *   static State widen(const State &prev, const State &next);
 *
 * States must be equality-comparable. Blocks cfg-check found unreachable
 * keep bottomState() and are never transferred. Widening applies once a
 * block's entry has been refined more than @p widen_threshold times;
 * after the ascending phase converges, @p narrowing_sweeps descending
 * recomputations (exact joins, no widening) claw back precision widening
 * overshot. The iteration cap turns a non-terminating domain bug into a
 * loud FINEREG_PANIC instead of a hang.
 */
template <typename Domain>
struct FixpointResult
{
    std::vector<typename Domain::State> in;
    unsigned iterations = 0;
};

template <typename Domain>
FixpointResult<Domain>
runFixpoint(const Domain &dom, const CfgCheckResult &cfg,
            unsigned widen_threshold = 3, unsigned narrowing_sweeps = 2)
{
    const std::size_t n = cfg.succs.size();
    FixpointResult<Domain> out;
    out.in.assign(n, dom.bottomState());
    if (n == 0)
        return out;
    out.in[0] = dom.boundary();

    std::vector<unsigned> refinements(n, 0);
    std::vector<char> queued(n, 0);
    std::vector<int> worklist{0};
    queued[0] = 1;

    // Every (block, register) bound moves at most a few times under
    // widening; anything past this cap is a broken transfer function.
    const std::uint64_t cap =
        std::uint64_t(n) * (3 * widen_threshold + 8) * 8 + 64;
    while (!worklist.empty()) {
        if (++out.iterations > cap) {
            FINEREG_PANIC("abstract-interp fixpoint exceeded ", cap,
                          " iterations over ", n,
                          " blocks: non-monotone or non-widening domain");
        }
        const int b = worklist.back();
        worklist.pop_back();
        queued[b] = 0;

        const typename Domain::State exit = dom.transfer(b, out.in[b]);
        for (const int s : cfg.succs[b]) {
            if (!cfg.reachable[s])
                continue;
            typename Domain::State next = Domain::join(out.in[s], exit);
            if (refinements[s] > widen_threshold)
                next = Domain::widen(out.in[s], next);
            if (next == out.in[s])
                continue;
            out.in[s] = std::move(next);
            ++refinements[s];
            if (!queued[s]) {
                queued[s] = 1;
                worklist.push_back(s);
            }
        }
    }

    // Descending sweeps: recompute every reachable non-entry block's entry
    // as the exact join of its predecessors' exits. Transfer monotonicity
    // keeps each sweep's result a sound post-fixpoint.
    for (unsigned sweep = 0; sweep < narrowing_sweeps; ++sweep) {
        bool changed = false;
        std::vector<typename Domain::State> exits;
        exits.reserve(n);
        for (std::size_t b = 0; b < n; ++b)
            exits.push_back(cfg.reachable[b] ? dom.transfer(int(b), out.in[b])
                                             : dom.bottomState());
        for (std::size_t b = 1; b < n; ++b) {
            if (!cfg.reachable[b])
                continue;
            typename Domain::State next = dom.bottomState();
            for (const int p : cfg.preds[b]) {
                if (cfg.reachable[p])
                    next = Domain::join(next, exits[p]);
            }
            if (!(next == out.in[b])) {
                out.in[b] = std::move(next);
                changed = true;
            }
        }
        ++out.iterations;
        if (!changed)
            break;
    }
    return out;
}

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_ABSTRACT_INTERP_HH
