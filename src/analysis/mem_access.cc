#include "analysis/mem_access.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "isa/opcode.hh"

namespace finereg::analysis
{

namespace
{

constexpr unsigned kNumBanks = 32;
constexpr std::uint64_t kUnbounded = MemAccessResult::kUnboundedExecs;

std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    if (a == kUnbounded || b == kUnbounded)
        return kUnbounded;
    if (b != 0 && a > kUnbounded / b)
        return kUnbounded;
    return a * b;
}

std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    if (a == kUnbounded || b == kUnbounded || a + b < a)
        return kUnbounded;
    return a + b;
}

/**
 * Per-block per-warp execution bound: the product of the trip counts of
 * every enclosing structured loop (a backward loop-branch at block s
 * targeting block t <= s encloses blocks [t, s]). Probabilistic backward
 * edges (backward JMP or non-loop BRA) make every block in their span
 * unbounded; unreachable blocks execute zero times.
 */
std::vector<std::uint64_t>
blockBounds(const Kernel &kernel, const CfgCheckResult &cfg)
{
    std::vector<std::uint64_t> bound(kernel.blocks().size(), 1);
    for (std::size_t b = 0; b < kernel.blocks().size(); ++b) {
        if (!cfg.reachable[b])
            bound[b] = 0;
    }
    for (std::size_t b = 0; b < kernel.blocks().size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        const BasicBlock &bb = kernel.blocks()[b];
        if (bb.numInstrs == 0)
            continue;
        const Instruction &term =
            kernel.instrs()[bb.firstInstr + bb.numInstrs - 1];
        const bool backward =
            (term.op == Opcode::BRA || term.op == Opcode::JMP) &&
            term.targetBlock >= 0 &&
            std::size_t(term.targetBlock) <= b;
        if (!backward)
            continue;
        for (std::size_t body = std::size_t(term.targetBlock); body <= b;
             ++body) {
            if (bound[body] == 0)
                continue;
            bound[body] = term.isLoopBranch()
                              ? satMul(bound[body], term.tripCount)
                              : kUnbounded;
        }
    }
    return bound;
}

unsigned
worstBankDegree(std::uint32_t region)
{
    // Lane l touches word (base/4 + l) mod W with W = region/4 words.
    // W a multiple of 32 maps 32 consecutive words onto 32 distinct
    // banks for every base; otherwise the wraparound phase matters and
    // the worst case is scanned explicitly.
    const std::uint32_t words = std::max<std::uint32_t>(region / 4, 1);
    if (words % kNumBanks == 0)
        return 1;
    unsigned worst = 0;
    for (std::uint32_t o = 0; o < words; ++o) {
        std::array<unsigned, kNumBanks> lanes_per_bank{};
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            ++lanes_per_bank[(o + lane) % words % kNumBanks];
        worst = std::max(worst,
                         *std::max_element(lanes_per_bank.begin(),
                                           lanes_per_bank.end()));
    }
    return worst;
}

} // namespace

std::uint32_t
sharedRegionBytes(const Kernel &kernel)
{
    return std::max<std::uint32_t>((kernel.shmemPerCta() + 127u) & ~127u,
                                   128u);
}

std::unique_ptr<AnalysisResultBase>
MemAccessPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(kernel, CfgCheckResult::kName);
    auto result = std::make_unique<MemAccessResult>();
    if (cfg == nullptr)
        return result;

    result->blockExecBound = blockBounds(kernel, *cfg);

    unsigned emitted = 0;
    auto report = [&](DiagKind kind, int block, int instr,
                      std::string message) {
        if (emitted++ < ctx.options.maxDiagsPerPass) {
            ctx.diags.add(kind, kernel.name(), block, instr, -1,
                          std::move(message));
        }
    };

    // Per-warp instruction bound: every instruction in a block executes at
    // most once per block visit (divergent diamonds serialize arms, but
    // each arm instruction still runs once per visit).
    result->warpInstrBound = 0;
    for (std::size_t b = 0; b < kernel.blocks().size(); ++b) {
        result->warpInstrBound = satAdd(
            result->warpInstrBound,
            satMul(result->blockExecBound[b], kernel.blocks()[b].numInstrs));
    }
    result->warpInstrBoundKnown = result->warpInstrBound != kUnbounded;
    if (result->warpInstrBoundKnown &&
        result->warpInstrBound > ctx.options.warpInstrBudget) {
        std::ostringstream oss;
        oss << "proven per-warp dynamic instruction bound of "
            << result->warpInstrBound << " exceeds the executor budget of "
            << ctx.options.warpInstrBudget
            << "; the reference executor would abort this kernel";
        report(DiagKind::LoopBudgetExceeded, -1, -1, oss.str());
    }

    const std::uint32_t region = sharedRegionBytes(kernel);
    const unsigned shared_degree = worstBankDegree(region);
    const std::uint64_t total_warps =
        std::uint64_t(kernel.gridCtas()) * kernel.warpsPerCta();

    unsigned worst_transactions = 0;
    const auto &instrs = kernel.instrs();
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (funcUnitOf(instr.op) != FuncUnit::MEM)
            continue;
        const int block = kernel.blockOfInstr(i);

        MemAccessResult::OpInfo op;
        op.instr = i;
        op.load = isLoad(instr.op);
        op.shared = !isGlobalMemory(instr.op);
        op.transactions = instr.mem.transactions;
        op.execBound = block >= 0 ? result->blockExecBound[std::size_t(block)]
                                  : kUnbounded;

        if (op.shared) {
            // sharedBaseOffset: off = (warp*128 + k*stride) % region & ~3;
            // lane word = (off + 4*lane) % region.
            op.lanes.baseLo = 0;
            op.lanes.baseHi = region - 4;
            op.lanes.laneStride = 4;
            op.lanes.wrap = region;
            op.bankDegree = shared_degree;
            if (shared_degree == 1)
                ++result->provenConflictFreeOps;
            else
                ++result->possiblyConflictingOps;

            const std::uint64_t stride =
                std::max<std::uint64_t>(instr.mem.stride, 4);
            op.strideAligned = stride % 128 == 0;
            if (!op.strideAligned) {
                std::ostringstream oss;
                oss << "shared stride of " << stride
                    << " bytes breaks the 128-byte warp phase; warps can "
                       "alias each other's slots within one interval";
                report(DiagKind::SharedStrideAliasesWarps, block,
                       static_cast<int>(i), oss.str());
            }
        } else {
            // warpGenerateAddress: base = (region << 40) + offset with
            // offset = (warp_index*slice + k*stride) % footprint & ~127;
            // lane word = base + 4*lane. The reuse path replays an earlier
            // base, which obeys the same bound.
            const Addr region_base = static_cast<Addr>(instr.mem.region)
                                     << 40;
            const std::uint64_t fp = std::max<std::uint64_t>(
                instr.mem.footprint, 1);
            op.lanes.baseLo = region_base;
            op.lanes.baseHi = region_base + ((fp - 1) & ~std::uint64_t(127));
            op.lanes.laneStride = 4;
            op.lanes.wrap = 0;
            worst_transactions =
                std::max(worst_transactions, instr.mem.transactions);
            result->dramTransactionBound = satAdd(
                result->dramTransactionBound,
                satMul(satMul(op.execBound, instr.mem.transactions),
                       total_warps));
        }
        result->ops.push_back(op);
    }

    result->dramBoundKnown = result->dramTransactionBound != kUnbounded;
    if (worst_transactions == 0)
        result->coalescing = "none";
    else if (worst_transactions == 1)
        result->coalescing = "coalesced";
    else if (worst_transactions <= 3)
        result->coalescing = "strided";
    else
        result->coalescing = "scattered";
    return result;
}

} // namespace finereg::analysis
