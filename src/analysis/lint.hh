/**
 * @file
 * One-call lint facade over the analysis pass pipeline, plus the
 * enforcement hook every kernel producer (kernel_gen, the workload suite,
 * the fuzzer's builders) routes its output through: assertLintClean()
 * fatals the process when a freshly built kernel carries lint errors, so
 * an ill-formed kernel can never reach the simulator silently. Tools that
 * want to report rather than die (finereg_lint itself) disable
 * enforcement and call lintKernel() directly.
 */

#ifndef FINEREG_ANALYSIS_LINT_HH
#define FINEREG_ANALYSIS_LINT_HH

#include <string_view>

#include "analysis/pass.hh"

namespace finereg::analysis
{

/** Per-kernel summary the bench and the lint CLI surface. */
struct KernelLintStats
{
    unsigned staticInstrs = 0;
    unsigned numBlocks = 0;

    /** Derived-liveness occupancy (0 when liveness was gated off). */
    unsigned maxLive = 0;
    double meanLive = 0.0;
    double liveRatio = 0.0;

    unsigned deadDefs = 0;
    unsigned sharedOps = 0;
    unsigned maxBankConflict = 0;

    // Abstract-interpretation summary (value-range / mem-access /
    // compressibility / shmem-race-check) ---------------------------------
    unsigned constFoldableDefs = 0;
    unsigned overflowDefs = 0;

    /** "none" | "coalesced" | "strided" | "scattered". */
    std::string coalescing = "none";

    std::uint64_t dramTransactionBound = 0;
    bool dramBoundKnown = false;

    unsigned narrowRegs = 0;
    unsigned uniformRegs = 0;
    double meanBitsPerDef = 32.0;
    double predictedCompressionRatio = 1.0;

    /** "race-free" | "sync-protected" | "possibly-racy". */
    std::string raceVerdict = "race-free";
};

struct LintResult
{
    DiagnosticSet diags;
    KernelLintStats stats;

    bool clean() const { return !diags.hasErrors(); }
};

/**
 * Run every registered pass on @p kernel through @p manager (reusing its
 * cache) and collect all diagnostics plus the stats summary.
 */
LintResult lintKernel(AnalysisManager &manager, const Kernel &kernel);

/** Convenience: lint with a fresh default pipeline under @p options. */
LintResult lintKernel(const Kernel &kernel, const LintOptions &options = {});

/**
 * Globally enable/disable assertLintClean() (default: enabled). Returns
 * the previous setting.
 */
bool setLintEnforcement(bool enabled);
bool lintEnforcementEnabled();

/**
 * Lint @p kernel and fatal with a rendered diagnostic report when it has
 * errors. @p origin names the producer for the failure message. No-op
 * when enforcement is disabled. Returns the result for callers that also
 * want the stats.
 */
LintResult assertLintClean(const Kernel &kernel, std::string_view origin);

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_LINT_HH
