#include "analysis/reaching_defs.hh"

#include <algorithm>
#include <sstream>

#include "analysis/cfg_check.hh"
#include "analysis/dominators.hh"
#include "common/log.hh"

namespace finereg::analysis
{

namespace
{

RegBitVec
allocatedRegs(const Kernel &kernel)
{
    RegBitVec regs;
    const unsigned limit =
        std::min<unsigned>(kernel.regsPerThread(), kMaxRegsPerThread);
    for (unsigned r = 0; r < limit; ++r)
        regs.set(static_cast<RegIndex>(r));
    return regs;
}

RegBitVec
blockDefs(const Kernel &kernel, int b)
{
    RegBitVec defs;
    const BasicBlock &blk = kernel.blocks()[b];
    for (unsigned i = blk.firstInstr; i < blk.firstInstr + blk.numInstrs; ++i) {
        const int dst = kernel.instrs()[i].dst;
        if (dst >= 0)
            defs.set(static_cast<RegIndex>(dst));
    }
    return defs;
}

} // namespace

std::vector<std::string_view>
ReachingDefsPass::dependsOn() const
{
    return {CfgCheckResult::kName, DomTreeResult::kName};
}

std::unique_ptr<AnalysisResultBase>
ReachingDefsPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(kernel, CfgCheckResult::kName);
    const auto *dom =
        ctx.manager.resultOf<DomTreeResult>(kernel, DomTreeResult::kName);
    if (cfg == nullptr || dom == nullptr)
        FINEREG_PANIC("reaching-defs scheduled without its dependencies");

    const auto &instrs = kernel.instrs();
    const auto &blocks = kernel.blocks();
    const int n = static_cast<int>(blocks.size());
    const RegBitVec all_regs = allocatedRegs(kernel);

    auto result = std::make_unique<ReachingDefsResult>();

    // Definition sites per register, for dominance-based message
    // refinement: pairs of (block, flat instruction index).
    std::vector<std::vector<std::pair<int, unsigned>>> def_sites(
        kMaxRegsPerThread);
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const int dst = instrs[i].dst;
        if (dst >= 0 && dst < static_cast<int>(kMaxRegsPerThread)) {
            result->everDefined.set(static_cast<RegIndex>(dst));
            def_sites[dst].emplace_back(kernel.blockOfInstr(i), i);
        }
    }

    std::vector<RegBitVec> kill(n);
    for (int b = 0; b < n; ++b)
        kill[b] = blockDefs(kernel, b);

    // Forward fixpoint. "Maybe undefined" meets with union, "definitely
    // undefined" with intersection; both start from all-allocated-undefined
    // at the entry. Unreachable blocks keep empty in-sets — cfg-check
    // already reported them and nothing executes there.
    result->maybeUndefIn.assign(n, RegBitVec{});
    result->definiteUndefIn.assign(n, RegBitVec{});
    result->maybeUndefIn[kernel.entryBlock()] = all_regs;
    result->definiteUndefIn[kernel.entryBlock()] = all_regs;

    bool changed = true;
    unsigned iterations = 0;
    while (changed) {
        changed = false;
        if (++iterations > 10u * n + 64)
            FINEREG_PANIC("reaching-defs failed to converge on ",
                          kernel.name());
        for (int b = 0; b < n; ++b) {
            if (!cfg->reachable[b])
                continue;
            if (b != kernel.entryBlock()) {
                RegBitVec maybe;
                RegBitVec definite = all_regs;
                for (const int p : cfg->preds[b]) {
                    maybe |= result->maybeUndefIn[p].minus(kill[p]);
                    definite = definite &
                               result->definiteUndefIn[p].minus(kill[p]);
                }
                if (maybe != result->maybeUndefIn[b] ||
                    definite != result->definiteUndefIn[b]) {
                    result->maybeUndefIn[b] = maybe;
                    result->definiteUndefIn[b] = definite;
                    changed = true;
                }
            }
        }
    }

    // Diagnostic walk: thread the in-sets through each reachable block.
    unsigned emitted = 0;
    for (int b = 0; b < n; ++b) {
        if (!cfg->reachable[b])
            continue;
        RegBitVec maybe = result->maybeUndefIn[b];
        RegBitVec definite = result->definiteUndefIn[b];
        const BasicBlock &blk = blocks[b];
        for (unsigned i = blk.firstInstr; i < blk.firstInstr + blk.numInstrs;
             ++i) {
            const Instruction &instr = instrs[i];
            for (const int src : instr.srcs) {
                if (src < 0 || src >= static_cast<int>(kMaxRegsPerThread) ||
                    !maybe.test(static_cast<RegIndex>(src))) {
                    continue;
                }
                if (!result->everDefined.test(static_cast<RegIndex>(src))) {
                    ++result->useNeverDefinedCount;
                    if (emitted++ < ctx.options.maxDiagsPerPass) {
                        ctx.diags.add(
                            DiagKind::UseNeverDefined, kernel.name(), b,
                            static_cast<int>(i), src,
                            "read of a register no instruction ever writes; "
                            "the value is whatever CTA launch initialized");
                    }
                    // One report per register per block walk is enough.
                    maybe.reset(static_cast<RegIndex>(src));
                    definite.reset(static_cast<RegIndex>(src));
                    continue;
                }
                ++result->useBeforeDefCount;
                if (emitted++ < ctx.options.maxDiagsPerPass) {
                    std::ostringstream oss;
                    if (definite.test(static_cast<RegIndex>(src))) {
                        oss << "read before any definition on every path "
                               "from the entry";
                    } else {
                        oss << "read possibly before its definition on some "
                               "path from the entry";
                    }
                    bool dominated = false;
                    for (const auto &[db, di] : def_sites[src]) {
                        if ((db == b && di < i) ||
                            (db != b && dom->dominates(db, b))) {
                            dominated = true;
                            break;
                        }
                    }
                    if (!dominated)
                        oss << "; no definition dominates this use";
                    ctx.diags.add(DiagKind::UseBeforeDef, kernel.name(), b,
                                  static_cast<int>(i), src, oss.str());
                }
                maybe.reset(static_cast<RegIndex>(src));
                definite.reset(static_cast<RegIndex>(src));
            }
            if (instr.dst >= 0) {
                maybe.reset(static_cast<RegIndex>(instr.dst));
                definite.reset(static_cast<RegIndex>(instr.dst));
            }
        }
    }

    return result;
}

} // namespace finereg::analysis
