/**
 * @file
 * Use-before-def analysis: a forward "possibly-undefined" dataflow (union
 * meet) plus a "definitely-undefined" dataflow (intersection meet) over
 * the derived CFG. Every register starts undefined at the kernel entry;
 * a read of a possibly-undefined register is flagged. The runtime does
 * initialize register files at CTA launch (CtaValues::initRegValue), so
 * these findings are warnings — the program is legal but is consuming
 * launch-initialization values rather than computed ones. The dominator
 * tree refines messages: a use no definition dominates is called out
 * explicitly.
 */

#ifndef FINEREG_ANALYSIS_REACHING_DEFS_HH
#define FINEREG_ANALYSIS_REACHING_DEFS_HH

#include <vector>

#include "analysis/pass.hh"
#include "common/bitvec.hh"

namespace finereg::analysis
{

struct ReachingDefsResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "reaching-defs";

    /** Registers with at least one definition anywhere in the kernel. */
    RegBitVec everDefined;

    /** Possibly-undefined registers at each block's entry. */
    std::vector<RegBitVec> maybeUndefIn;

    /** Definitely-undefined registers at each block's entry. */
    std::vector<RegBitVec> definiteUndefIn;

    unsigned useBeforeDefCount = 0;
    unsigned useNeverDefinedCount = 0;
};

class ReachingDefsPass : public Pass
{
  public:
    std::string_view name() const override { return ReachingDefsResult::kName; }
    std::vector<std::string_view> dependsOn() const override;
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_REACHING_DEFS_HH
