/**
 * @file
 * Barrier-interval shared-memory race check. Partitions the instruction
 * stream at BAR instructions into synchronization intervals and flags
 * pairs of shared ops (at least one a store) that land in the same
 * interval with overlapping affine address sets — two warps could touch
 * the same word with no barrier ordering them. Disjointness is proven
 * from the mem-access pass's forms: the reachable warp-base offsets of an
 * op with a proven execution bound enumerate to a finite set of 128-byte
 * windows, and non-intersecting window sets cannot race.
 *
 * The verdict is advisory (warnings, never errors): the architectural
 * value semantics make shared state order-independent by construction
 * (loads hash addresses, stores accumulate commutatively), so a "race"
 * here is a model-level hazard the timing side ignores — exactly the
 * class of construct a real kernel with these access patterns would have
 * to synchronize. Cross-iteration pairs inside loops are treated as
 * same-interval (the flat partition is execution-order-agnostic), which
 * over-approximates toward reporting.
 */

#ifndef FINEREG_ANALYSIS_SHMEM_RACE_HH
#define FINEREG_ANALYSIS_SHMEM_RACE_HH

#include "analysis/pass.hh"

namespace finereg::analysis
{

struct ShmemRaceCheckResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "shmem-race-check";

    unsigned barriers = 0;
    unsigned intervals = 1;
    unsigned sharedOps = 0;

    /** Same-interval overlapping pairs with at least one store. */
    unsigned racyPairs = 0;

    /** Pairs separated by a barrier (or proven address-disjoint). */
    unsigned orderedPairs = 0;

    /** "race-free" | "sync-protected" | "possibly-racy". */
    std::string verdict = "race-free";
};

class ShmemRaceCheckPass : public Pass
{
  public:
    std::string_view
    name() const override
    {
        return ShmemRaceCheckResult::kName;
    }

    std::vector<std::string_view> dependsOn() const override;

    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_SHMEM_RACE_HH
