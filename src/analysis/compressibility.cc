#include "analysis/compressibility.hh"

#include <sstream>

#include "compiler/reg_width.hh"

namespace finereg::analysis
{

std::unique_ptr<AnalysisResultBase>
CompressibilityPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *vr = ctx.manager.resultOf<ValueRangeResult>(
        kernel, ValueRangeResult::kName);
    auto result = std::make_unique<CompressibilityResult>();
    const unsigned nregs = kernel.regsPerThread();
    result->derivedBits.assign(nregs, 32);
    result->claimedBits.assign(nregs, 32);
    result->uniformRegs.assign(nregs, 0);
    if (vr == nullptr)
        return result;

    const RegWidthTable claims(kernel);
    for (unsigned r = 0; r < nregs; ++r) {
        result->derivedBits[r] = vr->regJoin[r].isBottom()
                                     ? 32
                                     : vr->regJoin[r].bitsNeeded();
        result->claimedBits[r] = claims.claimedBits(r);
        result->uniformRegs[r] = vr->regUniform[r];
    }

    // The narrow-claim corruption hook, mirroring how dropLiveReg corrupts
    // the liveness vectors before cross-validation.
    if (ctx.options.narrowClaimReg >= 0 &&
        unsigned(ctx.options.narrowClaimReg) < nregs) {
        result->claimedBits[unsigned(ctx.options.narrowClaimReg)] =
            ctx.options.narrowClaimBits;
    }

    unsigned emitted = 0;
    for (unsigned r = 0; r < nregs; ++r) {
        if (result->derivedBits[r] < 32)
            ++result->narrowRegs;
        if (result->uniformRegs[r])
            ++result->uniformRegCount;
        if (result->claimedBits[r] < result->derivedBits[r] &&
            emitted++ < ctx.options.maxDiagsPerPass) {
            std::ostringstream oss;
            oss << "compiler claims " << result->claimedBits[r]
                << "-bit values but the derived interval needs "
                << result->derivedBits[r]
                << " bits; a static-compression RF would truncate";
            ctx.diags.add(DiagKind::CompressionClaimTooNarrow, kernel.name(),
                          -1, -1, static_cast<int>(r), oss.str());
        }
    }

    // Cost of the def stream under an Angerd-style encoder: width class
    // per value, one copy per warp for proven-uniform values.
    double cost = 0.0;
    double bits_sum = 0.0;
    for (unsigned i = 0; i < kernel.staticInstrs(); ++i) {
        const Interval &iv = vr->defInterval[i];
        if (iv.isBottom())
            continue;
        ++result->defCount;
        const double bits = iv.bitsNeeded();
        bits_sum += bits;
        cost += (bits / 32.0) * (vr->defUniform[i] ? 1.0 / kWarpSize : 1.0);
    }
    if (result->defCount > 0) {
        result->meanBitsPerDef = bits_sum / result->defCount;
        result->predictedRatio = cost / result->defCount;
    }
    return result;
}

} // namespace finereg::analysis
