#include "analysis/value_range.hh"

#include <sstream>

#include "isa/opcode.hh"

namespace finereg::analysis
{

namespace
{

/** Block-entry state: one abstract value per architectural register. */
struct ValueDomain
{
    using State = std::vector<ValueAbs>;

    const Kernel &kernel;

    /**
     * Registers hold per-thread launch hashes before any def: full-width
     * and per-lane distinct.
     */
    State
    boundary() const
    {
        return State(kernel.regsPerThread(), ValueAbs{Interval::top(), false});
    }

    State
    bottomState() const
    {
        return State(kernel.regsPerThread(), ValueAbs::bottom());
    }

    static ValueAbs
    operand(const State &env, int src)
    {
        if (src < 0)
            return ValueAbs{Interval::constant(0), true};
        return env[std::size_t(src)];
    }

    /** Abstract effect of one instruction on the register environment. */
    static void
    transferInstr(const Instruction &instr, State &env)
    {
        if (instr.dst < 0)
            return;
        switch (funcUnitOf(instr.op)) {
          case FuncUnit::ALU:
          case FuncUnit::SFU: {
            const ValueAbs a = operand(env, instr.srcs[0]);
            const ValueAbs b = operand(env, instr.srcs[1]);
            const ValueAbs c = operand(env, instr.srcs[2]);
            ValueAbs out;
            out.iv = evalInterval(instr.op, a.iv, b.iv, c.iv);
            out.uniform = a.uniform && b.uniform && c.uniform;
            env[std::size_t(instr.dst)] = out;
            break;
          }
          case FuncUnit::MEM:
            // Loads return pure address hashes: full-width, lane-distinct.
            if (isLoad(instr.op))
                env[std::size_t(instr.dst)] = ValueAbs{Interval::top(), false};
            break;
          case FuncUnit::CTRL:
            break;
        }
    }

    State
    transfer(int block, State env) const
    {
        const BasicBlock &bb = kernel.blocks()[std::size_t(block)];
        for (unsigned i = bb.firstInstr; i < bb.firstInstr + bb.numInstrs; ++i)
            transferInstr(kernel.instrs()[i], env);
        return env;
    }

    static State
    join(const State &a, const State &b)
    {
        State out(a.size());
        for (std::size_t r = 0; r < a.size(); ++r)
            out[r] = a[r].join(b[r]);
        return out;
    }

    static State
    widen(const State &prev, const State &next)
    {
        State out(prev.size());
        for (std::size_t r = 0; r < prev.size(); ++r)
            out[r] = prev[r].widen(next[r]);
        return out;
    }
};

} // namespace

std::unique_ptr<AnalysisResultBase>
ValueRangePass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(kernel, CfgCheckResult::kName);
    auto result = std::make_unique<ValueRangeResult>();
    result->defInterval.assign(kernel.staticInstrs(), Interval::bottom());
    result->defUniform.assign(kernel.staticInstrs(), 0);
    result->regJoin.assign(kernel.regsPerThread(), Interval::bottom());
    result->regUniform.assign(kernel.regsPerThread(), 1);
    if (cfg == nullptr)
        return result;

    const ValueDomain dom{kernel};
    const auto fix = runFixpoint(dom, *cfg);
    result->fixpointIterations = fix.iterations;

    unsigned emitted = 0;
    auto report = [&](DiagKind kind, unsigned i, int reg,
                      std::string message) {
        if (emitted++ < ctx.options.maxDiagsPerPass) {
            ctx.diags.add(kind, kernel.name(), kernel.blockOfInstr(i),
                          static_cast<int>(i), reg, std::move(message));
        }
    };

    // Replay each reachable block once over its stable entry state to
    // attribute a def interval to every instruction.
    for (std::size_t b = 0; b < kernel.blocks().size(); ++b) {
        if (!cfg->reachable[b])
            continue;
        ValueDomain::State env = fix.in[b];
        const BasicBlock &bb = kernel.blocks()[b];
        for (unsigned i = bb.firstInstr; i < bb.firstInstr + bb.numInstrs;
             ++i) {
            const Instruction &instr = kernel.instrs()[i];
            const bool alu = funcUnitOf(instr.op) == FuncUnit::ALU ||
                             funcUnitOf(instr.op) == FuncUnit::SFU;

            if (alu && instr.dst >= 0 &&
                (instr.op == Opcode::IADD || instr.op == Opcode::FFMA)) {
                const Interval a =
                    instr.op == Opcode::IADD
                        ? ValueDomain::operand(env, instr.srcs[0]).iv
                        : evalInterval(
                              Opcode::IMUL,
                              ValueDomain::operand(env, instr.srcs[0]).iv,
                              ValueDomain::operand(env, instr.srcs[1]).iv,
                              Interval::constant(0));
                const Interval add =
                    instr.op == Opcode::IADD
                        ? ValueDomain::operand(env, instr.srcs[1]).iv
                        : ValueDomain::operand(env, instr.srcs[2]).iv;
                if (provenAddWrap(a, add)) {
                    ++result->overflowDefs;
                    std::ostringstream oss;
                    oss << "sum over " << a.toString() << " + "
                        << add.toString()
                        << " provably wraps around 2^32 on every execution";
                    report(DiagKind::ValueOverflow, i, instr.dst, oss.str());
                }
            }

            ValueDomain::transferInstr(instr, env);
            if (instr.dst < 0 ||
                (!alu && !(funcUnitOf(instr.op) == FuncUnit::MEM &&
                           isLoad(instr.op))))
                continue;

            const ValueAbs &def = env[std::size_t(instr.dst)];
            result->defInterval[i] = def.iv;
            result->defUniform[i] = def.uniform ? 1 : 0;
            result->regJoin[std::size_t(instr.dst)] =
                result->regJoin[std::size_t(instr.dst)].join(def.iv);
            if (!def.uniform)
                result->regUniform[std::size_t(instr.dst)] = 0;

            if (alu && def.iv.isSingleton()) {
                ++result->constFoldableDefs;
                std::ostringstream oss;
                oss << "always computes " << def.iv.toString()
                    << "; the def is constant-foldable";
                report(DiagKind::ConstantFoldableDef, i, instr.dst,
                       oss.str());
            }
        }
    }

    // Never-defined registers claim nothing, but report them uniform=false
    // so nobody compresses a launch hash.
    for (std::size_t r = 0; r < result->regJoin.size(); ++r) {
        if (result->regJoin[r].isBottom())
            result->regUniform[r] = 0;
    }
    return result;
}

} // namespace finereg::analysis
