#include "analysis/diagnostics.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace finereg::analysis
{

std::string_view
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string_view
diagKindName(DiagKind kind)
{
    switch (kind) {
      case DiagKind::EmptyBlock: return "empty-block";
      case DiagKind::BlockExtentCorrupt: return "block-extent-corrupt";
      case DiagKind::TerminatorMidBlock: return "terminator-mid-block";
      case DiagKind::BranchTargetOutOfRange:
        return "branch-target-out-of-range";
      case DiagKind::FallThroughOffEnd: return "fall-through-off-end";
      case DiagKind::NoExit: return "no-exit";
      case DiagKind::UnreachableBlock: return "unreachable-block";
      case DiagKind::NoPathToExit: return "no-path-to-exit";
      case DiagKind::CfgEdgesInconsistent: return "cfg-edges-inconsistent";
      case DiagKind::RegisterOutOfRange: return "register-out-of-range";
      case DiagKind::UseBeforeDef: return "use-before-def";
      case DiagKind::UseNeverDefined: return "use-never-defined";
      case DiagKind::LivenessUnsound: return "liveness-unsound";
      case DiagKind::LivenessOverApprox: return "liveness-over-approx";
      case DiagKind::DeadDef: return "dead-def";
      case DiagKind::ReconvergenceMismatch: return "reconvergence-mismatch";
      case DiagKind::SharedOpWithoutShmem: return "shared-op-without-shmem";
      case DiagKind::SharedFootprintExceedsShmem:
        return "shared-footprint-exceeds-shmem";
      case DiagKind::SharedBankConflict: return "shared-bank-conflict";
      case DiagKind::SharedTransactionsIgnored:
        return "shared-transactions-ignored";
      case DiagKind::ValueOverflow: return "value-overflow";
      case DiagKind::ConstantFoldableDef: return "constant-foldable-def";
      case DiagKind::LoopBudgetExceeded: return "loop-budget-exceeded";
      case DiagKind::SharedStrideAliasesWarps:
        return "shared-stride-aliases-warps";
      case DiagKind::SharedMemRace: return "shared-mem-race";
      case DiagKind::CompressionClaimTooNarrow:
        return "compression-claim-too-narrow";
      case DiagKind::CompressionWidthUnsound:
        return "compression-width-unsound";
      case DiagKind::ValueRangeUnsound: return "value-range-unsound";
      case DiagKind::AddressBoundUnsound: return "address-bound-unsound";
    }
    return "?";
}

Severity
defaultSeverity(DiagKind kind)
{
    switch (kind) {
      case DiagKind::UseBeforeDef:
      case DiagKind::UseNeverDefined:
      case DiagKind::LivenessOverApprox:
      case DiagKind::SharedOpWithoutShmem:
      case DiagKind::SharedFootprintExceedsShmem:
      case DiagKind::SharedBankConflict:
      case DiagKind::SharedTransactionsIgnored:
      case DiagKind::ValueOverflow:
      case DiagKind::LoopBudgetExceeded:
      case DiagKind::SharedStrideAliasesWarps:
      case DiagKind::SharedMemRace:
      case DiagKind::CompressionClaimTooNarrow:
        return Severity::Warning;
      case DiagKind::DeadDef:
      case DiagKind::ConstantFoldableDef:
        return Severity::Note;
      default:
        return Severity::Error;
    }
}

std::string
Diagnostic::location() const
{
    std::ostringstream oss;
    oss << kernel;
    if (block >= 0)
        oss << ":B" << block;
    if (instr >= 0) {
        oss << ":I" << instr << "(pc=0x" << std::hex << pc() << std::dec
            << ")";
    }
    return oss.str();
}

std::string
Diagnostic::toString() const
{
    std::ostringstream oss;
    oss << severityName(severity) << ": " << location() << ": ["
        << diagKindName(kind) << "] " << message;
    if (reg >= 0)
        oss << " (R" << reg << ")";
    return oss.str();
}

Diagnostic &
DiagnosticSet::add(DiagKind kind, std::string kernel, int block, int instr,
                   int reg, std::string message)
{
    Diagnostic diag;
    diag.kind = kind;
    diag.severity = defaultSeverity(kind);
    diag.kernel = std::move(kernel);
    diag.block = block;
    diag.instr = instr;
    diag.reg = reg;
    diag.message = std::move(message);
    return add(std::move(diag));
}

Diagnostic &
DiagnosticSet::add(Diagnostic diag)
{
    diags_.push_back(std::move(diag));
    return diags_.back();
}

void
DiagnosticSet::append(const DiagnosticSet &other)
{
    append(other.diags_);
}

void
DiagnosticSet::append(const std::vector<Diagnostic> &diags)
{
    diags_.insert(diags_.end(), diags.begin(), diags.end());
}

unsigned
DiagnosticSet::count(Severity severity) const
{
    unsigned n = 0;
    for (const Diagnostic &diag : diags_)
        n += diag.severity == severity ? 1 : 0;
    return n;
}

bool
DiagnosticSet::has(DiagKind kind) const
{
    return find(kind) != nullptr;
}

const Diagnostic *
DiagnosticSet::find(DiagKind kind) const
{
    for (const Diagnostic &diag : diags_) {
        if (diag.kind == kind)
            return &diag;
    }
    return nullptr;
}

std::string
DiagnosticSet::renderText(unsigned max_lines) const
{
    // Errors first, then warnings, then notes; stable within a severity so
    // the order tracks program order.
    std::vector<const Diagnostic *> order;
    order.reserve(diags_.size());
    for (const Diagnostic &diag : diags_)
        order.push_back(&diag);
    std::stable_sort(order.begin(), order.end(),
                     [](const Diagnostic *a, const Diagnostic *b) {
                         return static_cast<int>(a->severity) >
                                static_cast<int>(b->severity);
                     });

    std::ostringstream oss;
    unsigned emitted = 0;
    for (const Diagnostic *diag : order) {
        if (max_lines > 0 && emitted == max_lines) {
            oss << "  ... " << (order.size() - emitted)
                << " more diagnostics suppressed\n";
            break;
        }
        oss << "  " << diag->toString() << '\n';
        ++emitted;
    }
    return oss.str();
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &text)
{
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
}

} // namespace

void
DiagnosticSet::renderJson(std::ostream &os) const
{
    os << '[';
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &diag = diags_[i];
        if (i)
            os << ',';
        os << "{\"kind\":\"" << diagKindName(diag.kind) << "\",\"severity\":\""
           << severityName(diag.severity) << "\",\"kernel\":\"";
        jsonEscape(os, diag.kernel);
        os << "\",\"block\":" << diag.block << ",\"instr\":" << diag.instr
           << ",\"pc\":" << diag.pc() << ",\"reg\":" << diag.reg
           << ",\"message\":\"";
        jsonEscape(os, diag.message);
        os << "\"}";
    }
    os << ']';
}

} // namespace finereg::analysis
