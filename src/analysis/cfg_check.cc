#include "analysis/cfg_check.hh"

#include <algorithm>
#include <sstream>

namespace finereg::analysis
{

namespace
{

bool
isTerminatorOp(Opcode op)
{
    return op == Opcode::BRA || op == Opcode::JMP || op == Opcode::EXIT;
}

std::string
str(auto &&...parts)
{
    std::ostringstream oss;
    (oss << ... << parts);
    return oss.str();
}

} // namespace

std::unique_ptr<AnalysisResultBase>
CfgCheckPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto &instrs = kernel.instrs();
    const auto &blocks = kernel.blocks();
    const int n_blocks = static_cast<int>(blocks.size());
    const std::string &name = kernel.name();

    auto result = std::make_unique<CfgCheckResult>();
    result->succs.resize(n_blocks);
    result->preds.resize(n_blocks);
    result->reachable.assign(std::max(n_blocks, 1), 0);

    unsigned emitted = 0;
    auto report = [&](DiagKind kind, int block, int instr, int reg,
                      std::string message) {
        if (emitted++ < ctx.options.maxDiagsPerPass)
            ctx.diags.add(kind, name, block, instr, reg, std::move(message));
    };

    if (n_blocks == 0) {
        result->structurallySound = false;
        report(DiagKind::EmptyBlock, -1, -1, -1, "kernel has no blocks");
        return result;
    }

    // ---- Block extents must tile the instruction array -------------------
    unsigned expected_first = 0;
    for (int b = 0; b < n_blocks; ++b) {
        const BasicBlock &blk = blocks[b];
        if (blk.numInstrs == 0) {
            result->structurallySound = false;
            report(DiagKind::EmptyBlock, b, -1, -1,
                   "block spans zero instructions");
            continue;
        }
        if (blk.firstInstr != expected_first ||
            blk.firstInstr + blk.numInstrs > instrs.size()) {
            result->structurallySound = false;
            report(DiagKind::BlockExtentCorrupt, b, -1, -1,
                   str("block covers [", blk.firstInstr, ", ",
                       blk.firstInstr + blk.numInstrs, ") but ",
                       expected_first, " was expected next of ",
                       instrs.size(), " instructions"));
        }
        expected_first = blk.firstInstr + blk.numInstrs;
    }
    if (result->structurallySound && expected_first != instrs.size()) {
        result->structurallySound = false;
        report(DiagKind::BlockExtentCorrupt, n_blocks - 1, -1, -1,
               str("blocks cover ", expected_first, " of ", instrs.size(),
                   " instructions"));
    }

    // Extent corruption makes per-instruction walks unsafe; stop here.
    if (!result->structurallySound)
        return result;

    // ---- Terminator placement, branch targets, derived edges -------------
    for (int b = 0; b < n_blocks; ++b) {
        const BasicBlock &blk = blocks[b];
        for (unsigned i = blk.firstInstr; i + 1 < blk.firstInstr + blk.numInstrs;
             ++i) {
            if (isTerminatorOp(instrs[i].op)) {
                result->structurallySound = false;
                report(DiagKind::TerminatorMidBlock, b, static_cast<int>(i),
                       -1,
                       str(opcodeName(instrs[i].op),
                           " before the block's last slot"));
            }
        }

        const unsigned last = blk.firstInstr + blk.numInstrs - 1;
        const Instruction &term = instrs[last];
        auto add_edge = [&](int to) {
            if (to < 0 || to >= n_blocks) {
                result->structurallySound = false;
                report(DiagKind::BranchTargetOutOfRange, b,
                       static_cast<int>(last), -1,
                       str(opcodeName(term.op), " targets block B", to,
                           " of ", n_blocks));
                return;
            }
            result->succs[b].push_back(to);
        };

        switch (term.op) {
          case Opcode::EXIT:
            result->hasExit = true;
            break;
          case Opcode::JMP:
            add_edge(term.targetBlock);
            break;
          case Opcode::BRA:
            add_edge(term.targetBlock);
            if (b + 1 >= n_blocks) {
                result->structurallySound = false;
                report(DiagKind::FallThroughOffEnd, b,
                       static_cast<int>(last), -1,
                       "BRA in the final block has no fall-through");
            } else {
                result->succs[b].push_back(b + 1);
            }
            break;
          default:
            if (b + 1 >= n_blocks) {
                result->structurallySound = false;
                report(DiagKind::FallThroughOffEnd, b,
                       static_cast<int>(last), -1,
                       str("final block ends in ", opcodeName(term.op),
                           "; execution falls off the kernel end"));
            } else {
                result->succs[b].push_back(b + 1);
            }
            break;
        }
    }

    for (int b = 0; b < n_blocks; ++b) {
        for (int s : result->succs[b])
            result->preds[s].push_back(b);
    }

    if (!result->hasExit)
        report(DiagKind::NoExit, -1, -1, -1,
               "kernel contains no EXIT instruction; no thread can retire");

    // ---- Stored edges must match the derived ones ------------------------
    auto sorted = [](std::vector<int> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    for (int b = 0; b < n_blocks; ++b) {
        if (sorted(blocks[b].succs) != sorted(result->succs[b]) ||
            sorted(blocks[b].preds) != sorted(result->preds[b])) {
            report(DiagKind::CfgEdgesInconsistent, b, -1, -1,
                   "stored successor/predecessor lists disagree with the "
                   "edges the terminators imply");
        }
    }

    // ---- Operand registers within the declared allocation ----------------
    const int regs = static_cast<int>(kernel.regsPerThread());
    for (unsigned i = 0; i < instrs.size(); ++i) {
        auto check = [&](int reg) {
            if (reg >= regs || reg >= static_cast<int>(kMaxRegsPerThread)) {
                report(DiagKind::RegisterOutOfRange,
                       kernel.blockOfInstr(i), static_cast<int>(i), reg,
                       str("operand beyond the declared ", regs,
                           " registers/thread"));
            }
        };
        check(instrs[i].dst);
        for (int src : instrs[i].srcs)
            check(src);
    }

    // ---- Reachability from entry over derived edges ----------------------
    std::vector<int> stack{kernel.entryBlock()};
    result->reachable[kernel.entryBlock()] = 1;
    while (!stack.empty()) {
        const int b = stack.back();
        stack.pop_back();
        for (int s : result->succs[b]) {
            if (!result->reachable[s]) {
                result->reachable[s] = 1;
                stack.push_back(s);
            }
        }
    }
    for (int b = 0; b < n_blocks; ++b) {
        if (!result->reachable[b]) {
            result->allReachable = false;
            report(DiagKind::UnreachableBlock, b, -1, -1,
                   "block is unreachable from the entry");
        }
    }

    // ---- Every reachable block must be able to reach an EXIT -------------
    // Backward BFS from EXIT-terminated blocks over derived edges.
    std::vector<char> reaches_exit(n_blocks, 0);
    for (int b = 0; b < n_blocks; ++b) {
        const BasicBlock &blk = blocks[b];
        if (instrs[blk.firstInstr + blk.numInstrs - 1].op == Opcode::EXIT) {
            reaches_exit[b] = 1;
            stack.push_back(b);
        }
    }
    while (!stack.empty()) {
        const int b = stack.back();
        stack.pop_back();
        for (int p : result->preds[b]) {
            if (!reaches_exit[p]) {
                reaches_exit[p] = 1;
                stack.push_back(p);
            }
        }
    }
    for (int b = 0; b < n_blocks; ++b) {
        if (result->reachable[b] && !reaches_exit[b]) {
            result->exitReachableEverywhere = false;
            report(DiagKind::NoPathToExit, b, -1, -1,
                   "reachable block has no path to any EXIT (warps entering "
                   "it can never retire)");
        }
    }

    return result;
}

} // namespace finereg::analysis
