/**
 * @file
 * Compressibility pass: turns the value-range pass's per-register
 * intervals into the static profile an Angerd-style compressed register
 * file would encode against — bits needed per register, warp-uniform
 * registers (one copy per warp instead of 32), and a predicted
 * compression ratio over the kernel's def stream. Cross-validates the
 * compiler's RegWidthTable claim (compiler/reg_width.hh) against the
 * derived widths: a claim narrower than the derivation is flagged
 * statically, and ref/value_validator.hh proves observed values fit the
 * claim dynamically. Registers never defined by the kernel hold
 * full-width launch hashes and are excluded from the ratio (they occupy
 * the uncompressed class by definition).
 */

#ifndef FINEREG_ANALYSIS_COMPRESSIBILITY_HH
#define FINEREG_ANALYSIS_COMPRESSIBILITY_HH

#include "analysis/pass.hh"
#include "analysis/value_range.hh"

namespace finereg::analysis
{

struct CompressibilityResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "compressibility";

    /** Derived bits per register (32 for never-defined registers). */
    std::vector<unsigned> derivedBits;

    /** Compiler-claimed bits per register (RegWidthTable, after the
     * LintOptions narrow-claim corruption hook). */
    std::vector<unsigned> claimedBits;

    /** Registers whose every def is warp-uniform. */
    std::vector<char> uniformRegs;

    unsigned narrowRegs = 0;
    unsigned uniformRegCount = 0;
    unsigned defCount = 0;
    double meanBitsPerDef = 32.0;

    /**
     * Predicted compressed-size / native-size ratio over the def stream:
     * each def costs bits/32, scaled by 1/warpSize when its value is
     * proven warp-uniform. 1.0 = incompressible.
     */
    double predictedRatio = 1.0;
};

class CompressibilityPass : public Pass
{
  public:
    std::string_view
    name() const override
    {
        return CompressibilityResult::kName;
    }

    std::vector<std::string_view>
    dependsOn() const override
    {
        return {ValueRangeResult::kName};
    }

    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_COMPRESSIBILITY_HH
