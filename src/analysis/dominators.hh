/**
 * @file
 * Dominator and post-dominator trees over the cfg-check pass's derived
 * edges, computed with the Cooper-Harvey-Kennedy iterative algorithm.
 * The dominator tree lets the reaching-definitions pass phrase its
 * messages ("no def dominates this use"); the post-dominator tree is the
 * independent input the reconvergence cross-check compares against the
 * compiler's CfgAnalysis ipdoms. Both trees use a virtual root so
 * multi-exit kernels post-dominate cleanly.
 */

#ifndef FINEREG_ANALYSIS_DOMINATORS_HH
#define FINEREG_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "analysis/pass.hh"

namespace finereg::analysis
{

struct DomTreeResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "domtree";

    /**
     * Immediate dominator per block; idom[entry] == entry, and -1 for
     * blocks unreachable from the entry.
     */
    std::vector<int> idom;

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(int a, int b) const;
};

struct PostDomTreeResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "postdomtree";

    /**
     * Immediate post-dominator per block. kVirtualExit marks blocks whose
     * only post-dominator is the virtual exit (e.g. EXIT blocks
     * themselves); -1 marks blocks that reach no EXIT at all.
     */
    std::vector<int> ipdom;

    static constexpr int kVirtualExit = -2;
};

class DomTreePass : public Pass
{
  public:
    std::string_view name() const override { return DomTreeResult::kName; }
    std::vector<std::string_view> dependsOn() const override;
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

class PostDomTreePass : public Pass
{
  public:
    std::string_view name() const override { return PostDomTreeResult::kName; }
    std::vector<std::string_view> dependsOn() const override;
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_DOMINATORS_HH
