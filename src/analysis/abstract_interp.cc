#include "analysis/abstract_interp.hh"

#include <sstream>

#include "ref/value_semantics.hh"

namespace finereg::analysis
{

namespace
{

constexpr std::uint64_t kMax32 = 0xffffffffull;

/**
 * Interval image of (b | 1), the IMUL/FFMA multiplier normalization:
 * x|1 >= max(x, 1) and x|1 <= hi|1 for every x <= hi.
 */
Interval
orOne(const Interval &b)
{
    if (b.isBottom())
        return b;
    return Interval::range(b.lo > 1u ? b.lo : 1u, b.hi | 1u);
}

/** Sound interval product a * orOne(b); top when the bound can wrap. */
Interval
mulInterval(const Interval &a, const Interval &b)
{
    const Interval m = orOne(b);
    const std::uint64_t hi = std::uint64_t(a.hi) * m.hi;
    if (hi > kMax32)
        return Interval::top();
    return Interval::range(
        static_cast<std::uint32_t>(std::uint64_t(a.lo) * m.lo),
        static_cast<std::uint32_t>(hi));
}

/** Sound interval sum, tracking the single-wrap case precisely. */
Interval
addInterval(const Interval &a, const Interval &b)
{
    const std::uint64_t lo = std::uint64_t(a.lo) + b.lo;
    const std::uint64_t hi = std::uint64_t(a.hi) + b.hi;
    if (hi <= kMax32)
        return Interval::range(std::uint32_t(lo), std::uint32_t(hi));
    if (lo > kMax32) {
        // Every concrete sum wraps exactly once (lo, hi < 2^33).
        return Interval::range(std::uint32_t(lo - (kMax32 + 1)),
                               std::uint32_t(hi - (kMax32 + 1)));
    }
    return Interval::top();
}

} // namespace

Interval
evalInterval(Opcode op, const Interval &a, const Interval &b,
             const Interval &c)
{
    if (a.isBottom() || b.isBottom() || c.isBottom())
        return Interval::bottom();

    // Exactness guarantee: constants fold through the real semantics, so
    // the abstraction can never disagree with aluEval on known values.
    if (a.isSingleton() && b.isSingleton() && c.isSingleton())
        return Interval::constant(aluEval(op, a.lo, b.lo, c.lo));

    switch (op) {
      case Opcode::IADD:
        return addInterval(a, b);
      case Opcode::IMUL:
        return mulInterval(a, b);
      case Opcode::FFMA:
        return addInterval(mulInterval(a, b), c);
      case Opcode::MOV:
        return a;
      default:
        // FADD/FMUL/SFU are avalanche mixers: any non-singleton operand
        // spreads over the full word.
        return Interval::top();
    }
}

bool
provenAddWrap(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return false;
    return std::uint64_t(a.lo) + b.lo > kMax32;
}

std::string
Interval::toString() const
{
    if (bot)
        return "_|_";
    if (isTop())
        return "T";
    std::ostringstream oss;
    oss << "[0x" << std::hex << lo;
    if (lo != hi)
        oss << ", 0x" << hi;
    oss << "]";
    return oss.str();
}

} // namespace finereg::analysis
