#include "analysis/shmem_race.hh"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/mem_access.hh"
#include "isa/opcode.hh"

namespace finereg::analysis
{

namespace
{

/** Enumeration budget for an op's reachable warp-base offset set. */
constexpr std::uint64_t kEnumCap = 4096;

/**
 * The 128-byte-window start offsets one shared op can reach:
 * (warp*128 + k*stride) % region & ~3 over every warp and execution
 * k < execBound. Empty optional = unbounded or too many to enumerate
 * (treated as "could be anywhere").
 */
std::optional<std::set<std::uint32_t>>
reachableBases(const Kernel &kernel, const Instruction &instr,
               std::uint64_t exec_bound, std::uint32_t region)
{
    if (exec_bound == MemAccessResult::kUnboundedExecs ||
        std::uint64_t(kernel.warpsPerCta()) * exec_bound > kEnumCap)
        return std::nullopt;
    const std::uint64_t stride = std::max<std::uint64_t>(instr.mem.stride, 4);
    std::set<std::uint32_t> bases;
    for (unsigned warp = 0; warp < kernel.warpsPerCta(); ++warp) {
        for (std::uint64_t k = 0; k < exec_bound; ++k) {
            bases.insert(static_cast<std::uint32_t>(
                (std::uint64_t(warp) * 128 + k * stride) % region & ~3ull));
        }
    }
    return bases;
}

/** Two base sets overlap when any two 128-byte lane windows intersect
 * (lane words span [base, base + 124] mod region). */
bool
windowsOverlap(const std::set<std::uint32_t> &a,
               const std::set<std::uint32_t> &b, std::uint32_t region)
{
    for (const std::uint32_t x : a) {
        for (const std::uint32_t y : b) {
            const std::uint32_t dxy = (x + region - y) % region;
            const std::uint32_t dyx = (region - dxy) % region;
            if (dxy <= 124 || dyx <= 124)
                return true;
        }
    }
    return false;
}

} // namespace

std::vector<std::string_view>
ShmemRaceCheckPass::dependsOn() const
{
    return {CfgCheckResult::kName, MemAccessResult::kName};
}

std::unique_ptr<AnalysisResultBase>
ShmemRaceCheckPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(kernel, CfgCheckResult::kName);
    const auto *mem = ctx.manager.resultOf<MemAccessResult>(
        kernel, MemAccessResult::kName);
    auto result = std::make_unique<ShmemRaceCheckResult>();
    if (cfg == nullptr || mem == nullptr)
        return result;

    const std::uint32_t region = sharedRegionBytes(kernel);

    struct SharedOp
    {
        unsigned instr;
        unsigned interval;
        bool store;
        std::optional<std::set<std::uint32_t>> bases;
    };
    std::vector<SharedOp> ops;

    unsigned interval = 0;
    const auto &instrs = kernel.instrs();
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const Instruction &instr = instrs[i];
        if (instr.op == Opcode::BAR) {
            const int b = kernel.blockOfInstr(i);
            if (b >= 0 && cfg->reachable[std::size_t(b)]) {
                ++result->barriers;
                ++interval;
            }
            continue;
        }
        if (instr.op != Opcode::LD_SHARED && instr.op != Opcode::ST_SHARED)
            continue;
        const int b = kernel.blockOfInstr(i);
        if (b < 0 || !cfg->reachable[std::size_t(b)])
            continue;
        const MemAccessResult::OpInfo *info = mem->opAt(i);
        ops.push_back(SharedOp{
            i, interval, instr.op == Opcode::ST_SHARED,
            reachableBases(kernel, instr,
                           info != nullptr
                               ? info->execBound
                               : MemAccessResult::kUnboundedExecs,
                           region)});
    }
    result->intervals = interval + 1;
    result->sharedOps = static_cast<unsigned>(ops.size());

    unsigned emitted = 0;
    for (std::size_t j = 0; j < ops.size(); ++j) {
        for (std::size_t k = 0; k < j; ++k) {
            const SharedOp &later = ops[j];
            const SharedOp &earlier = ops[k];
            if (!later.store && !earlier.store)
                continue;
            if (later.interval != earlier.interval) {
                ++result->orderedPairs;
                continue;
            }
            const bool overlap =
                !later.bases.has_value() || !earlier.bases.has_value() ||
                windowsOverlap(*later.bases, *earlier.bases, region);
            if (!overlap) {
                ++result->orderedPairs;
                continue;
            }
            ++result->racyPairs;
            if (emitted++ < ctx.options.maxDiagsPerPass) {
                std::ostringstream oss;
                oss << "shared "
                    << (later.store ? "store" : "load") << " overlaps the "
                    << (earlier.store ? "store" : "load") << " at I"
                    << earlier.instr
                    << " in the same barrier interval; no synchronization "
                       "orders the warps between them";
                ctx.diags.add(DiagKind::SharedMemRace, kernel.name(),
                              kernel.blockOfInstr(later.instr),
                              static_cast<int>(later.instr), -1, oss.str());
            }
            break; // one diagnostic per anchoring op
        }
    }

    if (result->racyPairs > 0)
        result->verdict = "possibly-racy";
    else if (result->orderedPairs > 0)
        result->verdict = "sync-protected";
    else
        result->verdict = "race-free";
    return result;
}

} // namespace finereg::analysis
