#include "analysis/reconv_check.hh"

#include <sstream>

#include "analysis/cfg_check.hh"
#include "analysis/dominators.hh"
#include "common/log.hh"
#include "compiler/cfg_analysis.hh"

namespace finereg::analysis
{

std::vector<std::string_view>
ReconvCheckPass::dependsOn() const
{
    return {CfgCheckResult::kName, PostDomTreeResult::kName};
}

std::unique_ptr<AnalysisResultBase>
ReconvCheckPass::run(AnalysisContext &ctx)
{
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(ctx.kernel,
                                             CfgCheckResult::kName);
    const auto *pdom =
        ctx.manager.resultOf<PostDomTreeResult>(ctx.kernel,
                                                PostDomTreeResult::kName);
    if (cfg == nullptr || pdom == nullptr)
        FINEREG_PANIC("reconv-check scheduled without its dependencies");

    auto result = std::make_unique<ReconvCheckResult>();

    // CfgAnalysis fatals on unreachable blocks and assumes every block
    // reaches an EXIT, so the comparison only makes sense on CFGs that
    // already satisfy both; cfg-check reported the structural findings.
    if (!cfg->allReachable || !cfg->hasExit || !cfg->exitReachableEverywhere)
        return result;

    result->compared = true;
    const CfgAnalysis compiler(ctx.kernel);

    const int n = static_cast<int>(ctx.kernel.blocks().size());
    unsigned emitted = 0;
    for (int b = 0; b < n; ++b) {
        // CfgAnalysis encodes "post-dominated only by exit" as -1; the
        // postdomtree pass encodes it as kVirtualExit.
        const int derived = pdom->ipdom[b] == PostDomTreeResult::kVirtualExit
                                ? -1
                                : pdom->ipdom[b];
        if (derived == compiler.ipdom(b)) {
            ++result->matches;
            continue;
        }
        ++result->mismatches;
        if (emitted++ < ctx.options.maxDiagsPerPass) {
            std::ostringstream oss;
            oss << "compiler ipdom is B" << compiler.ipdom(b)
                << " but the independent post-dominator tree derives B"
                << derived
                << "; diverged warps would reconverge at the wrong PC";
            ctx.diags.add(DiagKind::ReconvergenceMismatch, ctx.kernel.name(),
                          b, -1, -1, oss.str());
        }
    }
    return result;
}

} // namespace finereg::analysis
