#include "analysis/kernel_mutator.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace finereg::analysis
{

std::string_view
defectKindName(DefectKind kind)
{
    switch (kind) {
      case DefectKind::DanglingBranch: return "dangling-branch";
      case DefectKind::MidBlockTerminator: return "mid-block-terminator";
      case DefectKind::FallThroughOffEnd: return "fall-through-off-end";
      case DefectKind::NoExit: return "no-exit";
      case DefectKind::UnreachableBlock: return "unreachable-block";
      case DefectKind::SelfLoopTrap: return "self-loop-trap";
      case DefectKind::RegisterOutOfRange: return "register-out-of-range";
      case DefectKind::DroppedDef: return "dropped-def";
      case DefectKind::OobSharedStore: return "oob-shared-store";
      case DefectKind::CorruptBitvecDrop: return "corrupt-bitvec-drop";
      case DefectKind::CorruptBitvecFull: return "corrupt-bitvec-full";
      case DefectKind::PhantomEdge: return "phantom-edge";
      case DefectKind::ShrunkBlock: return "shrunk-block";
      case DefectKind::LoopBoundCorrupt: return "loop-bound-corrupt";
      case DefectKind::SharedStrideCorrupt: return "shared-stride-corrupt";
      case DefectKind::BarrierRemoved: return "barrier-removed";
      case DefectKind::NarrowClaimCorrupt: return "narrow-claim-corrupt";
    }
    return "?";
}

std::vector<DefectKind>
allDefectKinds()
{
    return {
        DefectKind::DanglingBranch,     DefectKind::MidBlockTerminator,
        DefectKind::FallThroughOffEnd,  DefectKind::NoExit,
        DefectKind::UnreachableBlock,   DefectKind::SelfLoopTrap,
        DefectKind::RegisterOutOfRange, DefectKind::DroppedDef,
        DefectKind::OobSharedStore,     DefectKind::CorruptBitvecDrop,
        DefectKind::CorruptBitvecFull,  DefectKind::PhantomEdge,
        DefectKind::ShrunkBlock,        DefectKind::LoopBoundCorrupt,
        DefectKind::SharedStrideCorrupt, DefectKind::BarrierRemoved,
        DefectKind::NarrowClaimCorrupt,
    };
}

std::unique_ptr<Kernel>
KernelMutator::clone(const Kernel &kernel, std::string_view tag)
{
    auto copy = std::unique_ptr<Kernel>(new Kernel());
    copy->name_ = kernel.name_ + " !" + std::string(tag);
    copy->instrs_ = kernel.instrs_;
    copy->blocks_ = kernel.blocks_;
    copy->regsPerThread_ = kernel.regsPerThread_;
    copy->threadsPerCta_ = kernel.threadsPerCta_;
    copy->shmemPerCta_ = kernel.shmemPerCta_;
    copy->gridCtas_ = kernel.gridCtas_;
    return copy;
}

void
KernelMutator::recomputeEdges(Kernel &kernel)
{
    const int n = static_cast<int>(kernel.blocks_.size());
    for (auto &blk : kernel.blocks_) {
        blk.succs.clear();
        blk.preds.clear();
    }
    for (int b = 0; b < n; ++b) {
        BasicBlock &blk = kernel.blocks_[b];
        if (blk.numInstrs == 0)
            continue;
        const Instruction &term =
            kernel.instrs_[blk.firstInstr + blk.numInstrs - 1];
        auto add = [&](int to) {
            if (to >= 0 && to < n)
                blk.succs.push_back(to);
        };
        switch (term.op) {
          case Opcode::EXIT:
            break;
          case Opcode::JMP:
            add(term.targetBlock);
            break;
          case Opcode::BRA:
            add(term.targetBlock);
            add(b + 1 < n ? b + 1 : -1);
            break;
          default:
            add(b + 1 < n ? b + 1 : -1);
            break;
        }
    }
    for (int b = 0; b < n; ++b) {
        for (const int s : kernel.blocks_[b].succs)
            kernel.blocks_[s].preds.push_back(b);
    }
}

namespace
{

/** Deterministic site selection: splitmix-style scramble of the seed. */
std::size_t
pick(std::uint64_t seed, std::size_t n)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>((z ^ (z >> 31)) % n);
}

std::string
describe(std::string_view what, int block, int instr)
{
    std::ostringstream oss;
    oss << what << " at B" << block << ":I" << instr;
    return oss.str();
}

} // namespace

std::optional<DefectCandidate>
KernelMutator::seedDefect(const Kernel &kernel, DefectKind kind,
                          std::uint64_t seed)
{
    DefectCandidate out;
    out.kernel = clone(kernel, defectKindName(kind));
    Kernel &mutant = *out.kernel;
    auto &instrs = mutant.instrs_;
    auto &blocks = mutant.blocks_;
    const int n_blocks = static_cast<int>(blocks.size());

    auto block_of = [&](unsigned i) { return mutant.blockOfInstr(i); };

    switch (kind) {
      case DefectKind::DanglingBranch: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::BRA || instrs[i].op == Opcode::JMP)
                sites.push_back(i);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        instrs[i].targetBlock = n_blocks + 2;
        recomputeEdges(mutant);
        out.expected = {DiagKind::BranchTargetOutOfRange};
        out.detail = describe("branch retargeted past the last block",
                              block_of(i), i);
        return out;
      }

      case DefectKind::MidBlockTerminator: {
        std::vector<unsigned> sites;
        for (const BasicBlock &blk : blocks) {
            for (unsigned i = blk.firstInstr;
                 i + 1 < blk.firstInstr + blk.numInstrs; ++i) {
                sites.push_back(i);
            }
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        instrs[i].op = Opcode::JMP;
        instrs[i].targetBlock = 0;
        instrs[i].dst = -1;
        instrs[i].srcs = {-1, -1, -1};
        out.expected = {DiagKind::TerminatorMidBlock};
        out.detail = describe("JMP planted mid-block", block_of(i), i);
        return out;
      }

      case DefectKind::FallThroughOffEnd: {
        const BasicBlock &last_blk = blocks[n_blocks - 1];
        const unsigned i = last_blk.firstInstr + last_blk.numInstrs - 1;
        if (!isControl(instrs[i].op))
            return std::nullopt;
        instrs[i].op = Opcode::IADD;
        instrs[i].dst = 0;
        instrs[i].srcs = {0, -1, -1};
        instrs[i].targetBlock = -1;
        recomputeEdges(mutant);
        out.expected = {DiagKind::FallThroughOffEnd};
        out.detail = describe("final terminator replaced by IADD",
                              n_blocks - 1, i);
        return out;
      }

      case DefectKind::NoExit: {
        bool any = false;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::EXIT) {
                instrs[i].op = Opcode::JMP;
                instrs[i].targetBlock = mutant.entryBlock();
                any = true;
            }
        }
        if (!any)
            return std::nullopt;
        recomputeEdges(mutant);
        out.expected = {DiagKind::NoExit};
        out.detail = "every EXIT replaced by JMP to the entry";
        return out;
      }

      case DefectKind::UnreachableBlock: {
        // A BRA whose fall-through block is entered only via that
        // fall-through edge: demoting the BRA to JMP orphans it.
        std::vector<int> sites;
        for (int b = 0; b + 1 < n_blocks; ++b) {
            const BasicBlock &blk = blocks[b];
            const Instruction &term =
                instrs[blk.firstInstr + blk.numInstrs - 1];
            if (term.op != Opcode::BRA || term.targetBlock == b + 1)
                continue;
            const auto &preds = blocks[b + 1].preds;
            if (preds.size() == 1 && preds[0] == b)
                sites.push_back(b);
        }
        if (sites.empty())
            return std::nullopt;
        const int b = sites[pick(seed, sites.size())];
        const unsigned i = blocks[b].firstInstr + blocks[b].numInstrs - 1;
        instrs[i].op = Opcode::JMP;
        recomputeEdges(mutant);
        out.expected = {DiagKind::UnreachableBlock};
        out.detail = describe("BRA demoted to JMP, orphaning the "
                              "fall-through block", b, i);
        return out;
      }

      case DefectKind::SelfLoopTrap: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::JMP)
                sites.push_back(i);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        instrs[i].targetBlock = block_of(i);
        recomputeEdges(mutant);
        out.expected = {DiagKind::NoPathToExit, DiagKind::UnreachableBlock};
        out.detail = describe("JMP retargeted at its own block",
                              block_of(i), i);
        return out;
      }

      case DefectKind::RegisterOutOfRange: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].srcs[0] >= 0)
                sites.push_back(i);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        instrs[i].srcs[0] = static_cast<int>(mutant.regsPerThread_);
        out.expected = {DiagKind::RegisterOutOfRange};
        out.detail = describe("source operand set past regsPerThread",
                              block_of(i), i);
        return out;
      }

      case DefectKind::DroppedDef: {
        // Prefer defs whose register is read by a later instruction, so
        // the dropped write is actually observable.
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].dst < 0)
                continue;
            for (unsigned j = i + 1; j < instrs.size(); ++j) {
                const auto &srcs = instrs[j].srcs;
                if (std::find(srcs.begin(), srcs.end(), instrs[i].dst) !=
                    srcs.end()) {
                    sites.push_back(i);
                    break;
                }
            }
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        const int reg = instrs[i].dst;
        instrs[i].dst = -1;
        out.expected = {DiagKind::UseBeforeDef, DiagKind::UseNeverDefined};
        out.detail = describe("definition of R" + std::to_string(reg) +
                              " dropped", block_of(i), i);
        return out;
      }

      case DefectKind::OobSharedStore: {
        if (mutant.shmemPerCta_ == 0) {
            // Variant A: global access rewritten to shared in a kernel
            // that declares no shared memory.
            std::vector<unsigned> sites;
            for (unsigned i = 0; i < instrs.size(); ++i) {
                if (isGlobalMemory(instrs[i].op))
                    sites.push_back(i);
            }
            if (sites.empty())
                return std::nullopt;
            const unsigned i = sites[pick(seed, sites.size())];
            instrs[i].op = instrs[i].op == Opcode::LD_GLOBAL
                               ? Opcode::LD_SHARED
                               : Opcode::ST_SHARED;
            out.expected = {DiagKind::SharedOpWithoutShmem};
            out.detail = describe("global access rewritten to shared with "
                                  "shmemPerCta == 0", block_of(i), i);
            return out;
        }
        // Variant B: inflate a shared op's footprint past the allocation.
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::LD_SHARED ||
                instrs[i].op == Opcode::ST_SHARED) {
                sites.push_back(i);
            }
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        const std::uint32_t region = std::max<std::uint32_t>(
            (mutant.shmemPerCta_ + 127u) & ~127u, 128u);
        instrs[i].mem.footprint = std::uint64_t(region) * 4;
        out.expected = {DiagKind::SharedFootprintExceedsShmem};
        out.detail = describe("shared footprint inflated past the CTA "
                              "allocation", block_of(i), i);
        return out;
      }

      case DefectKind::CorruptBitvecDrop: {
        // Dropping a register that some instruction reads guarantees the
        // vector misses a live-in bit at that use.
        std::vector<int> regs;
        for (const Instruction &instr : instrs) {
            for (const int src : instr.srcs) {
                if (src >= 0 &&
                    std::find(regs.begin(), regs.end(), src) == regs.end())
                    regs.push_back(src);
            }
        }
        if (regs.empty())
            return std::nullopt;
        const int reg = regs[pick(seed, regs.size())];
        out.options.dropLiveReg = reg;
        out.expected = {DiagKind::LivenessUnsound};
        out.detail = "R" + std::to_string(reg) +
                     " dropped from every live-register vector";
        return out;
      }

      case DefectKind::CorruptBitvecFull: {
        out.options.fullLiveMask = true;
        out.expected = {DiagKind::LivenessOverApprox};
        out.detail = "live-register vectors replaced by the all-allocated "
                     "mask";
        return out;
      }

      case DefectKind::PhantomEdge: {
        if (n_blocks < 2)
            return std::nullopt;
        const int b = static_cast<int>(pick(seed, n_blocks));
        const int target = (b + 1 + static_cast<int>(
                                        pick(seed ^ 0x5bd1e995, n_blocks - 1))) %
                           n_blocks;
        if (std::find(blocks[b].succs.begin(), blocks[b].succs.end(),
                      target) != blocks[b].succs.end())
            return std::nullopt;
        blocks[b].succs.push_back(target);
        blocks[target].preds.push_back(b);
        out.expected = {DiagKind::CfgEdgesInconsistent};
        out.detail = describe("stored CFG edge planted with no matching "
                              "terminator", b, -1);
        return out;
      }

      case DefectKind::ShrunkBlock: {
        std::vector<int> sites;
        for (int b = 0; b < n_blocks; ++b) {
            if (blocks[b].numInstrs >= 2)
                sites.push_back(b);
        }
        if (sites.empty())
            return std::nullopt;
        const int b = sites[pick(seed, sites.size())];
        blocks[b].numInstrs -= 1;
        out.expected = {DiagKind::BlockExtentCorrupt};
        out.detail = describe("block extent shortened by one instruction",
                              b, -1);
        return out;
      }

      case DefectKind::LoopBoundCorrupt: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].isLoopBranch())
                sites.push_back(i);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        // One loop alone (8M trips) blows the 4M-instruction budget the
        // mem-access pass proves per-warp dynamic counts against.
        instrs[i].tripCount = 1u << 23;
        out.expected = {DiagKind::LoopBudgetExceeded};
        out.detail = describe("loop trip count inflated to 2^23",
                              block_of(i), i);
        return out;
      }

      case DefectKind::SharedStrideCorrupt: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::LD_SHARED ||
                instrs[i].op == Opcode::ST_SHARED) {
                sites.push_back(i);
            }
        }
        if (sites.empty() || mutant.shmemPerCta_ == 0)
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        // Valid strides are multiples of 128 (the per-warp phase); 36
        // walks one warp's accesses through every other warp's slots.
        instrs[i].mem.stride = 36;
        out.expected = {DiagKind::SharedStrideAliasesWarps};
        out.detail = describe("shared stride corrupted off the 128-byte "
                              "warp phase", block_of(i), i);
        return out;
      }

      case DefectKind::BarrierRemoved: {
        // A removable BAR needs a shared op before it and a first shared
        // op after it (within the adjacent sync intervals) such that the
        // merged pair contains a store: the race check must then flag the
        // later op, which carried no race diagnostic while the barrier
        // still separated them.
        std::vector<unsigned> bars;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op == Opcode::BAR)
                bars.push_back(i);
        }
        const auto is_shared = [&](unsigned i) {
            return instrs[i].op == Opcode::LD_SHARED ||
                   instrs[i].op == Opcode::ST_SHARED;
        };
        std::vector<unsigned> sites;
        for (std::size_t j = 0; j < bars.size(); ++j) {
            const unsigned prev_start = j > 0 ? bars[j - 1] + 1 : 0;
            const unsigned next_end = j + 1 < bars.size()
                                          ? bars[j + 1]
                                          : unsigned(instrs.size());
            bool prev_shared = false, prev_store = false;
            for (unsigned i = prev_start; i < bars[j]; ++i) {
                if (!is_shared(i))
                    continue;
                prev_shared = true;
                prev_store =
                    prev_store || instrs[i].op == Opcode::ST_SHARED;
            }
            int next_first = -1;
            for (unsigned i = bars[j] + 1; i < next_end; ++i) {
                if (is_shared(i)) {
                    next_first = int(i);
                    break;
                }
            }
            if (!prev_shared || next_first < 0)
                continue;
            if (instrs[unsigned(next_first)].op == Opcode::ST_SHARED ||
                prev_store)
                sites.push_back(bars[j]);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        // Replace (not delete) so block extents stay intact; a MOV of R0
        // onto itself has no architectural effect.
        instrs[i].op = Opcode::MOV;
        instrs[i].dst = 0;
        instrs[i].srcs = {0, -1, -1};
        out.expected = {DiagKind::SharedMemRace};
        out.detail = describe("BAR replaced by MOV, merging two sync "
                              "intervals", block_of(i), i);
        return out;
      }

      case DefectKind::NarrowClaimCorrupt: {
        std::vector<unsigned> sites;
        for (unsigned i = 0; i < instrs.size(); ++i) {
            if (instrs[i].dst >= 0)
                sites.push_back(i);
        }
        if (sites.empty())
            return std::nullopt;
        const unsigned i = sites[pick(seed, sites.size())];
        const int reg = instrs[i].dst;
        out.options.narrowClaimReg = reg;
        out.options.narrowClaimBits = 0;
        out.expected = {DiagKind::CompressionClaimTooNarrow};
        out.detail = "compiler width claim for R" + std::to_string(reg) +
                     " forced to 0 bits";
        return out;
      }
    }
    return std::nullopt;
}

} // namespace finereg::analysis
