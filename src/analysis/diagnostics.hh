/**
 * @file
 * Structured diagnostics for the static kernel analysis subsystem. Every
 * pass reports findings as typed Diagnostic records (kind + severity +
 * kernel/block/instruction location) collected into a DiagnosticSet, which
 * renders them for humans (one line per finding, compiler-style) or as JSON
 * for CI artifacts. Severity policy: Errors are proofs of ill-formedness
 * that make simulation results meaningless (finereg_lint exits non-zero);
 * Warnings flag legal-but-suspicious constructs; Notes carry per-kernel
 * efficiency observations (e.g. dead definitions, the Fig. 5 story).
 */

#ifndef FINEREG_ANALYSIS_DIAGNOSTICS_HH
#define FINEREG_ANALYSIS_DIAGNOSTICS_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace finereg::analysis
{

enum class Severity : unsigned char
{
    Note,    ///< Efficiency/structure observation; never fails a build.
    Warning, ///< Legal but suspicious; reported, does not fail lint.
    Error,   ///< Proven ill-formedness; finereg_lint exits non-zero.
};

/** Every diagnostic the subsystem can emit, one stable kind per defect. */
enum class DiagKind : unsigned char
{
    // CFG well-formedness -------------------------------------------------
    EmptyBlock,             ///< Basic block spans zero instructions.
    BlockExtentCorrupt,     ///< Block extents overlap / leave gaps.
    TerminatorMidBlock,     ///< BRA/JMP/EXIT before the block's last slot.
    BranchTargetOutOfRange, ///< BRA/JMP targets a nonexistent block.
    FallThroughOffEnd,      ///< Last block falls through past kernel end.
    NoExit,                 ///< Kernel contains no EXIT instruction.
    UnreachableBlock,       ///< Block unreachable from the entry.
    NoPathToExit,           ///< Reachable block cannot reach any EXIT.
    CfgEdgesInconsistent,   ///< Stored succ/pred lists disagree with the
                            ///< edges the terminators imply.
    RegisterOutOfRange,     ///< Operand register >= declared regsPerThread.

    // Dataflow ------------------------------------------------------------
    UseBeforeDef,    ///< Register possibly read before any def on some path.
    UseNeverDefined, ///< Register read but never defined anywhere.

    // Liveness cross-validation -------------------------------------------
    LivenessUnsound,   ///< Compiler bit vector misses a needed register.
    LivenessOverApprox, ///< Bit vectors grossly over-approximate liveness.
    DeadDef,            ///< Definition whose value is never read.

    // Reconvergence cross-validation --------------------------------------
    ReconvergenceMismatch, ///< Independent post-dominators disagree with
                           ///< the compiler's CfgAnalysis ipdoms.

    // Shared memory --------------------------------------------------------
    SharedOpWithoutShmem,       ///< Shared access but shmemPerCta == 0.
    SharedFootprintExceedsShmem, ///< Declared footprint walks past the
                                 ///< CTA's shared allocation (wraps).
    SharedBankConflict,          ///< Statically resolved lane addresses
                                 ///< collide in a bank.
    SharedTransactionsIgnored,   ///< Shared op declares >1 transactions;
                                 ///< the shared path models fixed latency.

    // Value-range abstract interpretation ----------------------------------
    ValueOverflow,      ///< IADD/FFMA sum provably wraps around 2^32.
    ConstantFoldableDef, ///< ALU/SFU def proven to produce one value.

    // Memory-access abstract interpretation --------------------------------
    LoopBudgetExceeded,       ///< Proven per-warp dynamic instruction count
                              ///< exceeds the executor's runaway budget.
    SharedStrideAliasesWarps, ///< Shared stride breaks the 128-byte warp
                              ///< phase; warps alias each other's slots.

    // Shared-memory race check ---------------------------------------------
    SharedMemRace, ///< Two shared ops in one barrier interval with
                   ///< overlapping affine address sets (>= 1 store).

    // Compressibility cross-validation --------------------------------------
    CompressionClaimTooNarrow, ///< Compiler width claim below the derived
                               ///< interval width (static comparison).
    CompressionWidthUnsound,   ///< Observed value exceeds the claimed
                               ///< register width (dynamic proof).

    // Dynamic soundness cross-validation ------------------------------------
    ValueRangeUnsound,  ///< Observed value/uniformity outside the static
                        ///< value abstraction.
    AddressBoundUnsound, ///< Observed address or execution count outside
                         ///< the static memory-access abstraction.
};

std::string_view severityName(Severity severity);
std::string_view diagKindName(DiagKind kind);

/** The severity each kind carries unless a pass overrides it. */
Severity defaultSeverity(DiagKind kind);

struct Diagnostic
{
    DiagKind kind = DiagKind::EmptyBlock;
    Severity severity = Severity::Error;

    std::string kernel;

    /** Block index, or -1 for kernel-scope findings. */
    int block = -1;

    /** Flat instruction index, or -1; pc() derives from it. */
    int instr = -1;

    /** Register index the finding names, or -1. */
    int reg = -1;

    std::string message;

    Pc pc() const { return static_cast<Pc>(instr < 0 ? 0 : instr) * kInstrBytes; }

    /** "kernel:B2:I7(pc=0x38)" style location prefix. */
    std::string location() const;

    /** One-line compiler-style rendering: "error: loc: [kind] message". */
    std::string toString() const;
};

class DiagnosticSet
{
  public:
    /** Add with the kind's default severity. */
    Diagnostic &add(DiagKind kind, std::string kernel, int block, int instr,
                    int reg, std::string message);

    Diagnostic &add(Diagnostic diag);

    void append(const DiagnosticSet &other);
    void append(const std::vector<Diagnostic> &diags);

    const std::vector<Diagnostic> &all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    unsigned count(Severity severity) const;
    unsigned errors() const { return count(Severity::Error); }
    unsigned warnings() const { return count(Severity::Warning); }
    unsigned notes() const { return count(Severity::Note); }
    bool hasErrors() const { return errors() > 0; }

    bool has(DiagKind kind) const;

    /** First diagnostic of @p kind, or nullptr. */
    const Diagnostic *find(DiagKind kind) const;

    /**
     * Human rendering, one line per diagnostic, errors first. @p max_lines
     * caps the output (0 = unlimited); a trailing elision line reports how
     * many were suppressed.
     */
    std::string renderText(unsigned max_lines = 0) const;

    /** JSON array of {kind, severity, kernel, block, instr, pc, reg, message}. */
    void renderJson(std::ostream &os) const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_DIAGNOSTICS_HH
