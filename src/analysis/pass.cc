#include "analysis/pass.hh"

#include <algorithm>

#include "analysis/cfg_check.hh"
#include "analysis/compressibility.hh"
#include "analysis/dominators.hh"
#include "analysis/liveness_check.hh"
#include "analysis/mem_access.hh"
#include "analysis/reaching_defs.hh"
#include "analysis/reconv_check.hh"
#include "analysis/shared_mem_check.hh"
#include "analysis/shmem_race.hh"
#include "analysis/value_range.hh"
#include "common/log.hh"

namespace finereg::analysis
{

AnalysisManager::AnalysisManager(LintOptions options) : options_(options) {}

AnalysisManager::~AnalysisManager() = default;

std::unique_ptr<AnalysisManager>
AnalysisManager::withDefaultPasses(LintOptions options)
{
    auto manager = std::make_unique<AnalysisManager>(options);
    manager->registerPass(std::make_unique<CfgCheckPass>());
    manager->registerPass(std::make_unique<DomTreePass>());
    manager->registerPass(std::make_unique<PostDomTreePass>());
    manager->registerPass(std::make_unique<ReconvCheckPass>());
    manager->registerPass(std::make_unique<ReachingDefsPass>());
    manager->registerPass(std::make_unique<LivenessCheckPass>());
    manager->registerPass(std::make_unique<ValueRangePass>());
    manager->registerPass(std::make_unique<MemAccessPass>());
    manager->registerPass(std::make_unique<SharedMemCheckPass>());
    manager->registerPass(std::make_unique<CompressibilityPass>());
    manager->registerPass(std::make_unique<ShmemRaceCheckPass>());
    return manager;
}

void
AnalysisManager::registerPass(std::unique_ptr<Pass> pass)
{
    if (!pass)
        FINEREG_PANIC("registering a null pass");
    if (findPass(pass->name()) != nullptr)
        FINEREG_PANIC("duplicate pass name '", pass->name(), "'");
    passes_.push_back(std::move(pass));
}

std::vector<std::string_view>
AnalysisManager::passNames() const
{
    std::vector<std::string_view> names;
    names.reserve(passes_.size());
    for (const auto &pass : passes_)
        names.push_back(pass->name());
    return names;
}

Pass *
AnalysisManager::findPass(std::string_view name)
{
    for (const auto &pass : passes_) {
        if (pass->name() == name)
            return pass.get();
    }
    return nullptr;
}

const PassOutcome &
AnalysisManager::ensure(const Kernel &kernel, std::string_view pass_name)
{
    auto &kernel_cache = cache_[&kernel];
    if (auto it = kernel_cache.find(pass_name); it != kernel_cache.end())
        return it->second;

    Pass *pass = findPass(pass_name);
    if (pass == nullptr)
        FINEREG_PANIC("unknown analysis pass '", pass_name, "'");

    if (std::find(inFlight_.begin(), inFlight_.end(), pass_name) !=
        inFlight_.end()) {
        FINEREG_PANIC("dependency cycle through analysis pass '", pass_name,
                      "'");
    }
    inFlight_.emplace_back(pass_name);

    // Run dependencies first; cfg-check is an implicit dependency of every
    // gated pass.
    for (std::string_view dep : pass->dependsOn())
        ensure(kernel, dep);

    bool skip = false;
    if (pass->requiresSoundCfg()) {
        const auto &cfg = ensure(kernel, CfgCheckResult::kName);
        const auto *cfg_result =
            dynamic_cast<const CfgCheckResult *>(cfg.result.get());
        skip = cfg_result == nullptr || !cfg_result->structurallySound;
    }

    PassOutcome outcome;
    if (skip) {
        outcome.skipped = true;
    } else {
        AnalysisContext ctx{kernel, options_, outcome.diags, *this};
        outcome.result = pass->run(ctx);
    }

    inFlight_.pop_back();

    auto [it, inserted] =
        cache_[&kernel].emplace(std::string(pass_name), std::move(outcome));
    if (!inserted)
        FINEREG_PANIC("analysis pass '", pass_name, "' ran twice on a kernel");
    return it->second;
}

void
AnalysisManager::invalidate(const Kernel &kernel)
{
    cache_.erase(&kernel);
}

} // namespace finereg::analysis
