#include "analysis/dominators.hh"

#include <algorithm>

#include "analysis/cfg_check.hh"
#include "common/log.hh"

namespace finereg::analysis
{

namespace
{

/**
 * Reverse postorder over @p succs starting at @p root, visiting only
 * reachable nodes. Iterative DFS with an explicit edge cursor so deep
 * kernels cannot overflow the stack.
 */
std::vector<int>
reversePostorder(const std::vector<std::vector<int>> &succs, int root)
{
    const int n = static_cast<int>(succs.size());
    std::vector<char> visited(n, 0);
    std::vector<int> postorder;
    postorder.reserve(n);

    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(root, 0);
    visited[root] = 1;
    while (!stack.empty()) {
        auto &[node, cursor] = stack.back();
        if (cursor < succs[node].size()) {
            const int next = succs[node][cursor++];
            if (!visited[next]) {
                visited[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

/**
 * Cooper-Harvey-Kennedy iterative dominators over an arbitrary edge
 * relation. Nodes never visited get idom -1.
 */
std::vector<int>
iterativeDoms(const std::vector<std::vector<int>> &succs,
              const std::vector<std::vector<int>> &preds, int root)
{
    const int n = static_cast<int>(succs.size());
    const std::vector<int> rpo = reversePostorder(succs, root);

    std::vector<int> rpo_index(n, -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = static_cast<int>(i);

    std::vector<int> idom(n, -1);
    idom[root] = root;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const int b : rpo) {
            if (b == root)
                continue;
            int new_idom = -1;
            for (const int p : preds[b]) {
                if (idom[p] < 0)
                    continue; // Not yet processed or unreachable.
                new_idom = new_idom < 0 ? p : intersect(new_idom, p);
            }
            if (new_idom >= 0 && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

} // namespace

bool
DomTreeResult::dominates(int a, int b) const
{
    if (b < 0 || b >= static_cast<int>(idom.size()) || idom[b] < 0)
        return false;
    while (true) {
        if (b == a)
            return true;
        const int up = idom[b];
        if (up == b)
            return false; // Reached the entry without meeting a.
        b = up;
    }
}

std::vector<std::string_view>
DomTreePass::dependsOn() const
{
    return {CfgCheckResult::kName};
}

std::unique_ptr<AnalysisResultBase>
DomTreePass::run(AnalysisContext &ctx)
{
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(ctx.kernel,
                                             CfgCheckResult::kName);
    if (cfg == nullptr)
        FINEREG_PANIC("domtree scheduled without a sound cfg-check result");

    auto result = std::make_unique<DomTreeResult>();
    result->idom = iterativeDoms(cfg->succs, cfg->preds,
                                 ctx.kernel.entryBlock());
    return result;
}

std::vector<std::string_view>
PostDomTreePass::dependsOn() const
{
    return {CfgCheckResult::kName};
}

std::unique_ptr<AnalysisResultBase>
PostDomTreePass::run(AnalysisContext &ctx)
{
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(ctx.kernel,
                                             CfgCheckResult::kName);
    if (cfg == nullptr)
        FINEREG_PANIC("postdomtree scheduled without a cfg-check result");

    const int n = static_cast<int>(cfg->succs.size());
    const int virtual_exit = n;

    // Reverse the graph and add a virtual exit succeeding every
    // EXIT-terminated block, so multi-exit kernels have one post-dom root.
    std::vector<std::vector<int>> rsuccs(n + 1), rpreds(n + 1);
    const auto &instrs = ctx.kernel.instrs();
    const auto &blocks = ctx.kernel.blocks();
    for (int b = 0; b < n; ++b) {
        for (const int s : cfg->succs[b]) {
            rsuccs[s].push_back(b);
            rpreds[b].push_back(s);
        }
        const unsigned last = blocks[b].firstInstr + blocks[b].numInstrs - 1;
        if (instrs[last].op == Opcode::EXIT) {
            rsuccs[virtual_exit].push_back(b);
            rpreds[b].push_back(virtual_exit);
        }
    }

    std::vector<int> idom = iterativeDoms(rsuccs, rpreds, virtual_exit);

    auto result = std::make_unique<PostDomTreeResult>();
    result->ipdom.assign(n, -1);
    for (int b = 0; b < n; ++b) {
        if (idom[b] < 0)
            continue; // Reaches no EXIT.
        result->ipdom[b] = idom[b] == virtual_exit
                               ? PostDomTreeResult::kVirtualExit
                               : idom[b];
    }
    return result;
}

} // namespace finereg::analysis
