#include "analysis/liveness_check.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "analysis/cfg_check.hh"
#include "common/log.hh"
#include "compiler/liveness.hh"

namespace finereg::analysis
{

namespace
{

RegBitVec
useSetOf(const Instruction &instr)
{
    RegBitVec use;
    for (const int src : instr.srcs) {
        if (src >= 0)
            use.set(static_cast<RegIndex>(src));
    }
    return use;
}

RegBitVec
allocatedRegs(const Kernel &kernel)
{
    RegBitVec regs;
    const unsigned limit =
        std::min<unsigned>(kernel.regsPerThread(), kMaxRegsPerThread);
    for (unsigned r = 0; r < limit; ++r)
        regs.set(static_cast<RegIndex>(r));
    return regs;
}

} // namespace

std::vector<std::string_view>
LivenessCheckPass::dependsOn() const
{
    return {CfgCheckResult::kName};
}

std::unique_ptr<AnalysisResultBase>
LivenessCheckPass::run(AnalysisContext &ctx)
{
    const Kernel &kernel = ctx.kernel;
    const auto *cfg =
        ctx.manager.resultOf<CfgCheckResult>(kernel, CfgCheckResult::kName);
    if (cfg == nullptr)
        FINEREG_PANIC("liveness-check scheduled without a cfg-check result");

    const auto &instrs = kernel.instrs();
    const auto &blocks = kernel.blocks();
    const unsigned n = static_cast<unsigned>(instrs.size());

    auto result = std::make_unique<LivenessCheckResult>();
    result->derivedLiveIn.assign(n, RegBitVec{});

    // ---- Instruction-level flow graph ------------------------------------
    // Successors of instruction i: the next slot inside its block, or the
    // first instructions of the block's derived CFG successors.
    std::vector<std::vector<unsigned>> isuccs(n), ipreds(n);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &blk = blocks[b];
        for (unsigned i = blk.firstInstr; i + 1 < blk.firstInstr + blk.numInstrs;
             ++i) {
            isuccs[i].push_back(i + 1);
            ipreds[i + 1].push_back(i);
        }
        const unsigned last = blk.firstInstr + blk.numInstrs - 1;
        for (const int s : cfg->succs[b]) {
            const unsigned target = blocks[s].firstInstr;
            isuccs[last].push_back(target);
            ipreds[target].push_back(last);
        }
    }

    // ---- Backward worklist to the least fixpoint -------------------------
    std::vector<RegBitVec> need_out(n);
    std::deque<unsigned> worklist;
    std::vector<char> queued(n, 1);
    for (unsigned i = n; i-- > 0;)
        worklist.push_back(i); // Reverse order converges fastest.

    while (!worklist.empty()) {
        const unsigned i = worklist.front();
        worklist.pop_front();
        queued[i] = 0;

        RegBitVec out;
        for (const unsigned s : isuccs[i])
            out |= result->derivedLiveIn[s];
        need_out[i] = out;

        RegBitVec survivors = out;
        if (instrs[i].dst >= 0)
            survivors.reset(static_cast<RegIndex>(instrs[i].dst));
        const RegBitVec in = useSetOf(instrs[i]) | survivors;
        if (in != result->derivedLiveIn[i]) {
            result->derivedLiveIn[i] = in;
            for (const unsigned p : ipreds[i]) {
                if (!queued[p]) {
                    queued[p] = 1;
                    worklist.push_back(p);
                }
            }
        }
    }

    // ---- Compiler vectors, with the lint-side corruption hooks -----------
    const LivenessAnalysis compiler(kernel);
    const RegBitVec full_mask = allocatedRegs(kernel);
    auto compiler_vec = [&](unsigned i) {
        if (ctx.options.fullLiveMask)
            return full_mask;
        RegBitVec vec = compiler.liveIn(i);
        if (ctx.options.dropLiveReg >= 0)
            vec.reset(static_cast<RegIndex>(ctx.options.dropLiveReg));
        return vec;
    };

    // ---- Soundness: every needed register must be in the vector ----------
    unsigned emitted = 0;
    bool exact = true;
    double derived_sum = 0.0, compiler_sum = 0.0, surplus_sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const RegBitVec derived = result->derivedLiveIn[i];
        const RegBitVec vec = compiler_vec(i);

        result->maxLive = std::max(result->maxLive, derived.count());
        result->compilerMaxLive =
            std::max(result->compilerMaxLive, vec.count());
        derived_sum += derived.count();
        compiler_sum += vec.count();
        surplus_sum += vec.minus(derived).count();
        if (vec != derived)
            exact = false;

        const RegBitVec missing = derived.minus(vec);
        if (!missing.empty()) {
            missing.forEach([&](RegIndex reg) {
                ++result->unsoundCount;
                if (emitted++ < ctx.options.maxDiagsPerPass) {
                    std::ostringstream oss;
                    oss << "live-register vector is missing a register some "
                           "path still reads; the RMU would skip saving it "
                           "at a context swap";
                    ctx.diags.add(DiagKind::LivenessUnsound, kernel.name(),
                                  kernel.blockOfInstr(i),
                                  static_cast<int>(i), reg, oss.str());
                }
            });
        }

        // Dead definition: the value written here is never read later.
        const int dst = instrs[i].dst;
        if (dst >= 0 && dst < static_cast<int>(kMaxRegsPerThread) &&
            !need_out[i].test(static_cast<RegIndex>(dst))) {
            ++result->deadDefCount;
            if (emitted++ < ctx.options.maxDiagsPerPass) {
                ctx.diags.add(DiagKind::DeadDef, kernel.name(),
                              kernel.blockOfInstr(i), static_cast<int>(i),
                              dst,
                              "definition is never read on any path (cold "
                              "register; still occupies RF space)");
            }
        }
    }

    result->exactMatch = exact && result->unsoundCount == 0;
    result->meanLive = n ? derived_sum / n : 0.0;
    result->compilerMeanLive = n ? compiler_sum / n : 0.0;
    result->liveRatio =
        kernel.regsPerThread()
            ? result->meanLive / static_cast<double>(kernel.regsPerThread())
            : 0.0;

    // ---- Over-approximation: sound but wasteful --------------------------
    const double mean_surplus = n ? surplus_sum / n : 0.0;
    const double ratio = result->meanLive > 0.0
                             ? result->compilerMeanLive / result->meanLive
                             : (result->compilerMeanLive > 0.0 ? 1e9 : 1.0);
    if (ratio > ctx.options.overApproxMeanRatio &&
        mean_surplus >= ctx.options.overApproxMeanSlack) {
        result->overApprox = true;
        std::ostringstream oss;
        oss << "live-register vectors carry " << result->compilerMeanLive
            << " mean live registers where " << result->meanLive
            << " are provably needed (" << mean_surplus
            << " surplus/instr); context swaps save far more state than "
               "necessary, eroding the fine-grained benefit";
        ctx.diags.add(DiagKind::LivenessOverApprox, kernel.name(), -1, -1, -1,
                      oss.str());
    }

    return result;
}

} // namespace finereg::analysis
