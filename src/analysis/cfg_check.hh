/**
 * @file
 * CFG well-formedness pass. Re-derives the control-flow graph from the
 * instruction stream alone (terminator opcodes and their targets) without
 * trusting the Kernel's stored successor/predecessor lists, then proves:
 * block extents tile the instruction array, terminators sit only in the
 * last slot, every branch target exists, the final block cannot fall
 * through off the kernel end, an EXIT exists and is reachable from every
 * reachable block, no block is unreachable, operand registers are within
 * the declared allocation, and the stored CFG edges match the derived
 * ones. Later passes consume the derived edges, so they never walk a
 * graph the checker has not vetted.
 */

#ifndef FINEREG_ANALYSIS_CFG_CHECK_HH
#define FINEREG_ANALYSIS_CFG_CHECK_HH

#include <vector>

#include "analysis/pass.hh"

namespace finereg::analysis
{

struct CfgCheckResult : AnalysisResultBase
{
    static constexpr std::string_view kName = "cfg-check";

    /**
     * True when block extents, terminator placement, and branch targets
     * are all valid — the precondition for running dataflow passes.
     * Reachability and register-range findings do not clear this flag.
     */
    bool structurallySound = true;

    /** Successor lists derived from terminators (valid targets only). */
    std::vector<std::vector<int>> succs;

    /** Predecessor lists derived from succs. */
    std::vector<std::vector<int>> preds;

    /** Per-block reachability from the entry over derived edges. */
    std::vector<char> reachable;

    bool allReachable = true;
    bool hasExit = false;

    /** Every reachable block can reach an EXIT terminator. */
    bool exitReachableEverywhere = true;
};

class CfgCheckPass : public Pass
{
  public:
    std::string_view name() const override { return CfgCheckResult::kName; }
    bool requiresSoundCfg() const override { return false; }
    std::unique_ptr<AnalysisResultBase> run(AnalysisContext &ctx) override;
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_CFG_CHECK_HH
