/**
 * @file
 * Defect seeding for the lint self-check: clones a valid kernel and
 * plants exactly one known defect — a dangling branch, a dropped
 * definition, a corrupted live-register vector (via the LintOptions
 * mirror of the RMU's dropLiveReg test hook), an out-of-bounds shared
 * store, and friends — together with the diagnostic kinds the analysis
 * pipeline is required to raise for it. finereg_lint --self-check seeds
 * every defect kind across generated kernels and fails unless each one
 * produces a *new* diagnostic of an expected kind, proving the passes
 * detect the corruption classes they claim to.
 */

#ifndef FINEREG_ANALYSIS_KERNEL_MUTATOR_HH
#define FINEREG_ANALYSIS_KERNEL_MUTATOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pass.hh"

namespace finereg::analysis
{

/** Every defect class the self-check must prove detectable. */
enum class DefectKind : unsigned char
{
    DanglingBranch,    ///< Branch retargeted past the last block.
    MidBlockTerminator, ///< JMP planted before a block's last slot.
    FallThroughOffEnd, ///< Final terminator replaced by an ALU op.
    NoExit,            ///< Every EXIT replaced by a jump to the entry.
    UnreachableBlock,  ///< BRA demoted to JMP, orphaning the fall-through.
    SelfLoopTrap,      ///< JMP retargeted at its own block (no exit path).
    RegisterOutOfRange, ///< Source operand set past regsPerThread.
    DroppedDef,        ///< A definition's destination cleared.
    OobSharedStore,    ///< Shared access outside the CTA's allocation.
    CorruptBitvecDrop, ///< A live register dropped from every vector.
    CorruptBitvecFull, ///< Vectors replaced by the all-registers mask.
    PhantomEdge,       ///< Stored CFG edge the terminators do not imply.
    ShrunkBlock,       ///< Block extent shortened, leaving a gap.
    LoopBoundCorrupt,  ///< Loop trip count inflated past the instruction
                       ///< budget the mem-access pass proves against.
    SharedStrideCorrupt, ///< Shared stride broken off the 128-byte warp
                         ///< phase, aliasing warps into each other's slots.
    BarrierRemoved,    ///< BAR replaced by a no-op, merging two sync
                       ///< intervals into a shared-memory race.
    NarrowClaimCorrupt, ///< Compiler width claim forced below the derived
                        ///< register width.
};

std::string_view defectKindName(DefectKind kind);

/** All defect kinds, for exhaustive self-check iteration. */
std::vector<DefectKind> allDefectKinds();

/** A seeded-defect kernel plus what the lint pipeline must say about it. */
struct DefectCandidate
{
    std::unique_ptr<Kernel> kernel;

    /** Lint options to analyze under (bit-vector corruption lives here). */
    LintOptions options;

    /** Detection succeeds when a *new* diagnostic has any of these kinds. */
    std::vector<DiagKind> expected;

    /** Human description of what was planted where. */
    std::string detail;
};

/**
 * Clones kernels and plants defects. A friend of Kernel so it can edit
 * the otherwise-immutable instruction stream and block table the way real
 * toolchain or memory corruption would.
 */
class KernelMutator
{
  public:
    /** Deep copy with " !<defect>" appended to the name. */
    static std::unique_ptr<Kernel> clone(const Kernel &kernel,
                                         std::string_view tag);

    /**
     * Plant @p kind into a clone of @p kernel, choosing among applicable
     * sites with @p seed. Returns nullopt when the kernel offers no site
     * for this defect (e.g. no shared ops to corrupt).
     */
    static std::optional<DefectCandidate>
    seedDefect(const Kernel &kernel, DefectKind kind, std::uint64_t seed);

  private:
    /** Rebuild stored succ/pred lists from the terminators, skipping
     * invalid targets, after a mutation changed control flow. */
    static void recomputeEdges(Kernel &kernel);
};

} // namespace finereg::analysis

#endif // FINEREG_ANALYSIS_KERNEL_MUTATOR_HH
