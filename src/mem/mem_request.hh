/**
 * @file
 * Memory access descriptors shared between the SM load/store unit and the
 * memory hierarchy, and the traffic classes Fig. 15 distinguishes.
 */

#ifndef FINEREG_MEM_MEM_REQUEST_HH
#define FINEREG_MEM_MEM_REQUEST_HH

#include "common/types.hh"

namespace finereg
{

/**
 * Off-chip traffic classes. Fig. 15 compares baseline data traffic against
 * the extra traffic Reg+DRAM's context switching and FineReg's bit-vector
 * fetches generate.
 */
enum class TrafficClass : unsigned char
{
    Data,       ///< Ordinary global loads/stores spilling past L2.
    CtaContext, ///< CTA register context moved to/from DRAM (Reg+DRAM).
    BitVector,  ///< Live-register bit vector fetches (FineReg RMU misses).
};

inline constexpr unsigned kNumTrafficClasses = 3;

/** Outcome of a warp-level memory access through the hierarchy. */
struct MemAccessResult
{
    /** Cycle at which the last transaction's data is back at the SM. */
    Cycle completeCycle = 0;

    unsigned l1Hits = 0;
    unsigned l1Misses = 0;
    unsigned l2Hits = 0;
    unsigned l2Misses = 0;
};

} // namespace finereg

#endif // FINEREG_MEM_MEM_REQUEST_HH
