#include "mem/cache.hh"

#include "verify/sim_error.hh"

namespace finereg
{

Cache::Cache(std::string name, const CacheConfig &config, StatGroup &stats)
    : name_(std::move(name)), config_(config),
      hits_(&stats.counter(name_ + ".hits")),
      misses_(&stats.counter(name_ + ".misses")),
      mshrMerges_(&stats.counter(name_ + ".mshr_merges"))
{
    rebuild();
}

void
Cache::rebuild()
{
    if (config_.sizeBytes == 0 || config_.assoc == 0 ||
        config_.lineBytes == 0) {
        raiseConfigError("cache " + name_ + ": zero-sized geometry");
    }
    numSets_ = config_.sizeBytes / (config_.assoc * config_.lineBytes);
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.assign(numSets_ * config_.assoc, Line{});
    mshrs_.clear();
    useClock_ = 0;
}

bool
Cache::access(Addr addr, bool is_write)
{
    ++useClock_;
    const Addr line = lineAddr(addr);
    const std::size_t set = setOf(line);
    const Addr tag = tagOf(line);
    Line *base = &lines_[set * config_.assoc];

    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock_;
            hits_->inc();
            return true;
        }
    }

    misses_->inc();

    // Stores miss straight down unless this level write-allocates.
    if (is_write && !config_.writeAllocate)
        return false;

    // Allocate, evicting the LRU way.
    Line *victim = &base[0];
    for (unsigned w = 1; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::size_t set = setOf(line);
    const Addr tag = tagOf(line);
    const Line *base = &lines_[set * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

std::optional<Cycle>
Cache::outstandingFill(Addr addr, Cycle now)
{
    const Addr line = lineAddr(addr);
    const auto it = mshrs_.find(line);
    if (it == mshrs_.end())
        return std::nullopt;
    if (it->second <= now) {
        // The fill landed; the MSHR is free again.
        mshrs_.erase(it);
        return std::nullopt;
    }
    mshrMerges_->inc();
    return it->second;
}

void
Cache::registerFill(Addr addr, Cycle fill_cycle)
{
    const Addr line = lineAddr(addr);
    // A bounded MSHR file: when full, drop the oldest entry. Merging is an
    // optimization, so forgetting an entry only costs extra traffic realism,
    // never correctness.
    if (mshrs_.size() >= config_.mshrEntries)
        mshrs_.erase(mshrs_.begin());
    mshrs_[line] = fill_cycle;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line.valid = false;
    mshrs_.clear();
}

void
Cache::resize(std::uint64_t size_bytes)
{
    config_.sizeBytes = size_bytes;
    rebuild();
}

} // namespace finereg
