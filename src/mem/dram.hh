/**
 * @file
 * Off-chip DRAM model: fixed access latency plus a bandwidth-limited channel
 * (Table I: 352.5 GB/s at 1126 MHz = ~313 bytes per core cycle). Requests
 * serialize on the channel; per-traffic-class byte counters feed Fig. 15.
 */

#ifndef FINEREG_MEM_DRAM_HH
#define FINEREG_MEM_DRAM_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_request.hh"

namespace finereg
{

class FaultInjector;

struct DramConfig
{
    /** Bytes the channel moves per core cycle (352.5e9 / 1126e6). */
    double bytesPerCycle = 313.0;

    /** Closed-page access latency in core cycles. */
    unsigned accessLatency = 220;
};

class Dram
{
  public:
    Dram(const DramConfig &config, StatGroup &stats);

    /**
     * Serve @p bytes starting no earlier than @p now.
     *
     * @return cycle at which the last byte arrives.
     */
    Cycle serve(Cycle now, std::uint64_t bytes, TrafficClass cls);

    /** Total bytes moved for @p cls. */
    std::uint64_t bytesMoved(TrafficClass cls) const;

    /** Total bytes moved across all classes. */
    std::uint64_t totalBytes() const;

    /** Number of serve() calls (DRAM "accesses" for the energy model). */
    std::uint64_t accesses() const { return accesses_->value(); }

    /** Reset the channel's queue (between experiments). */
    void reset() { nextFree_ = 0.0; }

    /** Attach (or detach with nullptr) a deterministic fault injector. */
    void setFaultInjector(FaultInjector *fault) { fault_ = fault; }

  private:
    DramConfig config_;
    FaultInjector *fault_ = nullptr;
    /** Earliest time the channel can start a new transfer. Fractional so
     * that sub-cycle transfers (128 B at ~313 B/cycle) accumulate exactly
     * instead of each rounding up to a full cycle. */
    double nextFree_ = 0.0;
    std::array<Counter *, kNumTrafficClasses> bytes_;
    Counter *accesses_;
};

} // namespace finereg

#endif // FINEREG_MEM_DRAM_HH
