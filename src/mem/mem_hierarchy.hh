/**
 * @file
 * The full memory hierarchy: per-SM L1 data caches, a shared L2, and the
 * DRAM channel. The SM load/store unit calls warpAccess() with a warp's
 * coalesced transaction list; the hierarchy walks each transaction through
 * the levels, models MSHR merging and bandwidth queuing, and returns the
 * completion cycle. Policies call offchipTransfer() to inject CTA-context
 * (Reg+DRAM) and bit-vector (FineReg) traffic onto the same DRAM channel.
 */

#ifndef FINEREG_MEM_MEM_HIERARCHY_HH
#define FINEREG_MEM_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_request.hh"

namespace finereg
{

struct MemHierarchyConfig
{
    CacheConfig l1{48 * 1024, 8, 128, 28, 64};
    CacheConfig l2{2048 * 1024, 8, 128, 300, 256, true};
    DramConfig dram{};

    /** L2 transactions accepted per cycle (crossbar+slice bandwidth). */
    double l2TransactionsPerCycle = 8.0;
};

class MemHierarchy
{
  public:
    MemHierarchy(const MemHierarchyConfig &config, unsigned num_sms,
                 StatGroup &stats);

    /**
     * Issue one warp-level global access of @p transactions consecutive
     * 128-byte lines starting at @p addr.
     *
     * @return per-level hit counts and the completion cycle of the slowest
     *         transaction.
     */
    MemAccessResult warpAccess(SmId sm, Addr addr, unsigned transactions,
                               bool is_write, Cycle now);

    /**
     * Move @p bytes between the chip and DRAM outside the cache path (CTA
     * contexts, live-register bit vectors).
     *
     * @return completion cycle.
     */
    Cycle offchipTransfer(Cycle now, std::uint64_t bytes, TrafficClass cls);

    Cache &l1(SmId sm) { return *l1s_[sm]; }
    Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }

    /** Resize every L1 (unified on-chip memory mode, Sec. VI-G3). */
    void resizeL1(std::uint64_t bytes);

    /** Invalidate all caches and reset channel queues. */
    void reset();

    /** Attach (or detach with nullptr) a deterministic fault injector. */
    void setFaultInjector(FaultInjector *fault)
    {
        dram_->setFaultInjector(fault);
    }

  private:
    MemHierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;

    /** L2 acceptance queue modeled as a next-free-cycle counter. */
    double l2NextFree_ = 0.0;
};

} // namespace finereg

#endif // FINEREG_MEM_MEM_HIERARCHY_HH
