#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "verify/fault_injection.hh"
#include "verify/sim_error.hh"

namespace finereg
{

Dram::Dram(const DramConfig &config, StatGroup &stats)
    : config_(config),
      bytes_{&stats.counter("dram.bytes_data"),
             &stats.counter("dram.bytes_cta_context"),
             &stats.counter("dram.bytes_bitvec")},
      accesses_(&stats.counter("dram.accesses"))
{
    if (config_.bytesPerCycle <= 0.0)
        raiseConfigError("DRAM bandwidth must be positive");
}

Cycle
Dram::serve(Cycle now, std::uint64_t bytes, TrafficClass cls)
{
    accesses_->inc();
    bytes_[static_cast<unsigned>(cls)]->inc(bytes);

    const double start = std::max(static_cast<double>(now), nextFree_);
    const double transfer =
        static_cast<double>(bytes) / config_.bytesPerCycle;
    nextFree_ = start + transfer;
    Cycle done = static_cast<Cycle>(
        std::ceil(start + config_.accessLatency + transfer));
    if (fault_)
        done += fault_->dramDelay();
    return done;
}

std::uint64_t
Dram::bytesMoved(TrafficClass cls) const
{
    return bytes_[static_cast<unsigned>(cls)]->value();
}

std::uint64_t
Dram::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto *counter : bytes_)
        total += counter->value();
    return total;
}

} // namespace finereg
