#include "mem/mem_hierarchy.hh"

#include <algorithm>

#include "common/log.hh"

namespace finereg
{

MemHierarchy::MemHierarchy(const MemHierarchyConfig &config,
                           unsigned num_sms, StatGroup &stats)
    : config_(config)
{
    l1s_.reserve(num_sms);
    for (unsigned sm = 0; sm < num_sms; ++sm) {
        l1s_.push_back(std::make_unique<Cache>(
            "l1_" + std::to_string(sm), config_.l1, stats));
    }
    l2_ = std::make_unique<Cache>("l2", config_.l2, stats);
    dram_ = std::make_unique<Dram>(config_.dram, stats);
}

MemAccessResult
MemHierarchy::warpAccess(SmId sm, Addr addr, unsigned transactions,
                         bool is_write, Cycle now)
{
    if (sm >= l1s_.size())
        FINEREG_PANIC("warpAccess from unknown SM ", sm);

    MemAccessResult result;
    Cache &l1 = *l1s_[sm];
    const unsigned line_bytes = l1.lineBytes();

    for (unsigned t = 0; t < transactions; ++t) {
        const Addr txn_addr = addr + std::uint64_t(t) * line_bytes;
        Cycle done;

        if (l1.access(txn_addr, is_write)) {
            ++result.l1Hits;
            done = now + l1.hitLatency();
        } else {
            ++result.l1Misses;
            // Merge with an outstanding fill of the same line if present.
            if (auto fill = l1.outstandingFill(txn_addr, now)) {
                done = *fill;
            } else {
                // Pay the L2 queue: each transaction occupies a slot.
                l2NextFree_ = std::max(l2NextFree_,
                                       static_cast<double>(now)) +
                              1.0 / config_.l2TransactionsPerCycle;
                const Cycle l2_start = static_cast<Cycle>(l2NextFree_);

                if (l2_->access(txn_addr, is_write)) {
                    ++result.l2Hits;
                    done = l2_start + l2_->hitLatency();
                } else {
                    ++result.l2Misses;
                    if (auto l2_fill = l2_->outstandingFill(txn_addr, now)) {
                        done = *l2_fill;
                    } else {
                        done = dram_->serve(l2_start, line_bytes,
                                            TrafficClass::Data);
                        l2_->registerFill(txn_addr, done);
                    }
                }
                if (!is_write)
                    l1.registerFill(txn_addr, done);
            }
        }
        result.completeCycle = std::max(result.completeCycle, done);
    }

    // Stores retire from the warp's perspective once accepted by L1.
    if (is_write)
        result.completeCycle = now + l1.hitLatency();

    return result;
}

Cycle
MemHierarchy::offchipTransfer(Cycle now, std::uint64_t bytes,
                              TrafficClass cls)
{
    return dram_->serve(now, bytes, cls);
}

void
MemHierarchy::resizeL1(std::uint64_t bytes)
{
    for (auto &l1 : l1s_)
        l1->resize(bytes);
}

void
MemHierarchy::reset()
{
    for (auto &l1 : l1s_)
        l1->invalidateAll();
    l2_->invalidateAll();
    dram_->reset();
    l2NextFree_ = 0.0;
}

} // namespace finereg
