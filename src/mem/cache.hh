/**
 * @file
 * Set-associative cache with LRU replacement and MSHR-style miss merging.
 * Used for both per-SM L1 data caches and the shared L2 (Table I: 48 KB
 * 8-way L1, 2 MB 8-way L2).
 */

#ifndef FINEREG_MEM_CACHE_HH
#define FINEREG_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace finereg
{

struct CacheConfig
{
    std::uint64_t sizeBytes = 48 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 128;
    unsigned hitLatency = 28;
    unsigned mshrEntries = 64;

    /** Allocate lines on write misses (GPU L2s are write-back
     * write-allocate; L1s are typically write-through no-allocate). */
    bool writeAllocate = false;
};

class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config, StatGroup &stats);

    /**
     * Look up @p addr, update replacement state, and allocate the line on a
     * miss.
     *
     * @retval true on hit, false on miss.
     */
    bool access(Addr addr, bool is_write);

    /** Look up without touching replacement or contents. */
    bool probe(Addr addr) const;

    /**
     * MSHR check: if the line is already being fetched, return the cycle
     * its fill completes (the new request merges with it).
     */
    std::optional<Cycle> outstandingFill(Addr addr, Cycle now);

    /** Record that a miss to @p addr fills at @p fill_cycle. */
    void registerFill(Addr addr, Cycle fill_cycle);

    /** Drop every cached line and outstanding fill (between experiments). */
    void invalidateAll();

    /** Resize the cache, keeping associativity/line size (UM mode). */
    void resize(std::uint64_t size_bytes);

    unsigned hitLatency() const { return config_.hitLatency; }
    unsigned lineBytes() const { return config_.lineBytes; }
    std::uint64_t sizeBytes() const { return config_.sizeBytes; }

    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / config_.lineBytes; }

    /** XOR-folded set index: strided access patterns (per-warp slices)
     * would otherwise concentrate into a fraction of the sets. */
    std::size_t
    setOf(Addr line) const
    {
        const Addr hashed = line ^ (line >> 11) ^ (line >> 22);
        return hashed % numSets_;
    }

    /** Full line address is kept as the tag (set hashing makes the
     * classic tag/set split non-invertible). */
    Addr tagOf(Addr line) const { return line; }
    void rebuild();

    std::string name_;
    CacheConfig config_;
    std::size_t numSets_ = 1;
    std::vector<Line> lines_; // numSets_ x assoc, row-major
    std::uint64_t useClock_ = 0;

    /** Outstanding line fills: line address -> completion cycle. */
    std::unordered_map<Addr, Cycle> mshrs_;

    Counter *hits_;
    Counter *misses_;
    Counter *mshrMerges_;
};

} // namespace finereg

#endif // FINEREG_MEM_CACHE_HH
