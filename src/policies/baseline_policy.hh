/**
 * @file
 * Conventional GPU CTA management: a CTA launches only when a scheduler
 * slot, full static register allocation, and shared memory are all
 * available; once launched it runs to completion with no switching. The
 * number of concurrent CTAs is min(scheduler limit, RF fit, shmem fit) —
 * the behaviour Figs. 2/4 demonstrate to be the bottleneck.
 */

#ifndef FINEREG_POLICIES_BASELINE_POLICY_HH
#define FINEREG_POLICIES_BASELINE_POLICY_HH

#include <memory>
#include <vector>

#include "policies/policy.hh"
#include "regfile/register_file.hh"

namespace finereg
{

class BaselinePolicy : public Policy
{
  public:
    const char *name() const override { return "Baseline"; }

    void tick(Sm &sm, Cycle now) override;
    void onCtaFinished(Sm &sm, Cta &cta, Cycle now) override;

    /** Auditor: RF accounting (every CTA active, one full allocation). */
    void audit(const Sm &sm, Cycle now) const override;

  protected:
    void onBind() override;

    RegFileAllocator &rf(const Sm &sm) const;

  private:
    std::vector<std::unique_ptr<RegFileAllocator>> rfs_;
};

} // namespace finereg

#endif // FINEREG_POLICIES_BASELINE_POLICY_HH
