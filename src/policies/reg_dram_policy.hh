/**
 * @file
 * Reg+DRAM: the Zorua-like comparator (Sec. VI-A). Virtual Thread's on-chip
 * switching plus a second tier of pending CTAs whose register contexts are
 * written to off-chip DRAM, freeing their register-file allocation so yet
 * more CTAs can launch. Every demotion/promotion moves the CTA's full
 * register context across the DRAM channel (TrafficClass::CtaContext) —
 * the traffic Fig. 15 charges this scheme for.
 */

#ifndef FINEREG_POLICIES_REG_DRAM_POLICY_HH
#define FINEREG_POLICIES_REG_DRAM_POLICY_HH

#include <vector>

#include "policies/pending_ready.hh"
#include "policies/virtual_thread_policy.hh"

namespace finereg
{

class RegDramPolicy : public VirtualThreadPolicy
{
  public:
    const char *name() const override { return "Reg+DRAM"; }

    void tick(Sm &sm, Cycle now) override;
    void onCtaFinished(Sm &sm, Cta &cta, Cycle now) override;
    Cycle nextEventCycle(const Sm &sm, Cycle now) const override;

  protected:
    void onBind() override;

  private:
    struct DramState
    {
        /** CTAs whose register context lives in DRAM, mapped to the cycle
         * their operands are expected back (stall resolution). */
        PendingReadySet inDram;

        /** Demotion rate limiter: context movement is budgeted to a
         * small fraction of channel bandwidth (Fig. 15 measures
         * Reg+DRAM at +7-10% traffic, not a channel takeover). */
        Cycle nextDemoteAllowed = 0;
    };

    DramState &dram(const Sm &sm) const { return *dramStates_[sm.id()]; }

    /** Full per-CTA register context size in bytes. */
    std::uint64_t contextBytes(const Sm &sm) const;

    /** Demote a (suspended) CTA's registers to DRAM, freeing its RF. */
    void demoteToDram(Sm &sm, Cta &cta, Cycle now);

    /** Promote a DRAM CTA back: allocate RF, stream context in, resume. */
    void promoteFromDram(Sm &sm, Cta &cta, Cycle now);

    Cta *bestDramPendingCta(Sm &sm, Cycle at_most) const;

    void fillSlotsWithDramTier(Sm &sm, Cycle now);
    void switchStalledWithDramTier(Sm &sm, Cycle now);

    mutable std::vector<std::unique_ptr<DramState>> dramStates_;
};

} // namespace finereg

#endif // FINEREG_POLICIES_REG_DRAM_POLICY_HH
