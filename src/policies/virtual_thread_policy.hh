/**
 * @file
 * Virtual Thread [Yoon+ ISCA'16] comparator. Extra CTAs become resident —
 * with their *full* register allocation kept in the RF — beyond the
 * scheduler limit: when every warp of an active CTA stalls on memory, the
 * CTA's pipeline context parks in shared memory (the CTA turns Pending,
 * its registers stay put) and a new CTA launches or a ready pending CTA
 * resumes in its scheduler slot. Residency is bounded by RF and shared
 * memory capacity, which is why VT gains nothing on Type-R workloads.
 */

#ifndef FINEREG_POLICIES_VIRTUAL_THREAD_POLICY_HH
#define FINEREG_POLICIES_VIRTUAL_THREAD_POLICY_HH

#include <memory>
#include <vector>

#include "policies/pending_ready.hh"
#include "policies/policy.hh"
#include "sm/sm.hh"
#include "regfile/register_file.hh"

namespace finereg
{

class VirtualThreadPolicy : public Policy
{
  public:
    const char *name() const override { return "VirtualThread"; }

    void tick(Sm &sm, Cycle now) override;
    void onCtaFinished(Sm &sm, Cta &cta, Cycle now) override;
    Cycle nextEventCycle(const Sm &sm, Cycle now) const override;

    /** Auditor: RF accounting over handle-holding resident CTAs (also
     * covers Reg+DRAM, whose demoted CTAs hold no handle). */
    void audit(const Sm &sm, Cycle now) const override;

    /** VT CTA-switching logic storage (Sec. V-F cites 2.4 KB). */
    std::uint64_t storageOverheadBits() const override
    {
        return std::uint64_t(2400) * 8;
    }

  protected:
    void onBind() override;

    struct SmState
    {
        std::unique_ptr<RegFileAllocator> rf;
        /** Pending CTA -> estimated ready cycle. */
        PendingReadySet pendingReady;
    };

    SmState &state(const Sm &sm) const
    {
        return *states_[sm.id()];
    }

    /** Resume ready pending CTAs and launch grid CTAs into free slots. */
    void fillActiveSlots(Sm &sm, Cycle now);

    /** Pick the pending CTA with the smallest ready cycle (<= @p at_most);
     * returns nullptr when none qualify. */
    Cta *bestPendingCta(Sm &sm, Cycle at_most) const;

    /** Detect fully stalled active CTAs and switch them out. */
    void switchStalledCtas(Sm &sm, Cycle now);

    /** On-chip context switch latency (pipeline drain + shared-memory
     * context parking), adopted from VT's switching logic. */
    Cycle switchLatency() const;

  private:
    mutable std::vector<std::unique_ptr<SmState>> states_;
};

} // namespace finereg

#endif // FINEREG_POLICIES_VIRTUAL_THREAD_POLICY_HH
