/**
 * @file
 * PendingReadySet: the per-SM map of suspended CTAs to the cycle their
 * context switch is expected to complete, augmented with a lazy min-heap
 * so the hot-path questions — "is anything ready yet?" and "when is the
 * next event?" — are O(1) instead of a scan over every pending CTA.
 *
 * The map stays the source of truth (policies and the watchdog iterate
 * it, tests introspect it); the heap only accelerates minReady(). A heap
 * entry is valid iff the map still holds exactly that (cta, ready) pair,
 * so overwrites and erasures need no heap surgery — stale entries are
 * discarded when they surface at the top.
 */

#ifndef FINEREG_POLICIES_PENDING_READY_HH
#define FINEREG_POLICIES_PENDING_READY_HH

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace finereg
{

class PendingReadySet
{
  public:
    using Map = std::unordered_map<GridCtaId, Cycle>;

    void
    set(GridCtaId cta, Cycle ready)
    {
        map_[cta] = ready;
        heap_.emplace_back(ready, cta);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }

    void erase(GridCtaId cta) { map_.erase(cta); }

    bool contains(GridCtaId cta) const { return map_.count(cta) != 0; }

    /** Ready cycle of @p cta, or @p absent when it is not pending. */
    Cycle
    readyCycle(GridCtaId cta, Cycle absent = kNoCycle) const
    {
        const auto it = map_.find(cta);
        return it == map_.end() ? absent : it->second;
    }

    /**
     * Smallest ready cycle over all pending CTAs; kNoCycle when empty.
     * Amortized O(1): each heap entry is popped at most once.
     */
    Cycle
    minReady() const
    {
        while (!heap_.empty()) {
            const auto &[ready, cta] = heap_.front();
            const auto it = map_.find(cta);
            if (it != map_.end() && it->second == ready)
                return ready;
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
            heap_.pop_back();
        }
        return kNoCycle;
    }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /** The underlying map, for iteration and introspection. */
    const Map &map() const { return map_; }

  private:
    Map map_;
    mutable std::vector<std::pair<Cycle, GridCtaId>> heap_;
};

} // namespace finereg

#endif // FINEREG_POLICIES_PENDING_READY_HH
