/**
 * @file
 * FineReg (Secs. IV-V): the register file is split into the ACRF (full
 * allocations of active CTAs) and the PCRF (live registers of pending CTAs
 * as tagged chains). When all warps of an active CTA stall on memory, the
 * RMU gathers the warps' live-register bit vectors (bit-vector cache;
 * misses fetch 12 B from off-chip), the live registers move into the PCRF,
 * the CTA's ACRF allocation is released, and either a fresh CTA launches or
 * a ready pending CTA is restored. When the PCRF is full, only
 * ACRF<->PCRF context switches happen, and only when the stalled CTA's
 * live set fits the space a departing pending CTA frees (Sec. V-E). The
 * CTA status monitor tracks Table IV's context/register location encoding.
 */

#ifndef FINEREG_POLICIES_FINEREG_POLICY_HH
#define FINEREG_POLICIES_FINEREG_POLICY_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "policies/pending_ready.hh"
#include "policies/policy.hh"
#include "sm/sm.hh"
#include "regfile/cta_status_monitor.hh"
#include "regfile/pcrf.hh"
#include "regfile/register_file.hh"
#include "regfile/rmu.hh"

namespace finereg
{

class FineRegPolicy : public Policy
{
  public:
    const char *name() const override { return "FineReg"; }

    void tick(Sm &sm, Cycle now) override;
    void onCtaFinished(Sm &sm, Cta &cta, Cycle now) override;
    bool rfDepletionBlocked(const Sm &sm, Cycle now) const override;
    Cycle nextEventCycle(const Sm &sm, Cycle now) const override;

    /** Invariant auditor: PCRF chains, ACRF accounting, Table IV states. */
    void audit(const Sm &sm, Cycle now) const override;

    /** Sec. V-F storage accounting: status monitor + bit-vector cache +
     * PCRF pointer table + PCRF tags + CTA switching logic (2.4 KB). */
    std::uint64_t storageOverheadBits() const override;

    /** Introspection for tests/benches. */
    const Pcrf &pcrfOf(const Sm &sm) const { return *state(sm).pcrf; }
    const CtaStatusMonitor &monitorOf(const Sm &sm) const
    {
        return state(sm).monitor;
    }
    const RegFileAllocator &acrfOf(const Sm &sm) const
    {
        return *state(sm).acrf;
    }

    /** Operand-ready estimate of pending CTA @p cta (0 if untracked). */
    Cycle pendingReadyOf(const Sm &sm, GridCtaId cta) const
    {
        return state(sm).pendingReady.readyCycle(cta, 0);
    }

    /** Mutable introspection for corruption/fault-injection tests. */
    Pcrf &mutablePcrfOf(const Sm &sm) { return *state(sm).pcrf; }
    RegFileAllocator &mutableAcrfOf(const Sm &sm) { return *state(sm).acrf; }

  protected:
    void onBind() override;

  private:
    struct SmState
    {
        std::unique_ptr<RegFileAllocator> acrf;
        std::unique_ptr<Pcrf> pcrf;
        std::unique_ptr<Rmu> rmu;
        CtaStatusMonitor monitor;

        /** Pending CTA -> estimated operand-ready cycle. */
        PendingReadySet pendingReady;

        /** Fig. 14 flag: a switch was blocked by PCRF depletion. */
        bool pcrfBlocked = false;

        /** Scratch for restoreCtaLastPositions (per-warp 1-based chain
         * position of the last restored register); reused every switch
         * so the hot path never allocates. */
        std::vector<unsigned> posScratch;
    };

    SmState &state(const Sm &sm) const { return *states_[sm.id()]; }

    Cta *bestPendingCta(Sm &sm, Cycle at_most) const;

    /** Restore a pending CTA into the ACRF (allocates full set). */
    void restoreCta(Sm &sm, Cta &cta, Cycle now, Cycle extra_latency);

    /**
     * Pipelined chain walk: wake each warp when its registers land.
     * @p last_pos holds, per warp, the 1-based chain position of the
     * warp's final register (0 = none in the chain).
     */
    void wakeWarpsAsRegistersArrive(Sm &sm, Cta &cta,
                                    const std::vector<unsigned> &last_pos,
                                    Cycle start);

    /** Evict a fully stalled CTA's live registers into the PCRF. */
    void evictCta(Sm &sm, Cta &cta, const Rmu::Gather &gather, Cycle now);

    void fillActiveSlots(Sm &sm, Cycle now);
    void switchStalledCtas(Sm &sm, Cycle now);

    mutable std::vector<std::unique_ptr<SmState>> states_;

    /** Per-tick counters, cached at bind so the hot path skips the
     * name-keyed stats lookup. */
    Counter *stalledFound_ = nullptr;
    Counter *noPartner_ = nullptr;
};

} // namespace finereg

#endif // FINEREG_POLICIES_FINEREG_POLICY_HH
