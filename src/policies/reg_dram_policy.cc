#include "policies/reg_dram_policy.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/gpu_config.hh"
#include "sm/gpu.hh"

namespace finereg
{

void
RegDramPolicy::onBind()
{
    VirtualThreadPolicy::onBind();
    dramStates_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s)
        dramStates_.push_back(std::make_unique<DramState>());
}

std::uint64_t
RegDramPolicy::contextBytes(const Sm &sm) const
{
    return sm.context().kernel().regBytesPerCta();
}

void
RegDramPolicy::demoteToDram(Sm &sm, Cta &cta, Cycle now)
{
    SmState &st = state(sm);
    DramState &ds = dram(sm);

    st.rf->free(cta.regAllocHandle);
    cta.regAllocHandle = kInvalidId;

    // Stream the full register context out; the channel time is charged
    // but the SM does not wait on the store.
    sm.mem().offchipTransfer(now, contextBytes(sm),
                             TrafficClass::CtaContext);

    ds.inDram.set(cta.gridId(),
                  st.pendingReady.readyCycle(cta.gridId(), now));
    st.pendingReady.erase(cta.gridId());
}

void
RegDramPolicy::promoteFromDram(Sm &sm, Cta &cta, Cycle now)
{
    SmState &st = state(sm);
    DramState &ds = dram(sm);
    const Kernel &kernel = sm.context().kernel();

    cta.regAllocHandle = st.rf->allocate(kernel.warpRegsPerCta());
    ds.inDram.erase(cta.gridId());

    const Cycle loaded = sm.mem().offchipTransfer(
        now, contextBytes(sm), TrafficClass::CtaContext);
    sm.resumeCta(cta, now, (loaded - now) + switchLatency());
}

Cta *
RegDramPolicy::bestDramPendingCta(Sm &sm, Cycle at_most) const
{
    DramState &ds = dram(sm);
    // O(1) fast path: nothing in the DRAM tier can be ready by at_most.
    if (ds.inDram.minReady() > at_most)
        return nullptr;
    Cta *best = nullptr;
    Cycle best_ready = kNoCycle;
    for (Cta *cta : sm.pendingCtaList()) {
        const Cycle ready = ds.inDram.readyCycle(cta->gridId());
        if (ready <= at_most && ready < best_ready) {
            best = cta;
            best_ready = ready;
        }
    }
    return best;
}

void
RegDramPolicy::fillSlotsWithDramTier(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    unsigned launched = 0;
    while (sm.canActivateCta()) {
        // On-chip pending CTAs resume cheaply; prefer them.
        if (Cta *pending = bestPendingCta(sm, now)) {
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        // Ready DRAM-tier CTAs next, if their registers fit again.
        if (st.rf->canAllocate(warp_regs)) {
            if (Cta *dram_cta = bestDramPendingCta(sm, now)) {
                promoteFromDram(sm, *dram_cta, now);
                continue;
            }
        }
        // Fresh grid CTAs.
        if (launched < 2 && dispatcher().hasWork() &&
            sm.shmemFree() >= kernel.shmemPerCta() &&
            st.rf->canAllocate(warp_regs) && sm.hasResidencyHeadroom()) {
            Cta *cta = sm.launchCta(dispatcher().pop(), now);
            cta->regAllocHandle = st.rf->allocate(warp_regs);
            ++launched;
            continue;
        }
        // Anti-idle fallback: not-yet-ready *on-chip* pending CTAs only.
        // Unready DRAM-tier CTAs are left alone — promoting them early
        // would ping-pong full contexts across the channel; the policy's
        // nextEventCycle() wakes the device when one becomes ready.
        if (launched > 0)
            break;
        if (Cta *pending = bestPendingCta(sm, kNoCycle - 1)) {
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        break;
    }
}

void
RegDramPolicy::switchStalledWithDramTier(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    DramState &ds = dram(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();
    // The paper tunes the DRAM-pending count per application (Sec. VI-A).
    // For very large contexts the best setting is zero — the transfer
    // cost can never be recovered — which reduces this scheme to VT.
    const unsigned dram_cap =
        contextBytes(sm) > 16 * 1024 ? 0
                                     : config().policy.maxDramPendingCtas;

    const std::vector<Cta *> &stalled = collectStalledCtas(sm, now);

    for (Cta *cta : stalled) {
        const bool pending_saturated = pendingSaturated(sm);
        // (a) VT-style growth inside the register file.
        if (!pending_saturated && dispatcher().hasWork() &&
            st.rf->canAllocate(warp_regs) &&
            sm.shmemFree() >= kernel.shmemPerCta() &&
            sm.hasResidencyHeadroom()) {
            st.pendingReady.set(cta->gridId(), cta->estimateReadyCycle(now));
            sm.suspendCta(*cta, now);
            Cta *fresh = sm.launchCta(dispatcher().pop(), now);
            fresh->regAllocHandle = st.rf->allocate(warp_regs);
            for (auto &warp : fresh->warps())
                warp->setEarliestIssue(now + switchLatency());
            continue;
        }
        // (b) Swap with a ready on-chip pending CTA.
        if (Cta *ready = bestPendingCta(sm, now)) {
            st.pendingReady.set(cta->gridId(), cta->estimateReadyCycle(now));
            sm.suspendCta(*cta, now);
            st.pendingReady.erase(ready->gridId());
            sm.resumeCta(*ready, now, switchLatency());
            continue;
        }
        // (c) DRAM tier: demote the stalled CTA and use the freed
        //     registers for a fresh CTA or a ready DRAM-tier CTA. Only
        //     profitable when the stall comfortably outlasts the
        //     round-trip of the full register context through the DRAM
        //     channel — otherwise the context traffic melts the channel
        //     (the effect Fig. 15 charges this scheme for).
        const Cycle ready_estimate = cta->estimateReadyCycle(now);
        const auto ctx_cycles = static_cast<Cycle>(
            contextBytes(sm) / config().mem.dram.bytesPerCycle);
        const Cycle profit_threshold =
            config().mem.dram.accessLatency / 2 + 4 * ctx_cycles;
        const bool dram_room =
            ds.inDram.size() < dram_cap && !pending_saturated &&
            ready_estimate > now + profit_threshold &&
            now >= ds.nextDemoteAllowed;
        if (dram_room && sm.hasResidencyHeadroom() &&
            (dispatcher().hasWork() ||
             bestDramPendingCta(sm, now) != nullptr)) {
            st.pendingReady.set(cta->gridId(), ready_estimate);
            sm.suspendCta(*cta, now);
            demoteToDram(sm, *cta, now);
            // Budget context movement to ~8% of channel bandwidth: a
            // demote+promote pair moves 2x the context, across all SMs.
            ds.nextDemoteAllowed =
                now + 2 * ctx_cycles * gpu().config().numSms * 12;

            if (Cta *dram_ready = bestDramPendingCta(sm, now)) {
                promoteFromDram(sm, *dram_ready, now);
            } else if (dispatcher().hasWork() &&
                       st.rf->canAllocate(warp_regs) &&
                       sm.shmemFree() >= kernel.shmemPerCta()) {
                Cta *fresh = sm.launchCta(dispatcher().pop(), now);
                fresh->regAllocHandle = st.rf->allocate(warp_regs);
                for (auto &warp : fresh->warps())
                    warp->setEarliestIssue(now + switchLatency());
            }
        }
    }
}

void
RegDramPolicy::tick(Sm &sm, Cycle now)
{
    fillSlotsWithDramTier(sm, now);
    switchStalledWithDramTier(sm, now);
}

void
RegDramPolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle now)
{
    dram(sm).inDram.erase(cta.gridId());
    if (cta.regAllocHandle != kInvalidId)
        VirtualThreadPolicy::onCtaFinished(sm, cta, now);
}

Cycle
RegDramPolicy::nextEventCycle(const Sm &sm, Cycle now) const
{
    Cycle next = VirtualThreadPolicy::nextEventCycle(sm, now);
    const PendingReadySet &in_dram = dram(sm).inDram;
    if (!in_dram.empty())
        next = std::min(next, std::max(in_dram.minReady(), now + 1));
    return next;
}

} // namespace finereg
