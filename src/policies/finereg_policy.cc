#include "policies/finereg_policy.hh"

#include <algorithm>
#include <sstream>

#include "core/gpu_config.hh"
#include "ref/cta_values.hh"
#include "sm/gpu.hh"
#include "verify/fault_injection.hh"
#include "verify/sim_error.hh"

namespace finereg
{

void
FineRegPolicy::onBind()
{
    const PolicyConfig &pc = config().policy;
    // Under UM the PCRF lives in the pooled store instead of the RF, so
    // the split-equals-RF invariant only applies to the plain design.
    if (!pc.unifiedMemory &&
        pc.acrfBytes + pc.pcrfBytes != gpu().config().sm.regFileBytes) {
        std::ostringstream oss;
        oss << "ACRF (" << pc.acrfBytes << ") + PCRF (" << pc.pcrfBytes
            << ") must equal the baseline register file ("
            << gpu().config().sm.regFileBytes << ")";
        raiseConfigError(oss.str());
    }

    RmuConfig rmu_config;
    rmu_config.bitvecCacheEntries = pc.bitvecCacheEntries;
    rmu_config.pcrfAccessLatency = pc.pcrfAccessLatency;
    rmu_config.fullContextBackup = pc.fullContextBackup;
    rmu_config.dropLiveReg = pc.dropLiveReg;

    states_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s) {
        auto st = std::make_unique<SmState>();
        st->acrf = std::make_unique<RegFileAllocator>(
            "acrf_sm" + std::to_string(s), pc.acrfBytes);
        st->pcrf = std::make_unique<Pcrf>(pc.pcrfBytes, gpu().stats());
        st->rmu = std::make_unique<Rmu>(rmu_config, gpu().context(),
                                        gpu().mem(), gpu().stats(),
                                        gpu().faultInjector());
        states_.push_back(std::move(st));
    }
    stalledFound_ = &gpu().stats().counter("finereg.stalled_found");
    noPartner_ = &gpu().stats().counter("finereg.no_partner");
}

Cta *
FineRegPolicy::bestPendingCta(Sm &sm, Cycle at_most) const
{
    SmState &st = state(sm);
    // O(1) fast path: even the soonest pending CTA misses at_most. The
    // slow scan below still decides ties in residentCtas order, so the
    // pick is bit-identical to the pre-fast-path code.
    if (st.pendingReady.minReady() > at_most)
        return nullptr;
    Cta *best = nullptr;
    Cycle best_ready = kNoCycle;
    for (Cta *cta : sm.pendingCtaList()) {
        // policyReadyCycle mirrors st.pendingReady (audit-checked).
        const Cycle ready = cta->policyReadyCycle;
        if (ready <= at_most && ready < best_ready) {
            best = cta;
            best_ready = ready;
        }
    }
    return best;
}

void
FineRegPolicy::restoreCta(Sm &sm, Cta &cta, Cycle now, Cycle extra_latency)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();

    cta.regAllocHandle = st.acrf->allocate(kernel.warpRegsPerCta());
    st.posScratch.resize(cta.numWarps());
    st.pcrf->restoreCtaLastPositions(cta.gridId(), st.posScratch);
    st.pendingReady.erase(cta.gridId());
    cta.policyReadyCycle = kNoCycle;

    st.monitor.setContext(cta.gridId(), ContextLocation::Pipeline);
    st.monitor.setRegisters(cta.gridId(), RegisterLocation::Acrf);
    sm.resumeCta(cta, now, extra_latency);
    wakeWarpsAsRegistersArrive(sm, cta, st.posScratch, now + extra_latency);
}

void
FineRegPolicy::wakeWarpsAsRegistersArrive(
    Sm &sm, Cta &cta, const std::vector<unsigned> &last_pos, Cycle start)
{
    if (config().policy.zeroSwitchLatency)
        return;
    SmState &st = state(sm);
    // The PCRF chain walk restores one entry per cycle after the fixed
    // tag+register access (Sec. V-E); each warp may issue as soon as its
    // own registers have landed, so earlier chain positions wake sooner.
    for (auto &warp : cta.warps()) {
        if (warp->finished())
            continue;
        warp->setEarliestIssue(
            start + st.rmu->transferLatency(last_pos[warp->id()]));
    }
}

void
FineRegPolicy::evictCta(Sm &sm, Cta &cta, const Rmu::Gather &gather,
                        Cycle now)
{
    SmState &st = state(sm);
    // The CTA can be reactivated once its operands are back AND its live
    // registers have finished draining into the PCRF (bit-vector fetch +
    // pipelined chain write run in the background; Sec. V-E).
    const Cycle drain_done =
        config().policy.zeroSwitchLatency
            ? now
            : std::max(gather.bitvecReadyCycle, now) +
                  st.rmu->transferLatency(gather.totalRegs);
    const Cycle pending_ready =
        std::max(cta.estimateReadyCycle(now), drain_done);
    st.pendingReady.set(cta.gridId(), pending_ready);
    cta.policyReadyCycle = pending_ready;

    // Architecturally, only the gathered (live) registers survive the
    // swap: everything else is dropped and its value becomes undefined.
    // Scramble the dropped values in the tracker so a liveness bug that
    // drops a live register propagates visible garbage. The gather's
    // per-warp masks are exactly the keep sets.
    if (CtaValues *values = cta.values()) {
        for (const auto &warp : cta.warps()) {
            if (!warp->finished())
                values->dropDeadRegs(warp->id(),
                                     gather.warpLive[warp->id()]);
        }
    }

    sm.suspendCta(cta, now);
    st.pcrf->storeCta(cta.gridId(), gather.warpLive, gather.totalRegs);
    st.acrf->free(cta.regAllocHandle);
    cta.regAllocHandle = kInvalidId;
    st.monitor.setContext(cta.gridId(), ContextLocation::SharedMemory);
    st.monitor.setRegisters(cta.gridId(), RegisterLocation::Pcrf);
}

void
FineRegPolicy::fillActiveSlots(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    unsigned launched = 0;
    while (sm.canActivateCta()) {
        // Ready pending CTAs restore from the PCRF first.
        if (st.acrf->canAllocate(warp_regs)) {
            if (Cta *pending = bestPendingCta(sm, now)) {
                restoreCta(sm, *pending, now, 0);
                continue;
            }
        }
        // Fresh grid CTAs while the ACRF and shared memory have room.
        if (launched < 2 && dispatcher().hasWork() &&
            sm.shmemFree() >= kernel.shmemPerCta() &&
            st.acrf->canAllocate(warp_regs) && sm.hasResidencyHeadroom()) {
            Cta *cta = sm.launchCta(dispatcher().pop(), now);
            cta->regAllocHandle = st.acrf->allocate(warp_regs);
            st.monitor.onLaunch(cta->gridId());
            ++launched;
            continue;
        }
        // Anti-idle fallback: restore the soonest pending CTA.
        if (launched > 0)
            break;
        if (st.acrf->canAllocate(warp_regs)) {
            if (Cta *pending = bestPendingCta(sm, kNoCycle - 1)) {
                restoreCta(sm, *pending, now, 0);
                continue;
            }
        }
        break;
    }
}

void
FineRegPolicy::switchStalledCtas(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    const std::vector<Cta *> &stalled = collectStalledCtas(sm, now);
    stalledFound_->inc(stalled.size());

    for (Cta *cta : stalled) {
        const bool pending_saturated = pendingSaturated(sm);
        const bool can_grow = dispatcher().hasWork() &&
                              sm.shmemFree() >= kernel.shmemPerCta() &&
                              sm.hasResidencyHeadroom() &&
                              !pending_saturated;
        Cta *ready_pending = bestPendingCta(sm, now);
        if (!can_grow && !ready_pending) {
            noPartner_->inc();
            continue;
        }

        const Rmu::Gather &gather = st.rmu->gatherLiveRegs(*cta, now);
        const unsigned n_live = gather.totalRegs;
        // The outgoing drain is pipelined through the RMU's staging buffer
        // (Sec. V-E), so the incoming CTA pays only the fixed switch
        // initiation cost (plus its own restore chain when resuming).
        const Cycle base_latency =
            config().policy.zeroSwitchLatency
                ? 0
                : config().policy.switchBaseLatency;

        // Injected fault: a canStore query may be forced to report the
        // PCRF full, pushing the switch onto the Fig. 6(b) swap path.
        FaultInjector *fault = gpu().faultInjector();
        const bool pcrf_has_room =
            st.pcrf->canStore(n_live) && !(fault && fault->forcePcrfFull());

        if (pcrf_has_room) {
            // Fig. 6(a): free PCRF slots — evict and introduce a CTA.
            evictCta(sm, *cta, gather, now);
            if (ready_pending) {
                restoreCta(sm, *ready_pending, now, base_latency);
            } else {
                Cta *fresh = sm.launchCta(dispatcher().pop(), now);
                fresh->regAllocHandle = st.acrf->allocate(warp_regs);
                st.monitor.onLaunch(fresh->gridId());
                for (auto &warp : fresh->warps())
                    warp->setEarliestIssue(now + base_latency);
            }
            continue;
        }

        // Fig. 6(b): PCRF full — context switch only, and only when the
        // stalled CTA's live set fits the free slots plus those the
        // departing pending CTA releases (Sec. V-E). If the soonest-ready
        // pending CTA's chain is too short to make room, try other ready
        // CTAs whose chains free enough entries.
        if (ready_pending &&
            n_live > st.pcrf->freeEntries() +
                         st.pcrf->liveCountOf(ready_pending->gridId())) {
            Cta *fitting = nullptr;
            for (Cta *candidate : sm.pendingCtaList()) {
                if (candidate->policyReadyCycle > now)
                    continue;
                if (n_live <= st.pcrf->freeEntries() +
                                  st.pcrf->liveCountOf(candidate->gridId())) {
                    fitting = candidate;
                    break;
                }
            }
            if (fitting)
                ready_pending = fitting;
        }
        if (ready_pending) {
            const unsigned freed =
                st.pcrf->liveCountOf(ready_pending->gridId());
            if (n_live <= st.pcrf->freeEntries() + freed) {
                // Stage the pending CTA's registers through the RMU's
                // 128-byte buffer: drain its PCRF chain first so the
                // stalled CTA's live set fits, then swap slots.
                st.posScratch.resize(ready_pending->numWarps());
                st.pcrf->restoreCtaLastPositions(ready_pending->gridId(),
                                                 st.posScratch);

                evictCta(sm, *cta, gather, now);

                ready_pending->regAllocHandle =
                    st.acrf->allocate(warp_regs);
                st.pendingReady.erase(ready_pending->gridId());
                ready_pending->policyReadyCycle = kNoCycle;
                st.monitor.setContext(ready_pending->gridId(),
                                      ContextLocation::Pipeline);
                st.monitor.setRegisters(ready_pending->gridId(),
                                        RegisterLocation::Acrf);
                sm.resumeCta(*ready_pending, now, base_latency);
                wakeWarpsAsRegistersArrive(sm, *ready_pending,
                                           st.posScratch,
                                           now + base_latency);
                continue;
            }
        }

        // Sec. V-B "rare situations": the stalled CTA must stay in the
        // ACRF until the PCRF drains. This is a register-file-depletion
        // stall when there is otherwise runnable work.
        if (ready_pending || dispatcher().hasWork())
            st.pcrfBlocked = true;
    }
}

void
FineRegPolicy::tick(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    st.pcrfBlocked = false;
    fillActiveSlots(sm, now);
    switchStalledCtas(sm, now);
}

void
FineRegPolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle)
{
    SmState &st = state(sm);
    if (cta.regAllocHandle == kInvalidId) {
        raiseInvariant("acrf-accounting", "finished CTA has no ACRF handle",
                       cta.gridId(), sm.id());
    }
    st.acrf->free(cta.regAllocHandle);
    st.monitor.onRetire(cta.gridId());
    st.pendingReady.erase(cta.gridId());
    cta.policyReadyCycle = kNoCycle;
}

bool
FineRegPolicy::rfDepletionBlocked(const Sm &sm, Cycle) const
{
    return state(sm).pcrfBlocked;
}

Cycle
FineRegPolicy::nextEventCycle(const Sm &sm, Cycle now) const
{
    const SmState &st = state(sm);
    if (st.pendingReady.empty())
        return kNoCycle;
    return std::max(st.pendingReady.minReady(), now + 1);
}

void
FineRegPolicy::audit(const Sm &sm, Cycle now) const
{
    const SmState &st = state(sm);
    const std::uint32_t sm_id = sm.id();
    const Kernel &kernel = sm.context().kernel();

    // PCRF chain integrity: walk every chain, cross-check the occupancy
    // monitor (Sec. V-C free-space flags vs. Sec. V-D pointer table).
    const PcrfIntegrityError chain = st.pcrf->auditIntegrity();
    if (!chain.intact())
        raiseInvariant(chain.invariant, chain.message, chain.cta, sm_id, now);

    unsigned active = 0;
    unsigned pending = 0;
    unsigned expected_used = 0;
    for (const auto &cta : sm.residentCtas()) {
        const GridCtaId id = cta->gridId();
        const ContextLocation ctx = st.monitor.contextOf(id);
        const RegisterLocation regs = st.monitor.registersOf(id);

        if (cta->state() == CtaState::Active) {
            ++active;
            if (cta->regAllocHandle == kInvalidId) {
                raiseInvariant("acrf-accounting",
                               "active CTA has no ACRF allocation", id,
                               sm_id, now);
            }
            expected_used += st.acrf->allocationSize(cta->regAllocHandle);
            if (ctx != ContextLocation::Pipeline ||
                regs != RegisterLocation::Acrf) {
                raiseInvariant("monitor-state",
                               "active CTA not encoded context=Pipeline, "
                               "regs=ACRF (Table IV)",
                               id, sm_id, now);
            }
            if (st.pcrf->holds(id)) {
                raiseInvariant("pcrf-chain",
                               "active CTA still has a PCRF chain", id,
                               sm_id, now);
            }
        } else if (cta->state() == CtaState::Pending) {
            ++pending;
            if (cta->regAllocHandle != kInvalidId) {
                raiseInvariant("acrf-accounting",
                               "pending CTA still holds an ACRF allocation",
                               id, sm_id, now);
            }
            if (ctx != ContextLocation::SharedMemory ||
                regs != RegisterLocation::Pcrf) {
                raiseInvariant("monitor-state",
                               "pending CTA not encoded context=SharedMemory, "
                               "regs=PCRF (Table IV)",
                               id, sm_id, now);
            }
            if (!st.pcrf->holds(id)) {
                raiseInvariant("pcrf-chain",
                               "pending CTA has no PCRF chain", id, sm_id,
                               now);
            }
            if (st.pcrf->liveCountOf(id) > kernel.warpRegsPerCta()) {
                raiseInvariant("pcrf-chain",
                               "PCRF chain longer than the CTA's static "
                               "register allocation",
                               id, sm_id, now);
            }
            if (!st.pendingReady.contains(id)) {
                raiseInvariant("monitor-state",
                               "pending CTA has no operand-ready estimate",
                               id, sm_id, now);
            }
            if (cta->policyReadyCycle !=
                st.pendingReady.readyCycle(id)) {
                raiseInvariant("monitor-state",
                               "CTA pending-ready mirror diverges from the "
                               "tracked operand-ready estimate",
                               id, sm_id, now);
            }
        }
    }

    if (st.acrf->numAllocations() != active) {
        std::ostringstream oss;
        oss << st.acrf->numAllocations()
            << " outstanding ACRF allocations for " << active
            << " active CTAs (allocation leaked after CTA completion)";
        raiseInvariant("acrf-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (st.acrf->usedWarpRegs() != expected_used) {
        std::ostringstream oss;
        oss << "ACRF usage counter reads " << st.acrf->usedWarpRegs()
            << " warp-regs but active CTAs account for " << expected_used;
        raiseInvariant("acrf-accounting", oss.str(), kInvalidId, sm_id, now);
    }
    if (st.acrf->usedWarpRegs() > st.acrf->capacityWarpRegs()) {
        raiseInvariant("acrf-capacity",
                       "sum of active-CTA allocations exceeds ACRF capacity",
                       kInvalidId, sm_id, now);
    }
    if (st.pcrf->numPendingCtas() != pending) {
        std::ostringstream oss;
        oss << st.pcrf->numPendingCtas() << " PCRF chains for " << pending
            << " pending CTAs";
        raiseInvariant("pcrf-chain", oss.str(), kInvalidId, sm_id, now);
    }
    if (st.monitor.numTracked() != active + pending) {
        std::ostringstream oss;
        oss << "status monitor tracks " << st.monitor.numTracked()
            << " CTAs but " << active + pending << " are resident";
        raiseInvariant("monitor-state", oss.str(), kInvalidId, sm_id, now);
    }
}

std::uint64_t
FineRegPolicy::storageOverheadBits() const
{
    if (states_.empty())
        return 0;
    const SmState &st = *states_.front();
    const std::uint64_t monitor_bits = st.monitor.storageBits();
    const std::uint64_t cache_bits = st.rmu->storageBits();
    const std::uint64_t pointer_bits = st.pcrf->pointerTableBits();
    const std::uint64_t tag_bits = st.pcrf->tagOverheadBits();
    const std::uint64_t switch_logic_bits = std::uint64_t(2400) * 8;
    return monitor_bits + cache_bits + pointer_bits + tag_bits +
           switch_logic_bits;
}

} // namespace finereg
