#include "policies/baseline_policy.hh"

#include <sstream>

#include "core/gpu_config.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{

void
BaselinePolicy::onBind()
{
    rfs_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s) {
        rfs_.push_back(std::make_unique<RegFileAllocator>(
            "rf_sm" + std::to_string(s), gpu().config().sm.regFileBytes));
    }
}

RegFileAllocator &
BaselinePolicy::rf(const Sm &sm) const
{
    return *rfs_[sm.id()];
}

void
BaselinePolicy::tick(Sm &sm, Cycle now)
{
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    // At most a couple of fresh CTAs per SM per cycle: the hardware
    // dispatcher hands out CTAs round-robin, so one SM must not drain
    // the grid before its neighbours get a turn.
    unsigned launched = 0;
    while (launched < 2 && dispatcher().hasWork() && sm.canActivateCta() &&
           sm.shmemFree() >= kernel.shmemPerCta() &&
           rf(sm).canAllocate(warp_regs)) {
        Cta *cta = sm.launchCta(dispatcher().pop(), now);
        cta->regAllocHandle = rf(sm).allocate(warp_regs);
        ++launched;
    }
}

void
BaselinePolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle)
{
    rf(sm).free(cta.regAllocHandle);
}

void
BaselinePolicy::audit(const Sm &sm, Cycle now) const
{
    const RegFileAllocator &pool = rf(sm);
    unsigned expected_used = 0;
    for (const auto &cta : sm.residentCtas()) {
        if (cta->state() != CtaState::Active) {
            raiseInvariant("cta-state",
                           "baseline never suspends, yet a resident CTA is "
                           "not Active",
                           cta->gridId(), sm.id(), now);
        }
        if (cta->regAllocHandle == kInvalidId) {
            raiseInvariant("rf-accounting", "resident CTA has no allocation",
                           cta->gridId(), sm.id(), now);
        }
        expected_used += pool.allocationSize(cta->regAllocHandle);
    }
    if (pool.numAllocations() != sm.residentCtas().size() ||
        pool.usedWarpRegs() != expected_used) {
        std::ostringstream oss;
        oss << pool.numAllocations() << " allocations / "
            << pool.usedWarpRegs() << " used warp-regs vs. "
            << sm.residentCtas().size() << " resident CTAs holding "
            << expected_used;
        raiseInvariant("rf-accounting", oss.str(), kInvalidId, sm.id(), now);
    }
}

} // namespace finereg
