#include "policies/baseline_policy.hh"

#include "core/gpu_config.hh"
#include "sm/gpu.hh"

namespace finereg
{

void
BaselinePolicy::onBind()
{
    rfs_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s) {
        rfs_.push_back(std::make_unique<RegFileAllocator>(
            "rf_sm" + std::to_string(s), gpu().config().sm.regFileBytes));
    }
}

RegFileAllocator &
BaselinePolicy::rf(const Sm &sm) const
{
    return *rfs_[sm.id()];
}

void
BaselinePolicy::tick(Sm &sm, Cycle now)
{
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    // At most a couple of fresh CTAs per SM per cycle: the hardware
    // dispatcher hands out CTAs round-robin, so one SM must not drain
    // the grid before its neighbours get a turn.
    unsigned launched = 0;
    while (launched < 2 && dispatcher().hasWork() && sm.canActivateCta() &&
           sm.shmemFree() >= kernel.shmemPerCta() &&
           rf(sm).canAllocate(warp_regs)) {
        Cta *cta = sm.launchCta(dispatcher().pop(), now);
        cta->regAllocHandle = rf(sm).allocate(warp_regs);
        ++launched;
    }
}

void
BaselinePolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle)
{
    rf(sm).free(cta.regAllocHandle);
}

} // namespace finereg
