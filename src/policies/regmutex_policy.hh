/**
 * @file
 * VT+RegMutex comparator (Sec. VI-A). The register file is split into a
 * base-register-set (BRS) pool — each CTA statically allocates only the BRS
 * fraction of its registers — and a shared register pool (SRP) that serves
 * the remaining "extended" registers on demand. More CTAs fit (smaller
 * per-CTA footprint, so VT-style growth goes further), but an activating
 * CTA must win enough SRP for its extended registers, and a stalled CTA
 * keeps the SRP its *live* extended registers occupy — the contention
 * pathology Figs. 13/14 quantify.
 */

#ifndef FINEREG_POLICIES_REGMUTEX_POLICY_HH
#define FINEREG_POLICIES_REGMUTEX_POLICY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "policies/pending_ready.hh"
#include "policies/policy.hh"
#include "sm/sm.hh"
#include "regfile/register_file.hh"

namespace finereg
{

class RegMutexPolicy : public Policy
{
  public:
    const char *name() const override { return "VT+RegMutex"; }

    void tick(Sm &sm, Cycle now) override;
    void onCtaFinished(Sm &sm, Cta &cta, Cycle now) override;
    bool rfDepletionBlocked(const Sm &sm, Cycle now) const override;
    Cycle nextEventCycle(const Sm &sm, Cycle now) const override;

    /** Auditor: BRS allocation accounting and SRP holding conservation. */
    void audit(const Sm &sm, Cycle now) const override;

    /** Per-thread BRS register count for the bound kernel. */
    unsigned brsRegsPerThread(const Sm &sm) const;

    /** Extended (SRP-served) warp-registers one CTA needs when active. */
    unsigned extendedWarpRegsPerCta(const Sm &sm) const;

  protected:
    void onBind() override;

  private:
    struct SmState
    {
        std::unique_ptr<RegFileAllocator> brsPool;
        std::unique_ptr<RegFileAllocator> srpPool;

        /** Pending CTA -> estimated ready cycle. */
        PendingReadySet pendingReady;

        /** CTA -> SRP warp-registers currently held. */
        std::unordered_map<GridCtaId, unsigned> srpHeld;

        /** CTA -> SRP allocator handle (0 when holding nothing). */
        std::unordered_map<GridCtaId, unsigned> srpHandle;

        /** Fig. 14 flag: this tick, schedulable work was blocked on SRP. */
        bool srpBlocked = false;
    };

    SmState &state(const Sm &sm) const { return *states_[sm.id()]; }

    Cycle switchLatency() const;

    /** Adjust a CTA's SRP holding to @p target warp-registers; returns
     * false (no change) when growth exceeds the free pool. */
    bool setSrpHolding(SmState &st, GridCtaId cta, unsigned target);

    /** Live extended warp-registers of a stalled CTA (what it keeps). */
    unsigned liveExtendedRegs(const Sm &sm, const Cta &cta) const;

    Cta *bestPendingCta(Sm &sm, Cycle at_most) const;
    void fillActiveSlots(Sm &sm, Cycle now);
    void switchStalledCtas(Sm &sm, Cycle now);

    mutable std::vector<std::unique_ptr<SmState>> states_;
};

} // namespace finereg

#endif // FINEREG_POLICIES_REGMUTEX_POLICY_HH
