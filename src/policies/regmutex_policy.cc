#include "policies/regmutex_policy.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/gpu_config.hh"
#include "ref/cta_values.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{

void
RegMutexPolicy::onBind()
{
    const double srp_ratio = config().policy.srpRatio;
    if (srp_ratio < 0.0 || srp_ratio >= 1.0) {
        std::ostringstream oss;
        oss << "SRP ratio " << srp_ratio << " outside [0, 1)";
        raiseConfigError(oss.str());
    }

    const std::uint64_t rf_bytes = gpu().config().sm.regFileBytes;
    const auto srp_bytes = static_cast<std::uint64_t>(rf_bytes * srp_ratio);

    states_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s) {
        auto st = std::make_unique<SmState>();
        st->brsPool = std::make_unique<RegFileAllocator>(
            "brs_sm" + std::to_string(s), rf_bytes - srp_bytes);
        st->srpPool = std::make_unique<RegFileAllocator>(
            "srp_sm" + std::to_string(s), srp_bytes);
        states_.push_back(std::move(st));
    }
}

Cycle
RegMutexPolicy::switchLatency() const
{
    return config().policy.zeroSwitchLatency
               ? 0
               : config().policy.switchBaseLatency;
}

unsigned
RegMutexPolicy::brsRegsPerThread(const Sm &sm) const
{
    const Kernel &kernel = sm.context().kernel();
    const unsigned regs = kernel.regsPerThread();
    const auto brs = static_cast<unsigned>(
        std::ceil(regs * config().policy.brsFraction));
    const unsigned clamped = std::max(1u, std::min(brs, regs));

    // If even one CTA's extended set cannot fit the SRP, no CTA could
    // ever launch; the hardware would fall back to full static
    // allocation (SRP disabled for this kernel).
    const auto srp_capacity = static_cast<unsigned>(
        gpu().config().sm.regFileBytes * config().policy.srpRatio /
        kBytesPerWarpReg);
    const unsigned ext_per_cta =
        (regs - clamped) * kernel.warpsPerCta();
    if (ext_per_cta > srp_capacity)
        return regs;
    return clamped;
}

unsigned
RegMutexPolicy::extendedWarpRegsPerCta(const Sm &sm) const
{
    const Kernel &kernel = sm.context().kernel();
    const unsigned ext =
        kernel.regsPerThread() - brsRegsPerThread(sm);
    return ext * kernel.warpsPerCta();
}

bool
RegMutexPolicy::setSrpHolding(SmState &st, GridCtaId cta, unsigned target)
{
    const unsigned held =
        st.srpHeld.count(cta) ? st.srpHeld[cta] : 0;
    if (target == held)
        return true;

    if (target > held &&
        !st.srpPool->canAllocate(target - held)) {
        return false;
    }

    // Reallocate the holding as one fresh grant.
    if (st.srpHandle.count(cta) && st.srpHandle[cta] != 0)
        st.srpPool->free(st.srpHandle[cta]);
    st.srpHandle[cta] = target > 0 ? st.srpPool->allocate(target) : 0;
    st.srpHeld[cta] = target;
    return true;
}

unsigned
RegMutexPolicy::liveExtendedRegs(const Sm &sm, const Cta &cta) const
{
    const unsigned brs = brsRegsPerThread(sm);
    // Mask of extended (SRP-served) registers: bits >= brs. One AND +
    // popcount per warp instead of a per-bit walk.
    const RegBitVec ext_mask(brs >= 64 ? 0ull : ~0ull << brs);
    unsigned live_ext = 0;
    const auto &table = sm.context().liveTable();
    for (const auto &warp : cta.warps()) {
        if (warp->finished())
            continue;
        RegBitVec live;
        for (const auto &entry : warp->simtStack())
            live |= table.lookup(entry.pc);
        live_ext += (live & ext_mask).count();
    }
    return live_ext;
}

Cta *
RegMutexPolicy::bestPendingCta(Sm &sm, Cycle at_most) const
{
    SmState &st = state(sm);
    // O(1) fast path: even the soonest pending CTA misses at_most.
    if (st.pendingReady.minReady() > at_most)
        return nullptr;
    Cta *best = nullptr;
    Cycle best_ready = kNoCycle;
    for (Cta *cta : sm.pendingCtaList()) {
        const Cycle ready = st.pendingReady.readyCycle(cta->gridId());
        if (ready <= at_most && ready < best_ready) {
            best = cta;
            best_ready = ready;
        }
    }
    return best;
}

void
RegMutexPolicy::fillActiveSlots(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned brs_warp_regs =
        brsRegsPerThread(sm) * kernel.warpsPerCta();
    const unsigned ext_regs = extendedWarpRegsPerCta(sm);

    unsigned launched = 0;
    while (sm.canActivateCta()) {
        // Resume a ready pending CTA: it must re-acquire its full
        // extended set from the SRP before re-entering the pipeline.
        if (Cta *pending = bestPendingCta(sm, now)) {
            if (!setSrpHolding(st, pending->gridId(), ext_regs)) {
                st.srpBlocked = true; // ready work blocked on SRP
                break;
            }
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        // Launch a fresh CTA: BRS allocation + SRP grant.
        if (launched < 2 && dispatcher().hasWork() &&
            sm.shmemFree() >= kernel.shmemPerCta() &&
            st.brsPool->canAllocate(brs_warp_regs) &&
            sm.hasResidencyHeadroom()) {
            if (!st.srpPool->canAllocate(ext_regs)) {
                st.srpBlocked = true;
                break;
            }
            Cta *cta = sm.launchCta(dispatcher().pop(), now);
            cta->regAllocHandle = st.brsPool->allocate(brs_warp_regs);
            setSrpHolding(st, cta->gridId(), ext_regs);
            ++launched;
            continue;
        }
        // Anti-idle fallback: resume the soonest pending CTA if its SRP
        // demand fits.
        if (launched > 0)
            break;
        if (Cta *pending = bestPendingCta(sm, kNoCycle - 1)) {
            if (!setSrpHolding(st, pending->gridId(), ext_regs))
                break;
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        break;
    }
}

void
RegMutexPolicy::switchStalledCtas(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned brs_warp_regs =
        brsRegsPerThread(sm) * kernel.warpsPerCta();
    const unsigned ext_regs = extendedWarpRegsPerCta(sm);

    const std::vector<Cta *> &stalled = collectStalledCtas(sm, now);

    for (Cta *cta : stalled) {
        const bool pending_saturated = pendingSaturated(sm);
        const bool can_grow = dispatcher().hasWork() &&
                              st.brsPool->canAllocate(brs_warp_regs) &&
                              sm.shmemFree() >= kernel.shmemPerCta() &&
                              sm.hasResidencyHeadroom() &&
                              !pending_saturated;
        Cta *ready_pending = bestPendingCta(sm, now);
        if (!can_grow && !ready_pending)
            continue;

        // RegMutex does NOT release SRP held by live extended registers
        // when a CTA stalls; only the dead portion returns to the pool.
        const unsigned keep =
            std::min(ext_regs, liveExtendedRegs(sm, *cta));

        // Value tracking: the released (dead) extended registers lose
        // their contents; BRS and live extended registers survive.
        if (CtaValues *values = cta->values()) {
            const unsigned brs = brsRegsPerThread(sm);
            const unsigned regs = kernel.regsPerThread();
            const auto &table = sm.context().liveTable();
            for (const auto &warp : cta->warps()) {
                if (warp->finished())
                    continue;
                RegBitVec keep_mask;
                for (unsigned r = 0; r < brs && r < regs; ++r)
                    keep_mask.set(static_cast<RegIndex>(r));
                for (const auto &entry : warp->simtStack())
                    keep_mask |= table.lookup(entry.pc);
                values->dropDeadRegs(warp->id(), keep_mask);
            }
        }

        st.pendingReady.set(cta->gridId(), cta->estimateReadyCycle(now));
        sm.suspendCta(*cta, now);
        setSrpHolding(st, cta->gridId(), keep);

        if (can_grow && st.srpPool->canAllocate(ext_regs)) {
            Cta *fresh = sm.launchCta(dispatcher().pop(), now);
            fresh->regAllocHandle = st.brsPool->allocate(brs_warp_regs);
            setSrpHolding(st, fresh->gridId(), ext_regs);
            for (auto &warp : fresh->warps())
                warp->setEarliestIssue(now + switchLatency());
        } else if (ready_pending &&
                   setSrpHolding(st, ready_pending->gridId(), ext_regs)) {
            st.pendingReady.erase(ready_pending->gridId());
            sm.resumeCta(*ready_pending, now, switchLatency());
        } else if (can_grow || ready_pending) {
            st.srpBlocked = true; // work existed; SRP said no
        }
    }
}

void
RegMutexPolicy::tick(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    st.srpBlocked = false;
    fillActiveSlots(sm, now);
    switchStalledCtas(sm, now);
}

void
RegMutexPolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle)
{
    SmState &st = state(sm);
    st.brsPool->free(cta.regAllocHandle);
    setSrpHolding(st, cta.gridId(), 0);
    st.srpHeld.erase(cta.gridId());
    st.srpHandle.erase(cta.gridId());
    st.pendingReady.erase(cta.gridId());
}

bool
RegMutexPolicy::rfDepletionBlocked(const Sm &sm, Cycle) const
{
    return state(sm).srpBlocked;
}

Cycle
RegMutexPolicy::nextEventCycle(const Sm &sm, Cycle now) const
{
    const SmState &st = state(sm);
    if (st.pendingReady.empty())
        return kNoCycle;
    return std::max(st.pendingReady.minReady(), now + 1);
}

void
RegMutexPolicy::audit(const Sm &sm, Cycle now) const
{
    const SmState &st = state(sm);
    unsigned expected_brs = 0;
    for (const auto &cta : sm.residentCtas()) {
        if (cta->regAllocHandle == kInvalidId) {
            raiseInvariant("rf-accounting",
                           "resident CTA has no BRS allocation",
                           cta->gridId(), sm.id(), now);
        }
        expected_brs += st.brsPool->allocationSize(cta->regAllocHandle);
    }
    if (st.brsPool->numAllocations() != sm.residentCtas().size() ||
        st.brsPool->usedWarpRegs() != expected_brs) {
        std::ostringstream oss;
        oss << "BRS pool holds " << st.brsPool->numAllocations()
            << " allocations / " << st.brsPool->usedWarpRegs()
            << " warp-regs vs. " << sm.residentCtas().size()
            << " resident CTAs holding " << expected_brs;
        raiseInvariant("rf-accounting", oss.str(), kInvalidId, sm.id(), now);
    }

    // SRP conservation: the pool's usage must equal the sum of per-CTA
    // holdings, and every non-zero holding must have a matching grant.
    unsigned expected_srp = 0;
    for (const auto &[cta, held] : st.srpHeld) {
        expected_srp += held;
        const auto grant = st.srpHandle.find(cta);
        const unsigned granted =
            grant == st.srpHandle.end() || grant->second == 0
                ? 0
                : st.srpPool->allocationSize(grant->second);
        if (granted != held) {
            std::ostringstream oss;
            oss << "SRP holding of " << held
                << " warp-regs backed by a grant of " << granted;
            raiseInvariant("srp-accounting", oss.str(), cta, sm.id(), now);
        }
    }
    if (st.srpPool->usedWarpRegs() != expected_srp) {
        std::ostringstream oss;
        oss << "SRP pool usage " << st.srpPool->usedWarpRegs()
            << " warp-regs vs. " << expected_srp << " held by CTAs";
        raiseInvariant("srp-accounting", oss.str(), kInvalidId, sm.id(),
                       now);
    }
}

} // namespace finereg
