#include "policies/virtual_thread_policy.hh"

#include <algorithm>
#include <sstream>

#include "core/gpu_config.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{

void
VirtualThreadPolicy::onBind()
{
    states_.clear();
    for (unsigned s = 0; s < gpu().config().numSms; ++s) {
        auto st = std::make_unique<SmState>();
        st->rf = std::make_unique<RegFileAllocator>(
            "vt_rf_sm" + std::to_string(s), gpu().config().sm.regFileBytes);
        states_.push_back(std::move(st));
    }
}

Cycle
VirtualThreadPolicy::switchLatency() const
{
    return config().policy.zeroSwitchLatency
               ? 0
               : config().policy.switchBaseLatency;
}

Cta *
VirtualThreadPolicy::bestPendingCta(Sm &sm, Cycle at_most) const
{
    SmState &st = state(sm);
    // O(1) fast path for the common per-tick probes: if even the soonest
    // tracked CTA is not ready by at_most, no scan can find a winner.
    if (st.pendingReady.minReady() > at_most)
        return nullptr;
    Cta *best = nullptr;
    Cycle best_ready = kNoCycle;
    for (Cta *cta : sm.pendingCtaList()) {
        // Untracked here: e.g. demoted to the DRAM tier by a derived
        // policy.
        const Cycle ready = st.pendingReady.readyCycle(cta->gridId());
        if (ready <= at_most && ready < best_ready) {
            best = cta;
            best_ready = ready;
        }
    }
    return best;
}

void
VirtualThreadPolicy::fillActiveSlots(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    unsigned launched = 0;
    while (sm.canActivateCta()) {
        // 1) Ready pending CTAs already own registers; bring them back.
        if (Cta *pending = bestPendingCta(sm, now)) {
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        // 2) New grid CTAs while the register file and shmem have room.
        if (launched < 2 && dispatcher().hasWork() &&
            sm.shmemFree() >= kernel.shmemPerCta() &&
            st.rf->canAllocate(warp_regs) && sm.hasResidencyHeadroom()) {
            Cta *cta = sm.launchCta(dispatcher().pop(), now);
            cta->regAllocHandle = st.rf->allocate(warp_regs);
            ++launched;
            continue;
        }
        // 3) Nothing ready and nothing launchable: resume the
        //    soonest-ready pending CTA so the SM is never idle-locked.
        //    (Skipped when this tick already launched fresh CTAs — more
        //    launches follow next cycle.)
        if (launched > 0)
            break;
        if (Cta *pending = bestPendingCta(sm, kNoCycle - 1)) {
            st.pendingReady.erase(pending->gridId());
            sm.resumeCta(*pending, now, switchLatency());
            continue;
        }
        break;
    }
}

void
VirtualThreadPolicy::switchStalledCtas(Sm &sm, Cycle now)
{
    SmState &st = state(sm);
    const Kernel &kernel = sm.context().kernel();
    const unsigned warp_regs = kernel.warpRegsPerCta();

    // Candidates: active CTAs that issued nothing this cycle and whose
    // warps are all blocked on global memory.
    const std::vector<Cta *> &stalled = collectStalledCtas(sm, now);

    for (Cta *cta : stalled) {
        // Growing the resident set: a brand-new CTA takes over the slot
        // while the stalled one keeps its registers and waits. Growth is
        // dampened once enough pending CTAs exist to hide stalls.
        const bool pending_saturated = pendingSaturated(sm);
        const bool can_grow = dispatcher().hasWork() &&
                              st.rf->canAllocate(warp_regs) &&
                              sm.shmemFree() >= kernel.shmemPerCta() &&
                              sm.hasResidencyHeadroom() &&
                              !pending_saturated;
        Cta *ready_pending = bestPendingCta(sm, now);
        if (!can_grow && !ready_pending)
            continue;

        st.pendingReady.set(cta->gridId(), cta->estimateReadyCycle(now));
        sm.suspendCta(*cta, now);

        if (can_grow) {
            Cta *fresh = sm.launchCta(dispatcher().pop(), now);
            fresh->regAllocHandle = st.rf->allocate(warp_regs);
            for (auto &warp : fresh->warps())
                warp->setEarliestIssue(now + switchLatency());
        } else {
            st.pendingReady.erase(ready_pending->gridId());
            sm.resumeCta(*ready_pending, now, switchLatency());
        }
    }
}

void
VirtualThreadPolicy::tick(Sm &sm, Cycle now)
{
    fillActiveSlots(sm, now);
    switchStalledCtas(sm, now);
}

void
VirtualThreadPolicy::onCtaFinished(Sm &sm, Cta &cta, Cycle)
{
    SmState &st = state(sm);
    st.rf->free(cta.regAllocHandle);
    st.pendingReady.erase(cta.gridId());
}

Cycle
VirtualThreadPolicy::nextEventCycle(const Sm &sm, Cycle now) const
{
    // min over CTAs of max(ready, now+1) == max(minReady, now+1) when the
    // set is non-empty: the clamp is monotone, so it commutes with min.
    const SmState &st = state(sm);
    if (st.pendingReady.empty())
        return kNoCycle;
    return std::max(st.pendingReady.minReady(), now + 1);
}

void
VirtualThreadPolicy::audit(const Sm &sm, Cycle now) const
{
    const SmState &st = state(sm);
    unsigned holders = 0;
    unsigned expected_used = 0;
    for (const auto &cta : sm.residentCtas()) {
        if (cta->state() == CtaState::Active &&
            cta->regAllocHandle == kInvalidId) {
            raiseInvariant("rf-accounting",
                           "active CTA has no register allocation",
                           cta->gridId(), sm.id(), now);
        }
        if (cta->regAllocHandle != kInvalidId) {
            ++holders;
            expected_used += st.rf->allocationSize(cta->regAllocHandle);
        }
    }
    if (st.rf->numAllocations() != holders ||
        st.rf->usedWarpRegs() != expected_used) {
        std::ostringstream oss;
        oss << st.rf->numAllocations() << " allocations / "
            << st.rf->usedWarpRegs() << " used warp-regs vs. " << holders
            << " handle-holding CTAs accounting for " << expected_used;
        raiseInvariant("rf-accounting", oss.str(), kInvalidId, sm.id(), now);
    }
}

} // namespace finereg
