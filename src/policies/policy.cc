#include "policies/policy.hh"

#include <algorithm>

#include "sm/cta.hh"

#include "common/log.hh"
#include "core/gpu_config.hh"
#include "policies/baseline_policy.hh"
#include "policies/finereg_policy.hh"
#include "policies/reg_dram_policy.hh"
#include "policies/regmutex_policy.hh"
#include "policies/virtual_thread_policy.hh"
#include "sm/gpu.hh"

namespace finereg
{

void
Policy::bind(Gpu &gpu)
{
    gpu_ = &gpu;
    dispatcher_ = &gpu.dispatcher();
    onBind();
}

const GpuConfig &
Policy::config() const
{
    return gpu_->config();
}

unsigned
Policy::baselineActiveEstimate(const Sm &sm) const
{
    if (baselineEstimate_ != 0)
        return baselineEstimate_;
    const Kernel &kernel = sm.context().kernel();
    const SmConfig &smc = config().sm;
    unsigned estimate = std::min(
        {smc.maxCtas, smc.maxWarps / kernel.warpsPerCta(),
         smc.maxThreads / kernel.threadsPerCta()});
    const std::uint64_t cta_reg_bytes = kernel.regBytesPerCta();
    if (cta_reg_bytes > 0) {
        estimate = std::min<std::uint64_t>(
            estimate, smc.regFileBytes / cta_reg_bytes);
    }
    if (kernel.shmemPerCta() > 0) {
        estimate = std::min<std::uint64_t>(
            estimate, smc.shmemBytes / kernel.shmemPerCta());
    }
    baselineEstimate_ = std::max(1u, estimate);
    return baselineEstimate_;
}

bool
Policy::pendingSaturated(const Sm &sm) const
{
    return sm.pendingCtaCount() >=
           config().policy.pendingGrowthFactor *
               baselineActiveEstimate(sm);
}

const std::vector<Cta *> &
Policy::collectStalledCtas(Sm &sm, Cycle now) const
{
    std::vector<Cta *> &stalled = stalledScratch_;
    stalled.clear();
    // activeCtaList() is the Active subset of residentCtas() in the same
    // (launch-sequence) order, so the collected order is unchanged.
    for (Cta *cta : sm.activeCtaList()) {
        if (cta->lastIssueCycle() == now)
            continue;
        if (cta->stalledOnMemoryCached(now))
            stalled.push_back(cta);
    }
    return stalled;
}

bool
Policy::rfDepletionBlocked(const Sm &, Cycle) const
{
    return false;
}

void
Policy::audit(const Sm &, Cycle) const
{
}

Cycle
Policy::nextEventCycle(const Sm &, Cycle) const
{
    return kNoCycle;
}

std::unique_ptr<Policy>
makePolicy(const GpuConfig &config)
{
    switch (config.policy.kind) {
      case PolicyKind::Baseline:
        return std::make_unique<BaselinePolicy>();
      case PolicyKind::VirtualThread:
        return std::make_unique<VirtualThreadPolicy>();
      case PolicyKind::RegDram:
        return std::make_unique<RegDramPolicy>();
      case PolicyKind::RegMutex:
        return std::make_unique<RegMutexPolicy>();
      case PolicyKind::FineReg:
        return std::make_unique<FineRegPolicy>();
    }
    FINEREG_PANIC("unknown policy kind");
}

} // namespace finereg
