/**
 * @file
 * Abstract CTA/register management policy. The SM provides mechanisms
 * (launch/suspend/resume, slot accounting); a Policy owns all decisions:
 * when to launch grid CTAs, when to evict a stalled CTA, where its register
 * context lives, and when to reactivate it. One Policy instance serves every
 * SM of the GPU and keeps per-SM state internally.
 */

#ifndef FINEREG_POLICIES_POLICY_HH
#define FINEREG_POLICIES_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace finereg
{

class Cta;
class CtaDispatcher;
class Gpu;
class Sm;
struct GpuConfig;

class Policy
{
  public:
    virtual ~Policy() = default;

    /** Called once by the Gpu before simulation starts. */
    void bind(Gpu &gpu);

    virtual const char *name() const = 0;

    /**
     * Per-cycle decision hook, invoked after the SM's issue stage. Launch
     * CTAs, detect fully stalled CTAs, perform switches.
     */
    virtual void tick(Sm &sm, Cycle now) = 0;

    /** A CTA on @p sm retired; release its register resources. */
    virtual void onCtaFinished(Sm &sm, Cta &cta, Cycle now) = 0;

    /**
     * Fig. 14 predicate: the SM has runnable work that is blocked purely by
     * register-file depletion (no SRP / no PCRF space).
     */
    virtual bool rfDepletionBlocked(const Sm &sm, Cycle now) const;

    /**
     * Earliest future cycle at which this policy wants a tick on @p sm
     * (pending-CTA readiness, switch completions). kNoCycle when none.
     */
    virtual Cycle nextEventCycle(const Sm &sm, Cycle now) const;

    /** Extra SRAM the scheme needs, in bits (Sec. V-F accounting). */
    virtual std::uint64_t storageOverheadBits() const { return 0; }

    /**
     * Invariant-auditor hook: verify the policy's own bookkeeping for
     * @p sm (allocator accounting, PCRF chain integrity, status-monitor
     * legality, ...). Throws an InvariantViolation SimException on the
     * first broken invariant; the default policy has nothing to check.
     */
    virtual void audit(const Sm &sm, Cycle now) const;

  protected:
    /** Policy-specific initialization once the Gpu is known. */
    virtual void onBind() {}

    Gpu &gpu() const { return *gpu_; }
    CtaDispatcher &dispatcher() const { return *dispatcher_; }
    const GpuConfig &config() const;

    /**
     * CTAs per SM a conventional GPU could keep active for this kernel:
     * min(CTA slots, warp slots, thread slots, full-RF fit, shmem fit).
     * Used to scale the pending-growth damper. A pure function of the
     * kernel and the SM config — both fixed for a run — so it is computed
     * once and cached.
     */
    unsigned baselineActiveEstimate(const Sm &sm) const;

    /** True once the pending set is large enough to hide stalls; growth
     * beyond this only enlarges the cache working set. */
    bool pendingSaturated(const Sm &sm) const;

    /**
     * Active CTAs whose warps are all blocked on global memory this
     * cycle (Sec. IV-A's switch candidates). Memoizes each CTA's
     * stalled-until horizon so warps are not rescanned every cycle.
     * Returns a reference to an internal scratch vector, valid until the
     * next call (one caller per policy tick).
     */
    const std::vector<Cta *> &collectStalledCtas(Sm &sm, Cycle now) const;

  private:
    Gpu *gpu_ = nullptr;

    /** Cached at bind(): the dispatcher is looked up once, not per tick. */
    CtaDispatcher *dispatcher_ = nullptr;

    /** Cache for baselineActiveEstimate (0 = not yet computed; the
     * estimate itself is always >= 1). */
    mutable unsigned baselineEstimate_ = 0;

    mutable std::vector<Cta *> stalledScratch_;
};

/** Instantiate the policy selected by @p config.policy.kind. */
std::unique_ptr<Policy> makePolicy(const GpuConfig &config);

} // namespace finereg

#endif // FINEREG_POLICIES_POLICY_HH
