#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace finereg
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions_[name];
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, d] : distributions_)
        d.reset();
}

std::vector<std::string>
StatGroup::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        names.push_back(name);
    return names;
}

std::string
StatGroup::dump() const
{
    std::ostringstream oss;
    for (const auto &[name, c] : counters_)
        oss << name_ << '.' << name << ' ' << c.value() << '\n';
    for (const auto &[name, d] : distributions_) {
        oss << name_ << '.' << name << " mean=" << d.mean()
            << " min=" << d.min() << " max=" << d.max()
            << " n=" << d.count() << '\n';
    }
    return oss.str();
}

TableFormatter::TableFormatter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableFormatter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        FINEREG_PANIC("table row has ", cells.size(), " cells, expected ",
                      headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TableFormatter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream oss;
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c]
                << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        return oss.str();
    };

    std::ostringstream oss;
    oss << render_row(headers_) << '\n';
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        oss << render_row(row) << '\n';
    return oss.str();
}

std::string
TableFormatter::num(double v, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << v;
    return oss.str();
}

std::string
TableFormatter::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            FINEREG_PANIC("geomean of non-positive value ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace finereg
