/**
 * @file
 * Error and status reporting helpers, following the gem5 fatal/panic split:
 * panic() flags simulator bugs (aborts), fatal() flags user errors (exits),
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef FINEREG_COMMON_LOG_HH
#define FINEREG_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace finereg
{

namespace log_detail
{

/** Concatenate a variadic argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace log_detail

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

/** Report an internal simulator bug and abort. */
#define FINEREG_PANIC(...) \
    ::finereg::log_detail::panicImpl(__FILE__, __LINE__, \
        ::finereg::log_detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define FINEREG_FATAL(...) \
    ::finereg::log_detail::fatalImpl(__FILE__, __LINE__, \
        ::finereg::log_detail::concat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define FINEREG_WARN(...) \
    ::finereg::log_detail::warnImpl(::finereg::log_detail::concat(__VA_ARGS__))

/** Report normal operating status (suppressed when verbose is off). */
#define FINEREG_INFORM(...) \
    ::finereg::log_detail::informImpl(::finereg::log_detail::concat(__VA_ARGS__))

} // namespace finereg

#endif // FINEREG_COMMON_LOG_HH
