/**
 * @file
 * Fundamental scalar types and identifiers used across the simulator.
 */

#ifndef FINEREG_COMMON_TYPES_HH
#define FINEREG_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace finereg
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated byte address (global memory space). */
using Addr = std::uint64_t;

/** Program counter. Instruction addresses advance in units of 8 bytes. */
using Pc = std::uint32_t;

/** Architectural register index within a thread (0..63). */
using RegIndex = std::uint8_t;

/** Warp identifier, local to a CTA (0..31). */
using WarpId = std::uint16_t;

/** CTA identifier, local to an SM's resident set. */
using CtaId = std::uint16_t;

/** CTA identifier within the launched grid. */
using GridCtaId = std::uint32_t;

/** Streaming multiprocessor index. */
using SmId = std::uint16_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid identifiers. */
inline constexpr std::uint32_t kInvalidId = std::numeric_limits<std::uint32_t>::max();

/** Number of threads per warp (SIMD width, Table I). */
inline constexpr unsigned kWarpSize = 32;

/** Maximum architectural registers per thread (Sec. V-A bit vector width). */
inline constexpr unsigned kMaxRegsPerThread = 64;

/** Bytes per warp-register: 32 lanes x 4 bytes (one PCRF data entry). */
inline constexpr unsigned kBytesPerWarpReg = kWarpSize * 4;

/** Instruction size in bytes; PCs advance by this amount. */
inline constexpr unsigned kInstrBytes = 8;

} // namespace finereg

#endif // FINEREG_COMMON_TYPES_HH
