/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**). Every
 * stochastic element of the simulator draws from an explicitly seeded Rng so
 * runs are exactly reproducible.
 */

#ifndef FINEREG_COMMON_RNG_HH
#define FINEREG_COMMON_RNG_HH

#include <cstdint>

namespace finereg
{

/**
 * Small, fast, deterministic PRNG. Not cryptographic; used only for workload
 * synthesis and tie-breaking decisions in the simulator.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with the given success probability. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace finereg

#endif // FINEREG_COMMON_RNG_HH
