/**
 * @file
 * Lightweight statistics registry. Simulation components register named
 * counters and distributions with a StatGroup; experiment harnesses read them
 * back by name and format comparison tables.
 */

#ifndef FINEREG_COMMON_STATS_HH
#define FINEREG_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace finereg
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Streaming distribution: tracks count, sum, min, max for sampled values. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of counters and distributions. Components own a
 * StatGroup and register stats once at construction; lookup by dotted name
 * is used by tests and benches.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Register (or fetch existing) counter under @p name. */
    Counter &counter(const std::string &name);

    /** Register (or fetch existing) distribution under @p name. */
    Distribution &distribution(const std::string &name);

    /** Look up a counter; returns 0 value for unknown names. */
    std::uint64_t counterValue(const std::string &name) const;

    bool hasCounter(const std::string &name) const;

    /** Reset every stat in the group. */
    void resetAll();

    /** Names of all registered counters, sorted. */
    std::vector<std::string> counterNames() const;

    const std::string &name() const { return name_; }

    /** Render "name value" lines for every stat, for debug dumps. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

/**
 * Formatting helper for experiment harnesses: accumulates rows and renders
 * an aligned ASCII table, the output format every bench binary uses.
 */
class TableFormatter
{
  public:
    explicit TableFormatter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a vector of positive values (0 for empty input). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<double> &values);

} // namespace finereg

#endif // FINEREG_COMMON_STATS_HH
