/**
 * @file
 * Bit-vector utilities: RegBitVec, the fixed 64-bit per-instruction live
 * register vector described in Sec. V-A of the paper, and DynBitSet, a
 * dynamically sized bitmap used by the PCRF free-space monitor.
 */

#ifndef FINEREG_COMMON_BITVEC_HH
#define FINEREG_COMMON_BITVEC_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace finereg
{

/**
 * Fixed-width 64-bit register liveness vector. Bit i set means architectural
 * register Ri is live. Matches the paper's compiler output format: one 64-bit
 * word per static instruction.
 */
class RegBitVec
{
  public:
    constexpr RegBitVec() = default;
    constexpr explicit RegBitVec(std::uint64_t bits) : bits_(bits) {}

    constexpr bool
    test(RegIndex reg) const
    {
        return reg < kMaxRegsPerThread && (bits_ >> reg) & 1ull;
    }

    constexpr void
    set(RegIndex reg)
    {
        if (reg < kMaxRegsPerThread)
            bits_ |= (1ull << reg);
    }

    constexpr void
    reset(RegIndex reg)
    {
        if (reg < kMaxRegsPerThread)
            bits_ &= ~(1ull << reg);
    }

    constexpr void clear() { bits_ = 0; }

    /** Number of live registers. */
    constexpr unsigned count() const { return std::popcount(bits_); }

    constexpr bool empty() const { return bits_ == 0; }

    constexpr std::uint64_t raw() const { return bits_; }

    constexpr RegBitVec
    operator|(RegBitVec other) const
    {
        return RegBitVec(bits_ | other.bits_);
    }

    constexpr RegBitVec
    operator&(RegBitVec other) const
    {
        return RegBitVec(bits_ & other.bits_);
    }

    /** Bits set in this vector but not in @p other. */
    constexpr RegBitVec
    minus(RegBitVec other) const
    {
        return RegBitVec(bits_ & ~other.bits_);
    }

    constexpr RegBitVec &
    operator|=(RegBitVec other)
    {
        bits_ |= other.bits_;
        return *this;
    }

    constexpr bool operator==(const RegBitVec &) const = default;

    /** Iterate set bits, lowest index first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint64_t bits = bits_;
        while (bits) {
            const int i = std::countr_zero(bits);
            fn(static_cast<RegIndex>(i));
            bits &= bits - 1;
        }
    }

  private:
    std::uint64_t bits_ = 0;
};

/**
 * Dynamically sized bitmap. Used for the PCRF free-space monitor (Sec. V-C):
 * one flag per PCRF entry, 0 = empty, 1 = occupied.
 */
class DynBitSet
{
  public:
    DynBitSet() = default;

    explicit DynBitSet(std::size_t n_bits)
        : size_(n_bits), words_((n_bits + 63) / 64, 0)
    {}

    std::size_t size() const { return size_; }

    bool
    test(std::size_t i) const
    {
        checkIndex(i);
        return (words_[i / 64] >> (i % 64)) & 1ull;
    }

    void
    set(std::size_t i)
    {
        checkIndex(i);
        std::uint64_t &w = words_[i / 64];
        const std::uint64_t mask = 1ull << (i % 64);
        if (!(w & mask)) {
            w |= mask;
            ++popcount_;
        }
    }

    void
    reset(std::size_t i)
    {
        checkIndex(i);
        std::uint64_t &w = words_[i / 64];
        const std::uint64_t mask = 1ull << (i % 64);
        if (w & mask) {
            w &= ~mask;
            --popcount_;
            if (i / 64 < scanHintWord_)
                scanHintWord_ = i / 64;
        }
    }

    void
    clearAll()
    {
        for (auto &w : words_)
            w = 0;
        popcount_ = 0;
        scanHintWord_ = 0;
    }

    /** Number of set (occupied) bits. */
    std::size_t count() const { return popcount_; }

    /** Number of clear (free) bits; what the free-space monitor aggregates. */
    std::size_t countClear() const { return size_ - popcount_; }

    /**
     * Index of the first clear bit, or size() when all bits are set.
     * Implements the free-slot lookup of the PCRF free-space monitor.
     *
     * Amortized O(1): a scan hint remembers the lowest word that can hold
     * a clear bit. set() never creates clear bits, reset() lowers the
     * hint, so the invariant "no clear bit below scanHintWord_" holds and
     * the scan can start there without changing the returned index.
     */
    std::size_t
    firstClear() const
    {
        for (std::size_t wi = scanHintWord_; wi < words_.size(); ++wi) {
            std::uint64_t inv = ~words_[wi];
            if (wi == words_.size() - 1 && size_ % 64 != 0) {
                // Mask out the padding bits beyond size_.
                inv &= (1ull << (size_ % 64)) - 1;
            }
            if (inv) {
                scanHintWord_ = wi;
                const std::size_t bit = wi * 64 + std::countr_zero(inv);
                return bit < size_ ? bit : size_;
            }
        }
        scanHintWord_ = words_.size();
        return size_;
    }

  private:
    void
    checkIndex(std::size_t i) const
    {
        if (i >= size_)
            FINEREG_PANIC("DynBitSet index ", i, " out of range ", size_);
    }

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
    std::size_t popcount_ = 0;
    mutable std::size_t scanHintWord_ = 0;
};

} // namespace finereg

#endif // FINEREG_COMMON_BITVEC_HH
