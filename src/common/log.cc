#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace finereg
{

namespace
{
// The only process-global mutable state in the library. Atomic so the
// parallel runner's workers can consult it while a driver thread toggles
// it; everything else a Simulator::run touches is owned by its Gpu.
std::atomic<bool> g_verbose{false};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace log_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail

} // namespace finereg
