#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace finereg
{

namespace
{
bool g_verbose = false;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace log_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail

} // namespace finereg
