#include "isa/kernel_builder.hh"

#include <algorithm>

#include "common/log.hh"

namespace finereg
{

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name))
{
}

KernelBuilder &
KernelBuilder::regsPerThread(unsigned n)
{
    if (n == 0 || n > kMaxRegsPerThread)
        FINEREG_FATAL("regsPerThread ", n, " outside [1, ",
                      kMaxRegsPerThread, "]");
    regsPerThread_ = n;
    return *this;
}

KernelBuilder &
KernelBuilder::threadsPerCta(unsigned n)
{
    if (n == 0 || n % kWarpSize != 0)
        FINEREG_FATAL("threadsPerCta ", n, " must be a positive multiple of ",
                      kWarpSize);
    threadsPerCta_ = n;
    return *this;
}

KernelBuilder &
KernelBuilder::shmemPerCta(unsigned bytes)
{
    shmemPerCta_ = bytes;
    return *this;
}

KernelBuilder &
KernelBuilder::gridCtas(unsigned n)
{
    if (n == 0)
        FINEREG_FATAL("gridCtas must be positive");
    gridCtas_ = n;
    return *this;
}

int
KernelBuilder::newBlock()
{
    blocks_.emplace_back();
    return static_cast<int>(blocks_.size()) - 1;
}

Instruction &
KernelBuilder::append(Instruction instr)
{
    if (blocks_.empty())
        newBlock();
    blocks_.back().instrs.push_back(instr);
    return blocks_.back().instrs.back();
}

Instruction &
KernelBuilder::alu(Opcode op, int dst, int src0, int src1, int src2)
{
    Instruction instr;
    instr.op = op;
    instr.dst = dst;
    instr.srcs = {src0, src1, src2};
    return append(instr);
}

Instruction &
KernelBuilder::mov(int dst, int src)
{
    return alu(Opcode::MOV, dst, src);
}

Instruction &
KernelBuilder::sfu(int dst, int src)
{
    return alu(Opcode::SFU, dst, src);
}

Instruction &
KernelBuilder::load(Opcode op, int dst, int addr_src,
                    const MemPattern &pattern)
{
    if (!isLoad(op))
        FINEREG_PANIC("load() with non-load opcode ", opcodeName(op));
    Instruction instr;
    instr.op = op;
    instr.dst = dst;
    instr.srcs = {addr_src, -1, -1};
    instr.mem = pattern;
    return append(instr);
}

Instruction &
KernelBuilder::store(Opcode op, int addr_src, int data_src,
                     const MemPattern &pattern)
{
    if (!isStore(op))
        FINEREG_PANIC("store() with non-store opcode ", opcodeName(op));
    Instruction instr;
    instr.op = op;
    instr.srcs = {addr_src, data_src, -1};
    instr.mem = pattern;
    return append(instr);
}

Instruction &
KernelBuilder::branch(int target_block, int cond_src, double taken_prob,
                      double diverge_prob)
{
    Instruction instr;
    instr.op = Opcode::BRA;
    instr.srcs = {cond_src, -1, -1};
    instr.targetBlock = target_block;
    instr.takenProb = taken_prob;
    instr.divergeProb = diverge_prob;
    return append(instr);
}

Instruction &
KernelBuilder::loopBranch(int target_block, int cond_src,
                          unsigned trip_count, double diverge_prob)
{
    if (trip_count == 0)
        FINEREG_FATAL("loop trip count must be positive");
    Instruction instr;
    instr.op = Opcode::BRA;
    instr.srcs = {cond_src, -1, -1};
    instr.targetBlock = target_block;
    instr.tripCount = trip_count;
    instr.divergeProb = diverge_prob;
    return append(instr);
}

Instruction &
KernelBuilder::jump(int target_block)
{
    Instruction instr;
    instr.op = Opcode::JMP;
    instr.targetBlock = target_block;
    return append(instr);
}

Instruction &
KernelBuilder::barrier()
{
    Instruction instr;
    instr.op = Opcode::BAR;
    return append(instr);
}

Instruction &
KernelBuilder::exit()
{
    Instruction instr;
    instr.op = Opcode::EXIT;
    return append(instr);
}

void
KernelBuilder::validateRegs(const Instruction &instr) const
{
    auto check = [&](int reg) {
        if (reg >= static_cast<int>(regsPerThread_))
            FINEREG_FATAL("kernel ", name_, ": instruction ",
                          instr.toString(), " uses R", reg,
                          " beyond declared regsPerThread ", regsPerThread_);
    };
    check(instr.dst);
    for (int src : instr.srcs)
        check(src);
}

std::unique_ptr<Kernel>
KernelBuilder::finalize()
{
    if (finalized_)
        FINEREG_PANIC("kernel ", name_, " finalized twice");
    finalized_ = true;
    if (blocks_.empty())
        FINEREG_FATAL("kernel ", name_, " has no blocks");

    auto kernel = std::unique_ptr<Kernel>(new Kernel);
    kernel->name_ = name_;
    kernel->regsPerThread_ = regsPerThread_;
    kernel->threadsPerCta_ = threadsPerCta_;
    kernel->shmemPerCta_ = shmemPerCta_;
    kernel->gridCtas_ = gridCtas_;

    const int n_blocks = static_cast<int>(blocks_.size());

    // Flatten instructions and record block extents.
    for (int b = 0; b < n_blocks; ++b) {
        auto &pending = blocks_[b];
        if (pending.instrs.empty())
            FINEREG_FATAL("kernel ", name_, ": block B", b, " is empty");

        // Only the final instruction of a block may be a terminator.
        for (std::size_t i = 0; i + 1 < pending.instrs.size(); ++i) {
            const Opcode op = pending.instrs[i].op;
            if (op == Opcode::BRA || op == Opcode::JMP || op == Opcode::EXIT)
                FINEREG_FATAL("kernel ", name_, ": terminator ",
                              opcodeName(op), " mid-block in B", b);
        }

        BasicBlock blk;
        blk.firstInstr = static_cast<unsigned>(kernel->instrs_.size());
        blk.numInstrs = static_cast<unsigned>(pending.instrs.size());
        for (auto &instr : pending.instrs) {
            validateRegs(instr);
            kernel->instrs_.push_back(instr);
        }
        kernel->blocks_.push_back(std::move(blk));
    }

    // Assign PCs and flat indices.
    for (std::size_t i = 0; i < kernel->instrs_.size(); ++i) {
        kernel->instrs_[i].pc = static_cast<Pc>(i * kInstrBytes);
        kernel->instrs_[i].index = static_cast<unsigned>(i);
    }

    // Build CFG edges from terminators.
    for (int b = 0; b < n_blocks; ++b) {
        auto &blk = kernel->blocks_[b];
        const Instruction &last =
            kernel->instrs_[blk.firstInstr + blk.numInstrs - 1];

        auto add_edge = [&](int to) {
            if (to < 0 || to >= n_blocks)
                FINEREG_FATAL("kernel ", name_, ": B", b,
                              " targets nonexistent block B", to);
            blk.succs.push_back(to);
            kernel->blocks_[to].preds.push_back(b);
        };

        switch (last.op) {
          case Opcode::EXIT:
            break;
          case Opcode::JMP:
            add_edge(last.targetBlock);
            break;
          case Opcode::BRA:
            add_edge(last.targetBlock);
            if (b + 1 >= n_blocks)
                FINEREG_FATAL("kernel ", name_, ": BRA in final block B", b,
                              " has no fall-through");
            add_edge(b + 1);
            break;
          default:
            // Fall through to next block.
            if (b + 1 >= n_blocks)
                FINEREG_FATAL("kernel ", name_, ": final block B", b,
                              " does not end in EXIT or JMP");
            add_edge(b + 1);
            break;
        }
    }

    // The kernel must be able to terminate.
    const bool has_exit = std::any_of(
        kernel->instrs_.begin(), kernel->instrs_.end(),
        [](const Instruction &instr) { return instr.op == Opcode::EXIT; });
    if (!has_exit)
        FINEREG_FATAL("kernel ", name_, " has no EXIT instruction");

    return kernel;
}

} // namespace finereg
