/**
 * @file
 * Fluent construction of kernels. Workload generators create blocks, append
 * instructions, wire control flow, and finalize() validates the CFG, assigns
 * PCs, and produces an immutable Kernel.
 */

#ifndef FINEREG_ISA_KERNEL_BUILDER_HH
#define FINEREG_ISA_KERNEL_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace finereg
{

class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    // Resource declaration ---------------------------------------------------

    KernelBuilder &regsPerThread(unsigned n);
    KernelBuilder &threadsPerCta(unsigned n);
    KernelBuilder &shmemPerCta(unsigned bytes);
    KernelBuilder &gridCtas(unsigned n);

    // CFG construction -------------------------------------------------------

    /** Start a new basic block; returns its index. Instructions append to
     * the most recently opened block. */
    int newBlock();

    /** Append an instruction to the current block; returns a reference that
     * remains valid until finalize(). */
    Instruction &append(Instruction instr);

    // Convenience emitters ---------------------------------------------------

    Instruction &alu(Opcode op, int dst, int src0, int src1 = -1,
                     int src2 = -1);
    Instruction &mov(int dst, int src);
    Instruction &sfu(int dst, int src);
    Instruction &load(Opcode op, int dst, int addr_src,
                      const MemPattern &pattern);
    Instruction &store(Opcode op, int addr_src, int data_src,
                       const MemPattern &pattern);

    /** Conditional branch to @p target_block; falls through otherwise. */
    Instruction &branch(int target_block, int cond_src, double taken_prob,
                        double diverge_prob);

    /** Loop back-edge: taken trip_count-1 times, then falls through. */
    Instruction &loopBranch(int target_block, int cond_src,
                            unsigned trip_count, double diverge_prob = 0.0);

    Instruction &jump(int target_block);
    Instruction &barrier();
    Instruction &exit();

    /**
     * Validate and seal the kernel:
     *  - every block ends in exactly one terminator (BRA falls through to
     *    the next block; the last block must end in EXIT or JMP),
     *  - all register indices < kMaxRegsPerThread and < regsPerThread,
     *  - all branch targets exist,
     *  - successor/predecessor lists are computed,
     *  - PCs and flat indices are assigned.
     */
    std::unique_ptr<Kernel> finalize();

  private:
    struct PendingBlock
    {
        std::vector<Instruction> instrs;
    };

    void validateRegs(const Instruction &instr) const;

    std::string name_;
    std::vector<PendingBlock> blocks_;
    unsigned regsPerThread_ = 16;
    unsigned threadsPerCta_ = 256;
    unsigned shmemPerCta_ = 0;
    unsigned gridCtas_ = 64;
    bool finalized_ = false;
};

} // namespace finereg

#endif // FINEREG_ISA_KERNEL_BUILDER_HH
