/**
 * @file
 * Opcodes of the mini GPU ISA the simulator executes. The set is the minimum
 * needed to express the register/memory/control behaviour the paper's
 * mechanisms react to: ALU ops with register defs/uses, long-latency memory
 * ops that stall warps, divergent branches, loops, barriers.
 */

#ifndef FINEREG_ISA_OPCODE_HH
#define FINEREG_ISA_OPCODE_HH

#include <string_view>

namespace finereg
{

enum class Opcode : unsigned char
{
    IADD,      ///< Integer add, short ALU latency.
    IMUL,      ///< Integer multiply, short ALU latency.
    FADD,      ///< FP add, short ALU latency.
    FMUL,      ///< FP multiply, short ALU latency.
    FFMA,      ///< Fused multiply-add, three sources.
    MOV,       ///< Register move.
    SFU,       ///< Special-function op (rsqrt, sin, ...), long ALU latency.
    LD_GLOBAL, ///< Load from global memory via L1/L2/DRAM.
    ST_GLOBAL, ///< Store to global memory.
    LD_SHARED, ///< Load from on-chip shared memory.
    ST_SHARED, ///< Store to on-chip shared memory.
    BRA,       ///< Conditional branch (possibly divergent, possibly a loop).
    JMP,       ///< Unconditional jump.
    BAR,       ///< CTA-wide barrier.
    EXIT,      ///< Thread termination.
};

/** Functional-unit class an opcode issues to. */
enum class FuncUnit : unsigned char
{
    ALU,  ///< Short-latency integer/FP pipe.
    SFU,  ///< Special function unit.
    MEM,  ///< Load/store unit.
    CTRL, ///< Branch/barrier/exit handled at issue.
};

constexpr FuncUnit
funcUnitOf(Opcode op)
{
    switch (op) {
      case Opcode::SFU:
        return FuncUnit::SFU;
      case Opcode::LD_GLOBAL:
      case Opcode::ST_GLOBAL:
      case Opcode::LD_SHARED:
      case Opcode::ST_SHARED:
        return FuncUnit::MEM;
      case Opcode::BRA:
      case Opcode::JMP:
      case Opcode::BAR:
      case Opcode::EXIT:
        return FuncUnit::CTRL;
      default:
        return FuncUnit::ALU;
    }
}

constexpr bool
isMemory(Opcode op)
{
    return funcUnitOf(op) == FuncUnit::MEM;
}

constexpr bool
isGlobalMemory(Opcode op)
{
    return op == Opcode::LD_GLOBAL || op == Opcode::ST_GLOBAL;
}

constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::LD_GLOBAL || op == Opcode::LD_SHARED;
}

constexpr bool
isStore(Opcode op)
{
    return op == Opcode::ST_GLOBAL || op == Opcode::ST_SHARED;
}

constexpr bool
isControl(Opcode op)
{
    return funcUnitOf(op) == FuncUnit::CTRL;
}

constexpr std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IADD: return "IADD";
      case Opcode::IMUL: return "IMUL";
      case Opcode::FADD: return "FADD";
      case Opcode::FMUL: return "FMUL";
      case Opcode::FFMA: return "FFMA";
      case Opcode::MOV: return "MOV";
      case Opcode::SFU: return "SFU";
      case Opcode::LD_GLOBAL: return "LD.G";
      case Opcode::ST_GLOBAL: return "ST.G";
      case Opcode::LD_SHARED: return "LD.S";
      case Opcode::ST_SHARED: return "ST.S";
      case Opcode::BRA: return "BRA";
      case Opcode::JMP: return "JMP";
      case Opcode::BAR: return "BAR";
      case Opcode::EXIT: return "EXIT";
    }
    return "?";
}

} // namespace finereg

#endif // FINEREG_ISA_OPCODE_HH
