/**
 * @file
 * Static instruction representation: register operands, memory access
 * pattern, and control-flow annotations. Kernels are synthesized rather than
 * compiled from CUDA, so memory instructions carry an address-pattern
 * descriptor from which the simulator derives concrete warp addresses.
 */

#ifndef FINEREG_ISA_INSTRUCTION_HH
#define FINEREG_ISA_INSTRUCTION_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace finereg
{

/**
 * Describes how a global/shared memory instruction touches memory. The warp
 * address is derived deterministically from (region, cta, warp, iteration);
 * cache behaviour then emerges from the footprint and stride.
 */
struct MemPattern
{
    /** Logical data region; distinct regions never alias. */
    unsigned region = 0;

    /** Total bytes the kernel touches in this region (wraps around). */
    std::uint64_t footprint = 1 << 20;

    /** Per-warp 128-byte transactions generated (1 = fully coalesced). */
    unsigned transactions = 1;

    /**
     * Address stride between successive dynamic executions of this
     * instruction by the same warp (bytes). Small strides give L1 reuse,
     * large strides stream through the caches.
     */
    std::uint64_t stride = 128;

    /** Probability that a dynamic access rehits the previous line. */
    double reuse = 0.0;

    /**
     * Shared data structure: every warp walks the same addresses (lookup
     * tables, filter taps, centroids) instead of a private slice, so the
     * cache working set does not grow with thread-level parallelism.
     */
    bool shared = false;
};

/**
 * One static instruction. Destination/source operands are architectural
 * register indices; -1 marks an unused slot.
 */
struct Instruction
{
    Opcode op = Opcode::IADD;

    /** Destination register or -1. */
    int dst = -1;

    /** Source registers; unused slots are -1. */
    std::array<int, 3> srcs{-1, -1, -1};

    /** BRA/JMP: index of the target basic block within the kernel. */
    int targetBlock = -1;

    /**
     * BRA only: probability that the warp's lanes disagree, causing SIMT
     * divergence with serialized execution until the reconvergence point.
     */
    double divergeProb = 0.0;

    /** BRA only (non-loop): probability the branch is taken warp-wide. */
    double takenProb = 0.5;

    /**
     * BRA only: if > 0, this is a loop back-edge that is taken exactly
     * tripCount - 1 times (the loop body executes tripCount times).
     */
    unsigned tripCount = 0;

    /** Memory instructions: the address pattern. */
    MemPattern mem;

    /** Assigned at kernel finalization: byte PC of this instruction. */
    Pc pc = 0;

    /** Kernel-wide flat index (pc / kInstrBytes). */
    unsigned index = 0;

    /** True for loop back-edges (tripCount > 0). */
    bool isLoopBranch() const { return op == Opcode::BRA && tripCount > 0; }

    /** Human-readable one-line disassembly. */
    std::string toString() const;
};

} // namespace finereg

#endif // FINEREG_ISA_INSTRUCTION_HH
