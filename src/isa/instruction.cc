#include "isa/instruction.hh"

#include <sstream>

namespace finereg
{

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << "0x" << std::hex << pc << std::dec << ": " << opcodeName(op);
    if (dst >= 0)
        oss << " R" << dst;
    bool first = dst < 0;
    for (int src : srcs) {
        if (src < 0)
            continue;
        oss << (first ? " " : ", ") << 'R' << src;
        first = false;
    }
    if (op == Opcode::BRA || op == Opcode::JMP) {
        oss << " -> B" << targetBlock;
        if (tripCount > 0)
            oss << " (loop x" << tripCount << ")";
    }
    if (isMemory(op)) {
        oss << " [region " << mem.region << ", " << mem.transactions
            << " txn]";
    }
    return oss.str();
}

} // namespace finereg
