#include "isa/kernel.hh"

#include <sstream>

#include "common/log.hh"

namespace finereg
{

const Instruction &
Kernel::instrAt(Pc pc) const
{
    const unsigned idx = instrIndexOf(pc);
    if (idx >= instrs_.size())
        FINEREG_PANIC("PC 0x", pc, " beyond kernel ", name_);
    return instrs_[idx];
}

int
Kernel::blockOfInstr(unsigned instr_index) const
{
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const auto &blk = blocks_[b];
        if (instr_index >= blk.firstInstr &&
            instr_index < blk.firstInstr + blk.numInstrs) {
            return static_cast<int>(b);
        }
    }
    return -1;
}

std::string
Kernel::toString() const
{
    std::ostringstream oss;
    oss << "kernel " << name_ << ": " << instrs_.size() << " instrs, "
        << blocks_.size() << " blocks, " << regsPerThread_ << " regs/thread, "
        << threadsPerCta_ << " threads/CTA, " << shmemPerCta_
        << "B shmem/CTA, " << gridCtas_ << " CTAs\n";
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        oss << "B" << b << ":\n";
        const auto &blk = blocks_[b];
        for (unsigned i = blk.firstInstr; i < blk.firstInstr + blk.numInstrs;
             ++i) {
            oss << "  " << instrs_[i].toString() << '\n';
        }
    }
    return oss.str();
}

} // namespace finereg
