/**
 * @file
 * Kernel: the static program a grid of CTAs executes — a CFG of basic
 * blocks over the mini ISA plus the launch-time resource declaration
 * (registers/thread, threads/CTA, shared memory/CTA, grid size) that the CTA
 * dispatcher uses to enforce scheduling limits.
 */

#ifndef FINEREG_ISA_KERNEL_HH
#define FINEREG_ISA_KERNEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace finereg
{

namespace analysis
{
class KernelMutator;
} // namespace analysis

/** A straight-line sequence of instructions ending in a terminator. */
struct BasicBlock
{
    /** Indices into Kernel::instrs() of this block's instructions. */
    unsigned firstInstr = 0;
    unsigned numInstrs = 0;

    /** CFG successors (block indices); filled at finalization. */
    std::vector<int> succs;

    /** CFG predecessors (block indices); filled at finalization. */
    std::vector<int> preds;
};

/**
 * An immutable, finalized kernel. Construct through KernelBuilder, which
 * validates the CFG and assigns PCs.
 */
class Kernel
{
  public:
    const std::string &name() const { return name_; }

    const std::vector<Instruction> &instrs() const { return instrs_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    const Instruction &instrAt(Pc pc) const;
    unsigned instrIndexOf(Pc pc) const { return pc / kInstrBytes; }

    /** Block containing instruction @p instr_index. */
    int blockOfInstr(unsigned instr_index) const;

    /** Entry block index (always 0). */
    int entryBlock() const { return 0; }

    /** PC of the first instruction of block @p b. */
    Pc
    blockStartPc(int b) const
    {
        return static_cast<Pc>(blocks_[b].firstInstr * kInstrBytes);
    }

    // Launch-time resource declaration -------------------------------------

    /** Architectural registers statically allocated per thread. */
    unsigned regsPerThread() const { return regsPerThread_; }

    /** Threads per CTA (multiple of warp size). */
    unsigned threadsPerCta() const { return threadsPerCta_; }

    unsigned warpsPerCta() const { return threadsPerCta_ / kWarpSize; }

    /** Shared memory bytes per CTA. */
    unsigned shmemPerCta() const { return shmemPerCta_; }

    /** Number of CTAs in the launched grid. */
    unsigned gridCtas() const { return gridCtas_; }

    /** Register bytes one CTA reserves: regs x threads x 4B. */
    std::uint64_t
    regBytesPerCta() const
    {
        return std::uint64_t(regsPerThread_) * threadsPerCta_ * 4;
    }

    /** Warp-registers one CTA reserves (allocation granule of the RF). */
    unsigned
    warpRegsPerCta() const
    {
        return regsPerThread_ * warpsPerCta();
    }

    /** Total static instruction count. */
    unsigned staticInstrs() const { return instrs_.size(); }

    std::string toString() const;

  private:
    friend class KernelBuilder;

    /** Test-only: seeds known defects into cloned kernels for lint
     * self-checks (analysis/kernel_mutator.hh). */
    friend class analysis::KernelMutator;

    Kernel() = default;

    std::string name_;
    std::vector<Instruction> instrs_;
    std::vector<BasicBlock> blocks_;
    unsigned regsPerThread_ = 16;
    unsigned threadsPerCta_ = 256;
    unsigned shmemPerCta_ = 0;
    unsigned gridCtas_ = 64;
};

} // namespace finereg

#endif // FINEREG_ISA_KERNEL_HH
