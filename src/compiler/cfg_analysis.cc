#include "compiler/cfg_analysis.hh"

#include <algorithm>

#include "common/log.hh"

namespace finereg
{

CfgAnalysis::CfgAnalysis(const Kernel &kernel) : kernel_(kernel)
{
    computeRpo();
    computeIpdom();
}

void
CfgAnalysis::computeRpo()
{
    const int n = static_cast<int>(kernel_.blocks().size());
    std::vector<char> visited(n, 0);
    std::vector<int> postorder;
    postorder.reserve(n);

    // Iterative DFS from the entry block.
    struct Frame { int block; std::size_t next_succ; };
    std::vector<Frame> stack;
    stack.push_back({kernel_.entryBlock(), 0});
    visited[kernel_.entryBlock()] = 1;
    while (!stack.empty()) {
        Frame &frame = stack.back();
        const auto &succs = kernel_.blocks()[frame.block].succs;
        if (frame.next_succ < succs.size()) {
            const int succ = succs[frame.next_succ++];
            if (!visited[succ]) {
                visited[succ] = 1;
                stack.push_back({succ, 0});
            }
        } else {
            postorder.push_back(frame.block);
            stack.pop_back();
        }
    }

    rpo_.assign(postorder.rbegin(), postorder.rend());
    rpoIndex_.assign(n, -1);
    for (std::size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    for (int b = 0; b < n; ++b) {
        if (!visited[b])
            FINEREG_FATAL("kernel ", kernel_.name(), ": block B", b,
                          " unreachable from entry");
    }
}

void
CfgAnalysis::computeIpdom()
{
    // Cooper-Harvey-Kennedy dominators on the reverse CFG with a virtual
    // exit node (index n) joined to every EXIT-terminated block.
    const int n = static_cast<int>(kernel_.blocks().size());
    const int virtual_exit = n;

    // Post-dominator analysis traverses blocks in reverse control-flow
    // direction, so process in postorder of the forward CFG (i.e., reverse
    // of rpo_), starting nearest the exit.
    std::vector<int> order; // virtual-exit-first processing order
    for (auto it = rpo_.rbegin(); it != rpo_.rend(); ++it)
        order.push_back(*it);

    std::vector<int> idom(n + 1, -1);
    idom[virtual_exit] = virtual_exit;

    // Order index for intersection: exit blocks processed first get lower
    // numbers.
    std::vector<int> order_index(n + 1, -1);
    order_index[virtual_exit] = 0;
    for (std::size_t i = 0; i < order.size(); ++i)
        order_index[order[i]] = static_cast<int>(i) + 1;

    auto rsuccs = [&](int b) {
        // Successors in the reverse CFG = forward successors plus the
        // virtual exit for blocks that terminate the kernel.
        std::vector<int> out = kernel_.blocks()[b].succs;
        if (out.empty())
            out.push_back(virtual_exit);
        return out;
    };

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (order_index[a] > order_index[b])
                a = idom[a];
            while (order_index[b] > order_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : order) {
            int new_idom = -1;
            for (int s : rsuccs(b)) {
                if (idom[s] == -1)
                    continue;
                new_idom = new_idom == -1 ? s : intersect(new_idom, s);
            }
            if (new_idom == -1)
                continue;
            if (idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    ipdom_.assign(n, -1);
    for (int b = 0; b < n; ++b)
        ipdom_[b] = (idom[b] == virtual_exit || idom[b] == -1) ? -1 : idom[b];
}

bool
CfgAnalysis::postDominates(int a, int b) const
{
    // Walk the post-dominator tree upward from b.
    int cur = b;
    while (cur != -1) {
        if (cur == a)
            return true;
        cur = ipdom_[cur];
    }
    return false;
}

Pc
CfgAnalysis::reconvergencePc(int b) const
{
    const int pd = ipdom_[b];
    if (pd == -1) {
        // Reconverge at kernel end (one past the last instruction).
        return static_cast<Pc>(kernel_.staticInstrs() * kInstrBytes);
    }
    return kernel_.instrs()[kernel_.blocks()[pd].firstInstr].pc;
}

bool
CfgAnalysis::isBackEdge(int b, int target) const
{
    return rpoIndex_[target] <= rpoIndex_[b];
}

} // namespace finereg
