#include "compiler/live_info.hh"

namespace finereg
{

LiveRegisterTable::LiveRegisterTable(const Kernel &kernel)
{
    const LivenessAnalysis liveness(kernel);
    entries_ = liveness.allLiveIn();
    maxPc_ = static_cast<Pc>(kernel.staticInstrs() * kInstrBytes);
    const double regs = kernel.regsPerThread();
    meanLiveFraction_ =
        regs > 0 ? liveness.meanLiveCount() / regs : 0.0;
}

RegBitVec
LiveRegisterTable::lookup(Pc pc) const
{
    const unsigned idx = pc / kInstrBytes;
    if (idx >= entries_.size()) {
        // Warp ran past the end (completed): nothing live.
        return RegBitVec{};
    }
    return entries_[idx];
}

} // namespace finereg
