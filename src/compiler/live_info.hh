/**
 * @file
 * LiveRegisterTable: the kernel-launch-time artifact the paper's compiler
 * produces. One 64-bit live-register bit vector per static instruction,
 * stored in a reserved global-memory region (Sec. V-F: 12 bytes per static
 * instruction — 4 B PC + 8 B vector). The RMU fetches entries from here on
 * bit-vector-cache misses, paying off-chip latency and traffic.
 */

#ifndef FINEREG_COMPILER_LIVE_INFO_HH
#define FINEREG_COMPILER_LIVE_INFO_HH

#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "compiler/liveness.hh"
#include "isa/kernel.hh"

namespace finereg
{

class LiveRegisterTable
{
  public:
    /** Run liveness analysis on @p kernel and materialize the table. */
    explicit LiveRegisterTable(const Kernel &kernel);

    /** Live-register vector for a warp stalled at @p pc. */
    RegBitVec lookup(Pc pc) const;

    /** Count of live registers at @p pc (what the PCRF space check needs). */
    unsigned liveCount(Pc pc) const { return lookup(pc).count(); }

    unsigned staticInstrs() const { return entries_.size(); }

    /** Off-chip bytes the table occupies: 12 B per static instruction. */
    std::uint64_t
    storageBytes() const
    {
        return std::uint64_t(entries_.size()) * 12;
    }

    /** Mean live fraction relative to the kernel's static allocation. */
    double meanLiveFraction() const { return meanLiveFraction_; }

  private:
    std::vector<RegBitVec> entries_;
    Pc maxPc_ = 0;
    double meanLiveFraction_ = 0.0;
};

} // namespace finereg

#endif // FINEREG_COMPILER_LIVE_INFO_HH
