/**
 * @file
 * RegWidthTable: the per-register value-width claim the paper-style
 * compiler would ship alongside the live-register table — the input a
 * static-compression PCRF (Angerd et al., PAPERS.md) encodes against.
 * Computed with a deliberately simple flow-INSENSITIVE interval fixpoint
 * (one abstract value per register for the whole kernel, every def joined
 * in), which is sound but coarser than the analysis subsystem's
 * flow-sensitive value-range pass. The compressibility pass compares the
 * two statically (claim narrower than derived is suspicious), and
 * ref/value_validator.hh proves every observed written value fits the
 * claimed width — the same two-sided discipline liveness.cc lives under.
 */

#ifndef FINEREG_COMPILER_REG_WIDTH_HH
#define FINEREG_COMPILER_REG_WIDTH_HH

#include <vector>

#include "isa/kernel.hh"

namespace finereg
{

class RegWidthTable
{
  public:
    /** Run the flow-insensitive width analysis on @p kernel. */
    explicit RegWidthTable(const Kernel &kernel);

    /**
     * Claimed bits needed for any value a def ever writes into @p reg.
     * 32 for never-defined registers (they hold full-width launch
     * hashes); 0 means every def writes zero.
     */
    unsigned claimedBits(unsigned reg) const { return bits_[reg]; }

    unsigned numRegs() const { return static_cast<unsigned>(bits_.size()); }

    /** Registers claimed narrower than the native 32-bit word. */
    unsigned narrowRegs() const;

    /**
     * Off-chip bytes the claim table occupies: one byte per register,
     * rounded to the 4 B table-entry granule the RMU metadata uses.
     */
    std::uint64_t
    storageBytes() const
    {
        return (std::uint64_t(bits_.size()) + 3) & ~3ull;
    }

  private:
    std::vector<unsigned> bits_;
};

} // namespace finereg

#endif // FINEREG_COMPILER_REG_WIDTH_HH
