/**
 * @file
 * Control-flow-graph analysis over a Kernel: reverse post-order, immediate
 * post-dominators, and branch reconvergence points. The simulator's SIMT
 * stack uses the reconvergence PCs (PDOM scheme, Sec. V-A / Fig. 9), and the
 * liveness pass uses the traversal orders.
 */

#ifndef FINEREG_COMPILER_CFG_ANALYSIS_HH
#define FINEREG_COMPILER_CFG_ANALYSIS_HH

#include <vector>

#include "common/types.hh"
#include "isa/kernel.hh"

namespace finereg
{

class CfgAnalysis
{
  public:
    explicit CfgAnalysis(const Kernel &kernel);

    /** Immediate post-dominator of block @p b, or -1 for exit blocks. */
    int ipdom(int b) const { return ipdom_[b]; }

    /** True if @p a post-dominates @p b. */
    bool postDominates(int a, int b) const;

    /**
     * Reconvergence PC for the branch terminating block @p b: the first
     * instruction of the immediate post-dominator. Diverged warps rejoin
     * there. Returns the kernel-end PC for blocks post-dominated only by
     * exit.
     */
    Pc reconvergencePc(int b) const;

    /** Blocks in reverse post-order from the entry. */
    const std::vector<int> &rpo() const { return rpo_; }

    /** True if the edge b -> target is a back edge (loop). */
    bool isBackEdge(int b, int target) const;

  private:
    void computeRpo();
    void computeIpdom();

    const Kernel &kernel_;
    std::vector<int> rpo_;
    std::vector<int> rpoIndex_;
    std::vector<int> ipdom_;
};

} // namespace finereg

#endif // FINEREG_COMPILER_CFG_ANALYSIS_HH
