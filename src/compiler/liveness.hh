/**
 * @file
 * Backward liveness dataflow over a kernel CFG (Sec. IV-B, V-A, Figs. 7/9).
 * A register is live at a PC if some path from that PC uses it as a source
 * before redefining it. The pass iterates blocks to a fixpoint, so loops and
 * diverging branches are handled exactly; the result is one 64-bit bit
 * vector per static instruction — the format FineReg's RMU consumes.
 */

#ifndef FINEREG_COMPILER_LIVENESS_HH
#define FINEREG_COMPILER_LIVENESS_HH

#include <vector>

#include "common/bitvec.hh"
#include "isa/kernel.hh"

namespace finereg
{

class LivenessAnalysis
{
  public:
    explicit LivenessAnalysis(const Kernel &kernel);

    /**
     * Registers live immediately *before* instruction @p instr_index
     * executes — exactly the set a stalled warp at this PC must preserve.
     */
    RegBitVec liveIn(unsigned instr_index) const
    {
        return liveIn_[instr_index];
    }

    /** Registers live immediately after instruction @p instr_index. */
    RegBitVec liveOut(unsigned instr_index) const
    {
        return liveOut_[instr_index];
    }

    /** Live-in vector for a PC (convenience for the simulator). */
    RegBitVec liveAtPc(Pc pc) const;

    /** All per-instruction live-in vectors, indexed by flat instruction. */
    const std::vector<RegBitVec> &allLiveIn() const { return liveIn_; }

    /** Maximum live-in count over all instructions. */
    unsigned maxLiveCount() const;

    /** Mean live-in count over all instructions. */
    double meanLiveCount() const;

    /** Number of fixpoint iterations the solver needed (for tests). */
    unsigned iterations() const { return iterations_; }

  private:
    static RegBitVec useSet(const Instruction &instr);
    static RegBitVec defSet(const Instruction &instr);

    void solve();

    const Kernel &kernel_;
    std::vector<RegBitVec> liveIn_;
    std::vector<RegBitVec> liveOut_;
    unsigned iterations_ = 0;
};

} // namespace finereg

#endif // FINEREG_COMPILER_LIVENESS_HH
