#include "compiler/reg_width.hh"

#include "analysis/abstract_interp.hh"
#include "common/log.hh"
#include "isa/opcode.hh"

namespace finereg
{

namespace
{

using analysis::Interval;
using analysis::evalInterval;

/** Rounds of exact joining before every still-moving register widens. */
constexpr unsigned kExactRounds = 8;

Interval
operandOf(const std::vector<Interval> &env, int src)
{
    if (src < 0)
        return Interval::constant(0);
    return env[std::size_t(src)];
}

} // namespace

RegWidthTable::RegWidthTable(const Kernel &kernel)
{
    const unsigned nregs = kernel.regsPerThread();
    bits_.assign(nregs, 32);

    // One interval per register, flow-insensitive: every def's abstract
    // result joins into its destination until nothing moves. The operand
    // environment is the same global map, so the result over-approximates
    // every execution order — including ones the CFG forbids — which is
    // exactly what makes the claim safely coarser than the flow-sensitive
    // derivation it is checked against.
    std::vector<Interval> env(nregs, Interval::bottom());
    const auto &instrs = kernel.instrs();

    bool changed = true;
    for (unsigned round = 0; changed; ++round) {
        if (round > kExactRounds + 2 * nregs + 8) {
            FINEREG_PANIC("reg-width fixpoint failed to converge on kernel ",
                          kernel.name());
        }
        changed = false;
        for (const Instruction &instr : instrs) {
            if (instr.dst < 0)
                continue;
            Interval def;
            switch (funcUnitOf(instr.op)) {
              case FuncUnit::ALU:
              case FuncUnit::SFU:
                def = evalInterval(instr.op, operandOf(env, instr.srcs[0]),
                                   operandOf(env, instr.srcs[1]),
                                   operandOf(env, instr.srcs[2]));
                break;
              case FuncUnit::MEM:
                def = isLoad(instr.op) ? Interval::top() : Interval::bottom();
                break;
              case FuncUnit::CTRL:
                def = Interval::bottom();
                break;
            }
            const Interval joined = env[std::size_t(instr.dst)].join(def);
            if (!(joined == env[std::size_t(instr.dst)])) {
                env[std::size_t(instr.dst)] =
                    round >= kExactRounds
                        ? env[std::size_t(instr.dst)].widen(joined)
                        : joined;
                changed = true;
            }
        }
    }

    for (unsigned r = 0; r < nregs; ++r) {
        // Never-defined registers hold launch hashes: full width.
        bits_[r] = env[r].isBottom() ? 32 : env[r].bitsNeeded();
    }
}

unsigned
RegWidthTable::narrowRegs() const
{
    unsigned n = 0;
    for (const unsigned b : bits_)
        n += b < 32 ? 1 : 0;
    return n;
}

} // namespace finereg
