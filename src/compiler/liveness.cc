#include "compiler/liveness.hh"

#include "common/log.hh"

namespace finereg
{

LivenessAnalysis::LivenessAnalysis(const Kernel &kernel) : kernel_(kernel)
{
    solve();
}

RegBitVec
LivenessAnalysis::useSet(const Instruction &instr)
{
    RegBitVec use;
    for (int src : instr.srcs) {
        if (src >= 0)
            use.set(static_cast<RegIndex>(src));
    }
    return use;
}

RegBitVec
LivenessAnalysis::defSet(const Instruction &instr)
{
    RegBitVec def;
    if (instr.dst >= 0)
        def.set(static_cast<RegIndex>(instr.dst));
    return def;
}

void
LivenessAnalysis::solve()
{
    const auto &instrs = kernel_.instrs();
    const auto &blocks = kernel_.blocks();
    const std::size_t n = instrs.size();
    liveIn_.assign(n, RegBitVec{});
    liveOut_.assign(n, RegBitVec{});

    // Block-level live-in summary for fast propagation across edges.
    std::vector<RegBitVec> block_live_in(blocks.size());

    bool changed = true;
    iterations_ = 0;
    while (changed) {
        changed = false;
        ++iterations_;
        if (iterations_ > 10 * blocks.size() + 64)
            FINEREG_PANIC("liveness failed to converge on kernel ",
                          kernel_.name());

        // Walk blocks in reverse index order (a good approximation of
        // reverse control flow for builder-produced kernels); correctness
        // comes from iterating to fixpoint regardless of order.
        for (int b = static_cast<int>(blocks.size()) - 1; b >= 0; --b) {
            const auto &blk = blocks[b];

            // Live-out of the block's last instruction is the union of the
            // live-in of every successor block's first instruction.
            RegBitVec out;
            for (int succ : blk.succs)
                out |= block_live_in[succ];

            for (int i = static_cast<int>(blk.firstInstr + blk.numInstrs) - 1;
                 i >= static_cast<int>(blk.firstInstr); --i) {
                const Instruction &instr = instrs[i];
                const RegBitVec new_out = out;
                const RegBitVec new_in =
                    useSet(instr) | new_out.minus(defSet(instr));
                if (new_in != liveIn_[i] || new_out != liveOut_[i]) {
                    liveIn_[i] = new_in;
                    liveOut_[i] = new_out;
                    changed = true;
                }
                out = new_in;
            }
            block_live_in[b] = liveIn_[blk.firstInstr];
        }
    }
}

RegBitVec
LivenessAnalysis::liveAtPc(Pc pc) const
{
    const unsigned idx = kernel_.instrIndexOf(pc);
    if (idx >= liveIn_.size()) {
        // Stalled past the last instruction: nothing is live.
        return RegBitVec{};
    }
    return liveIn_[idx];
}

unsigned
LivenessAnalysis::maxLiveCount() const
{
    unsigned max = 0;
    for (const auto &v : liveIn_)
        max = std::max(max, v.count());
    return max;
}

double
LivenessAnalysis::meanLiveCount() const
{
    if (liveIn_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &v : liveIn_)
        sum += v.count();
    return sum / static_cast<double>(liveIn_.size());
}

} // namespace finereg
