/**
 * @file
 * Golden end-state snapshots: the architectural end state (register values,
 * store images, retired counts) of every Table II workload under the
 * baseline policy is pinned by fingerprint in tests/golden/. Any change to
 * execution semantics — ISA interpretation, RNG draw order, address
 * generation, value tracking — shows up as a fingerprint mismatch here
 * before it can silently shift the differential oracle's ground truth.
 *
 * Regenerate intentionally with:  UPDATE_GOLDEN=1 ./finereg_tests \
 *     --gtest_filter='GoldenEndState.*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/simulator.hh"
#include "ref/arch_state.hh"
#include "workloads/suite.hh"

#ifndef FINEREG_GOLDEN_DIR
#error "FINEREG_GOLDEN_DIR must point at tests/golden"
#endif

namespace finereg
{
namespace
{

constexpr double kScale = 0.02;

GpuConfig
goldenConfig()
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = PolicyKind::Baseline;
    config.trackValues = true;
    return config;
}

std::string
goldenPath(const std::string &abbrev)
{
    return std::string(FINEREG_GOLDEN_DIR) + "/" + abbrev + ".golden";
}

/** Read the pinned fingerprint; 0 when the file is missing/unparsable. */
std::uint64_t
readGolden(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream iss(line);
        std::string key;
        if (iss >> key && key == "fingerprint") {
            std::string value;
            iss >> value;
            return std::strtoull(value.c_str(), nullptr, 0);
        }
    }
    return 0;
}

void
writeGolden(const std::string &path, const SuiteEntry &entry,
            const ArchState &state)
{
    std::ofstream out(path);
    out << "# golden end state: " << entry.abbrev
        << " policy=baseline scale=" << kScale << " sms=2 seed=0x5eedf00d\n"
        << "# " << state.summary() << "\n"
        << "fingerprint 0x" << std::hex << state.fingerprint() << "\n";
}

TEST(GoldenEndState, EveryWorkloadMatchesItsSnapshot)
{
    const bool update = std::getenv("UPDATE_GOLDEN") != nullptr;
    const GpuConfig config = goldenConfig();

    for (const SuiteEntry &entry : Suite::all()) {
        const auto kernel = Suite::makeKernel(entry, kScale);
        const SimResult result = Simulator::run(config, *kernel);
        ASSERT_FALSE(result.failed)
            << entry.abbrev << ": " << result.failureReason;
        ASSERT_FALSE(result.hitCycleLimit) << entry.abbrev;
        ASSERT_NE(result.archState, nullptr) << entry.abbrev;

        const std::string path = goldenPath(entry.abbrev);
        if (update) {
            writeGolden(path, entry, *result.archState);
            continue;
        }
        const std::uint64_t pinned = readGolden(path);
        ASSERT_NE(pinned, 0u)
            << "missing golden snapshot " << path
            << " — run with UPDATE_GOLDEN=1 to create it";
        EXPECT_EQ(result.archState->fingerprint(), pinned)
            << entry.abbrev << ": end state changed ("
            << result.archState->summary()
            << "); if intentional, regenerate with UPDATE_GOLDEN=1";
    }
}

} // namespace
} // namespace finereg
