/**
 * @file
 * Warp and CTA tests: SIMT-stack divergence/reconvergence, exit handling,
 * barriers, stall detection, and the warp scheduler policies.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sm/cta.hh"
#include "sm/kernel_context.hh"
#include "sm/warp.hh"
#include "sm/warp_scheduler.hh"

namespace finereg
{
namespace
{

std::unique_ptr<Kernel>
makeSimpleKernel()
{
    KernelBuilder b("warp_test");
    b.regsPerThread(8).threadsPerCta(64);
    b.newBlock();
    b.alu(Opcode::IADD, 0, 1);
    b.alu(Opcode::IADD, 1, 0);
    b.exit();
    return b.finalize();
}

TEST(Warp, StartsAtPcZeroFullMask)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    Warp &warp = *cta.warps()[0];
    EXPECT_EQ(warp.pc(), 0u);
    EXPECT_EQ(warp.activeMask(), 0xffffffffu);
    EXPECT_EQ(warp.activeLanes(), 32u);
    EXPECT_FALSE(warp.finished());
}

TEST(Warp, DivergePushesTakenPathFirst)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    Warp &warp = *cta.warps()[0];

    warp.diverge(/*taken_pc=*/16, /*taken_mask=*/0x0000ffff,
                 /*fall_pc=*/8, /*reconv_pc=*/24);
    EXPECT_EQ(warp.simtStack().size(), 3u);
    EXPECT_EQ(warp.pc(), 16u); // taken path executes first
    EXPECT_EQ(warp.activeLanes(), 16u);
}

TEST(Warp, ReconvergeMergesPaths)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    Warp &warp = *cta.warps()[0];
    warp.diverge(16, 0x0000ffff, 8, 24);

    // Taken path reaches the reconvergence PC: pop to the fall path.
    warp.setPc(24);
    warp.reconvergeIfNeeded();
    EXPECT_EQ(warp.simtStack().size(), 2u);
    EXPECT_EQ(warp.pc(), 8u);
    EXPECT_EQ(warp.activeLanes(), 16u);

    // Fall path reaches it too: pop to the merged base entry.
    warp.setPc(24);
    warp.reconvergeIfNeeded();
    EXPECT_EQ(warp.simtStack().size(), 1u);
    EXPECT_EQ(warp.pc(), 24u);
    EXPECT_EQ(warp.activeLanes(), 32u);
}

TEST(Warp, ExitOnDivergedPathPopsOnly)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    Warp &warp = *cta.warps()[0];
    warp.diverge(16, 0x1, 8, 24);
    // Stack: [base(reconv), fall, taken]. Exits pop one level at a time;
    // only exiting the base entry finishes the warp.
    warp.exitCurrentPath(); // taken path exits
    EXPECT_FALSE(warp.finished());
    warp.exitCurrentPath(); // fall path exits
    EXPECT_FALSE(warp.finished());
    EXPECT_EQ(warp.simtStack().size(), 1u);
    warp.exitCurrentPath(); // base entry exits
    EXPECT_TRUE(warp.finished());
}

TEST(WarpDeath, DivergeNeedsRealSplit)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    EXPECT_DEATH(cta.warps()[0]->diverge(16, 0, 8, 24), "lane split");
}

TEST(Cta, CreatesWarpsPerKernelShape)
{
    const auto k = makeSimpleKernel(); // 64 threads = 2 warps
    KernelContext ctx(*k);
    Cta cta(3, 1, ctx);
    EXPECT_EQ(cta.numWarps(), 2u);
    EXPECT_EQ(cta.gridId(), 3u);
    EXPECT_EQ(cta.launchSeq(), 1u);
    EXPECT_EQ(cta.state(), CtaState::Active);
}

TEST(Cta, BarrierReleasesWhenAllArrive)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    EXPECT_FALSE(cta.arriveAtBarrier());
    EXPECT_TRUE(cta.arriveAtBarrier()); // both warps arrived
}

TEST(Cta, BarrierIgnoresFinishedWarps)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    cta.noteWarpFinished();
    EXPECT_TRUE(cta.arriveAtBarrier()); // only one live warp
}

TEST(Cta, FullyStalledOnlyWhenAllWarpsMemBlocked)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    EXPECT_FALSE(cta.fullyStalledOnMemory(10));

    // Warp 0 blocked on a global load feeding its current instruction
    // (instr 0 reads R1).
    cta.warps()[0]->scoreboard().recordWrite(1, 1000, true);
    EXPECT_FALSE(cta.fullyStalledOnMemory(10)); // warp 1 still runnable

    cta.warps()[1]->scoreboard().recordWrite(1, 800, true);
    EXPECT_TRUE(cta.fullyStalledOnMemory(10));

    // After one load returns the CTA is no longer fully stalled.
    EXPECT_FALSE(cta.fullyStalledOnMemory(900));
}

TEST(Cta, EstimateReadyCycleIsMedianWake)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    cta.warps()[0]->scoreboard().recordWrite(1, 400, true);
    cta.warps()[1]->scoreboard().recordWrite(1, 1000, true);
    // With two warps, ready at the first (index (2-1)/2 = 0) wake.
    EXPECT_EQ(cta.estimateReadyCycle(10), 400u);
}

TEST(Cta, ExecutionEpisodeLifecycle)
{
    const auto k = makeSimpleKernel();
    KernelContext ctx(*k);
    Cta cta(0, 0, ctx);
    EXPECT_EQ(cta.closeExecutionEpisode(100), 0u); // none open
    cta.startExecutionEpisode(100);
    EXPECT_EQ(cta.closeExecutionEpisode(350), 250u);
    EXPECT_EQ(cta.closeExecutionEpisode(400), 0u); // already closed
    cta.startExecutionEpisodeIfClosed(500);
    EXPECT_EQ(cta.closeExecutionEpisode(600), 100u);
}

// ---- WarpScheduler ----------------------------------------------------------

struct SchedulerFixture : public ::testing::Test
{
    SchedulerFixture()
        : kernel(makeSimpleKernel()), ctx(*kernel), old_cta(0, 0, ctx),
          new_cta(1, 1, ctx)
    {
    }

    std::unique_ptr<Kernel> kernel;
    KernelContext ctx;
    Cta old_cta;
    Cta new_cta;
};

TEST_F(SchedulerFixture, GtoSticksWithGreedyWarp)
{
    WarpScheduler sched(SchedKind::GTO, 0);
    Warp *a = old_cta.warps()[0].get();
    Warp *b = old_cta.warps()[1].get();
    sched.addWarp(a);
    sched.addWarp(b);

    Warp *first = sched.pick([](Warp *) { return true; });
    ASSERT_NE(first, nullptr);
    // Greedy: the same warp is picked while it remains issuable.
    EXPECT_EQ(sched.pick([](Warp *) { return true; }), first);
    // When the greedy warp stalls, the scheduler moves on.
    Warp *other = sched.pick([&](Warp *w) { return w != first; });
    EXPECT_NE(other, first);
}

TEST_F(SchedulerFixture, GtoPrefersOldestCta)
{
    WarpScheduler sched(SchedKind::GTO, 0);
    sched.addWarp(new_cta.warps()[0].get());
    sched.addWarp(old_cta.warps()[0].get());
    Warp *pick = sched.pick([](Warp *) { return true; });
    ASSERT_NE(pick, nullptr);
    EXPECT_EQ(pick->cta(), &old_cta); // launchSeq 0 beats 1
}

TEST_F(SchedulerFixture, LrrRotates)
{
    WarpScheduler sched(SchedKind::LRR, 0);
    Warp *a = old_cta.warps()[0].get();
    Warp *b = old_cta.warps()[1].get();
    sched.addWarp(a);
    sched.addWarp(b);
    Warp *first = sched.pick([](Warp *) { return true; });
    Warp *second = sched.pick([](Warp *) { return true; });
    EXPECT_NE(first, second);
    EXPECT_EQ(sched.pick([](Warp *) { return true; }), first);
}

TEST_F(SchedulerFixture, RemoveWarpForgetsGreedy)
{
    WarpScheduler sched(SchedKind::GTO, 0);
    Warp *a = old_cta.warps()[0].get();
    sched.addWarp(a);
    EXPECT_EQ(sched.pick([](Warp *) { return true; }), a);
    sched.removeWarp(a);
    EXPECT_EQ(sched.pick([](Warp *) { return true; }), nullptr);
}

TEST_F(SchedulerFixture, EmptySchedulerReturnsNull)
{
    WarpScheduler sched(SchedKind::GTO, 0);
    EXPECT_EQ(sched.pick([](Warp *) { return true; }), nullptr);
}

TEST_F(SchedulerFixture, NoIssuableWarpReturnsNull)
{
    WarpScheduler sched(SchedKind::LRR, 0);
    sched.addWarp(old_cta.warps()[0].get());
    EXPECT_EQ(sched.pick([](Warp *) { return false; }), nullptr);
}

} // namespace
} // namespace finereg
