/**
 * @file
 * Simulator facade and experiment-helper tests: SimResult population, the
 * unified-memory config transform (Sec. VI-G3), normalization helpers,
 * and probe plumbing (Fig. 5 usage tracking, Table III stall episodes).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/simulator.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

TEST(Simulator, ResultFieldsPopulated)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    const SimResult r = Experiment::runApp("MC", config, 0.05);
    EXPECT_EQ(r.kernelName, "MC");
    EXPECT_EQ(r.policyName, "Baseline");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.avgResidentCtas, 0.0);
    EXPECT_GT(r.avgActiveThreads, 0.0);
    EXPECT_GT(r.dramBytesData, 0u);
    EXPECT_GT(r.l1Hits + r.l1Misses, 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_FALSE(r.hitCycleLimit);
}

TEST(Simulator, UsageTrackingProbe)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    config.usageTracking = true;
    const SimResult r = Experiment::runApp("MC", config, 0.1);
    EXPECT_GT(r.rfUsageMean, 0.0);
    EXPECT_LT(r.rfUsageMean, 1.0);
    EXPECT_LE(r.rfUsageMin, r.rfUsageMean);
    EXPECT_GE(r.rfUsageMax, r.rfUsageMean);
}

TEST(Simulator, StallProbe)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    config.stallProbe = true;
    const SimResult r = Experiment::runApp("MC", config, 0.1);
    EXPECT_GT(r.stallEpisodes, 0u);
    EXPECT_GT(r.stallEpisodeMean, 0.0);
}

TEST(Simulator, ProbesOffByDefault)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    const SimResult r = Experiment::runApp("MC", config, 0.05);
    EXPECT_DOUBLE_EQ(r.rfUsageMean, 0.0);
    EXPECT_EQ(r.stallEpisodes, 0u);
}

TEST(Simulator, UnifiedMemoryTransformFineReg)
{
    GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    config.policy.unifiedMemory = true;
    const auto kernel = Suite::makeKernel(Suite::byName("SG"));
    const GpuConfig um = Simulator::applyUnifiedMemory(config, *kernel);
    // ACRF becomes the dedicated register file.
    EXPECT_EQ(um.sm.regFileBytes, config.policy.acrfBytes);
    // The 272 KB pool is fully distributed.
    EXPECT_EQ(um.policy.pcrfBytes + um.sm.shmemBytes +
                  um.mem.l1.sizeBytes,
              config.policy.umBytes);
    EXPECT_GE(um.mem.l1.sizeBytes, 48u * 1024);
}

TEST(Simulator, UnifiedMemoryGrowsL1ForShmemLightKernels)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    config.policy.unifiedMemory = true;
    const auto kernel = Suite::makeKernel(Suite::byName("AT")); // no shmem
    const GpuConfig um = Simulator::applyUnifiedMemory(config, *kernel);
    EXPECT_GT(um.mem.l1.sizeBytes, 48u * 1024);
    EXPECT_EQ(um.sm.regFileBytes, config.sm.regFileBytes);
}

TEST(Simulator, UnifiedMemoryRespectsShmemDemand)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    config.policy.unifiedMemory = true;
    const auto kernel = Suite::makeKernel(Suite::byName("TA")); // 32 KB/CTA
    const GpuConfig um = Simulator::applyUnifiedMemory(config, *kernel);
    EXPECT_GE(um.sm.shmemBytes, 64u * 1024);
}

TEST(Experiment, SpeedupHelper)
{
    SimResult a, b;
    a.ipc = 3.0;
    b.ipc = 2.0;
    EXPECT_DOUBLE_EQ(Experiment::speedup(a, b), 1.5);
    b.ipc = 0.0;
    EXPECT_DOUBLE_EQ(Experiment::speedup(a, b), 0.0);
}

TEST(Experiment, NormalizedIpcPairsByName)
{
    SimResult a1, a2, b1, b2;
    a1.kernelName = "X";
    a1.ipc = 4.0;
    a2.kernelName = "Y";
    a2.ipc = 1.0;
    b1.kernelName = "X";
    b1.ipc = 2.0;
    b2.kernelName = "Y";
    b2.ipc = 2.0;
    const auto norm =
        Experiment::normalizedIpc({a1, a2}, {b1, b2});
    EXPECT_DOUBLE_EQ(norm.at("X"), 2.0);
    EXPECT_DOUBLE_EQ(norm.at("Y"), 0.5);
    EXPECT_DOUBLE_EQ(Experiment::meanOverApps(norm), 1.25);
    EXPECT_DOUBLE_EQ(Experiment::meanOverApps(norm, {"X"}), 2.0);
}

TEST(Experiment, ConfigForSetsPolicy)
{
    const GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    EXPECT_EQ(config.policy.kind, PolicyKind::FineReg);
    EXPECT_EQ(config.numSms, 16u);
    EXPECT_EQ(config.sm.regFileBytes, 256u * 1024);
}

TEST(GpuConfigTest, Table1Defaults)
{
    const GpuConfig config = GpuConfig::gtx980();
    EXPECT_EQ(config.numSms, 16u);
    EXPECT_EQ(config.sm.maxWarps, 64u);
    EXPECT_EQ(config.sm.maxThreads, 2048u);
    EXPECT_EQ(config.sm.maxCtas, 32u);
    EXPECT_EQ(config.sm.numSchedulers, 4u);
    EXPECT_EQ(config.sm.sched, SchedKind::GTO);
    EXPECT_EQ(config.sm.regFileBytes, 256u * 1024);
    EXPECT_EQ(config.sm.shmemBytes, 96u * 1024);
    EXPECT_EQ(config.mem.l1.sizeBytes, 48u * 1024);
    EXPECT_EQ(config.mem.l2.sizeBytes, 2048u * 1024);
    // 352.5 GB/s at 1.126 GHz.
    EXPECT_NEAR(config.mem.dram.bytesPerCycle, 313.0, 1.0);
}

TEST(GpuConfigTest, ToStringRendersTable1)
{
    const std::string text = GpuConfig::gtx980().toString();
    EXPECT_NE(text.find("16"), std::string::npos);
    EXPECT_NE(text.find("Greedy-then-oldest"), std::string::npos);
    EXPECT_NE(text.find("256KB"), std::string::npos);
}

} // namespace
} // namespace finereg
