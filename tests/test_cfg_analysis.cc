/**
 * @file
 * CFG analysis tests: post-dominators and reconvergence points on the
 * shapes the paper's compiler must handle (Fig. 9: diverging branch and
 * loop), plus nesting and multi-exit cases.
 */

#include <gtest/gtest.h>

#include "compiler/cfg_analysis.hh"
#include "isa/kernel_builder.hh"

namespace finereg
{
namespace
{

/** Fig. 9(a): B1 branches to B2/B3, reconverging at B4. */
std::unique_ptr<Kernel>
makeDiamond()
{
    KernelBuilder b("diamond");
    b.regsPerThread(8);
    b.newBlock(); // B0: entry
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock(); // B1: the diverging branch
    b.branch(3, 0, 0.5, 0.5);
    b.newBlock(); // B2: else path
    b.alu(Opcode::IADD, 1, 0);
    b.jump(4);
    b.newBlock(); // B3: then path
    b.alu(Opcode::IMUL, 1, 0);
    b.newBlock(); // B4: re-convergence point
    b.exit();
    return b.finalize();
}

TEST(CfgAnalysis, DiamondIpdom)
{
    const auto k = makeDiamond();
    CfgAnalysis cfg(*k);
    EXPECT_EQ(cfg.ipdom(0), 1);
    EXPECT_EQ(cfg.ipdom(1), 4); // the branch reconverges at B4
    EXPECT_EQ(cfg.ipdom(2), 4);
    EXPECT_EQ(cfg.ipdom(3), 4);
    EXPECT_EQ(cfg.ipdom(4), -1); // exit block
}

TEST(CfgAnalysis, DiamondReconvergencePc)
{
    const auto k = makeDiamond();
    CfgAnalysis cfg(*k);
    EXPECT_EQ(cfg.reconvergencePc(1), k->blockStartPc(4));
}

TEST(CfgAnalysis, PostDominatesIsReflexiveAndTransitive)
{
    const auto k = makeDiamond();
    CfgAnalysis cfg(*k);
    EXPECT_TRUE(cfg.postDominates(1, 1));
    EXPECT_TRUE(cfg.postDominates(4, 0));
    EXPECT_TRUE(cfg.postDominates(4, 2));
    EXPECT_FALSE(cfg.postDominates(2, 1)); // else path does not pdom branch
    EXPECT_FALSE(cfg.postDominates(3, 2));
}

/** Fig. 9(b): loop with body visited once by the analysis. */
std::unique_ptr<Kernel>
makeLoop()
{
    KernelBuilder b("loop");
    b.regsPerThread(8);
    b.newBlock(); // B0
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock(); // B1: loop body
    b.alu(Opcode::IADD, 0, 0);
    b.loopBranch(1, 0, 4);
    b.newBlock(); // B2: after loop
    b.exit();
    return b.finalize();
}

TEST(CfgAnalysis, LoopIpdom)
{
    const auto k = makeLoop();
    CfgAnalysis cfg(*k);
    EXPECT_EQ(cfg.ipdom(0), 1);
    EXPECT_EQ(cfg.ipdom(1), 2);
    EXPECT_EQ(cfg.ipdom(2), -1);
}

TEST(CfgAnalysis, LoopBackEdgeDetected)
{
    const auto k = makeLoop();
    CfgAnalysis cfg(*k);
    EXPECT_TRUE(cfg.isBackEdge(1, 1));
    EXPECT_FALSE(cfg.isBackEdge(0, 1));
}

TEST(CfgAnalysis, RpoStartsAtEntryAndCoversAll)
{
    const auto k = makeDiamond();
    CfgAnalysis cfg(*k);
    ASSERT_EQ(cfg.rpo().size(), 5u);
    EXPECT_EQ(cfg.rpo().front(), 0);
}

/** Nested diamond: outer branch contains an inner diamond on one path. */
TEST(CfgAnalysis, NestedDiamonds)
{
    KernelBuilder b("nested");
    b.regsPerThread(8);
    b.newBlock();                 // B0: outer branch
    b.branch(5, 0, 0.5, 0.2);     // taken -> B5
    b.newBlock();                 // B1: outer else, inner branch
    b.branch(3, 1, 0.5, 0.2);     // taken -> B3
    b.newBlock();                 // B2: inner else
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock();                 // B3: inner then (fall from B2 too)
    b.alu(Opcode::IMUL, 0, 1);
    b.newBlock();                 // B4: inner reconvergence
    b.alu(Opcode::FADD, 0, 1);
    b.newBlock();                 // B5: outer reconvergence
    b.exit();
    const auto k = b.finalize();
    CfgAnalysis cfg(*k);
    EXPECT_EQ(cfg.ipdom(1), 3); // inner branch reconverges at B3 here
    EXPECT_EQ(cfg.ipdom(0), 5);
    EXPECT_TRUE(cfg.postDominates(5, 2));
}

/** A branch whose both paths exit: reconvergence is the kernel end. */
TEST(CfgAnalysis, BranchWithExitingPaths)
{
    KernelBuilder b("exiting");
    b.regsPerThread(8);
    b.newBlock();             // B0
    b.branch(2, 0, 0.5, 0.1);
    b.newBlock();             // B1
    b.exit();
    b.newBlock();             // B2
    b.exit();
    const auto k = b.finalize();
    CfgAnalysis cfg(*k);
    EXPECT_EQ(cfg.ipdom(0), -1);
    EXPECT_EQ(cfg.reconvergencePc(0),
              static_cast<Pc>(k->staticInstrs() * kInstrBytes));
}

} // namespace
} // namespace finereg
