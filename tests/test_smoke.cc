/**
 * @file
 * End-to-end smoke tests: every policy runs every-other suite app to
 * completion without panics, completing all CTAs.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace finereg
{
namespace
{

TEST(Smoke, BaselineRunsTinyKernel)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    const SimResult result = Experiment::runApp("BF", config, 0.1);
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.instructions, 0u);
}

class SmokeAllPolicies : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(SmokeAllPolicies, CompletesSuiteSample)
{
    GpuConfig config = Experiment::configFor(GetParam());
    for (const char *app : {"BF", "CS", "SG", "TA"}) {
        const SimResult result = Experiment::runApp(app, config, 0.1);
        EXPECT_FALSE(result.hitCycleLimit) << app;
        EXPECT_GT(result.ipc, 0.0) << app;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SmokeAllPolicies,
    ::testing::Values(PolicyKind::Baseline, PolicyKind::VirtualThread,
                      PolicyKind::RegDram, PolicyKind::RegMutex,
                      PolicyKind::FineReg));

} // namespace
} // namespace finereg
