/**
 * @file
 * Policy behaviour tests: each scheme's signature effects on a crafted
 * scheduler-limited streaming kernel — VT grows residency on-chip,
 * Reg+DRAM generates CTA-context traffic, RegMutex partitions the RF and
 * suffers SRP pressure, FineReg compresses pending CTAs into the PCRF and
 * keeps the Table IV status monitor consistent.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "policies/finereg_policy.hh"
#include "policies/regmutex_policy.hh"
#include "sm/gpu.hh"
#include "verify/sim_error.hh"

namespace finereg
{
namespace
{

/**
 * A Type-S-style kernel: small register/shmem footprint, long memory
 * stalls, so the CTA-slot limit binds and switching pays off.
 */
std::unique_ptr<Kernel>
streamingKernel(unsigned grid = 256, unsigned regs = 12)
{
    KernelBuilder b("streaming");
    b.regsPerThread(regs).threadsPerCta(64).gridCtas(grid);
    MemPattern stream;
    stream.footprint = 64ull << 20;
    stream.stride = 128;
    b.newBlock();
    b.alu(Opcode::IADD, 0, 0);
    b.newBlock();
    b.load(Opcode::LD_GLOBAL, 2, 0, stream);
    b.alu(Opcode::FADD, 3, 2, 0);
    b.alu(Opcode::IADD, 0, 0, 3);
    b.loopBranch(1, 0, 6);
    b.newBlock();
    b.exit();
    return b.finalize();
}

GpuConfig
configFor(PolicyKind kind, unsigned sms = 2)
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = sms;
    config.policy.kind = kind;
    return config;
}

double
avgResidentCtas(Gpu &gpu)
{
    const double cycles = static_cast<double>(
        gpu.stats().counterValue("gpu.cycles"));
    return gpu.stats().counterValue("sm.resident_cta_cycles") /
           (cycles * gpu.config().numSms);
}

TEST(BaselinePolicyTest, NeverExceedsSchedulerLimit)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::Baseline), *kernel);
    gpu.run();
    EXPECT_LE(avgResidentCtas(gpu), 32.01);
}

TEST(VirtualThreadPolicyTest, GrowsResidencyBeyondSchedulerLimit)
{
    const auto base_kernel = streamingKernel();
    const auto vt_kernel = streamingKernel();
    Gpu base_gpu(configFor(PolicyKind::Baseline), *base_kernel);
    Gpu vt_gpu(configFor(PolicyKind::VirtualThread), *vt_kernel);
    base_gpu.run();
    vt_gpu.run();
    EXPECT_GT(avgResidentCtas(vt_gpu), avgResidentCtas(base_gpu) * 1.2);
    // VT keeps everything on-chip: no CTA-context DRAM traffic.
    EXPECT_EQ(vt_gpu.stats().counterValue("dram.bytes_cta_context"), 0u);
}

TEST(VirtualThreadPolicyTest, ResidencyBoundedByRegisterFile)
{
    // 48 registers x 64 threads = 12 KB/CTA: the 256 KB RF fits at most
    // 21 CTAs, so VT cannot grow beyond that.
    const auto kernel = streamingKernel(128, 48);
    Gpu gpu(configFor(PolicyKind::VirtualThread), *kernel);
    gpu.run();
    EXPECT_LE(avgResidentCtas(gpu), 21.01);
}

TEST(RegDramPolicyTest, GeneratesCtaContextTraffic)
{
    const auto kernel = streamingKernel(128, 48); // RF-bound kernel
    Gpu gpu(configFor(PolicyKind::RegDram), *kernel);
    gpu.run();
    EXPECT_GT(gpu.stats().counterValue("dram.bytes_cta_context"), 0u);
}

TEST(RegDramPolicyTest, ExceedsVtResidencyOnRfBoundKernel)
{
    const auto vt_kernel = streamingKernel(128, 48);
    const auto rd_kernel = streamingKernel(128, 48);
    Gpu vt(configFor(PolicyKind::VirtualThread), *vt_kernel);
    Gpu rd(configFor(PolicyKind::RegDram), *rd_kernel);
    vt.run();
    rd.run();
    EXPECT_GT(avgResidentCtas(rd), avgResidentCtas(vt));
}

TEST(RegMutexPolicyTest, BrsComputation)
{
    const auto kernel = streamingKernel(64, 40);
    GpuConfig config = configFor(PolicyKind::RegMutex);
    config.policy.brsFraction = 0.75;
    Gpu gpu(config, *kernel);
    auto &policy = static_cast<RegMutexPolicy &>(gpu.policy());
    // ceil(40 * 0.75) = 30 BRS registers per thread; 10 extended x 2
    // warps = 20 SRP warp-registers per CTA.
    EXPECT_EQ(policy.brsRegsPerThread(*gpu.sms()[0]), 30u);
    EXPECT_EQ(policy.extendedWarpRegsPerCta(*gpu.sms()[0]), 20u);
}

TEST(RegMutexPolicyTest, CompletesAndGrows)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::RegMutex), *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_GT(avgResidentCtas(gpu), 32.0 * 0.9);
}

TEST(RegMutexPolicyTest, ZeroSrpRatioBehavesLikeVt)
{
    GpuConfig config = configFor(PolicyKind::RegMutex);
    config.policy.srpRatio = 0.0;
    const auto kernel = streamingKernel();
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
}

TEST(FineRegPolicyTest, PcrfHoldsPendingLiveRegisters)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::FineReg), *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_GT(gpu.stats().counterValue("pcrf.stored_ctas"), 0u);
    EXPECT_EQ(gpu.stats().counterValue("pcrf.stored_ctas"),
              gpu.stats().counterValue("pcrf.restored_ctas") +
                  0u); // every stored CTA is eventually restored
}

TEST(FineRegPolicyTest, LiveRegistersSmallerThanFullContext)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::FineReg), *kernel);
    gpu.run();
    const double stores =
        static_cast<double>(gpu.stats().counterValue("pcrf.stored_ctas"));
    const double writes =
        static_cast<double>(gpu.stats().counterValue("pcrf.writes"));
    ASSERT_GT(stores, 0.0);
    const double live_per_cta = writes / stores;
    const double full_per_cta = kernel->warpRegsPerCta();
    EXPECT_LT(live_per_cta, 0.6 * full_per_cta);
}

TEST(FineRegPolicyTest, FullContextAblationStoresEverything)
{
    GpuConfig config = configFor(PolicyKind::FineReg);
    config.policy.fullContextBackup = true;
    const auto kernel = streamingKernel();
    Gpu gpu(config, *kernel);
    gpu.run();
    const double stores =
        static_cast<double>(gpu.stats().counterValue("pcrf.stored_ctas"));
    if (stores > 0) {
        const double live_per_cta =
            gpu.stats().counterValue("pcrf.writes") / stores;
        // Full context for every unfinished warp: within a warp of the
        // full allocation (CTAs with retired warps store less).
        EXPECT_GE(live_per_cta, 0.7 * kernel->warpRegsPerCta());
        EXPECT_LE(live_per_cta, 1.0 * kernel->warpRegsPerCta());
    }
}

TEST(FineRegPolicyTest, BitvecTrafficAppears)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::FineReg), *kernel);
    gpu.run();
    // At least the cold misses of the bit-vector cache fetch from DRAM.
    EXPECT_GT(gpu.stats().counterValue("dram.bytes_bitvec"), 0u);
    // But the cache keeps it tiny relative to data traffic.
    EXPECT_LT(gpu.stats().counterValue("dram.bytes_bitvec"),
              gpu.stats().counterValue("dram.bytes_data") / 100);
}

TEST(FineRegPolicyTest, StorageOverheadMatchesSecVF)
{
    const auto kernel = streamingKernel();
    Gpu gpu(configFor(PolicyKind::FineReg), *kernel);
    const std::uint64_t bits = gpu.policy().storageOverheadBits();
    // Sec. V-F: ~5.02 KB total. Components: 512 b monitor + 384 B cache +
    // 256 B pointer table + 21 b x 1024 tags + 2.4 KB switch logic.
    const std::uint64_t expected =
        512 + 384 * 8 + 256 * 8 + 21 * 1024 + 2400 * 8;
    EXPECT_EQ(bits, expected);
    // ~5.7 KB total; the paper quotes 5.02 KB by rounding the PCRF tag
    // array to 2.15 KB (21 b x 1024 = 2.69 KB exactly).
    EXPECT_LT(bits, 6.0 * 1024 * 8);
    EXPECT_GT(bits, 4.5 * 1024 * 8);
}

TEST(FineRegPolicyTest, AcrfPcrfSplitMustMatchRegisterFile)
{
    GpuConfig config = configFor(PolicyKind::FineReg);
    config.policy.acrfBytes = 64 * 1024;
    config.policy.pcrfBytes = 64 * 1024; // 128 KB != 256 KB RF
    const auto kernel = streamingKernel();
    try {
        Gpu gpu(config, *kernel);
        FAIL() << "expected SimException";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("must equal"),
                  std::string::npos);
    }
}

TEST(FineRegPolicyTest, ZeroSwitchLatencyAblationIsFasterOrEqual)
{
    GpuConfig config = configFor(PolicyKind::FineReg);
    const auto normal_kernel = streamingKernel();
    Gpu normal(config, *normal_kernel);
    config.policy.zeroSwitchLatency = true;
    const auto instant_kernel = streamingKernel();
    Gpu instant(config, *instant_kernel);
    const auto rn = normal.run();
    const auto ri = instant.run();
    EXPECT_LE(ri.cycles, rn.cycles * 1.05);
}

TEST(AllPolicies, SameInstructionCount)
{
    // Policies change scheduling, never the executed work.
    std::uint64_t reference = 0;
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::VirtualThread,
          PolicyKind::RegDram, PolicyKind::RegMutex, PolicyKind::FineReg}) {
        const auto kernel = streamingKernel(64);
        // Disable divergence randomness effects: this kernel never
        // diverges, so instruction counts must match exactly.
        Gpu gpu(configFor(kind), *kernel);
        const auto result = gpu.run();
        if (reference == 0)
            reference = result.instructions;
        EXPECT_EQ(result.instructions, reference)
            << policyKindName(kind);
    }
}

} // namespace
} // namespace finereg
