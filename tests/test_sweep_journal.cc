/**
 * @file
 * SweepJournal unit tests: content-addressed keys, bit-exact JSON
 * round-trips (every double through %.17g), append/reload with
 * latest-entry-wins, torn-line tolerance, stale-version rejection, and
 * journal-backed replay through Experiment::makeGuardedJob.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/experiment.hh"
#include "core/simulator.hh"
#include "core/sweep_journal.hh"
#include "ref/kernel_gen.hh"
#include "verify/chaos.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(SweepJournal, KeyIsContentAddressed)
{
    const auto kernel = generateKernelSpec(0xbeef).build();
    GpuConfig config = GpuConfig::gtx980();
    config.policy.kind = PolicyKind::FineReg;

    const std::string base = makeSweepJobKey(*kernel, config).toString();
    EXPECT_EQ(base, makeSweepJobKey(*kernel, config).toString());

    // Each key part responds to its own input.
    GpuConfig other = config;
    other.seed ^= 1;
    EXPECT_NE(base, makeSweepJobKey(*kernel, other).toString());

    other = config;
    other.policy.kind = PolicyKind::Baseline;
    EXPECT_NE(base, makeSweepJobKey(*kernel, other).toString());

    other = config;
    other.numSms += 1;
    EXPECT_NE(base, makeSweepJobKey(*kernel, other).toString());

    const auto kernel2 = generateKernelSpec(0xbeef + 1).build();
    EXPECT_NE(base, makeSweepJobKey(*kernel2, config).toString());
}

TEST(SweepJournal, RuntimeOnlyKnobsDoNotChangeTheKey)
{
    // The cancel token and the host-level fault sites never change
    // simulated results, so the chaos/retry machinery may flip them per
    // attempt without losing the job's resume identity.
    const auto kernel = generateKernelSpec(0xbeef).build();
    GpuConfig config = GpuConfig::gtx980();
    config.policy.kind = PolicyKind::FineReg;
    const std::string base = makeSweepJobKey(*kernel, config).toString();

    GpuConfig armed = config;
    armed.verify.cancel = std::make_shared<CancelToken>();
    armed.verify.fault.workerExceptionProb = 1.0;
    armed.verify.fault.jobHangProb = 0.5;
    armed.verify.fault.jobHangMaxMs = 123.0;
    EXPECT_EQ(base, makeSweepJobKey(*kernel, armed).toString());

    // The in-simulation fault schedule DOES affect results, so it is part
    // of the key.
    GpuConfig faulted = config;
    faulted.verify.fault.seed = 7;
    EXPECT_NE(base, makeSweepJobKey(*kernel, faulted).toString());
}

TEST(SweepJournal, EntryJsonRoundTripsBitExactly)
{
    const auto kernel = generateKernelSpec(0xf00d).build();
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = PolicyKind::FineReg;
    SimResult result = Simulator::run(config, *kernel);
    ASSERT_FALSE(result.failed) << result.failureReason;

    JournalEntry entry;
    entry.key = makeSweepJobKey(*kernel, config).toString();
    entry.app = "GEN";
    entry.status = "ok";
    entry.wallMs = 123.4567890123456789; // deliberately not representable
    entry.result = result;

    const std::string line = journalEntryToJson(entry);
    const auto parsed = journalEntryFromJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->key, entry.key);
    EXPECT_EQ(parsed->app, "GEN");
    EXPECT_TRUE(parsed->ok());
    EXPECT_EQ(std::memcmp(&parsed->wallMs, &entry.wallMs, sizeof(double)),
              0);
    EXPECT_TRUE(parsed->result.fromJournal);
    EXPECT_EQ(compareSimResults(result, parsed->result), "");
}

TEST(SweepJournal, FailedEntryPreservesErrorKindAndMessage)
{
    JournalEntry entry;
    entry.key = "k1-c1-finereg-s1";
    entry.app = "BF";
    entry.status = "failed";
    entry.result.failed = true;
    entry.result.attempts = 3;
    entry.result.error.kind = SimErrorKind::Timeout;
    entry.result.error.message =
        "deadline \"exceeded\"\n\tafter 500 ms \\ attempt 3";

    const auto parsed = journalEntryFromJson(journalEntryToJson(entry));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok());
    EXPECT_TRUE(parsed->result.failed);
    EXPECT_EQ(parsed->result.attempts, 3u);
    EXPECT_EQ(parsed->result.error.kind, SimErrorKind::Timeout);
    EXPECT_EQ(parsed->result.error.message, entry.result.error.message);
}

TEST(SweepJournal, AppendReloadLatestEntryWins)
{
    const std::string path = tempPath("journal_reload.sweep.jsonl");
    std::remove(path.c_str());
    std::string error;
    {
        auto journal = SweepJournal::open(path, error);
        ASSERT_NE(journal, nullptr) << error;
        EXPECT_EQ(journal->size(), 0u);

        JournalEntry e;
        e.key = "k1-c1-finereg-s1";
        e.app = "AA";
        e.status = "failed";
        e.result.failed = true;
        e.result.error.kind = SimErrorKind::Timeout;
        journal->append(e);

        // A later success for the same key supersedes the failure.
        e.status = "ok";
        e.result = SimResult{};
        e.result.ipc = 1.25;
        journal->append(e);

        JournalEntry other;
        other.key = "k2-c2-baseline-s1";
        other.app = "BB";
        other.status = "ok";
        journal->append(other);

        EXPECT_EQ(journal->size(), 2u);
        EXPECT_EQ(journal->completedCount(), 2u);
    }

    auto journal = SweepJournal::open(path, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->size(), 2u);
    EXPECT_EQ(journal->completedCount(), 2u);
    const JournalEntry *latest = journal->find("k1-c1-finereg-s1");
    ASSERT_NE(latest, nullptr);
    EXPECT_TRUE(latest->ok());
    EXPECT_EQ(latest->result.ipc, 1.25);
    EXPECT_EQ(journal->find("k3-missing"), nullptr);
    std::remove(path.c_str());
}

TEST(SweepJournal, TornTrailingLineIsDroppedNotFatal)
{
    const std::string path = tempPath("journal_torn.sweep.jsonl");
    std::remove(path.c_str());
    std::string error;
    {
        auto journal = SweepJournal::open(path, error);
        ASSERT_NE(journal, nullptr) << error;
        JournalEntry e;
        e.key = "k1-c1-finereg-s1";
        e.app = "AA";
        e.status = "ok";
        journal->append(e);
    }
    // Simulate a crash mid-append: half a JSON object, no newline.
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"key\":\"k2-c2-base";
    }

    auto journal = SweepJournal::open(path, error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_EQ(journal->size(), 1u);
    EXPECT_NE(journal->find("k1-c1-finereg-s1"), nullptr);
    std::remove(path.c_str());
}

TEST(SweepJournal, StaleSchemaVersionIsRejectedWithClearError)
{
    const std::string path = tempPath("journal_stale.sweep.jsonl");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"finereg-sweep-journal\",\"version\":99}\n";
    }
    std::string error;
    auto journal = SweepJournal::open(path, error);
    EXPECT_EQ(journal, nullptr);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(SweepJournal, ForeignSchemaIsRejected)
{
    const std::string path = tempPath("journal_foreign.sweep.jsonl");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"someone-elses-log\",\"version\":1}\n";
    }
    std::string error;
    auto journal = SweepJournal::open(path, error);
    EXPECT_EQ(journal, nullptr);
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(SweepJournal, GuardedJobsReplayBitIdenticallyOnResume)
{
    const std::string path = tempPath("journal_resume.sweep.jsonl");
    std::remove(path.c_str());

    std::shared_ptr<const Kernel> kernel =
        Suite::makeKernel(Suite::byName("BF"), 0.05);
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = PolicyKind::FineReg;
    const std::string key = makeSweepJobKey(*kernel, config).toString();

    std::string error;
    SimResult fresh;
    {
        auto journal = SweepJournal::open(path, error);
        ASSERT_NE(journal, nullptr) << error;
        JobGuard guard;
        fresh = Experiment::makeGuardedJob(kernel, config, "BF", key, guard,
                                           journal.get())();
        ASSERT_FALSE(fresh.failed) << fresh.failureReason;
        EXPECT_FALSE(fresh.fromJournal);
        EXPECT_EQ(journal->completedCount(), 1u);
    }

    // A second process resuming from the journal replays the result
    // without re-simulating, bit-identically.
    auto journal = SweepJournal::open(path, error);
    ASSERT_NE(journal, nullptr) << error;
    JobGuard guard;
    const SimResult replayed = Experiment::makeGuardedJob(
        kernel, config, "BF", key, guard, journal.get())();
    EXPECT_TRUE(replayed.fromJournal);
    EXPECT_EQ(compareSimResults(fresh, replayed), "");
    EXPECT_EQ(guard.stats().attemptsStarted, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace finereg
