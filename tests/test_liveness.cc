/**
 * @file
 * Liveness analysis tests, including a reconstruction of the paper's
 * Fig. 7 example (a warp stalled at PC 0x0000 must keep only R0 alive)
 * and the Fig. 9 branch/loop traversal cases.
 */

#include <gtest/gtest.h>

#include "compiler/live_info.hh"
#include "compiler/liveness.hh"
#include "isa/kernel_builder.hh"

namespace finereg
{
namespace
{

/**
 * Fig. 7 shape: the instruction at the stall PC reads R0; R1-R3 are
 * written (as destinations) before any of them is read.
 */
std::unique_ptr<Kernel>
makeFig7Kernel()
{
    KernelBuilder b("fig7");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 0, 0);  // 0x00: R1 <- R0 + R0 (R0 is a source)
    b.alu(Opcode::IMUL, 2, 1, 1);  // 0x08: R2 <- R1 * R1
    b.alu(Opcode::FADD, 3, 2, 2);  // 0x10: R3 <- R2 + R2
    b.alu(Opcode::FMUL, 0, 3, 3);  // 0x18: R0 <- R3 * R3 (kills R0)
    b.exit();
    return b.finalize();
}

TEST(Liveness, Fig7OnlyR0LiveAtStallPc)
{
    const auto k = makeFig7Kernel();
    LivenessAnalysis live(*k);
    const RegBitVec at_entry = live.liveIn(0);
    EXPECT_TRUE(at_entry.test(0));   // R0: source of the first instruction
    EXPECT_FALSE(at_entry.test(1));  // R1-R3: destinations before any use
    EXPECT_FALSE(at_entry.test(2));
    EXPECT_FALSE(at_entry.test(3));
    EXPECT_EQ(at_entry.count(), 1u);
}

TEST(Liveness, LivenessShrinksAfterLastUse)
{
    const auto k = makeFig7Kernel();
    LivenessAnalysis live(*k);
    // After 0x00 executes, R0 is dead (redefined at 0x18 before any use)
    // and R1 is live.
    EXPECT_FALSE(live.liveOut(0).test(0));
    EXPECT_TRUE(live.liveOut(0).test(1));
    // At the last ALU instruction only R3 is live-in.
    EXPECT_TRUE(live.liveIn(3).test(3));
    EXPECT_EQ(live.liveIn(3).count(), 1u);
}

TEST(Liveness, DefThenUseKeepsRegisterLiveBetween)
{
    KernelBuilder b("gap");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 5, 0, 0); // define R5
    b.alu(Opcode::IADD, 1, 0, 0); // unrelated
    b.alu(Opcode::IADD, 2, 0, 0); // unrelated
    b.alu(Opcode::IADD, 3, 5, 0); // use R5
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    EXPECT_FALSE(live.liveIn(0).test(5)); // dead before the def
    EXPECT_TRUE(live.liveIn(1).test(5));  // live across the gap
    EXPECT_TRUE(live.liveIn(3).test(5));
    EXPECT_FALSE(live.liveOut(3).test(5)); // dead after the last use
}

/**
 * Fig. 9(a): a register used only on one side of a diamond is live at the
 * branch (the warp might take that side).
 */
TEST(Liveness, DivergingBranchUnionsPaths)
{
    KernelBuilder b("diamond");
    b.regsPerThread(8);
    b.newBlock();                 // B0
    b.branch(2, 0, 0.5, 0.5);     // reads R0; taken -> B2
    b.newBlock();                 // B1: else, uses R4
    b.alu(Opcode::IADD, 5, 4, 0);
    b.jump(3);
    b.newBlock();                 // B2: then, uses R6
    b.alu(Opcode::IADD, 5, 6, 0);
    b.newBlock();                 // B3: join, uses R5
    b.alu(Opcode::IADD, 7, 5, 0);
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    const RegBitVec at_branch = live.liveIn(0);
    EXPECT_TRUE(at_branch.test(0)); // branch condition
    EXPECT_TRUE(at_branch.test(4)); // else-path use
    EXPECT_TRUE(at_branch.test(6)); // then-path use
    EXPECT_FALSE(at_branch.test(5)); // defined on both paths before join use
}

/**
 * Fig. 9(b): a value read at the loop top and written later in the body is
 * live around the back edge.
 */
TEST(Liveness, LoopCarriedValueLiveAroundBackEdge)
{
    KernelBuilder b("loop");
    b.regsPerThread(8);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 1, 0, 0);
    b.newBlock();                 // B1: body reads R1 then rewrites it
    b.alu(Opcode::IADD, 2, 1, 0); // use R1
    b.alu(Opcode::IADD, 1, 2, 0); // redefine R1
    b.loopBranch(1, 2, 4);
    b.newBlock();                 // B2
    b.alu(Opcode::IADD, 3, 1, 0); // use after loop
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    const unsigned body_first = k->blocks()[1].firstInstr;
    EXPECT_TRUE(live.liveIn(body_first).test(1));
    // The loop branch's live-out must include R1 (used after the loop and
    // at the loop top).
    EXPECT_TRUE(live.liveOut(body_first + 2).test(1));
    EXPECT_GE(live.iterations(), 2u); // the back edge forces a second pass
}

TEST(Liveness, ScratchDeadAcrossIterations)
{
    KernelBuilder b("scratch");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 0, 0);
    b.newBlock();                 // body: R4 written then read, only inside
    b.alu(Opcode::IADD, 4, 1, 0);
    b.alu(Opcode::IADD, 5, 4, 0);
    b.loopBranch(1, 5, 3);
    b.newBlock();
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    const unsigned body_first = k->blocks()[1].firstInstr;
    // At the top of the body, the scratch R4 is dead (written first).
    EXPECT_FALSE(live.liveIn(body_first).test(4));
}

TEST(LiveRegisterTable, LookupMatchesAnalysis)
{
    const auto k = makeFig7Kernel();
    LivenessAnalysis live(*k);
    LiveRegisterTable table(*k);
    for (unsigned i = 0; i < k->staticInstrs(); ++i) {
        EXPECT_EQ(table.lookup(i * kInstrBytes), live.liveIn(i))
            << "instr " << i;
        EXPECT_EQ(table.liveCount(i * kInstrBytes), live.liveIn(i).count());
    }
}

TEST(LiveRegisterTable, PastEndIsEmpty)
{
    const auto k = makeFig7Kernel();
    LiveRegisterTable table(*k);
    EXPECT_TRUE(table.lookup(k->staticInstrs() * kInstrBytes).empty());
}

TEST(LiveRegisterTable, StorageIs12BytesPerInstr)
{
    const auto k = makeFig7Kernel();
    LiveRegisterTable table(*k);
    EXPECT_EQ(table.storageBytes(), k->staticInstrs() * 12u);
}

TEST(Liveness, DeadOnEntryRegistersStayDeadUntilDefined)
{
    // R6/R7 are written once and never read; R4 is never touched at all.
    // None of them may appear in any live-in set: a dead-on-entry register
    // the RMU would otherwise save for nothing.
    KernelBuilder b("dead_entry");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 6, 0, 0);
    b.alu(Opcode::IADD, 7, 0, 0);
    b.alu(Opcode::IADD, 1, 0, 0);
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    for (unsigned i = 0; i < k->staticInstrs(); ++i) {
        EXPECT_FALSE(live.liveIn(i).test(4)) << "instr " << i;
        EXPECT_FALSE(live.liveIn(i).test(6)) << "instr " << i;
        EXPECT_FALSE(live.liveIn(i).test(7)) << "instr " << i;
    }
    EXPECT_EQ(live.liveIn(0).count(), 1u); // only R0, the shared source
}

TEST(Liveness, SingleBlockKernelConvergesInOnePass)
{
    // A single straight-line block has no back edges: the fixpoint is the
    // sequential backward scan and must not iterate.
    KernelBuilder b("single");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 0, 0);
    b.alu(Opcode::IADD, 2, 1, 0);
    b.alu(Opcode::IADD, 3, 2, 1);
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    EXPECT_EQ(k->blocks().size(), 1u);
    EXPECT_LE(live.iterations(), 2u); // one solve pass + one quiet check
    // Backward scan by hand: I2 reads R2,R1; I1 reads R1,R0; I0 reads R0.
    EXPECT_TRUE(live.liveIn(2).test(2));
    EXPECT_TRUE(live.liveIn(2).test(1));
    EXPECT_FALSE(live.liveIn(2).test(0));
    EXPECT_TRUE(live.liveIn(1).test(1));
    EXPECT_TRUE(live.liveIn(0).test(0));
    EXPECT_TRUE(live.liveOut(3).empty()); // nothing live at EXIT
}

TEST(Liveness, DiamondMergeKillsBothSidedDefsOnly)
{
    // R5 is defined on both sides (dead at the branch); R4 only on the
    // else side (live at the branch: the then path reads it at the join).
    KernelBuilder b("merge");
    b.regsPerThread(8);
    b.newBlock();                 // B0
    b.branch(2, 0, 0.5, 0.0);
    b.newBlock();                 // B1: else defines R4 and R5
    b.alu(Opcode::IADD, 4, 1, 1);
    b.alu(Opcode::IADD, 5, 1, 1);
    b.jump(3);
    b.newBlock();                 // B2: then defines only R5
    b.alu(Opcode::IADD, 5, 1, 1);
    b.newBlock();                 // B3: join reads both
    b.alu(Opcode::IADD, 6, 5, 4);
    b.exit();
    const auto k = b.finalize();
    LivenessAnalysis live(*k);
    const RegBitVec at_branch = live.liveIn(0);
    EXPECT_FALSE(at_branch.test(5)); // killed on every path to the use
    EXPECT_TRUE(at_branch.test(4));  // survives through the then path
}

TEST(Liveness, MeanAndMaxCounts)
{
    const auto k = makeFig7Kernel();
    LivenessAnalysis live(*k);
    EXPECT_GE(live.maxLiveCount(), 1u);
    EXPECT_GT(live.meanLiveCount(), 0.0);
    EXPECT_LE(live.meanLiveCount(), 8.0);
}

} // namespace
} // namespace finereg
