/**
 * @file
 * DRAM channel and memory-hierarchy tests: latency, bandwidth
 * serialization, traffic classes (Fig. 15 accounting), and the
 * L1 -> L2 -> DRAM walk with MSHR merging.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/dram.hh"
#include "mem/mem_hierarchy.hh"

namespace finereg
{
namespace
{

TEST(Dram, SingleAccessLatency)
{
    StatGroup stats("t");
    Dram dram(DramConfig{128.0, 200}, stats);
    // 128 bytes at 128 B/cycle: 1 transfer cycle + 200 latency.
    EXPECT_EQ(dram.serve(0, 128, TrafficClass::Data), 201u);
}

TEST(Dram, BandwidthSerializesBackToBack)
{
    StatGroup stats("t");
    Dram dram(DramConfig{128.0, 200}, stats);
    const Cycle first = dram.serve(0, 1280, TrafficClass::Data); // 10 cyc
    EXPECT_EQ(first, 210u);
    // Channel is busy until cycle 10; the next transfer starts there.
    const Cycle second = dram.serve(0, 128, TrafficClass::Data);
    EXPECT_EQ(second, 10 + 200 + 1u);
}

TEST(Dram, IdleChannelStartsImmediately)
{
    StatGroup stats("t");
    Dram dram(DramConfig{128.0, 200}, stats);
    dram.serve(0, 128, TrafficClass::Data);
    // Long after the channel drained, latency is just access + transfer.
    EXPECT_EQ(dram.serve(10000, 128, TrafficClass::Data), 10201u);
}

TEST(Dram, TrafficClassesTrackedSeparately)
{
    StatGroup stats("t");
    Dram dram(DramConfig{128.0, 200}, stats);
    dram.serve(0, 100, TrafficClass::Data);
    dram.serve(0, 200, TrafficClass::CtaContext);
    dram.serve(0, 12, TrafficClass::BitVector);
    EXPECT_EQ(dram.bytesMoved(TrafficClass::Data), 100u);
    EXPECT_EQ(dram.bytesMoved(TrafficClass::CtaContext), 200u);
    EXPECT_EQ(dram.bytesMoved(TrafficClass::BitVector), 12u);
    EXPECT_EQ(dram.totalBytes(), 312u);
    EXPECT_EQ(dram.accesses(), 3u);
}

MemHierarchyConfig
tinyHierarchy()
{
    MemHierarchyConfig config;
    config.l1 = CacheConfig{4 * 1024, 2, 128, 10, 8};
    config.l2 = CacheConfig{64 * 1024, 4, 128, 50, 32};
    config.dram = DramConfig{128.0, 200};
    config.l2TransactionsPerCycle = 4.0;
    return config;
}

TEST(MemHierarchy, L1HitIsFast)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 2, stats);
    const auto miss = mem.warpAccess(0, 0x1000, 1, false, 0);
    EXPECT_EQ(miss.l1Misses, 1u);
    EXPECT_GT(miss.completeCycle, 200u); // went to DRAM

    const auto hit = mem.warpAccess(0, 0x1000, 1, false, 1000);
    EXPECT_EQ(hit.l1Hits, 1u);
    EXPECT_EQ(hit.completeCycle, 1000u + 10);
}

TEST(MemHierarchy, L2HitAvoidsDram)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 2, stats);
    mem.warpAccess(0, 0x2000, 1, false, 0); // fills L2 (and SM0's L1)
    // SM1 misses its own L1 but hits the shared L2.
    const auto result = mem.warpAccess(1, 0x2000, 1, false, 1000);
    EXPECT_EQ(result.l1Misses, 1u);
    EXPECT_EQ(result.l2Hits, 1u);
    EXPECT_LT(result.completeCycle, 1000u + 200);
    EXPECT_GE(result.completeCycle, 1000u + 50);
}

TEST(MemHierarchy, PerSmL1sArePrivate)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 2, stats);
    mem.warpAccess(0, 0x3000, 1, false, 0);
    EXPECT_TRUE(mem.l1(0).probe(0x3000));
    EXPECT_FALSE(mem.l1(1).probe(0x3000));
}

TEST(MemHierarchy, MultipleTransactionsCountEach)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 1, stats);
    const auto result = mem.warpAccess(0, 0, 4, false, 0);
    EXPECT_EQ(result.l1Hits + result.l1Misses, 4u);
    EXPECT_EQ(result.l1Misses, 4u);
}

TEST(MemHierarchy, MshrMergeAvoidsDuplicateDramFetch)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 1, stats);
    mem.warpAccess(0, 0x8000, 1, false, 0);
    const auto dram_before = stats.counterValue("dram.accesses");
    // Second access to the same line while the fill is in flight: merged.
    mem.warpAccess(0, 0x8000, 1, false, 1);
    EXPECT_EQ(stats.counterValue("dram.accesses"), dram_before);
}

TEST(MemHierarchy, StoresRetireAtL1Latency)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 1, stats);
    const auto result = mem.warpAccess(0, 0x9000, 2, true, 5);
    EXPECT_EQ(result.completeCycle, 5u + 10);
}

TEST(MemHierarchy, OffchipTransferUsesChannel)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 1, stats);
    const Cycle done = mem.offchipTransfer(0, 1024, TrafficClass::CtaContext);
    EXPECT_GT(done, 200u);
    EXPECT_EQ(mem.dram().bytesMoved(TrafficClass::CtaContext), 1024u);
}

TEST(MemHierarchy, ResetClearsCaches)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 1, stats);
    mem.warpAccess(0, 0x1000, 1, false, 0);
    mem.reset();
    EXPECT_FALSE(mem.l1(0).probe(0x1000));
    EXPECT_FALSE(mem.l2().probe(0x1000));
}

TEST(MemHierarchy, ResizeL1AppliesToAllSms)
{
    StatGroup stats("t");
    MemHierarchy mem(tinyHierarchy(), 2, stats);
    mem.resizeL1(16 * 1024);
    EXPECT_EQ(mem.l1(0).sizeBytes(), 16u * 1024);
    EXPECT_EQ(mem.l1(1).sizeBytes(), 16u * 1024);
}

} // namespace
} // namespace finereg
