/**
 * @file
 * Structured random-kernel fuzzing. A seeded generator emits random but
 * well-formed kernels (straight runs, diamonds, loops, barriers, loads and
 * stores over random patterns) and the properties below must hold for
 * every one of them:
 *
 *  - the compiler's liveness solution satisfies the dataflow equations
 *    (checked independently of the solver's iteration order),
 *  - immediate post-dominators actually post-dominate, and reconvergence
 *    PCs lie at block starts,
 *  - every policy runs the kernel to completion deterministically,
 *  - FineReg leaves no residue in the PCRF / ACRF / status monitor.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/lint.hh"
#include "analysis/liveness_check.hh"
#include "common/rng.hh"
#include "compiler/cfg_analysis.hh"
#include "compiler/liveness.hh"
#include "core/experiment.hh"
#include "isa/kernel_builder.hh"
#include "policies/finereg_policy.hh"
#include "ref/diff_oracle.hh"
#include "sm/gpu.hh"

namespace finereg
{
namespace
{

/** Generate a random well-formed kernel from a seed. */
std::unique_ptr<Kernel>
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    const unsigned regs = 6 + rng.below(40);          // 6..45
    const unsigned warps = 1 + rng.below(4);          // 1..4 warps
    const unsigned grid = 8 + rng.below(48);          // 8..55 CTAs

    KernelBuilder b("fuzz_" + std::to_string(seed));
    b.regsPerThread(regs)
        .threadsPerCta(warps * kWarpSize)
        .shmemPerCta(rng.chance(0.3) ? 1024 * (1 + rng.below(8)) : 0)
        .gridCtas(grid);

    auto rand_reg = [&] { return static_cast<int>(rng.below(regs)); };
    auto rand_pattern = [&] {
        MemPattern p;
        p.region = static_cast<unsigned>(rng.below(8));
        p.footprint = (64ull + rng.below(4096)) * 1024;
        p.transactions = 1 + static_cast<unsigned>(rng.below(4));
        p.stride = 32u << rng.below(4);
        p.reuse = rng.chance(0.3) ? rng.uniform() * 0.5 : 0.0;
        p.shared = rng.chance(0.3);
        return p;
    };
    auto emit_body = [&](unsigned ops) {
        for (unsigned i = 0; i < ops; ++i) {
            switch (rng.below(6)) {
              case 0:
                b.load(Opcode::LD_GLOBAL, rand_reg(), rand_reg(),
                       rand_pattern());
                break;
              case 1:
                b.store(Opcode::ST_GLOBAL, rand_reg(), rand_reg(),
                        rand_pattern());
                break;
              case 2:
                b.sfu(rand_reg(), rand_reg());
                break;
              case 3:
                b.load(Opcode::LD_SHARED, rand_reg(), rand_reg(),
                       rand_pattern());
                break;
              default:
                b.alu(rng.chance(0.5) ? Opcode::FFMA : Opcode::IADD,
                      rand_reg(), rand_reg(), rand_reg(),
                      rng.chance(0.5) ? rand_reg() : -1);
            }
        }
    };

    // A random sequence of structured segments. Block indices are known
    // in advance because each segment has a fixed block arity.
    b.newBlock();
    emit_body(2 + rng.below(4));
    int next_block = 1;

    const unsigned segments = 1 + rng.below(3);
    for (unsigned s = 0; s < segments; ++s) {
        switch (rng.below(3)) {
          case 0: { // loop: body block with back edge
            const int body = next_block;
            b.newBlock();
            emit_body(1 + rng.below(4));
            if (rng.chance(0.3))
                b.barrier();
            b.loopBranch(body, rand_reg(),
                         1 + static_cast<unsigned>(rng.below(6)),
                         rng.chance(0.3) ? 0.2 : 0.0);
            next_block += 1;
            break;
          }
          case 1: { // diamond: branch, else, then, join
            const int branch_block = next_block;
            (void)branch_block;
            b.newBlock();
            emit_body(1 + rng.below(3));
            b.branch(next_block + 2, rand_reg(), rng.uniform(),
                     rng.chance(0.5) ? rng.uniform() * 0.6 : 0.0);
            b.newBlock(); // else
            emit_body(1 + rng.below(3));
            b.jump(next_block + 3);
            b.newBlock(); // then
            emit_body(1 + rng.below(3));
            b.newBlock(); // join
            emit_body(1);
            next_block += 4;
            break;
          }
          default: { // straight run
            b.newBlock();
            emit_body(2 + rng.below(5));
            next_block += 1;
            break;
          }
        }
    }

    b.newBlock();
    emit_body(1);
    b.exit();
    auto kernel = b.finalize();
    // Every fuzz kernel goes through the static analyzer; a lint error
    // here means the generator (or a pass) is broken.
    analysis::assertLintClean(*kernel, "test_fuzz randomKernel");
    return kernel;
}

RegBitVec
useSetOf(const Instruction &instr)
{
    RegBitVec use;
    for (int src : instr.srcs) {
        if (src >= 0)
            use.set(static_cast<RegIndex>(src));
    }
    return use;
}

class FuzzKernel : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /**
     * Make failures replayable: print the generator seed, the offending
     * kernel, and a one-line repro command to stderr, so a red CI run can
     * be reproduced without bisecting the whole seed range.
     */
    void
    TearDown() override
    {
        if (!HasFailure())
            return;
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        const auto kernel = randomKernel(GetParam());
        std::fprintf(stderr,
                     "fuzz failure: seed=%llu kernel=%s (%u instrs, %zu "
                     "blocks)\n%srepro: finereg_tests "
                     "--gtest_filter='%s.%s'\n",
                     static_cast<unsigned long long>(GetParam()),
                     kernel->name().c_str(), kernel->staticInstrs(),
                     kernel->blocks().size(), kernel->toString().c_str(),
                     info->test_suite_name(), info->name());
    }
};

TEST_P(FuzzKernel, LivenessSatisfiesDataflowEquations)
{
    const auto kernel = randomKernel(GetParam());
    LivenessAnalysis live(*kernel);

    for (const auto &blk : kernel->blocks()) {
        for (unsigned i = blk.firstInstr;
             i < blk.firstInstr + blk.numInstrs; ++i) {
            const Instruction &instr = kernel->instrs()[i];

            // live-in = use U (live-out \ def)
            RegBitVec def;
            if (instr.dst >= 0)
                def.set(static_cast<RegIndex>(instr.dst));
            const RegBitVec expected_in =
                useSetOf(instr) | live.liveOut(i).minus(def);
            ASSERT_EQ(live.liveIn(i), expected_in)
                << "instr " << i << " of " << kernel->name();

            // live-out = union of successors' live-in.
            RegBitVec expected_out;
            if (i + 1 < blk.firstInstr + blk.numInstrs) {
                expected_out = live.liveIn(i + 1);
            } else {
                for (int succ : blk.succs) {
                    expected_out |= live.liveIn(
                        kernel->blocks()[succ].firstInstr);
                }
            }
            ASSERT_EQ(live.liveOut(i), expected_out)
                << "instr " << i << " of " << kernel->name();
        }
    }
}

TEST_P(FuzzKernel, PostDominatorLawsHold)
{
    const auto kernel = randomKernel(GetParam());
    CfgAnalysis cfg(*kernel);
    const int n = static_cast<int>(kernel->blocks().size());
    for (int b = 0; b < n; ++b) {
        const int pd = cfg.ipdom(b);
        if (pd >= 0) {
            ASSERT_NE(pd, b);
            ASSERT_TRUE(cfg.postDominates(pd, b));
        }
        // Reconvergence PCs are block starts or the kernel end.
        const Pc reconv = cfg.reconvergencePc(b);
        if (reconv < kernel->staticInstrs() * kInstrBytes) {
            const int block =
                kernel->blockOfInstr(kernel->instrIndexOf(reconv));
            ASSERT_GE(block, 0);
            ASSERT_EQ(kernel->blockStartPc(block), reconv);
        }
    }
}

TEST_P(FuzzKernel, EveryPolicyCompletesDeterministically)
{
    const auto kernel = randomKernel(GetParam());
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.maxCycles = 5'000'000;
    config.verify.auditInterval = 1; // every-cycle invariant audit

    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::VirtualThread,
          PolicyKind::RegDram, PolicyKind::RegMutex, PolicyKind::FineReg}) {
        config.policy.kind = kind;
        Gpu first(config, *kernel);
        const auto a = first.run();
        ASSERT_FALSE(a.hitCycleLimit)
            << kernel->name() << " under " << policyKindName(kind);
        ASSERT_EQ(a.completedCtas, kernel->gridCtas());

        const auto kernel2 = randomKernel(GetParam());
        Gpu second(config, *kernel2);
        const auto b = second.run();
        ASSERT_EQ(a.cycles, b.cycles) << policyKindName(kind);
        ASSERT_EQ(a.instructions, b.instructions) << policyKindName(kind);
    }
}

TEST_P(FuzzKernel, EndStateMatchesTheReference)
{
    // The independent fuzz generator (barriers mid-loop, mismatched
    // pattern/opcode combinations) also goes through the differential
    // oracle, complementing ref/kernel_gen's coverage.
    const auto kernel = randomKernel(GetParam());
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.maxCycles = 5'000'000;
    const auto report = DiffOracle::checkAllPolicies(*kernel, config);
    ASSERT_TRUE(report.pass()) << report.toString();
}

TEST_P(FuzzKernel, FineRegLeavesNoResidue)
{
    const auto kernel = randomKernel(GetParam());
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = PolicyKind::FineReg;
    config.maxCycles = 5'000'000;
    config.verify.auditInterval = 1; // every-cycle invariant audit
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    ASSERT_FALSE(result.hitCycleLimit);

    auto &policy = static_cast<FineRegPolicy &>(gpu.policy());
    for (auto &sm : gpu.sms()) {
        EXPECT_EQ(policy.pcrfOf(*sm).numPendingCtas(), 0u);
        EXPECT_EQ(policy.pcrfOf(*sm).freeEntries(),
                  policy.pcrfOf(*sm).numEntries());
        EXPECT_EQ(policy.acrfOf(*sm).usedWarpRegs(), 0u);
        EXPECT_EQ(policy.monitorOf(*sm).numTracked(), 0u);
    }
    EXPECT_EQ(gpu.stats().counterValue("pcrf.stored_ctas"),
              gpu.stats().counterValue("pcrf.restored_ctas"));
}

TEST_P(FuzzKernel, LintIsCleanAndCrossValidatorAgreesExactly)
{
    const auto kernel = randomKernel(GetParam());
    const auto result = analysis::lintKernel(*kernel);
    EXPECT_FALSE(result.diags.hasErrors()) << result.diags.renderText(16);

    // Both liveness solvers compute the least fixpoint of the same
    // equations, so on a valid kernel they must agree bit for bit.
    auto manager = analysis::AnalysisManager::withDefaultPasses();
    const auto *live = manager->resultOf<analysis::LivenessCheckResult>(
        *kernel, analysis::LivenessCheckResult::kName);
    ASSERT_NE(live, nullptr);
    EXPECT_TRUE(live->exactMatch) << kernel->name();
    EXPECT_EQ(live->unsoundCount, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernel,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace finereg
