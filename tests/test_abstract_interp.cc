/**
 * @file
 * Tests for the abstract-interpretation engine and its consumer passes:
 * interval algebra and transfer-function exactness/soundness, the worklist
 * fixpoint engine (widening termination, unreachable blocks, narrowing),
 * value-range facts on hand-built kernels (constant folding, proven
 * overflow, diamond joins with divergence-safe uniformity, degenerate
 * loops), mem-access execution bounds and the loop budget, the barrier-
 * interval race verdicts, compressibility claims and the narrow-claim
 * corruption hooks, and the dynamic soundness property: every observed
 * execution fact lies inside its static abstraction, across seeded
 * generated kernels, with spec shrinking on failure.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "analysis/abstract_interp.hh"
#include "analysis/cfg_check.hh"
#include "analysis/compressibility.hh"
#include "analysis/kernel_mutator.hh"
#include "analysis/lint.hh"
#include "analysis/mem_access.hh"
#include "analysis/shmem_race.hh"
#include "analysis/value_range.hh"
#include "isa/kernel_builder.hh"
#include "ref/kernel_gen.hh"
#include "ref/value_semantics.hh"
#include "ref/value_validator.hh"

namespace finereg
{
namespace
{

using analysis::AnalysisManager;
using analysis::CfgCheckResult;
using analysis::CompressibilityResult;
using analysis::DiagKind;
using analysis::Interval;
using analysis::MemAccessResult;
using analysis::ShmemRaceCheckResult;
using analysis::ValueAbs;
using analysis::ValueRangeResult;

// --- Interval algebra -----------------------------------------------------

TEST(Interval, AlgebraBasics)
{
    const Interval bot = Interval::bottom();
    const Interval top = Interval::top();
    const Interval c7 = Interval::constant(7);
    const Interval r = Interval::range(4, 100);

    EXPECT_TRUE(bot.isBottom());
    EXPECT_FALSE(bot.contains(0));
    EXPECT_TRUE(top.isTop());
    EXPECT_TRUE(c7.isSingleton());
    EXPECT_TRUE(r.contains(4));
    EXPECT_TRUE(r.contains(100));
    EXPECT_FALSE(r.contains(101));

    // join is the smallest enclosing interval; bottom is its identity.
    EXPECT_EQ(bot.join(c7), c7);
    EXPECT_EQ(c7.join(bot), c7);
    EXPECT_EQ(c7.join(r), Interval::range(4, 100));
    EXPECT_EQ(Interval::constant(200).join(r), Interval::range(4, 200));

    // covers: superset-or-equal, bottom below everything.
    EXPECT_TRUE(r.covers(c7));
    EXPECT_TRUE(r.covers(bot));
    EXPECT_TRUE(top.covers(r));
    EXPECT_FALSE(c7.covers(r));
    EXPECT_FALSE(bot.covers(c7));

    // widen jumps any still-moving bound to its extreme.
    EXPECT_EQ(r.widen(Interval::range(4, 101)), Interval::range(4, 0xffffffffu));
    EXPECT_EQ(r.widen(Interval::range(3, 100)), Interval::range(0, 100));
    EXPECT_EQ(r.widen(r), r);
    EXPECT_EQ(bot.widen(r), r);

    EXPECT_EQ(bot.bitsNeeded(), 0u);
    EXPECT_EQ(Interval::constant(0).bitsNeeded(), 0u);
    EXPECT_EQ(c7.bitsNeeded(), 3u);
    EXPECT_EQ(Interval::range(0, 256).bitsNeeded(), 9u);
    EXPECT_EQ(top.bitsNeeded(), 32u);
}

TEST(Interval, ValueAbsJoinIsDivergenceSafe)
{
    // Two defs of the same singleton stay uniform; two *different*
    // singletons do not — divergence can interleave per-lane writes from
    // both paths, leaving lanes with different values.
    const ValueAbs a{Interval::constant(5), true};
    const ValueAbs b{Interval::constant(5), true};
    const ValueAbs c{Interval::constant(9), true};

    EXPECT_TRUE(a.join(b).uniform);
    EXPECT_FALSE(a.join(c).uniform);
    const ValueAbs wide{Interval::range(0, 9), true};
    EXPECT_FALSE(wide.join(a).uniform);

    // Bottom is the identity for the uniformity claim too.
    EXPECT_TRUE(ValueAbs::bottom().join(a).uniform);
    EXPECT_FALSE(ValueAbs::bottom().join(ValueAbs{c.iv, false}).uniform);
}

TEST(Interval, EvalIntervalExactOnSingletons)
{
    const Opcode ops[] = {Opcode::IADD, Opcode::IMUL, Opcode::FADD,
                          Opcode::FMUL, Opcode::FFMA, Opcode::MOV,
                          Opcode::SFU};
    const std::uint32_t vals[] = {0u, 1u, 7u, 0x27d4eb2fu, 0xffffffffu};
    for (const Opcode op : ops) {
        for (const std::uint32_t a : vals) {
            for (const std::uint32_t b : vals) {
                const Interval got = analysis::evalInterval(
                    op, Interval::constant(a), Interval::constant(b),
                    Interval::constant(b));
                EXPECT_EQ(got, Interval::constant(aluEval(op, a, b, b)))
                    << opcodeName(op) << "(" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Interval, EvalIntervalSoundOnRanges)
{
    // Enumerate small operand ranges and check every concrete result lands
    // inside the abstract one, for every opcode (the hash-mixing ones may
    // go to top; containment is all the contract promises).
    const Opcode ops[] = {Opcode::IADD, Opcode::IMUL, Opcode::FADD,
                          Opcode::FMUL, Opcode::FFMA, Opcode::MOV,
                          Opcode::SFU};
    const Interval ia = Interval::range(3, 9);
    const Interval ib = Interval::range(100, 107);
    const Interval ic = Interval::range(0, 5);
    for (const Opcode op : ops) {
        const Interval got = analysis::evalInterval(op, ia, ib, ic);
        for (std::uint32_t a = ia.lo; a <= ia.hi; ++a) {
            for (std::uint32_t b = ib.lo; b <= ib.hi; ++b) {
                for (std::uint32_t c = ic.lo; c <= ic.hi; ++c) {
                    EXPECT_TRUE(got.contains(aluEval(op, a, b, c)))
                        << opcodeName(op) << "(" << a << ", " << b << ", "
                        << c << ") = " << aluEval(op, a, b, c)
                        << " outside " << got.toString();
                }
            }
        }
    }

    // Wrapping IADD over ranges must degrade soundly (top), not produce
    // an inverted interval.
    const Interval wrap = analysis::evalInterval(
        Opcode::IADD, Interval::range(0xfffffff0u, 0xffffffffu),
        Interval::range(0, 0x20), Interval::constant(0));
    EXPECT_TRUE(wrap.contains(0xfffffff0u));
    EXPECT_TRUE(wrap.contains(0x1fu)); // wrapped result
}

TEST(Interval, ProvenAddWrap)
{
    const Interval big = Interval::range(0x80000001u, 0xffffffffu);
    const Interval half = Interval::constant(0x80000000u);
    EXPECT_TRUE(analysis::provenAddWrap(big, half));
    EXPECT_TRUE(analysis::provenAddWrap(big, big));

    // 2^31 + 2^31 = 2^32 wraps to 0 on every instance: still proven.
    EXPECT_TRUE(analysis::provenAddWrap(half, half));

    // The max unwrapped sum (2^32 - 1) and anything smaller is not a wrap.
    EXPECT_FALSE(analysis::provenAddWrap(Interval::constant(0xffffffffu),
                                         Interval::constant(0)));
    EXPECT_FALSE(analysis::provenAddWrap(Interval::constant(1), half));
    EXPECT_FALSE(analysis::provenAddWrap(Interval::bottom(), big));
}

TEST(Interval, AffineFormLaneAddresses)
{
    analysis::AffineForm global;
    global.baseLo = 0x1000;
    global.baseHi = 0x2000;
    global.laneStride = 4;
    EXPECT_EQ(global.laneMax(), 0x2000u + 4u * (kWarpSize - 1));
    EXPECT_TRUE(global.containsLaneAddr(0x1000));
    EXPECT_TRUE(global.containsLaneAddr(global.laneMax()));
    EXPECT_FALSE(global.containsLaneAddr(0xfff));
    EXPECT_FALSE(global.containsLaneAddr(global.laneMax() + 1));

    analysis::AffineForm shared;
    shared.wrap = 2048;
    EXPECT_TRUE(shared.containsLaneAddr(0));
    EXPECT_TRUE(shared.containsLaneAddr(2047));
    EXPECT_FALSE(shared.containsLaneAddr(2048));
}

// --- Fixpoint engine ------------------------------------------------------

/**
 * Toy domain over a single interval: block 1 is a loop body that adds one
 * each trip, so its entry ascends forever without widening.
 */
struct CounterDomain
{
    using State = Interval;

    State boundary() const { return Interval::constant(0); }
    State bottomState() const { return Interval::bottom(); }

    State
    transfer(int block, State in) const
    {
        if (block != 1 || in.isBottom())
            return in;
        return analysis::evalInterval(Opcode::IADD, in,
                                      Interval::constant(1),
                                      Interval::constant(0));
    }

    static State join(const State &a, const State &b) { return a.join(b); }
    static State widen(const State &prev, const State &next)
    {
        return prev.widen(next);
    }
};

CfgCheckResult
makeLoopCfg()
{
    // B0 -> B1; B1 -> {B1, B2}; B3 exists but is unreachable.
    CfgCheckResult cfg;
    cfg.succs = {{1}, {1, 2}, {}, {2}};
    cfg.preds = {{}, {0, 1}, {1, 3}, {}};
    cfg.reachable = {1, 1, 1, 0};
    return cfg;
}

TEST(Fixpoint, WideningTerminatesOnAscendingChain)
{
    const CfgCheckResult cfg = makeLoopCfg();
    const auto fix = analysis::runFixpoint(CounterDomain{}, cfg);

    ASSERT_EQ(fix.in.size(), 4u);
    // The loop entry ascends 0, [0,1], [0,2], ... until widening fires;
    // every concrete iterate must stay inside the final abstraction.
    EXPECT_FALSE(fix.in[1].isBottom());
    for (std::uint32_t k = 0; k < 100; ++k)
        EXPECT_TRUE(fix.in[1].contains(k));
    // The loop exit inherits a sound (post-widening) interval too.
    EXPECT_TRUE(fix.in[2].covers(fix.in[1]));
    // Unreachable blocks are never transferred and stay bottom.
    EXPECT_TRUE(fix.in[3].isBottom());
    // Termination came from widening, well short of the panic cap
    // (4 blocks -> cap = 4 * 17 * 8 + 64 = 608).
    EXPECT_GT(fix.iterations, 0u);
    EXPECT_LT(fix.iterations, 200u);
}

TEST(Fixpoint, NoWideningNeededStaysExact)
{
    // Same CFG but an identity transfer: the engine must converge to the
    // exact boundary constant everywhere reachable, untouched by widening.
    struct IdentityDomain : CounterDomain
    {
        State transfer(int, State in) const { return in; }
    };
    const CfgCheckResult cfg = makeLoopCfg();
    const auto fix = analysis::runFixpoint(IdentityDomain{}, cfg);
    EXPECT_EQ(fix.in[1], Interval::constant(0));
    EXPECT_EQ(fix.in[2], Interval::constant(0));
    EXPECT_TRUE(fix.in[3].isBottom());
}

// --- Value-range pass on hand-built kernels -------------------------------

/** r1=0; r2=SFU(0); r3=r2+r2; r4=r3+r3; r5=r4+r4 (provably wraps). */
std::unique_ptr<Kernel>
makeConstChainKernel()
{
    KernelBuilder b("const-chain");
    b.regsPerThread(8);
    b.gridCtas(4);
    b.newBlock();
    b.alu(Opcode::IADD, 1, -1, -1); // reads two zeros -> 0
    b.sfu(2, 1);
    b.alu(Opcode::IADD, 3, 2, 2);
    b.alu(Opcode::IADD, 4, 3, 3);
    b.alu(Opcode::IADD, 5, 4, 4);
    b.exit();
    return b.finalize();
}

TEST(ValueRange, ConstantChainFoldsExactly)
{
    const auto kernel = makeConstChainKernel();
    auto full = AnalysisManager::withDefaultPasses();
    const auto *vr = full->resultOf<ValueRangeResult>(
        *kernel, ValueRangeResult::kName);
    ASSERT_NE(vr, nullptr);

    // Expected chain, computed with the architectural semantics directly.
    const std::uint32_t v1 = 0;
    const std::uint32_t v2 = aluEval(Opcode::SFU, v1, 0, 0);
    const std::uint32_t v3 = v2 + v2;
    const std::uint32_t v4 = v3 + v3;
    const std::uint32_t v5 = v4 + v4; // wraps: v4 > 2^31
    ASSERT_GT(v4, 0x80000000u);

    ASSERT_EQ(vr->defInterval.size(), kernel->instrs().size());
    EXPECT_EQ(vr->defInterval[0], Interval::constant(v1));
    EXPECT_EQ(vr->defInterval[1], Interval::constant(v2));
    EXPECT_EQ(vr->defInterval[2], Interval::constant(v3));
    EXPECT_EQ(vr->defInterval[3], Interval::constant(v4));
    EXPECT_EQ(vr->defInterval[4], Interval::constant(v5));
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_TRUE(vr->defUniform[i]) << "def " << i;
    EXPECT_EQ(vr->regJoin[5], Interval::constant(v5));
    EXPECT_TRUE(vr->regUniform[5]);
    EXPECT_GE(vr->constFoldableDefs, 5u);
    EXPECT_EQ(vr->overflowDefs, 1u);

    const auto lint = analysis::lintKernel(*full, *kernel);
    EXPECT_TRUE(lint.diags.has(DiagKind::ConstantFoldableDef));
    const auto *ov = lint.diags.find(DiagKind::ValueOverflow);
    ASSERT_NE(ov, nullptr);
    EXPECT_EQ(ov->instr, 4);
    EXPECT_EQ(ov->severity, analysis::Severity::Warning);
    EXPECT_EQ(lint.stats.constFoldableDefs, vr->constFoldableDefs);
    EXPECT_EQ(lint.stats.overflowDefs, 1u);

    // All claims (including the wrapped constant) hold dynamically.
    const XCheckReport xc = crossValidate(*full, *kernel, 42);
    EXPECT_TRUE(xc.clean()) << xc.diags.renderText();
    EXPECT_GE(xc.checkedDefs, 5u);
}

/** Diamond whose arms move two *different* constants into r5. */
std::unique_ptr<Kernel>
makeDisjointDiamondKernel()
{
    KernelBuilder b("disjoint-diamond");
    b.regsPerThread(8);
    b.gridCtas(4);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 1, -1, -1); // r1 = 0
    b.sfu(2, 1);                    // r2 = SFU(0)
    b.branch(2, 0, 0.5, 0.5);       // divergence-capable branch on R0
    b.newBlock();                 // B1: else
    b.mov(5, 1);
    b.jump(3);
    b.newBlock();                 // B2: then
    b.mov(5, 2);
    b.newBlock();                 // B3: join
    b.alu(Opcode::IADD, 6, 5, 5);
    b.exit();
    return b.finalize();
}

TEST(ValueRange, DiamondJoinOfDisjointConstants)
{
    const auto kernel = makeDisjointDiamondKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto *vr = manager->resultOf<ValueRangeResult>(
        *kernel, ValueRangeResult::kName);
    ASSERT_NE(vr, nullptr);

    const std::uint32_t sfu0 = aluEval(Opcode::SFU, 0, 0, 0);

    // Each arm's MOV def is an exact uniform singleton...
    const unsigned mov_else = 3, mov_then = 5, join_add = 6;
    EXPECT_EQ(vr->defInterval[mov_else], Interval::constant(0));
    EXPECT_EQ(vr->defInterval[mov_then], Interval::constant(sfu0));
    EXPECT_TRUE(vr->defUniform[mov_else]);
    EXPECT_TRUE(vr->defUniform[mov_then]);

    // ...the register join spans both arms...
    EXPECT_EQ(vr->regJoin[5], Interval::range(0, sfu0));

    // ...and the consumer past the join sees the joined interval and must
    // NOT claim uniformity: divergence can leave lanes holding different
    // r5 values within one warp.
    EXPECT_TRUE(vr->defInterval[join_add].contains(0));
    EXPECT_TRUE(vr->defInterval[join_add].contains(sfu0 + sfu0));
    EXPECT_FALSE(vr->defUniform[join_add]);

    // The divergence-safety of that uniformity decision is exactly what
    // the dynamic validator checks (diverge_prob = 0.5 exercises it).
    auto xc = crossValidate(*manager, *kernel, 7);
    EXPECT_TRUE(xc.clean()) << xc.diags.renderText();
}

/** B1 is a nested-loop body accumulating r1 += SFU(0) each trip. */
std::unique_ptr<Kernel>
makeNestedLoopKernel()
{
    KernelBuilder b("nested-loops");
    b.regsPerThread(8);
    b.gridCtas(4);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 1, -1, -1);
    b.sfu(2, 1);
    b.newBlock();                 // B1: inner body
    b.alu(Opcode::IADD, 1, 1, 2);
    b.loopBranch(1, 0, 4);        // inner: 4 trips
    b.newBlock();                 // B2: outer latch
    b.mov(3, 1);
    b.loopBranch(1, 0, 3);        // outer: 3 trips around B1..B2
    b.newBlock();                 // B3
    b.exit();
    return b.finalize();
}

TEST(ValueRange, NestedLoopAccumulationWidensSoundly)
{
    const auto kernel = makeNestedLoopKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto *vr = manager->resultOf<ValueRangeResult>(
        *kernel, ValueRangeResult::kName);
    const auto *mem = manager->resultOf<MemAccessResult>(
        *kernel, MemAccessResult::kName);
    ASSERT_NE(vr, nullptr);
    ASSERT_NE(mem, nullptr);

    // The loop-carried accumulation is an ascending chain; the fixpoint
    // must terminate (no panic) with a def interval covering every value
    // the 4x3 nested trips can reach.
    const std::uint32_t step = aluEval(Opcode::SFU, 0, 0, 0);
    const unsigned accum_def = 2; // IADD r1, r1, r2 in B1
    EXPECT_FALSE(vr->defInterval[accum_def].isBottom());
    for (std::uint32_t k = 1; k <= 12; ++k) {
        EXPECT_TRUE(vr->defInterval[accum_def].contains(k * step))
            << "iterate " << k << " escaped "
            << vr->defInterval[accum_def].toString();
    }
    EXPECT_GT(vr->fixpointIterations, 0u);

    // Per-block execution bounds multiply the nested trip counts.
    ASSERT_EQ(mem->blockExecBound.size(), 4u);
    EXPECT_EQ(mem->blockExecBound[0], 1u);
    EXPECT_EQ(mem->blockExecBound[1], 12u); // 4 inner x 3 outer
    EXPECT_EQ(mem->blockExecBound[2], 3u);
    EXPECT_EQ(mem->blockExecBound[3], 1u);
    EXPECT_TRUE(mem->warpInstrBoundKnown);

    // Observed execution counts and values stay inside the abstractions.
    auto xc = crossValidate(*manager, *kernel, 11);
    EXPECT_TRUE(xc.clean()) << xc.diags.renderText();
}

TEST(ValueRange, DegenerateSingleTripLoopStaysExact)
{
    KernelBuilder b("one-trip-loop");
    b.regsPerThread(8);
    b.gridCtas(4);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 1, -1, -1);
    b.newBlock();                 // B1: "loop" body that never re-enters
    b.sfu(2, 1);
    b.loopBranch(1, 0, 1);        // trip_count 1: back edge never taken
    b.newBlock();                 // B2
    b.exit();
    const auto kernel = b.finalize();

    auto manager = AnalysisManager::withDefaultPasses();
    const auto *vr = manager->resultOf<ValueRangeResult>(
        *kernel, ValueRangeResult::kName);
    const auto *mem = manager->resultOf<MemAccessResult>(
        *kernel, MemAccessResult::kName);
    ASSERT_NE(vr, nullptr);
    ASSERT_NE(mem, nullptr);

    // The static back edge exists but its body is idempotent over the
    // abstraction, so the def stays an exact singleton — no widening blowup
    // from a loop that dynamically runs once.
    EXPECT_EQ(vr->defInterval[1], Interval::constant(aluEval(Opcode::SFU,
                                                             0, 0, 0)));
    EXPECT_EQ(mem->blockExecBound[1], 1u);

    auto xc = crossValidate(*manager, *kernel, 5);
    EXPECT_TRUE(xc.clean()) << xc.diags.renderText();
}

TEST(ValueRange, UnreachableBlocksKeepBottomDefs)
{
    // Seed the UnreachableBlock defect (BRA demoted to JMP) into generated
    // kernels until one applies, then check the pass still runs and the
    // orphaned block's defs read as bottom (never joined into regJoin).
    std::optional<analysis::DefectCandidate> cand;
    for (std::uint64_t seed = 1; seed <= 20 && !cand; ++seed) {
        const auto kernel = generateKernelSpec(seed).build();
        cand = analysis::KernelMutator::seedDefect(
            *kernel, analysis::DefectKind::UnreachableBlock, seed);
    }
    ASSERT_TRUE(cand.has_value()) << "no diamond to orphan in 20 seeds";

    auto full = AnalysisManager::withDefaultPasses(cand->options);
    const auto *cfg = full->resultOf<CfgCheckResult>(
        *cand->kernel, CfgCheckResult::kName);
    const auto *vr = full->resultOf<ValueRangeResult>(
        *cand->kernel, ValueRangeResult::kName);
    ASSERT_NE(cfg, nullptr);
    ASSERT_NE(vr, nullptr) << "value-range must run: the CFG stays "
                              "structurally sound, just partly unreachable";
    ASSERT_FALSE(cfg->allReachable);

    unsigned unreachable_defs = 0;
    const auto &instrs = cand->kernel->instrs();
    for (unsigned i = 0; i < instrs.size(); ++i) {
        const int blk = cand->kernel->blockOfInstr(i);
        if (blk < 0 || cfg->reachable[blk])
            continue;
        if (instrs[i].dst >= 0) {
            ++unreachable_defs;
            EXPECT_TRUE(vr->defInterval[i].isBottom())
                << "unreachable def at I" << i << " has "
                << vr->defInterval[i].toString();
        }
    }
    EXPECT_GT(unreachable_defs, 0u);
}

// --- Mem-access: loop budget ---------------------------------------------

TEST(MemAccess, LoopBudgetExceededWarns)
{
    KernelBuilder b("runaway-loop");
    b.regsPerThread(8);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 1, -1, -1);
    b.newBlock();                 // B1
    b.alu(Opcode::IADD, 2, 1, 1);
    b.loopBranch(1, 0, 1u << 23); // 8M trips x 2 instrs >> 4M budget
    b.newBlock();                 // B2
    b.exit();
    const auto kernel = b.finalize();

    const auto lint = analysis::lintKernel(*kernel);
    const auto *diag = lint.diags.find(DiagKind::LoopBudgetExceeded);
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, analysis::Severity::Warning);
    EXPECT_TRUE(lint.clean()) << "budget overrun is advisory, not an error";
}

// --- Shmem race verdicts --------------------------------------------------

std::unique_ptr<Kernel>
makeSharedKernel(bool with_store, bool with_barrier)
{
    KernelBuilder b(with_barrier ? "shared-sync" : "shared-racy");
    b.regsPerThread(8);
    b.shmemPerCta(2048);
    b.gridCtas(4);
    MemPattern pat;
    pat.region = 0;
    pat.footprint = 2048;
    pat.stride = 128;
    b.newBlock();
    if (with_store)
        b.store(Opcode::ST_SHARED, 0, 1, pat);
    if (with_barrier)
        b.barrier();
    b.load(Opcode::LD_SHARED, 2, 0, pat);
    b.alu(Opcode::IADD, 3, 2, 2);
    b.exit();
    return b.finalize();
}

TEST(ShmemRace, VerdictsAcrossBarrierPlacement)
{
    const auto loads_only = makeSharedKernel(false, false);
    const auto racy = makeSharedKernel(true, false);
    const auto synced = makeSharedKernel(true, true);
    auto manager = AnalysisManager::withDefaultPasses();

    const auto *r0 = manager->resultOf<ShmemRaceCheckResult>(
        *loads_only, ShmemRaceCheckResult::kName);
    ASSERT_NE(r0, nullptr);
    EXPECT_EQ(r0->verdict, "race-free");
    EXPECT_EQ(r0->sharedOps, 1u);
    EXPECT_EQ(r0->racyPairs, 0u);

    const auto *r1 = manager->resultOf<ShmemRaceCheckResult>(
        *racy, ShmemRaceCheckResult::kName);
    ASSERT_NE(r1, nullptr);
    EXPECT_EQ(r1->verdict, "possibly-racy");
    EXPECT_GE(r1->racyPairs, 1u);
    EXPECT_EQ(r1->intervals, 1u);
    const auto lint = analysis::lintKernel(*manager, *racy);
    const auto *diag = lint.diags.find(DiagKind::SharedMemRace);
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, analysis::Severity::Warning);
    EXPECT_EQ(lint.stats.raceVerdict, "possibly-racy");

    const auto *r2 = manager->resultOf<ShmemRaceCheckResult>(
        *synced, ShmemRaceCheckResult::kName);
    ASSERT_NE(r2, nullptr);
    EXPECT_EQ(r2->verdict, "sync-protected");
    EXPECT_EQ(r2->barriers, 1u);
    EXPECT_EQ(r2->intervals, 2u);
    EXPECT_EQ(r2->racyPairs, 0u);
    EXPECT_GE(r2->orderedPairs, 1u);

    // Shared lane offsets observed at runtime stay inside the affine
    // forms for all three shapes.
    for (const Kernel *k : {loads_only.get(), racy.get(), synced.get()}) {
        auto xc = crossValidate(*manager, *k, 3);
        EXPECT_TRUE(xc.clean()) << k->name() << "\n"
                                << xc.diags.renderText();
        EXPECT_GE(xc.checkedOps, 1u);
    }
}

// --- Compressibility ------------------------------------------------------

TEST(Compressibility, ClaimCoversDerivedOnGeneratedKernels)
{
    // The compiler's flow-insensitive width claim must always cover the
    // flow-sensitive derivation, so clean kernels never draw the
    // too-narrow warning.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto kernel = generateKernelSpec(seed).build();
        auto manager = AnalysisManager::withDefaultPasses();
        const auto *comp = manager->resultOf<CompressibilityResult>(
            *kernel, CompressibilityResult::kName);
        ASSERT_NE(comp, nullptr);
        for (std::size_t r = 0; r < comp->derivedBits.size(); ++r) {
            EXPECT_GE(comp->claimedBits[r], comp->derivedBits[r])
                << "seed " << seed << " r" << r;
        }
        const auto lint = analysis::lintKernel(*manager, *kernel);
        EXPECT_FALSE(lint.diags.has(DiagKind::CompressionClaimTooNarrow))
            << "seed " << seed;
        EXPECT_GT(lint.stats.predictedCompressionRatio, 0.0);
        EXPECT_LE(lint.stats.predictedCompressionRatio, 1.0);
    }
}

TEST(Compressibility, ConstantKernelPredictsCompression)
{
    // A kernel of pure constant chains is maximally compressible: every
    // def is narrow and warp-uniform, so the predicted ratio collapses.
    const auto kernel = makeConstChainKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto *comp = manager->resultOf<CompressibilityResult>(
        *kernel, CompressibilityResult::kName);
    ASSERT_NE(comp, nullptr);
    EXPECT_EQ(comp->defCount, 5u);
    EXPECT_EQ(comp->uniformRegCount, 5u);
    // r1/r2/r3/r5 need < 32 bits; r4 (0x9f53acbc) is full-width.
    EXPECT_EQ(comp->narrowRegs, 4u);
    EXPECT_LT(comp->predictedRatio, 0.1);
    EXPECT_LT(comp->meanBitsPerDef, 32.0);
}

TEST(Compressibility, NarrowClaimHookCaughtStaticallyAndDynamically)
{
    // r1 copies a full-width launch hash; force the compiler claim for r1
    // down to zero bits. The static comparison must warn, and the dynamic
    // cross-validator must reject the claim with an Error.
    KernelBuilder b("narrow-claim");
    b.regsPerThread(8);
    b.gridCtas(4);
    b.newBlock();
    b.mov(1, 0);
    b.alu(Opcode::IADD, 2, 1, 1);
    b.exit();
    const auto kernel = b.finalize();

    analysis::LintOptions opts;
    opts.narrowClaimReg = 1;
    opts.narrowClaimBits = 0;
    auto manager = AnalysisManager::withDefaultPasses(opts);

    const auto *comp = manager->resultOf<CompressibilityResult>(
        *kernel, CompressibilityResult::kName);
    ASSERT_NE(comp, nullptr);
    EXPECT_EQ(comp->claimedBits[1], 0u);
    EXPECT_EQ(comp->derivedBits[1], 32u); // launch hash is full-width

    const auto lint = analysis::lintKernel(*manager, *kernel);
    const auto *warn = lint.diags.find(DiagKind::CompressionClaimTooNarrow);
    ASSERT_NE(warn, nullptr);
    EXPECT_EQ(warn->severity, analysis::Severity::Warning);
    EXPECT_EQ(warn->reg, 1);

    // Thread 0 of CTA 0 provably writes a nonzero hash into r1.
    ASSERT_NE(initRegValue(0, 0, 0), 0u);
    auto xc = crossValidate(*manager, *kernel, 9);
    EXPECT_FALSE(xc.clean());
    EXPECT_TRUE(xc.diags.has(DiagKind::CompressionWidthUnsound))
        << xc.diags.renderText();
}

// --- Seeded soundness property test ---------------------------------------

TEST(ValueSoundness, ObservedAlwaysWithinStaticAbstraction)
{
    // The property the whole subsystem rests on: for any generated kernel
    // and any seed, every observed value, address, and execution count
    // lies inside the static abstraction. On failure, greedily shrink the
    // spec to the smallest reproducing kernel before reporting.
    const auto reproduces = [](const KernelSpec &spec) {
        const auto kernel = spec.build();
        auto manager = AnalysisManager::withDefaultPasses();
        return !crossValidate(*manager, *kernel, spec.seed).clean();
    };

    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        GenOptions options;
        options.emitBarriers = (seed % 2) == 0;
        KernelSpec spec = generateKernelSpec(seed, options);
        const auto kernel = spec.build();
        auto manager = AnalysisManager::withDefaultPasses();
        const XCheckReport xc = crossValidate(*manager, *kernel, seed);
        ASSERT_FALSE(xc.skipped) << spec.describe();
        EXPECT_GT(xc.checkedDefs, 0u) << spec.describe();
        if (xc.clean())
            continue;

        const KernelSpec minimal = minimizeSpec(spec, reproduces);
        const auto small = minimal.build();
        auto small_manager = AnalysisManager::withDefaultPasses();
        const XCheckReport small_xc =
            crossValidate(*small_manager, *small, minimal.seed);
        ADD_FAILURE() << "soundness violation, minimized to: "
                      << minimal.describe() << "\n"
                      << small_xc.diags.renderText();
        break; // one shrunk counterexample is enough
    }
}

} // namespace
} // namespace finereg
