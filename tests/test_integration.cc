/**
 * @file
 * Cross-module integration and invariant tests: conservation of executed
 * work across policies, determinism of full runs, PCRF/status-monitor
 * consistency at completion, dispatcher behaviour, and the Gpu's
 * cycle-skipping fast path.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "policies/finereg_policy.hh"
#include "sm/cta_dispatcher.hh"
#include "sm/gpu.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

TEST(CtaDispatcher, HandsOutSequentialIds)
{
    CtaDispatcher dispatcher(3);
    EXPECT_TRUE(dispatcher.hasWork());
    EXPECT_EQ(dispatcher.pop(), 0u);
    EXPECT_EQ(dispatcher.pop(), 1u);
    EXPECT_EQ(dispatcher.remaining(), 1u);
    EXPECT_EQ(dispatcher.pop(), 2u);
    EXPECT_FALSE(dispatcher.hasWork());
}

TEST(CtaDispatcher, CompletionTracking)
{
    CtaDispatcher dispatcher(2);
    EXPECT_FALSE(dispatcher.allComplete());
    dispatcher.noteCompleted();
    dispatcher.noteCompleted();
    EXPECT_TRUE(dispatcher.allComplete());
    EXPECT_EQ(dispatcher.completed(), 2u);
}

TEST(CtaDispatcherDeath, PopOnEmptyPanics)
{
    CtaDispatcher dispatcher(1);
    dispatcher.pop();
    EXPECT_DEATH(dispatcher.pop(), "empty grid");
}

class PolicyInvariants : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyInvariants, RunIsDeterministic)
{
    GpuConfig config = Experiment::configFor(GetParam());
    const SimResult a = Experiment::runApp("NW", config, 0.1);
    const SimResult b = Experiment::runApp("NW", config, 0.1);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.dramBytesTotal(), b.dramBytesTotal());
}

TEST_P(PolicyInvariants, CompletesEveryCtaOfTheGrid)
{
    GpuConfig config = Experiment::configFor(GetParam());
    const auto kernel = Suite::makeKernel(Suite::byName("SY2"), 0.1);
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_EQ(result.completedCtas, kernel->gridCtas());
    // No resident CTAs may remain anywhere.
    for (auto &sm : gpu.sms())
        EXPECT_TRUE(sm->residentCtas().empty());
}

TEST_P(PolicyInvariants, OccupancyWithinResidencyCaps)
{
    GpuConfig config = Experiment::configFor(GetParam());
    const SimResult r = Experiment::runApp("MC", config, 0.2);
    EXPECT_LE(r.avgResidentCtas, config.sm.maxResidentCtas + 0.01);
    EXPECT_LE(r.avgActiveCtas, config.sm.maxCtas + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::Values(PolicyKind::Baseline, PolicyKind::VirtualThread,
                      PolicyKind::RegDram, PolicyKind::RegMutex,
                      PolicyKind::FineReg));

TEST(FineRegInvariants, PcrfEmptyAfterCompletion)
{
    GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    const auto kernel = Suite::makeKernel(Suite::byName("MC"), 0.15);
    Gpu gpu(config, *kernel);
    gpu.run();
    auto &policy = static_cast<FineRegPolicy &>(gpu.policy());
    for (auto &sm : gpu.sms()) {
        const Pcrf &pcrf = policy.pcrfOf(*sm);
        EXPECT_EQ(pcrf.numPendingCtas(), 0u);
        EXPECT_EQ(pcrf.freeEntries(), pcrf.numEntries());
        EXPECT_EQ(policy.acrfOf(*sm).usedWarpRegs(), 0u);
        EXPECT_EQ(policy.monitorOf(*sm).numTracked(), 0u);
    }
}

TEST(FineRegInvariants, StoredEqualsRestored)
{
    GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    const auto kernel = Suite::makeKernel(Suite::byName("SR2"), 0.2);
    Gpu gpu(config, *kernel);
    gpu.run();
    EXPECT_EQ(gpu.stats().counterValue("pcrf.stored_ctas"),
              gpu.stats().counterValue("pcrf.restored_ctas"));
    EXPECT_EQ(gpu.stats().counterValue("pcrf.writes"),
              gpu.stats().counterValue("pcrf.reads"));
}

TEST(FineRegInvariants, UsesLessPcrfSpaceThanFullContextWould)
{
    GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    const auto kernel = Suite::makeKernel(Suite::byName("LI"), 0.2);
    Gpu gpu(config, *kernel);
    gpu.run();
    const double stores = static_cast<double>(
        gpu.stats().counterValue("pcrf.stored_ctas"));
    if (stores > 0) {
        const double live_per_cta =
            gpu.stats().counterValue("pcrf.writes") / stores;
        // LI is a Fig. 5 low-liveness app: far below full context.
        EXPECT_LT(live_per_cta, 0.5 * kernel->warpRegsPerCta());
    }
}

TEST(UnifiedMemoryRuns, AllThreeVariantsComplete)
{
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::VirtualThread,
          PolicyKind::FineReg}) {
        GpuConfig config = Experiment::configFor(kind);
        config.policy.unifiedMemory = true;
        const SimResult r = Experiment::runApp("AT", config, 0.1);
        EXPECT_FALSE(r.hitCycleLimit) << policyKindName(kind);
        EXPECT_GT(r.ipc, 0.0);
    }
}

TEST(GrowthDamper, HigherFactorNeverReducesResidency)
{
    GpuConfig low = Experiment::configFor(PolicyKind::FineReg);
    low.policy.pendingGrowthFactor = 0.5;
    GpuConfig high = Experiment::configFor(PolicyKind::FineReg);
    high.policy.pendingGrowthFactor = 3.0;
    const SimResult a = Experiment::runApp("MC", low, 0.25);
    const SimResult b = Experiment::runApp("MC", high, 0.25);
    EXPECT_GE(b.avgResidentCtas + 0.5, a.avgResidentCtas);
}

TEST(Fig4Configs, IdealBeatsEverything)
{
    GpuConfig ideal = Experiment::configFor(PolicyKind::Baseline);
    ideal.sm.maxCtas = 4096;
    ideal.sm.maxWarps = 8192;
    ideal.sm.maxThreads = 1u << 20;
    ideal.sm.regFileBytes = 1ull << 30;
    ideal.sm.shmemBytes = 1ull << 30;
    ideal.sm.maxResidentCtas = 4096;
    ideal.sm.maxResidentWarps = 8192;
    const SimResult unlimited = Experiment::runApp("CS", ideal, 0.2);
    const SimResult base = Experiment::runApp(
        "CS", Experiment::configFor(PolicyKind::Baseline), 0.2);
    EXPECT_GE(unlimited.ipc, base.ipc);
    EXPECT_GT(unlimited.avgResidentCtas, base.avgResidentCtas);
}

} // namespace
} // namespace finereg
