/**
 * @file
 * Tests for the statistics registry and table formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace finereg
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Distribution, SingleSampleIsMinAndMax)
{
    Distribution d;
    d.sample(-3.5);
    EXPECT_DOUBLE_EQ(d.min(), -3.5);
    EXPECT_DOUBLE_EQ(d.max(), -3.5);
    EXPECT_DOUBLE_EQ(d.mean(), -3.5);
}

TEST(StatGroup, CounterLookupByName)
{
    StatGroup group("test");
    group.counter("a").inc(5);
    group.counter("b").inc(7);
    EXPECT_EQ(group.counterValue("a"), 5u);
    EXPECT_EQ(group.counterValue("b"), 7u);
    EXPECT_EQ(group.counterValue("missing"), 0u);
    EXPECT_TRUE(group.hasCounter("a"));
    EXPECT_FALSE(group.hasCounter("missing"));
}

TEST(StatGroup, SameNameReturnsSameCounter)
{
    StatGroup group("test");
    Counter &a = group.counter("x");
    a.inc(3);
    EXPECT_EQ(group.counter("x").value(), 3u);
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup group("test");
    group.counter("a").inc(5);
    group.distribution("d").sample(1.0);
    group.resetAll();
    EXPECT_EQ(group.counterValue("a"), 0u);
    EXPECT_EQ(group.distribution("d").count(), 0u);
}

TEST(StatGroup, CounterNamesSorted)
{
    StatGroup group("test");
    group.counter("zebra");
    group.counter("alpha");
    const auto names = group.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zebra");
}

TEST(StatGroup, DumpContainsValues)
{
    StatGroup group("grp");
    group.counter("hits").inc(12);
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("grp.hits 12"), std::string::npos);
}

TEST(TableFormatter, AlignsColumns)
{
    TableFormatter table({"app", "value"});
    table.addRow({"BF", "1.00"});
    table.addRow({"LONGNAME", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("LONGNAME"), std::string::npos);
    // Header line, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableFormatterDeath, WrongArityPanics)
{
    TableFormatter table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(TableFormatter, NumberFormatting)
{
    EXPECT_EQ(TableFormatter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TableFormatter::num(2.0, 0), "2");
    EXPECT_EQ(TableFormatter::pct(0.328, 1), "32.8%");
}

TEST(Aggregates, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(AggregatesDeath, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "non-positive");
}

} // namespace
} // namespace finereg
