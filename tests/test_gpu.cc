/**
 * @file
 * Whole-device tests: end-to-end kernel completion, determinism, cycle
 * skipping correctness, occupancy statistics, and the cycle cap.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "sm/gpu.hh"

namespace finereg
{
namespace
{

std::unique_ptr<Kernel>
mixedKernel(unsigned grid = 64)
{
    KernelBuilder b("mixed");
    b.regsPerThread(16).threadsPerCta(64).gridCtas(grid);
    MemPattern stream;
    stream.footprint = 8ull << 20;
    b.newBlock();
    b.alu(Opcode::IADD, 0, 0);
    b.alu(Opcode::IADD, 1, 0);
    b.newBlock();
    b.load(Opcode::LD_GLOBAL, 2, 0, stream);
    b.alu(Opcode::FADD, 3, 2, 1);
    b.alu(Opcode::FMUL, 1, 3, 1);
    b.alu(Opcode::IADD, 0, 0, 1);
    b.loopBranch(1, 0, 4);
    b.newBlock();
    b.store(Opcode::ST_GLOBAL, 0, 1, stream);
    b.exit();
    return b.finalize();
}

GpuConfig
smallConfig()
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    return config;
}

TEST(Gpu, CompletesAllCtas)
{
    const auto kernel = mixedKernel();
    Gpu gpu(smallConfig(), *kernel);
    const GpuRunResult result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_EQ(result.completedCtas, 64u);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.ipc(), 0.0);
}

TEST(Gpu, InstructionCountMatchesExpectation)
{
    const auto kernel = mixedKernel(8);
    Gpu gpu(smallConfig(), *kernel);
    const GpuRunResult result = gpu.run();
    // Per warp: 2 prologue + 4 iterations x 5 body + 2 epilogue = 24.
    // 8 CTAs x 2 warps = 16 warps.
    EXPECT_EQ(result.instructions, 16u * 24);
}

TEST(Gpu, DeterministicAcrossRuns)
{
    const auto k1 = mixedKernel();
    const auto k2 = mixedKernel();
    Gpu a(smallConfig(), *k1);
    Gpu b(smallConfig(), *k2);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
}

TEST(Gpu, SeedChangesScheduleNotWork)
{
    const auto k1 = mixedKernel();
    GpuConfig config = smallConfig();
    config.seed = 999;
    Gpu a(smallConfig(), *k1);
    const auto k2 = mixedKernel();
    Gpu b(config, *k2);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.instructions, rb.instructions);
}

TEST(Gpu, CycleCapStopsRunaway)
{
    const auto kernel = mixedKernel(256);
    GpuConfig config = smallConfig();
    config.maxCycles = 100;
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_TRUE(result.hitCycleLimit);
    EXPECT_LT(result.completedCtas, 256u);
}

TEST(Gpu, StatsPopulated)
{
    const auto kernel = mixedKernel();
    Gpu gpu(smallConfig(), *kernel);
    gpu.run();
    EXPECT_GT(gpu.stats().counterValue("gpu.cycles"), 0u);
    EXPECT_GT(gpu.stats().counterValue("sm.issued"), 0u);
    EXPECT_GT(gpu.stats().counterValue("dram.accesses"), 0u);
    EXPECT_GT(gpu.stats().counterValue("sm.resident_cta_cycles"), 0u);
}

TEST(Gpu, OccupancyNeverExceedsLimits)
{
    const auto kernel = mixedKernel();
    GpuConfig config = smallConfig();
    Gpu gpu(config, *kernel);
    gpu.run();
    const double cycles =
        static_cast<double>(gpu.stats().counterValue("gpu.cycles"));
    const double avg_active =
        gpu.stats().counterValue("sm.active_cta_cycles") /
        (cycles * config.numSms);
    EXPECT_LE(avg_active, config.sm.maxCtas);
    const double avg_threads =
        gpu.stats().counterValue("sm.active_thread_cycles") /
        (cycles * config.numSms);
    EXPECT_LE(avg_threads, config.sm.maxThreads);
}

TEST(Gpu, LrrSchedulerAlsoCompletes)
{
    const auto kernel = mixedKernel();
    GpuConfig config = smallConfig();
    config.sm.sched = SchedKind::LRR;
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_EQ(result.completedCtas, 64u);
}

TEST(Gpu, DivergentKernelCompletes)
{
    KernelBuilder b("divergent");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(32);
    b.newBlock();                 // B0
    b.alu(Opcode::IADD, 0, 0);
    b.newBlock();                 // B1: diverging branch
    b.branch(3, 0, 0.5, 0.8);
    b.newBlock();                 // B2: else
    b.alu(Opcode::IADD, 1, 0);
    b.jump(4);
    b.newBlock();                 // B3: then
    b.alu(Opcode::IMUL, 1, 0);
    b.newBlock();                 // B4: join
    b.alu(Opcode::IADD, 2, 1);
    b.exit();
    const auto kernel = b.finalize();
    Gpu gpu(smallConfig(), *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_EQ(result.completedCtas, 32u);
    EXPECT_GT(gpu.stats().counterValue("sm.divergences"), 0u);
}

} // namespace
} // namespace finereg
