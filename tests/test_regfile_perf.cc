/**
 * @file
 * Hot-path regression suite (DESIGN.md §14): the perf machinery — event
 * wheel, arena-style PCRF chains, sampled auditing — must be invisible in
 * simulated results. Event-wheel skipping is pinned bit-identical to
 * stepping every cycle across all five policies (serially and through a
 * ParallelRunner pool), the PCRF arena is stressed through fragmentation
 * churn and fault-forced PCRF-full fallbacks, and the host_perf counters
 * are sanity-checked so the wall-time telemetry stays trustworthy.
 */

#include <gtest/gtest.h>

#include "core/parallel_runner.hh"
#include "core/simulator.hh"
#include "ref/arch_state.hh"
#include "ref/kernel_gen.hh"
#include "regfile/pcrf.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::Baseline, PolicyKind::VirtualThread, PolicyKind::RegDram,
    PolicyKind::RegMutex, PolicyKind::FineReg};

constexpr IdleSkipMode kAllSkipModes[] = {IdleSkipMode::Wheel,
                                          IdleSkipMode::LegacyScan,
                                          IdleSkipMode::StepEveryCycle};

GpuConfig
perfConfig(PolicyKind kind, IdleSkipMode skip)
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = kind;
    config.trackValues = true;
    config.idleSkip = skip;
    return config;
}

/** Everything that must not move when only the idle-skip strategy does. */
void
expectSimEqual(const SimResult &a, const SimResult &b,
               const std::string &what)
{
    ASSERT_FALSE(a.failed) << what << ": " << a.failureReason;
    ASSERT_FALSE(b.failed) << what << ": " << b.failureReason;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.completedCtas, b.completedCtas) << what;
    EXPECT_EQ(a.dramBytesData, b.dramBytesData) << what;
    EXPECT_EQ(a.dramBytesCtaContext, b.dramBytesCtaContext) << what;
    EXPECT_EQ(a.dramBytesBitvec, b.dramBytesBitvec) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    ASSERT_NE(a.archState, nullptr) << what;
    ASSERT_NE(b.archState, nullptr) << what;
    EXPECT_EQ(a.archState->fingerprint(), b.archState->fingerprint())
        << what;
}

TEST(EventWheelDeterminism, WheelMatchesStepEveryCycleUnderEveryPolicy)
{
    const auto kernel = generateKernelSpec(0x5eed).build();
    for (const PolicyKind kind : kAllPolicies) {
        const SimResult step = Simulator::run(
            perfConfig(kind, IdleSkipMode::StepEveryCycle), *kernel);
        for (const IdleSkipMode skip :
             {IdleSkipMode::Wheel, IdleSkipMode::LegacyScan}) {
            const SimResult fast =
                Simulator::run(perfConfig(kind, skip), *kernel);
            expectSimEqual(step, fast,
                           std::string(policyKindName(kind)) + "/skip=" +
                               std::to_string(unsigned(skip)));
        }
    }
}

TEST(EventWheelDeterminism, WheelMatchesStepOnRealWorkload)
{
    // Barriers, shared memory and divergence hit wake paths the generated
    // kernel does not; FineReg adds CTA switching on top.
    const auto kernel = Suite::makeKernel(Suite::byName("BF"), 0.05);
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::FineReg}) {
        const SimResult step = Simulator::run(
            perfConfig(kind, IdleSkipMode::StepEveryCycle), *kernel);
        const SimResult wheel = Simulator::run(
            perfConfig(kind, IdleSkipMode::Wheel), *kernel);
        expectSimEqual(step, wheel, policyKindName(kind));
    }
}

TEST(EventWheelDeterminism, SerialAndParallelWheelRunsAreIdentical)
{
    const auto kernel = generateKernelSpec(0x5eed).build();

    auto make_jobs = [&] {
        std::vector<ParallelRunner::Job> jobs;
        for (const PolicyKind kind : kAllPolicies) {
            jobs.push_back([kernel = kernel.get(), kind] {
                return Simulator::run(
                    perfConfig(kind, IdleSkipMode::Wheel), *kernel);
            });
        }
        return jobs;
    };

    ParallelRunner serial({.jobs = 1, .failFast = false, .stop = {}});
    ParallelRunner pooled({.jobs = 4, .failFast = false, .stop = {}});
    const std::vector<SimResult> a = serial.run(make_jobs());
    const std::vector<SimResult> b = pooled.run(make_jobs());

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSimEqual(a[i], b[i], "job " + std::to_string(i));
}

TEST(EventWheelDeterminism, WheelMatchesStepUnderFaultInjection)
{
    // The fault schedule is a pure function of the seed and the sequence
    // of injection-point queries, which is simulated-state driven — so a
    // fault-forced PCRF-full fallback must replay identically whether the
    // clock skips idle cycles or steps through them.
    const auto kernel = Suite::makeKernel(Suite::byName("HS"), 0.05);
    GpuConfig step = perfConfig(PolicyKind::FineReg,
                                IdleSkipMode::StepEveryCycle);
    step.verify.fault.seed = 0xfa011;
    step.verify.fault.pcrfFullProb = 0.25;
    GpuConfig wheel = step;
    wheel.idleSkip = IdleSkipMode::Wheel;

    const SimResult a = Simulator::run(step, *kernel);
    const SimResult b = Simulator::run(wheel, *kernel);
    expectSimEqual(a, b, "finereg/faulted");
}

TEST(HostPerf, WheelSkipsCyclesAndStepDoesNot)
{
    const auto kernel = Suite::makeKernel(Suite::byName("MC"), 0.05);
    const SimResult wheel = Simulator::run(
        perfConfig(PolicyKind::FineReg, IdleSkipMode::Wheel), *kernel);
    const SimResult step = Simulator::run(
        perfConfig(PolicyKind::FineReg, IdleSkipMode::StepEveryCycle),
        *kernel);
    ASSERT_FALSE(wheel.failed) << wheel.failureReason;

    // Skipping must actually happen, and every skipped cycle is a loop
    // iteration the stepper had to burn.
    EXPECT_GT(wheel.hostPerf.skippedCycles, 0u);
    EXPECT_GT(wheel.hostPerf.wheelPushes, 0u);
    EXPECT_EQ(step.hostPerf.skippedCycles, 0u);
    EXPECT_EQ(wheel.hostPerf.loopIterations + wheel.hostPerf.skippedCycles,
              step.hostPerf.loopIterations);

    // FineReg swaps CTAs, so chain writes flow through the arena.
    EXPECT_GT(wheel.hostPerf.arenaAllocs, 0u);
    EXPECT_EQ(wheel.hostPerf.arenaBytes, wheel.hostPerf.arenaAllocs * 16);
    EXPECT_GT(wheel.hostPerf.bitvecWordOps, 0u);
}

TEST(HostPerf, AuditCountersTrackSampling)
{
    const auto kernel = generateKernelSpec(0x5eed).build();
    GpuConfig audited = perfConfig(PolicyKind::FineReg,
                                   IdleSkipMode::Wheel);
    audited.verify.auditInterval = 256;
    audited.verify.auditEdgeEvery = 4;
    GpuConfig unaudited = perfConfig(PolicyKind::FineReg,
                                     IdleSkipMode::Wheel);

    const SimResult a = Simulator::run(audited, *kernel);
    const SimResult b = Simulator::run(unaudited, *kernel);
    ASSERT_FALSE(a.failed) << a.failureReason;
    EXPECT_GT(a.hostPerf.fullAudits, 0u);
    EXPECT_GT(a.hostPerf.edgeAudits, 0u);
    EXPECT_EQ(b.hostPerf.fullAudits, 0u);
    EXPECT_EQ(b.hostPerf.edgeAudits, 0u);

    // Auditing is observation only.
    expectSimEqual(a, b, "audited-vs-not");
}

// --- PCRF arena stress ---------------------------------------------------

std::vector<RegBitVec>
warpMasks(unsigned warps, unsigned regs)
{
    std::vector<RegBitVec> live(warps);
    for (auto &mask : live)
        for (RegIndex r = 0; r < regs; ++r)
            mask.set(r);
    return live;
}

TEST(PcrfArenaStress, FragmentationChurnKeepsChainsIntact)
{
    StatGroup stats;
    Pcrf pcrf(8 * 1024, stats); // 64 entries
    const auto masks = warpMasks(2, 4);
    std::vector<unsigned> last_pos(2);

    // Fill with interleaved chains, free every other one, then re-fill
    // the holes repeatedly. Every step must keep the occupancy monitor,
    // pointer table and chain walks mutually consistent.
    for (GridCtaId cta = 0; cta < 8; ++cta)
        pcrf.storeCta(cta, masks, 8);
    EXPECT_EQ(pcrf.numPendingCtas(), 8u);
    EXPECT_EQ(pcrf.freeEntries(), 0u);

    for (int round = 0; round < 16; ++round) {
        const GridCtaId base = 100 + 8 * round;
        for (GridCtaId cta = round % 2; cta < 8; cta += 2) {
            const GridCtaId victim =
                round == 0 ? cta : base - 8 + (cta ^ 1);
            if (pcrf.holds(victim))
                pcrf.restoreCtaLastPositions(victim, last_pos);
        }
        for (GridCtaId cta = 0; cta < 8; cta += 2) {
            if (pcrf.canStore(8))
                pcrf.storeCta(base + cta, masks, 8);
        }
        const PcrfIntegrityError err = pcrf.auditIntegrity();
        EXPECT_TRUE(err.intact())
            << "round " << round << ": " << err.invariant << ": "
            << err.message;
    }
}

TEST(PcrfArenaStress, FreedSlotsAreReusedLowestFirst)
{
    StatGroup stats;
    Pcrf pcrf(2 * 1024, stats); // 16 entries
    const auto masks = warpMasks(1, 4);
    std::vector<unsigned> last_pos(1);

    pcrf.storeCta(1, masks, 4); // slots 0..3
    pcrf.storeCta(2, masks, 4); // slots 4..7
    const std::vector<unsigned> first_chain = pcrf.chainOf(1);
    pcrf.restoreCtaLastPositions(1, last_pos);

    // The freed low slots are recycled before the untouched tail.
    pcrf.storeCta(3, masks, 4);
    EXPECT_EQ(pcrf.chainOf(3), first_chain);
    EXPECT_EQ(pcrf.freeEntries(), 8u);
    EXPECT_TRUE(pcrf.auditIntegrity().intact());
}

TEST(PcrfArenaStress, BatchStoreMatchesVectorStore)
{
    // The mask-driven hot-path store and the LiveReg-vector store must
    // produce bit-identical chains (slot assignment and walk order).
    StatGroup stats_a, stats_b;
    Pcrf a(4 * 1024, stats_a);
    Pcrf b(4 * 1024, stats_b);

    std::vector<RegBitVec> masks(3);
    masks[0].set(0);
    masks[0].set(5);
    masks[2].set(1);
    masks[2].set(2);
    masks[2].set(63);
    std::vector<LiveReg> regs;
    for (WarpId w = 0; w < masks.size(); ++w)
        masks[w].forEach([&](RegIndex r) { regs.push_back({w, r}); });

    // Pre-fragment both identically so allocation starts mid-bitmap.
    const auto filler = warpMasks(1, 5);
    a.storeCta(90, filler, 5);
    b.storeCta(90, filler, 5);

    a.storeCta(7, masks, static_cast<unsigned>(regs.size()));
    b.storeCta(7, regs);
    EXPECT_EQ(a.chainOf(7), b.chainOf(7));

    const std::vector<LiveReg> restored = b.restoreCta(7);
    ASSERT_EQ(restored.size(), regs.size());
    for (std::size_t i = 0; i < regs.size(); ++i) {
        EXPECT_EQ(restored[i].warp, regs[i].warp) << i;
        EXPECT_EQ(restored[i].reg, regs[i].reg) << i;
    }
}

} // namespace
} // namespace finereg
