/**
 * @file
 * ParallelRunner tests: serial and parallel execution of the suite are
 * bit-identical under every policy, exceptions are captured per job without
 * poisoning siblings, FINEREG_JOBS resolution, fail-fast cancellation, and
 * deterministic result ordering. The CI ThreadSanitizer variant runs
 * exactly this file (--gtest_filter=ParallelRunner*).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "verify/sim_error.hh"

namespace finereg
{
namespace
{

constexpr double kScale = 0.05;

/** Field-by-field equality over everything a SimResult carries. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.kernelName, b.kernelName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit);
    EXPECT_EQ(a.completedCtas, b.completedCtas);
    EXPECT_EQ(a.avgResidentCtas, b.avgResidentCtas);
    EXPECT_EQ(a.avgActiveCtas, b.avgActiveCtas);
    EXPECT_EQ(a.avgActiveThreads, b.avgActiveThreads);
    EXPECT_EQ(a.dramBytesData, b.dramBytesData);
    EXPECT_EQ(a.dramBytesCtaContext, b.dramBytesCtaContext);
    EXPECT_EQ(a.dramBytesBitvec, b.dramBytesBitvec);
    EXPECT_EQ(a.depletionStallFraction, b.depletionStallFraction);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.rfUsageMean, b.rfUsageMean);
    EXPECT_EQ(a.rfUsageMin, b.rfUsageMin);
    EXPECT_EQ(a.rfUsageMax, b.rfUsageMax);
    EXPECT_EQ(a.stallEpisodeMean, b.stallEpisodeMean);
    EXPECT_EQ(a.stallEpisodes, b.stallEpisodes);
    EXPECT_EQ(a.energy.dramDyn, b.energy.dramDyn);
    EXPECT_EQ(a.energy.rfDyn, b.energy.rfDyn);
    EXPECT_EQ(a.energy.othersDyn, b.energy.othersDyn);
    EXPECT_EQ(a.energy.leakage, b.energy.leakage);
    EXPECT_EQ(a.energy.fineregOverhead, b.energy.fineregOverhead);
    EXPECT_EQ(a.energy.ctaSwitching, b.energy.ctaSwitching);
    EXPECT_EQ(a.policyStorageBits, b.policyStorageBits);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.error.kind, b.error.kind);
    EXPECT_EQ(a.error.message, b.error.message);
    EXPECT_EQ(a.failureReason, b.failureReason);
    EXPECT_EQ(a.stallDiagnostic, b.stallDiagnostic);
}

SimResult
okResult(const std::string &name)
{
    SimResult out;
    out.kernelName = name;
    out.cycles = 1;
    return out;
}

TEST(ParallelRunner, SerialVsParallelSuiteBitIdenticalAllPolicies)
{
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::VirtualThread,
          PolicyKind::RegDram, PolicyKind::RegMutex, PolicyKind::FineReg}) {
        const GpuConfig config = Experiment::configFor(kind);
        const auto serial = Experiment::runSuite(config, kScale, 1);
        const auto parallel = Experiment::runSuite(config, kScale, 4);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE(policyKindName(kind) + std::string("/") +
                         serial[i].kernelName);
            expectSameResult(serial[i], parallel[i]);
        }
    }
}

TEST(ParallelRunner, SweepMatchesPerConfigSuites)
{
    const std::vector<GpuConfig> configs{
        Experiment::configFor(PolicyKind::Baseline),
        Experiment::configFor(PolicyKind::FineReg)};
    const auto sweep = Experiment::runSweep(configs, kScale, 3);
    ASSERT_EQ(sweep.size(), configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto solo = Experiment::runSuite(configs[c], kScale, 1);
        ASSERT_EQ(sweep[c].size(), solo.size());
        for (std::size_t i = 0; i < solo.size(); ++i)
            expectSameResult(sweep[c][i], solo[i]);
    }
}

TEST(ParallelRunner, ExceptionInOneJobDoesNotPoisonSiblings)
{
    std::vector<ParallelRunner::Job> jobs;
    jobs.push_back([] { return okResult("a"); });
    jobs.push_back([]() -> SimResult {
        throw std::runtime_error("job 1 blew up");
    });
    jobs.push_back([] { return okResult("c"); });

    ParallelRunner runner({.jobs = 4, .failFast = false, .stop = {}});
    const auto results = runner.run(std::move(jobs));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_EQ(results[0].kernelName, "a");
    EXPECT_TRUE(results[1].failed);
    EXPECT_EQ(results[1].error.kind, SimErrorKind::WorkerException);
    EXPECT_EQ(results[1].error.message, "job 1 blew up");
    EXPECT_FALSE(results[2].failed);
    EXPECT_EQ(results[2].kernelName, "c");
}

TEST(ParallelRunner, SimExceptionKeepsTypedError)
{
    std::vector<ParallelRunner::Job> jobs;
    jobs.push_back([]() -> SimResult {
        raiseInvariant("pcrf-chain", "chain broken", 7, 3, 1234);
    });
    ParallelRunner runner({.jobs = 2, .failFast = false, .stop = {}});
    const auto results = runner.run(std::move(jobs));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].error.kind, SimErrorKind::InvariantViolation);
    EXPECT_EQ(results[0].error.invariant, "pcrf-chain");
    EXPECT_EQ(results[0].error.cycle, 1234u);
}

TEST(ParallelRunner, FailFastCancelsPendingJobs)
{
    std::atomic<unsigned> executed{0};
    std::vector<ParallelRunner::Job> jobs;
    jobs.push_back([&]() -> SimResult {
        ++executed;
        throw std::runtime_error("fatal");
    });
    for (int i = 0; i < 8; ++i) {
        jobs.push_back([&] {
            ++executed;
            return okResult("later");
        });
    }

    // Serial fail-fast is fully deterministic: job 0 fails, all 8
    // remaining jobs are cancelled without executing.
    ParallelRunner runner({.jobs = 1, .failFast = true, .stop = {}});
    const auto outcome = runner.runAll(std::move(jobs));
    EXPECT_TRUE(outcome.cancelled);
    EXPECT_EQ(executed.load(), 1u);
    ASSERT_EQ(outcome.results.size(), 9u);
    EXPECT_EQ(outcome.results[0].error.kind,
              SimErrorKind::WorkerException);
    for (std::size_t i = 1; i < outcome.results.size(); ++i) {
        EXPECT_TRUE(outcome.results[i].failed);
        EXPECT_EQ(outcome.results[i].error.kind, SimErrorKind::Cancelled);
    }
}

TEST(ParallelRunner, FailFastParallelStillCompletes)
{
    // With real workers the cancellation point is racy; assert only the
    // invariants: the batch finishes, the failing job is recorded, and
    // every result is either ok, failed, or cancelled.
    std::vector<ParallelRunner::Job> jobs;
    jobs.push_back([]() -> SimResult {
        throw std::runtime_error("fatal");
    });
    for (int i = 0; i < 15; ++i)
        jobs.push_back([] { return okResult("x"); });

    ParallelRunner runner({.jobs = 4, .failFast = true, .stop = {}});
    const auto outcome = runner.runAll(std::move(jobs));
    EXPECT_TRUE(outcome.cancelled);
    EXPECT_TRUE(outcome.results[0].failed);
    for (const auto &r : outcome.results) {
        if (r.failed) {
            EXPECT_TRUE(r.error.kind == SimErrorKind::WorkerException ||
                        r.error.kind == SimErrorKind::Cancelled);
        }
    }
}

TEST(ParallelRunner, ResolveJobsPrecedence)
{
    // Explicit request wins over everything.
    setenv("FINEREG_JOBS", "3", 1);
    EXPECT_EQ(ParallelRunner::resolveJobs(7), 7u);
    // Env wins when no explicit request.
    EXPECT_EQ(ParallelRunner::resolveJobs(0), 3u);
    // Garbage / non-positive env falls through to hardware concurrency.
    setenv("FINEREG_JOBS", "0", 1);
    EXPECT_GE(ParallelRunner::resolveJobs(0), 1u);
    setenv("FINEREG_JOBS", "banana", 1);
    EXPECT_GE(ParallelRunner::resolveJobs(0), 1u);
    unsetenv("FINEREG_JOBS");
    EXPECT_GE(ParallelRunner::resolveJobs(0), 1u);
}

TEST(ParallelRunner, SingleJobDegeneratesToCallingThread)
{
    setenv("FINEREG_JOBS", "1", 1);
    const auto main_id = std::this_thread::get_id();
    std::vector<ParallelRunner::Job> jobs;
    std::vector<std::thread::id> seen(3);
    for (int i = 0; i < 3; ++i) {
        jobs.push_back([&seen, i] {
            seen[i] = std::this_thread::get_id();
            return okResult("t");
        });
    }
    ParallelRunner runner; // jobs = 0 resolves via FINEREG_JOBS=1
    const auto outcome = runner.runAll(std::move(jobs));
    unsetenv("FINEREG_JOBS");
    EXPECT_EQ(outcome.jobsUsed, 1u);
    for (const auto &id : seen)
        EXPECT_EQ(id, main_id);
}

TEST(ParallelRunner, ResultsKeyedBySubmissionIndex)
{
    std::vector<ParallelRunner::Job> jobs;
    for (int i = 0; i < 64; ++i)
        jobs.push_back([i] { return okResult(std::to_string(i)); });
    ParallelRunner runner({.jobs = 8, .failFast = false, .stop = {}});
    const auto results = runner.run(std::move(jobs));
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i].kernelName, std::to_string(i));
}

TEST(ParallelRunner, EmptyBatch)
{
    ParallelRunner runner;
    const auto outcome = runner.runAll({});
    EXPECT_TRUE(outcome.results.empty());
    EXPECT_FALSE(outcome.cancelled);
}

TEST(ParallelRunner, MoreWorkersThanJobsIsClamped)
{
    std::vector<ParallelRunner::Job> jobs;
    jobs.push_back([] { return okResult("only"); });
    ParallelRunner runner({.jobs = 16, .failFast = false, .stop = {}});
    const auto outcome = runner.runAll(std::move(jobs));
    EXPECT_EQ(outcome.jobsUsed, 1u);
    ASSERT_EQ(outcome.results.size(), 1u);
    EXPECT_EQ(outcome.results[0].kernelName, "only");
}

} // namespace
} // namespace finereg
