/**
 * @file
 * Energy model tests: component attribution from synthetic stat groups and
 * sanity on real simulation output.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "energy/energy_model.hh"

namespace finereg
{
namespace
{

TEST(EnergyModel, ZeroStatsZeroDynamicEnergy)
{
    StatGroup stats("t");
    EnergyModel model;
    const EnergyBreakdown e = model.compute(stats, 0, 16);
    EXPECT_DOUBLE_EQ(e.dramDyn, 0.0);
    EXPECT_DOUBLE_EQ(e.rfDyn, 0.0);
    EXPECT_DOUBLE_EQ(e.othersDyn, 0.0);
    EXPECT_DOUBLE_EQ(e.leakage, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, LeakageScalesWithCyclesAndSms)
{
    StatGroup stats("t");
    EnergyModel model;
    const double one_sm = model.compute(stats, 1000, 1).leakage;
    const double four_sm = model.compute(stats, 1000, 4).leakage;
    const double longer = model.compute(stats, 2000, 1).leakage;
    EXPECT_DOUBLE_EQ(four_sm, 4 * one_sm);
    EXPECT_DOUBLE_EQ(longer, 2 * one_sm);
}

TEST(EnergyModel, ComponentAttribution)
{
    StatGroup stats("t");
    stats.counter("dram.bytes_data").inc(1000);
    stats.counter("dram.bytes_cta_context").inc(500);
    stats.counter("sm.rf_reads").inc(10);
    stats.counter("sm.rf_writes").inc(5);
    stats.counter("sm.issued").inc(100);
    stats.counter("pcrf.reads").inc(7);
    stats.counter("pcrf.writes").inc(3);
    stats.counter("pcrf.stored_ctas").inc(1);
    stats.counter("pcrf.restored_ctas").inc(1);
    stats.counter("bitvec_cache.hits").inc(20);
    stats.counter("rmu.gathers").inc(2);

    EnergyCoefficients coeffs;
    EnergyModel model(coeffs);
    const EnergyBreakdown e = model.compute(stats, 0, 16);

    EXPECT_DOUBLE_EQ(e.dramDyn, 1500 * coeffs.dramByteEnergy);
    EXPECT_DOUBLE_EQ(e.rfDyn, 15 * coeffs.rfAccessEnergy);
    EXPECT_DOUBLE_EQ(e.othersDyn, 100 * coeffs.issueEnergy);
    EXPECT_DOUBLE_EQ(e.ctaSwitching,
                     10 * coeffs.pcrfAccessEnergy +
                         2 * coeffs.switchEnergy);
    EXPECT_DOUBLE_EQ(e.fineregOverhead,
                     20 * coeffs.bitvecAccessEnergy +
                         2 * coeffs.rmuGatherEnergy);
    EXPECT_DOUBLE_EQ(e.total(), e.dramDyn + e.rfDyn + e.othersDyn +
                                    e.fineregOverhead + e.ctaSwitching);
}

TEST(EnergyModel, CacheAccessesCountedInOthers)
{
    StatGroup stats("t");
    stats.counter("l1_0.hits").inc(10);
    stats.counter("l1_0.misses").inc(5);
    stats.counter("l2.hits").inc(3);
    EnergyCoefficients coeffs;
    EnergyModel model(coeffs);
    const EnergyBreakdown e = model.compute(stats, 0, 1);
    EXPECT_DOUBLE_EQ(e.othersDyn, 15 * coeffs.l1AccessEnergy +
                                      3 * coeffs.l2AccessEnergy);
}

TEST(EnergyModel, RealRunProducesPlausibleBreakdown)
{
    GpuConfig config = Experiment::configFor(PolicyKind::Baseline);
    const SimResult result = Experiment::runApp("MC", config, 0.05);
    EXPECT_GT(result.energy.total(), 0.0);
    EXPECT_GT(result.energy.leakage, 0.0);
    EXPECT_GT(result.energy.dramDyn, 0.0);
    EXPECT_GT(result.energy.othersDyn, 0.0);
    // Baseline has no PCRF machinery.
    EXPECT_DOUBLE_EQ(result.energy.ctaSwitching, 0.0);
}

TEST(EnergyModel, FineRegRunChargesSwitching)
{
    GpuConfig config = Experiment::configFor(PolicyKind::FineReg);
    const SimResult result = Experiment::runApp("MC", config, 0.6);
    EXPECT_GE(result.energy.ctaSwitching, 0.0);
    EXPECT_GT(result.energy.fineregOverhead, 0.0);
}

} // namespace
} // namespace finereg
