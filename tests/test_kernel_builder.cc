/**
 * @file
 * KernelBuilder validation: PC assignment, CFG edge construction, resource
 * declaration, and rejection of malformed kernels.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"

namespace finereg
{
namespace
{

std::unique_ptr<Kernel>
makeStraightLine()
{
    KernelBuilder b("straight");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(4);
    b.newBlock();
    b.alu(Opcode::IADD, 0, 1, 2);
    b.alu(Opcode::FMUL, 3, 0, 1);
    b.exit();
    return b.finalize();
}

TEST(KernelBuilder, AssignsSequentialPcs)
{
    const auto k = makeStraightLine();
    ASSERT_EQ(k->staticInstrs(), 3u);
    EXPECT_EQ(k->instrs()[0].pc, 0u);
    EXPECT_EQ(k->instrs()[1].pc, kInstrBytes);
    EXPECT_EQ(k->instrs()[2].pc, 2 * kInstrBytes);
    EXPECT_EQ(k->instrs()[1].index, 1u);
}

TEST(KernelBuilder, InstrAtRoundTrips)
{
    const auto k = makeStraightLine();
    EXPECT_EQ(k->instrAt(kInstrBytes).op, Opcode::FMUL);
    EXPECT_EQ(k->instrIndexOf(2 * kInstrBytes), 2u);
}

TEST(KernelBuilder, ResourceDeclarationsStick)
{
    KernelBuilder b("resources");
    b.regsPerThread(32).threadsPerCta(128).shmemPerCta(4096).gridCtas(77);
    b.newBlock();
    b.exit();
    const auto k = b.finalize();
    EXPECT_EQ(k->regsPerThread(), 32u);
    EXPECT_EQ(k->threadsPerCta(), 128u);
    EXPECT_EQ(k->warpsPerCta(), 4u);
    EXPECT_EQ(k->shmemPerCta(), 4096u);
    EXPECT_EQ(k->gridCtas(), 77u);
    EXPECT_EQ(k->regBytesPerCta(), 32u * 128 * 4);
    EXPECT_EQ(k->warpRegsPerCta(), 32u * 4);
}

TEST(KernelBuilder, FallThroughEdge)
{
    KernelBuilder b("fallthrough");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock();
    b.exit();
    const auto k = b.finalize();
    ASSERT_EQ(k->blocks().size(), 2u);
    EXPECT_EQ(k->blocks()[0].succs, (std::vector<int>{1}));
    EXPECT_EQ(k->blocks()[1].preds, (std::vector<int>{0}));
}

TEST(KernelBuilder, BranchEdges)
{
    KernelBuilder b("branchy");
    b.regsPerThread(8);
    b.newBlock();                     // B0
    b.branch(2, 0, 0.5, 0.0);         // taken -> B2, fall -> B1
    b.newBlock();                     // B1
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock();                     // B2
    b.exit();
    const auto k = b.finalize();
    EXPECT_EQ(k->blocks()[0].succs, (std::vector<int>{2, 1}));
    EXPECT_EQ(k->blocks()[2].preds, (std::vector<int>{0, 1}));
}

TEST(KernelBuilder, LoopEdge)
{
    KernelBuilder b("loopy");
    b.regsPerThread(8);
    b.newBlock();                     // B0
    b.alu(Opcode::IADD, 0, 1);
    b.newBlock();                     // B1: body
    b.alu(Opcode::IADD, 0, 0);
    b.loopBranch(1, 0, 5);
    b.newBlock();                     // B2
    b.exit();
    const auto k = b.finalize();
    EXPECT_EQ(k->blocks()[1].succs, (std::vector<int>{1, 2}));
    EXPECT_TRUE(k->instrs()[k->blocks()[1].firstInstr + 1].isLoopBranch());
    EXPECT_EQ(k->blockStartPc(1), kInstrBytes);
}

TEST(KernelBuilder, BlockOfInstr)
{
    const auto k = makeStraightLine();
    EXPECT_EQ(k->blockOfInstr(0), 0);
    EXPECT_EQ(k->blockOfInstr(2), 0);
}

TEST(KernelBuilder, ToStringContainsDisassembly)
{
    const auto k = makeStraightLine();
    const std::string text = k->toString();
    EXPECT_NE(text.find("IADD"), std::string::npos);
    EXPECT_NE(text.find("EXIT"), std::string::npos);
    EXPECT_NE(text.find("B0"), std::string::npos);
}

// ---- Rejection paths ------------------------------------------------------

TEST(KernelBuilderDeath, RegisterBeyondDeclaration)
{
    KernelBuilder b("bad_regs");
    b.regsPerThread(4);
    b.newBlock();
    b.alu(Opcode::IADD, 7, 0); // R7 >= 4
    b.exit();
    EXPECT_DEATH((void)b.finalize(), "beyond declared");
}

TEST(KernelBuilderDeath, MissingExit)
{
    KernelBuilder b("no_exit");
    b.regsPerThread(4);
    b.newBlock();
    b.jump(0);
    EXPECT_DEATH((void)b.finalize(), "EXIT");
}

TEST(KernelBuilderDeath, MidBlockTerminator)
{
    KernelBuilder b("mid_term");
    b.regsPerThread(4);
    b.newBlock();
    b.exit();
    b.alu(Opcode::IADD, 0, 1);
    EXPECT_DEATH((void)b.finalize(), "mid-block");
}

TEST(KernelBuilderDeath, BranchToNonexistentBlock)
{
    KernelBuilder b("bad_target");
    b.regsPerThread(4);
    b.newBlock();
    b.branch(9, 0, 0.5, 0.0);
    b.newBlock();
    b.exit();
    EXPECT_DEATH((void)b.finalize(), "nonexistent");
}

TEST(KernelBuilderDeath, FinalBlockFallsOffEnd)
{
    KernelBuilder b("fall_off");
    b.regsPerThread(4);
    b.newBlock();
    b.alu(Opcode::IADD, 0, 1);
    EXPECT_DEATH((void)b.finalize(), "does not end");
}

TEST(KernelBuilderDeath, InvalidThreadCount)
{
    KernelBuilder b("bad_threads");
    EXPECT_DEATH(b.threadsPerCta(50), "multiple");
}

TEST(KernelBuilderDeath, ZeroTripLoop)
{
    KernelBuilder b("zero_trip");
    b.regsPerThread(4);
    b.newBlock();
    EXPECT_DEATH(b.loopBranch(0, 0, 0), "positive");
}

} // namespace
} // namespace finereg
