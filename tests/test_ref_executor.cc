/**
 * @file
 * Unit tests for the untimed architectural reference executor and the
 * value semantics it shares with the simulator's tracking layer.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "ref/ref_executor.hh"
#include "ref/value_semantics.hh"

namespace finereg
{
namespace
{

constexpr std::uint64_t kSeed = 0x5eedf00d;

std::unique_ptr<Kernel>
straightKernel(unsigned regs, unsigned threads, unsigned grid)
{
    KernelBuilder b("ref-straight");
    b.regsPerThread(regs).threadsPerCta(threads).gridCtas(grid);
    b.newBlock();
    b.mov(1, 2);                       // r1 = r2
    b.alu(Opcode::IADD, 3, 0, 1);      // r3 = r0 + r1
    b.alu(Opcode::IMUL, 4, 3, 2);      // r4 = r3 * (r2|1)
    b.exit();
    return b.finalize();
}

TEST(ValueSemantics, OpcodesAreDistinctTotalFunctions)
{
    const std::uint32_t a = 0x12345678, b = 0x9abcdef0, c = 7;
    EXPECT_EQ(aluEval(Opcode::IADD, a, b, 0), a + b);
    EXPECT_EQ(aluEval(Opcode::MOV, a, 0, 0), a);
    EXPECT_EQ(aluEval(Opcode::FFMA, a, b, c),
              aluEval(Opcode::IMUL, a, b, 0) + c);
    // Distinct opcodes disagree on a generic operand pair.
    EXPECT_NE(aluEval(Opcode::IADD, a, b, 0), aluEval(Opcode::FADD, a, b, 0));
    EXPECT_NE(aluEval(Opcode::FADD, a, b, 0), aluEval(Opcode::FMUL, a, b, 0));
    EXPECT_NE(aluEval(Opcode::SFU, a, 0, 0), aluEval(Opcode::MOV, a, 0, 0));
}

TEST(ValueSemantics, InitAndPoisonValuesNeverCollide)
{
    // A poisoned register must not accidentally equal its initial value,
    // or a drop-before-first-write would be invisible.
    for (GridCtaId cta = 0; cta < 4; ++cta) {
        for (unsigned t = 0; t < 64; t += 7) {
            for (unsigned r = 0; r < 16; ++r)
                ASSERT_NE(initRegValue(cta, t, r), poisonValue(cta, t, r));
        }
    }
}

TEST(RefExecutor, StraightLineRegisterDataflow)
{
    const auto kernel = straightKernel(8, 64, 3);
    const ArchState state = RefExecutor::execute(*kernel, kSeed);

    ASSERT_EQ(state.ctas.size(), 3u);
    ASSERT_EQ(state.completedCtas(), 3u);
    for (GridCtaId cta = 0; cta < 3; ++cta) {
        const CtaEndState &cs = state.ctas[cta];
        ASSERT_EQ(cs.threads.size(), 64u);
        for (unsigned t = 0; t < 64; ++t) {
            const ThreadEndState &ts = cs.threads[t];
            EXPECT_EQ(ts.poison, 0u);
            EXPECT_EQ(ts.retired, 4u); // MOV, IADD, IMUL, EXIT
            const std::uint32_t r0 = initRegValue(cta, t, 0);
            const std::uint32_t r2 = initRegValue(cta, t, 2);
            ASSERT_EQ(ts.regs[1], r2);
            ASSERT_EQ(ts.regs[3], r0 + r2);
            ASSERT_EQ(ts.regs[4], aluEval(Opcode::IMUL, r0 + r2, r2, 0));
            // Untouched registers keep their initial values.
            ASSERT_EQ(ts.regs[5], initRegValue(cta, t, 5));
        }
    }
}

TEST(RefExecutor, IsDeterministic)
{
    const auto kernel = straightKernel(8, 64, 4);
    const ArchState a = RefExecutor::execute(*kernel, kSeed);
    const ArchState b = RefExecutor::execute(*kernel, kSeed);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    // A different seed must not change register dataflow of a kernel with
    // no branches or memory (the stream is seed-independent here).
    const ArchState c = RefExecutor::execute(*kernel, kSeed + 1);
    EXPECT_EQ(a.fingerprint(), c.fingerprint());
}

TEST(RefExecutor, LoopRetiresTripCountTimes)
{
    KernelBuilder b("ref-loop");
    b.regsPerThread(8).threadsPerCta(32).gridCtas(1);
    b.newBlock();
    b.mov(1, 2);
    const int body = b.newBlock();
    b.alu(Opcode::IADD, 1, 1, 3);
    b.loopBranch(body, 0, 5);
    b.newBlock();
    b.exit();
    const auto kernel = b.finalize();

    const ArchState state = RefExecutor::execute(*kernel, kSeed);
    const ThreadEndState &ts = state.ctas[0].threads[0];
    // MOV + 5 x (IADD + BRA) + EXIT.
    EXPECT_EQ(ts.retired, 1u + 5 * 2 + 1);
    // r1 = r2 + 5 * r3.
    const std::uint32_t expect = initRegValue(0, 0, 2) +
                                 5u * initRegValue(0, 0, 3);
    EXPECT_EQ(ts.regs[1], expect);
}

TEST(RefExecutor, SharedMemoryLoadsAndImage)
{
    // First dynamic shared access of warp 0 starts at region offset 0:
    // lane i loads word offset 4*i of a deterministic per-CTA hash.
    KernelBuilder b("ref-shared");
    b.regsPerThread(8).threadsPerCta(32).gridCtas(2).shmemPerCta(2048);
    b.newBlock();
    MemPattern sh;
    sh.shared = true;
    b.load(Opcode::LD_SHARED, 1, 0, sh);
    b.store(Opcode::ST_SHARED, 0, 1, sh);
    b.exit();
    const auto kernel = b.finalize();

    const ArchState state = RefExecutor::execute(*kernel, kSeed);
    for (GridCtaId cta = 0; cta < 2; ++cta) {
        const CtaEndState &cs = state.ctas[cta];
        for (unsigned lane = 0; lane < 32; ++lane) {
            ASSERT_EQ(cs.threads[lane].regs[1],
                      loadSharedValue(cta, 4 * lane))
                << "cta " << cta << " lane " << lane;
        }
        // One store per lane, all words distinct within the region.
        EXPECT_EQ(cs.sharedStores.size(), 32u);
    }
    EXPECT_TRUE(state.globalStores.empty());
}

TEST(RefExecutor, GlobalStoresAccumulateCommutatively)
{
    // Two warps of the same CTA storing through the same pattern region:
    // the image is a pure function of (kernel, seed), and re-execution
    // reproduces it exactly.
    KernelBuilder b("ref-gstore");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(2);
    b.newBlock();
    MemPattern g;
    g.region = 3;
    g.footprint = 1 << 16;
    b.store(Opcode::ST_GLOBAL, 0, 1, g);
    b.store(Opcode::ST_GLOBAL, 0, 2, g);
    b.exit();
    const auto kernel = b.finalize();

    const ArchState a = RefExecutor::execute(*kernel, kSeed);
    const ArchState b2 = RefExecutor::execute(*kernel, kSeed);
    EXPECT_FALSE(a.globalStores.empty());
    EXPECT_EQ(a.globalStores, b2.globalStores);
}

TEST(RefExecutor, DivergentDiamondRetiresBothArms)
{
    // With divergeProb = 1 the warp always splits: every lane executes one
    // arm and reconverges, so retired counts stay uniform across the warp
    // only if the arms have equal length — use unequal arms and check the
    // per-warp total matches the lane partition.
    KernelBuilder b("ref-diamond");
    b.regsPerThread(8).threadsPerCta(32).gridCtas(1);
    b.newBlock();
    b.branch(2, 0, 0.5, 1.0);
    b.newBlock(); // else: 2 instrs
    b.alu(Opcode::IADD, 1, 1, 1);
    b.jump(3);
    b.newBlock(); // then: 1 instr
    b.alu(Opcode::IADD, 2, 2, 2);
    b.newBlock(); // join
    b.exit();
    const auto kernel = b.finalize();

    const ArchState state = RefExecutor::execute(*kernel, kSeed);
    std::uint64_t then_lanes = 0, else_lanes = 0;
    for (unsigned lane = 0; lane < 32; ++lane) {
        const std::uint64_t retired = state.ctas[0].threads[lane].retired;
        // BRA + EXIT = 2, plus 1 (then arm) or 2 (else arm + JMP).
        ASSERT_TRUE(retired == 3 || retired == 4) << "lane " << lane;
        (retired == 3 ? then_lanes : else_lanes)++;
    }
    // A genuine divergence has lanes on both sides.
    EXPECT_GT(then_lanes, 0u);
    EXPECT_GT(else_lanes, 0u);
}

TEST(RefExecutor, BarrierIsValueNoOp)
{
    KernelBuilder b("ref-barrier");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(1);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 1, 2);
    b.barrier();
    b.alu(Opcode::IADD, 1, 1, 3);
    b.exit();
    const auto kernel = b.finalize();

    const ArchState state = RefExecutor::execute(*kernel, kSeed);
    for (unsigned t = 0; t < 64; ++t) {
        const std::uint32_t expect = initRegValue(0, t, 1) +
                                     initRegValue(0, t, 2) +
                                     initRegValue(0, t, 3);
        ASSERT_EQ(state.ctas[0].threads[t].regs[1], expect);
        ASSERT_EQ(state.ctas[0].threads[t].retired, 4u);
    }
}

} // namespace
} // namespace finereg
