/**
 * @file
 * Set-associative cache tests: hit/miss behaviour, LRU eviction, MSHR
 * merging, write-no-allocate stores, and resizing (UM mode).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/cache.hh"

namespace finereg
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 128 B lines = 1 KiB.
    return CacheConfig{1024, 2, 128, 10, 4};
}

TEST(Cache, ColdMissThenHit)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1040, false)); // same 128B line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_FALSE(cache.access(0x2000, false));
    EXPECT_TRUE(cache.probe(0x2000));
}

TEST(Cache, LruEvictsOldest)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    // Three lines mapping to the same set (4 sets, line 128B: set =
    // lineAddr % 4; addresses 0, 4*128, 8*128 all hit set 0).
    const Addr a = 0, b = 4 * 128, c = 8 * 128;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);    // a is now MRU
    cache.access(c, false);    // evicts b (LRU)
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, StoreMissDoesNotAllocate)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    EXPECT_FALSE(cache.access(0x3000, true)); // write miss
    EXPECT_FALSE(cache.probe(0x3000));        // no allocation
    EXPECT_FALSE(cache.access(0x3000, false)); // still a read miss
    EXPECT_TRUE(cache.probe(0x3000));
}

TEST(Cache, MshrMergesOutstandingFill)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    cache.registerFill(0x4000, 100);
    auto fill = cache.outstandingFill(0x4000, 50);
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(*fill, 100u);
    // Same line, different byte.
    EXPECT_TRUE(cache.outstandingFill(0x4040, 50).has_value());
    // Different line: no merge.
    EXPECT_FALSE(cache.outstandingFill(0x5000, 50).has_value());
}

TEST(Cache, MshrExpiresAfterFill)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    cache.registerFill(0x4000, 100);
    EXPECT_FALSE(cache.outstandingFill(0x4000, 100).has_value());
    EXPECT_FALSE(cache.outstandingFill(0x4000, 101).has_value());
}

TEST(Cache, MshrCapacityBounded)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats); // 4 MSHRs
    for (Addr a = 0; a < 6; ++a)
        cache.registerFill(a * 0x1000, 1000 + a);
    // Still functional; at most 4 entries retained.
    unsigned live = 0;
    for (Addr a = 0; a < 6; ++a)
        live += cache.outstandingFill(a * 0x1000, 0).has_value() ? 1 : 0;
    EXPECT_LE(live, 4u);
}

TEST(Cache, InvalidateAllClears)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    cache.access(0x1000, false);
    cache.invalidateAll();
    EXPECT_FALSE(cache.probe(0x1000));
}

TEST(Cache, ResizeChangesGeometry)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    cache.access(0x1000, false);
    cache.resize(4096);
    EXPECT_EQ(cache.sizeBytes(), 4096u);
    EXPECT_FALSE(cache.probe(0x1000)); // resize drops contents
}

TEST(Cache, Table1Geometries)
{
    StatGroup stats("t");
    // 48 KB 8-way L1 and 2 MB 8-way L2 from Table I must construct.
    Cache l1("l1", CacheConfig{48 * 1024, 8, 128, 28, 64}, stats);
    Cache l2("l2", CacheConfig{2048 * 1024, 8, 128, 120, 256}, stats);
    EXPECT_FALSE(l1.access(0, false));
    EXPECT_FALSE(l2.access(0, false));
    EXPECT_TRUE(l1.access(0, false));
}

/** Property: cache never reports more hits than accesses, and contents
 * respect capacity. */
class CacheProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheProperty, HitsBoundedAndDeterministic)
{
    StatGroup stats("t");
    Cache cache("c", smallCache(), stats);
    Rng rng(GetParam());
    std::uint64_t accesses = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.below(64) * 128;
        cache.access(addr, rng.chance(0.2));
        ++accesses;
    }
    EXPECT_EQ(cache.hits() + cache.misses(), accesses);
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty,
                         ::testing::Values(21, 22, 23));

} // namespace
} // namespace finereg
