/**
 * @file
 * Workload suite tests: all 18 applications build valid kernels, their
 * Type-S/Type-R classification matches the resource math of Table I, and
 * the register-lifetime structure produces the partial-liveness profile
 * Fig. 5 relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/live_info.hh"
#include "core/gpu_config.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

TEST(Suite, Has18Applications)
{
    EXPECT_EQ(Suite::all().size(), 18u);
    EXPECT_EQ(Suite::typeS().size(), 9u);
    EXPECT_EQ(Suite::typeRNames().size(), 9u);
}

TEST(Suite, Table2Names)
{
    // Table II order and membership.
    const std::vector<std::string> expected = {
        "BF", "BI", "CS", "FD", "KM", "MC", "NW", "ST", "SY2",
        "AT", "CF", "HS", "LI", "LB", "SG", "SR2", "TA", "TR"};
    ASSERT_EQ(Suite::all().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(Suite::all()[i].abbrev, expected[i]);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(Suite::byName("SG").fullName, "SGEMM");
    EXPECT_TRUE(Suite::byName("SG").typeR());
    EXPECT_FALSE(Suite::byName("CS").typeR());
}

TEST(SuiteDeath, UnknownNameFatal)
{
    EXPECT_DEATH((void)Suite::byName("XX"), "unknown benchmark");
}

TEST(Suite, GridScaling)
{
    const auto &app = Suite::byName("BF");
    const auto full = Suite::makeKernel(app, 1.0);
    const auto half = Suite::makeKernel(app, 0.5);
    EXPECT_EQ(half->gridCtas(), full->gridCtas() / 2);
    const auto tiny = Suite::makeKernel(app, 0.0001);
    EXPECT_GE(tiny->gridCtas(), 1u);
}

class SuiteAppTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const SuiteEntry &app() const { return Suite::byName(GetParam()); }
};

TEST_P(SuiteAppTest, BuildsValidKernel)
{
    const auto kernel = Suite::makeKernel(app());
    EXPECT_GT(kernel->staticInstrs(), 5u);
    EXPECT_LE(kernel->staticInstrs(), 600u); // Sec. V-F assumption
    EXPECT_GT(kernel->gridCtas(), 0u);
    EXPECT_LE(kernel->regsPerThread(), kMaxRegsPerThread);
}

TEST_P(SuiteAppTest, LivenessAnalysisRuns)
{
    const auto kernel = Suite::makeKernel(app(), 0.1);
    LiveRegisterTable table(*kernel);
    EXPECT_EQ(table.staticInstrs(), kernel->staticInstrs());
    // Live fraction is partial: above zero, below full allocation.
    EXPECT_GT(table.meanLiveFraction(), 0.02);
    EXPECT_LT(table.meanLiveFraction(), 0.95);
}

TEST_P(SuiteAppTest, BitVectorStorageIsSmall)
{
    const auto kernel = Suite::makeKernel(app(), 0.1);
    LiveRegisterTable table(*kernel);
    // Sec. V-F: ~4.8 KB of off-chip storage suffices per application.
    EXPECT_LE(table.storageBytes(), 4800u);
}

TEST_P(SuiteAppTest, ClassificationMatchesResourceMath)
{
    const auto kernel = Suite::makeKernel(app());
    const GpuConfig config = GpuConfig::gtx980();

    const unsigned sched_limit = std::min(
        {config.sm.maxCtas,
         config.sm.maxWarps / kernel->warpsPerCta(),
         config.sm.maxThreads / kernel->threadsPerCta()});
    unsigned mem_limit = static_cast<unsigned>(
        config.sm.regFileBytes / kernel->regBytesPerCta());
    if (kernel->shmemPerCta() > 0) {
        mem_limit = std::min<unsigned>(
            mem_limit, config.sm.shmemBytes / kernel->shmemPerCta());
    }

    if (app().typeR()) {
        // Type-R: register file or shared memory binds first.
        EXPECT_LT(mem_limit, sched_limit) << app().abbrev;
    } else {
        // Type-S: scheduling resources bind first.
        EXPECT_LE(sched_limit, mem_limit) << app().abbrev;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SuiteAppTest,
    ::testing::Values("BF", "BI", "CS", "FD", "KM", "MC", "NW", "ST",
                      "SY2", "AT", "CF", "HS", "LI", "LB", "SG", "SR2",
                      "TA", "TR"),
    [](const auto &info) { return info.param; });

TEST(Workload, LowLiveApps)
{
    // MC, NW, LI, SR2, TA are called out in Fig. 5 for touching <15% of
    // registers in their worst windows; their static live fraction must
    // sit clearly below the suite's most register-hungry apps.
    std::vector<double> low, high;
    for (const char *name : {"MC", "NW", "LI", "SR2"}) {
        LiveRegisterTable t(*Suite::makeKernel(Suite::byName(name), 0.05));
        low.push_back(t.meanLiveFraction());
    }
    for (const char *name : {"CF", "SG", "HS"}) {
        LiveRegisterTable t(*Suite::makeKernel(Suite::byName(name), 0.05));
        high.push_back(t.meanLiveFraction());
    }
    const double low_max = *std::max_element(low.begin(), low.end());
    const double high_min = *std::min_element(high.begin(), high.end());
    EXPECT_LT(low_max, high_min + 0.25);
}

TEST(Workload, DivergentAppsDeclareDivergence)
{
    EXPECT_GT(Suite::byName("BF").params.divergeProb, 0.0);
    EXPECT_GT(Suite::byName("NW").params.divergeProb, 0.0);
    EXPECT_DOUBLE_EQ(Suite::byName("SG").params.divergeProb, 0.0);
}

TEST(Workload, ShmemHeavyApps)
{
    // TA depletes shared memory (Sec. VI-C): at most 3 CTAs fit.
    const auto &ta = Suite::byName("TA");
    EXPECT_GE(ta.params.shmemPerCta * 4, 96u * 1024);
}

TEST(Workload, CustomParamsRoundTrip)
{
    WorkloadParams params;
    params.name = "custom";
    params.regsPerThread = 24;
    params.threadsPerCta = 96;
    params.loopTrips = 3;
    params.loadsPerIter = 1;
    params.computePerLoad = 2;
    const auto kernel = buildWorkloadKernel(params);
    EXPECT_EQ(kernel->name(), "custom");
    EXPECT_EQ(kernel->regsPerThread(), 24u);
    EXPECT_EQ(kernel->threadsPerCta(), 96u);
}

TEST(WorkloadDeath, TooFewRegistersRejected)
{
    WorkloadParams params;
    params.name = "tiny";
    params.regsPerThread = 2;
    EXPECT_DEATH((void)buildWorkloadKernel(params), "4 registers");
}

} // namespace
} // namespace finereg
