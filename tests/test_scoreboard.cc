/**
 * @file
 * Scoreboard tests: RAW/WAW hazards, stall-on-use semantics, and the
 * memory-blocking classification the CTA stall detector relies on.
 */

#include <gtest/gtest.h>

#include "sm/scoreboard.hh"

namespace finereg
{
namespace
{

Instruction
aluUsing(int dst, int src0, int src1 = -1)
{
    Instruction instr;
    instr.op = Opcode::FADD;
    instr.dst = dst;
    instr.srcs = {src0, src1, -1};
    return instr;
}

TEST(Scoreboard, FreshBoardIsReady)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.ready(aluUsing(0, 1, 2), 0));
}

TEST(Scoreboard, RawHazardBlocksUntilReady)
{
    Scoreboard sb;
    sb.recordWrite(3, 100, false);
    Instruction use = aluUsing(4, 3);
    EXPECT_FALSE(sb.ready(use, 50));
    EXPECT_EQ(sb.readyCycle(use, 50), 100u);
    EXPECT_TRUE(sb.ready(use, 100));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb;
    sb.recordWrite(3, 100, false);
    Instruction redefine = aluUsing(3, 1);
    EXPECT_FALSE(sb.ready(redefine, 50));
    EXPECT_TRUE(sb.ready(redefine, 101));
}

TEST(Scoreboard, IndependentInstructionUnaffected)
{
    Scoreboard sb;
    sb.recordWrite(3, 100, false);
    EXPECT_TRUE(sb.ready(aluUsing(5, 6), 0));
}

TEST(Scoreboard, MemoryBlockingClassification)
{
    Scoreboard sb;
    sb.recordWrite(2, 500, true);  // global load in flight
    sb.recordWrite(3, 500, false); // ALU in flight
    EXPECT_TRUE(sb.blockedOnMemory(aluUsing(4, 2), 100));
    EXPECT_FALSE(sb.blockedOnMemory(aluUsing(4, 3), 100));
    // After the load lands the warp is not memory-blocked.
    EXPECT_FALSE(sb.blockedOnMemory(aluUsing(4, 2), 500));
}

TEST(Scoreboard, RedefineClearsMemoryFlag)
{
    Scoreboard sb;
    sb.recordWrite(2, 500, true);
    sb.recordWrite(2, 50, false); // ALU redefines the register sooner
    EXPECT_FALSE(sb.blockedOnMemory(aluUsing(4, 2), 100));
    EXPECT_TRUE(sb.ready(aluUsing(4, 2), 60));
}

TEST(Scoreboard, ReadyExpiresSettledEntries)
{
    Scoreboard sb;
    sb.recordWrite(1, 10, true);
    EXPECT_TRUE(sb.ready(aluUsing(2, 1), 20));
    // Once expired, the stale memory flag must not resurface.
    EXPECT_FALSE(sb.blockedOnMemory(aluUsing(2, 1), 5));
}

TEST(Scoreboard, LastPendingCycle)
{
    Scoreboard sb;
    EXPECT_EQ(sb.lastPendingCycle(7), 7u);
    sb.recordWrite(1, 100, true);
    sb.recordWrite(2, 300, true);
    EXPECT_EQ(sb.lastPendingCycle(50), 300u);
}

TEST(Scoreboard, ClearResets)
{
    Scoreboard sb;
    sb.recordWrite(1, 1000, true);
    sb.clear();
    EXPECT_TRUE(sb.ready(aluUsing(2, 1), 0));
    EXPECT_EQ(sb.lastPendingCycle(0), 0u);
}

TEST(Scoreboard, MultipleOperandsTakeLatest)
{
    Scoreboard sb;
    sb.recordWrite(1, 100, false);
    sb.recordWrite(2, 200, false);
    EXPECT_EQ(sb.readyCycle(aluUsing(3, 1, 2), 0), 200u);
}

} // namespace
} // namespace finereg
