/**
 * @file
 * Hardened-core tests: typed SimErrors, the invariant auditor (seeded
 * corruption must be detected and named), the deadlock watchdog (wedged
 * workloads produce a structured diagnostic instead of silently burning
 * the cycle cap), and the deterministic fault-injection harness (same
 * seed => same fault schedule; faults perturb timing, never results).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/simulator.hh"
#include "isa/kernel_builder.hh"
#include "policies/finereg_policy.hh"
#include "regfile/pcrf.hh"
#include "sm/gpu.hh"
#include "verify/fault_injection.hh"
#include "verify/invariant_auditor.hh"
#include "verify/sim_error.hh"
#include "verify/watchdog.hh"

namespace finereg
{
namespace
{

std::unique_ptr<Kernel>
mixedKernel(unsigned grid = 32)
{
    KernelBuilder b("mixed");
    b.regsPerThread(16).threadsPerCta(64).gridCtas(grid);
    MemPattern stream;
    stream.footprint = 8ull << 20;
    b.newBlock();
    b.alu(Opcode::IADD, 0, 0);
    b.alu(Opcode::IADD, 1, 0);
    b.newBlock();
    b.load(Opcode::LD_GLOBAL, 2, 0, stream);
    b.alu(Opcode::FADD, 3, 2, 1);
    b.alu(Opcode::FMUL, 1, 3, 1);
    b.alu(Opcode::IADD, 0, 0, 1);
    b.loopBranch(1, 0, 4);
    b.newBlock();
    b.store(Opcode::ST_GLOBAL, 0, 1, stream);
    b.exit();
    return b.finalize();
}

GpuConfig
smallConfig(PolicyKind kind = PolicyKind::FineReg)
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = kind;
    return config;
}

/** A policy that never launches anything: the device is wedged from
 * cycle 0, which must trip the watchdog, not the cycle cap. */
class NeverLaunchPolicy : public Policy
{
  public:
    const char *name() const override { return "never-launch"; }
    void tick(Sm &, Cycle) override {}
    void onCtaFinished(Sm &, Cta &, Cycle) override {}
};

// ---- SimError --------------------------------------------------------------

TEST(SimError, ToStringNamesKindInvariantCtaAndCycle)
{
    SimError error;
    error.kind = SimErrorKind::InvariantViolation;
    error.invariant = "pcrf-chain";
    error.message = "chain walk revisited an entry";
    error.cta = 17;
    error.sm = 1;
    error.cycle = 12345;
    const std::string s = error.toString();
    EXPECT_NE(s.find("pcrf-chain"), std::string::npos) << s;
    EXPECT_NE(s.find("17"), std::string::npos) << s;
    EXPECT_NE(s.find("12345"), std::string::npos) << s;
}

TEST(SimError, RaiseHelpersSetKinds)
{
    try {
        raiseConfigError("bad knob");
        FAIL();
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::Config);
    }
    try {
        raiseInvariant("acrf-accounting", "leak", 3, 1, 99);
        FAIL();
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::InvariantViolation);
        EXPECT_EQ(e.error().invariant, "acrf-accounting");
        EXPECT_EQ(e.error().cta, 3u);
        EXPECT_EQ(e.error().cycle, 99u);
    }
    try {
        raiseDeadlock("wedged", 1000, "dump");
        FAIL();
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::Deadlock);
        EXPECT_EQ(e.error().diagnostic, "dump");
    }
}

// ---- Pcrf integrity walk ---------------------------------------------------

TEST(PcrfAudit, CleanPcrfIsIntact)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    EXPECT_TRUE(pcrf.auditIntegrity().intact());
    pcrf.storeCta(7, {{0, 0}, {0, 1}, {1, 4}});
    pcrf.storeCta(9, {{0, 2}});
    EXPECT_TRUE(pcrf.auditIntegrity().intact());
    pcrf.restoreCta(7);
    EXPECT_TRUE(pcrf.auditIntegrity().intact());
}

TEST(PcrfAudit, DetectsBrokenNextPointer)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    pcrf.storeCta(7, {{0, 0}, {0, 1}, {0, 2}});
    const auto chain = pcrf.chainOf(7);
    ASSERT_EQ(chain.size(), 3u);
    // Point the first entry back at itself: the walk must flag a cycle.
    pcrf.testSetEntryNext(chain[0], chain[0]);
    pcrf.testSetEntryEnd(chain[0], false);
    const PcrfIntegrityError err = pcrf.auditIntegrity();
    ASSERT_FALSE(err.intact());
    EXPECT_EQ(err.invariant, "pcrf-chain");
    EXPECT_EQ(err.cta, 7u);
}

TEST(PcrfAudit, DetectsInvalidatedChainEntry)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    pcrf.storeCta(5, {{0, 0}, {0, 1}});
    const auto chain = pcrf.chainOf(5);
    pcrf.testSetEntryValid(chain[1], false);
    const PcrfIntegrityError err = pcrf.auditIntegrity();
    ASSERT_FALSE(err.intact());
    EXPECT_EQ(err.invariant, "pcrf-chain");
    EXPECT_EQ(err.cta, 5u);
}

TEST(PcrfAudit, DetectsOccupancyMonitorDesync)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    pcrf.storeCta(3, {{0, 0}, {0, 1}});
    const auto chain = pcrf.chainOf(3);
    // The free-space monitor says the slot is free but the chain uses it.
    pcrf.testSetOccupied(chain[0], false);
    const PcrfIntegrityError err = pcrf.auditIntegrity();
    ASSERT_FALSE(err.intact());
}

TEST(PcrfAudit, DetectsLiveCountMismatch)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    pcrf.storeCta(2, {{0, 0}, {0, 1}, {0, 2}});
    pcrf.testSetLiveCount(2, 2);
    const PcrfIntegrityError err = pcrf.auditIntegrity();
    ASSERT_FALSE(err.intact());
    EXPECT_EQ(err.cta, 2u);
}

// ---- Invariant auditor over a live device ----------------------------------

TEST(InvariantAuditorTest, CleanRunAuditsCleanUnderEveryPolicy)
{
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::VirtualThread,
          PolicyKind::RegDram, PolicyKind::RegMutex, PolicyKind::FineReg}) {
        const auto kernel = mixedKernel();
        GpuConfig config = smallConfig(kind);
        config.verify.auditInterval = 1;
        Gpu gpu(config, *kernel);
        const auto result = gpu.run();
        EXPECT_FALSE(result.hitCycleLimit) << policyKindName(kind);
        EXPECT_EQ(result.completedCtas, 32u) << policyKindName(kind);
        // Final state must also audit clean.
        InvariantAuditor(1).audit(gpu, gpu.nowCycle());
    }
}

TEST(InvariantAuditorTest, DetectsLeakedAcrfAllocation)
{
    const auto kernel = mixedKernel();
    Gpu gpu(smallConfig(), *kernel);
    gpu.run();

    auto &policy = static_cast<FineRegPolicy &>(gpu.policy());
    // Allocate with no owning CTA: a leak the auditor must report.
    policy.mutableAcrfOf(*gpu.sms()[0]).allocate(4);
    try {
        InvariantAuditor(1).audit(gpu, gpu.nowCycle());
        FAIL() << "expected an acrf-accounting violation";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::InvariantViolation);
        EXPECT_EQ(e.error().invariant, "acrf-accounting");
        EXPECT_EQ(e.error().sm, 0u);
        EXPECT_NE(e.error().message.find("leaked"), std::string::npos)
            << e.error().message;
    }
}

TEST(InvariantAuditorTest, DetectsCorruptedPcrfChain)
{
    const auto kernel = mixedKernel();
    Gpu gpu(smallConfig(), *kernel);
    gpu.run();

    auto &policy = static_cast<FineRegPolicy &>(gpu.policy());
    Pcrf &pcrf = policy.mutablePcrfOf(*gpu.sms()[1]);
    pcrf.storeCta(999, {{0, 0}, {0, 1}});
    pcrf.testSetEntryValid(pcrf.chainOf(999)[0], false);
    try {
        InvariantAuditor(1).audit(gpu, gpu.nowCycle());
        FAIL() << "expected a pcrf-chain violation";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::InvariantViolation);
        EXPECT_EQ(e.error().invariant, "pcrf-chain");
        EXPECT_EQ(e.error().cta, 999u);
        EXPECT_EQ(e.error().sm, 1u);
    }
}

// ---- Deadlock watchdog -----------------------------------------------------

TEST(Watchdog, WedgedRunProducesDiagnosticInsteadOfCycleCap)
{
    const auto kernel = mixedKernel(8);
    GpuConfig config = smallConfig();
    config.verify.watchdogCycles = 5000;
    Gpu gpu(config, *kernel, std::make_unique<NeverLaunchPolicy>());
    try {
        gpu.run();
        FAIL() << "expected the watchdog to fire";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::Deadlock);
        EXPECT_GE(e.error().cycle, 5000u);
        EXPECT_LT(e.error().cycle, config.maxCycles);
        EXPECT_FALSE(e.error().diagnostic.empty());
        // The dump names the dispatcher's remaining work.
        EXPECT_NE(e.error().diagnostic.find("dispatcher"),
                  std::string::npos)
            << e.error().diagnostic;
    }
}

TEST(Watchdog, SimulatorSurfacesDeadlockOnResult)
{
    const auto kernel = mixedKernel(8);
    GpuConfig config = smallConfig();
    config.verify.watchdogCycles = 5000;
    const SimResult r = Simulator::run(config, *kernel,
                                       std::make_unique<NeverLaunchPolicy>());
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.error.kind, SimErrorKind::Deadlock);
    EXPECT_FALSE(r.failureReason.empty());
    EXPECT_FALSE(r.error.diagnostic.empty());
}

TEST(Watchdog, IdleStreakFallbackStillRaisesTypedError)
{
    // Watchdog off: the run loop's own idle-streak guard must still turn
    // a wedged device into a typed Deadlock error, not a process abort.
    const auto kernel = mixedKernel(8);
    GpuConfig config = smallConfig();
    config.verify.watchdogCycles = 0;
    Gpu gpu(config, *kernel, std::make_unique<NeverLaunchPolicy>());
    try {
        gpu.run();
        FAIL() << "expected the idle-streak guard to fire";
    } catch (const SimException &e) {
        EXPECT_EQ(e.error().kind, SimErrorKind::Deadlock);
        EXPECT_FALSE(e.error().diagnostic.empty());
    }
}

TEST(Watchdog, CycleLimitFillsStallDiagnostic)
{
    const auto kernel = mixedKernel(256);
    GpuConfig config = smallConfig();
    config.maxCycles = 100;
    const SimResult r = Simulator::run(config, *kernel);
    EXPECT_FALSE(r.failed);
    EXPECT_TRUE(r.hitCycleLimit);
    EXPECT_FALSE(r.stallDiagnostic.empty());
}

TEST(Watchdog, HealthyRunNeverTrips)
{
    const auto kernel = mixedKernel();
    GpuConfig config = smallConfig();
    config.verify.watchdogCycles = 50'000;
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_EQ(result.completedCtas, 32u);
}

// ---- Fault injection -------------------------------------------------------

TEST(FaultInjection, ZeroSeedDisablesEveryPoint)
{
    StatGroup stats("t");
    FaultConfig config; // seed = 0
    config.dramDelayProb = 1.0;
    config.pcrfFullProb = 1.0;
    config.bitvecMissProb = 1.0;
    FaultInjector fault(config, stats);
    EXPECT_FALSE(fault.enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(fault.dramDelay(), 0u);
        EXPECT_FALSE(fault.forcePcrfFull());
        EXPECT_FALSE(fault.forceBitvecMiss());
    }
    EXPECT_EQ(fault.injectedDramDelays(), 0u);
}

TEST(FaultInjection, SameSeedSameSchedule)
{
    FaultConfig config;
    config.seed = 0xfa157;
    config.dramDelayProb = 0.3;
    config.pcrfFullProb = 0.3;
    StatGroup sa("a"), sb("b");
    FaultInjector a(config, sa), b(config, sb);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.dramDelay(), b.dramDelay());
        EXPECT_EQ(a.forcePcrfFull(), b.forcePcrfFull());
        EXPECT_EQ(a.forceBitvecMiss(), b.forceBitvecMiss());
    }
    EXPECT_GT(a.injectedDramDelays(), 0u);
    EXPECT_GT(a.injectedPcrfFulls(), 0u);
}

TEST(FaultInjection, DeterministicRunsAndBitExactResults)
{
    GpuConfig config = smallConfig();
    config.verify.auditInterval = 64;
    config.verify.fault.seed = 42;
    config.verify.fault.dramDelayProb = 0.05;
    config.verify.fault.pcrfFullProb = 0.10;
    config.verify.fault.bitvecMissProb = 0.20;

    auto run_once = [&](const GpuConfig &c, std::uint64_t *faults) {
        const auto kernel = mixedKernel(64);
        Gpu gpu(c, *kernel);
        const auto r = gpu.run();
        EXPECT_FALSE(r.hitCycleLimit);
        EXPECT_EQ(r.completedCtas, 64u);
        if (faults) {
            *faults = gpu.stats().counterValue("fault.dram_delays") +
                      gpu.stats().counterValue("fault.pcrf_fulls") +
                      gpu.stats().counterValue("fault.bitvec_misses");
        }
        return r;
    };

    std::uint64_t faults_a = 0, faults_b = 0;
    const auto a = run_once(config, &faults_a);
    const auto b = run_once(config, &faults_b);
    // Same seed => same fault schedule => identical runs.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(faults_a, faults_b);
    EXPECT_GT(faults_a, 0u) << "the fault campaign never fired";

    // Faults perturb timing but never the executed work: the no-fault run
    // retires the exact same instruction stream.
    GpuConfig clean = config;
    clean.verify.fault.seed = 0;
    const auto c = run_once(clean, nullptr);
    EXPECT_EQ(a.instructions, c.instructions);
    EXPECT_EQ(a.completedCtas, c.completedCtas);
}

TEST(FaultInjection, ForcedPcrfFullDegradesGracefullyUnderAudit)
{
    // Hammer the PCRF-full fallback path with every-cycle audits: FineReg
    // must stay consistent and complete all work.
    GpuConfig config = smallConfig();
    config.verify.auditInterval = 1;
    config.verify.fault.seed = 7;
    config.verify.fault.dramDelayProb = 0.0;
    config.verify.fault.bitvecMissProb = 0.0;
    config.verify.fault.pcrfFullProb = 0.5;
    const auto kernel = mixedKernel(64);
    Gpu gpu(config, *kernel);
    const auto result = gpu.run();
    EXPECT_FALSE(result.hitCycleLimit);
    EXPECT_EQ(result.completedCtas, 64u);
    InvariantAuditor(1).audit(gpu, gpu.nowCycle());
}

} // namespace
} // namespace finereg
