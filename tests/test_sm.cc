/**
 * @file
 * SM integration tests on a single streaming multiprocessor: CTA launch /
 * suspend / resume mechanics, slot accounting, barrier execution, issue
 * behaviour, and occupancy accumulation.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hh"
#include "mem/mem_hierarchy.hh"
#include "sm/sm.hh"

namespace finereg
{
namespace
{

struct SmFixture : public ::testing::Test
{
    SmFixture() = default;

    void
    build(std::unique_ptr<Kernel> k)
    {
        kernel = std::move(k);
        context = std::make_unique<KernelContext>(*kernel);
        stats = std::make_unique<StatGroup>("t");
        mem = std::make_unique<MemHierarchy>(MemHierarchyConfig{}, 1,
                                             *stats);
        sm = std::make_unique<Sm>(SmId(0), config, *context, *mem, *stats,
                                  42);
    }

    /** Tick until @p pred or the cycle cap. */
    template <typename Pred>
    Cycle
    runUntil(Pred &&pred, Cycle cap = 100000)
    {
        Cycle now = 0;
        while (now < cap) {
            sm->tick(now);
            if (pred(now))
                return now;
            ++now;
        }
        return cap;
    }

    SmConfig config;
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<KernelContext> context;
    std::unique_ptr<StatGroup> stats;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<Sm> sm;
};

std::unique_ptr<Kernel>
computeKernel(unsigned threads = 64)
{
    KernelBuilder b("compute");
    b.regsPerThread(8).threadsPerCta(threads).gridCtas(8);
    b.newBlock();
    for (int i = 0; i < 6; ++i)
        b.alu(Opcode::IADD, 1 + (i % 3), 0, 1);
    b.exit();
    return b.finalize();
}

std::unique_ptr<Kernel>
memoryKernel()
{
    KernelBuilder b("memory");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(8);
    MemPattern stream;
    stream.footprint = 64ull << 20;
    b.newBlock();
    b.load(Opcode::LD_GLOBAL, 2, 0, stream);
    b.alu(Opcode::FADD, 3, 2, 0); // stall-on-use consumer
    b.exit();
    return b.finalize();
}

std::unique_ptr<Kernel>
barrierKernel()
{
    KernelBuilder b("barrier");
    b.regsPerThread(8).threadsPerCta(64).gridCtas(8);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 0);
    b.barrier();
    b.alu(Opcode::IADD, 2, 1);
    b.exit();
    return b.finalize();
}

TEST_F(SmFixture, LaunchConsumesSlots)
{
    build(computeKernel());
    EXPECT_TRUE(sm->canActivateCta());
    sm->launchCta(0, 0);
    EXPECT_EQ(sm->activeCtaCount(), 1u);
    EXPECT_EQ(sm->residentWarpCount(), 2u);
}

TEST_F(SmFixture, SlotLimitsEnforced)
{
    config.maxCtas = 2;
    build(computeKernel());
    sm->launchCta(0, 0);
    sm->launchCta(1, 0);
    EXPECT_FALSE(sm->canActivateCta());
}

TEST_F(SmFixture, ThreadLimitEnforced)
{
    config.maxThreads = 128;
    build(computeKernel(128));
    sm->launchCta(0, 0);
    EXPECT_FALSE(sm->canActivateCta());
}

TEST_F(SmFixture, ShmemAccounting)
{
    KernelBuilder b("shmem");
    b.regsPerThread(8).threadsPerCta(64).shmemPerCta(40 * 1024).gridCtas(4);
    b.newBlock();
    b.exit();
    build(b.finalize());
    EXPECT_EQ(sm->shmemFree(), 96u * 1024);
    sm->launchCta(0, 0);
    EXPECT_EQ(sm->shmemFree(), 56u * 1024);
    sm->launchCta(1, 0);
    EXPECT_LT(sm->shmemFree(), 40u * 1024); // third CTA cannot fit
}

TEST_F(SmFixture, ComputeKernelRunsToCompletion)
{
    build(computeKernel());
    Cta *cta = sm->launchCta(0, 0);
    const Cycle end = runUntil(
        [&](Cycle) { return cta->state() == CtaState::Done; });
    EXPECT_LT(end, 1000u);
    EXPECT_EQ(sm->takeFinished().size(), 1u);
    EXPECT_GT(sm->issuedInstrs(), 0u);
}

TEST_F(SmFixture, TakeFinishedDrains)
{
    build(computeKernel());
    Cta *cta = sm->launchCta(0, 0);
    runUntil([&](Cycle) { return cta->state() == CtaState::Done; });
    EXPECT_EQ(sm->takeFinished().size(), 1u);
    EXPECT_TRUE(sm->takeFinished().empty());
    sm->destroyCta(*cta);
    EXPECT_TRUE(sm->residentCtas().empty());
}

TEST_F(SmFixture, MemoryKernelStallsOnUse)
{
    build(memoryKernel());
    Cta *cta = sm->launchCta(0, 0);
    // After both warps issue their loads, the CTA must become fully
    // stalled on memory (the FADD consumers block).
    bool saw_stall = false;
    runUntil([&](Cycle now) {
        saw_stall = saw_stall || cta->fullyStalledOnMemory(now);
        return cta->state() == CtaState::Done;
    });
    EXPECT_TRUE(saw_stall);
}

TEST_F(SmFixture, SuspendRemovesFromSchedulers)
{
    build(memoryKernel());
    Cta *cta = sm->launchCta(0, 0);
    sm->tick(1);
    sm->suspendCta(*cta, 2);
    EXPECT_EQ(cta->state(), CtaState::Pending);
    EXPECT_EQ(sm->activeCtaCount(), 0u);
    EXPECT_EQ(sm->pendingCtaCount(), 1u);
    const std::uint64_t issued_before = sm->issuedInstrs();
    for (Cycle c = 3; c < 50; ++c)
        sm->tick(c);
    EXPECT_EQ(sm->issuedInstrs(), issued_before); // nothing schedulable
}

TEST_F(SmFixture, ResumeRestoresExecution)
{
    build(memoryKernel());
    Cta *cta = sm->launchCta(0, 0);
    sm->tick(1);
    sm->suspendCta(*cta, 2);
    sm->resumeCta(*cta, 10, 5);
    EXPECT_EQ(cta->state(), CtaState::Active);
    const Cycle end = runUntil(
        [&](Cycle) { return cta->state() == CtaState::Done; });
    EXPECT_LT(end, 10000u);
}

TEST_F(SmFixture, BarrierSynchronizesWarps)
{
    build(barrierKernel());
    Cta *cta = sm->launchCta(0, 0);
    const Cycle end = runUntil(
        [&](Cycle) { return cta->state() == CtaState::Done; });
    EXPECT_LT(end, 1000u);
    EXPECT_EQ(stats->counterValue("sm.barriers"), 2u); // one per warp
}

TEST_F(SmFixture, OccupancyAccumulation)
{
    build(computeKernel());
    sm->launchCta(0, 0);
    sm->accumulateOccupancy(10);
    EXPECT_EQ(stats->counterValue("sm.resident_cta_cycles"), 10u);
    EXPECT_EQ(stats->counterValue("sm.active_cta_cycles"), 10u);
    EXPECT_EQ(stats->counterValue("sm.active_thread_cycles"), 640u);
}

TEST_F(SmFixture, NextWakeCycleReflectsScoreboard)
{
    build(memoryKernel());
    sm->launchCta(0, 0);
    Cycle now = 0;
    // Run until nothing issues.
    while (sm->tick(now) > 0)
        ++now;
    const Cycle wake = sm->nextWakeCycle(now);
    EXPECT_GT(wake, now);
    EXPECT_NE(wake, kNoCycle);
}

TEST_F(SmFixture, IssueCountsMatchKernelWork)
{
    build(computeKernel());
    Cta *cta = sm->launchCta(0, 0);
    runUntil([&](Cycle) { return cta->state() == CtaState::Done; });
    // 2 warps x 7 instructions (6 ALU + EXIT).
    EXPECT_EQ(sm->issuedInstrs(), 14u);
}

TEST_F(SmFixture, RfAccessCountersTrackOperands)
{
    build(computeKernel());
    Cta *cta = sm->launchCta(0, 0);
    runUntil([&](Cycle) { return cta->state() == CtaState::Done; });
    // Each ALU op: 2 reads + 1 write; 6 ops x 2 warps.
    EXPECT_EQ(stats->counterValue("sm.rf_reads"), 24u);
    EXPECT_EQ(stats->counterValue("sm.rf_writes"), 12u);
}

} // namespace
} // namespace finereg
