/**
 * @file
 * Tests for the finereg_sim command-line option parser.
 */

#include <gtest/gtest.h>

#include "core/cli_options.hh"

namespace finereg
{
namespace
{

ParseResult
parse(std::initializer_list<const char *> args)
{
    std::vector<std::string> v;
    for (const char *arg : args)
        v.emplace_back(arg);
    return parseCliOptions(v);
}

TEST(CliOptions, DefaultsAreSane)
{
    const auto r = parse({});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.options->apps.empty());
    ASSERT_EQ(r.options->policies.size(), 2u);
    EXPECT_EQ(r.options->policies[0], PolicyKind::Baseline);
    EXPECT_EQ(r.options->policies[1], PolicyKind::FineReg);
    EXPECT_DOUBLE_EQ(r.options->gridScale, 1.0);
    EXPECT_EQ(r.options->config.numSms, 16u);
    EXPECT_FALSE(r.options->csv);
}

TEST(CliOptions, AppList)
{
    const auto r = parse({"--app", "MC,SG"});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.options->apps.size(), 2u);
    EXPECT_EQ(r.options->apps[0], "MC");
    EXPECT_EQ(r.options->apps[1], "SG");
}

TEST(CliOptions, UnknownAppRejected)
{
    const auto r = parse({"--app", "NOPE"});
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("NOPE"), std::string::npos);
}

TEST(CliOptions, PolicyNames)
{
    EXPECT_EQ(parsePolicyName("finereg"), PolicyKind::FineReg);
    EXPECT_EQ(parsePolicyName("vt"), PolicyKind::VirtualThread);
    EXPECT_EQ(parsePolicyName("regdram"), PolicyKind::RegDram);
    EXPECT_EQ(parsePolicyName("zorua"), PolicyKind::RegDram);
    EXPECT_EQ(parsePolicyName("regmutex"), PolicyKind::RegMutex);
    EXPECT_EQ(parsePolicyName("baseline"), PolicyKind::Baseline);
    EXPECT_FALSE(parsePolicyName("gpu").has_value());
}

TEST(CliOptions, PolicyAll)
{
    const auto r = parse({"--policy", "all"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->policies.size(), 5u);
}

TEST(CliOptions, PolicySelection)
{
    const auto r = parse({"--policy", "vt,finereg"});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.options->policies.size(), 2u);
    EXPECT_EQ(r.options->policies[0], PolicyKind::VirtualThread);
    EXPECT_EQ(r.options->policies[1], PolicyKind::FineReg);
}

TEST(CliOptions, UnknownPolicyRejected)
{
    EXPECT_FALSE(parse({"--policy", "magic"}).ok());
}

TEST(CliOptions, AcrfAdjustsPcrf)
{
    const auto r = parse({"--acrf", "96"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->config.policy.acrfBytes, 96u * 1024);
    EXPECT_EQ(r.options->config.policy.pcrfBytes, 160u * 1024);
}

TEST(CliOptions, AcrfBeyondRfRejected)
{
    EXPECT_FALSE(parse({"--acrf", "512"}).ok());
}

TEST(CliOptions, NumericFlags)
{
    const auto r = parse({"--sms", "32", "--scale", "0.5", "--seed", "7",
                          "--max-cycles", "1000", "--srp-ratio", "0.2",
                          "--growth-factor", "1.5"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->config.numSms, 32u);
    EXPECT_DOUBLE_EQ(r.options->gridScale, 0.5);
    EXPECT_EQ(r.options->config.seed, 7u);
    EXPECT_EQ(r.options->config.maxCycles, 1000u);
    EXPECT_DOUBLE_EQ(r.options->config.policy.srpRatio, 0.2);
    EXPECT_DOUBLE_EQ(r.options->config.policy.pendingGrowthFactor, 1.5);
}

TEST(CliOptions, JobsFlag)
{
    const auto r = parse({"--jobs", "8"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->jobs, 8u);
    EXPECT_EQ(parse({}).options->jobs, 0u); // 0 = auto-resolve
    EXPECT_FALSE(parse({"--jobs", "0"}).ok());
    EXPECT_FALSE(parse({"--jobs", "-2"}).ok());
    EXPECT_FALSE(parse({"--jobs"}).ok());
}

TEST(CliOptions, VerifyFlags)
{
    const auto r = parse({"--audit-interval", "1000", "--watchdog-cycles",
                          "50000", "--fault-seed", "42", "--fault-dram",
                          "0.1", "--fault-pcrf", "0.2", "--fault-bitvec",
                          "0.3"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->config.verify.auditInterval, 1000u);
    EXPECT_EQ(r.options->config.verify.watchdogCycles, 50000u);
    EXPECT_EQ(r.options->config.verify.fault.seed, 42u);
    EXPECT_TRUE(r.options->config.verify.fault.enabled());
    EXPECT_DOUBLE_EQ(r.options->config.verify.fault.dramDelayProb, 0.1);
    EXPECT_DOUBLE_EQ(r.options->config.verify.fault.pcrfFullProb, 0.2);
    EXPECT_DOUBLE_EQ(r.options->config.verify.fault.bitvecMissProb, 0.3);
}

TEST(CliOptions, VerifyDefaultsOff)
{
    const auto r = parse({});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options->config.verify.auditInterval, 0u);
    EXPECT_FALSE(r.options->config.verify.fault.enabled());
}

TEST(CliOptions, BadVerifyValuesRejected)
{
    EXPECT_FALSE(parse({"--fault-dram", "1.5"}).ok());
    EXPECT_FALSE(parse({"--fault-pcrf", "-0.1"}).ok());
    EXPECT_FALSE(parse({"--audit-interval"}).ok());
    EXPECT_FALSE(parse({"--watchdog-cycles", "-5"}).ok());
}

TEST(CliOptions, SchedulerChoice)
{
    const auto gto = parse({"--sched", "gto"});
    ASSERT_TRUE(gto.ok());
    EXPECT_EQ(gto.options->config.sm.sched, SchedKind::GTO);
    const auto lrr = parse({"--sched", "lrr"});
    ASSERT_TRUE(lrr.ok());
    EXPECT_EQ(lrr.options->config.sm.sched, SchedKind::LRR);
    EXPECT_FALSE(parse({"--sched", "fifo"}).ok());
}

TEST(CliOptions, Booleans)
{
    const auto r = parse({"--csv", "--verbose", "--unified-memory",
                          "--list-apps", "--help"});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.options->csv);
    EXPECT_TRUE(r.options->verbose);
    EXPECT_TRUE(r.options->config.policy.unifiedMemory);
    EXPECT_TRUE(r.options->listApps);
    EXPECT_TRUE(r.options->help);
}

TEST(CliOptions, MissingValueRejected)
{
    EXPECT_FALSE(parse({"--app"}).ok());
    EXPECT_FALSE(parse({"--scale"}).ok());
    EXPECT_FALSE(parse({"--sms"}).ok());
}

TEST(CliOptions, BadValuesRejected)
{
    EXPECT_FALSE(parse({"--scale", "0"}).ok());
    EXPECT_FALSE(parse({"--sms", "-4"}).ok());
    EXPECT_FALSE(parse({"--srp-ratio", "1.5"}).ok());
    EXPECT_FALSE(parse({"--max-cycles", "0"}).ok());
}

TEST(CliOptions, UnknownFlagRejected)
{
    const auto r = parse({"--frobnicate"});
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(CliOptions, UsageMentionsEveryFlag)
{
    const std::string usage = cliUsage();
    for (const char *flag :
         {"--app", "--policy", "--scale", "--jobs", "--sms", "--acrf",
          "--pcrf",
          "--srp-ratio", "--growth-factor", "--sched", "--unified-memory",
          "--seed", "--max-cycles", "--csv", "--list-apps", "--verbose",
          "--help"}) {
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
    }
}

} // namespace
} // namespace finereg
