/**
 * @file
 * Determinism suite: the same (kernel, seed, config) must produce an
 * identical SimResult under every policy, whether runs execute serially or
 * fanned across a ParallelRunner pool — and turning value tracking on must
 * not perturb timing by a single cycle.
 */

#include <gtest/gtest.h>

#include "core/parallel_runner.hh"
#include "core/simulator.hh"
#include "ref/arch_state.hh"
#include "ref/kernel_gen.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::Baseline, PolicyKind::VirtualThread, PolicyKind::RegDram,
    PolicyKind::RegMutex, PolicyKind::FineReg};

GpuConfig
smallConfig(PolicyKind kind)
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = kind;
    config.trackValues = true;
    return config;
}

std::unique_ptr<Kernel>
testKernel()
{
    return generateKernelSpec(0xd37e).build();
}

/** Field-by-field equality over everything a SimResult reports. */
void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.kernelName, b.kernelName) << what;
    EXPECT_EQ(a.policyName, b.policyName) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit) << what;
    EXPECT_EQ(a.completedCtas, b.completedCtas) << what;
    EXPECT_EQ(a.avgResidentCtas, b.avgResidentCtas) << what;
    EXPECT_EQ(a.avgActiveCtas, b.avgActiveCtas) << what;
    EXPECT_EQ(a.avgActiveThreads, b.avgActiveThreads) << what;
    EXPECT_EQ(a.dramBytesData, b.dramBytesData) << what;
    EXPECT_EQ(a.dramBytesCtaContext, b.dramBytesCtaContext) << what;
    EXPECT_EQ(a.dramBytesBitvec, b.dramBytesBitvec) << what;
    EXPECT_EQ(a.depletionStallFraction, b.depletionStallFraction) << what;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.energy.total(), b.energy.total()) << what;
    EXPECT_EQ(a.policyStorageBits, b.policyStorageBits) << what;
    EXPECT_EQ(a.failed, b.failed) << what;
    ASSERT_NE(a.archState, nullptr) << what;
    ASSERT_NE(b.archState, nullptr) << what;
    EXPECT_EQ(a.archState->fingerprint(), b.archState->fingerprint())
        << what;
}

TEST(Determinism, SameSeedSameResultUnderEveryPolicy)
{
    const auto kernel = testKernel();
    for (const PolicyKind kind : kAllPolicies) {
        const GpuConfig config = smallConfig(kind);
        const SimResult a = Simulator::run(config, *kernel);
        const SimResult b = Simulator::run(config, *kernel);
        ASSERT_FALSE(a.failed) << a.failureReason;
        expectIdentical(a, b, policyKindName(kind));
    }
}

TEST(Determinism, SerialAndParallelRunsAreIdentical)
{
    const auto kernel = testKernel();

    auto make_jobs = [&] {
        std::vector<ParallelRunner::Job> jobs;
        for (const PolicyKind kind : kAllPolicies) {
            jobs.push_back([kernel = kernel.get(), kind] {
                return Simulator::run(smallConfig(kind), *kernel);
            });
        }
        return jobs;
    };

    ParallelRunner serial({.jobs = 1, .failFast = false, .stop = {}});
    ParallelRunner pooled({.jobs = 4, .failFast = false, .stop = {}});
    const std::vector<SimResult> a = serial.run(make_jobs());
    const std::vector<SimResult> b = pooled.run(make_jobs());

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_FALSE(a[i].failed) << a[i].failureReason;
        expectIdentical(a[i], b[i],
                        std::string("job ") + std::to_string(i));
    }
}

TEST(Determinism, ValueTrackingDoesNotPerturbTiming)
{
    // The tracking layer is pure observation: cycle counts, instruction
    // counts, and memory traffic must be bit-identical with it disabled.
    const auto kernel = testKernel();
    for (const PolicyKind kind : kAllPolicies) {
        GpuConfig tracked = smallConfig(kind);
        GpuConfig untracked = tracked;
        untracked.trackValues = false;

        const SimResult a = Simulator::run(tracked, *kernel);
        const SimResult b = Simulator::run(untracked, *kernel);
        ASSERT_FALSE(a.failed) << a.failureReason;
        EXPECT_EQ(a.cycles, b.cycles) << policyKindName(kind);
        EXPECT_EQ(a.instructions, b.instructions) << policyKindName(kind);
        EXPECT_EQ(a.dramBytesData, b.dramBytesData) << policyKindName(kind);
        EXPECT_EQ(a.l1Hits, b.l1Hits) << policyKindName(kind);
        EXPECT_EQ(a.l1Misses, b.l1Misses) << policyKindName(kind);
        EXPECT_EQ(b.archState, nullptr) << policyKindName(kind);
    }
}

TEST(Determinism, SuiteAppIsReproducibleUnderFineReg)
{
    // A real workload (barriers, shared memory, divergence) on top of the
    // generated one.
    const auto kernel = Suite::makeKernel(Suite::byName("HS"), 0.02);
    const GpuConfig config = smallConfig(PolicyKind::FineReg);
    const SimResult a = Simulator::run(config, *kernel);
    const SimResult b = Simulator::run(config, *kernel);
    ASSERT_FALSE(a.failed) << a.failureReason;
    expectIdentical(a, b, "HS/finereg");
}

} // namespace
} // namespace finereg
