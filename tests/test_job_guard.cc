/**
 * @file
 * JobGuard unit tests: the deadline monitor must convert hangs into typed
 * Timeout errors, retries must be bounded and bit-deterministic, only
 * transient error kinds may be retried, and a key that exhausts every
 * attempt must quarantine without poisoning anything else.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/job_guard.hh"
#include "core/simulator.hh"
#include "ref/kernel_gen.hh"
#include "verify/chaos.hh"

namespace finereg
{
namespace
{

/** An attempt body that blocks until its cancel token fires (or a safety
 * deadline passes) and reports how it was cancelled. */
SimResult
cooperativeHang(const std::shared_ptr<CancelToken> &cancel)
{
    const auto safety =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!cancel->cancelled() &&
           std::chrono::steady_clock::now() < safety) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SimResult out;
    out.failed = true;
    out.error.kind = cancel->reason() == CancelToken::kTimeout
                         ? SimErrorKind::Timeout
                         : SimErrorKind::Cancelled;
    out.failureReason = "cancelled cooperatively";
    return out;
}

TEST(JobGuard, DeadlineTripsTypedTimeout)
{
    GuardOptions options;
    options.jobTimeoutMs = 25.0;
    options.retries = 0;
    JobGuard guard(options);

    const SimResult r = guard.runGuarded(
        "job-timeout",
        [](unsigned, std::shared_ptr<CancelToken> cancel) {
            return cooperativeHang(cancel);
        });

    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.error.kind, SimErrorKind::Timeout);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_GE(guard.stats().timeouts, 1u);
}

TEST(JobGuard, RetriedRunIsBitIdenticalToCleanRun)
{
    // A retry rebuilds the Gpu from the same config, so the result after
    // a transient attempt-0 failure must match an unguarded run exactly.
    std::shared_ptr<const Kernel> kernel =
        generateKernelSpec(0xa11ce).build();
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 2;
    config.policy.kind = PolicyKind::FineReg;

    const SimResult clean = Simulator::run(config, *kernel);
    ASSERT_FALSE(clean.failed) << clean.failureReason;

    GuardOptions options;
    options.retries = 2;
    options.backoffBaseMs = 0.1;
    options.backoffMaxMs = 0.5;
    JobGuard guard(options);

    const SimResult retried = guard.runGuarded(
        "job-retry",
        [&](unsigned attempt, std::shared_ptr<CancelToken>) -> SimResult {
            if (attempt == 0)
                throw std::runtime_error("injected dispatch fault");
            return Simulator::run(config, *kernel);
        });

    ASSERT_FALSE(retried.failed) << retried.failureReason;
    EXPECT_EQ(retried.attempts, 2u);
    EXPECT_EQ(compareSimResults(clean, retried), "");
    EXPECT_GE(guard.stats().retriesScheduled, 1u);
}

TEST(JobGuard, ExhaustionQuarantinesAndSkipsLaterSubmissions)
{
    GuardOptions options;
    options.retries = 1;
    options.backoffBaseMs = 0.1;
    options.backoffMaxMs = 0.5;
    JobGuard guard(options);

    unsigned calls = 0;
    const auto poisoned =
        [&calls](unsigned, std::shared_ptr<CancelToken>) -> SimResult {
        ++calls;
        throw std::runtime_error("poisoned cell");
    };

    const SimResult first = guard.runGuarded("job-poison", poisoned);
    EXPECT_TRUE(first.failed);
    EXPECT_EQ(first.error.kind, SimErrorKind::RetriesExhausted);
    EXPECT_EQ(first.attempts, 2u);
    EXPECT_NE(first.error.message.find("job-poison"), std::string::npos);
    EXPECT_TRUE(guard.isQuarantined("job-poison"));
    ASSERT_EQ(guard.quarantined().size(), 1u);
    EXPECT_EQ(guard.quarantined()[0].lastError.kind,
              SimErrorKind::WorkerException);

    // The same key again: skipped outright, the attempt never runs.
    const SimResult second = guard.runGuarded("job-poison", poisoned);
    EXPECT_TRUE(second.failed);
    EXPECT_EQ(second.error.kind, SimErrorKind::Quarantined);
    EXPECT_EQ(second.attempts, 0u);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(guard.stats().quarantineSkips, 1u);

    // A different key is unaffected.
    EXPECT_FALSE(guard.isQuarantined("job-healthy"));
}

TEST(JobGuard, DeterministicErrorsAreNotRetried)
{
    GuardOptions options;
    options.retries = 3;
    JobGuard guard(options);

    unsigned calls = 0;
    const SimResult r = guard.runGuarded(
        "job-config", [&](unsigned, std::shared_ptr<CancelToken>) {
            ++calls;
            SimResult out;
            out.failed = true;
            out.error.kind = SimErrorKind::Config;
            out.error.message = "illegal configuration";
            out.failureReason = out.error.message;
            return out;
        });

    // A deterministic error reproduces bit-exactly; retrying it would
    // burn three more attempts for the same answer.
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.error.kind, SimErrorKind::Config);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_TRUE(guard.isQuarantined("job-config"));
}

TEST(JobGuard, ExternallyCancelledJobsAreNotQuarantined)
{
    // A kill is an external decision, not a job defect: a resumed sweep
    // must re-run the job, so it may never land on the quarantine list.
    GuardOptions options;
    options.retries = 2;
    JobGuard guard(options);

    const SimResult r = guard.runGuarded(
        "job-killed-externally", [](unsigned, std::shared_ptr<CancelToken>) {
            SimResult out;
            out.failed = true;
            out.error.kind = SimErrorKind::Cancelled;
            return out;
        });

    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.error.kind, SimErrorKind::Cancelled);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_FALSE(guard.isQuarantined("job-killed-externally"));
}

TEST(JobGuard, KillAllCancelsInflightAttempts)
{
    GuardOptions options;
    options.jobTimeoutMs = 60000.0; // registers the token; never expires
    options.retries = 2;
    JobGuard guard(options);

    std::atomic<bool> running{false};
    SimResult r;
    std::thread worker([&] {
        r = guard.runGuarded(
            "job-killed", [&](unsigned, std::shared_ptr<CancelToken> cancel) {
                running.store(true);
                return cooperativeHang(cancel);
            });
    });

    // The token is registered with the monitor before the attempt body
    // runs, so once the body reports in, killAll() is guaranteed to see it.
    while (!running.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    guard.killAll();
    worker.join();

    EXPECT_TRUE(r.failed);
    EXPECT_EQ(r.error.kind, SimErrorKind::Cancelled);
    EXPECT_EQ(r.attempts, 1u); // kills are not retried
    EXPECT_FALSE(guard.isQuarantined("job-killed"));
}

} // namespace
} // namespace finereg
