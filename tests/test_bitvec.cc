/**
 * @file
 * Unit and property tests for RegBitVec (the 64-bit live-register vector)
 * and DynBitSet (the PCRF free-space monitor).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace finereg
{
namespace
{

TEST(RegBitVec, StartsEmpty)
{
    RegBitVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.count(), 0u);
    for (unsigned r = 0; r < kMaxRegsPerThread; ++r)
        EXPECT_FALSE(v.test(RegIndex(r)));
}

TEST(RegBitVec, SetTestReset)
{
    RegBitVec v;
    v.set(0);
    v.set(63);
    v.set(17);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(17));
    EXPECT_FALSE(v.test(18));
    EXPECT_EQ(v.count(), 3u);
    v.reset(17);
    EXPECT_FALSE(v.test(17));
    EXPECT_EQ(v.count(), 2u);
}

TEST(RegBitVec, OutOfRangeIndicesAreIgnored)
{
    RegBitVec v;
    v.set(RegIndex(200));
    EXPECT_TRUE(v.empty());
    EXPECT_FALSE(v.test(RegIndex(200)));
}

TEST(RegBitVec, UnionIntersectionMinus)
{
    RegBitVec a;
    a.set(1);
    a.set(2);
    RegBitVec b;
    b.set(2);
    b.set(3);

    const RegBitVec u = a | b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1) && u.test(2) && u.test(3));

    const RegBitVec i = a & b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(2));

    const RegBitVec d = a.minus(b);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_TRUE(d.test(1));
}

TEST(RegBitVec, ForEachVisitsAscending)
{
    RegBitVec v;
    v.set(5);
    v.set(0);
    v.set(42);
    std::vector<unsigned> seen;
    v.forEach([&](RegIndex r) { seen.push_back(r); });
    EXPECT_EQ(seen, (std::vector<unsigned>{0, 5, 42}));
}

TEST(RegBitVec, EqualityAndRaw)
{
    RegBitVec a(0x5ull);
    RegBitVec b;
    b.set(0);
    b.set(2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.raw(), 0x5ull);
}

/** Property: count() matches a reference set over random operations. */
class RegBitVecProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RegBitVecProperty, MatchesReferenceSet)
{
    Rng rng(GetParam());
    RegBitVec v;
    std::set<unsigned> ref;
    for (int step = 0; step < 500; ++step) {
        const auto r = static_cast<RegIndex>(rng.below(kMaxRegsPerThread));
        if (rng.chance(0.5)) {
            v.set(r);
            ref.insert(r);
        } else {
            v.reset(r);
            ref.erase(r);
        }
        ASSERT_EQ(v.count(), ref.size());
        ASSERT_EQ(v.test(r), ref.count(r) > 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegBitVecProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(DynBitSet, StartsClear)
{
    DynBitSet bits(100);
    EXPECT_EQ(bits.size(), 100u);
    EXPECT_EQ(bits.count(), 0u);
    EXPECT_EQ(bits.countClear(), 100u);
    EXPECT_EQ(bits.firstClear(), 0u);
}

TEST(DynBitSet, SetResetCount)
{
    DynBitSet bits(70);
    bits.set(0);
    bits.set(64); // crosses the word boundary
    bits.set(69);
    EXPECT_EQ(bits.count(), 3u);
    EXPECT_TRUE(bits.test(64));
    bits.reset(64);
    EXPECT_EQ(bits.count(), 2u);
    EXPECT_FALSE(bits.test(64));
}

TEST(DynBitSet, FirstClearSkipsOccupied)
{
    DynBitSet bits(8);
    for (unsigned i = 0; i < 5; ++i)
        bits.set(i);
    EXPECT_EQ(bits.firstClear(), 5u);
    bits.set(5);
    bits.set(6);
    bits.set(7);
    EXPECT_EQ(bits.firstClear(), 8u); // full: returns size()
}

TEST(DynBitSet, FirstClearHandlesFullWords)
{
    DynBitSet bits(130);
    for (unsigned i = 0; i < 128; ++i)
        bits.set(i);
    EXPECT_EQ(bits.firstClear(), 128u);
}

TEST(DynBitSet, ClearAllResets)
{
    DynBitSet bits(64);
    for (unsigned i = 0; i < 64; ++i)
        bits.set(i);
    bits.clearAll();
    EXPECT_EQ(bits.count(), 0u);
    EXPECT_EQ(bits.firstClear(), 0u);
}

TEST(DynBitSetDeath, OutOfRangePanics)
{
    DynBitSet bits(10);
    EXPECT_DEATH(bits.set(10), "out of range");
    EXPECT_DEATH(bits.test(11), "out of range");
}

/** Property: firstClear always returns the minimal clear index. */
class DynBitSetProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DynBitSetProperty, FirstClearIsMinimal)
{
    Rng rng(GetParam());
    DynBitSet bits(200);
    std::set<std::size_t> occupied;
    for (int step = 0; step < 400; ++step) {
        const std::size_t i = rng.below(200);
        if (rng.chance(0.7)) {
            bits.set(i);
            occupied.insert(i);
        } else {
            bits.reset(i);
            occupied.erase(i);
        }
        std::size_t expected = 200;
        for (std::size_t j = 0; j < 200; ++j) {
            if (!occupied.count(j)) {
                expected = j;
                break;
            }
        }
        ASSERT_EQ(bits.firstClear(), expected);
        ASSERT_EQ(bits.countClear(), 200 - occupied.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynBitSetProperty,
                         ::testing::Values(4, 8, 15, 16, 23));

} // namespace
} // namespace finereg
