/**
 * @file
 * Determinism and distribution sanity for the simulator's PRNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace finereg
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace
} // namespace finereg
