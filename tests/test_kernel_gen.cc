/**
 * @file
 * Property tests for the random-kernel generator and its greedy shrinker:
 * every generated spec builds a valid kernel, generation is deterministic
 * in the seed, every shrink candidate is both valid and strictly simpler,
 * and minimization converges to a local minimum of the predicate.
 */

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "ref/kernel_gen.hh"

namespace finereg
{
namespace
{

TEST(KernelGen, IsDeterministicInTheSeed)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const KernelSpec a = generateKernelSpec(seed);
        const KernelSpec b = generateKernelSpec(seed);
        EXPECT_EQ(a.describe(), b.describe());
    }
    EXPECT_NE(generateKernelSpec(1).describe(),
              generateKernelSpec(2).describe());
}

TEST(KernelGen, EverySpecBuildsAValidKernel)
{
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed);
        const auto kernel = spec.build(); // finalize() validates or dies
        ASSERT_NE(kernel, nullptr);
        EXPECT_GT(kernel->staticInstrs(), 0u) << spec.describe();
        EXPECT_EQ(kernel->regsPerThread(), spec.regs);
        EXPECT_EQ(kernel->threadsPerCta(), spec.threads);
        EXPECT_EQ(kernel->gridCtas(), spec.grid);
        // The observability epilogue always ends in a global store + EXIT.
        const auto &instrs = kernel->instrs();
        EXPECT_EQ(instrs.back().op, Opcode::EXIT);
        bool has_store = false;
        for (const auto &instr : instrs)
            has_store = has_store || instr.op == Opcode::ST_GLOBAL;
        EXPECT_TRUE(has_store) << spec.describe();
    }
}

TEST(KernelGen, EveryGeneratedKernelLintsClean)
{
    // build() already routes through assertLintClean (fatal on errors);
    // this re-checks with the library API so a regression produces a
    // readable test failure instead of a process abort, and covers the
    // shared-footprint clamp: generated shared ops must never declare a
    // footprint past the CTA allocation.
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const auto kernel = generateKernelSpec(seed).build();
        const auto result = analysis::lintKernel(*kernel);
        EXPECT_FALSE(result.diags.hasErrors())
            << kernel->name() << "\n" << result.diags.renderText(16);
        EXPECT_FALSE(
            result.diags.has(analysis::DiagKind::SharedFootprintExceedsShmem))
            << kernel->name();
    }
}

TEST(KernelGen, ObserveAllRegsFoldsEveryRegister)
{
    GenOptions gen;
    gen.observeAllRegs = true;
    const KernelSpec spec = generateKernelSpec(5, gen);
    EXPECT_EQ(spec.observeRegs.size(), spec.regs);
    const auto kernel = spec.build();
    // Folding all N regs into R0 appends N-1 IADDs before the store.
    unsigned folds = 0;
    for (const auto &instr : kernel->instrs()) {
        if (instr.op == Opcode::IADD && instr.dst == 0 &&
            instr.srcs[0] == 0)
            ++folds;
    }
    EXPECT_GE(folds, spec.regs - 1);
}

TEST(KernelGen, ShrinkCandidatesAreValidAndSimpler)
{
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed);
        const unsigned base_instrs = spec.instrCount();
        const auto candidates = shrinkCandidates(spec);
        ASSERT_FALSE(candidates.empty()) << spec.describe();
        for (const KernelSpec &cand : candidates) {
            const auto kernel = cand.build();
            ASSERT_NE(kernel, nullptr) << cand.describe();
            // Simpler: fewer instructions, or a smaller launch.
            const bool simpler =
                cand.instrCount() < base_instrs ||
                cand.grid < spec.grid || cand.threads < spec.threads ||
                cand.regs < spec.regs || cand.shmem < spec.shmem ||
                cand.segments.size() < spec.segments.size();
            bool trips_shrunk = false;
            for (std::size_t i = 0; i < cand.segments.size() &&
                                    i < spec.segments.size();
                 ++i) {
                trips_shrunk = trips_shrunk ||
                               cand.segments[i].trips <
                                   spec.segments[i].trips;
            }
            EXPECT_TRUE(simpler || trips_shrunk)
                << spec.describe() << " -> " << cand.describe();
        }
    }
}

TEST(KernelGen, MinimizeConvergesToPredicateLocalMinimum)
{
    // Predicate: the kernel launches at least 3 CTAs. The minimum under
    // shrinking is a tiny spec whose grid can no longer halve.
    const auto predicate = [](const KernelSpec &spec) {
        return spec.grid >= 3;
    };
    const KernelSpec minimized =
        minimizeSpec(generateKernelSpec(9), predicate, 500);
    EXPECT_TRUE(predicate(minimized));
    // No candidate still satisfies it.
    for (const KernelSpec &cand : shrinkCandidates(minimized))
        EXPECT_FALSE(predicate(cand)) << cand.describe();
    // And everything unrelated to the predicate has been stripped away.
    EXPECT_EQ(minimized.segments.size(), 1u);
    EXPECT_EQ(minimized.regs, 4u);
}

TEST(KernelGen, MinimizeRespectsTheBudget)
{
    unsigned calls = 0;
    const auto counting = [&](const KernelSpec &) {
        ++calls;
        return false; // nothing reproduces: must stop after one sweep
    };
    const KernelSpec spec = generateKernelSpec(3);
    const KernelSpec out = minimizeSpec(spec, counting, 5);
    EXPECT_LE(calls, 5u);
    EXPECT_EQ(out.describe(), spec.describe());
}

} // namespace
} // namespace finereg
