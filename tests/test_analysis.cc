/**
 * @file
 * Tests for the static analysis subsystem: the pass manager's caching and
 * skip-gating, CFG well-formedness detection over seeded defects, the
 * dominator/post-dominator trees (cross-checked against the compiler's
 * CfgAnalysis), use-before-def dataflow, the liveness cross-validator
 * (soundness, exactness, and rejection of corrupted bit vectors via the
 * LintOptions hooks), shared-memory checks, and diagnostics rendering.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "analysis/cfg_check.hh"
#include "analysis/dominators.hh"
#include "analysis/kernel_mutator.hh"
#include "analysis/lint.hh"
#include "analysis/liveness_check.hh"
#include "analysis/reaching_defs.hh"
#include "analysis/reconv_check.hh"
#include "analysis/shared_mem_check.hh"
#include "compiler/cfg_analysis.hh"
#include "isa/kernel_builder.hh"
#include "ref/kernel_gen.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

using analysis::AnalysisManager;
using analysis::DefectKind;
using analysis::DiagKind;
using analysis::Severity;

/** B0: branch -> {B1, B2}; B1 jumps to the join; B3 joins and exits. */
std::unique_ptr<Kernel>
makeDiamondKernel()
{
    KernelBuilder b("diamond");
    b.regsPerThread(8);
    b.newBlock();                 // B0
    b.branch(2, 0, 0.5, 0.0);     // reads R0
    b.newBlock();                 // B1: else — defines R5
    b.alu(Opcode::IADD, 5, 1, 1);
    b.jump(3);
    b.newBlock();                 // B2: then — does not define R5
    b.alu(Opcode::IADD, 6, 1, 1);
    b.newBlock();                 // B3: join — uses R5
    b.alu(Opcode::IADD, 7, 5, 0);
    b.exit();
    return b.finalize();
}

std::unique_ptr<Kernel>
makeStraightKernel()
{
    KernelBuilder b("straight");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::IADD, 1, 0, 0);
    b.alu(Opcode::IMUL, 2, 1, 1);
    b.alu(Opcode::FADD, 3, 2, 2);
    b.exit();
    return b.finalize();
}

// --- Pass manager ---------------------------------------------------------

struct CountingResult : analysis::AnalysisResultBase
{
    unsigned sequence = 0;
};

/** Test pass that records how many times the manager actually ran it. */
class CountingPass : public analysis::Pass
{
  public:
    explicit CountingPass(unsigned &runs) : runs_(runs) {}
    std::string_view name() const override { return "counting"; }
    std::unique_ptr<analysis::AnalysisResultBase>
    run(analysis::AnalysisContext &) override
    {
        auto result = std::make_unique<CountingResult>();
        result->sequence = ++runs_;
        return result;
    }

  private:
    unsigned &runs_;
};

TEST(AnalysisManager, RunsEachPassAtMostOncePerKernel)
{
    const auto kernel = makeStraightKernel();
    unsigned runs = 0;
    auto manager = AnalysisManager::withDefaultPasses();
    manager->registerPass(std::make_unique<CountingPass>(runs));
    const auto &first = manager->ensure(*kernel, "counting");
    const auto &second = manager->ensure(*kernel, "counting");
    EXPECT_EQ(&first, &second); // same cache node, not a recompute
    EXPECT_NE(first.result.get(), nullptr);
    EXPECT_EQ(runs, 1u);

    // A different kernel gets its own run.
    const auto other = makeDiamondKernel();
    manager->ensure(*other, "counting");
    EXPECT_EQ(runs, 2u);
}

TEST(AnalysisManager, InvalidateDropsCachedOutcomes)
{
    const auto kernel = makeStraightKernel();
    unsigned runs = 0;
    auto manager = AnalysisManager::withDefaultPasses();
    manager->registerPass(std::make_unique<CountingPass>(runs));
    manager->ensure(*kernel, "counting");
    EXPECT_EQ(runs, 1u);
    manager->invalidate(*kernel);
    const auto *recomputed =
        manager->resultOf<CountingResult>(*kernel, "counting");
    ASSERT_NE(recomputed, nullptr);
    EXPECT_EQ(runs, 2u);
    EXPECT_EQ(recomputed->sequence, 2u);
}

TEST(AnalysisManager, EnsureRunsDependenciesTransitively)
{
    const auto kernel = makeDiamondKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    // Asking only for the reconvergence check must pull in cfg-check and
    // postdomtree; afterwards they are cached (same node on re-request).
    const auto &reconv =
        manager->ensure(*kernel, analysis::ReconvCheckResult::kName);
    EXPECT_FALSE(reconv.skipped);
    const auto *cfg = manager->resultOf<analysis::CfgCheckResult>(
        *kernel, analysis::CfgCheckResult::kName);
    ASSERT_NE(cfg, nullptr);
    EXPECT_TRUE(cfg->structurallySound);
}

TEST(AnalysisManager, DataflowSkippedOnStructurallyUnsoundCfg)
{
    const auto clean = makeDiamondKernel();
    const auto defect = analysis::KernelMutator::seedDefect(
        *clean, DefectKind::ShrunkBlock, 1);
    ASSERT_TRUE(defect.has_value());

    auto manager = AnalysisManager::withDefaultPasses(defect->options);
    const auto *cfg = manager->resultOf<analysis::CfgCheckResult>(
        *defect->kernel, analysis::CfgCheckResult::kName);
    ASSERT_NE(cfg, nullptr);
    EXPECT_FALSE(cfg->structurallySound);

    // Every dataflow pass must be gated off rather than walking the
    // corrupt graph.
    const auto &live =
        manager->ensure(*defect->kernel, analysis::LivenessCheckResult::kName);
    EXPECT_TRUE(live.skipped);
    EXPECT_EQ(live.result.get(), nullptr);
    EXPECT_EQ(manager->resultOf<analysis::ReachingDefsResult>(
                  *defect->kernel, analysis::ReachingDefsResult::kName),
              nullptr);
}

// --- CFG well-formedness --------------------------------------------------

TEST(CfgCheck, CleanKernelsAreSoundWithDerivedEdgesMatchingStored)
{
    for (const auto &app : Suite::all()) {
        const auto kernel = Suite::makeKernel(app);
        auto manager = AnalysisManager::withDefaultPasses();
        const auto *cfg = manager->resultOf<analysis::CfgCheckResult>(
            *kernel, analysis::CfgCheckResult::kName);
        ASSERT_NE(cfg, nullptr) << app.abbrev;
        EXPECT_TRUE(cfg->structurallySound) << app.abbrev;
        EXPECT_TRUE(cfg->allReachable) << app.abbrev;
        EXPECT_TRUE(cfg->hasExit) << app.abbrev;
        EXPECT_TRUE(cfg->exitReachableEverywhere) << app.abbrev;
        ASSERT_EQ(cfg->succs.size(), kernel->blocks().size());
        for (std::size_t blk = 0; blk < cfg->succs.size(); ++blk) {
            std::vector<int> stored = kernel->blocks()[blk].succs;
            std::vector<int> derived = cfg->succs[blk];
            std::sort(stored.begin(), stored.end());
            std::sort(derived.begin(), derived.end());
            EXPECT_EQ(stored, derived) << app.abbrev << " B" << blk;
        }
    }
}

struct CfgDefectCase
{
    DefectKind defect;
    DiagKind expected;
};

class CfgDefects : public ::testing::TestWithParam<CfgDefectCase>
{
};

TEST_P(CfgDefects, SeededDefectIsFlagged)
{
    const auto clean = makeDiamondKernel();
    const auto &param = GetParam();
    // Some defects need a specific site; scan a few seeds for one.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto defect =
            analysis::KernelMutator::seedDefect(*clean, param.defect, seed);
        if (!defect)
            continue;
        const auto result =
            analysis::lintKernel(*defect->kernel, defect->options);
        EXPECT_TRUE(result.diags.has(param.expected))
            << defectKindName(param.defect) << ": " << defect->detail
            << "\n" << result.diags.renderText(16);
        return;
    }
    FAIL() << "no seed yielded a site for "
           << defectKindName(param.defect);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, CfgDefects,
    ::testing::Values(
        CfgDefectCase{DefectKind::DanglingBranch,
                      DiagKind::BranchTargetOutOfRange},
        CfgDefectCase{DefectKind::MidBlockTerminator,
                      DiagKind::TerminatorMidBlock},
        CfgDefectCase{DefectKind::NoExit, DiagKind::NoExit},
        CfgDefectCase{DefectKind::UnreachableBlock,
                      DiagKind::UnreachableBlock},
        CfgDefectCase{DefectKind::SelfLoopTrap, DiagKind::NoPathToExit},
        CfgDefectCase{DefectKind::RegisterOutOfRange,
                      DiagKind::RegisterOutOfRange},
        CfgDefectCase{DefectKind::PhantomEdge,
                      DiagKind::CfgEdgesInconsistent},
        CfgDefectCase{DefectKind::ShrunkBlock,
                      DiagKind::BlockExtentCorrupt}));

// --- Dominators -----------------------------------------------------------

TEST(Dominators, DiamondTreeShape)
{
    const auto kernel = makeDiamondKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto *dom = manager->resultOf<analysis::DomTreeResult>(
        *kernel, analysis::DomTreeResult::kName);
    ASSERT_NE(dom, nullptr);
    EXPECT_EQ(dom->idom[0], 0); // entry
    EXPECT_EQ(dom->idom[1], 0);
    EXPECT_EQ(dom->idom[2], 0);
    EXPECT_EQ(dom->idom[3], 0); // join is dominated by the branch only
    EXPECT_TRUE(dom->dominates(0, 3));
    EXPECT_TRUE(dom->dominates(3, 3)); // reflexive
    EXPECT_FALSE(dom->dominates(1, 3));
    EXPECT_FALSE(dom->dominates(2, 1));

    const auto *pdom = manager->resultOf<analysis::PostDomTreeResult>(
        *kernel, analysis::PostDomTreeResult::kName);
    ASSERT_NE(pdom, nullptr);
    EXPECT_EQ(pdom->ipdom[0], 3);
    EXPECT_EQ(pdom->ipdom[1], 3);
    EXPECT_EQ(pdom->ipdom[2], 3);
    EXPECT_EQ(pdom->ipdom[3], analysis::PostDomTreeResult::kVirtualExit);
}

TEST(Dominators, PostDomsMatchCompilerCfgAnalysisOnSuite)
{
    for (const auto &app : Suite::all()) {
        const auto kernel = Suite::makeKernel(app);
        auto manager = AnalysisManager::withDefaultPasses();
        const auto *pdom = manager->resultOf<analysis::PostDomTreeResult>(
            *kernel, analysis::PostDomTreeResult::kName);
        ASSERT_NE(pdom, nullptr) << app.abbrev;
        CfgAnalysis cfg(*kernel);
        for (std::size_t blk = 0; blk < kernel->blocks().size(); ++blk) {
            const int ours =
                pdom->ipdom[blk] == analysis::PostDomTreeResult::kVirtualExit
                    ? -1
                    : pdom->ipdom[blk];
            EXPECT_EQ(ours, cfg.ipdom(static_cast<int>(blk)))
                << app.abbrev << " B" << blk;
        }

        const auto *reconv = manager->resultOf<analysis::ReconvCheckResult>(
            *kernel, analysis::ReconvCheckResult::kName);
        ASSERT_NE(reconv, nullptr) << app.abbrev;
        EXPECT_TRUE(reconv->compared) << app.abbrev;
        EXPECT_EQ(reconv->mismatches, 0u) << app.abbrev;
    }
}

// --- Reaching definitions -------------------------------------------------

TEST(ReachingDefs, DiamondPartialDefIsUseBeforeDef)
{
    const auto kernel = makeDiamondKernel();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto &outcome =
        manager->ensure(*kernel, analysis::ReachingDefsResult::kName);
    ASSERT_FALSE(outcome.skipped);
    const auto *defs =
        dynamic_cast<const analysis::ReachingDefsResult *>(
            outcome.result.get());
    ASSERT_NE(defs, nullptr);

    // R5 is defined only on the else path, so its join-block use is a
    // maybe-undef read; R0/R1 are never defined at all.
    EXPECT_TRUE(defs->everDefined.test(5));
    EXPECT_FALSE(defs->everDefined.test(0));
    EXPECT_TRUE(defs->maybeUndefIn[3].test(5));
    EXPECT_FALSE(defs->definiteUndefIn[3].test(5));
    EXPECT_GE(defs->useBeforeDefCount, 1u);
    EXPECT_GE(defs->useNeverDefinedCount, 1u);
    EXPECT_TRUE(outcome.diags.has(DiagKind::UseBeforeDef));
    EXPECT_TRUE(outcome.diags.has(DiagKind::UseNeverDefined));
    // Legal-but-suspicious: warnings, never errors (the runtime
    // initializes register files at CTA launch).
    EXPECT_EQ(outcome.diags.errors(), 0u);
}

TEST(ReachingDefs, FullyDefinedChainIsQuiet)
{
    KernelBuilder b("defined");
    b.regsPerThread(4);
    b.newBlock();
    b.alu(Opcode::MOV, 0, 0); // seeds R0 (reads launch-initialized R0)
    b.alu(Opcode::IADD, 1, 0, 0);
    b.alu(Opcode::IADD, 2, 1, 0);
    b.exit();
    const auto kernel = b.finalize();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto &outcome =
        manager->ensure(*kernel, analysis::ReachingDefsResult::kName);
    // Only the launch-value MOV seed reads an undefined register.
    EXPECT_FALSE(outcome.diags.has(DiagKind::UseNeverDefined));
}

// --- Liveness cross-validation --------------------------------------------

TEST(LivenessCheck, SuiteVectorsAreSoundAndExact)
{
    auto manager = AnalysisManager::withDefaultPasses();
    std::vector<std::unique_ptr<Kernel>> keep_alive;
    for (const auto &app : Suite::all()) {
        keep_alive.push_back(Suite::makeKernel(app));
        const Kernel &kernel = *keep_alive.back();
        const auto *live = manager->resultOf<analysis::LivenessCheckResult>(
            kernel, analysis::LivenessCheckResult::kName);
        ASSERT_NE(live, nullptr) << app.abbrev;
        EXPECT_EQ(live->unsoundCount, 0u) << app.abbrev;
        EXPECT_TRUE(live->exactMatch) << app.abbrev;
        EXPECT_FALSE(live->overApprox) << app.abbrev;
        EXPECT_GT(live->maxLive, 0u) << app.abbrev;
        EXPECT_GT(live->liveRatio, 0.0) << app.abbrev;
        EXPECT_LE(live->liveRatio, 1.0) << app.abbrev;
    }
}

TEST(LivenessCheck, DroppedRegisterIsRejectedAsUnsound)
{
    // Mirrors RmuConfig::dropLiveReg: R0 is genuinely live at the entry of
    // the straight kernel, so removing it from the compiler vectors must
    // be flagged as an error — the RMU would skip saving a needed value.
    const auto kernel = makeStraightKernel();
    analysis::LintOptions options;
    options.dropLiveReg = 0;
    auto manager = AnalysisManager::withDefaultPasses(options);
    const auto &outcome =
        manager->ensure(*kernel, analysis::LivenessCheckResult::kName);
    ASSERT_FALSE(outcome.skipped);
    const auto *live = dynamic_cast<const analysis::LivenessCheckResult *>(
        outcome.result.get());
    ASSERT_NE(live, nullptr);
    EXPECT_GE(live->unsoundCount, 1u);
    EXPECT_FALSE(live->exactMatch);
    EXPECT_TRUE(outcome.diags.has(DiagKind::LivenessUnsound));
    EXPECT_GE(outcome.diags.errors(), 1u);
}

TEST(LivenessCheck, FullMaskIsSoundButOverApproximate)
{
    const auto kernel = makeStraightKernel();
    analysis::LintOptions options;
    options.fullLiveMask = true;
    auto manager = AnalysisManager::withDefaultPasses(options);
    const auto &outcome =
        manager->ensure(*kernel, analysis::LivenessCheckResult::kName);
    const auto *live = dynamic_cast<const analysis::LivenessCheckResult *>(
        outcome.result.get());
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(live->unsoundCount, 0u); // superset: still sound
    EXPECT_TRUE(live->overApprox);
    EXPECT_TRUE(outcome.diags.has(DiagKind::LivenessOverApprox));
    EXPECT_EQ(outcome.diags.errors(), 0u); // warning, not error
}

TEST(LivenessCheck, ColdRegistersReportedAsDeadDefs)
{
    KernelBuilder b("cold");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::MOV, 0, 0);
    b.alu(Opcode::IADD, 6, 0, 0); // written, never read
    b.alu(Opcode::IADD, 1, 0, 0);
    b.alu(Opcode::IADD, 2, 1, 0);
    b.exit();
    const auto kernel = b.finalize();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto &outcome =
        manager->ensure(*kernel, analysis::LivenessCheckResult::kName);
    const auto *live = dynamic_cast<const analysis::LivenessCheckResult *>(
        outcome.result.get());
    ASSERT_NE(live, nullptr);
    EXPECT_GE(live->deadDefCount, 1u);
    const auto *diag = outcome.diags.find(DiagKind::DeadDef);
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, Severity::Note);
}

// --- Shared memory --------------------------------------------------------

TEST(SharedMemCheck, ExecutorAddressModelIsConflictFree)
{
    // The executor maps lane L of a shared op to word (base/4 + L) mod
    // (region/4) with region always a multiple of 128 bytes, so all 32
    // lanes land in distinct banks; the pass must *prove* that (degree 1)
    // rather than report a phantom conflict.
    KernelBuilder b("shared");
    b.regsPerThread(8);
    b.threadsPerCta(64);
    b.shmemPerCta(4096);
    b.newBlock();
    b.alu(Opcode::MOV, 0, 0);
    MemPattern pattern;
    pattern.shared = true;
    pattern.footprint = 4096;
    pattern.transactions = 1;
    b.load(Opcode::LD_SHARED, 1, 0, pattern);
    b.store(Opcode::ST_SHARED, 0, 1, pattern);
    b.exit();
    const auto kernel = b.finalize();
    auto manager = AnalysisManager::withDefaultPasses();
    const auto *shared = manager->resultOf<analysis::SharedMemCheckResult>(
        *kernel, analysis::SharedMemCheckResult::kName);
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(shared->sharedOps, 2u);
    EXPECT_EQ(shared->maxBankConflictDegree, 1u);
    EXPECT_EQ(shared->footprintViolations, 0u);
    EXPECT_EQ(shared->opsWithoutShmem, 0u);
}

TEST(SharedMemCheck, SharedOpWithoutShmemWarns)
{
    KernelBuilder b("noshmem");
    b.regsPerThread(8);
    b.newBlock();
    b.alu(Opcode::MOV, 0, 0);
    MemPattern pattern;
    pattern.shared = true;
    pattern.footprint = 1024;
    b.load(Opcode::LD_SHARED, 1, 0, pattern);
    b.exit();
    const auto kernel = b.finalize();
    const auto result = analysis::lintKernel(*kernel);
    EXPECT_TRUE(result.diags.has(DiagKind::SharedOpWithoutShmem));
    EXPECT_EQ(result.diags.errors(), 0u); // executor tolerates it: warning
}

// --- Defect seeding end-to-end (library-level self-check) ------------------

using DiagKey = std::tuple<DiagKind, int, int, int>;

std::set<DiagKey>
diagKeys(const analysis::DiagnosticSet &diags)
{
    std::set<DiagKey> keys;
    for (const auto &diag : diags.all())
        keys.emplace(diag.kind, diag.block, diag.instr, diag.reg);
    return keys;
}

TEST(SelfCheck, EveryDefectKindProducesANewExpectedDiagnostic)
{
    GenOptions gen;
    gen.observeAllRegs = true;
    gen.emitBarriers = true; // barrier-removal defect needs BARs to remove
    for (const DefectKind kind : analysis::allDefectKinds()) {
        bool detected = false;
        for (std::uint64_t seed = 1; seed <= 24 && !detected; ++seed) {
            const auto clean = generateKernelSpec(seed, gen).build();
            const auto defect =
                analysis::KernelMutator::seedDefect(*clean, kind, seed);
            if (!defect)
                continue;
            // Baseline under *default* options: bit-vector corruption
            // defects live in the candidate's options, and applying them
            // to the clean kernel would plant the same finding there.
            const auto clean_lint = analysis::lintKernel(*clean);
            if (clean_lint.diags.hasErrors())
                continue; // generator bug, not this defect's concern
            const auto mutant_lint =
                analysis::lintKernel(*defect->kernel, defect->options);
            const auto before = diagKeys(clean_lint.diags);
            for (const auto &diag : mutant_lint.diags.all()) {
                for (const DiagKind expected : defect->expected) {
                    detected = detected ||
                               (diag.kind == expected &&
                                before.count({diag.kind, diag.block,
                                              diag.instr, diag.reg}) == 0);
                }
            }
        }
        EXPECT_TRUE(detected)
            << "defect " << defectKindName(kind)
            << " escaped the analysis pipeline";
    }
}

// --- Lint facade and diagnostics ------------------------------------------

TEST(Lint, SuiteKernelsLintCleanWithPopulatedStats)
{
    auto manager = AnalysisManager::withDefaultPasses();
    std::vector<std::unique_ptr<Kernel>> keep_alive;
    for (const auto &app : Suite::all()) {
        keep_alive.push_back(Suite::makeKernel(app));
        const Kernel &kernel = *keep_alive.back();
        const auto result = analysis::lintKernel(*manager, kernel);
        EXPECT_TRUE(result.clean())
            << app.abbrev << "\n" << result.diags.renderText(16);
        EXPECT_EQ(result.stats.staticInstrs, kernel.staticInstrs());
        EXPECT_EQ(result.stats.numBlocks, kernel.blocks().size());
        EXPECT_GT(result.stats.maxLive, 0u);
        EXPECT_GT(result.stats.liveRatio, 0.0);
    }
}

TEST(Diagnostics, DefaultSeveritiesFollowThePolicy)
{
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::BlockExtentCorrupt),
              Severity::Error);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::LivenessUnsound),
              Severity::Error);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::ReconvergenceMismatch),
              Severity::Error);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::UseBeforeDef),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::LivenessOverApprox),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::SharedBankConflict),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::DeadDef), Severity::Note);

    // Abstract-interpretation kinds: every diagnostic a clean kernel can
    // draw is advisory (assertLintClean fatals on errors, and the suite
    // and generator route every kernel through it); the Error kinds are
    // reserved for dynamic soundness proofs from the cross-validator.
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::ValueOverflow),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::ConstantFoldableDef),
              Severity::Note);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::LoopBudgetExceeded),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::SharedStrideAliasesWarps),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::SharedMemRace),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::CompressionClaimTooNarrow),
              Severity::Warning);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::CompressionWidthUnsound),
              Severity::Error);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::ValueRangeUnsound),
              Severity::Error);
    EXPECT_EQ(analysis::defaultSeverity(DiagKind::AddressBoundUnsound),
              Severity::Error);
}

TEST(Diagnostics, RenderTextPutsErrorsFirstAndElides)
{
    analysis::DiagnosticSet diags;
    diags.add(DiagKind::DeadDef, "k", 0, 1, 6, "cold register");
    diags.add(DiagKind::UseBeforeDef, "k", 0, 0, 2, "maybe-undef read");
    diags.add(DiagKind::BlockExtentCorrupt, "k", 1, -1, -1, "gap after B0");
    const std::string text = diags.renderText();
    const auto error_at = text.find("error");
    const auto warning_at = text.find("warning");
    const auto note_at = text.find("note");
    ASSERT_NE(error_at, std::string::npos);
    ASSERT_NE(warning_at, std::string::npos);
    ASSERT_NE(note_at, std::string::npos);
    EXPECT_LT(error_at, warning_at);
    EXPECT_LT(warning_at, note_at);

    // A capped rendering keeps the error and reports the elision.
    const std::string capped = diags.renderText(1);
    EXPECT_NE(capped.find("error"), std::string::npos);
    EXPECT_EQ(capped.find("note"), std::string::npos);
    EXPECT_LT(capped.size(), text.size());
}

TEST(Diagnostics, RenderJsonEmitsOneRecordPerDiagnostic)
{
    analysis::DiagnosticSet diags;
    diags.add(DiagKind::UseBeforeDef, "k", 0, 3, 2, "maybe-undef read");
    diags.add(DiagKind::NoExit, "k", -1, -1, -1, "no EXIT anywhere");
    std::ostringstream os;
    diags.renderJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"use-before-def\""), std::string::npos);
    EXPECT_NE(json.find("\"no-exit\""), std::string::npos);
    EXPECT_NE(json.find("\"warning\""), std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
}

} // namespace
} // namespace finereg
