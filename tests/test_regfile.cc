/**
 * @file
 * Register-file component tests: the counting allocator, the PCRF's tagged
 * chains + free-space monitor + pointer table (Fig. 11 semantics), the
 * direct-mapped bit-vector cache, and the CTA status monitor (Table IV).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "regfile/bitvec_cache.hh"
#include "regfile/cta_status_monitor.hh"
#include "regfile/pcrf.hh"
#include "regfile/register_file.hh"
#include "verify/sim_error.hh"

/** Expect @p stmt to throw SimException whose message contains @p substr. */
#define EXPECT_SIM_ERROR(stmt, substr)                                      \
    do {                                                                    \
        try {                                                               \
            stmt;                                                           \
            FAIL() << "expected SimException";                              \
        } catch (const finereg::SimException &e) {                          \
            EXPECT_NE(std::string(e.what()).find(substr),                   \
                      std::string::npos)                                    \
                << e.what();                                                \
        }                                                                   \
    } while (0)

namespace finereg
{
namespace
{

// ---- RegFileAllocator ------------------------------------------------------

TEST(RegFileAllocator, CapacityFromBytes)
{
    RegFileAllocator rf("rf", 256 * 1024);
    EXPECT_EQ(rf.capacityWarpRegs(), 2048u); // 256 KB / 128 B
    EXPECT_EQ(rf.freeWarpRegs(), 2048u);
}

TEST(RegFileAllocator, AllocateFreeRoundTrip)
{
    RegFileAllocator rf("rf", 1024);
    const unsigned h1 = rf.allocate(3);
    const unsigned h2 = rf.allocate(5);
    EXPECT_EQ(rf.usedWarpRegs(), 8u);
    EXPECT_EQ(rf.allocationSize(h1), 3u);
    rf.free(h1);
    EXPECT_EQ(rf.usedWarpRegs(), 5u);
    rf.free(h2);
    EXPECT_EQ(rf.usedWarpRegs(), 0u);
    EXPECT_EQ(rf.numAllocations(), 0u);
}

TEST(RegFileAllocator, CanAllocateBoundary)
{
    RegFileAllocator rf("rf", 1024); // 8 warp-regs
    EXPECT_TRUE(rf.canAllocate(8));
    EXPECT_FALSE(rf.canAllocate(9));
    rf.allocate(8);
    EXPECT_FALSE(rf.canAllocate(1));
    EXPECT_TRUE(rf.canAllocate(0));
}

TEST(RegFileAllocatorError, OverAllocateThrows)
{
    RegFileAllocator rf("rf", 1024);
    EXPECT_SIM_ERROR(rf.allocate(9), "exceeds");
}

TEST(RegFileAllocatorError, DoubleFreeThrows)
{
    RegFileAllocator rf("rf", 1024);
    const unsigned h = rf.allocate(2);
    rf.free(h);
    EXPECT_SIM_ERROR(rf.free(h), "unknown handle");
}

TEST(RegFileAllocator, ResizeKeepsAllocations)
{
    RegFileAllocator rf("rf", 1024);
    rf.allocate(4);
    rf.resize(2048);
    EXPECT_EQ(rf.capacityWarpRegs(), 16u);
    EXPECT_EQ(rf.usedWarpRegs(), 4u);
}

TEST(RegFileAllocatorError, ResizeBelowUsageThrows)
{
    RegFileAllocator rf("rf", 1024);
    rf.allocate(6);
    EXPECT_SIM_ERROR(rf.resize(256), "below current usage");
}

// ---- Pcrf -------------------------------------------------------------------

TEST(Pcrf, EntryCountFromBytes)
{
    StatGroup stats("t");
    Pcrf pcrf(128 * 1024, stats);
    EXPECT_EQ(pcrf.numEntries(), 1024u); // Sec. V-F: 1,024 registers
    EXPECT_EQ(pcrf.freeEntries(), 1024u);
    EXPECT_EQ(pcrf.tagOverheadBits(), 21u * 1024);
}

TEST(Pcrf, StoreRestoreRoundTrip)
{
    StatGroup stats("t");
    Pcrf pcrf(4 * 1024, stats); // 32 entries
    const std::vector<LiveReg> regs{{0, 1}, {0, 5}, {2, 9}};
    pcrf.storeCta(7, regs);
    EXPECT_TRUE(pcrf.holds(7));
    EXPECT_EQ(pcrf.liveCountOf(7), 3u);
    EXPECT_EQ(pcrf.freeEntries(), 29u);
    EXPECT_EQ(pcrf.numPendingCtas(), 1u);

    const auto restored = pcrf.restoreCta(7);
    ASSERT_EQ(restored.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(restored[i].warp, regs[i].warp);
        EXPECT_EQ(restored[i].reg, regs[i].reg);
    }
    EXPECT_FALSE(pcrf.holds(7));
    EXPECT_EQ(pcrf.freeEntries(), 32u);
}

TEST(Pcrf, ChainsInterleaveAcrossCtas)
{
    StatGroup stats("t");
    Pcrf pcrf(4 * 1024, stats);
    pcrf.storeCta(1, {{0, 0}, {0, 1}});
    pcrf.storeCta(2, {{1, 0}, {1, 1}, {1, 2}});
    pcrf.restoreCta(1); // frees slots 0,1
    pcrf.storeCta(3, {{2, 0}, {2, 1}, {2, 2}});
    // CTA 3's chain reuses the freed low slots then continues after CTA 2.
    const auto chain = pcrf.chainOf(3);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], 0u);
    EXPECT_EQ(chain[1], 1u);
    EXPECT_EQ(chain[2], 5u);
    // Restores still walk the chain correctly.
    const auto restored = pcrf.restoreCta(3);
    EXPECT_EQ(restored.size(), 3u);
    EXPECT_EQ(pcrf.liveCountOf(2), 3u);
}

TEST(Pcrf, CanStoreBoundary)
{
    StatGroup stats("t");
    Pcrf pcrf(512, stats); // 4 entries
    EXPECT_TRUE(pcrf.canStore(4));
    EXPECT_FALSE(pcrf.canStore(5));
    pcrf.storeCta(1, {{0, 0}, {0, 1}, {0, 2}});
    EXPECT_TRUE(pcrf.canStore(1));
    EXPECT_FALSE(pcrf.canStore(2));
}

TEST(Pcrf, EmptyLiveSetIsValid)
{
    StatGroup stats("t");
    Pcrf pcrf(512, stats);
    pcrf.storeCta(9, {});
    EXPECT_TRUE(pcrf.holds(9));
    EXPECT_EQ(pcrf.liveCountOf(9), 0u);
    EXPECT_EQ(pcrf.restoreCta(9).size(), 0u);
}

TEST(PcrfError, OverflowThrows)
{
    StatGroup stats("t");
    Pcrf pcrf(256, stats); // 2 entries
    EXPECT_SIM_ERROR(pcrf.storeCta(1, {{0, 0}, {0, 1}, {0, 2}}),
                     "overflow");
}

TEST(PcrfError, DoubleStoreThrows)
{
    StatGroup stats("t");
    Pcrf pcrf(512, stats);
    pcrf.storeCta(1, {{0, 0}});
    EXPECT_SIM_ERROR(pcrf.storeCta(1, {{0, 1}}), "already holds");
}

TEST(PcrfError, RestoreAbsentThrows)
{
    StatGroup stats("t");
    Pcrf pcrf(512, stats);
    EXPECT_SIM_ERROR(pcrf.restoreCta(42), "absent");
}

TEST(Pcrf, StatsCountAccesses)
{
    StatGroup stats("t");
    Pcrf pcrf(512, stats);
    pcrf.storeCta(1, {{0, 0}, {0, 1}});
    pcrf.restoreCta(1);
    EXPECT_EQ(stats.counterValue("pcrf.writes"), 2u);
    EXPECT_EQ(stats.counterValue("pcrf.reads"), 2u);
    EXPECT_EQ(stats.counterValue("pcrf.stored_ctas"), 1u);
    EXPECT_EQ(stats.counterValue("pcrf.restored_ctas"), 1u);
}

/** Property: random store/restore sequences preserve every CTA's register
 * list exactly and never leak entries. */
class PcrfProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PcrfProperty, RandomTrafficPreservesContents)
{
    StatGroup stats("t");
    Pcrf pcrf(16 * 1024, stats); // 128 entries
    Rng rng(GetParam());
    std::map<GridCtaId, std::vector<LiveReg>> expected;
    GridCtaId next_id = 0;

    for (int step = 0; step < 300; ++step) {
        if (rng.chance(0.6)) {
            const unsigned n = rng.below(12);
            if (!pcrf.canStore(n))
                continue;
            std::vector<LiveReg> regs;
            for (unsigned i = 0; i < n; ++i) {
                regs.push_back({WarpId(rng.below(32)),
                                RegIndex(rng.below(64))});
            }
            pcrf.storeCta(next_id, regs);
            expected[next_id] = regs;
            ++next_id;
        } else if (!expected.empty()) {
            auto it = expected.begin();
            std::advance(it, rng.below(expected.size()));
            const auto restored = pcrf.restoreCta(it->first);
            ASSERT_EQ(restored.size(), it->second.size());
            for (std::size_t i = 0; i < restored.size(); ++i) {
                ASSERT_EQ(restored[i].warp, it->second[i].warp);
                ASSERT_EQ(restored[i].reg, it->second[i].reg);
            }
            expected.erase(it);
        }
        // Free-space monitor is consistent with the pointer table.
        std::size_t held = 0;
        for (const auto &[cta, regs] : expected)
            held += regs.size();
        ASSERT_EQ(pcrf.freeEntries(), pcrf.numEntries() - held);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcrfProperty,
                         ::testing::Values(31, 32, 33, 34));

// ---- BitvecCache ------------------------------------------------------------

TEST(BitvecCache, MissThenHit)
{
    StatGroup stats("t");
    BitvecCache cache(32, stats);
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(BitvecCache, DirectMappedConflicts)
{
    StatGroup stats("t");
    BitvecCache cache(1, stats); // degenerate: every PC conflicts
    EXPECT_FALSE(cache.access(0x0));
    EXPECT_FALSE(cache.access(0x8));
    EXPECT_FALSE(cache.access(0x0)); // evicted by 0x8
}

TEST(BitvecCache, ProbeDoesNotFill)
{
    StatGroup stats("t");
    BitvecCache cache(32, stats);
    EXPECT_FALSE(cache.probe(0x40));
    cache.access(0x40);
    EXPECT_TRUE(cache.probe(0x40));
}

TEST(BitvecCache, StorageMatchesSecVF)
{
    StatGroup stats("t");
    BitvecCache cache(32, stats);
    // Sec. V-F: 32 entries x 12 bytes = 384 bytes.
    EXPECT_EQ(cache.storageBits(), 384u * 8);
}

TEST(BitvecCache, ClearInvalidates)
{
    StatGroup stats("t");
    BitvecCache cache(8, stats);
    cache.access(0x10);
    cache.clear();
    EXPECT_FALSE(cache.probe(0x10));
}

TEST(BitvecCache, DistinctPcsMostlyCoexist)
{
    StatGroup stats("t");
    BitvecCache cache(32, stats);
    // 16 consecutive instruction PCs: with 32 sets and the folding hash,
    // they should not all collide.
    for (Pc pc = 0; pc < 16 * kInstrBytes; pc += kInstrBytes)
        cache.access(pc);
    unsigned resident = 0;
    for (Pc pc = 0; pc < 16 * kInstrBytes; pc += kInstrBytes)
        resident += cache.probe(pc) ? 1 : 0;
    EXPECT_GE(resident, 12u);
}

// ---- CtaStatusMonitor --------------------------------------------------------

TEST(CtaStatusMonitor, LaunchIsActive)
{
    CtaStatusMonitor monitor;
    monitor.onLaunch(5);
    EXPECT_EQ(monitor.contextOf(5), ContextLocation::Pipeline);
    EXPECT_EQ(monitor.registersOf(5), RegisterLocation::Acrf);
    EXPECT_TRUE(monitor.isActive(5));
}

TEST(CtaStatusMonitor, TableIvEncodings)
{
    // Table IV: value 0 = not launched, 1 = shared memory / PCRF,
    // 2 = pipeline / ACRF.
    EXPECT_EQ(static_cast<int>(ContextLocation::NotLaunched), 0);
    EXPECT_EQ(static_cast<int>(ContextLocation::SharedMemory), 1);
    EXPECT_EQ(static_cast<int>(ContextLocation::Pipeline), 2);
    EXPECT_EQ(static_cast<int>(RegisterLocation::NotLaunched), 0);
    EXPECT_EQ(static_cast<int>(RegisterLocation::Pcrf), 1);
    EXPECT_EQ(static_cast<int>(RegisterLocation::Acrf), 2);
}

TEST(CtaStatusMonitor, PendingIsNotActive)
{
    CtaStatusMonitor monitor;
    monitor.onLaunch(1);
    monitor.setContext(1, ContextLocation::SharedMemory);
    EXPECT_FALSE(monitor.isActive(1));
    monitor.setContext(1, ContextLocation::Pipeline);
    monitor.setRegisters(1, RegisterLocation::Pcrf);
    EXPECT_FALSE(monitor.isActive(1));
}

TEST(CtaStatusMonitor, UnknownCtaReadsNotLaunched)
{
    CtaStatusMonitor monitor;
    EXPECT_EQ(monitor.contextOf(99), ContextLocation::NotLaunched);
    EXPECT_EQ(monitor.registersOf(99), RegisterLocation::NotLaunched);
    EXPECT_FALSE(monitor.isActive(99));
}

TEST(CtaStatusMonitor, ResumePriorityPrefersRegsInAcrf)
{
    CtaStatusMonitor monitor;
    // CTA 1: context parked, registers still in ACRF (priority 1).
    monitor.onLaunch(1);
    monitor.setContext(1, ContextLocation::SharedMemory);
    // CTA 2: fully backed up (priority 2).
    monitor.onLaunch(2);
    monitor.setContext(2, ContextLocation::SharedMemory);
    monitor.setRegisters(2, RegisterLocation::Pcrf);

    const auto pick = monitor.pickResumeCandidate({2, 1});
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u);

    monitor.onRetire(1);
    const auto pick2 = monitor.pickResumeCandidate({2});
    ASSERT_TRUE(pick2.has_value());
    EXPECT_EQ(*pick2, 2u);
}

TEST(CtaStatusMonitor, ActiveCtasAreNotResumeCandidates)
{
    CtaStatusMonitor monitor;
    monitor.onLaunch(3);
    EXPECT_FALSE(monitor.pickResumeCandidate({3}).has_value());
}

TEST(CtaStatusMonitor, StorageBitsMatchSecVF)
{
    CtaStatusMonitor monitor(128);
    // 2 fields x 2 bits x 128 CTAs = 512 bits (Sec. V-F: 256 bits per
    // field).
    EXPECT_EQ(monitor.storageBits(), 512u);
}

TEST(CtaStatusMonitorError, DoubleLaunchThrows)
{
    CtaStatusMonitor monitor;
    monitor.onLaunch(1);
    EXPECT_SIM_ERROR(monitor.onLaunch(1), "twice");
}

TEST(CtaStatusMonitorError, UpdateUnknownThrows)
{
    CtaStatusMonitor monitor;
    EXPECT_SIM_ERROR(monitor.setContext(9, ContextLocation::Pipeline),
                     "unknown");
}

} // namespace
} // namespace finereg
