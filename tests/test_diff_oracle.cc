/**
 * @file
 * Differential-oracle tests: compare() unit semantics (including poison
 * exclusion), generated kernels matching the reference under every policy,
 * the PCRF round-trip properties, and the headline acceptance check — a
 * deliberately broken liveness mask must be caught and minimized to a
 * counterexample of at most 10 instructions.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/simulator.hh"
#include "ref/diff_oracle.hh"
#include "ref/kernel_gen.hh"
#include "ref/ref_executor.hh"
#include "sm/gpu.hh"
#include "workloads/suite.hh"

namespace finereg
{
namespace
{

/** Small GPU with a skewed ACRF/PCRF split: maximal CTA-switch pressure. */
GpuConfig
pressureConfig()
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = 1;
    config.policy.acrfBytes = 64 * 1024;
    config.policy.pcrfBytes = 192 * 1024;
    return config;
}

ArchState
twoThreadState()
{
    ArchState s;
    s.kernelName = "synthetic";
    s.regsPerThread = 2;
    s.threadsPerCta = 32;
    s.ctas.resize(1);
    s.ctas[0].threads.resize(32);
    for (auto &t : s.ctas[0].threads) {
        t.regs = {1, 2};
        t.retired = 5;
    }
    return s;
}

TEST(DiffOracleCompare, IdenticalStatesMatch)
{
    const ArchState a = twoThreadState();
    const ArchState b = twoThreadState();
    EXPECT_FALSE(DiffOracle::compare(a, b).any());
}

TEST(DiffOracleCompare, FlagsFirstRegisterDivergence)
{
    const ArchState ref = twoThreadState();
    ArchState sim = twoThreadState();
    sim.ctas[0].threads[3].regs[1] = 99;

    const Divergence d = DiffOracle::compare(ref, sim);
    ASSERT_EQ(d.kind, Divergence::Kind::RegValue);
    EXPECT_EQ(d.cta, 0u);
    EXPECT_EQ(d.thread, 3u);
    EXPECT_EQ(d.reg, 1);
    EXPECT_EQ(d.refValue, 2u);
    EXPECT_EQ(d.simValue, 99u);
    EXPECT_NE(d.toString().find("thread=3"), std::string::npos);
}

TEST(DiffOracleCompare, PoisonedRegistersAreExcluded)
{
    const ArchState ref = twoThreadState();
    ArchState sim = twoThreadState();
    sim.ctas[0].threads[3].regs[1] = 99;
    sim.ctas[0].threads[3].poison = 1ull << 1; // dropped as dead: legal
    EXPECT_FALSE(DiffOracle::compare(ref, sim).any());

    // But poison on the *sim* side never hides a retired-count mismatch.
    sim.ctas[0].threads[3].retired = 4;
    EXPECT_EQ(DiffOracle::compare(ref, sim).kind,
              Divergence::Kind::RetiredCount);
}

TEST(DiffOracleCompare, FlagsStoreImageDivergence)
{
    ArchState ref = twoThreadState();
    ArchState sim = twoThreadState();
    ref.globalStores[0x1000] = 7;
    sim.globalStores[0x1000] = 8;
    EXPECT_EQ(DiffOracle::compare(ref, sim).kind,
              Divergence::Kind::GlobalMem);

    sim.globalStores[0x1000] = 7;
    sim.ctas[0].sharedStores[16] = 1; // word absent from the reference
    const Divergence d = DiffOracle::compare(ref, sim);
    EXPECT_EQ(d.kind, Divergence::Kind::SharedMem);
    EXPECT_EQ(d.addr, 16u);
}

TEST(DiffOracleCompare, FlagsShapeMismatch)
{
    const ArchState ref = twoThreadState();
    ArchState sim = twoThreadState();
    sim.ctas.emplace_back();
    EXPECT_EQ(DiffOracle::compare(ref, sim).kind, Divergence::Kind::Shape);
}

/** Print the seed and a replay command when a generated case fails. */
void
reportCase(std::uint64_t seed)
{
    std::fprintf(stderr,
                 "differential case failed: seed=0x%llx\n"
                 "repro: tools/finereg_diff --case-seed 0x%llx --sms 1 "
                 "--acrf 64 --pcrf 192\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(seed));
}

TEST(DiffOracle, GeneratedKernelsMatchUnderEveryPolicy)
{
    const GpuConfig config = pressureConfig();
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed);
        const auto kernel = spec.build();
        const DiffOracle::Report report =
            DiffOracle::checkAllPolicies(*kernel, config);
        EXPECT_EQ(report.results.size(), 5u);
        if (!report.pass())
            reportCase(seed);
        ASSERT_TRUE(report.pass())
            << spec.describe() << "\n" << report.toString();
    }
}

TEST(DiffOracle, SuiteWorkloadMatchesUnderFineReg)
{
    // One real Table II app (scaled down) through the oracle, exercising
    // barriers and shared memory on top of the generated coverage.
    const auto &entry = Suite::byName("NW");
    const auto kernel = Suite::makeKernel(entry, 0.01);
    const DiffOracle::Report report = DiffOracle::checkAllPolicies(
        *kernel, pressureConfig(),
        {PolicyKind::Baseline, PolicyKind::FineReg});
    ASSERT_TRUE(report.pass()) << report.toString();
}

// PCRF round-trip properties (ISSUE satellite): a swap out and back in
// through the PCRF must be bit-exact for registers that are live, and may
// only differ (poison) on registers liveness proved dead.

TEST(PcrfRoundTrip, AllLiveKernelIsBitExact)
{
    // observeAllRegs folds every register into the stored result, so all
    // registers stay live until the epilogue: FineReg must preserve every
    // one bit-exactly, with no poison at all.
    GpuConfig config = pressureConfig();
    config.policy.kind = PolicyKind::FineReg;
    config.trackValues = true;

    GenOptions gen;
    gen.observeAllRegs = true;

    bool any_swapped = false;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed, gen);
        const auto kernel = spec.build();

        Gpu gpu(config, *kernel);
        const auto run = gpu.run();
        ASSERT_FALSE(run.hitCycleLimit) << spec.describe();
        any_swapped = any_swapped ||
                      gpu.stats().counterValue("pcrf.stored_ctas") > 0;

        const auto sim = gpu.takeArchState();
        ASSERT_NE(sim, nullptr);
        for (const CtaEndState &cta : sim->ctas) {
            for (const ThreadEndState &t : cta.threads)
                ASSERT_EQ(t.poison, 0u) << spec.describe();
        }
        const ArchState ref = RefExecutor::execute(*kernel, config.seed);
        const Divergence d = DiffOracle::compare(ref, *sim);
        ASSERT_FALSE(d.any()) << spec.describe() << "\n" << d.toString();
    }
    // The property is vacuous if nothing was ever swapped out.
    EXPECT_TRUE(any_swapped)
        << "no CTA was ever stored to the PCRF: raise the pressure";
}

TEST(PcrfRoundTrip, DeadRegistersMayOnlyDifferWherePoisoned)
{
    // With a sparse observe set most registers die early; FineReg may drop
    // them (poison), but every unpoisoned register must still match the
    // reference exactly — compare() would flag anything else.
    GpuConfig config = pressureConfig();
    config.policy.kind = PolicyKind::FineReg;
    config.trackValues = true;

    bool any_poison = false;
    for (std::uint64_t seed = 11; seed <= 18; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed);
        const auto kernel = spec.build();

        const SimResult run = Simulator::run(config, *kernel);
        ASSERT_FALSE(run.failed) << run.failureReason;
        ASSERT_NE(run.archState, nullptr);

        for (const CtaEndState &cta : run.archState->ctas) {
            for (const ThreadEndState &t : cta.threads)
                any_poison = any_poison || t.poison != 0;
        }
        const ArchState ref = RefExecutor::execute(*kernel, config.seed);
        const Divergence d = DiffOracle::compare(ref, *run.archState);
        ASSERT_FALSE(d.any()) << spec.describe() << "\n" << d.toString();
    }
    // At least one run must have exercised the dead-drop path, or the
    // poison exclusion in compare() is untested.
    EXPECT_TRUE(any_poison)
        << "no register was ever dropped as dead: raise the pressure";
}

// Acceptance check from ISSUE.md: break the liveness mask on purpose and
// require the oracle to (a) catch it and (b) shrink the counterexample to
// at most 10 static instructions.

TEST(BrokenLiveness, IsCaughtAndMinimizedToTenInstructions)
{
    GpuConfig config = pressureConfig();
    config.policy.dropLiveReg = 1; // every gathered mask loses R1

    GenOptions gen;
    gen.observeAllRegs = true;

    const std::vector<PolicyKind> policies{PolicyKind::FineReg};

    std::uint64_t bad_seed = 0;
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 40 && !caught; ++seed) {
        const KernelSpec spec = generateKernelSpec(seed, gen);
        const auto kernel = spec.build();
        if (!DiffOracle::checkAllPolicies(*kernel, config, policies)
                 .pass()) {
            caught = true;
            bad_seed = seed;
        }
    }
    ASSERT_TRUE(caught)
        << "the deliberately broken liveness mask was never detected";

    const auto reproduces = [&](const KernelSpec &cand) {
        const auto kernel = cand.build();
        return !DiffOracle::checkAllPolicies(*kernel, config, policies)
                    .pass();
    };
    const KernelSpec minimized =
        minimizeSpec(generateKernelSpec(bad_seed, gen), reproduces, 150);

    ASSERT_TRUE(reproduces(minimized)) << minimized.describe();
    EXPECT_LE(minimized.instrCount(), 10u) << minimized.describe();
}

} // namespace
} // namespace finereg
