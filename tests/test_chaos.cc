/**
 * @file
 * Chaos harness tests: a small deterministic soak — injected worker
 * exceptions and hangs, a mid-sweep kill, a journal resume, a timeout
 * victim, and quarantine isolation — must converge to results
 * bit-identical to a clean serial run.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "verify/chaos.hh"

namespace finereg
{
namespace
{

TEST(Chaos, CompareSimResultsIgnoresResilienceMetadata)
{
    SimResult a;
    a.kernelName = "k";
    a.policyName = "finereg";
    a.cycles = 100;
    a.instructions = 250;
    a.ipc = 2.5;

    SimResult b = a;
    EXPECT_EQ(compareSimResults(a, b), "");

    // attempts/fromJournal describe how the result was obtained, not what
    // the simulation computed; a retried or replayed run must compare
    // equal to a clean one.
    b.attempts = 5;
    b.fromJournal = true;
    EXPECT_EQ(compareSimResults(a, b), "");
}

TEST(Chaos, CompareSimResultsDetectsSingleBitDrift)
{
    SimResult a;
    a.kernelName = "k";
    a.cycles = 100;
    a.ipc = 2.5;

    SimResult b = a;
    b.ipc = 2.5000000000000004; // one ulp away
    const std::string ipc_diff = compareSimResults(a, b);
    EXPECT_NE(ipc_diff, "");
    EXPECT_NE(ipc_diff.find("ipc"), std::string::npos) << ipc_diff;

    b = a;
    b.cycles = 101;
    EXPECT_NE(compareSimResults(a, b), "");

    b = a;
    b.failed = true;
    EXPECT_NE(compareSimResults(a, b), "");
}

TEST(Chaos, SmallSoakConvergesToCleanResults)
{
    ChaosOptions options;
    options.seed = 0x7357;
    options.rounds = 1;
    options.policies = {PolicyKind::FineReg};
    options.gridScale = 0.02;
    options.jobs = 2;
    options.retries = 2;
    options.killDelayMs = 20.0;
    options.victimTimeoutMs = 500.0;
    options.journalPath = testing::TempDir() + "chaos_test.sweep.jsonl";

    const ChaosReport report = runChaosSoak(options);
    EXPECT_TRUE(report.passed) << report.summary();
    EXPECT_TRUE(report.mismatches.empty());
    EXPECT_EQ(report.totalJobs, 18u); // one policy x the full suite
    EXPECT_GE(report.timeouts, 1u);   // the forced timeout victim
    std::remove(options.journalPath.c_str());
}

} // namespace
} // namespace finereg
