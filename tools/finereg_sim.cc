/**
 * @file
 * finereg_sim — the command-line driver. Runs any subset of the benchmark
 * suite under any subset of the register-management policies with config
 * overrides, printing a comparison table or CSV.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/cli_options.hh"
#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "ref/diff_oracle.hh"
#include "ref/ref_executor.hh"
#include "workloads/suite.hh"

using namespace finereg;

namespace
{

void
printSuite()
{
    TableFormatter table({"app", "full name", "suite", "type",
                          "regs/thr", "thr/CTA", "shmem/CTA", "grid"});
    for (const auto &app : Suite::all()) {
        table.addRow({app.abbrev, app.fullName, app.origin,
                      app.typeR() ? "Type-R" : "Type-S",
                      std::to_string(app.params.regsPerThread),
                      std::to_string(app.params.threadsPerCta),
                      std::to_string(app.params.shmemPerCta),
                      std::to_string(app.params.gridCtas)});
    }
    std::printf("%s", table.render().c_str());
}

/**
 * --diff-check: run every selected (app, policy) pair with value tracking
 * and diff the architectural end state against the reference executor
 * instead of reporting performance.
 */
int
runDiffCheck(const CliOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        for (const auto &app : Suite::all())
            apps.push_back(app.abbrev);
    }

    // Reference-execute each kernel once, then fan the (app, policy)
    // matrix across the runner; each job records its divergence slot.
    std::vector<std::unique_ptr<Kernel>> kernels;
    std::vector<ArchState> refs;
    kernels.reserve(apps.size());
    refs.reserve(apps.size());
    for (const std::string &app : apps) {
        kernels.push_back(
            Suite::makeKernel(Suite::byName(app), options.gridScale));
        refs.push_back(
            RefExecutor::execute(*kernels.back(), options.config.seed));
    }

    std::vector<Divergence> divs(apps.size() * options.policies.size());
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(divs.size());
    std::size_t idx = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (const PolicyKind kind : options.policies) {
            matrix.push_back([idx, a, kind, &divs, &kernels, &refs,
                              &options] {
                divs[idx] = DiffOracle::checkPolicy(
                    *kernels[a], options.config, kind, refs[a]);
                SimResult summary;
                summary.kernelName = kernels[a]->name();
                summary.failed = divs[idx].any();
                return summary;
            });
            ++idx;
        }
    }

    ParallelRunner runner({.jobs = options.jobs, .failFast = false, .stop = {}});
    std::fprintf(stderr, "info: diff-checking %zu runs with %u jobs\n",
                 matrix.size(), ParallelRunner::resolveJobs(options.jobs));
    runner.run(std::move(matrix));

    bool any_diverged = false;
    idx = 0;
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            const Divergence &d = divs[idx++];
            if (d.any()) {
                any_diverged = true;
                std::fprintf(stderr, "FAIL %s/%s: %s\n", app.c_str(),
                             policyKindName(kind), d.toString().c_str());
            } else {
                std::printf("ok   %s/%s\n", app.c_str(),
                            policyKindName(kind));
            }
        }
    }
    if (!any_diverged) {
        std::printf("diff-check: %zu runs match the reference end state\n",
                    divs.size());
    }
    return any_diverged ? 1 : 0;
}

/** CLI spelling of a policy for reconstructed repro commands. */
const char *
policyCliName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline: return "baseline";
      case PolicyKind::VirtualThread: return "vt";
      case PolicyKind::RegDram: return "regdram";
      case PolicyKind::RegMutex: return "regmutex";
      case PolicyKind::FineReg: return "finereg";
    }
    return "baseline";
}

/**
 * The exact command that re-runs one failed (app, policy) cell alone:
 * the original argv minus the selection/parallelism/resume flags, plus
 * the cell pinned down and forced serial.
 */
std::string
reproCommand(const std::vector<std::string> &args, const std::string &app,
             PolicyKind kind)
{
    std::string cmd = "finereg_sim";
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--app" || arg == "--policy" || arg == "--jobs" ||
            arg == "--resume") {
            ++i; // skip the flag's value too
            continue;
        }
        cmd += " " + arg;
    }
    cmd += " --app " + app + " --policy " + policyCliName(kind) +
           " --jobs 1";
    return cmd;
}

/** Failure classes in exit-code precedence order. */
enum FailClass : int
{
    kFailNone = 0,
    kFailQuarantined, ///< Only quarantine skips: partial success.
    kFailTimeout,     ///< Deadline expiries but no harder errors.
    kFailSimError,    ///< Typed simulation error or cycle-cap overrun.
};

int
run(const CliOptions &options, const std::vector<std::string> &args)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        for (const auto &app : Suite::all())
            apps.push_back(app.abbrev);
    }

    std::unique_ptr<SweepJournal> journal;
    if (!options.resumePath.empty()) {
        std::string error;
        journal = SweepJournal::open(options.resumePath, error);
        if (!journal) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
        std::fprintf(stderr, "info: journal %s: %zu entries (%zu ok)\n",
                     journal->path().c_str(), journal->size(),
                     journal->completedCount());
    }

    GuardOptions guard_options;
    guard_options.jobTimeoutMs = options.jobTimeoutMs;
    guard_options.retries = options.retries;
    guard_options.backoffBaseMs = options.retryBackoffMs;
    guard_options.backoffMaxMs =
        std::max(guard_options.backoffMaxMs, options.retryBackoffMs);
    JobGuard guard(guard_options);

    if (options.csv) {
        std::printf("app,policy,cycles,instructions,ipc,resident_ctas,"
                    "active_ctas,dram_bytes,stall_fraction,energy\n");
    }

    TableFormatter table({"app", "policy", "cycles", "IPC", "res.CTAs",
                          "act.CTAs", "DRAM MB", "energy"});

    // Fan the (app, policy) matrix across the parallel runner; results come
    // back in submission order, so the report below is identical to the
    // old serial loop. Every job runs under the guard (a passthrough with
    // the default knobs) and through the journal when --resume was given.
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(apps.size() * options.policies.size());
    for (const std::string &app : apps) {
        std::shared_ptr<const Kernel> kernel =
            Suite::makeKernel(Suite::byName(app), options.gridScale);
        for (const PolicyKind kind : options.policies) {
            GpuConfig config = options.config;
            config.policy.kind = kind;
            const std::string key =
                makeSweepJobKey(*kernel, config).toString();
            matrix.push_back(Experiment::makeGuardedJob(
                kernel, config, app, key, guard, journal.get()));
        }
    }

    ParallelRunner runner({.jobs = options.jobs, .failFast = false, .stop = {}});
    std::fprintf(stderr, "info: running %zu simulations with %u jobs\n",
                 matrix.size(), ParallelRunner::resolveJobs(options.jobs));
    const std::vector<SimResult> results = runner.run(std::move(matrix));

    struct FailedCell
    {
        std::string app;
        PolicyKind kind;
        FailClass cls;
    };
    std::vector<FailedCell> failures;
    FailClass worst = kFailNone;
    unsigned replayed = 0;
    std::size_t job = 0;
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            const SimResult &r = results[job++];
            if (r.fromJournal)
                ++replayed;
            if (r.failed) {
                FailClass cls = kFailSimError;
                if (r.error.kind == SimErrorKind::Timeout)
                    cls = kFailTimeout;
                else if (r.error.kind == SimErrorKind::Quarantined)
                    cls = kFailQuarantined;
                failures.push_back({app, kind, cls});
                worst = std::max(worst, cls);
                std::fprintf(stderr, "error: %s/%s failed: %s\n",
                             app.c_str(), policyKindName(kind),
                             r.failureReason.c_str());
                if (!r.error.diagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.error.diagnostic.c_str());
                }
                continue;
            }
            if (r.hitCycleLimit) {
                failures.push_back({app, kind, kFailSimError});
                worst = std::max(worst, kFailSimError);
                std::fprintf(stderr,
                             "error: %s/%s hit the cycle cap at %llu "
                             "with %u CTAs done; results are partial\n",
                             app.c_str(), policyKindName(kind),
                             static_cast<unsigned long long>(r.cycles),
                             r.completedCtas);
                if (!r.stallDiagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.stallDiagnostic.c_str());
                }
            }
            if (options.csv) {
                std::printf("%s,%s,%llu,%llu,%.4f,%.2f,%.2f,%llu,%.4f,"
                            "%.1f\n",
                            app.c_str(), r.policyName.c_str(),
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.instructions),
                            r.ipc, r.avgResidentCtas, r.avgActiveCtas,
                            static_cast<unsigned long long>(
                                r.dramBytesTotal()),
                            r.depletionStallFraction, r.energy.total());
            } else {
                table.addRow(
                    {app, r.policyName, std::to_string(r.cycles),
                     TableFormatter::num(r.ipc),
                     TableFormatter::num(r.avgResidentCtas, 1),
                     TableFormatter::num(r.avgActiveCtas, 1),
                     TableFormatter::num(r.dramBytesTotal() / 1048576.0,
                                         1),
                     TableFormatter::num(r.energy.total() / 1e6, 2)});
            }
        }
    }

    if (!options.csv)
        std::printf("%s", table.render().c_str());
    if (replayed > 0)
        std::fprintf(stderr,
                     "info: %u of %zu runs replayed from the journal\n",
                     replayed, results.size());

    // Failure summary: where the partial results live and the exact
    // command that reproduces each failed cell on its own.
    if (!failures.empty()) {
        std::fprintf(stderr, "\nsummary: %zu of %zu runs failed\n",
                     failures.size(), results.size());
        if (journal) {
            std::fprintf(stderr,
                         "summary: partial results journaled to %s; "
                         "finish the sweep with --resume %s\n",
                         journal->path().c_str(),
                         journal->path().c_str());
        }
        for (const FailedCell &f : failures) {
            std::fprintf(stderr, "summary: repro %s/%s: %s\n",
                         f.app.c_str(), policyKindName(f.kind),
                         reproCommand(args, f.app, f.kind).c_str());
        }
    }

    // Exit codes (most severe failure wins): 0 all good, 1 simulation
    // error or cycle-cap overrun, 3 wall-clock timeout, 4 quarantined
    // cells only (partial success). 2 is reserved for usage errors.
    switch (worst) {
      case kFailNone: return 0;
      case kFailQuarantined: return 4;
      case kFailTimeout: return 3;
      case kFailSimError: return 1;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const ParseResult parsed = parseCliOptions(args);
    if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    const CliOptions &options = *parsed.options;

    if (options.help) {
        std::printf("%s", cliUsage().c_str());
        return 0;
    }
    if (options.listApps) {
        printSuite();
        return 0;
    }
    setVerbose(options.verbose);
    if (options.diffCheck)
        return runDiffCheck(options);
    return run(options, args);
}
