/**
 * @file
 * finereg_sim — the command-line driver. Runs any subset of the benchmark
 * suite under any subset of the register-management policies with config
 * overrides, printing a comparison table or CSV.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/cli_options.hh"
#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "workloads/suite.hh"

using namespace finereg;

namespace
{

void
printSuite()
{
    TableFormatter table({"app", "full name", "suite", "type",
                          "regs/thr", "thr/CTA", "shmem/CTA", "grid"});
    for (const auto &app : Suite::all()) {
        table.addRow({app.abbrev, app.fullName, app.origin,
                      app.typeR() ? "Type-R" : "Type-S",
                      std::to_string(app.params.regsPerThread),
                      std::to_string(app.params.threadsPerCta),
                      std::to_string(app.params.shmemPerCta),
                      std::to_string(app.params.gridCtas)});
    }
    std::printf("%s", table.render().c_str());
}

int
run(const CliOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        for (const auto &app : Suite::all())
            apps.push_back(app.abbrev);
    }

    if (options.csv) {
        std::printf("app,policy,cycles,instructions,ipc,resident_ctas,"
                    "active_ctas,dram_bytes,stall_fraction,energy\n");
    }

    TableFormatter table({"app", "policy", "cycles", "IPC", "res.CTAs",
                          "act.CTAs", "DRAM MB", "energy"});

    // Fan the (app, policy) matrix across the parallel runner; results come
    // back in submission order, so the report below is identical to the
    // old serial loop.
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(apps.size() * options.policies.size());
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            GpuConfig config = options.config;
            config.policy.kind = kind;
            matrix.push_back([app, config, scale = options.gridScale] {
                return Experiment::runApp(app, config, scale);
            });
        }
    }

    ParallelRunner runner({.jobs = options.jobs, .failFast = false});
    std::fprintf(stderr, "info: running %zu simulations with %u jobs\n",
                 matrix.size(), ParallelRunner::resolveJobs(options.jobs));
    const std::vector<SimResult> results = runner.run(std::move(matrix));

    bool any_failed = false;
    std::size_t job = 0;
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            const SimResult &r = results[job++];
            if (r.failed) {
                any_failed = true;
                std::fprintf(stderr, "error: %s/%s failed: %s\n",
                             app.c_str(), policyKindName(kind),
                             r.failureReason.c_str());
                if (!r.error.diagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.error.diagnostic.c_str());
                }
                continue;
            }
            if (r.hitCycleLimit) {
                any_failed = true;
                std::fprintf(stderr,
                             "error: %s/%s hit the cycle cap at %llu "
                             "with %u CTAs done; results are partial\n",
                             app.c_str(), policyKindName(kind),
                             static_cast<unsigned long long>(r.cycles),
                             r.completedCtas);
                if (!r.stallDiagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.stallDiagnostic.c_str());
                }
            }
            if (options.csv) {
                std::printf("%s,%s,%llu,%llu,%.4f,%.2f,%.2f,%llu,%.4f,"
                            "%.1f\n",
                            app.c_str(), r.policyName.c_str(),
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.instructions),
                            r.ipc, r.avgResidentCtas, r.avgActiveCtas,
                            static_cast<unsigned long long>(
                                r.dramBytesTotal()),
                            r.depletionStallFraction, r.energy.total());
            } else {
                table.addRow(
                    {app, r.policyName, std::to_string(r.cycles),
                     TableFormatter::num(r.ipc),
                     TableFormatter::num(r.avgResidentCtas, 1),
                     TableFormatter::num(r.avgActiveCtas, 1),
                     TableFormatter::num(r.dramBytesTotal() / 1048576.0,
                                         1),
                     TableFormatter::num(r.energy.total() / 1e6, 2)});
            }
        }
    }

    if (!options.csv)
        std::printf("%s", table.render().c_str());
    return any_failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const ParseResult parsed = parseCliOptions(args);
    if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    const CliOptions &options = *parsed.options;

    if (options.help) {
        std::printf("%s", cliUsage().c_str());
        return 0;
    }
    if (options.listApps) {
        printSuite();
        return 0;
    }
    setVerbose(options.verbose);
    return run(options);
}
