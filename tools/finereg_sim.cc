/**
 * @file
 * finereg_sim — the command-line driver. Runs any subset of the benchmark
 * suite under any subset of the register-management policies with config
 * overrides, printing a comparison table or CSV.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/cli_options.hh"
#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "ref/diff_oracle.hh"
#include "ref/ref_executor.hh"
#include "workloads/suite.hh"

using namespace finereg;

namespace
{

void
printSuite()
{
    TableFormatter table({"app", "full name", "suite", "type",
                          "regs/thr", "thr/CTA", "shmem/CTA", "grid"});
    for (const auto &app : Suite::all()) {
        table.addRow({app.abbrev, app.fullName, app.origin,
                      app.typeR() ? "Type-R" : "Type-S",
                      std::to_string(app.params.regsPerThread),
                      std::to_string(app.params.threadsPerCta),
                      std::to_string(app.params.shmemPerCta),
                      std::to_string(app.params.gridCtas)});
    }
    std::printf("%s", table.render().c_str());
}

/**
 * --diff-check: run every selected (app, policy) pair with value tracking
 * and diff the architectural end state against the reference executor
 * instead of reporting performance.
 */
int
runDiffCheck(const CliOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        for (const auto &app : Suite::all())
            apps.push_back(app.abbrev);
    }

    // Reference-execute each kernel once, then fan the (app, policy)
    // matrix across the runner; each job records its divergence slot.
    std::vector<std::unique_ptr<Kernel>> kernels;
    std::vector<ArchState> refs;
    kernels.reserve(apps.size());
    refs.reserve(apps.size());
    for (const std::string &app : apps) {
        kernels.push_back(
            Suite::makeKernel(Suite::byName(app), options.gridScale));
        refs.push_back(
            RefExecutor::execute(*kernels.back(), options.config.seed));
    }

    std::vector<Divergence> divs(apps.size() * options.policies.size());
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(divs.size());
    std::size_t idx = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (const PolicyKind kind : options.policies) {
            matrix.push_back([idx, a, kind, &divs, &kernels, &refs,
                              &options] {
                divs[idx] = DiffOracle::checkPolicy(
                    *kernels[a], options.config, kind, refs[a]);
                SimResult summary;
                summary.kernelName = kernels[a]->name();
                summary.failed = divs[idx].any();
                return summary;
            });
            ++idx;
        }
    }

    ParallelRunner runner({.jobs = options.jobs, .failFast = false});
    std::fprintf(stderr, "info: diff-checking %zu runs with %u jobs\n",
                 matrix.size(), ParallelRunner::resolveJobs(options.jobs));
    runner.run(std::move(matrix));

    bool any_diverged = false;
    idx = 0;
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            const Divergence &d = divs[idx++];
            if (d.any()) {
                any_diverged = true;
                std::fprintf(stderr, "FAIL %s/%s: %s\n", app.c_str(),
                             policyKindName(kind), d.toString().c_str());
            } else {
                std::printf("ok   %s/%s\n", app.c_str(),
                            policyKindName(kind));
            }
        }
    }
    if (!any_diverged) {
        std::printf("diff-check: %zu runs match the reference end state\n",
                    divs.size());
    }
    return any_diverged ? 1 : 0;
}

int
run(const CliOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty()) {
        for (const auto &app : Suite::all())
            apps.push_back(app.abbrev);
    }

    if (options.csv) {
        std::printf("app,policy,cycles,instructions,ipc,resident_ctas,"
                    "active_ctas,dram_bytes,stall_fraction,energy\n");
    }

    TableFormatter table({"app", "policy", "cycles", "IPC", "res.CTAs",
                          "act.CTAs", "DRAM MB", "energy"});

    // Fan the (app, policy) matrix across the parallel runner; results come
    // back in submission order, so the report below is identical to the
    // old serial loop.
    std::vector<ParallelRunner::Job> matrix;
    matrix.reserve(apps.size() * options.policies.size());
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            GpuConfig config = options.config;
            config.policy.kind = kind;
            matrix.push_back([app, config, scale = options.gridScale] {
                return Experiment::runApp(app, config, scale);
            });
        }
    }

    ParallelRunner runner({.jobs = options.jobs, .failFast = false});
    std::fprintf(stderr, "info: running %zu simulations with %u jobs\n",
                 matrix.size(), ParallelRunner::resolveJobs(options.jobs));
    const std::vector<SimResult> results = runner.run(std::move(matrix));

    bool any_failed = false;
    std::size_t job = 0;
    for (const std::string &app : apps) {
        for (const PolicyKind kind : options.policies) {
            const SimResult &r = results[job++];
            if (r.failed) {
                any_failed = true;
                std::fprintf(stderr, "error: %s/%s failed: %s\n",
                             app.c_str(), policyKindName(kind),
                             r.failureReason.c_str());
                if (!r.error.diagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.error.diagnostic.c_str());
                }
                continue;
            }
            if (r.hitCycleLimit) {
                any_failed = true;
                std::fprintf(stderr,
                             "error: %s/%s hit the cycle cap at %llu "
                             "with %u CTAs done; results are partial\n",
                             app.c_str(), policyKindName(kind),
                             static_cast<unsigned long long>(r.cycles),
                             r.completedCtas);
                if (!r.stallDiagnostic.empty()) {
                    std::fprintf(stderr, "%s\n",
                                 r.stallDiagnostic.c_str());
                }
            }
            if (options.csv) {
                std::printf("%s,%s,%llu,%llu,%.4f,%.2f,%.2f,%llu,%.4f,"
                            "%.1f\n",
                            app.c_str(), r.policyName.c_str(),
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.instructions),
                            r.ipc, r.avgResidentCtas, r.avgActiveCtas,
                            static_cast<unsigned long long>(
                                r.dramBytesTotal()),
                            r.depletionStallFraction, r.energy.total());
            } else {
                table.addRow(
                    {app, r.policyName, std::to_string(r.cycles),
                     TableFormatter::num(r.ipc),
                     TableFormatter::num(r.avgResidentCtas, 1),
                     TableFormatter::num(r.avgActiveCtas, 1),
                     TableFormatter::num(r.dramBytesTotal() / 1048576.0,
                                         1),
                     TableFormatter::num(r.energy.total() / 1e6, 2)});
            }
        }
    }

    if (!options.csv)
        std::printf("%s", table.render().c_str());
    return any_failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const ParseResult parsed = parseCliOptions(args);
    if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    const CliOptions &options = *parsed.options;

    if (options.help) {
        std::printf("%s", cliUsage().c_str());
        return 0;
    }
    if (options.listApps) {
        printSuite();
        return 0;
    }
    setVerbose(options.verbose);
    if (options.diffCheck)
        return runDiffCheck(options);
    return run(options);
}
