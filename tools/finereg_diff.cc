/**
 * @file
 * finereg_diff — differential correctness driver. Generates random kernels
 * (property-based, seeded), executes each on the untimed architectural
 * reference, then diffs the end state the cycle simulator produces under
 * every register-management policy. Any mismatch is minimized by greedy
 * shrinking and printed with a one-line repro command.
 *
 * --self-check flips the PolicyConfig::dropLiveReg test hook so a FineReg
 * swap deliberately drops a live register, and asserts the oracle catches
 * it — guarding against the harness rotting into a rubber stamp.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/cli_options.hh"
#include "core/parallel_runner.hh"
#include "ref/diff_oracle.hh"
#include "ref/kernel_gen.hh"

using namespace finereg;

namespace
{

struct DiffOptions
{
    unsigned cases = 50;
    std::uint64_t seed = 1;
    bool haveCaseSeed = false;
    std::uint64_t caseSeed = 0;
    std::vector<PolicyKind> policies; ///< empty = all five
    unsigned jobs = 0;
    unsigned sms = 1;
    std::uint64_t acrfKb = 64;
    std::uint64_t pcrfKb = 192;
    bool selfCheck = false;
    bool verbose = false;
    bool help = false;
};

const char *kUsage =
    "usage: finereg_diff [options]\n"
    "\n"
    "Checks that the cycle simulator's architectural end state matches the\n"
    "untimed reference executor on randomly generated kernels.\n"
    "\n"
    "  --cases N        generated kernels to check (default 50)\n"
    "  --seed S         base seed: a number, or any string (hashed), so CI\n"
    "                   can pass the git SHA directly\n"
    "  --case-seed S    replay exactly one case and print its kernel\n"
    "  --policy LIST    baseline|vt|regdram|regmutex|finereg|all\n"
    "                   (default: all)\n"
    "  --jobs N         parallel case jobs (default: FINEREG_JOBS env,\n"
    "                   then hardware threads)\n"
    "  --sms N          SMs in the checked config (default 1, maximizing\n"
    "                   CTA-switch pressure)\n"
    "  --acrf KB        FineReg ACRF size (default 64)\n"
    "  --pcrf KB        FineReg PCRF size (default 192)\n"
    "  --self-check     break the liveness mask on purpose (FineReg drops\n"
    "                   a live register at swaps) and require the oracle\n"
    "                   to catch it with a minimized counterexample\n"
    "  --verbose        per-case progress\n"
    "  --help           this text\n";

/** Parse a seed: plain/hex number, else FNV-1a of the string (git SHAs). */
std::uint64_t
parseSeed(const std::string &text)
{
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 0);
    if (end && *end == '\0' && end != text.c_str())
        return value;
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

bool
parseArgs(const std::vector<std::string> &args, DiffOptions &opts,
          std::string &error)
{
    auto need_value = [&](std::size_t i) {
        if (i + 1 >= args.size()) {
            error = args[i] + " requires a value";
            return false;
        }
        return true;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help") {
            opts.help = true;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--self-check") {
            opts.selfCheck = true;
        } else if (arg == "--cases") {
            if (!need_value(i))
                return false;
            opts.cases = static_cast<unsigned>(
                std::strtoul(args[++i].c_str(), nullptr, 0));
        } else if (arg == "--seed") {
            if (!need_value(i))
                return false;
            opts.seed = parseSeed(args[++i]);
        } else if (arg == "--case-seed") {
            if (!need_value(i))
                return false;
            opts.haveCaseSeed = true;
            opts.caseSeed = parseSeed(args[++i]);
        } else if (arg == "--jobs") {
            if (!need_value(i))
                return false;
            opts.jobs = static_cast<unsigned>(
                std::strtoul(args[++i].c_str(), nullptr, 0));
        } else if (arg == "--sms") {
            if (!need_value(i))
                return false;
            opts.sms = static_cast<unsigned>(
                std::strtoul(args[++i].c_str(), nullptr, 0));
        } else if (arg == "--acrf") {
            if (!need_value(i))
                return false;
            opts.acrfKb = std::strtoull(args[++i].c_str(), nullptr, 0);
        } else if (arg == "--pcrf") {
            if (!need_value(i))
                return false;
            opts.pcrfKb = std::strtoull(args[++i].c_str(), nullptr, 0);
        } else if (arg == "--policy") {
            if (!need_value(i))
                return false;
            std::string list = args[++i];
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                pos = comma == std::string::npos ? comma : comma + 1;
                if (name == "all") {
                    opts.policies.clear();
                    break;
                }
                const auto kind = parsePolicyName(name);
                if (!kind) {
                    error = "unknown policy '" + name + "'";
                    return false;
                }
                opts.policies.push_back(*kind);
            }
        } else {
            error = "unknown flag '" + arg + "'";
            return false;
        }
    }
    if (opts.cases == 0) {
        error = "--cases must be positive";
        return false;
    }
    return true;
}

GpuConfig
diffConfig(const DiffOptions &opts)
{
    GpuConfig config = GpuConfig::gtx980();
    config.numSms = opts.sms;
    config.policy.acrfBytes = opts.acrfKb * 1024;
    config.policy.pcrfBytes = opts.pcrfKb * 1024;
    if (opts.selfCheck)
        config.policy.dropLiveReg = 1;
    return config;
}

GenOptions
genOptions(const DiffOptions &opts)
{
    GenOptions gen;
    // The broken-liveness check must observe every register, otherwise the
    // dropped one might be legitimately dead by the time it is read.
    gen.observeAllRegs = opts.selfCheck;
    return gen;
}

std::string
reproCommand(const DiffOptions &opts, std::uint64_t case_seed)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "tools/finereg_diff --case-seed 0x%" PRIx64
                  " --sms %u --acrf %" PRIu64 " --pcrf %" PRIu64 "%s",
                  case_seed, opts.sms, opts.acrfKb, opts.pcrfKb,
                  opts.selfCheck ? " --self-check" : "");
    std::string cmd = buf;
    if (!opts.policies.empty()) {
        cmd += " --policy ";
        for (std::size_t i = 0; i < opts.policies.size(); ++i) {
            if (i)
                cmd += ",";
            cmd += policyKindName(opts.policies[i]);
        }
    }
    return cmd;
}

DiffOracle::Report
runCase(std::uint64_t case_seed, const DiffOptions &opts,
        const GpuConfig &config)
{
    const KernelSpec spec = generateKernelSpec(case_seed, genOptions(opts));
    const auto kernel = spec.build();
    return DiffOracle::checkAllPolicies(*kernel, config, opts.policies);
}

/**
 * Shrink the failing case and print seed, minimized kernel, and repro
 * command to stderr (the format test_fuzz-style harnesses rely on).
 */
void
reportFailure(std::uint64_t case_seed, const DiffOracle::Report &report,
              const DiffOptions &opts, const GpuConfig &config)
{
    std::fprintf(stderr, "FAIL: end state diverged for case seed 0x%" PRIx64
                         "\n%s",
                 case_seed, report.toString().c_str());

    std::fprintf(stderr, "minimizing counterexample...\n");
    const KernelSpec minimized = minimizeSpec(
        generateKernelSpec(case_seed, genOptions(opts)),
        [&](const KernelSpec &cand) {
            const auto kernel = cand.build();
            return !DiffOracle::checkAllPolicies(*kernel, config,
                                                 opts.policies)
                        .pass();
        },
        150);

    const auto kernel = minimized.build();
    std::fprintf(stderr, "minimized kernel: %s\n%s",
                 minimized.describe().c_str(), kernel->toString().c_str());
    std::fprintf(stderr, "repro: %s\n",
                 reproCommand(opts, case_seed).c_str());
}

int
runSingleCase(const DiffOptions &opts, const GpuConfig &config)
{
    const KernelSpec spec =
        generateKernelSpec(opts.caseSeed, genOptions(opts));
    const auto kernel = spec.build();
    std::printf("case %s\n%s", spec.describe().c_str(),
                kernel->toString().c_str());

    const DiffOracle::Report report =
        DiffOracle::checkAllPolicies(*kernel, config, opts.policies);
    std::printf("%s", report.toString().c_str());
    if (!report.pass() && !opts.selfCheck)
        reportFailure(opts.caseSeed, report, opts, config);
    if (opts.selfCheck)
        return report.pass() ? 1 : 0;
    return report.pass() ? 0 : 1;
}

int
runSweep(const DiffOptions &opts, const GpuConfig &config)
{
    // Fan the cases across the runner; each job stores its full report in
    // its own slot and returns a summary SimResult for ordering/accounting.
    std::vector<DiffOracle::Report> reports(opts.cases);
    std::vector<ParallelRunner::Job> jobs;
    jobs.reserve(opts.cases);
    for (unsigned i = 0; i < opts.cases; ++i) {
        const std::uint64_t case_seed =
            opts.seed + 0x9e3779b97f4a7c15ull * i;
        jobs.push_back([case_seed, i, &reports, &opts, &config] {
            reports[i] = runCase(case_seed, opts, config);
            SimResult summary;
            summary.kernelName = "case-" + std::to_string(i);
            summary.failed = !reports[i].pass();
            return summary;
        });
    }

    ParallelRunner runner({.jobs = opts.jobs, .failFast = false, .stop = {}});
    if (opts.verbose) {
        std::fprintf(stderr, "info: %u cases x %zu policies with %u jobs\n",
                     opts.cases,
                     opts.policies.empty() ? 5 : opts.policies.size(),
                     ParallelRunner::resolveJobs(opts.jobs));
    }
    runner.run(std::move(jobs));

    unsigned failures = 0;
    std::uint64_t first_bad_seed = 0;
    const DiffOracle::Report *first_bad = nullptr;
    for (unsigned i = 0; i < opts.cases; ++i) {
        if (!reports[i].pass()) {
            ++failures;
            if (!first_bad) {
                first_bad = &reports[i];
                first_bad_seed = opts.seed + 0x9e3779b97f4a7c15ull * i;
            }
        }
    }

    if (opts.selfCheck) {
        // Here a divergence is the expected outcome: the liveness mask is
        // deliberately broken, and the oracle must notice.
        if (!first_bad) {
            std::fprintf(stderr,
                         "FAIL: self-check found no divergence in %u cases "
                         "— the oracle would miss a liveness bug (did any "
                         "case actually swap CTAs?)\n",
                         opts.cases);
            return 1;
        }
        const KernelSpec minimized = minimizeSpec(
            generateKernelSpec(first_bad_seed, genOptions(opts)),
            [&](const KernelSpec &cand) {
                const auto kernel = cand.build();
                return !DiffOracle::checkAllPolicies(*kernel, config,
                                                     opts.policies)
                            .pass();
            },
            150);
        std::printf("self-check: broken liveness mask caught in %u/%u "
                    "cases; minimized counterexample has %u instructions "
                    "(%s)\n",
                    failures, opts.cases, minimized.instrCount(),
                    minimized.describe().c_str());
        std::printf("repro: %s\n",
                    reproCommand(opts, first_bad_seed).c_str());
        return 0;
    }

    if (first_bad) {
        reportFailure(first_bad_seed, *first_bad, opts, config);
        std::fprintf(stderr, "finereg_diff: %u/%u cases diverged\n",
                     failures, opts.cases);
        return 1;
    }
    std::printf("finereg_diff: %u cases x %zu policies: all end states "
                "match the reference\n",
                opts.cases,
                opts.policies.empty() ? 5 : opts.policies.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    DiffOptions opts;
    std::string error;
    if (!parseArgs({argv + 1, argv + argc}, opts, error)) {
        std::fprintf(stderr, "error: %s\n\n%s", error.c_str(), kUsage);
        return 2;
    }
    if (opts.help) {
        std::printf("%s", kUsage);
        return 0;
    }
    setVerbose(opts.verbose);

    const GpuConfig config = diffConfig(opts);
    if (opts.haveCaseSeed)
        return runSingleCase(opts, config);
    return runSweep(opts, config);
}
